// Merges per-bench BENCH_*.json reports into one schema-versioned
// BENCH_manifest.json: host identity, git SHA, SIMD dispatch level, and
// every report embedded verbatim under "benches". The manifest is the
// unit the regression gate (gep_bench_diff) compares — one file per
// commit/run instead of a loose pile of per-figure reports.
//
// Usage:
//   gep_bench_manifest [-o OUT] [--git-sha SHA] [FILE...]
//
// With no FILE arguments, every BENCH_*.json in the current directory
// (except BENCH_manifest.json itself) is merged. The git SHA comes from
// --git-sha, then $GEP_GIT_SHA, then $GITHUB_SHA, then `git rev-parse
// HEAD`, then "unknown".
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_read.hpp"
#include "simd/dispatch.hpp"
#include "util/cpuinfo.hpp"

namespace {

// Matches bench::kBenchSchemaVersion (bench/bench_common.hpp); the
// tools only depend on src/.
constexpr int kSchemaVersion = 2;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string git_sha(const char* arg) {
  if (arg != nullptr && *arg != 0) return arg;
  if (const char* s = std::getenv("GEP_GIT_SHA"); s != nullptr && *s != 0)
    return s;
  if (const char* s = std::getenv("GITHUB_SHA"); s != nullptr && *s != 0)
    return s;
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128] = {0};
    const bool got = fgets(buf, sizeof buf, p) != nullptr;
    const int rc = pclose(p);
    if (got && rc == 0) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
      if (!s.empty()) return s;
    }
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_manifest.json";
  const char* sha_arg = nullptr;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--git-sha" && i + 1 < argc) {
      sha_arg = argv[++i];
    } else if (a == "-h" || a == "--help") {
      std::printf("usage: %s [-o OUT] [--git-sha SHA] [FILE...]\n", argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return 2;
    } else {
      files.push_back(a);
    }
  }

  if (files.empty()) {
    for (const auto& e : std::filesystem::directory_iterator(".")) {
      if (!e.is_regular_file()) continue;
      const std::string name = e.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.substr(name.size() - 5) == ".json" &&
          name != "BENCH_manifest.json" &&
          e.path().filename() !=
              std::filesystem::path(out_path).filename())
        files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
  }
  if (files.empty()) {
    std::fprintf(stderr, "no BENCH_*.json reports found\n");
    return 2;
  }

  // name -> verbatim report text (validated, so raw splicing is safe).
  std::vector<std::pair<std::string, std::string>> reports;
  for (const std::string& f : files) {
    const std::string text = read_file(f);
    if (text.empty()) {
      std::fprintf(stderr, "cannot read %s\n", f.c_str());
      return 2;
    }
    gep::obs::JsonValue v;
    std::string err;
    if (!gep::obs::JsonValue::parse(text, &v, &err)) {
      std::fprintf(stderr, "%s: %s\n", f.c_str(), err.c_str());
      return 2;
    }
    std::string name = v["bench"].as_string();
    if (name.empty())
      name = std::filesystem::path(f).stem().string();
    std::string body = text;
    while (!body.empty() &&
           (body.back() == '\n' || body.back() == '\r' || body.back() == ' '))
      body.pop_back();
    reports.emplace_back(std::move(name), std::move(body));
  }

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  gep::obs::JsonWriter w(os);
  w.begin_object();
  w.kv("kind", "gep-bench-manifest");
  w.kv("schema_version", kSchemaVersion);
  w.kv("unix_time", static_cast<std::int64_t>(std::time(nullptr)));
  w.kv("git_sha", git_sha(sha_arg));
  w.kv("dispatch_level", gep::simd::active_name());
  gep::CpuInfo info = gep::query_cpu_info();
  w.key("host");
  w.begin_object();
  w.kv("model", info.model_name);
  w.kv("logical_cpus", info.logical_cpus);
  w.kv("summary", info.summary());
  w.end_object();
  w.key("benches");
  w.begin_object();
  for (const auto& [name, body] : reports) {
    w.key(name);
    w.raw(body);
  }
  w.end_object();
  w.end_object();
  os << '\n';
  if (!os) {
    std::fprintf(stderr, "write failed: %s\n", out_path.c_str());
    return 2;
  }
  std::printf("manifest: %s (%zu report(s))\n", out_path.c_str(),
              reports.size());
  return 0;
}
