// Statistical regression gate over two bench manifests.
//
//   gep_bench_diff BASELINE.json CURRENT.json [options]
//
// Compares the manifests metric by metric and exits non-zero when a
// regression clears the noise threshold, so CI can gate merges on data
// instead of anecdote. Three metric classes, because not every number
// is comparable across hosts:
//
//   * wall time (per-run median seconds): a run regresses when the
//     slowdown exceeds BOTH `--mads` median-absolute-deviations of the
//     repeat noise AND `--min-rel` relative. Gated only when both
//     manifests come from the same host model (or --strict), since
//     absolute seconds don't transfer between machines. Runs faster
//     than --min-seconds in the baseline are reported but never gated
//     (timer noise dominates).
//   * deterministic work counters (typed.leaf_calls.*, typed.updates.*,
//     typed.mm.*): pure functions of the workload, gated on ANY host at
//     a tight --work-tol — drift means the benched workload changed
//     (requiring a baseline regen) or the recursion itself did.
//   * host-dependent counters (extmem.page_cache.*, kernels.dispatch.*,
//     robust.*): gated at --counter-tol, same-host (or --strict) only —
//     prefetch timing and SIMD availability legitimately differ across
//     machines.
//   * io_ratio (measured page transfers / Θ(n³/(B√M)) prediction, from
//     the OOC benches): gated on ANY host at the loose --io-tol — page
//     counts are deterministic for a fixed (n, M, B), so a large drift
//     means the engine's transfer behavior changed. Loose because the
//     parallel/prefetch legs jitter with scheduling.
//
// Everything else (gflops mirrors seconds; hw samples are absent on CI)
// is informational. Missing benches/labels/counters on either side are
// listed but never fail the gate, so the bench suite can evolve; the
// printed note says when the baseline needs regenerating.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_read.hpp"
#include "util/table.hpp"

namespace {

using gep::obs::JsonValue;

struct Options {
  double mads = 6.0;         // seconds threshold in MAD units
  double min_rel = 0.30;     // minimum relative slowdown to flag
  double min_seconds = 0.005;  // baseline medians below this: info only
  double work_tol = 0.005;   // deterministic work counters
  double counter_tol = 0.25;  // host-dependent counters
  double io_tol = 0.5;       // io_ratio (measured/predicted transfers)
  bool strict = false;       // gate host-dependent metrics cross-host
};

struct Verdicts {
  int regressions = 0;
  int improvements = 0;
  int infos = 0;
  int oks = 0;
};

std::string fmt(double v) {
  char buf[32];
  if (v == 0) return "0";
  if (std::fabs(v) >= 1000 && std::fabs(v) < 1e15 &&
      v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string pct(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * rel);
  return buf;
}

bool load(const char* path, JsonValue* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!JsonValue::parse(ss.str(), out, &err)) {
    std::fprintf(stderr, "%s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

// A manifest carries reports under "benches"; a bare BENCH_*.json is
// treated as a one-bench manifest so the tool works on either.
std::vector<std::pair<std::string, const JsonValue*>> benches_of(
    const JsonValue& v) {
  std::vector<std::pair<std::string, const JsonValue*>> out;
  if (const JsonValue* b = v.find("benches")) {
    for (const auto& [name, rep] : b->members()) out.emplace_back(name, &rep);
  } else if (v.has("bench")) {
    out.emplace_back(v["bench"].as_string(), &v);
  }
  return out;
}

std::string host_model(const JsonValue& v) {
  if (v["host"].is_object()) return v["host"]["model"].as_string();
  // Bare report fallback: host object has the same shape.
  return {};
}

// label|n uniquely keys a run within one bench's sweep.
std::map<std::string, const JsonValue*> runs_by_key(const JsonValue& rep) {
  std::map<std::string, const JsonValue*> out;
  for (const JsonValue& r : rep["runs"].items()) {
    const std::string key =
        r["label"].as_string() + "|n=" + std::to_string(r["n"].as_int());
    out.emplace(key, &r);  // first occurrence wins
  }
  return out;
}

bool counter_is_work(const std::string& name) {
  return name.rfind("typed.leaf_calls.", 0) == 0 ||
         name.rfind("typed.updates.", 0) == 0 ||
         name.rfind("typed.mm.", 0) == 0;
}

bool counter_is_gated(const std::string& name) {
  return name.rfind("extmem.page_cache.", 0) == 0 ||
         name.rfind("kernels.dispatch.", 0) == 0 ||
         name.rfind("robust.", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const char* base_path = nullptr;
  const char* cur_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto num = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    if (a == "--mads") {
      if (!num(&opt.mads)) return 2;
    } else if (a == "--min-rel") {
      if (!num(&opt.min_rel)) return 2;
    } else if (a == "--min-seconds") {
      if (!num(&opt.min_seconds)) return 2;
    } else if (a == "--work-tol") {
      if (!num(&opt.work_tol)) return 2;
    } else if (a == "--counter-tol") {
      if (!num(&opt.counter_tol)) return 2;
    } else if (a == "--io-tol") {
      if (!num(&opt.io_tol)) return 2;
    } else if (a == "--strict") {
      opt.strict = true;
    } else if (a == "-h" || a == "--help") {
      std::printf(
          "usage: %s BASELINE.json CURRENT.json [--mads K] [--min-rel R]\n"
          "       [--min-seconds S] [--work-tol R] [--counter-tol R]\n"
          "       [--io-tol R] [--strict]\n",
          argv[0]);
      return 0;
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (cur_path == nullptr) {
      cur_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", a.c_str());
      return 2;
    }
  }
  if (base_path == nullptr || cur_path == nullptr) {
    std::fprintf(stderr, "usage: %s BASELINE.json CURRENT.json [options]\n",
                 argv[0]);
    return 2;
  }

  JsonValue base, cur;
  if (!load(base_path, &base) || !load(cur_path, &cur)) return 2;

  const std::string base_host = host_model(base);
  const std::string cur_host = host_model(cur);
  const bool same_host =
      !base_host.empty() && base_host == cur_host;
  const bool gate_hostdep = same_host || opt.strict;

  std::printf("baseline: %s (%s, git %s)\n", base_path,
              base_host.empty() ? "unknown host" : base_host.c_str(),
              base["git_sha"].as_string().empty()
                  ? "?"
                  : base["git_sha"].as_string().c_str());
  std::printf("current:  %s (%s, git %s)\n", cur_path,
              cur_host.empty() ? "unknown host" : cur_host.c_str(),
              cur["git_sha"].as_string().empty()
                  ? "?"
                  : cur["git_sha"].as_string().c_str());
  if (!gate_hostdep)
    std::printf(
        "hosts differ: wall-time and host-dependent counters are "
        "informational (pass --strict to gate them anyway)\n");
  std::printf("\n");

  gep::Table table(
      {"bench", "metric", "baseline", "current", "delta", "bound", "verdict"});
  Verdicts v;
  std::vector<std::string> notes;

  // `bound` names the threshold that actually applied to the row, so a
  // verdict is auditable from the table alone (which matters most when
  // the MAD bound silently degenerates — see the zero-MAD fallback).
  auto verdict_row = [&](const std::string& bench, const std::string& metric,
                         double b, double c, double rel,
                         const std::string& bound, const char* verdict) {
    table.add_row({bench, metric, fmt(b), fmt(c), pct(rel), bound, verdict});
    if (std::strcmp(verdict, "REGRESSION") == 0) ++v.regressions;
    else if (std::strcmp(verdict, "IMPROVED") == 0) ++v.improvements;
    else if (std::strcmp(verdict, "INFO") == 0) ++v.infos;
    else ++v.oks;
  };
  auto tol_bound = [&](double tol) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "±%.3g%%", 100.0 * tol);
    return std::string(buf);
  };

  const auto base_benches = benches_of(base);
  const auto cur_benches = benches_of(cur);
  auto find_bench = [](const std::vector<std::pair<std::string,
                                                   const JsonValue*>>& bs,
                       const std::string& name) -> const JsonValue* {
    for (const auto& [n, rep] : bs)
      if (n == name) return rep;
    return nullptr;
  };

  for (const auto& [name, brep] : base_benches) {
    const JsonValue* crep = find_bench(cur_benches, name);
    if (crep == nullptr) {
      notes.push_back("bench '" + name + "' missing from current");
      continue;
    }

    // --- wall time per run -------------------------------------------------
    const auto bruns = runs_by_key(*brep);
    const auto cruns = runs_by_key(*crep);
    for (const auto& [key, br] : bruns) {
      auto it = cruns.find(key);
      if (it == cruns.end()) {
        notes.push_back("run '" + name + ":" + key +
                        "' missing from current");
        continue;
      }
      const JsonValue& cr = *it->second;
      const double bs = (*br)["seconds"].as_double();
      const double cs = cr["seconds"].as_double();
      if (bs <= 0 || cs <= 0) continue;
      const double rel = cs / bs - 1.0;
      const double mad = std::max((*br)["seconds_mad"].as_double(),
                                  cr["seconds_mad"].as_double());
      // A single-repeat manifest carries seconds_mad == 0, which used to
      // collapse the MAD bound to the bare relative floor with nothing
      // in the output saying so. Make the fallback explicit: the bound
      // column names which threshold gated the row, and the degenerate
      // case is labelled so a reviewer knows the noise estimate was
      // absent, not tight.
      char bound_buf[48];
      double thresh;
      if (mad <= 0) {
        thresh = opt.min_rel * bs;
        std::snprintf(bound_buf, sizeof bound_buf, "%.0f%% floor (MAD=0)",
                      100.0 * opt.min_rel);
      } else if (opt.mads * mad >= opt.min_rel * bs) {
        thresh = opt.mads * mad;
        std::snprintf(bound_buf, sizeof bound_buf, "%.3g*MAD", opt.mads);
      } else {
        thresh = opt.min_rel * bs;
        std::snprintf(bound_buf, sizeof bound_buf, "%.0f%% floor",
                      100.0 * opt.min_rel);
      }
      const std::string bound = bound_buf;
      const std::string metric = key + " seconds";
      if (!gate_hostdep || bs < opt.min_seconds) {
        verdict_row(name, metric, bs, cs, rel, bound, "INFO");
      } else if (cs - bs > thresh) {
        verdict_row(name, metric, bs, cs, rel, bound, "REGRESSION");
      } else if (bs - cs > thresh) {
        verdict_row(name, metric, bs, cs, rel, bound, "IMPROVED");
      } else {
        verdict_row(name, metric, bs, cs, rel, bound, "ok");
      }

      // --- I/O-bound ratio (when both sides carry it) --------------------
      const JsonValue* bio = (*br).find("io_ratio");
      const JsonValue* cio = cr.find("io_ratio");
      if (bio != nullptr && cio != nullptr) {
        const double bv = bio->as_double();
        const double cv = cio->as_double();
        if (bv > 0 && cv > 0) {
          const double io_rel = cv / bv - 1.0;
          verdict_row(name, key + " io_ratio", bv, cv, io_rel,
                      tol_bound(opt.io_tol),
                      std::fabs(io_rel) > opt.io_tol ? "REGRESSION" : "ok");
        }
      }
    }

    // --- registry counters -------------------------------------------------
    const JsonValue& bctr = (*brep)["metrics"]["counters"];
    const JsonValue& cctr = (*crep)["metrics"]["counters"];
    if (!bctr.is_object() || !cctr.is_object()) continue;
    for (const auto& [cname, bval] : bctr.members()) {
      const bool work = counter_is_work(cname);
      const bool gated = counter_is_gated(cname);
      if (!work && !gated) continue;
      const JsonValue* cval = cctr.find(cname);
      if (cval == nullptr) {
        notes.push_back("counter '" + name + ":" + cname +
                        "' missing from current");
        continue;
      }
      const double b = bval.as_double();
      const double c = cval->as_double();
      if (b == 0 && c == 0) continue;
      const double rel = (c - b) / std::max(b, 1.0);
      const double tol = work ? opt.work_tol : opt.counter_tol;
      const bool gate = work || gate_hostdep;
      const char* verdict = !gate                       ? "INFO"
                            : std::fabs(rel) > tol      ? "REGRESSION"
                                                        : "ok";
      // Only surface interesting rows: drift, or any gated-class miss.
      if (std::strcmp(verdict, "ok") != 0 || std::fabs(rel) > tol / 2)
        verdict_row(name, cname, b, c, rel, tol_bound(tol), verdict);
      else
        ++v.oks;
    }
  }
  for (const auto& [name, crep] : cur_benches) {
    (void)crep;
    if (find_bench(base_benches, name) == nullptr)
      notes.push_back("bench '" + name + "' missing from baseline");
  }

  table.print(std::cout);
  for (const std::string& n : notes)
    std::printf("note: %s\n", n.c_str());
  if (!notes.empty())
    std::printf(
        "note: missing entries are not gated — regenerate the baseline "
        "manifest if the bench suite changed\n");
  std::printf(
      "\n%d regression(s), %d improvement(s), %d ok, %d informational\n",
      v.regressions, v.improvements, v.oks, v.infos);
  if (v.regressions > 0) {
    std::printf("verdict: REGRESSION\n");
    return 1;
  }
  std::printf("verdict: no regression\n");
  return 0;
}
