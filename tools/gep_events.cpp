// Decoder for flight-recorder dumps (*.gepdump).
//
//   gep_events DUMP.gepdump                  # human-readable text
//   gep_events DUMP.gepdump --chrome out.json  # chrome://tracing view
//   gep_events DUMP.gepdump --metrics        # embedded registry JSON
//   gep_events DUMP.gepdump --prom           # same, as Prometheus text
//
// --prom renders through obs/expo.hpp — the identical formatter behind
// the live stat server's /metrics — so the offline and live exposition
// cannot drift.
//
// The format is host-endian binary (obs/flight_recorder.hpp,
// namespace flightfmt): FileHeader, per-thread ThreadHeader + events
// (oldest first), then a length-prefixed metrics-registry snapshot.
// Crash dumps are frequently truncated — the decoder prints whatever
// prefix is intact and says so, instead of failing.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/expo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/json_read.hpp"

namespace {

using namespace gep::obs::flightfmt;

struct ThreadDump {
  ThreadHeader header{};
  std::vector<Event> events;
};

struct Dump {
  FileHeader header{};
  std::vector<ThreadDump> threads;
  std::string metrics_json;
  bool truncated = false;
};

template <class T>
bool read_pod(std::ifstream& in, T* out) {
  in.read(reinterpret_cast<char*>(out), sizeof(T));
  return in.gcount() == static_cast<std::streamsize>(sizeof(T));
}

bool load(const char* path, Dump* out, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot open file";
    return false;
  }
  if (!read_pod(in, &out->header) ||
      std::memcmp(out->header.magic, kMagic, sizeof kMagic) != 0) {
    *err = "not a gepdump (bad magic)";
    return false;
  }
  if (out->header.version != kVersion) {
    *err = "unsupported gepdump version " +
           std::to_string(out->header.version);
    return false;
  }
  for (std::uint32_t t = 0; t < out->header.thread_count; ++t) {
    ThreadDump td;
    if (!read_pod(in, &td.header)) {
      out->truncated = true;
      return true;
    }
    td.header.name[sizeof td.header.name - 1] = '\0';
    td.events.reserve(td.header.count);
    for (std::uint32_t e = 0; e < td.header.count; ++e) {
      Event ev;
      if (!read_pod(in, &ev)) {
        out->truncated = true;
        out->threads.push_back(std::move(td));
        return true;
      }
      td.events.push_back(ev);
    }
    out->threads.push_back(std::move(td));
  }
  std::uint32_t metrics_len = 0;
  if (!read_pod(in, &metrics_len)) {
    out->truncated = true;
    return true;
  }
  if (metrics_len > 0) {
    out->metrics_json.resize(metrics_len);
    in.read(out->metrics_json.data(), metrics_len);
    if (in.gcount() != static_cast<std::streamsize>(metrics_len)) {
      out->metrics_json.resize(static_cast<std::size_t>(in.gcount()));
      out->truncated = true;
    }
  }
  return true;
}

std::string reason_str(std::int32_t reason) {
  switch (reason) {
    case kReasonManual: return "manual";
    case kReasonWatchdog: return "watchdog stall";
    default: break;
  }
  if (reason > 0) return "signal " + std::to_string(reason);
  return "unknown (" + std::to_string(reason) + ")";
}

// Type-aware payload rendering for the text view.
std::string describe(std::uint64_t w) {
  const unsigned e = ev_of(w);
  const std::uint64_t p = payload_of(w);
  char buf[96];
  switch (e) {
    case kPageIn:
    case kPageOut:
    case kEvict:
    case kPrefetchIssue:
    case kPrefetchDone:
      std::snprintf(buf, sizeof buf, "file %d page %" PRIu64, page_file(p),
                    page_page(p));
      return buf;
    case kIoRetry:
    case kCrcRecover:
    case kIoHardFail:
      std::snprintf(buf, sizeof buf, "page %" PRIu64, p);
      return buf;
    case kTaskSteal:
      std::snprintf(buf, sizeof buf, "worker %d <- worker %d",
                    steal_thief(p), steal_victim(p));
      return buf;
    case kTaskPark:
    case kTaskWake:
      std::snprintf(buf, sizeof buf, "worker %" PRIu64, p);
      return buf;
    case kRecEnter:
    case kRecLeave:
      std::snprintf(buf, sizeof buf, "kind %c depth %d m %" PRIu64,
                    rec_kind(p), rec_depth(p), rec_m(p));
      return buf;
    case kGuardTrip:
      std::snprintf(buf, sizeof buf, "pivot k=%" PRIu64, p);
      return buf;
    case kStallDetect:
      std::snprintf(buf, sizeof buf, "watchdog source %" PRIu64, p);
      return buf;
    case kSignal:
      std::snprintf(buf, sizeof buf, "sig %" PRIu64, p);
      return buf;
    case kMark:
      std::snprintf(buf, sizeof buf, "0x%" PRIx64, p);
      return buf;
    case kCkptBegin:
    case kCkptEnd:
      std::snprintf(buf, sizeof buf, "seq %" PRIu64, p);
      return buf;
    case kCkptSkipped:
      std::snprintf(buf, sizeof buf, "%s",
                    p == 1 ? "unchanged since last snapshot"
                           : p == 2 ? "aborted leaf poisoned job"
                                    : "reason unknown");
      return buf;
    default:
      std::snprintf(buf, sizeof buf, "payload 0x%" PRIx64, p);
      return buf;
  }
}

void print_text(const Dump& d) {
  std::printf("gepdump v%u  reason: %s  threads: %u%s\n",
              d.header.version, reason_str(d.header.reason).c_str(),
              d.header.thread_count, d.truncated ? "  [TRUNCATED]" : "");
  for (const ThreadDump& td : d.threads) {
    std::printf("\n-- %s (tid %u): %u event(s) shown, %" PRIu64
                " recorded --\n",
                td.header.name, td.header.tid, td.header.count,
                td.header.seq);
    for (const Event& ev : td.events) {
      // Relative to the dump instant: "-123.456ms" means that long ago.
      const double rel_ms =
          (static_cast<double>(ev.t_ns) -
           static_cast<double>(d.header.dump_ns)) /
          1e6;
      std::printf("  %+12.3fms  %-14s %s\n", rel_ms,
                  ev_name(ev_of(ev.w)), describe(ev.w).c_str());
    }
  }
  if (!d.metrics_json.empty()) {
    std::printf("\nmetrics snapshot: %zu bytes (print with --metrics)\n",
                d.metrics_json.size());
  } else {
    std::printf("\nno metrics section (signal-context dump)\n");
  }
}

// Chrome trace_event view: recursion enter/leave pairs become duration
// events (B/E), everything else instants, one track per thread.
bool write_chrome(const Dump& d, const char* path) {
  std::ofstream os(path);
  if (!os) return false;
  gep::obs::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const ThreadDump& td : d.threads) {
    for (const Event& ev : td.events) {
      const unsigned e = ev_of(ev.w);
      const double us = static_cast<double>(ev.t_ns) / 1e3;
      w.begin_object();
      if (e == kRecEnter || e == kRecLeave) {
        const std::uint64_t p = payload_of(ev.w);
        char name[32];
        std::snprintf(name, sizeof name, "%c m=%" PRIu64, rec_kind(p),
                      rec_m(p));
        w.kv("name", name);
        w.kv("ph", e == kRecEnter ? "B" : "E");
      } else {
        w.kv("name", ev_name(e));
        w.kv("ph", "i");
        w.kv("s", "t");
      }
      w.kv("ts", us);
      w.kv("pid", 1);
      w.kv("tid", static_cast<std::int64_t>(td.header.tid));
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  const char* dump_path = nullptr;
  const char* chrome_path = nullptr;
  bool show_metrics = false;
  bool show_prom = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--chrome") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--chrome needs an output path\n");
        return 2;
      }
      chrome_path = argv[++i];
    } else if (a == "--metrics") {
      show_metrics = true;
    } else if (a == "--prom") {
      show_prom = true;
    } else if (a == "-h" || a == "--help") {
      std::printf(
          "usage: %s DUMP.gepdump [--chrome OUT.json] [--metrics|--prom]\n"
          "Decodes a flight-recorder dump to text, a chrome://tracing\n"
          "JSON, or the embedded metrics-registry snapshot (--metrics:\n"
          "raw JSON; --prom: Prometheus text exposition).\n",
          argv[0]);
      return 0;
    } else if (dump_path == nullptr) {
      dump_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", a.c_str());
      return 2;
    }
  }
  if (dump_path == nullptr) {
    std::fprintf(stderr, "usage: %s DUMP.gepdump [--chrome OUT.json]"
                 " [--metrics]\n", argv[0]);
    return 2;
  }
  Dump d;
  std::string err;
  if (!load(dump_path, &d, &err)) {
    std::fprintf(stderr, "%s: %s\n", dump_path, err.c_str());
    return 1;
  }
  if (show_metrics || show_prom) {
    if (d.metrics_json.empty()) {
      std::fprintf(stderr, "%s: no metrics section\n", dump_path);
      return 1;
    }
    if (show_prom) {
      gep::obs::JsonValue v;
      std::string perr;
      if (!gep::obs::JsonValue::parse(d.metrics_json, &v, &perr)) {
        std::fprintf(stderr, "%s: bad metrics JSON: %s\n", dump_path,
                     perr.c_str());
        return 1;
      }
      gep::obs::expo::BuildInfo info = gep::obs::expo::env_build_info();
      info.obs_enabled = true;  // the dump came from an instrumented build
      std::fputs(
          gep::obs::expo::exposition(
              gep::obs::expo::samples_from_snapshot_json(v), info)
              .c_str(),
          stdout);
      return 0;
    }
    std::printf("%s\n", d.metrics_json.c_str());
    return 0;
  }
  print_text(d);
  if (chrome_path != nullptr) {
    if (!write_chrome(d, chrome_path)) {
      std::fprintf(stderr, "cannot write %s\n", chrome_path);
      return 1;
    }
    std::printf("chrome trace: %s (open in chrome://tracing)\n",
                chrome_path);
  }
  return 0;
}
