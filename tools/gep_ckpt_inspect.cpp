// Inspector for checkpoint snapshots (*.gepckpt).
//
//   gep_ckpt_inspect SNAP.gepckpt             # header + extent table
//   gep_ckpt_inspect --chain DIR JOB_ID       # validate a whole chain
//   gep_ckpt_inspect SNAP.gepckpt --extents   # full extent listing
//
// Every read goes through extmem/checkpoint.hpp's validating reader, so
// the verdict printed here is exactly the one resume would reach: a
// truncated, bit-flipped or chain-broken snapshot prints the
// CheckpointError and exits 1 instead of pretending the file is fine.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "extmem/checkpoint.hpp"
#include "parallel/dag_sim.hpp"

namespace {

const char* algo_name(std::uint32_t algo) {
  switch (static_cast<gep::DagProblem>(algo)) {
    case gep::DagProblem::FloydWarshall: return "floyd-warshall";
    case gep::DagProblem::Gaussian: return "gaussian";
    case gep::DagProblem::LU: return "lu";
    case gep::DagProblem::MatMul: return "matmul";
  }
  return "unknown";
}

std::uint64_t frontier_popcount(const std::vector<std::uint8_t>& bits) {
  std::uint64_t n = 0;
  for (std::uint8_t b : bits) {
    while (b != 0) {
      n += b & 1u;
      b = static_cast<std::uint8_t>(b >> 1);
    }
  }
  return n;
}

void print_snapshot(const gep::SnapshotInfo& s, bool full_extents) {
  const auto& h = s.header;
  std::printf("%s\n", s.path.c_str());
  std::printf("  schema v%u  job %016" PRIx64 "  seq %" PRIu64
              "  parent_crc %08x  file_crc %08x\n",
              h.version, h.job_id, h.seq, h.parent_crc, s.file_crc);
  std::printf("  algo %s  n %" PRIu64 "  base %" PRIu64
              "  options_hash %016" PRIx64 "\n",
              algo_name(h.algo), h.n, h.base, h.options_hash);
  std::printf("  elem %u B  page %" PRIu64 " B  matrices %u\n",
              h.elem_bytes, h.page_bytes, h.n_mats);
  for (std::size_t i = 0; i < s.mats.size(); ++i) {
    const auto& m = s.mats[i];
    std::printf("    mat %zu: %" PRIu64 "x%" PRIu64 "  tile %" PRIu64
                "  pages %" PRIu64 "\n",
                i, m.rows, m.cols, m.tile_side, m.pages);
  }
  std::printf("  frontier: %" PRIu64 "/%" PRIu64 " leaves done"
              " (bitmap agrees: %s)\n",
              h.done_count, h.task_count,
              frontier_popcount(s.frontier) == h.done_count ? "yes" : "NO");
  std::uint64_t pages = 0;
  for (const auto& e : s.extents) pages += e.count;
  std::printf("  extents: %" PRIu64 " (%" PRIu64 " pages, %" PRIu64
              " payload bytes) — all payload CRCs verified\n",
              h.extent_count, pages, pages * h.page_bytes);
  if (full_extents) {
    for (const auto& e : s.extents) {
      std::printf("    mat %u pages [%" PRIu64 ", %" PRIu64
                  ")  crc %08x\n",
                  e.mat, e.start_page, e.start_page + e.count,
                  e.payload_crc);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* snap_path = nullptr;
  const char* chain_dir = nullptr;
  std::uint64_t job_id = 0;
  bool full_extents = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--chain") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "--chain needs DIR and JOB_ID\n");
        return 2;
      }
      chain_dir = argv[++i];
      job_id = std::strtoull(argv[++i], nullptr, 0);
    } else if (a == "--extents") {
      full_extents = true;
    } else if (a == "-h" || a == "--help") {
      std::printf(
          "usage: %s SNAP.gepckpt [--extents]\n"
          "       %s --chain DIR JOB_ID [--extents]\n"
          "Validates and dumps checkpoint snapshots. Exit 0 = the file\n"
          "(or chain) passed every checksum; 1 = corrupt/unusable.\n",
          argv[0], argv[0]);
      return 0;
    } else if (snap_path == nullptr) {
      snap_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", a.c_str());
      return 2;
    }
  }
  try {
    if (chain_dir != nullptr) {
      const auto chain = gep::load_chain(chain_dir, job_id);
      if (chain.empty()) {
        std::printf("no snapshots for job %016" PRIx64 " in %s\n", job_id,
                    chain_dir);
        return 0;
      }
      for (const auto& s : chain) print_snapshot(s, full_extents);
      std::printf("chain OK: %zu snapshot(s), resumable at %" PRIu64
                  "/%" PRIu64 " leaves\n",
                  chain.size(), chain.back().header.done_count,
                  chain.back().header.task_count);
      return 0;
    }
    if (snap_path == nullptr) {
      std::fprintf(stderr, "usage: %s SNAP.gepckpt | --chain DIR JOB_ID\n",
                   argv[0]);
      return 2;
    }
    const gep::SnapshotInfo s = gep::read_snapshot(snap_path, nullptr);
    print_snapshot(s, full_extents);
    return 0;
  } catch (const gep::CheckpointError& e) {
    std::fprintf(stderr, "REJECTED: %s\n", e.what());
    return 1;
  }
}
