// gep_top: live console monitor for a job exporting via the embedded
// stat server (obs/stat_server.hpp).
//
//   gep_top                     # $GEP_STAT_PORT or 9464, refresh 1s
//   gep_top --port 9470         # explicit port
//   gep_top --interval 0.5      # refresh cadence
//   gep_top --once --json       # one merged JSON sample (scripting)
//
// Curses-free: the dashboard repaints with plain ANSI control sequences
// (home + clear-to-end), so it works in any terminal and degrades to a
// scrolling log when redirected. Rates (updates/s, steals/s, prefetch
// hit rate) come from deltas between successive /metrics scrapes; the
// rest is read straight off /progress, /io, /healthz and /profile.
//
// The tool is a pure HTTP client over loopback — no linkage into the
// job, no shared memory; it sees exactly what any Prometheus scraper
// sees.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_read.hpp"

namespace {

using gep::obs::JsonValue;
using gep::obs::JsonWriter;

struct HttpResult {
  bool ok = false;
  int status = 0;
  std::string body;
};

// Minimal blocking GET against 127.0.0.1:port with 2s socket timeouts.
HttpResult http_get(int port, const char* path) {
  HttpResult r;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return r;
  }
  std::string req = "GET ";
  req += path;
  req += " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return r;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) return r;
  r.status = std::atoi(raw.c_str() + raw.find(' ') + 1);
  r.body = raw.substr(head_end + 4);
  r.ok = true;
  return r;
}

// Prometheus text -> {series name (with labels) -> value}.
std::map<std::string, double> parse_metrics(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    out[line.substr(0, sp)] = std::atof(line.c_str() + sp + 1);
  }
  return out;
}

double series(const std::map<std::string, double>& m, const char* name) {
  const auto it = m.find(name);
  return it == m.end() ? 0.0 : it->second;
}

struct Sample {
  std::chrono::steady_clock::time_point t;
  bool reachable = false;
  std::map<std::string, double> metrics;
  int healthz_status = 0;
  JsonValue healthz;
  JsonValue progress;
  JsonValue io;
  JsonValue profile;
  std::string healthz_raw, progress_raw, io_raw;
};

Sample scrape(int port) {
  Sample s;
  s.t = std::chrono::steady_clock::now();
  const HttpResult m = http_get(port, "/metrics");
  if (!m.ok) return s;
  s.reachable = true;
  s.metrics = parse_metrics(m.body);
  if (const HttpResult h = http_get(port, "/healthz"); h.ok) {
    s.healthz_status = h.status;
    s.healthz_raw = h.body;
    JsonValue::parse(h.body, &s.healthz);
  }
  if (const HttpResult p = http_get(port, "/progress"); p.ok) {
    s.progress_raw = p.body;
    JsonValue::parse(p.body, &s.progress);
  }
  if (const HttpResult i = http_get(port, "/io"); i.ok) {
    s.io_raw = i.body;
    JsonValue::parse(i.body, &s.io);
  }
  if (const HttpResult pr = http_get(port, "/profile"); pr.ok) {
    JsonValue::parse(pr.body, &s.profile);
  }
  return s;
}

struct ProfRow {
  char kind = '?';
  int depth = 0;
  double calls = 0;
  double self_ns = 0;
};

std::vector<ProfRow> top_self_time(const JsonValue& profile, std::size_t n) {
  std::vector<ProfRow> rows;
  if (const JsonValue* entries = profile.find("entries");
      entries != nullptr && entries->is_array()) {
    for (const JsonValue& e : entries->items()) {
      ProfRow r;
      const std::string& k = e["kind"].as_string();
      r.kind = k.empty() ? '?' : k[0];
      r.depth = static_cast<int>(e["depth"].as_double());
      r.calls = e["calls"].as_double();
      r.self_ns = e["self_ns"].as_double();
      rows.push_back(r);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProfRow& a, const ProfRow& b) {
              return a.self_ns > b.self_ns;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

// Per-second delta of a counter series between two scrapes.
double rate(const Sample& prev, const Sample& cur, const char* name) {
  if (!prev.reachable) return 0.0;
  const double dt =
      std::chrono::duration<double>(cur.t - prev.t).count();
  if (dt <= 0) return 0.0;
  return (series(cur.metrics, name) - series(prev.metrics, name)) / dt;
}

std::string progress_bar(double fraction, int width) {
  fraction = std::min(1.0, std::max(0.0, fraction));
  const int full = static_cast<int>(fraction * width + 0.5);
  std::string bar = "[";
  for (int i = 0; i < width; ++i) bar += i < full ? '#' : '-';
  bar += ']';
  return bar;
}

std::string fmt_eta(double eta_s) {
  if (eta_s < 0) return "?";
  char buf[32];
  if (eta_s >= 3600) {
    std::snprintf(buf, sizeof buf, "%.1fh", eta_s / 3600);
  } else if (eta_s >= 60) {
    std::snprintf(buf, sizeof buf, "%.1fm", eta_s / 60);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", eta_s);
  }
  return buf;
}

void render(int port, const Sample& prev, const Sample& cur, bool repaint) {
  if (repaint) std::fputs("\x1b[H\x1b[2J", stdout);
  std::printf("gep_top — 127.0.0.1:%d", port);
  if (!cur.reachable) {
    std::printf("  [unreachable]\n");
    std::fflush(stdout);
    return;
  }
  const char* health = cur.healthz_status == 200   ? "healthy"
                       : cur.healthz_status == 503 ? "UNHEALTHY"
                                                   : "?";
  std::printf("  health: %s", health);
  if (const JsonValue* wd = cur.healthz.find("watchdog")) {
    std::printf(" (watchdog %s, stalls %.0f, dumps %.0f)",
                (*wd)["state"].as_string().c_str(),
                (*wd)["stalls"].as_double(), (*wd)["dumps"].as_double());
  }
  std::printf("\n\n");

  if (cur.progress["active"].as_bool()) {
    const double frac = cur.progress["fraction"].as_double();
    std::printf("  %s %5.1f%%  %s\n", progress_bar(frac, 40).c_str(),
                100.0 * frac, cur.progress["label"].as_string().c_str());
    std::printf("  elapsed %.1fs  eta %s  %.2f GF/s  %.3g updates/s\n",
                cur.progress["elapsed_s"].as_double(),
                fmt_eta(cur.progress["eta_s"].as_double()).c_str(),
                cur.progress["gflops"].as_double(),
                cur.progress["updates_per_s"].as_double());
  } else {
    std::printf("  (no active progress meter)\n");
  }

  if (cur.io["active"].as_bool()) {
    std::printf("  io: measured %.0f  predicted %.0f  ratio %.3f\n",
                cur.io["io_measured"].as_double(),
                cur.io["io_predicted"].as_double(),
                cur.io["io_ratio"].as_double());
  }

  const double d_pref_hits =
      rate(prev, cur, "gep_extmem_prefetch_hits_total");
  const double d_faults =
      rate(prev, cur, "gep_extmem_page_cache_hits_total") +
      rate(prev, cur, "gep_extmem_page_cache_misses_total");
  std::printf(
      "  cache: occupancy %.0f%%  prefetch q %.0f  hit-rate %.1f%%  "
      "degraded %s\n",
      100.0 * series(cur.metrics, "gep_extmem_cache_occupancy"),
      series(cur.metrics, "gep_extmem_prefetch_queue_depth"),
      d_faults > 0 ? 100.0 * d_pref_hits / d_faults : 0.0,
      series(cur.metrics, "gep_extmem_async_degraded") > 0.5 ? "YES" : "no");
  std::printf(
      "  workers: active %.0f  steals/s %.1f  parks/s %.1f\n",
      series(cur.metrics, "gep_parallel_ws_active_workers"),
      rate(prev, cur, "gep_parallel_ws_steals_total"),
      rate(prev, cur, "gep_parallel_ws_idle_wakes_total"));

  const std::vector<ProfRow> rows = top_self_time(cur.profile, 5);
  if (!rows.empty()) {
    std::printf("\n  %-6s %-6s %12s %14s\n", "kind", "depth", "calls",
                "self-ms");
    for (const ProfRow& r : rows) {
      std::printf("  %-6c %-6d %12.0f %14.2f\n", r.kind, r.depth, r.calls,
                  r.self_ns / 1e6);
    }
  }
  std::fflush(stdout);
}

// One merged machine-readable sample: the raw endpoint bodies spliced
// in verbatim plus the parsed metric series.
void render_json(int port, const Sample& cur) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("port", port);
  w.kv("reachable", cur.reachable);
  if (cur.reachable) {
    w.kv("healthz_status", cur.healthz_status);
    if (!cur.healthz_raw.empty()) {
      w.key("healthz");
      w.raw(cur.healthz_raw);
    }
    if (!cur.progress_raw.empty()) {
      w.key("progress");
      w.raw(cur.progress_raw);
    }
    if (!cur.io_raw.empty()) {
      w.key("io");
      w.raw(cur.io_raw);
    }
    w.key("metrics");
    w.begin_object();
    for (const auto& [name, value] : cur.metrics) w.kv(name, value);
    w.end_object();
    w.key("profile_top");
    w.begin_array();
    for (const ProfRow& r : top_self_time(cur.profile, 5)) {
      w.begin_object();
      const char kind[2] = {r.kind, 0};
      w.kv("kind", kind);
      w.kv("depth", r.depth);
      w.kv("calls", r.calls);
      w.kv("self_ns", r.self_ns);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  std::printf("%s\n", os.str().c_str());
}

volatile std::sig_atomic_t g_stop = 0;
void on_sigint(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  double interval_s = 1.0;
  bool once = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (a == "--interval" && i + 1 < argc) {
      interval_s = std::atof(argv[++i]);
    } else if (a == "--once") {
      once = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "-h" || a == "--help") {
      std::printf(
          "usage: %s [--port N] [--interval SEC] [--once] [--json]\n"
          "Live dashboard over a job's embedded stat server.\n"
          "Default port: $GEP_STAT_PORT, else 9464.\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", a.c_str());
      return 2;
    }
  }
  if (port <= 0) {
    const char* env = std::getenv("GEP_STAT_PORT");
    port = env != nullptr ? std::atoi(env) : 0;
    if (port <= 0) port = 9464;
  }
  if (json && !once) {
    std::fprintf(stderr, "--json requires --once\n");
    return 2;
  }

  if (once) {
    const Sample s = scrape(port);
    if (json) {
      render_json(port, s);
    } else {
      render(port, Sample{}, s, /*repaint=*/false);
    }
    return s.reachable ? 0 : 1;
  }

  std::signal(SIGINT, on_sigint);
  Sample prev;
  while (g_stop == 0) {
    const Sample cur = scrape(port);
    render(port, prev, cur, /*repaint=*/true);
    prev = cur;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(interval_s);
    while (g_stop == 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  std::printf("\n");
  return 0;
}
