# Empty dependencies file for test_paths_solver.
# This may be replaced when dependencies are built.
