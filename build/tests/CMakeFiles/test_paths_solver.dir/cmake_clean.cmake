file(REMOVE_RECURSE
  "CMakeFiles/test_paths_solver.dir/test_paths_solver.cpp.o"
  "CMakeFiles/test_paths_solver.dir/test_paths_solver.cpp.o.d"
  "test_paths_solver"
  "test_paths_solver.pdb"
  "test_paths_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paths_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
