# Empty dependencies file for test_cgep.
# This may be replaced when dependencies are built.
