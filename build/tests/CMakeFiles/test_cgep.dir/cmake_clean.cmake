file(REMOVE_RECURSE
  "CMakeFiles/test_cgep.dir/test_cgep.cpp.o"
  "CMakeFiles/test_cgep.dir/test_cgep.cpp.o.d"
  "test_cgep"
  "test_cgep.pdb"
  "test_cgep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cgep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
