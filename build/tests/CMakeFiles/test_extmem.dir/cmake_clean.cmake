file(REMOVE_RECURSE
  "CMakeFiles/test_extmem.dir/test_extmem.cpp.o"
  "CMakeFiles/test_extmem.dir/test_extmem.cpp.o.d"
  "test_extmem"
  "test_extmem.pdb"
  "test_extmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
