file(REMOVE_RECURSE
  "CMakeFiles/test_igep.dir/test_igep.cpp.o"
  "CMakeFiles/test_igep.dir/test_igep.cpp.o.d"
  "test_igep"
  "test_igep.pdb"
  "test_igep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_igep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
