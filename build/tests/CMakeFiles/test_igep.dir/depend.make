# Empty dependencies file for test_igep.
# This may be replaced when dependencies are built.
