# Empty compiler generated dependencies file for test_simple_dp.
# This may be replaced when dependencies are built.
