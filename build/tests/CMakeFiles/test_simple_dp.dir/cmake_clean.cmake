file(REMOVE_RECURSE
  "CMakeFiles/test_simple_dp.dir/test_simple_dp.cpp.o"
  "CMakeFiles/test_simple_dp.dir/test_simple_dp.cpp.o.d"
  "test_simple_dp"
  "test_simple_dp.pdb"
  "test_simple_dp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simple_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
