file(REMOVE_RECURSE
  "CMakeFiles/test_update_sets.dir/test_update_sets.cpp.o"
  "CMakeFiles/test_update_sets.dir/test_update_sets.cpp.o.d"
  "test_update_sets"
  "test_update_sets.pdb"
  "test_update_sets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
