# Empty dependencies file for test_update_sets.
# This may be replaced when dependencies are built.
