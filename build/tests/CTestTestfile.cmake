# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_update_sets[1]_include.cmake")
include("/root/repo/build/tests/test_igep[1]_include.cmake")
include("/root/repo/build/tests/test_cgep[1]_include.cmake")
include("/root/repo/build/tests/test_theorems[1]_include.cmake")
include("/root/repo/build/tests/test_typed[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_extmem[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_simple_dp[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_paths_solver[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_value_types[1]_include.cmake")
