file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_apsp.dir/bench_fig8_apsp.cpp.o"
  "CMakeFiles/bench_fig8_apsp.dir/bench_fig8_apsp.cpp.o.d"
  "bench_fig8_apsp"
  "bench_fig8_apsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
