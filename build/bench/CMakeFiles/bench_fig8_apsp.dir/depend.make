# Empty dependencies file for bench_fig8_apsp.
# This may be replaced when dependencies are built.
