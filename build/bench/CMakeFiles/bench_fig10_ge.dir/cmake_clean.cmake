file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ge.dir/bench_fig10_ge.cpp.o"
  "CMakeFiles/bench_fig10_ge.dir/bench_fig10_ge.cpp.o.d"
  "bench_fig10_ge"
  "bench_fig10_ge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
