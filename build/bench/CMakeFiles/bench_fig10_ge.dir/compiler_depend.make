# Empty compiler generated dependencies file for bench_fig10_ge.
# This may be replaced when dependencies are built.
