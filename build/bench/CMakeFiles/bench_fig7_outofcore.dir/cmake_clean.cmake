file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_outofcore.dir/bench_fig7_outofcore.cpp.o"
  "CMakeFiles/bench_fig7_outofcore.dir/bench_fig7_outofcore.cpp.o.d"
  "bench_fig7_outofcore"
  "bench_fig7_outofcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_outofcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
