# Empty dependencies file for bench_fig9_cgep.
# This may be replaced when dependencies are built.
