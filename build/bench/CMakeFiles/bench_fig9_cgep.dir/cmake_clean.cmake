file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cgep.dir/bench_fig9_cgep.cpp.o"
  "CMakeFiles/bench_fig9_cgep.dir/bench_fig9_cgep.cpp.o.d"
  "bench_fig9_cgep"
  "bench_fig9_cgep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cgep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
