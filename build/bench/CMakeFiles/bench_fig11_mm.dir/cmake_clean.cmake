file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mm.dir/bench_fig11_mm.cpp.o"
  "CMakeFiles/bench_fig11_mm.dir/bench_fig11_mm.cpp.o.d"
  "bench_fig11_mm"
  "bench_fig11_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
