# Empty dependencies file for bench_fig11_mm.
# This may be replaced when dependencies are built.
