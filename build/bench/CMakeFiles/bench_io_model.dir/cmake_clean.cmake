file(REMOVE_RECURSE
  "CMakeFiles/bench_io_model.dir/bench_io_model.cpp.o"
  "CMakeFiles/bench_io_model.dir/bench_io_model.cpp.o.d"
  "bench_io_model"
  "bench_io_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
