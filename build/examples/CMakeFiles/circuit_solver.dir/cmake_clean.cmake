file(REMOVE_RECURSE
  "CMakeFiles/circuit_solver.dir/circuit_solver.cpp.o"
  "CMakeFiles/circuit_solver.dir/circuit_solver.cpp.o.d"
  "circuit_solver"
  "circuit_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
