# Empty dependencies file for circuit_solver.
# This may be replaced when dependencies are built.
