# Empty compiler generated dependencies file for gep_tool.
# This may be replaced when dependencies are built.
