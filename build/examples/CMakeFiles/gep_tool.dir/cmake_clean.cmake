file(REMOVE_RECURSE
  "CMakeFiles/gep_tool.dir/gep_tool.cpp.o"
  "CMakeFiles/gep_tool.dir/gep_tool.cpp.o.d"
  "gep_tool"
  "gep_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gep_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
