file(REMOVE_RECURSE
  "CMakeFiles/parallel_mm.dir/parallel_mm.cpp.o"
  "CMakeFiles/parallel_mm.dir/parallel_mm.cpp.o.d"
  "parallel_mm"
  "parallel_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
