# Empty dependencies file for parallel_mm.
# This may be replaced when dependencies are built.
