file(REMOVE_RECURSE
  "CMakeFiles/apsp_roadmap.dir/apsp_roadmap.cpp.o"
  "CMakeFiles/apsp_roadmap.dir/apsp_roadmap.cpp.o.d"
  "apsp_roadmap"
  "apsp_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apsp_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
