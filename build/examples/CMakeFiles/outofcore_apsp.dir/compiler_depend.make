# Empty compiler generated dependencies file for outofcore_apsp.
# This may be replaced when dependencies are built.
