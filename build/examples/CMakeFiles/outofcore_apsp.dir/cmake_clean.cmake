file(REMOVE_RECURSE
  "CMakeFiles/outofcore_apsp.dir/outofcore_apsp.cpp.o"
  "CMakeFiles/outofcore_apsp.dir/outofcore_apsp.cpp.o.d"
  "outofcore_apsp"
  "outofcore_apsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outofcore_apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
