file(REMOVE_RECURSE
  "CMakeFiles/gep_blas.dir/blas/dgemm.cpp.o"
  "CMakeFiles/gep_blas.dir/blas/dgemm.cpp.o.d"
  "CMakeFiles/gep_blas.dir/blas/fw_tiled.cpp.o"
  "CMakeFiles/gep_blas.dir/blas/fw_tiled.cpp.o.d"
  "CMakeFiles/gep_blas.dir/blas/lu_blocked.cpp.o"
  "CMakeFiles/gep_blas.dir/blas/lu_blocked.cpp.o.d"
  "libgep_blas.a"
  "libgep_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gep_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
