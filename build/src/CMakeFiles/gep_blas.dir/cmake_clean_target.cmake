file(REMOVE_RECURSE
  "libgep_blas.a"
)
