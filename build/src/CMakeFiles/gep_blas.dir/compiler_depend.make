# Empty compiler generated dependencies file for gep_blas.
# This may be replaced when dependencies are built.
