
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/dgemm.cpp" "src/CMakeFiles/gep_blas.dir/blas/dgemm.cpp.o" "gcc" "src/CMakeFiles/gep_blas.dir/blas/dgemm.cpp.o.d"
  "/root/repo/src/blas/fw_tiled.cpp" "src/CMakeFiles/gep_blas.dir/blas/fw_tiled.cpp.o" "gcc" "src/CMakeFiles/gep_blas.dir/blas/fw_tiled.cpp.o.d"
  "/root/repo/src/blas/lu_blocked.cpp" "src/CMakeFiles/gep_blas.dir/blas/lu_blocked.cpp.o" "gcc" "src/CMakeFiles/gep_blas.dir/blas/lu_blocked.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
