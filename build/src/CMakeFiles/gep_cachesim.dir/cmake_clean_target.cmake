file(REMOVE_RECURSE
  "libgep_cachesim.a"
)
