# Empty dependencies file for gep_cachesim.
# This may be replaced when dependencies are built.
