file(REMOVE_RECURSE
  "CMakeFiles/gep_cachesim.dir/cachesim/ideal_cache.cpp.o"
  "CMakeFiles/gep_cachesim.dir/cachesim/ideal_cache.cpp.o.d"
  "CMakeFiles/gep_cachesim.dir/cachesim/set_assoc_cache.cpp.o"
  "CMakeFiles/gep_cachesim.dir/cachesim/set_assoc_cache.cpp.o.d"
  "libgep_cachesim.a"
  "libgep_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gep_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
