
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/floyd_warshall.cpp" "src/CMakeFiles/gep_apps.dir/apps/floyd_warshall.cpp.o" "gcc" "src/CMakeFiles/gep_apps.dir/apps/floyd_warshall.cpp.o.d"
  "/root/repo/src/apps/gap_alignment.cpp" "src/CMakeFiles/gep_apps.dir/apps/gap_alignment.cpp.o" "gcc" "src/CMakeFiles/gep_apps.dir/apps/gap_alignment.cpp.o.d"
  "/root/repo/src/apps/gaussian.cpp" "src/CMakeFiles/gep_apps.dir/apps/gaussian.cpp.o" "gcc" "src/CMakeFiles/gep_apps.dir/apps/gaussian.cpp.o.d"
  "/root/repo/src/apps/linear_solver.cpp" "src/CMakeFiles/gep_apps.dir/apps/linear_solver.cpp.o" "gcc" "src/CMakeFiles/gep_apps.dir/apps/linear_solver.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/CMakeFiles/gep_apps.dir/apps/matmul.cpp.o" "gcc" "src/CMakeFiles/gep_apps.dir/apps/matmul.cpp.o.d"
  "/root/repo/src/apps/paths.cpp" "src/CMakeFiles/gep_apps.dir/apps/paths.cpp.o" "gcc" "src/CMakeFiles/gep_apps.dir/apps/paths.cpp.o.d"
  "/root/repo/src/apps/simple_dp.cpp" "src/CMakeFiles/gep_apps.dir/apps/simple_dp.cpp.o" "gcc" "src/CMakeFiles/gep_apps.dir/apps/simple_dp.cpp.o.d"
  "/root/repo/src/apps/transitive_closure.cpp" "src/CMakeFiles/gep_apps.dir/apps/transitive_closure.cpp.o" "gcc" "src/CMakeFiles/gep_apps.dir/apps/transitive_closure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gep_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gep_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
