file(REMOVE_RECURSE
  "libgep_apps.a"
)
