file(REMOVE_RECURSE
  "CMakeFiles/gep_apps.dir/apps/floyd_warshall.cpp.o"
  "CMakeFiles/gep_apps.dir/apps/floyd_warshall.cpp.o.d"
  "CMakeFiles/gep_apps.dir/apps/gap_alignment.cpp.o"
  "CMakeFiles/gep_apps.dir/apps/gap_alignment.cpp.o.d"
  "CMakeFiles/gep_apps.dir/apps/gaussian.cpp.o"
  "CMakeFiles/gep_apps.dir/apps/gaussian.cpp.o.d"
  "CMakeFiles/gep_apps.dir/apps/linear_solver.cpp.o"
  "CMakeFiles/gep_apps.dir/apps/linear_solver.cpp.o.d"
  "CMakeFiles/gep_apps.dir/apps/matmul.cpp.o"
  "CMakeFiles/gep_apps.dir/apps/matmul.cpp.o.d"
  "CMakeFiles/gep_apps.dir/apps/paths.cpp.o"
  "CMakeFiles/gep_apps.dir/apps/paths.cpp.o.d"
  "CMakeFiles/gep_apps.dir/apps/simple_dp.cpp.o"
  "CMakeFiles/gep_apps.dir/apps/simple_dp.cpp.o.d"
  "CMakeFiles/gep_apps.dir/apps/transitive_closure.cpp.o"
  "CMakeFiles/gep_apps.dir/apps/transitive_closure.cpp.o.d"
  "libgep_apps.a"
  "libgep_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gep_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
