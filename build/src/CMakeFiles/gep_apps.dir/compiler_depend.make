# Empty compiler generated dependencies file for gep_apps.
# This may be replaced when dependencies are built.
