file(REMOVE_RECURSE
  "libgep_parallel.a"
)
