
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/dag_sim.cpp" "src/CMakeFiles/gep_parallel.dir/parallel/dag_sim.cpp.o" "gcc" "src/CMakeFiles/gep_parallel.dir/parallel/dag_sim.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/gep_parallel.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gep_parallel.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/parallel/work_stealing.cpp" "src/CMakeFiles/gep_parallel.dir/parallel/work_stealing.cpp.o" "gcc" "src/CMakeFiles/gep_parallel.dir/parallel/work_stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
