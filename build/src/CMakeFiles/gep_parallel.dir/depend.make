# Empty dependencies file for gep_parallel.
# This may be replaced when dependencies are built.
