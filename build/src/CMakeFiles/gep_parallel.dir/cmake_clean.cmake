file(REMOVE_RECURSE
  "CMakeFiles/gep_parallel.dir/parallel/dag_sim.cpp.o"
  "CMakeFiles/gep_parallel.dir/parallel/dag_sim.cpp.o.d"
  "CMakeFiles/gep_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/gep_parallel.dir/parallel/thread_pool.cpp.o.d"
  "CMakeFiles/gep_parallel.dir/parallel/work_stealing.cpp.o"
  "CMakeFiles/gep_parallel.dir/parallel/work_stealing.cpp.o.d"
  "libgep_parallel.a"
  "libgep_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gep_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
