file(REMOVE_RECURSE
  "CMakeFiles/gep_util.dir/util/cpuinfo.cpp.o"
  "CMakeFiles/gep_util.dir/util/cpuinfo.cpp.o.d"
  "CMakeFiles/gep_util.dir/util/matrix_io.cpp.o"
  "CMakeFiles/gep_util.dir/util/matrix_io.cpp.o.d"
  "CMakeFiles/gep_util.dir/util/peak.cpp.o"
  "CMakeFiles/gep_util.dir/util/peak.cpp.o.d"
  "CMakeFiles/gep_util.dir/util/table.cpp.o"
  "CMakeFiles/gep_util.dir/util/table.cpp.o.d"
  "libgep_util.a"
  "libgep_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gep_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
