
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cpuinfo.cpp" "src/CMakeFiles/gep_util.dir/util/cpuinfo.cpp.o" "gcc" "src/CMakeFiles/gep_util.dir/util/cpuinfo.cpp.o.d"
  "/root/repo/src/util/matrix_io.cpp" "src/CMakeFiles/gep_util.dir/util/matrix_io.cpp.o" "gcc" "src/CMakeFiles/gep_util.dir/util/matrix_io.cpp.o.d"
  "/root/repo/src/util/peak.cpp" "src/CMakeFiles/gep_util.dir/util/peak.cpp.o" "gcc" "src/CMakeFiles/gep_util.dir/util/peak.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/gep_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/gep_util.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
