file(REMOVE_RECURSE
  "libgep_util.a"
)
