# Empty compiler generated dependencies file for gep_util.
# This may be replaced when dependencies are built.
