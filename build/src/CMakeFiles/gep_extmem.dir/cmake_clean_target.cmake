file(REMOVE_RECURSE
  "libgep_extmem.a"
)
