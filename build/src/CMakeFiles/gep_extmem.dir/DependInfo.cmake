
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extmem/block_file.cpp" "src/CMakeFiles/gep_extmem.dir/extmem/block_file.cpp.o" "gcc" "src/CMakeFiles/gep_extmem.dir/extmem/block_file.cpp.o.d"
  "/root/repo/src/extmem/disk_model.cpp" "src/CMakeFiles/gep_extmem.dir/extmem/disk_model.cpp.o" "gcc" "src/CMakeFiles/gep_extmem.dir/extmem/disk_model.cpp.o.d"
  "/root/repo/src/extmem/page_cache.cpp" "src/CMakeFiles/gep_extmem.dir/extmem/page_cache.cpp.o" "gcc" "src/CMakeFiles/gep_extmem.dir/extmem/page_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
