# Empty dependencies file for gep_extmem.
# This may be replaced when dependencies are built.
