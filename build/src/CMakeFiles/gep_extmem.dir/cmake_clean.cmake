file(REMOVE_RECURSE
  "CMakeFiles/gep_extmem.dir/extmem/block_file.cpp.o"
  "CMakeFiles/gep_extmem.dir/extmem/block_file.cpp.o.d"
  "CMakeFiles/gep_extmem.dir/extmem/disk_model.cpp.o"
  "CMakeFiles/gep_extmem.dir/extmem/disk_model.cpp.o.d"
  "CMakeFiles/gep_extmem.dir/extmem/page_cache.cpp.o"
  "CMakeFiles/gep_extmem.dir/extmem/page_cache.cpp.o.d"
  "libgep_extmem.a"
  "libgep_extmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gep_extmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
