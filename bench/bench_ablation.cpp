// Ablations of the Section 4.2 optimizations:
//   1. base-size sweep — recursion overhead vs cache footprint tradeoff
//      (paper: best 64x64 on Opteron, 128x128 on Xeon);
//   2. bit-interleaved layout on/off at several n (TLB effect grows
//      with n; conversion cost included);
//   3. division hoisting in the GE kernel on/off;
//   4. BLAS-baseline gemm blocking parameters.
#include "bench_common.hpp"

#include <cmath>

#include "apps/apps.hpp"
#include "apps/gap_alignment.hpp"
#include "apps/simple_dp.hpp"
#include "blas/blas.hpp"
#include "gep/typed.hpp"

namespace {

using namespace gep;
using apps::Engine;

// GE base kernel WITHOUT division hoisting (division in the inner loop,
// as naive GEP code would have it) for ablation 3.
void ge_unhoisted(double* c, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = k + 1; i < n; ++i) {
      for (index_t j = k + 1; j < n; ++j) {
        c[i * n + j] -= c[i * n + k] * c[k * n + j] / c[k * n + k];
      }
    }
  }
}

void ge_hoisted(double* c, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const double wkk = c[k * n + k];
    for (index_t i = k + 1; i < n; ++i) {
      const double t = c[i * n + k] / wkk;
      for (index_t j = k + 1; j < n; ++j) c[i * n + j] -= t * c[k * n + j];
    }
  }
}

}  // namespace

int main() {
  bench::print_host_banner("Ablations: base size, layout, division hoisting, "
                           "gemm blocking");
  const bool small = bench::small_run();

  // 1. base-size sweep for I-GEP Floyd-Warshall.
  {
    const index_t n = small ? 512 : 1024;
    Matrix<double> init = bench::random_dist_matrix(n, 1);
    Table t({"base size", "I-GEP FW (s)", "GFLOPS"});
    for (index_t bs : {8, 16, 32, 64, 128, 256}) {
      Matrix<double> d = init;
      WallTimer w;
      apps::floyd_warshall(d, Engine::IGep, {bs, 1});
      double dt = w.seconds();
      t.add_row({Table::integer(bs), Table::num(dt, 3),
                 Table::num(bench::flops_fw(n) / dt / 1e9, 2)});
    }
    std::printf("1. base-size sweep (n=%lld):\n", static_cast<long long>(n));
    t.print(std::cout);
    t.write_csv("ablation_base_size.csv");
  }

  // 2. layout: row-major blocks vs bit-interleaved (conversion included).
  {
    Table t({"n", "row-major (s)", "z-layout (s)", "z/rm ratio"});
    std::vector<index_t> sizes = small ? std::vector<index_t>{512}
                                       : std::vector<index_t>{512, 1024, 2048};
    for (index_t n : sizes) {
      Matrix<double> init = bench::random_dist_matrix(n, 2);
      Matrix<double> a = init, b = init;
      WallTimer w1;
      apps::floyd_warshall(a, Engine::IGep, {64, 1});
      double t_rm = w1.seconds();
      WallTimer w2;
      apps::floyd_warshall(b, Engine::IGepZ, {64, 1});
      double t_z = w2.seconds();
      t.add_row({Table::integer(n), Table::num(t_rm, 3), Table::num(t_z, 3),
                 Table::num(t_z / t_rm, 2)});
    }
    std::printf("2. layout ablation (FW, base=64):\n");
    t.print(std::cout);
    t.write_csv("ablation_layout.csv");
  }

  // 3. division hoisting in GE.
  {
    const index_t n = small ? 256 : 512;
    Matrix<double> init = bench::random_dd_matrix(n, 3);
    Matrix<double> a = init, b = init;
    WallTimer w1;
    ge_unhoisted(a.data(), n);
    double t_un = w1.seconds();
    WallTimer w2;
    ge_hoisted(b.data(), n);
    double t_h = w2.seconds();
    std::printf("3. GE division hoisting (n=%lld): in-loop %.3fs, hoisted "
                "%.3fs, speedup %.2fx\n\n",
                static_cast<long long>(n), t_un, t_h, t_un / t_h);
  }

  // 4. gemm blocking parameters for the BLAS baseline.
  {
    const index_t n = small ? 512 : 1024;
    Matrix<double> a = bench::random_matrix(n, 4);
    Matrix<double> b = bench::random_matrix(n, 5);
    Table t({"mc", "kc", "nc", "time (s)", "GFLOPS"});
    for (blas::GemmBlocking bl : {blas::GemmBlocking{64, 64, 256},
                                  blas::GemmBlocking{128, 256, 1024},
                                  blas::GemmBlocking{256, 128, 512},
                                  blas::GemmBlocking{32, 512, 2048}}) {
      Matrix<double> c(n, n, 0.0);
      WallTimer w;
      blas::dgemm_blocked(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(),
                          n, bl);
      double dt = w.seconds();
      t.add_row({Table::integer(bl.mc), Table::integer(bl.kc),
                 Table::integer(bl.nc), Table::num(dt, 3),
                 Table::num(bench::flops_mm(n) / dt / 1e9, 2)});
    }
    std::printf("4. gemm blocking sweep (n=%lld):\n",
                static_cast<long long>(n));
    t.print(std::cout);
    t.write_csv("ablation_gemm_blocking.csv");
  }
  // 5. Non-GEP adaptations (paper Section 1 / [6], [5]): cache-oblivious
  // simple-DP (parenthesis problem) and GAP alignment vs their iterative
  // DPs. Same results, fewer cache misses -> faster at larger n.
  {
    Table t({"problem", "n", "iterative (s)", "cache-oblivious (s)",
             "speedup"});
    for (index_t n : {256, 512, small ? 512 : 1024}) {
      SplitMix64 g(6);
      Matrix<double> leaves(n, n, 0.0);
      for (index_t i = 0; i + 1 < n; ++i) leaves(i, i + 1) = g.uniform(0, 9);
      auto w = [](index_t i, index_t j) {
        return 1.0 + 0.001 * static_cast<double>(i + j);
      };
      Matrix<double> a = leaves, b = leaves;
      WallTimer t1;
      apps::simple_dp_iterative(a, w);
      double ti = t1.seconds();
      WallTimer t2;
      apps::simple_dp_recursive(b, w, {64});
      double tr = t2.seconds();
      t.add_row({"simple-DP", Table::integer(n), Table::num(ti, 3),
                 Table::num(tr, 3), Table::num(ti / tr, 2)});
    }
    for (index_t n : {256, 512, small ? 512 : 1024}) {
      auto s_fn = [](index_t i, index_t j) {
        return (i * 7 + j * 3) % 4 == 0 ? 0.0 : 1.5;
      };
      auto wg = [](index_t q, index_t j) {
        return 2.0 + std::sqrt(static_cast<double>(j - q));
      };
      Matrix<double> a(n, n), b(n, n);
      WallTimer t1;
      apps::gap_alignment_iterative(a, s_fn, wg);
      double ti = t1.seconds();
      WallTimer t2;
      apps::gap_alignment_recursive(b, s_fn, wg, {64});
      double tr = t2.seconds();
      t.add_row({"GAP alignment", Table::integer(n), Table::num(ti, 3),
                 Table::num(tr, 3), Table::num(ti / tr, 2)});
    }
    std::printf("5. non-GEP adaptations (cache-oblivious vs iterative DP):\n");
    t.print(std::cout);
    t.write_csv("ablation_adaptations.csv");
  }
  return 0;
}
