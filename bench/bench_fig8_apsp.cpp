// Figure 8 reproduction: in-core Floyd-Warshall APSP, GEP vs I-GEP.
//
// Paper result: on Intel Xeon I-GEP runs ~5x faster than GEP; on AMD
// Opteron ~4x faster, across n. We sweep n, run the optimized iterative
// GEP baseline and typed I-GEP (row-major base blocks and bit-interleaved
// layout, conversion included), and print time and the speedup ratio.
#include "bench_common.hpp"

#include "apps/apps.hpp"

namespace {

using namespace gep;
using apps::Engine;

double time_engine(const Matrix<double>& init, Engine e, index_t base) {
  Matrix<double> d = init;
  WallTimer t;
  apps::floyd_warshall(d, e, {base, 1});
  double dt = t.seconds();
  // Fold a checksum into stderr-free output to defeat dead-code elision.
  volatile double sink = d(0, d.cols() - 1);
  (void)sink;
  return dt;
}

}  // namespace

int main() {
  double peak = bench::print_host_banner(
      "Figure 8: Floyd-Warshall APSP, GEP vs I-GEP (in-core)");
  const bool small = bench::small_run();
  std::vector<index_t> sizes =
      small ? std::vector<index_t>{128, 256, 512}
            : std::vector<index_t>{128, 256, 512, 1024, 2048};
  const index_t base = 64;

  Table table({"n", "GEP (s)", "I-GEP (s)", "I-GEP/Z (s)", "GEP GFLOPS",
               "I-GEP GFLOPS", "speedup I-GEP", "speedup I-GEP/Z"});
  for (index_t n : sizes) {
    Matrix<double> init = bench::random_dist_matrix(n, 42);
    double t_gep = time_engine(init, Engine::Iterative, base);
    double t_igep = time_engine(init, Engine::IGep, base);
    double t_igz = time_engine(init, Engine::IGepZ, base);
    double fl = bench::flops_fw(n);
    table.add_row({Table::integer(n), Table::num(t_gep, 3),
                   Table::num(t_igep, 3), Table::num(t_igz, 3),
                   Table::num(fl / t_gep / 1e9, 2),
                   Table::num(fl / t_igep / 1e9, 2),
                   Table::num(t_gep / t_igep, 2),
                   Table::num(t_gep / t_igz, 2)});
  }
  table.print(std::cout);
  table.write_csv("fig8_apsp.csv");
  std::printf(
      "\npaper: I-GEP ~4-5x faster than GEP (Xeon ~5x, Opteron ~4x).\n"
      "peak reference: %.2f GFLOP/s (min+add counted as 2 flops/update)\n",
      peak);
  return 0;
}
