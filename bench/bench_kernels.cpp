// google-benchmark microbenchmarks of the base-case kernels and the
// BLAS-baseline micro-kernel: the building blocks whose throughput sets
// the "% of peak" ceilings in Figs. 10 and 11.
#include <benchmark/benchmark.h>

#include "blas/blas.hpp"
#include "gep/kernels.hpp"
#include "util/prng.hpp"

namespace {

using gep::index_t;

std::vector<double> random_buf(index_t n, std::uint64_t seed) {
  gep::SplitMix64 g(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = g.uniform(0.5, 1.5);
  return v;
}

void BM_KernelFW(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 1), u = random_buf(m * m, 2),
       v = random_buf(m * m, 3);
  for (auto _ : state) {
    gep::kernel_fw(x.data(), u.data(), v.data(), m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * m);
}
BENCHMARK(BM_KernelFW)->Arg(32)->Arg(64)->Arg(128);

void BM_KernelMM(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 4), u = random_buf(m * m, 5),
       v = random_buf(m * m, 6);
  for (auto _ : state) {
    gep::kernel_mm(x.data(), u.data(), v.data(), m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_KernelMM)->Arg(32)->Arg(64)->Arg(128);

void BM_KernelLU_D(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 7), u = random_buf(m * m, 8),
       v = random_buf(m * m, 9), w = random_buf(m * m, 10);
  for (auto _ : state) {
    gep::kernel_lu(x.data(), u.data(), v.data(), w.data(), m, m, m, m, m,
                   false, false);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_KernelLU_D)->Arg(32)->Arg(64)->Arg(128);

void BM_KernelTC(benchmark::State& state) {
  const index_t m = state.range(0);
  gep::SplitMix64 g(20);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(m * m)),
      u(static_cast<std::size_t>(m * m)), v(static_cast<std::size_t>(m * m));
  for (auto& b : u) b = g.chance(0.3);
  for (auto& b : v) b = g.chance(0.3);
  for (auto _ : state) {
    gep::kernel_tc(x.data(), u.data(), v.data(), m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * m);
}
BENCHMARK(BM_KernelTC)->Arg(64)->Arg(128);

void BM_KernelBottleneck(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 21), u = random_buf(m * m, 22),
       v = random_buf(m * m, 23);
  for (auto _ : state) {
    gep::kernel_bottleneck(x.data(), u.data(), v.data(), m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * m);
}
BENCHMARK(BM_KernelBottleneck)->Arg(64)->Arg(128);

void BM_KernelFWPaths(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 24), u = random_buf(m * m, 25),
       v = random_buf(m * m, 26);
  std::vector<std::int32_t> sx(static_cast<std::size_t>(m * m), 0),
      su(static_cast<std::size_t>(m * m), 1);
  for (auto _ : state) {
    gep::kernel_fw_paths(x.data(), u.data(), v.data(), sx.data(), su.data(),
                         m, m, m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * m);
}
BENCHMARK(BM_KernelFWPaths)->Arg(64)->Arg(128);

void BM_BlasDgemm(benchmark::State& state) {
  const index_t n = state.range(0);
  auto a = random_buf(n * n, 11), b = random_buf(n * n, 12),
       c = random_buf(n * n, 13);
  for (auto _ : state) {
    gep::blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_BlasDgemm)->Arg(128)->Arg(256)->Arg(512);

}  // namespace
