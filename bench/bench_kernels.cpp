// Kernel microbenchmarks: the dispatched base-case kernels and the
// BLAS-baseline GEMM, measured on BOTH dispatch paths (forced scalar
// vs AVX2) in one process. These building blocks set the "% of peak"
// ceilings in Figs. 10 and 11.
//
// Run with no arguments it emits BENCH_kernels.json: per kernel x size
// x path throughput (GF/s, plus Gupdates/s for the semiring kernels),
// per-path speedups, the selected dispatch level, and an end-to-end
// typed I-GEP LU on both paths. Any argument switches to the
// google-benchmark harness (e.g. --benchmark_filter=...), which
// measures whatever dispatch level the environment selects.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "blas/blas.hpp"
#include "gep/kernels.hpp"
#include "gep/typed.hpp"
#include "simd/dispatch.hpp"
#include "simd/gemm_leaf.hpp"
#include "simd/strassen.hpp"
#include "util/prng.hpp"

namespace {

using gep::index_t;

std::vector<double> random_buf(index_t n, std::uint64_t seed) {
  gep::SplitMix64 g(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = g.uniform(0.5, 1.5);
  return v;
}

// --- google-benchmark registrations (argument mode) ------------------------

void BM_KernelFW(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 1), u = random_buf(m * m, 2),
       v = random_buf(m * m, 3);
  for (auto _ : state) {
    gep::kernel_fw(x.data(), u.data(), v.data(), m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * m);
}
BENCHMARK(BM_KernelFW)->Arg(32)->Arg(64)->Arg(128);

void BM_KernelMM(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 4), u = random_buf(m * m, 5),
       v = random_buf(m * m, 6);
  for (auto _ : state) {
    gep::kernel_mm(x.data(), u.data(), v.data(), m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_KernelMM)->Arg(32)->Arg(64)->Arg(128);

void BM_KernelLU_D(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 7), u = random_buf(m * m, 8),
       v = random_buf(m * m, 9), w = random_buf(m * m, 10);
  for (auto _ : state) {
    gep::kernel_lu(x.data(), u.data(), v.data(), w.data(), m, m, m, m, m,
                   false, false);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_KernelLU_D)->Arg(32)->Arg(64)->Arg(128);

void BM_KernelTC(benchmark::State& state) {
  const index_t m = state.range(0);
  gep::SplitMix64 g(20);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(m * m)),
      u(static_cast<std::size_t>(m * m)), v(static_cast<std::size_t>(m * m));
  for (auto& b : u) b = g.chance(0.3);
  for (auto& b : v) b = g.chance(0.3);
  for (auto _ : state) {
    gep::kernel_tc(x.data(), u.data(), v.data(), m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * m);
}
BENCHMARK(BM_KernelTC)->Arg(64)->Arg(128);

void BM_KernelBottleneck(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 21), u = random_buf(m * m, 22),
       v = random_buf(m * m, 23);
  for (auto _ : state) {
    gep::kernel_bottleneck(x.data(), u.data(), v.data(), m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * m);
}
BENCHMARK(BM_KernelBottleneck)->Arg(64)->Arg(128);

void BM_KernelFWPaths(benchmark::State& state) {
  const index_t m = state.range(0);
  auto x = random_buf(m * m, 24), u = random_buf(m * m, 25),
       v = random_buf(m * m, 26);
  std::vector<std::int32_t> sx(static_cast<std::size_t>(m * m), 0),
      su(static_cast<std::size_t>(m * m), 1);
  for (auto _ : state) {
    gep::kernel_fw_paths(x.data(), u.data(), v.data(), sx.data(), su.data(),
                         m, m, m, m, m, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * m);
}
BENCHMARK(BM_KernelFWPaths)->Arg(64)->Arg(128);

void BM_BlasDgemm(benchmark::State& state) {
  const index_t n = state.range(0);
  auto a = random_buf(n * n, 11), b = random_buf(n * n, 12),
       c = random_buf(n * n, 13);
  for (auto _ : state) {
    gep::blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_BlasDgemm)->Arg(128)->Arg(256)->Arg(512);

// --- JSON report mode ------------------------------------------------------

// Seconds per invocation: repeats fn until the batch takes long enough
// to time reliably, best of 3 batches (the host is a noisy 1-core VM).
template <class Fn>
double time_per_call(Fn&& fn) {
  long iters = 1;
  for (;;) {
    gep::WallTimer t;
    for (long i = 0; i < iters; ++i) fn();
    if (t.seconds() >= 0.02) break;
    iters *= 4;
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    gep::WallTimer t;
    for (long i = 0; i < iters; ++i) fn();
    best = std::min(best, t.seconds() / static_cast<double>(iters));
  }
  return best;
}

const char* path_name(gep::simd::Level l) { return gep::simd::level_name(l); }

// Which dispatch paths this process can actually measure.
std::vector<gep::simd::Level> measurable_paths() {
  std::vector<gep::simd::Level> p{gep::simd::Level::Scalar};
  if (gep::simd::avx2_available() && !gep::simd::forced_scalar_env())
    p.push_back(gep::simd::Level::Avx2);
  return p;
}

struct KernelCase {
  std::string name;
  double flops;        // per invocation, for the gflops column
  double updates;      // m^3 update count, 0 when GF/s is the native unit
  std::function<void()> run;
};

// Adds one steady-state run row (seconds = best per-call time).
void add_run(gep::bench::BenchReport& report, double peak,
             const std::string& label, index_t n, double flops, double dt) {
  gep::bench::BenchRun r;
  r.label = label;
  r.n = n;
  r.seconds = dt;
  r.gflops = flops / dt / 1e9;
  r.pct_peak = peak > 0 ? 100.0 * r.gflops / peak : 0.0;
  report.add(std::move(r));
  std::printf("  %-28s %10.3e s  %7.2f GF/s\n", label.c_str(), dt, flops / dt / 1e9);
}

// Benchmarks one case on every measurable path, annotating the AVX2 run
// with its speedup over the scalar run.
void bench_case(gep::bench::BenchReport& report, double peak,
                const KernelCase& c, index_t n) {
  double scalar_dt = 0;
  for (gep::simd::Level level : measurable_paths()) {
    gep::simd::force_level(level);
    const double dt = time_per_call(c.run);
    add_run(report, peak, c.name + " " + path_name(level), n, c.flops, dt);
    if (c.updates > 0)
      report.annotate("gupdates_per_s", c.updates / dt / 1e9);
    if (level == gep::simd::Level::Scalar) {
      scalar_dt = dt;
    } else if (scalar_dt > 0) {
      report.annotate("speedup_vs_scalar", scalar_dt / dt);
    }
  }
  gep::simd::clear_forced_level();
}

// Paired timing: alternates the two runners `rounds` times and keeps
// each side's best per-call time — back-to-back alternation cancels the
// slow frequency/noisy-neighbor drift of the 1-core VM, which a
// sequential A-then-B measurement would fold into the ratio.
template <class FnA, class FnB>
std::pair<double, double> paired_time(FnA&& a, FnB&& b, int rounds = 2) {
  double ta = 1e300, tb = 1e300;
  for (int r = 0; r < rounds; ++r) {
    ta = std::min(ta, time_per_call(a));
    tb = std::min(tb, time_per_call(b));
  }
  return {ta, tb};
}

// --tune-strassen: measures the Strassen/classic break-even edge per
// recursion level on this host and emits BENCH_strassen_tune.json with
// breakeven_m_level1 / breakeven_m_level2 (0 = never pays) and the
// recommended defaults. Run on the active dispatch path.
int tune_strassen() {
  using namespace gep;
  double peak = bench::print_host_banner(
      "Strassen autotune: paired classic vs fused-Strassen packed GEMM");
  bench::BenchReport report("strassen_tune", peak);
  report.meta("dispatch", simd::active_name());
  const bool small = bench::small_run();

  const simd::GemmOptions classic{0, -1};
  const simd::GemmOptions l1{1, simd::kStrassenMinMFloor};
  const simd::GemmOptions l2{2, simd::kStrassenMinMFloor};

  // Level 1 vs classic: break-even = smallest swept edge from which one
  // level keeps winning (a dip resets it, so a noisy small-size fluke
  // cannot set the threshold).
  const std::vector<index_t> sweep =
      small ? std::vector<index_t>{128, 256, 384, 512}
            : std::vector<index_t>{128, 192, 256, 320, 384, 512, 768, 1024};
  index_t breakeven1 = 0;
  for (index_t n : sweep) {
    auto a = random_buf(n * n, 71), b = random_buf(n * n, 72),
         c = random_buf(n * n, 73);
    auto run = [&](const simd::GemmOptions& o) {
      return [&a, &b, &c, n, o] {
        simd::ScopedGemmOptions g(o);
        blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
      };
    };
    auto [tc, ts] = paired_time(run(classic), run(l1));
    const double flops = 2.0 * n * n * n;
    add_run(report, peak, "tune dgemm_classic n=" + std::to_string(n), n,
            flops, tc);
    add_run(report, peak, "tune dgemm_strassen L1 n=" + std::to_string(n), n,
            flops, ts);
    report.annotate("speedup_vs_classic", tc / ts);
    if (tc / ts >= 1.0) {
      if (breakeven1 == 0) breakeven1 = n;
    } else {
      breakeven1 = 0;
    }
  }

  // Level 2 vs level 1 at sizes where both can engage.
  const std::vector<index_t> sweep2 = small
                                          ? std::vector<index_t>{512}
                                          : std::vector<index_t>{1024, 2048};
  index_t breakeven2 = 0;
  for (index_t n : sweep2) {
    auto a = random_buf(n * n, 74), b = random_buf(n * n, 75),
         c = random_buf(n * n, 76);
    auto run = [&](const simd::GemmOptions& o) {
      return [&a, &b, &c, n, o] {
        simd::ScopedGemmOptions g(o);
        blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
      };
    };
    auto [t1, t2] = paired_time(run(l1), run(l2));
    const double flops = 2.0 * n * n * n;
    add_run(report, peak, "tune dgemm_strassen L2 n=" + std::to_string(n), n,
            flops, t2);
    report.annotate("speedup_vs_level1", t1 / t2);
    if (t1 / t2 >= 1.0) {
      if (breakeven2 == 0) breakeven2 = n;
    } else {
      breakeven2 = 0;
    }
  }

  const int rec_levels = breakeven2 != 0 ? 2 : (breakeven1 != 0 ? 1 : 0);
  const index_t rec_min_m = breakeven1 != 0 ? breakeven1 : 0;
  report.meta("breakeven_m_level1", std::to_string(breakeven1));
  report.meta("breakeven_m_level2", std::to_string(breakeven2));
  report.meta("recommended_levels", std::to_string(rec_levels));
  report.meta("recommended_min_m", std::to_string(rec_min_m));
  std::printf(
      "\ntune summary: level-1 break-even m = %lld, level-2 break-even m = "
      "%lld (0 = never pays)\nrecommended: GEP_STRASSEN_LEVELS=%d "
      "GEP_STRASSEN_MIN_M=%lld\n",
      static_cast<long long>(breakeven1), static_cast<long long>(breakeven2),
      rec_levels, static_cast<long long>(rec_min_m));
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--tune-strassen") {
    return tune_strassen();
  }
  if (argc > 1) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }

  using namespace gep;
  double peak = bench::print_host_banner(
      "Kernel microbenchmarks: dispatched vs forced-scalar base cases");
  bench::BenchReport report("kernels", peak);
  report.meta("dispatch", simd::active_name());
  report.meta("cpu_simd", cpu_features().summary());
  report.meta("gemm_min_m", std::to_string(simd::gemm_min_m()));
  report.meta("strassen_levels", std::to_string(simd::strassen_levels()));
  report.meta("strassen_min_m", std::to_string(simd::strassen_min_m()));

  const bool small = bench::small_run();
  const std::vector<index_t> sizes{32, 64, 128};

  for (index_t m : sizes) {
    auto x = random_buf(m * m, 4), u = random_buf(m * m, 5),
         v = random_buf(m * m, 6), w = random_buf(m * m, 10);
    const double mmf = 2.0 * m * m * m;
    const double upd = static_cast<double>(m) * m * m;

    bench_case(report, peak,
               {"kernel_mm m=" + std::to_string(m), mmf, 0,
                [&] { kernel_mm(x.data(), u.data(), v.data(), m, m, m, m); }},
               m);
    bench_case(report, peak,
               {"kernel_ge_D m=" + std::to_string(m), mmf, 0,
                [&] {
                  kernel_ge(x.data(), u.data(), v.data(), w.data(), m, m, m,
                            m, m, false, false);
                }},
               m);
    bench_case(report, peak,
               {"kernel_lu_D m=" + std::to_string(m), mmf, 0,
                [&] {
                  kernel_lu(x.data(), u.data(), v.data(), w.data(), m, m, m,
                            m, m, false, false);
                }},
               m);
    // The semiring rows measure the explicit simd:: kernels against the
    // scalar templates directly: in an AVX-512 TU the gep::kernel_*
    // wrappers deliberately keep fw/bottleneck/tc on the autovectorized
    // scalar path (GEP_SIMD_ROUTE_SEMIRING), so forcing the level at
    // the wrapper would measure the same code twice. The end-to-end run
    // below reflects what the wrappers actually route.
    bench_case(report, peak,
               {"kernel_fw m=" + std::to_string(m), mmf, upd,
                [&, m] {
#if GEP_SIMD_X86
                  if (simd::active() == simd::Level::Avx2) {
                    simd::fw_avx2(x.data(), u.data(), v.data(), m, m, m, m);
                    return;
                  }
#endif
                  scalar::kernel_fw(x.data(), u.data(), v.data(), m, m, m, m);
                }},
               m);
    bench_case(report, peak,
               {"kernel_bottleneck m=" + std::to_string(m), mmf, upd,
                [&, m] {
#if GEP_SIMD_X86
                  if (simd::active() == simd::Level::Avx2) {
                    simd::bottleneck_avx2(x.data(), u.data(), v.data(), m, m,
                                          m, m);
                    return;
                  }
#endif
                  scalar::kernel_bottleneck(x.data(), u.data(), v.data(), m,
                                            m, m, m);
                }},
               m);

    // A-kind LU (the aliased diagonal box): restore the tile before
    // every run so pivots stay healthy; restore cost is subtracted.
    {
      auto pristine = random_buf(m * m, 30);
      for (index_t i = 0; i < m; ++i)
        pristine[static_cast<std::size_t>(i * m + i)] += 4.0;
      auto tile = pristine;
      const std::size_t bytes = tile.size() * sizeof(double);
      auto restore = [&] { std::memcpy(tile.data(), pristine.data(), bytes); };
      double scalar_dt = 0;
      for (simd::Level level : measurable_paths()) {
        simd::force_level(level);
        const double dt_both = time_per_call([&] {
          restore();
          kernel_lu(tile.data(), tile.data(), tile.data(), tile.data(), m, m,
                    m, m, m, true, true);
        });
        const double dt_restore = time_per_call(restore);
        const double dt = std::max(dt_both - dt_restore, 1e-12);
        add_run(report, peak,
                "kernel_lu_A m=" + std::to_string(m) + " " + path_name(level),
                m, bench::flops_lu(m), dt);
        if (level == simd::Level::Scalar) {
          scalar_dt = dt;
        } else if (scalar_dt > 0) {
          report.annotate("speedup_vs_scalar", scalar_dt / dt);
        }
      }
      simd::clear_forced_level();
    }

    // Transitive closure on bytes (bit-exact OR kernel).
    {
      SplitMix64 g(40);
      std::vector<std::uint8_t> bx(static_cast<std::size_t>(m * m)),
          bu(static_cast<std::size_t>(m * m)),
          bv(static_cast<std::size_t>(m * m));
      for (auto& b : bu) b = g.chance(0.3);
      for (auto& b : bv) b = g.chance(0.3);
      bench_case(report, peak,
                 {"kernel_tc m=" + std::to_string(m), upd, upd,
                  [&, m] {
#if GEP_SIMD_X86
                    if (simd::active() == simd::Level::Avx2) {
                      simd::tc_avx2(bx.data(), bu.data(), bv.data(), m, m, m,
                                    m);
                      return;
                    }
#endif
                    scalar::kernel_tc(bx.data(), bu.data(), bv.data(), m, m,
                                      m, m);
                  }},
                 m);
    }
  }

  // Cache-aware blocked GEMM through the shared micro-kernel layer.
  {
    const index_t n = 256;
    auto a = random_buf(n * n, 11), b = random_buf(n * n, 12),
         c = random_buf(n * n, 13);
    bench_case(report, peak,
               {"dgemm n=" + std::to_string(n), 2.0 * n * n * n, 0,
                [&] {
                  blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n,
                              c.data(), n);
                }},
               n);
  }

  // Strassen-fused vs classic packed GEMM on the active dispatch path:
  // paired alternating timings, effective GF/s at the nominal 2n^3 flop
  // count (Strassen executes ~7/8 of them per level, so beating classic
  // GF/s here means real end-to-end speedup). Level forced to 1 with
  // the threshold floored so every listed size engages.
  {
    const std::vector<index_t> ns = small
                                        ? std::vector<index_t>{384, 512}
                                        : std::vector<index_t>{512, 1024, 2048};
    const simd::GemmOptions classic_opts{0, -1};
    const simd::GemmOptions l1_opts{1, simd::kStrassenMinMFloor};
    const simd::GemmOptions l2_opts{2, simd::kStrassenMinMFloor};
    for (index_t n : ns) {
      auto a = random_buf(n * n, 61), b = random_buf(n * n, 62),
           c = random_buf(n * n, 63);
      auto run = [&](const simd::GemmOptions& o) {
        return [&a, &b, &c, n, o] {
          simd::ScopedGemmOptions g(o);
          blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
        };
      };
      const double flops = 2.0 * n * n * n;
      auto [tc, ts] = paired_time(run(classic_opts), run(l1_opts));
      add_run(report, peak, "dgemm_classic n=" + std::to_string(n), n, flops,
              tc);
      add_run(report, peak, "dgemm_strassen L1 n=" + std::to_string(n), n,
              flops, ts);
      report.annotate("speedup_vs_classic", tc / ts);
      if (!small && n == ns.back()) {  // second level: informational row
        auto [tc2, t2] = paired_time(run(classic_opts), run(l2_opts));
        add_run(report, peak, "dgemm_strassen L2 n=" + std::to_string(n), n,
                flops, t2);
        report.annotate("speedup_vs_classic", tc2 / t2);
      }
    }
  }

  // End-to-end: typed I-GEP LU, both paths, one shot each.
  {
    const index_t n = small ? 512 : 2048;
    const index_t base = 64;
    Matrix<double> init = bench::random_dd_matrix(n, 50);
    double scalar_dt = 0;
    for (simd::Level level : measurable_paths()) {
      simd::force_level(level);
      Matrix<double> m = init;
      RowMajorStore<double> st{m.data(), n, base};
      SeqInvoker inv;
      const double dt = report.timed(
          "igep_lu_typed n=" + std::to_string(n) + " " + path_name(level), n,
          bench::flops_lu(n), [&] { igep_lu(inv, st, n, {base}); });
      std::printf("  igep_lu_typed n=%lld %s: %.3f s  %.2f GF/s\n",
                  static_cast<long long>(n), path_name(level), dt,
                  bench::flops_lu(n) / dt / 1e9);
      if (level == simd::Level::Scalar) {
        scalar_dt = dt;
      } else if (scalar_dt > 0) {
        report.annotate("speedup_vs_scalar", scalar_dt / dt);
      }
      volatile double sink = m(n - 1, n - 1);
      (void)sink;
    }
    simd::clear_forced_level();
  }

  report.meta("paths_measured",
              std::to_string(measurable_paths().size()));
  const bool ok = report.write();
  return ok ? 0 : 1;
}
