// Lemma 3.1 / 3.2 shape check: cache misses of parallel I-GEP under
// distributed (per-processor) and shared caches.
//
// We schedule the real fork-join DAG with a greedy p-processor scheduler
// (parallel/dag_sim.hpp), then replay each leaf box's element-access
// stream into (a) the private ideal cache of its assigned processor and
// (b) one shared ideal cache, interleaving leaves by scheduled start
// time. Expectations from the lemmas:
//   distributed: Q_p stays within a constant of Q_1 + O(sqrt(p)·n²/B)
//   shared:      Q_p ≈ Q_1 once M_p exceeds M_1 by a modest additive term
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "cachesim/ideal_cache.hpp"
#include "parallel/dag_sim.hpp"

namespace {

using namespace gep;

// Replays the access pattern of one FW leaf box into a cache.
void replay_box(IdealCache& cache, const double* basep, index_t n,
                const LeafBox& b) {
  auto addr = [&](index_t i, index_t j) {
    return reinterpret_cast<std::uintptr_t>(basep + i * n + j);
  };
  for (index_t k = b.k0; k < b.k0 + b.m; ++k) {
    for (index_t i = b.i0; i < b.i0 + b.m; ++i) {
      cache.access(addr(i, k), false);
      for (index_t j = b.j0; j < b.j0 + b.m; ++j) {
        cache.access(addr(i, j), false);
        cache.access(addr(k, j), false);
        cache.access(addr(i, j), true);
      }
    }
  }
}

}  // namespace

int main() {
  bench::print_host_banner(
      "Cache ablation: parallel I-GEP under distributed vs shared caches");
  const bool small = bench::small_run();
  const index_t n = small ? 128 : 256;
  const index_t base = 16;
  const std::uint64_t B = 64;
  const std::uint64_t M1 = 32 * 1024;
  const double* basep = nullptr;  // symbolic base; addresses only
  Matrix<double> backing(n, n, 0.0);
  basep = backing.data();

  std::vector<LeafBox> boxes;
  SPNode dag = build_igep_dag(DagProblem::FloydWarshall, n, base, &boxes);
  std::printf("n=%lld, base=%lld, %zu leaf boxes\n\n",
              static_cast<long long>(n), static_cast<long long>(base),
              boxes.size());

  // Q_1: the sequential execution replays leaves in DFS (program) order.
  std::uint64_t q1;
  {
    IdealCache c(M1, B);
    for (const LeafBox& b : boxes) replay_box(c, basep, n, b);
    q1 = c.stats().misses;
  }
  std::printf("Q_1 (M=32KB): %llu misses\n\n",
              static_cast<unsigned long long>(q1));

  // Distributed caches: p private caches of M1 each.
  Table dist({"p", "Q_p (distributed)", "Q_p/Q_1",
              "bound-ish Q_1 + sqrt(p)n^2/B"});
  for (int p : {1, 2, 4, 8}) {
    std::vector<IdealCache> caches;
    caches.reserve(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) caches.emplace_back(M1, B);
    auto sched = dag_schedule(dag, p);
    std::stable_sort(sched.begin(), sched.end(),
                     [](const ScheduledLeaf& a, const ScheduledLeaf& b) {
                       return a.start < b.start;
                     });
    for (const auto& s : sched) {
      replay_box(caches[static_cast<std::size_t>(s.proc)], basep, n,
                 boxes[static_cast<std::size_t>(s.leaf_id)]);
    }
    std::uint64_t qp = 0;
    for (auto& c : caches) qp += c.stats().misses;
    const double bound =
        static_cast<double>(q1) +
        std::sqrt(static_cast<double>(p)) * static_cast<double>(n) * n / (B / 8.0);
    dist.add_row({Table::integer(p), Table::integer(static_cast<long long>(qp)),
                  Table::num(static_cast<double>(qp) / static_cast<double>(q1), 2),
                  Table::num(bound / 1.0e0 / static_cast<double>(q1), 2)});
  }
  dist.print(std::cout);
  dist.write_csv("cache_ablation_distributed.csv");

  // Deterministic schedule of Lemma 3.1(b): partition the output matrix
  // into p subsquares of side n/sqrt(p); each processor owns one and
  // executes every leaf whose X block falls in it, in sequential order.
  // The lemma: this incurs only Q_1 + O(sqrt(p) * n^2/B) misses total.
  Table det({"p", "Q_p (deterministic)", "Q_p/Q_1",
             "(Q_1 + sqrt(p)n^2/B)/Q_1"});
  for (int p : {1, 4, 16}) {  // perfect squares partition evenly
    const index_t sqp = static_cast<index_t>(std::lround(std::sqrt(p)));
    const index_t side = n / sqp;
    std::vector<IdealCache> caches;
    caches.reserve(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) caches.emplace_back(M1, B);
    for (const LeafBox& b : boxes) {  // DFS order per owner
      const index_t owner = (b.i0 / side) * sqp + (b.j0 / side);
      replay_box(caches[static_cast<std::size_t>(owner)], basep, n, b);
    }
    std::uint64_t qp = 0;
    for (auto& c : caches) qp += c.stats().misses;
    const double bound =
        static_cast<double>(q1) +
        std::sqrt(static_cast<double>(p)) * static_cast<double>(n) * n /
            (static_cast<double>(B) / 8.0);
    det.add_row({Table::integer(p), Table::integer(static_cast<long long>(qp)),
                 Table::num(static_cast<double>(qp) / static_cast<double>(q1), 2),
                 Table::num(bound / static_cast<double>(q1), 2)});
  }
  det.print(std::cout);
  det.write_csv("cache_ablation_deterministic.csv");

  // Shared cache: one cache serving all processors, accesses interleaved
  // by scheduled start order. Sweep the shared capacity M_p.
  Table shared({"p", "M_p/M_1", "Q_p (shared)", "Q_p/Q_1"});
  for (int p : {2, 4, 8}) {
    auto sched = dag_schedule(dag, p);
    std::stable_sort(sched.begin(), sched.end(),
                     [](const ScheduledLeaf& a, const ScheduledLeaf& b) {
                       return a.start < b.start;
                     });
    for (double factor : {1.0, 2.0, 4.0}) {
      IdealCache c(static_cast<std::uint64_t>(factor * M1), B);
      for (const auto& s : sched) {
        replay_box(c, basep, n, boxes[static_cast<std::size_t>(s.leaf_id)]);
      }
      shared.add_row(
          {Table::integer(p), Table::num(factor, 1),
           Table::integer(static_cast<long long>(c.stats().misses)),
           Table::num(static_cast<double>(c.stats().misses) /
                          static_cast<double>(q1), 2)});
    }
  }
  shared.print(std::cout);
  shared.write_csv("cache_ablation_shared.csv");

  // Hybrid 1DF/PDF schedule of Lemma 3.2(b): contract the DAG into
  // supernodes (recursion subtrees on r x r submatrices, r ~ sqrt(p)
  // tiles), run supernodes one after another in sequential DFS order
  // (1DF), and execute each supernode's leaves with all p processors
  // under a priority-preserving PDF-style interleave. Because priorities
  // follow the sequential order, locality survives: Q_p stays near Q_1
  // even with M_p = M_1, unlike the greedy-interleaved schedule above.
  Table hybrid({"p", "r (tiles)", "Q_p (hybrid, M_p = M_1)", "Q_p/Q_1"});
  for (int p : {2, 4, 8}) {
    index_t r_tiles = 1;
    while (r_tiles * r_tiles < p) r_tiles *= 2;  // sqrt(p) <= r < 2 sqrt(p)
    const index_t rsize = base * r_tiles;
    // Group leaves (already in DFS order) by first-seen supernode, then
    // round-robin interleave each group across p virtual processors.
    std::vector<int> order;
    order.reserve(boxes.size());
    std::map<std::tuple<index_t, index_t, index_t>, std::vector<int>> groups;
    std::vector<std::tuple<index_t, index_t, index_t>> group_order;
    for (std::size_t id = 0; id < boxes.size(); ++id) {
      const LeafBox& b = boxes[id];
      auto key = std::make_tuple(b.i0 / rsize, b.j0 / rsize, b.k0 / rsize);
      auto [it, fresh] = groups.try_emplace(key);
      if (fresh) group_order.push_back(key);
      it->second.push_back(static_cast<int>(id));
    }
    for (const auto& key : group_order) {
      const auto& leaves = groups[key];
      const std::size_t chunk = (leaves.size() + p - 1) / p;
      for (std::size_t step = 0; step < chunk; ++step) {
        for (int q = 0; q < p; ++q) {
          std::size_t idx = static_cast<std::size_t>(q) * chunk + step;
          if (idx < leaves.size()) order.push_back(leaves[idx]);
        }
      }
    }
    IdealCache c(M1, B);
    for (int id : order) {
      replay_box(c, basep, n, boxes[static_cast<std::size_t>(id)]);
    }
    hybrid.add_row(
        {Table::integer(p), Table::integer(r_tiles),
         Table::integer(static_cast<long long>(c.stats().misses)),
         Table::num(static_cast<double>(c.stats().misses) /
                        static_cast<double>(q1), 2)});
  }
  hybrid.print(std::cout);
  hybrid.write_csv("cache_ablation_hybrid.csv");
  std::printf(
      "\nexpected (Lemmas 3.1/3.2): distributed Q_p grows by at most a\n"
      "~sqrt(p)·n²/B additive term; greedy shared Q_p needs extra capacity\n"
      "to match Q_1, while the hybrid 1DF/PDF schedule holds Q_p ~ Q_1 at\n"
      "M_p = M_1 (Lemma 3.2(b)).\n");
  return 0;
}
