// Figure 10 reproduction: Gaussian elimination without pivoting —
// GEP vs I-GEP vs the cache-aware blocked baseline (GotoBLAS stand-in),
// reported as % of the measured machine peak.
//
// Paper result: GotoBLAS+FLAME ~75-83% of peak, I-GEP ~45-55%, GEP only
// ~7-9%. Our baseline is portable C++ rather than hand-written assembly,
// so its absolute % of peak is lower, but the ordering
// blocked > I-GEP > GEP and the (blocked/I-GEP) ~ 1.5x gap is the claim
// under reproduction. The computation (and flop count) is the LU-style
// elimination the paper benches via FLAME's LU without pivoting.
#include "bench_common.hpp"

#include "apps/apps.hpp"

namespace {

using namespace gep;
using apps::Engine;

double time_engine(const Matrix<double>& init, Engine e, index_t base) {
  Matrix<double> a = init;
  WallTimer t;
  apps::lu_decompose(a, e, {base, 1});
  double dt = t.seconds();
  volatile double sink = a(a.rows() - 1, a.cols() - 1);
  (void)sink;
  return dt;
}

}  // namespace

int main() {
  double peak = bench::print_host_banner(
      "Figure 10: Gaussian elimination w/o pivoting, % of peak");
  const bool small = bench::small_run();
  std::vector<index_t> sizes =
      small ? std::vector<index_t>{256, 512}
            : std::vector<index_t>{256, 512, 1024, 2048};
  const index_t base = 64;

  // "I-GEP" below is the paper's optimized configuration: typed
  // recursion + iterative base case + bit-interleaved layout (conversion
  // included). The row-major variant is shown for the layout ablation.
  Table table({"n", "GEP (s)", "I-GEP rm (s)", "I-GEP (s)", "blocked (s)",
               "GEP %peak", "I-GEP %peak", "blocked %peak",
               "I-GEP/blocked ratio"});
  for (index_t n : sizes) {
    Matrix<double> init = bench::random_dd_matrix(n, 3);
    double t_gep = time_engine(init, Engine::Iterative, base);
    double t_rm = time_engine(init, Engine::IGep, base);
    double t_igep = time_engine(init, Engine::IGepZ, base);
    double t_blas = time_engine(init, Engine::Blocked, base);
    double fl = bench::flops_lu(n);
    auto pct = [&](double t) { return 100.0 * fl / t / 1e9 / peak; };
    table.add_row({Table::integer(n), Table::num(t_gep, 3),
                   Table::num(t_rm, 3), Table::num(t_igep, 3),
                   Table::num(t_blas, 3), Table::num(pct(t_gep), 1),
                   Table::num(pct(t_igep), 1), Table::num(pct(t_blas), 1),
                   Table::num(t_igep / t_blas, 2)});
  }
  table.print(std::cout);
  table.write_csv("fig10_ge.csv");
  std::printf(
      "\npaper: GotoBLAS 75-83%% peak, I-GEP 45-55%%, GEP 7-9%%;\n"
      "expected shape: blocked > I-GEP >> GEP, blocked/I-GEP ~ 1.5x.\n");
  return 0;
}
