// Figure 10 reproduction: Gaussian elimination without pivoting —
// GEP vs I-GEP vs the cache-aware blocked baseline (GotoBLAS stand-in),
// reported as % of the measured machine peak.
//
// Paper result: GotoBLAS+FLAME ~75-83% of peak, I-GEP ~45-55%, GEP only
// ~7-9%. Our baseline is portable C++ rather than hand-written assembly,
// so its absolute % of peak is lower, but the ordering
// blocked > I-GEP > GEP and the (blocked/I-GEP) ~ 1.5x gap is the claim
// under reproduction. The computation (and flop count) is the LU-style
// elimination the paper benches via FLAME's LU without pivoting.
//
// Instrumented extras (BENCH_fig10_ge.json + the tables below):
//   * hardware cycles / instructions / L1d / LLC misses per engine run
//     (perf_event_open; rows say "n/a" where the kernel denies it),
//   * SIMULATED LLC misses of the same I-GEP elimination replayed
//     through the ideal-cache model at this host's LLC geometry, printed
//     side by side with the measured hardware counts,
//   * a multithreaded I-GEP run on the work-stealing pool (steal counts
//     land in the registry snapshot),
//   * a small out-of-core LU through the page cache (hit/miss/writeback
//     counters land in the registry snapshot).
#include "bench_common.hpp"

#include <thread>

#include "apps/apps.hpp"
#include "cachesim/ideal_cache.hpp"
#include "extmem/ooc_matrix.hpp"
#include "extmem/ooc_typed.hpp"
#include "gep/functors.hpp"
#include "gep/igep.hpp"
#include "gep/typed.hpp"
#include "parallel/work_stealing.hpp"

namespace {

using namespace gep;
using apps::Engine;

double time_engine(const Matrix<double>& init, Engine e, index_t base) {
  Matrix<double> a = init;
  WallTimer t;
  apps::lu_decompose(a, e, {base, 1});
  double dt = t.seconds();
  volatile double sink = a(a.rows() - 1, a.cols() - 1);
  (void)sink;
  return dt;
}

// Typed I-GEP LU on the Cilk-style work-stealing pool: the parallel leg
// of the figure, and the producer of the "parallel.ws.*" metrics.
double time_parallel(const Matrix<double>& init, index_t base, int threads,
                     long* steals_out) {
  Matrix<double> a = init;
  const index_t n = a.rows();
  WorkStealingPool pool(threads);
  WsParInvoker inv{&pool};
  RowMajorStore<double> st{a.data(), n, base};
  WallTimer t;
  igep_lu(inv, st, n, {base});
  double dt = t.seconds();
  *steals_out = pool.steal_count();
  volatile double sink = a(n - 1, n - 1);
  (void)sink;
  return dt;
}

// Out-of-core LU at block granularity through the shared page cache
// (producer of the "extmem.page_cache.*" metrics). The cache is starved
// to 16 tile frames so real eviction traffic happens at every size.
double time_ooc(const Matrix<double>& init, index_t base,
                PageCacheStats* stats_out) {
  const index_t n = init.rows();
  const std::uint64_t page = static_cast<std::uint64_t>(base) * base * 8;
  PageCache cache(16 * page, page);
  OocTiledMatrix<double> m(cache, n, n, base);
  m.load(init);
  cache.reset_stats();
  WallTimer t;
  try {
    ooc_igep_lu(m);
  } catch (const obs::JobCancelled&) {
    // SIGINT/SIGTERM mid-leg: flush write-behind so the backing file is
    // consistent, leave a flight dump, and exit with the SIGINT code.
    std::fprintf(stderr, "\n[fig10] cancelled by signal; flushing\n");
    cache.flush();
    obs::flight::dump_default();
    std::exit(130);
  }
  double dt = t.seconds();
  *stats_out = cache.stats();
  return dt;
}

// Replays the I-GEP elimination's element accesses through the ideal-
// cache model at this host's LLC geometry — the simulated counterpart of
// the hardware LLC-miss counter.
CacheStats simulate_igep_lu(const Matrix<double>& init, index_t base,
                            std::uint64_t llc_bytes,
                            std::uint64_t line_bytes) {
  Matrix<double> a = init;
  IdealCache sim(llc_bytes, line_bytes);
  TracedAccess<double, IdealCache> acc(a.data(), a.rows(), &sim);
  run_igep(acc, LUIndexedF{}, LUSet{a.rows()}, {base});
  publish_cachesim_gauges("llc.igep_lu", sim.stats());
  return sim.stats();
}

}  // namespace

int main() {
  double peak = bench::print_host_banner(
      "Figure 10: Gaussian elimination w/o pivoting, % of peak");
  obs::flight::install_job_signal_handlers();
  const bool small = bench::small_run();
  std::vector<index_t> sizes =
      small ? std::vector<index_t>{256, 512}
            : std::vector<index_t>{256, 512, 1024, 2048};
  const index_t base = 64;
  bench::BenchReport report("fig10_ge", peak);

  // LLC geometry for the simulated-miss column (largest data/unified
  // cache the host reports; a generic 1 MB / 64 B when unknown).
  CpuInfo info = query_cpu_info();
  CacheLevel llc = info.level(3);
  if (llc.size_bytes == 0) llc = info.level(2);
  std::uint64_t llc_bytes = llc.size_bytes ? llc.size_bytes : (1u << 20);
  std::uint64_t llc_line = llc.line_bytes ? llc.line_bytes : 64;
  // Full element-trace simulation costs ~n³ hash probes; cap it where it
  // stays a few seconds. Larger sizes report hardware counters only.
  const index_t sim_cap = 512;

  // "I-GEP" below is the paper's optimized configuration: typed
  // recursion + iterative base case + bit-interleaved layout (conversion
  // included). The row-major variant is shown for the layout ablation.
  Table table({"n", "GEP (s)", "I-GEP rm (s)", "I-GEP (s)", "blocked (s)",
               "GEP %peak", "I-GEP %peak", "blocked %peak",
               "I-GEP/blocked ratio"});
  Table inst({"n", "par (s)", "p", "steals", "ooc (s)", "pc hits",
              "pc misses", "hw LLC miss", "sim LLC miss"});
  const int par_threads = static_cast<int>(
      std::min(8u, std::max(1u, std::thread::hardware_concurrency())));
  for (index_t n : sizes) {
    Matrix<double> init = bench::random_dd_matrix(n, 3);
    double fl = bench::flops_lu(n);
    auto run = [&](const char* label, Engine e) {
      return report.timed(label, n, fl, [&] { time_engine(init, e, base); });
    };
    double t_gep = run("GEP", Engine::Iterative);
    double t_rm = run("I-GEP rm", Engine::IGep);
    double t_igep = run("I-GEP", Engine::IGepZ);
    double t_blas = run("blocked", Engine::Blocked);
    auto pct = [&](double t) { return 100.0 * fl / t / 1e9 / peak; };
    table.add_row({Table::integer(n), Table::num(t_gep, 3),
                   Table::num(t_rm, 3), Table::num(t_igep, 3),
                   Table::num(t_blas, 3), Table::num(pct(t_gep), 1),
                   Table::num(pct(t_igep), 1), Table::num(pct(t_blas), 1),
                   Table::num(t_igep / t_blas, 2)});

    // Hardware LLC misses of the I-GEP rm run (same algorithm the
    // simulator replays below).
    obs::HwCounters probe;
    probe.start();
    time_engine(init, Engine::IGep, base);
    obs::HwSample hw = probe.stop();

    long steals = 0;
    double t_par = time_parallel(init, base, par_threads, &steals);
    report.add({"I-GEP ws-parallel", n, t_par, fl / t_par / 1e9,
                pct(t_par), obs::HwSample{},
                {{"threads", static_cast<double>(par_threads)},
                 {"steals", static_cast<double>(steals)}}});

    PageCacheStats pc;
    double t_ooc = time_ooc(init, base, &pc);
    report.add({"I-GEP out-of-core", n, t_ooc, fl / t_ooc / 1e9,
                pct(t_ooc), obs::HwSample{},
                {{"pc_hits", static_cast<double>(pc.hits)},
                 {"pc_misses", static_cast<double>(pc.misses())},
                 {"pc_writebacks", static_cast<double>(pc.page_outs)}}});

    std::string sim_col = "-";
    if (n <= sim_cap) {
      CacheStats sim = simulate_igep_lu(init, base, llc_bytes, llc_line);
      sim_col = Table::integer(static_cast<long long>(sim.misses));
      report.annotate("sim_llc_misses", static_cast<double>(sim.misses));
    }
    inst.add_row({Table::integer(n), Table::num(t_par, 3),
                  Table::integer(par_threads), Table::integer(steals),
                  Table::num(t_ooc, 3),
                  Table::integer(static_cast<long long>(pc.hits)),
                  Table::integer(static_cast<long long>(pc.misses())),
                  hw.has_llc
                      ? Table::integer(static_cast<long long>(hw.llc_misses))
                      : std::string("n/a"),
                  sim_col});
  }
  table.print(std::cout);
  table.write_csv("fig10_ge.csv");
  std::printf("\ninstrumentation (LLC sim geometry: %llu KB, %llu B lines; "
              "hw counters via perf_event_open):\n",
              static_cast<unsigned long long>(llc_bytes / 1024),
              static_cast<unsigned long long>(llc_line));
  inst.print(std::cout);
  std::printf(
      "\npaper: GotoBLAS 75-83%% peak, I-GEP 45-55%%, GEP 7-9%%;\n"
      "expected shape: blocked > I-GEP >> GEP, blocked/I-GEP ~ 1.5x.\n");
  report.write();
  return 0;
}
