// Shared helpers for the figure-reproduction benches: host banner
// (paper Table 2 equivalent), workload generators, and flop accounting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "matrix/matrix.hpp"
#include "obs/obs.hpp"
#include "util/cpuinfo.hpp"
#include "util/peak.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gep::bench {

// Prints the machine row (our stand-in for the paper's Table 2) and
// returns the measured peak in GFLOP/s used for "% of peak" columns.
inline double print_host_banner(const char* title) {
  CpuInfo info = query_cpu_info();
  double peak = measured_peak_gflops();
  std::printf("== %s ==\n", title);
  std::printf("host: %s\n", info.summary().c_str());
  std::printf("measured peak (double mul+add): %.2f GFLOP/s\n\n", peak);
  return peak;
}

// Environment-tunable scale factor so the full suite can run quickly
// (GEP_BENCH_SCALE=small) or at paper-like sizes (default).
inline bool small_run() {
  const char* s = std::getenv("GEP_BENCH_SCALE");
  return s != nullptr && std::string(s) == "small";
}

inline Matrix<double> random_dist_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 100.0);
    m(i, i) = 0.0;
  }
  return m;
}

inline Matrix<double> random_dd_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

inline Matrix<double> random_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
  return m;
}

// --- Machine-readable bench reports ---------------------------------------
//
// Every figure bench emits BENCH_<name>.json next to its human tables:
// host banner, measured peak, per-run wall times and GFLOP/s, hardware
// counters when perf_event_open is permitted, and a full snapshot of the
// metrics registry (work-stealing steals, page-cache hits/misses,
// simulated cachesim misses, typed-engine leaf counts, ...). CI uploads
// these as artifacts; regression tooling diffs them across commits.

struct BenchRun {
  std::string label;
  long long n = 0;
  double seconds = 0.0;
  double gflops = 0.0;
  double pct_peak = 0.0;
  obs::HwSample hw;  // valid=false when counters were unavailable
  std::vector<std::pair<std::string, double>> extra;
};

class BenchReport {
 public:
  // `name` is the figure tag ("fig10_ge"); output file BENCH_<name>.json.
  // Starts the recursion tracer when $GEP_OBS_TRACE is set (the trace is
  // written by write()).
  BenchReport(std::string name, double peak_gflops)
      : name_(std::move(name)), peak_(peak_gflops) {
    if (obs::Tracer::env_path() != nullptr) obs::Tracer::start();
  }

  void add(BenchRun r) { runs_.push_back(std::move(r)); }

  // Top-level string key/value pairs (e.g. the selected SIMD dispatch
  // path), emitted once per report rather than per run.
  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, value);
  }

  // Convenience: time + record in one step. Returns the elapsed seconds.
  template <class Fn>
  double timed(const std::string& label, long long n, double flops, Fn&& fn) {
    obs::HwCounters hw;
    hw.start();
    WallTimer t;
    fn();
    const double dt = t.seconds();
    BenchRun r;
    r.label = label;
    r.n = n;
    r.seconds = dt;
    r.gflops = flops / dt / 1e9;
    r.pct_peak = peak_ > 0 ? 100.0 * r.gflops / peak_ : 0.0;
    r.hw = hw.stop();
    add(std::move(r));
    return dt;
  }

  // Attaches {key, value} to the most recently added run.
  void annotate(const std::string& key, double v) {
    if (!runs_.empty()) runs_.back().extra.emplace_back(key, v);
  }

  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) return false;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("bench", name_);
    w.kv("unix_time", static_cast<std::int64_t>(std::time(nullptr)));
    w.kv("gep_obs", obs::kEnabled);
    w.kv("peak_gflops", peak_);
    for (const auto& [k, v] : meta_) w.kv(k, v);
    CpuInfo info = query_cpu_info();
    w.key("host");
    w.begin_object();
    w.kv("model", info.model_name);
    w.kv("logical_cpus", info.logical_cpus);
    w.key("caches");
    w.begin_array();
    for (const CacheLevel& c : info.caches) {
      w.begin_object();
      w.kv("level", c.level);
      w.kv("type", c.type);
      w.kv("size_bytes", static_cast<std::uint64_t>(c.size_bytes));
      w.kv("line_bytes", static_cast<std::uint64_t>(c.line_bytes));
      w.kv("associativity", c.associativity);
      w.end_object();
    }
    w.end_array();
    w.kv("summary", info.summary());
    w.end_object();
    w.key("runs");
    w.begin_array();
    for (const BenchRun& r : runs_) {
      w.begin_object();
      w.kv("label", r.label);
      w.kv("n", static_cast<std::int64_t>(r.n));
      w.kv("seconds", r.seconds);
      w.kv("gflops", r.gflops);
      w.kv("pct_peak", r.pct_peak);
      w.key("hw");
      if (r.hw.valid) {
        w.begin_object();
        if (r.hw.has_cycles) w.kv("cycles", r.hw.cycles);
        if (r.hw.has_instructions) w.kv("instructions", r.hw.instructions);
        if (r.hw.has_l1d) w.kv("l1d_misses", r.hw.l1d_misses);
        if (r.hw.has_llc) w.kv("llc_misses", r.hw.llc_misses);
        if (r.hw.has_cycles && r.hw.has_instructions) w.kv("ipc", r.hw.ipc());
        w.end_object();
      } else {
        w.null();  // perf_event_open unavailable (container/CI)
      }
      for (const auto& [k, v] : r.extra) w.kv(k, v);
      w.end_object();
    }
    w.end_array();
    // Registry snapshot: steals, page-cache traffic, simulated misses,
    // typed-engine counters — whatever the run populated. Empty sections
    // under GEP_OBS=0.
    w.key("metrics");
    w.raw(obs::snapshot_json());
    if (const char* tp = obs::Tracer::env_path()) {
      obs::Tracer::stop();
      if (obs::Tracer::write_chrome_trace(tp)) {
        w.kv("trace_file", tp);
        w.kv("trace_events", static_cast<std::uint64_t>(
                                 obs::Tracer::event_count()));
        std::printf("trace: %zu span(s) -> %s (open in chrome://tracing)\n",
                    obs::Tracer::event_count(), tp);
      }
    }
    w.end_object();
    os << '\n';
    const bool ok = static_cast<bool>(os);
    if (ok) std::printf("report: %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  double peak_;
  std::vector<BenchRun> runs_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

// FLOP counts used for % of peak (2 flops per multiply-add, matching the
// paper's "two double precision floating point operations per cycle").
inline double flops_mm(index_t n) { return 2.0 * n * n * n; }
inline double flops_ge(index_t n) {
  // one multiply + one subtract per update plus a division per (i,k).
  double f = 0;
  for (index_t k = 0; k < n; ++k) {
    double r = static_cast<double>(n - 1 - k);
    f += 2.0 * r * r + r;
  }
  return f;
}
inline double flops_lu(index_t n) {
  double f = 0;
  for (index_t k = 0; k < n; ++k) {
    double r = static_cast<double>(n - 1 - k);
    f += 2.0 * r * r + r;
  }
  return f;
}
inline double flops_fw(index_t n) { return 2.0 * n * n * n; }

}  // namespace gep::bench
