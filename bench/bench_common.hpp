// Shared helpers for the figure-reproduction benches: host banner
// (paper Table 2 equivalent), workload generators, and flop accounting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "matrix/matrix.hpp"
#include "util/cpuinfo.hpp"
#include "util/peak.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gep::bench {

// Prints the machine row (our stand-in for the paper's Table 2) and
// returns the measured peak in GFLOP/s used for "% of peak" columns.
inline double print_host_banner(const char* title) {
  CpuInfo info = query_cpu_info();
  double peak = measured_peak_gflops();
  std::printf("== %s ==\n", title);
  std::printf("host: %s\n", info.summary().c_str());
  std::printf("measured peak (double mul+add): %.2f GFLOP/s\n\n", peak);
  return peak;
}

// Environment-tunable scale factor so the full suite can run quickly
// (GEP_BENCH_SCALE=small) or at paper-like sizes (default).
inline bool small_run() {
  const char* s = std::getenv("GEP_BENCH_SCALE");
  return s != nullptr && std::string(s) == "small";
}

inline Matrix<double> random_dist_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 100.0);
    m(i, i) = 0.0;
  }
  return m;
}

inline Matrix<double> random_dd_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

inline Matrix<double> random_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
  return m;
}

// FLOP counts used for % of peak (2 flops per multiply-add, matching the
// paper's "two double precision floating point operations per cycle").
inline double flops_mm(index_t n) { return 2.0 * n * n * n; }
inline double flops_ge(index_t n) {
  // one multiply + one subtract per update plus a division per (i,k).
  double f = 0;
  for (index_t k = 0; k < n; ++k) {
    double r = static_cast<double>(n - 1 - k);
    f += 2.0 * r * r + r;
  }
  return f;
}
inline double flops_lu(index_t n) {
  double f = 0;
  for (index_t k = 0; k < n; ++k) {
    double r = static_cast<double>(n - 1 - k);
    f += 2.0 * r * r + r;
  }
  return f;
}
inline double flops_fw(index_t n) { return 2.0 * n * n * n; }

}  // namespace gep::bench
