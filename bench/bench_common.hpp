// Shared helpers for the figure-reproduction benches: host banner
// (paper Table 2 equivalent), workload generators, and flop accounting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "matrix/matrix.hpp"
#include "obs/obs.hpp"
#include "simd/dispatch.hpp"
#include "util/cpuinfo.hpp"
#include "util/peak.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gep::bench {

// Version of the BENCH_*.json / BENCH_manifest.json schema. Bump when a
// field changes meaning; additive fields don't require a bump.
//   v2: repeats (min/median/MAD), per-run profiles, folded stacks,
//       trace_dropped, dispatch_level, schema_version itself.
inline constexpr int kBenchSchemaVersion = 2;

// Prints the machine row (our stand-in for the paper's Table 2) and
// returns the measured peak in GFLOP/s used for "% of peak" columns.
// Every bench calls this first, so it doubles as the telemetry hook:
// crash handlers write a flight-recorder dump on fatal signals,
// $GEP_WATCHDOG_MS arms the stall watchdog, and $GEP_STAT_PORT starts
// the embedded HTTP exporter for the whole run (the dispatch level is
// injected here because gep_obs cannot link the SIMD layer itself).
inline double print_host_banner(const char* title) {
  obs::flight::install_crash_handlers();
  obs::Watchdog::start_from_env();
  obs::StatServer::set_build_info(nullptr, simd::active_name());
  obs::StatServer::start_from_env();
  CpuInfo info = query_cpu_info();
  double peak = measured_peak_gflops();
  std::printf("== %s ==\n", title);
  std::printf("host: %s\n", info.summary().c_str());
  std::printf("measured peak (double mul+add): %.2f GFLOP/s\n\n", peak);
  return peak;
}

// Environment-tunable scale factor so the full suite can run quickly
// (GEP_BENCH_SCALE=small) or at paper-like sizes (default).
inline bool small_run() {
  const char* s = std::getenv("GEP_BENCH_SCALE");
  return s != nullptr && std::string(s) == "small";
}

inline Matrix<double> random_dist_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 100.0);
    m(i, i) = 0.0;
  }
  return m;
}

inline Matrix<double> random_dd_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

inline Matrix<double> random_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
  return m;
}

// --- Machine-readable bench reports ---------------------------------------
//
// Every figure bench emits BENCH_<name>.json next to its human tables:
// host banner, measured peak, per-run wall times and GFLOP/s, hardware
// counters when perf_event_open is permitted, and a full snapshot of the
// metrics registry (work-stealing steals, page-cache hits/misses,
// simulated cachesim misses, typed-engine leaf counts, ...). CI uploads
// these as artifacts; regression tooling diffs them across commits.

struct BenchRun {
  std::string label;
  long long n = 0;
  double seconds = 0.0;  // median of the repeats
  double gflops = 0.0;
  double pct_peak = 0.0;
  obs::HwSample hw;  // valid=false when counters were unavailable
  std::vector<std::pair<std::string, double>> extra;
  // Repeat statistics (fields trail the aggregate-initialized prefix
  // above; single-shot runs keep the defaults).
  int repeats = 1;
  double seconds_min = 0.0;  // fastest repeat
  double seconds_mad = 0.0;  // median absolute deviation of the repeats
  std::string profile_json;  // per-run tracer profile (empty: not traced)
};

// Number of timed repetitions per labeled run ($GEP_BENCH_REPEATS,
// default 1 = the historical single-shot behavior). With k > 1, timed()
// additionally executes one untimed warmup pass and reports the median
// with min/MAD noise bounds.
inline int bench_repeats() {
  const char* s = std::getenv("GEP_BENCH_REPEATS");
  if (s == nullptr) return 1;
  const long k = std::strtol(s, nullptr, 10);
  return k < 1 ? 1 : k > 99 ? 99 : static_cast<int>(k);
}

// Testing-only fault line for the regression gate
// ($GEP_BENCH_HANDICAP="<label-substring>:<factor>"): multiplies the
// recorded wall time of matching runs so CI can prove gep_bench_diff
// flags a real slowdown without actually burning the cycles.
inline double handicap_factor(const std::string& label) {
  const char* s = std::getenv("GEP_BENCH_HANDICAP");
  if (s == nullptr) return 1.0;
  const std::string spec(s);
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return 1.0;
  if (label.find(spec.substr(0, colon)) == std::string::npos) return 1.0;
  const double f = std::atof(spec.c_str() + colon + 1);
  return f > 0 ? f : 1.0;
}

inline double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t h = v.size() / 2;
  return v.size() % 2 != 0 ? v[h] : 0.5 * (v[h - 1] + v[h]);
}

// Median absolute deviation — the robust noise scale the diff gate's
// thresholds are expressed in.
inline double mad_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double med = median_of(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::fabs(x - med));
  return median_of(std::move(dev));
}

class BenchReport {
 public:
  // `name` is the figure tag ("fig10_ge"); output file BENCH_<name>.json.
  // Starts the recursion tracer when $GEP_OBS_TRACE is set (the trace is
  // written by write()) and the leaf sampler when
  // $GEP_OBS_PROFILE_SAMPLE is set.
  BenchReport(std::string name, double peak_gflops)
      : name_(std::move(name)), peak_(peak_gflops) {
    if (obs::Tracer::env_path() != nullptr) obs::Tracer::start();
    obs::LeafSampler::enable_from_env();
  }

  void add(BenchRun r) { runs_.push_back(std::move(r)); }

  // Top-level string key/value pairs (e.g. the selected SIMD dispatch
  // path), emitted once per report rather than per run.
  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, value);
  }

  // Convenience: time + record in one step. Returns the recorded
  // (median) seconds. Runs $GEP_BENCH_REPEATS timed repetitions after
  // one untimed warmup (single-shot, no warmup, when unset). When
  // tracing is on, the tracer is cleared at the start of each labeled
  // run so per-run profiles don't bleed into each other; the profile of
  // this run's spans is attached to the BenchRun.
  template <class Fn>
  double timed(const std::string& label, long long n, double flops, Fn&& fn) {
    const int reps = bench_repeats();
    if (reps > 1) fn();  // warmup, untimed
    const bool tracing = obs::Tracer::env_path() != nullptr;
    if (tracing) {
      obs::Tracer::clear();  // drop warmup + earlier runs' spans
      obs::Tracer::start();
      obs::LeafSampler::reset();
    }
    std::vector<double> times(static_cast<std::size_t>(reps));
    std::vector<obs::HwSample> samples(static_cast<std::size_t>(reps));
    obs::HwCounters hw;
    for (int rep = 0; rep < reps; ++rep) {
      // The hardware counters bracket exactly the timed region —
      // stop() reads them before any report bookkeeping happens.
      hw.start();
      WallTimer t;
      fn();
      const double dt = t.seconds();
      samples[static_cast<std::size_t>(rep)] = hw.stop();
      times[static_cast<std::size_t>(rep)] = dt;
    }
    const double factor = handicap_factor(label);
    for (double& t : times) t *= factor;
    const double med = median_of(times);
    std::size_t med_idx = 0;
    for (std::size_t i = 1; i < times.size(); ++i)
      if (std::fabs(times[i] - med) < std::fabs(times[med_idx] - med))
        med_idx = i;
    BenchRun r;
    r.label = label;
    r.n = n;
    r.seconds = med;
    r.gflops = flops / med / 1e9;
    r.pct_peak = peak_ > 0 ? 100.0 * r.gflops / peak_ : 0.0;
    r.repeats = reps;
    r.seconds_min = *std::min_element(times.begin(), times.end());
    r.seconds_mad = mad_of(times);
    r.hw = samples[med_idx];
    if (tracing) {
      obs::Tracer::stop();
      obs::Profile prof = obs::Profile::collect();
      if (!prof.empty()) {
        r.profile_json = prof.json();
        folded_ += prof.folded(name_ + ";" + label);
      }
      obs::Tracer::start();  // keep later (untimed) spans in the trace
    }
    add(std::move(r));
    return med;
  }

  // Attaches {key, value} to the most recently added run.
  void annotate(const std::string& key, double v) {
    if (!runs_.empty()) runs_.back().extra.emplace_back(key, v);
  }

  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) return false;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("bench", name_);
    w.kv("schema_version", kBenchSchemaVersion);
    w.kv("unix_time", static_cast<std::int64_t>(std::time(nullptr)));
    w.kv("gep_obs", obs::kEnabled);
    w.kv("peak_gflops", peak_);
    w.kv("dispatch_level", simd::active_name());
    w.kv("bench_repeats", bench_repeats());
    for (const auto& [k, v] : meta_) w.kv(k, v);
    CpuInfo info = query_cpu_info();
    w.key("host");
    w.begin_object();
    w.kv("model", info.model_name);
    w.kv("logical_cpus", info.logical_cpus);
    w.key("caches");
    w.begin_array();
    for (const CacheLevel& c : info.caches) {
      w.begin_object();
      w.kv("level", c.level);
      w.kv("type", c.type);
      w.kv("size_bytes", static_cast<std::uint64_t>(c.size_bytes));
      w.kv("line_bytes", static_cast<std::uint64_t>(c.line_bytes));
      w.kv("associativity", c.associativity);
      w.end_object();
    }
    w.end_array();
    w.kv("summary", info.summary());
    w.end_object();
    w.key("runs");
    w.begin_array();
    for (const BenchRun& r : runs_) {
      w.begin_object();
      w.kv("label", r.label);
      w.kv("n", static_cast<std::int64_t>(r.n));
      w.kv("seconds", r.seconds);
      w.kv("gflops", r.gflops);
      w.kv("pct_peak", r.pct_peak);
      w.kv("repeats", r.repeats);
      w.kv("seconds_min", r.repeats > 1 ? r.seconds_min : r.seconds);
      w.kv("seconds_mad", r.seconds_mad);
      if (!r.profile_json.empty()) {
        w.key("profile");
        w.raw(r.profile_json);
      }
      w.key("hw");
      if (r.hw.valid) {
        w.begin_object();
        if (r.hw.has_cycles) w.kv("cycles", r.hw.cycles);
        if (r.hw.has_instructions) w.kv("instructions", r.hw.instructions);
        if (r.hw.has_l1d) w.kv("l1d_misses", r.hw.l1d_misses);
        if (r.hw.has_llc) w.kv("llc_misses", r.hw.llc_misses);
        if (r.hw.has_cycles && r.hw.has_instructions) w.kv("ipc", r.hw.ipc());
        w.end_object();
      } else {
        w.null();  // perf_event_open unavailable (container/CI)
      }
      for (const auto& [k, v] : r.extra) w.kv(k, v);
      w.end_object();
    }
    w.end_array();
    // Registry snapshot: steals, page-cache traffic, simulated misses,
    // typed-engine counters — whatever the run populated. Empty sections
    // under GEP_OBS=0.
    w.key("metrics");
    w.raw(obs::snapshot_json());
    // Dropped spans silently truncate profiles — surface the count so a
    // nonzero value is visible in every report.
    w.kv("trace_dropped", obs::Tracer::dropped_count());
    if (const char* tp = obs::Tracer::env_path()) {
      obs::Tracer::stop();
      if (obs::Tracer::write_chrome_trace(tp)) {
        w.kv("trace_file", tp);
        w.kv("trace_events", static_cast<std::uint64_t>(
                                 obs::Tracer::event_count()));
        std::printf("trace: %zu span(s) -> %s (open in chrome://tracing)\n",
                    obs::Tracer::event_count(), tp);
      }
    }
    if (!folded_.empty()) {
      const std::string fpath = "BENCH_" + name_ + ".folded";
      std::ofstream fs(fpath);
      fs << folded_;
      if (fs) {
        w.kv("folded_file", fpath);
        std::printf("folded stacks: %s (feed to flamegraph.pl)\n",
                    fpath.c_str());
      }
    }
    w.end_object();
    os << '\n';
    const bool ok = static_cast<bool>(os);
    if (ok) std::printf("report: %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  double peak_;
  std::vector<BenchRun> runs_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::string folded_;
};

// FLOP counts used for % of peak (2 flops per multiply-add, matching the
// paper's "two double precision floating point operations per cycle").
inline double flops_mm(index_t n) { return 2.0 * n * n * n; }
inline double flops_ge(index_t n) {
  // one multiply + one subtract per update plus a division per (i,k).
  double f = 0;
  for (index_t k = 0; k < n; ++k) {
    double r = static_cast<double>(n - 1 - k);
    f += 2.0 * r * r + r;
  }
  return f;
}
inline double flops_lu(index_t n) {
  double f = 0;
  for (index_t k = 0; k < n; ++k) {
    double r = static_cast<double>(n - 1 - k);
    f += 2.0 * r * r + r;
  }
  return f;
}
inline double flops_fw(index_t n) { return 2.0 * n * n * n; }

}  // namespace gep::bench
