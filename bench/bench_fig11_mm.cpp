// Figure 11 reproduction: square matrix multiplication — GEP vs I-GEP vs
// the cache-aware blocked baseline ("native BLAS" stand-in): % of peak,
// plus simulated L1/L2 miss counts.
//
// Paper results (Opteron 250): native BLAS 78-83% of peak, I-GEP 50-56%,
// GEP 9-13%; I-GEP incurs FEWER L1 and L2 misses than native BLAS while
// executing more instructions. For the miss comparison we replay the
// element-access patterns of all three algorithms (for the baseline: the
// same cache-aware tiling it uses for real) through the simulated
// Opteron cache hierarchy.
#include "bench_common.hpp"

#include "apps/apps.hpp"
#include "cachesim/set_assoc_cache.hpp"

namespace {

using namespace gep;
using apps::Engine;

double time_engine(const Matrix<double>& a, const Matrix<double>& b,
                   Engine e, index_t base) {
  Matrix<double> c(a.rows(), a.cols(), 0.0);
  WallTimer t;
  apps::multiply_add(c, a, b, e, {base, 1});
  double dt = t.seconds();
  volatile double sink = c(0, 0);
  (void)sink;
  return dt;
}

struct TracedMat {
  const double* d;
  index_t n;
  CacheHierarchy* h;
  double get(index_t i, index_t j) const {
    h->access(reinterpret_cast<std::uintptr_t>(d + i * n + j), false);
    return d[i * n + j];
  }
};

struct TracedMutMat {
  double* d;
  index_t n;
  CacheHierarchy* h;
  double get(index_t i, index_t j) const {
    h->access(reinterpret_cast<std::uintptr_t>(d + i * n + j), false);
    return d[i * n + j];
  }
  void set(index_t i, index_t j, double v) {
    h->access(reinterpret_cast<std::uintptr_t>(d + i * n + j), true);
    d[i * n + j] = v;
  }
};

// Iterative GEP-style MM access pattern.
void traced_mm_gep(TracedMutMat c, TracedMat a, TracedMat b, index_t n) {
  for (index_t k = 0; k < n; ++k)
    for (index_t i = 0; i < n; ++i) {
      const double aik = a.get(i, k);
      for (index_t j = 0; j < n; ++j)
        c.set(i, j, c.get(i, j) + aik * b.get(k, j));
    }
}

// Recursive I-GEP MM access pattern (D-function recursion, leaf = box).
void traced_mm_igep(TracedMutMat c, TracedMat a, TracedMat b, index_t i0,
                    index_t j0, index_t k0, index_t m, index_t base) {
  if (m <= base) {
    for (index_t k = k0; k < k0 + m; ++k)
      for (index_t i = i0; i < i0 + m; ++i) {
        const double aik = a.get(i, k);
        for (index_t j = j0; j < j0 + m; ++j)
          c.set(i, j, c.get(i, j) + aik * b.get(k, j));
      }
    return;
  }
  const index_t h = m / 2;
  for (index_t kk : {k0, k0 + h}) {
    traced_mm_igep(c, a, b, i0, j0, kk, h, base);
    traced_mm_igep(c, a, b, i0, j0 + h, kk, h, base);
    traced_mm_igep(c, a, b, i0 + h, j0, kk, h, base);
    traced_mm_igep(c, a, b, i0 + h, j0 + h, kk, h, base);
  }
}

// Cache-aware tiled MM access pattern (what the blocked baseline does,
// minus the packing copies — giving the baseline its BEST case).
void traced_mm_tiled(TracedMutMat c, TracedMat a, TracedMat b, index_t n,
                     index_t tile) {
  for (index_t ic = 0; ic < n; ic += tile)
    for (index_t pc = 0; pc < n; pc += tile)
      for (index_t jc = 0; jc < n; jc += tile)
        for (index_t k = pc; k < pc + tile; ++k)
          for (index_t i = ic; i < ic + tile; ++i) {
            const double aik = a.get(i, k);
            for (index_t j = jc; j < jc + tile; ++j)
              c.set(i, j, c.get(i, j) + aik * b.get(k, j));
          }
}

}  // namespace

int main() {
  double peak = bench::print_host_banner(
      "Figure 11: square matrix multiplication, % of peak + cache misses");
  const bool small = bench::small_run();
  std::vector<index_t> sizes =
      small ? std::vector<index_t>{256, 512}
            : std::vector<index_t>{256, 512, 1024, 2048};
  const index_t base = 64;
  bench::BenchReport report("fig11_mm", peak);

  Table table({"n", "GEP (s)", "I-GEP (s)", "I-GEP/Z (s)", "blocked (s)",
               "GEP %peak", "I-GEP %peak", "blocked %peak"});
  for (index_t n : sizes) {
    Matrix<double> a = bench::random_matrix(n, 1);
    Matrix<double> b = bench::random_matrix(n, 2);
    double fl = bench::flops_mm(n);
    auto run = [&](const char* label, Engine e) {
      return report.timed(label, n, fl,
                          [&] { time_engine(a, b, e, base); });
    };
    double t_gep = run("GEP", Engine::Iterative);
    double t_igep = run("I-GEP", Engine::IGep);
    double t_igz = run("I-GEP/Z", Engine::IGepZ);
    double t_blas = run("blocked", Engine::Blocked);
    auto pct = [&](double t) { return 100.0 * fl / t / 1e9 / peak; };
    table.add_row({Table::integer(n), Table::num(t_gep, 3),
                   Table::num(t_igep, 3), Table::num(t_igz, 3),
                   Table::num(t_blas, 3), Table::num(pct(t_gep), 1),
                   Table::num(pct(t_igep), 1), Table::num(pct(t_blas), 1)});
  }
  table.print(std::cout);
  table.write_csv("fig11_mm_times.csv");

  // Simulated L1/L2 misses, Opteron geometry. The cache-aware tile is
  // sized for the simulated L1 (64KB: 3 tiles of 48x48 doubles fit).
  std::vector<index_t> sim_sizes =
      small ? std::vector<index_t>{128}
            : std::vector<index_t>{128, 256, 512};
  Table misses({"n", "algo", "L1 misses", "L2 misses"});
  for (index_t n : sim_sizes) {
    Matrix<double> a = bench::random_matrix(n, 3);
    Matrix<double> b = bench::random_matrix(n, 4);
    auto run_traced = [&](const char* name, auto&& fn) {
      Matrix<double> c(n, n, 0.0);
      CacheHierarchy h(opteron_l1(), opteron_l2());
      fn(TracedMutMat{c.data(), n, &h}, TracedMat{a.data(), n, &h},
         TracedMat{b.data(), n, &h});
      misses.add_row(
          {Table::integer(n), name,
           Table::integer(static_cast<long long>(h.l1_stats().misses)),
           Table::integer(static_cast<long long>(h.l2_stats().misses))});
      // Simulated Opteron-geometry misses into the registry + report.
      h.publish_gauges(std::string("mm.") + name);
      bench::BenchRun r;
      r.label = std::string("sim:") + name;
      r.n = n;
      r.extra = {{"sim_l1_misses", static_cast<double>(h.l1_stats().misses)},
                 {"sim_l2_misses", static_cast<double>(h.l2_stats().misses)}};
      report.add(std::move(r));
    };
    run_traced("GEP", [&](TracedMutMat c, TracedMat ta, TracedMat tb) {
      traced_mm_gep(c, ta, tb, n);
    });
    run_traced("I-GEP", [&](TracedMutMat c, TracedMat ta, TracedMat tb) {
      traced_mm_igep(c, ta, tb, 0, 0, 0, n, 32);
    });
    run_traced("blocked", [&](TracedMutMat c, TracedMat ta, TracedMat tb) {
      traced_mm_tiled(c, ta, tb, n, 32);
    });
  }
  misses.print(std::cout);
  misses.write_csv("fig11_mm_misses.csv");

  // Instruction-count proxy (paper: "I-GEP executes more instructions
  // than native BLAS"): per-update bookkeeping on top of the n³ updates —
  // recursion nodes for I-GEP, packing copies for the blocked baseline.
  Table ops({"n", "algo", "updates", "overhead ops", "overhead/update %"});
  for (index_t n : sizes) {
    const double upd = static_cast<double>(n) * n * n;
    auto row = [&](const char* name, double extra) {
      ops.add_row({Table::integer(n), name, Table::num(upd / 1e6, 1) + "M",
                   Table::num(extra / 1e6, 2) + "M",
                   Table::num(100.0 * extra / upd, 3)});
    };
    row("GEP", 3.0 * n);  // loop counters only
    // I-GEP: ~ (8/7)(n/base)³ recursion nodes, ~40 ops each.
    const double nodes = 8.0 / 7.0 * (static_cast<double>(n) / base) *
                         (static_cast<double>(n) / base) *
                         (static_cast<double>(n) / base);
    row("I-GEP", 40.0 * nodes);
    // blocked: packing copies: each element of A and B is packed once
    // per (jc, pc) resp. (pc, ic) pass.
    const double packs =
        static_cast<double>(n) * n * (static_cast<double>(n) / 128.0 + 1) * 2;
    row("blocked", packs);
  }
  ops.print(std::cout);
  ops.write_csv("fig11_mm_ops.csv");
  std::printf(
      "\npaper: BLAS 78-83%% peak, I-GEP 50-56%%, GEP 9-13%%; I-GEP incurs\n"
      "fewer L1/L2 misses than BLAS but executes more instructions.\n");
  report.write();
  return 0;
}
