// I/O-complexity model validation: measured ideal-cache misses vs the
// paper's bounds — GEP = Θ(n³/B), I-GEP = Θ(n³/(B√M)) under the
// tall-cache assumption. For each (n, M, B) we report the measured miss
// count and the implied constant  misses / model;  a stable constant
// across the sweep is the empirical signature of the bound.
#include "bench_common.hpp"

#include <cmath>

#include "cachesim/ideal_cache.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"

namespace {

using namespace gep;

std::uint64_t misses_gep(index_t n, std::uint64_t M, std::uint64_t B) {
  Matrix<double> c = bench::random_dist_matrix(n, 1);
  IdealCache sim(M, B);
  TracedAccess<double, IdealCache> acc(c.data(), n, &sim);
  run_gep(acc, MinPlusF{}, FullSet{n});
  return sim.stats().misses;
}

std::uint64_t misses_igep(index_t n, std::uint64_t M, std::uint64_t B,
                          index_t base) {
  Matrix<double> c = bench::random_dist_matrix(n, 2);
  IdealCache sim(M, B);
  TracedAccess<double, IdealCache> acc(c.data(), n, &sim);
  run_igep(acc, MinPlusF{}, FullSet{n}, {base});
  return sim.stats().misses;
}

}  // namespace

int main() {
  bench::print_host_banner(
      "I/O model: measured misses vs O(n^3/B) and O(n^3/(B*sqrt(M)))");
  const bool small = bench::small_run();
  const index_t base = 4;  // deep recursion: the asymptotic regime

  // Sweep n at fixed M, B.
  {
    const std::uint64_t M = 64 * 1024, B = 64;
    std::vector<index_t> sizes = small ? std::vector<index_t>{64, 128}
                                       : std::vector<index_t>{64, 128, 256};
    Table t({"n", "GEP misses", "GEP/(n^3/B)", "I-GEP misses",
             "I-GEP/(n^3/(B*sqrtM))", "GEP/I-GEP"});
    for (index_t n : sizes) {
      auto mg = misses_gep(n, M, B);
      auto mi = misses_igep(n, M, B, base);
      const double n3 = static_cast<double>(n) * n * n;
      const double be = static_cast<double>(B) / 8;  // elements per block
      const double me = static_cast<double>(M) / 8;
      t.add_row({Table::integer(n), Table::integer(static_cast<long long>(mg)),
                 Table::num(static_cast<double>(mg) / (n3 / be), 3),
                 Table::integer(static_cast<long long>(mi)),
                 Table::num(static_cast<double>(mi) / (n3 / (be * std::sqrt(me))), 3),
                 Table::num(static_cast<double>(mg) / static_cast<double>(mi), 1)});
    }
    std::printf("sweep n (M=64KB, B=64B):\n");
    t.print(std::cout);
    t.write_csv("io_model_sweep_n.csv");
  }

  // Sweep M at fixed n, B: I-GEP constant should stay put, GEP's misses flat.
  {
    const index_t n = small ? 128 : 256;
    const std::uint64_t B = 64;
    Table t({"M (KB)", "GEP misses", "I-GEP misses",
             "I-GEP/(n^3/(B*sqrtM))", "GEP/I-GEP"});
    for (std::uint64_t M : {16u * 1024, 64u * 1024, 256u * 1024}) {
      auto mg = misses_gep(n, M, B);
      auto mi = misses_igep(n, M, B, base);
      const double n3 = static_cast<double>(n) * n * n;
      const double be = static_cast<double>(B) / 8;
      const double me = static_cast<double>(M) / 8;
      t.add_row({Table::integer(static_cast<long long>(M / 1024)),
                 Table::integer(static_cast<long long>(mg)),
                 Table::integer(static_cast<long long>(mi)),
                 Table::num(static_cast<double>(mi) / (n3 / (be * std::sqrt(me))), 3),
                 Table::num(static_cast<double>(mg) / static_cast<double>(mi), 1)});
    }
    std::printf("sweep M (n=%lld, B=64B):\n", static_cast<long long>(n));
    t.print(std::cout);
    t.write_csv("io_model_sweep_m.csv");
  }

  // Sweep B at fixed n, M (M must be well below n² elements so capacity
  // misses dominate; 128² doubles = 128 KB, so use M = 32 KB).
  {
    const index_t n = 128;
    const std::uint64_t M = 32 * 1024;
    Table t({"B (bytes)", "GEP misses", "I-GEP misses", "GEP*B (MB)",
             "I-GEP*B (MB)"});
    for (std::uint64_t B : {32u, 64u, 128u, 256u}) {
      auto mg = misses_gep(n, M, B);
      auto mi = misses_igep(n, M, B, base);
      t.add_row({Table::integer(static_cast<long long>(B)),
                 Table::integer(static_cast<long long>(mg)),
                 Table::integer(static_cast<long long>(mi)),
                 Table::num(static_cast<double>(mg) * static_cast<double>(B) / 1e6, 2),
                 Table::num(static_cast<double>(mi) * static_cast<double>(B) / 1e6, 2)});
    }
    std::printf("sweep B (n=%lld, M=32KB):\n", static_cast<long long>(n));
    t.print(std::cout);
    t.write_csv("io_model_sweep_b.csv");
  }
  std::printf(
      "\nexpected: the per-model constants stay within a small factor across\n"
      "each sweep; GEP/I-GEP miss ratio grows like sqrt(M).\n");
  return 0;
}
