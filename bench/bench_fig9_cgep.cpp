// Figure 9 reproduction: in-core I-GEP vs C-GEP (both space variants)
// for Floyd-Warshall.
//
// Paper result: both C-GEP variants run slower than I-GEP and incur more
// L2 misses (they perform extra writes into the snapshot matrices); the
// overhead ratio shrinks as n grows; the 4n²-space variant slightly
// outperforms the (n²+n)-space variant because the reduced variant pays
// extra (re)initializations. We report wall time ratios and simulated
// L2 misses on the paper's Opteron geometry.
#include "bench_common.hpp"

#include "cachesim/set_assoc_cache.hpp"
#include "gep/cgep.hpp"
#include "gep/igep.hpp"

namespace {

using namespace gep;

double time_igep(const Matrix<double>& init, index_t base) {
  Matrix<double> c = init;
  WallTimer t;
  run_igep(c, MinPlusF{}, FullSet{c.rows()}, {base});
  return t.seconds();
}

double time_cgep(const Matrix<double>& init, index_t base, bool compact) {
  Matrix<double> c = init;
  WallTimer t;
  if (compact) {
    run_cgep_compact(c, MinPlusF{}, FullSet{c.rows()}, {base});
  } else {
    run_cgep(c, MinPlusF{}, FullSet{c.rows()}, {base});
  }
  return t.seconds();
}

template <class Run>
std::uint64_t l2_misses(const Matrix<double>& init, Run&& run) {
  Matrix<double> c = init;
  CacheHierarchy h(opteron_l1(), opteron_l2());
  TracedAccess<double, CacheHierarchy> acc(c.data(), c.rows(), &h);
  run(acc);
  return h.l2_stats().misses;
}

}  // namespace

int main() {
  bench::print_host_banner("Figure 9: I-GEP vs C-GEP (4n^2) vs C-GEP (reduced)");
  const bool small = bench::small_run();
  const index_t base = 32;

  // (a) wall-clock comparison.
  std::vector<index_t> sizes = small ? std::vector<index_t>{128, 256}
                                     : std::vector<index_t>{128, 256, 512, 1024};
  Table times({"n", "I-GEP (s)", "C-GEP 4n^2 (s)", "C-GEP compact (s)",
               "4n^2 / I-GEP", "compact / I-GEP"});
  for (index_t n : sizes) {
    Matrix<double> init = bench::random_dist_matrix(n, 7);
    double ti = time_igep(init, base);
    double t4 = time_cgep(init, base, false);
    double tc = time_cgep(init, base, true);
    times.add_row({Table::integer(n), Table::num(ti, 3), Table::num(t4, 3),
                   Table::num(tc, 3), Table::num(t4 / ti, 2),
                   Table::num(tc / ti, 2)});
  }
  times.print(std::cout);
  times.write_csv("fig9_cgep_times.csv");

  // (b) simulated L2 misses, Opteron 250 geometry (1MB 8-way 64B).
  std::vector<index_t> sim_sizes = small ? std::vector<index_t>{64, 128}
                                         : std::vector<index_t>{64, 128, 256};
  Table misses({"n", "I-GEP L2 miss", "C-GEP 4n^2 L2 miss",
                "C-GEP compact L2 miss", "4n^2 / I-GEP", "compact / I-GEP"});
  for (index_t n : sim_sizes) {
    Matrix<double> init = bench::random_dist_matrix(n, 8);
    auto mi = l2_misses(init, [&](auto& acc) {
      run_igep(acc, MinPlusF{}, FullSet{n}, {base});
    });
    // C-GEP: aux matrices are also traced (their writes are the overhead
    // the figure attributes to C-GEP).
    Matrix<double> c4 = init;
    CacheHierarchy h4(opteron_l1(), opteron_l2());
    {
      Matrix<double> u0(c4), u1(c4), v0(c4), v1(c4);
      TracedAccess<double, CacheHierarchy> ca(c4.data(), n, &h4),
          a0(u0.data(), n, &h4), a1(u1.data(), n, &h4),
          b0(v0.data(), n, &h4), b1(v1.data(), n, &h4);
      run_cgep_with_aux(ca, a0, a1, b0, b1, MinPlusF{}, FullSet{n}, {base});
    }
    Matrix<double> cc = init;
    CacheHierarchy hc(opteron_l1(), opteron_l2());
    {
      const index_t half = n / 2;
      Matrix<double> u0(n, half), u1(n, half), v0(half, n), v1(half, n);
      TracedAccess<double, CacheHierarchy> ca(cc.data(), n, &hc);
      // Slice stores: rectangular, use their own row strides.
      struct Slice {
        double* d;
        index_t cols;
        CacheHierarchy* h;
        double get(index_t i, index_t j) const {
          h->access(reinterpret_cast<std::uintptr_t>(d + i * cols + j), false);
          return d[i * cols + j];
        }
        void set(index_t i, index_t j, double v) {
          h->access(reinterpret_cast<std::uintptr_t>(d + i * cols + j), true);
          d[i * cols + j] = v;
        }
      };
      Slice a0{u0.data(), half, &hc}, a1{u1.data(), half, &hc},
          b0{v0.data(), n, &hc}, b1{v1.data(), n, &hc};
      run_cgep_compact_with_aux(ca, a0, a1, b0, b1, MinPlusF{}, FullSet{n},
                                {base});
    }
    auto m4 = h4.l2_stats().misses;
    auto mc = hc.l2_stats().misses;
    misses.add_row({Table::integer(n), Table::integer(static_cast<long long>(mi)),
                    Table::integer(static_cast<long long>(m4)),
                    Table::integer(static_cast<long long>(mc)),
                    Table::num(static_cast<double>(m4) / static_cast<double>(mi), 2),
                    Table::num(static_cast<double>(mc) / static_cast<double>(mi), 2)});
  }
  misses.print(std::cout);
  misses.write_csv("fig9_cgep_misses.csv");
  std::printf(
      "\npaper: C-GEP slower + more L2 misses than I-GEP; overhead\n"
      "diminishes as n grows; 4n^2 variant beats the reduced variant.\n");
  return 0;
}
