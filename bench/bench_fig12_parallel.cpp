// Figure 12 reproduction: speedup of multithreaded I-GEP for MM, GE and
// FW as the number of processors grows from 1 to 8.
//
// Paper (8-proc Opteron 850, n = 5000): speedup at 8 threads is 6.0x for
// MM, 5.73x for FW and 5.33x for GE; MM parallelizes best because its
// D-only recursion has span O(n) vs O(n log² n).
//
// This host may have fewer cores than 8, so the bench reports BOTH:
//   (a) the schedule-simulated speedup (greedy list scheduling of the
//       real fork-join DAG with flop-count costs) for p = 1..8 — the
//       machine-independent reproduction of the figure's shape; and
//   (b) measured wall time of the real pthreads execution for 1..8
//       threads (meaningful only up to the core count, printed for
//       completeness).
#include "bench_common.hpp"

#include <functional>
#include <thread>

#include "apps/apps.hpp"
#include "parallel/dag_sim.hpp"

namespace {

using namespace gep;
using apps::Engine;

}  // namespace

int main() {
  double peak =
      bench::print_host_banner("Figure 12: multithreaded I-GEP speedup");
  const bool small = bench::small_run();
  bench::BenchReport report("fig12_parallel", peak);
  // n/base = 16 keeps the DAG coarse enough that span effects show at
  // p = 8 (with very fine DAGs greedy scheduling hides the differences
  // the paper measured; see EXPERIMENTS.md).
  const index_t n_sim = small ? 512 : 1024;
  const index_t base = 64;

  // (a) schedule-simulated speedups.
  Table sim({"p", "MM speedup", "FW speedup", "GE speedup", "LU speedup"});
  auto mm = build_igep_dag(DagProblem::MatMul, n_sim, base);
  auto fw = build_igep_dag(DagProblem::FloydWarshall, n_sim, base);
  auto ge = build_igep_dag(DagProblem::Gaussian, n_sim, base);
  auto lu = build_igep_dag(DagProblem::LU, n_sim, base);
  const double w_mm = dag_work(mm), w_fw = dag_work(fw), w_ge = dag_work(ge),
               w_lu = dag_work(lu);
  for (int p = 1; p <= 8; ++p) {
    const double s_mm = w_mm / dag_makespan(mm, p);
    const double s_fw = w_fw / dag_makespan(fw, p);
    const double s_ge = w_ge / dag_makespan(ge, p);
    const double s_lu = w_lu / dag_makespan(lu, p);
    sim.add_row({Table::integer(p), Table::num(s_mm, 2), Table::num(s_fw, 2),
                 Table::num(s_ge, 2), Table::num(s_lu, 2)});
    bench::BenchRun r;
    r.label = "sim-speedup p=" + std::to_string(p);
    r.n = n_sim;
    r.extra = {{"mm", s_mm}, {"fw", s_fw}, {"ge", s_ge}, {"lu", s_lu}};
    report.add(std::move(r));
  }
  std::printf("(a) DAG schedule simulation, n = %lld, base = %lld:\n",
              static_cast<long long>(n_sim), static_cast<long long>(base));
  sim.print(std::cout);
  sim.write_csv("fig12_sim_speedup.csv");
  std::printf(
      "paper at p=8, n=5000: MM 6.0x, FW 5.73x, GE 5.33x (MM > FW > GE).\n\n");

  // (b) real pthreads execution on this host.
  const index_t n_real = small ? 256 : 1024;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("(b) real fork-join execution, n = %lld (host has %u core(s); "
              "speedups saturate there):\n",
              static_cast<long long>(n_real), cores);
  Matrix<double> fw_init = bench::random_dist_matrix(n_real, 1);
  Matrix<double> lu_init = bench::random_dd_matrix(n_real, 2);
  Matrix<double> a = bench::random_matrix(n_real, 3);
  Matrix<double> b = bench::random_matrix(n_real, 4);

  auto time_fw = [&](int threads) {
    Matrix<double> d = fw_init;
    WallTimer t;
    apps::floyd_warshall(d, Engine::IGep, {base, threads});
    return t.seconds();
  };
  auto time_lu = [&](int threads) {
    Matrix<double> m = lu_init;
    WallTimer t;
    apps::lu_decompose(m, Engine::IGep, {base, threads});
    return t.seconds();
  };
  auto time_mm = [&](int threads) {
    Matrix<double> c(n_real, n_real, 0.0);
    WallTimer t;
    apps::multiply_add(c, a, b, Engine::IGep, {base, threads});
    return t.seconds();
  };

  const double fl_mm = bench::flops_mm(n_real);
  const double fl_fw = bench::flops_fw(n_real);
  const double fl_lu = bench::flops_lu(n_real);
  auto record = [&](const char* kind, int p, double fl, double t,
                    double t1) {
    bench::BenchRun r;
    r.label = std::string(kind) + " p=" + std::to_string(p);
    r.n = n_real;
    r.seconds = t;
    r.gflops = fl / t / 1e9;
    r.pct_peak = peak > 0 ? 100.0 * r.gflops / peak : 0.0;
    r.extra = {{"threads", static_cast<double>(p)}, {"speedup", t1 / t}};
    report.add(std::move(r));
  };
  const double fw1 = time_fw(1), lu1 = time_lu(1), mm1 = time_mm(1);
  record("MM", 1, fl_mm, mm1, mm1);
  record("FW", 1, fl_fw, fw1, fw1);
  record("LU", 1, fl_lu, lu1, lu1);
  Table real({"threads", "MM (s)", "MM speedup", "FW (s)", "FW speedup",
              "GE/LU (s)", "GE/LU speedup"});
  real.add_row({Table::integer(1), Table::num(mm1, 3), Table::num(1.0, 2),
                Table::num(fw1, 3), Table::num(1.0, 2), Table::num(lu1, 3),
                Table::num(1.0, 2)});
  for (int p : {2, 4, 8}) {
    double mmp = time_mm(p), fwp = time_fw(p), lup = time_lu(p);
    record("MM", p, fl_mm, mmp, mm1);
    record("FW", p, fl_fw, fwp, fw1);
    record("LU", p, fl_lu, lup, lu1);
    real.add_row({Table::integer(p), Table::num(mmp, 3),
                  Table::num(mm1 / mmp, 2), Table::num(fwp, 3),
                  Table::num(fw1 / fwp, 2), Table::num(lup, 3),
                  Table::num(lu1 / lup, 2)});
  }
  real.print(std::cout);
  real.write_csv("fig12_real_speedup.csv");

  // (c) dependency-driven DAG runtime vs the fork-join invoker, at equal
  // REQUESTED thread count. The DAG drops the recursion's join barriers
  // (tasks release the moment their block dependencies retire,
  // dispatched by critical-path priority) and, as part of its resource
  // policy, clamps its worker set to the host's concurrency — a
  // dependency-driven frontier keeps every worker busy, so
  // oversubscription only thrashes the shared cache. The fork-join
  // engine runs the request as given (its historical behaviour). Each
  // leg is the MIN over repeats: single-shot wall times on a shared
  // host swing far more than the runtimes differ. The JSON carries
  // speedup_vs_forkjoin for the CI gate; labels are host-independent
  // (no thread count), effective worker counts ride in `extra`.
  const index_t n_dag = small ? 256 : 2048;
  const int p_dag = 4;
  const int dag_workers = std::min(
      p_dag, static_cast<int>(std::max(1u,
                                       std::thread::hardware_concurrency())));
  const int reps = 3;
  std::printf("\n(c) DAG runtime vs fork-join, n = %lld, p = %d "
              "(dag workers: %d), min of %d:\n",
              static_cast<long long>(n_dag), p_dag, dag_workers, reps);
  Matrix<double> fw_dag_init = bench::random_dist_matrix(n_dag, 5);
  Matrix<double> lu_dag_init = bench::random_dd_matrix(n_dag, 6);
  Matrix<double> a_dag = bench::random_matrix(n_dag, 7);
  Matrix<double> b_dag = bench::random_matrix(n_dag, 8);
  Table dag_tbl(
      {"problem", "forkjoin (s)", "dag (s)", "dag speedup vs forkjoin"});
  auto dag_leg = [&](const char* kind, double fl, double updates_one_pass,
                     const std::function<double(apps::Runtime,
                                                Matrix<double>&)>& run) {
    Matrix<double> out_fj, out_dag;
    // Live /progress over the whole leg (2 runtimes x reps passes); the
    // stat server was armed by the banner when $GEP_STAT_PORT is set.
    obs::ProgressMeter meter;
    meter.begin(2.0 * reps * updates_one_pass, 2.0 * reps * fl);
    obs::ScopedStatProgress stat_progress(meter, kind);
    double t_fj = run(apps::Runtime::ForkJoin, out_fj);
    for (int r = 1; r < reps; ++r) {
      t_fj = std::min(t_fj, run(apps::Runtime::ForkJoin, out_fj));
    }
    bench::BenchRun r_fj;
    r_fj.label = std::string(kind) + " forkjoin";
    r_fj.n = n_dag;
    r_fj.seconds = t_fj;
    r_fj.gflops = fl / t_fj / 1e9;
    r_fj.pct_peak = peak > 0 ? 100.0 * r_fj.gflops / peak : 0.0;
    r_fj.extra = {{"threads", static_cast<double>(p_dag)}};
    report.add(std::move(r_fj));
    double t_dag = run(apps::Runtime::Dag, out_dag);
    for (int r = 1; r < reps; ++r) {
      t_dag = std::min(t_dag, run(apps::Runtime::Dag, out_dag));
    }
    bench::BenchRun r_dag;
    r_dag.label = std::string(kind) + " dag";
    r_dag.n = n_dag;
    r_dag.seconds = t_dag;
    r_dag.gflops = fl / t_dag / 1e9;
    r_dag.pct_peak = peak > 0 ? 100.0 * r_dag.gflops / peak : 0.0;
    r_dag.extra = {{"threads", static_cast<double>(p_dag)},
                   {"workers", static_cast<double>(dag_workers)},
                   {"speedup_vs_forkjoin", t_fj / t_dag}};
    report.add(std::move(r_dag));
    // Bit-identical across runtimes, or the comparison is meaningless.
    for (index_t i = 0; i < n_dag; ++i) {
      for (index_t j = 0; j < n_dag; ++j) {
        if (out_fj(i, j) != out_dag(i, j)) {
          std::fprintf(stderr, "FAIL: %s DAG differs from fork-join at "
                       "(%lld,%lld)\n", kind, static_cast<long long>(i),
                       static_cast<long long>(j));
          std::exit(1);
        }
      }
    }
    dag_tbl.add_row({kind, Table::num(t_fj, 3), Table::num(t_dag, 3),
                     Table::num(t_fj / t_dag, 2)});
  };
  dag_leg("FW", bench::flops_fw(n_dag),
          obs::typed_cube_updates(static_cast<double>(n_dag)),
          [&](apps::Runtime rt, Matrix<double>& out) {
            out = fw_dag_init;
            WallTimer t;
            apps::floyd_warshall(out, Engine::IGep, {base, p_dag, rt});
            return t.seconds();
          });
  dag_leg("LU", bench::flops_lu(n_dag),
          obs::typed_lu_updates(static_cast<double>(n_dag),
                                static_cast<double>(base)),
          [&](apps::Runtime rt, Matrix<double>& out) {
            out = lu_dag_init;
            WallTimer t;
            apps::lu_decompose(out, Engine::IGep, {base, p_dag, rt});
            return t.seconds();
          });
  dag_leg("MM", bench::flops_mm(n_dag),
          obs::typed_cube_updates(static_cast<double>(n_dag)),
          [&](apps::Runtime rt, Matrix<double>& out) {
            out = Matrix<double>(n_dag, n_dag, 0.0);
            WallTimer t;
            apps::multiply_add(out, a_dag, b_dag, Engine::IGep,
                               {base, p_dag, rt});
            return t.seconds();
          });
  dag_tbl.print(std::cout);
  dag_tbl.write_csv("fig12_dag_runtime.csv");
  report.write();
  return 0;
}
