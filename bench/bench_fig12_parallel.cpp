// Figure 12 reproduction: speedup of multithreaded I-GEP for MM, GE and
// FW as the number of processors grows from 1 to 8.
//
// Paper (8-proc Opteron 850, n = 5000): speedup at 8 threads is 6.0x for
// MM, 5.73x for FW and 5.33x for GE; MM parallelizes best because its
// D-only recursion has span O(n) vs O(n log² n).
//
// This host may have fewer cores than 8, so the bench reports BOTH:
//   (a) the schedule-simulated speedup (greedy list scheduling of the
//       real fork-join DAG with flop-count costs) for p = 1..8 — the
//       machine-independent reproduction of the figure's shape; and
//   (b) measured wall time of the real pthreads execution for 1..8
//       threads (meaningful only up to the core count, printed for
//       completeness).
#include "bench_common.hpp"

#include <thread>

#include "apps/apps.hpp"
#include "parallel/dag_sim.hpp"

namespace {

using namespace gep;
using apps::Engine;

}  // namespace

int main() {
  double peak =
      bench::print_host_banner("Figure 12: multithreaded I-GEP speedup");
  const bool small = bench::small_run();
  bench::BenchReport report("fig12_parallel", peak);
  // n/base = 16 keeps the DAG coarse enough that span effects show at
  // p = 8 (with very fine DAGs greedy scheduling hides the differences
  // the paper measured; see EXPERIMENTS.md).
  const index_t n_sim = small ? 512 : 1024;
  const index_t base = 64;

  // (a) schedule-simulated speedups.
  Table sim({"p", "MM speedup", "FW speedup", "GE speedup", "LU speedup"});
  auto mm = build_igep_dag(DagProblem::MatMul, n_sim, base);
  auto fw = build_igep_dag(DagProblem::FloydWarshall, n_sim, base);
  auto ge = build_igep_dag(DagProblem::Gaussian, n_sim, base);
  auto lu = build_igep_dag(DagProblem::LU, n_sim, base);
  const double w_mm = dag_work(mm), w_fw = dag_work(fw), w_ge = dag_work(ge),
               w_lu = dag_work(lu);
  for (int p = 1; p <= 8; ++p) {
    const double s_mm = w_mm / dag_makespan(mm, p);
    const double s_fw = w_fw / dag_makespan(fw, p);
    const double s_ge = w_ge / dag_makespan(ge, p);
    const double s_lu = w_lu / dag_makespan(lu, p);
    sim.add_row({Table::integer(p), Table::num(s_mm, 2), Table::num(s_fw, 2),
                 Table::num(s_ge, 2), Table::num(s_lu, 2)});
    bench::BenchRun r;
    r.label = "sim-speedup p=" + std::to_string(p);
    r.n = n_sim;
    r.extra = {{"mm", s_mm}, {"fw", s_fw}, {"ge", s_ge}, {"lu", s_lu}};
    report.add(std::move(r));
  }
  std::printf("(a) DAG schedule simulation, n = %lld, base = %lld:\n",
              static_cast<long long>(n_sim), static_cast<long long>(base));
  sim.print(std::cout);
  sim.write_csv("fig12_sim_speedup.csv");
  std::printf(
      "paper at p=8, n=5000: MM 6.0x, FW 5.73x, GE 5.33x (MM > FW > GE).\n\n");

  // (b) real pthreads execution on this host.
  const index_t n_real = small ? 256 : 1024;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("(b) real fork-join execution, n = %lld (host has %u core(s); "
              "speedups saturate there):\n",
              static_cast<long long>(n_real), cores);
  Matrix<double> fw_init = bench::random_dist_matrix(n_real, 1);
  Matrix<double> lu_init = bench::random_dd_matrix(n_real, 2);
  Matrix<double> a = bench::random_matrix(n_real, 3);
  Matrix<double> b = bench::random_matrix(n_real, 4);

  auto time_fw = [&](int threads) {
    Matrix<double> d = fw_init;
    WallTimer t;
    apps::floyd_warshall(d, Engine::IGep, {base, threads});
    return t.seconds();
  };
  auto time_lu = [&](int threads) {
    Matrix<double> m = lu_init;
    WallTimer t;
    apps::lu_decompose(m, Engine::IGep, {base, threads});
    return t.seconds();
  };
  auto time_mm = [&](int threads) {
    Matrix<double> c(n_real, n_real, 0.0);
    WallTimer t;
    apps::multiply_add(c, a, b, Engine::IGep, {base, threads});
    return t.seconds();
  };

  const double fl_mm = bench::flops_mm(n_real);
  const double fl_fw = bench::flops_fw(n_real);
  const double fl_lu = bench::flops_lu(n_real);
  auto record = [&](const char* kind, int p, double fl, double t,
                    double t1) {
    bench::BenchRun r;
    r.label = std::string(kind) + " p=" + std::to_string(p);
    r.n = n_real;
    r.seconds = t;
    r.gflops = fl / t / 1e9;
    r.pct_peak = peak > 0 ? 100.0 * r.gflops / peak : 0.0;
    r.extra = {{"threads", static_cast<double>(p)}, {"speedup", t1 / t}};
    report.add(std::move(r));
  };
  const double fw1 = time_fw(1), lu1 = time_lu(1), mm1 = time_mm(1);
  record("MM", 1, fl_mm, mm1, mm1);
  record("FW", 1, fl_fw, fw1, fw1);
  record("LU", 1, fl_lu, lu1, lu1);
  Table real({"threads", "MM (s)", "MM speedup", "FW (s)", "FW speedup",
              "GE/LU (s)", "GE/LU speedup"});
  real.add_row({Table::integer(1), Table::num(mm1, 3), Table::num(1.0, 2),
                Table::num(fw1, 3), Table::num(1.0, 2), Table::num(lu1, 3),
                Table::num(1.0, 2)});
  for (int p : {2, 4, 8}) {
    double mmp = time_mm(p), fwp = time_fw(p), lup = time_lu(p);
    record("MM", p, fl_mm, mmp, mm1);
    record("FW", p, fl_fw, fwp, fw1);
    record("LU", p, fl_lu, lup, lu1);
    real.add_row({Table::integer(p), Table::num(mmp, 3),
                  Table::num(mm1 / mmp, 2), Table::num(fwp, 3),
                  Table::num(fw1 / fwp, 2), Table::num(lup, 3),
                  Table::num(lu1 / lup, 2)});
  }
  real.print(std::cout);
  real.write_csv("fig12_real_speedup.csv");
  report.write();
  return 0;
}
