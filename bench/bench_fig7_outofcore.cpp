// Figure 7 reproduction: out-of-core GEP vs I-GEP vs C-GEP (both space
// variants) for Floyd-Warshall through the STXXL-substitute page cache.
//
// 7(a): fixed n and B, sweep M. Paper: GEP's I/O wait is essentially flat
//       in M and SEVERAL HUNDRED times larger than I-GEP/C-GEP; the
//       recursive algorithms improve as M grows (Θ(n³/(B√M)) transfers).
// 7(b): fixed n and M, sweep M/B by varying B. Paper: I/O wait grows
//       roughly linearly in M/B for the recursive algorithms.
//
// I/O wait is simulated with the paper's disk (4.5 ms seek, ~86 MB/s);
// page transfer COUNTS are exact, so the shapes are hardware-independent.
#include "bench_common.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "extmem/checkpoint.hpp"
#include "extmem/ooc_matrix.hpp"
#include "extmem/ooc_typed.hpp"
#include "gep/cgep.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "parallel/work_stealing.hpp"

namespace {

using namespace gep;

enum class Algo { Gep, IGep, CGep4, CGepCompact };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::Gep: return "GEP";
    case Algo::IGep: return "I-GEP";
    case Algo::CGep4: return "C-GEP(4n^2)";
    case Algo::CGepCompact: return "C-GEP(compact)";
  }
  return "?";
}

struct OocResult {
  double io_wait_s = 0;
  std::uint64_t page_ios = 0;
};

// Runs one algorithm out-of-core with the given disk layout (MatT is
// OocMatrix — row-major pages — or OocTiledMatrix, the STXXL-style tiled
// layout the headline tables use; see the layout ablation below).
template <template <class> class MatT>
OocResult run_ooc(Algo algo, const Matrix<double>& init, std::uint64_t M,
                  std::uint64_t B, index_t base) {
  const index_t n = init.rows();
  PageCache cache(M, B);
  MatT<double> c(cache, n, n);
  c.load(init);
  auto clone_into = [&](MatT<double>& dst) {
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j) dst.set(i, j, c.get(i, j));
  };
  if (algo == Algo::CGep4) {
    MatT<double> u0(cache, n, n), u1(cache, n, n), v0(cache, n, n),
        v1(cache, n, n);
    clone_into(u0);
    clone_into(u1);
    clone_into(v0);
    clone_into(v1);
    cache.reset_stats();
    run_cgep_with_aux(c, u0, u1, v0, v1, MinPlusF{}, FullSet{n}, {base});
  } else if (algo == Algo::CGepCompact) {
    const index_t h = n / 2;
    MatT<double> u0(cache, n, h), u1(cache, n, h), v0(cache, h, n),
        v1(cache, h, n);
    cache.reset_stats();
    run_cgep_compact_with_aux(c, u0, u1, v0, v1, MinPlusF{}, FullSet{n},
                              {base});
  } else {
    cache.reset_stats();
    if (algo == Algo::Gep) {
      run_gep(c, MinPlusF{}, FullSet{n});
    } else {
      run_igep(c, MinPlusF{}, FullSet{n}, {base});
    }
  }
  cache.flush();
  return {cache.stats().io_wait_seconds, cache.stats().io()};
}

}  // namespace

int main(int argc, char** argv) {
  // --fault-rate=X: run the typed-engine legs through a deterministic
  // FaultInjector (seed 42) at per-op probability X for read/write
  // errors and in-flight bit flips (X/2 for torn writes). Results must
  // still be bit-identical across legs; the robust.* recovery counters
  // land in the BENCH JSON under report "fig7_outofcore_faults".
  // --ckpt-every=N / --ckpt-interval=S: add a checkpointed leg (snapshot
  // every N retired leaves and/or every S seconds of wall clock) whose
  // ckpt.* costs land in the BENCH JSON under "fig7_outofcore_ckpt"; the
  // CI smoke gate asserts the overhead stays under 10% of the leg's wall.
  double fault_rate = 0;
  std::uint64_t ckpt_every = 0;
  double ckpt_interval = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--fault-rate=", 13) == 0) {
      fault_rate = std::strtod(arg + 13, nullptr);
    } else if (std::strncmp(arg, "--ckpt-every=", 13) == 0) {
      ckpt_every = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--ckpt-interval=", 16) == 0) {
      ckpt_interval = std::strtod(arg + 16, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--fault-rate=X] [--ckpt-every=N]"
                   " [--ckpt-interval=S]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool ckpt_on = ckpt_every > 0 || ckpt_interval > 0;
  const double peak = bench::print_host_banner(
      "Figure 7: out-of-core I/O wait, GEP vs I-GEP vs C-GEP");
  // Cooperative SIGINT/SIGTERM: the typed legs poll a stop flag at leaf
  // granularity and unwind through JobCancelled, so an interrupted run
  // still flushes write-behind and leaves a decodable flight dump.
  obs::flight::install_job_signal_handlers();
  // SIGUSR2 -> checkpoint-and-continue (consumed by the ckpt leg's
  // coordinator at the next leaf retirement; inert without --ckpt-*).
  install_checkpoint_signal_handler();
  const bool small = bench::small_run();
  const index_t n = small ? 128 : 512;
  // Base 8: C-GEP touches five matrices per box, so the recursion must
  // descend further than in-core before a box's working set fits small M
  // — with a large iterative base the base case is no longer cache-sized
  // and LRU thrashes (see EXPERIMENTS.md). Applied to every algorithm.
  const index_t base = 8;
  const std::uint64_t n2bytes = static_cast<std::uint64_t>(n) * n * 8;
  Matrix<double> init = bench::random_dist_matrix(n, 5);
  std::printf("n = %lld (matrix = %.1f MB on disk)\n\n",
              static_cast<long long>(n), n2bytes / 1e6);

  // --- 7(a): vary M at fixed B ------------------------------------------
  // B scales with n so that even the smallest M is tens of frames.
  const std::uint64_t B_a = small ? 2 * 1024 : 16 * 1024;
  Table ta({"M / n^2", "algo", "I/O wait (sim s)", "page I/Os"});
  for (double frac : {0.125, 0.25, 0.5, 1.0}) {
    const std::uint64_t M = static_cast<std::uint64_t>(frac * n2bytes);
    for (Algo a : {Algo::Gep, Algo::IGep, Algo::CGep4, Algo::CGepCompact}) {
      // GEP at the smallest memory sizes is extremely slow; the paper's
      // plot holds GEP nearly flat in M, so measure it once at the
      // largest M and reuse (noted in EXPERIMENTS.md).
      OocResult r = run_ooc<OocTiledMatrix>(a, init, M, B_a, base);
      ta.add_row({Table::num(frac, 3), algo_name(a), Table::num(r.io_wait_s, 2),
                  Table::integer(static_cast<long long>(r.page_ios))});
    }
  }
  ta.print(std::cout);
  ta.write_csv("fig7a_outofcore.csv");

  // --- 7(b): vary B (i.e. M/B) at fixed M --------------------------------
  const std::uint64_t M_b = n2bytes / 2;
  Table tb({"M/B", "B (KB)", "algo", "I/O wait (sim s)", "page I/Os"});
  const std::uint64_t b_shift = small ? 8 : 1;  // scale B down in small mode
  for (std::uint64_t B0 : {64 * 1024, 32 * 1024, 16 * 1024, 8 * 1024}) {
    const std::uint64_t B = B0 / b_shift;
    for (Algo a : {Algo::Gep, Algo::IGep, Algo::CGep4, Algo::CGepCompact}) {
      OocResult r = run_ooc<OocTiledMatrix>(a, init, M_b, B, base);
      (void)B0;
      tb.add_row({Table::integer(static_cast<long long>(M_b / B)),
                  Table::num(static_cast<double>(B) / 1024.0, 0), algo_name(a),
                  Table::num(r.io_wait_s, 2),
                  Table::integer(static_cast<long long>(r.page_ios))});
    }
  }
  tb.print(std::cout);
  tb.write_csv("fig7b_outofcore.csv");

  // --- layout ablation: row-major vs tile-major on-disk pages -----------
  // (the out-of-core analogue of the Section 4.2 bit-interleaved layout)
  {
    const std::uint64_t M = n2bytes / 4, B = B_a;
    Table tc({"layout", "algo", "I/O wait (sim s)", "page I/Os"});
    for (Algo a : {Algo::IGep, Algo::CGep4}) {
      OocResult r_rm = run_ooc<OocMatrix>(a, init, M, B, base);
      OocResult r_tm = run_ooc<OocTiledMatrix>(a, init, M, B, base);
      tc.add_row({"row-major", algo_name(a), Table::num(r_rm.io_wait_s, 2),
                  Table::integer(static_cast<long long>(r_rm.page_ios))});
      tc.add_row({"tile-major", algo_name(a), Table::num(r_tm.io_wait_s, 2),
                  Table::integer(static_cast<long long>(r_tm.page_ios))});
    }
    std::printf("layout ablation (M = n^2/4, B = %llu KB):\n",
                static_cast<unsigned long long>(B / 1024));
    tc.print(std::cout);
    tc.write_csv("fig7_layout_ablation.csv");
  }
  // --- typed engine: sequential vs parallel vs parallel+prefetch --------
  // The block-granular typed engine (pinned tiles, raw-pointer kernels)
  // on the work-stealing pool, with and without recursion-driven prefetch
  // through the cache's async I/O worker. Same (n, M, B) across legs; all
  // legs must produce identical results (invoke() barriers keep stages'
  // X tiles disjoint).
  {
    bench::BenchReport report(fault_rate > 0 ? "fig7_outofcore_faults"
                              : ckpt_on      ? "fig7_outofcore_ckpt"
                                             : "fig7_outofcore",
                              peak);
    RobustOptions robust;
    if (fault_rate > 0) {
      robust.faults.seed = 42;
      robust.faults.p_read_error = fault_rate;
      robust.faults.p_write_error = fault_rate;
      robust.faults.p_bitflip_read = fault_rate;
      robust.faults.p_torn_write = fault_rate / 2;
      robust.retry.max_attempts = 10;  // survive flip-on-retry chains
      std::printf("fault injection: rate %g, seed %llu\n\n", fault_rate,
                  static_cast<unsigned long long>(robust.faults.seed));
    }
    // M = n^2/2: the typed legs pin up to 4 tiles per worker, and the
    // prefetcher needs unpinned frames to land pages in — the n^2/4 cache
    // of the sweeps above would leave it almost no room at small scale.
    const std::uint64_t M = n2bytes / 2, B = B_a;
    // Each in-flight leaf holds up to 4 pinned tiles; cap workers so the
    // cache always has evictable frames (see docs/EXTMEM.md sizing rule).
    const int threads = std::clamp(
        std::min(static_cast<int>(std::thread::hardware_concurrency()),
                 static_cast<int>(M / B) / 6),
        2, 8);
    Table td({"engine", "wall (s)", "sim I/O wait (s)", "page I/Os",
              "prefetch hits", "hit rate"});
    Matrix<double> ref;
    double t_sync = 0;
    // Realize 1% of the modeled disk latency as actual sleep so there is
    // wall-clock latency for the async worker to hide (page faults on
    // NVMe-backed temp files are otherwise near-instant and the overlap
    // would be unmeasurable). Identical for all three legs.
    DiskModel disk;
    disk.realize_fraction = 0.01;
    auto leg = [&](const char* label, bool parallel, bool prefetch,
                   bool dag = false) {
      PageCache cache(M, B, disk, robust);
      OocTiledMatrix<double> m(cache, n, n);
      m.load(init);
      cache.reset_stats();
      if (prefetch) cache.enable_async_io();
      // Progress/ETA from the typed engine's own work counters: timed()
      // runs $GEP_BENCH_REPEATS passes (plus one warmup when > 1), each
      // a full n^3 FW cube. $GEP_PROGRESS_SEC turns on the live printer.
      const int reps = bench::bench_repeats();
      const double passes = reps > 1 ? reps + 1.0 : 1.0;
      obs::ProgressMeter meter;
      meter.begin(passes * obs::typed_cube_updates(static_cast<double>(n)),
                  passes * bench::flops_fw(n));
      obs::ProgressReporter reporter(
          &meter, obs::ProgressReporter::env_interval(), label);
      // I/O-bound accounting: page transfers against the Θ(n³/(B√M)) +
      // scan prediction. The ratio's absolute value calibrates the Θ
      // constant; the gates only check stability.
      const obs::IoBoundPrediction pred = obs::igep_io_prediction(
          static_cast<double>(n), static_cast<double>(M),
          static_cast<double>(B));
      // Live telemetry: while the leg runs, /progress serves this meter
      // and /io the leg-cumulative transfers against the passes-scaled
      // prediction ($GEP_STAT_PORT armed the server in the banner).
      obs::IoBoundPrediction pred_run = pred;
      pred_run.cube_transfers *= passes;
      pred_run.scan_transfers *= passes;
      const std::uint64_t io_base = cache.stats().io();
      obs::ScopedStatProgress stat_progress(meter, label);
      obs::ScopedStatIoModel stat_io(
          pred_run, [&cache, io_base] { return cache.stats().io() - io_base; });
      std::uint64_t io_pass = 0;  // page I/Os of the last timed pass
      double dt = 0;
      try {
        dt = report.timed(label, n, bench::flops_fw(n), [&] {
          const std::uint64_t io0 = cache.stats().io();
          if (dag) {
            // DAG runtime: the scheduler's ready frontier IS the
            // prefetch stream (lookahead tasks -> page hints).
            WorkStealingPool pool(threads);
            ooc_igep_floyd_warshall_dag(
                m, &pool,
                {.lookahead = dag_lookahead_from_env(),
                 .prefetch = prefetch});
          } else if (parallel) {
            WorkStealingPool pool(threads);
            WsParInvoker inv{&pool};
            ooc_igep_floyd_warshall(m, inv, {.prefetch = prefetch});
          } else {
            ooc_igep_floyd_warshall(m);
          }
          io_pass = cache.stats().io() - io0;
        });
      } catch (const obs::JobCancelled&) {
        // Clean shutdown: stop the async worker, flush write-behind so
        // the backing file is consistent, then dump the flight recorder
        // (with metrics — the process is healthy, just interrupted).
        std::fprintf(stderr,
                     "\n[fig7] cancelled by signal; flushing write-behind "
                     "and dumping flight recorder\n");
        if (prefetch) cache.disable_async_io();
        cache.flush();
        obs::flight::dump_default();
        std::exit(130);
      }
      if (prefetch) cache.disable_async_io();
      const PageCacheStats s = cache.stats();
      report.annotate("io_wait_seconds", s.io_wait_seconds);
      report.annotate("io_wait_async_seconds", s.io_wait_async_seconds);
      report.annotate("page_ios", static_cast<double>(s.io()));
      report.annotate("prefetch_hits", static_cast<double>(s.prefetch_hits));
      report.annotate("prefetch_hit_rate", s.prefetch_hit_rate());
      report.annotate("threads", parallel || dag ? threads : 1);
      if (dag) {
        report.annotate("dag_lookahead",
                        static_cast<double>(dag_lookahead_from_env()));
      }
      report.annotate("io_measured", static_cast<double>(io_pass));
      report.annotate("io_predicted", pred.total());
      report.annotate("io_ratio", obs::io_bound_ratio(io_pass, pred));
      report.annotate("progress_final_fraction", meter.sample().fraction);
      if (t_sync > 0) report.annotate("speedup_vs_sync", t_sync / dt);
      if (fault_rate > 0) {
        report.annotate("fault_rate", fault_rate);
        report.annotate("robust.retries", static_cast<double>(s.io_retries));
        report.annotate("robust.crc_failures",
                        static_cast<double>(s.crc_failures));
        report.annotate("robust.io_hard_failures",
                        static_cast<double>(s.io_hard_failures));
        report.annotate("robust.writeback_failures",
                        static_cast<double>(s.writeback_failures));
        report.annotate("robust.prefetch_errors",
                        static_cast<double>(s.prefetch_errors));
        report.annotate("robust.async_degraded",
                        static_cast<double>(s.async_degraded));
      }
      td.add_row({label, Table::num(dt, 3), Table::num(s.io_wait_seconds, 2),
                  Table::integer(static_cast<long long>(s.io())),
                  Table::integer(static_cast<long long>(s.prefetch_hits)),
                  Table::num(s.prefetch_hit_rate(), 3)});
      Matrix<double> out = m.to_matrix();
      if (ref.rows() == 0) {
        ref = std::move(out);
      } else {
        for (index_t i = 0; i < n; ++i)
          for (index_t j = 0; j < n; ++j)
            if (out(i, j) != ref(i, j)) {
              std::fprintf(stderr, "FAIL: %s differs from sequential at "
                           "(%lld,%lld)\n", label, static_cast<long long>(i),
                           static_cast<long long>(j));
              std::exit(1);
            }
      }
      return dt;
    };
    t_sync = leg("typed sync seq", false, false);
    leg("typed parallel", true, false);
    leg("typed parallel+prefetch", true, true);
    leg("typed dag+prefetch", true, true, /*dag=*/true);
    // --- checkpointed leg (--ckpt-every / --ckpt-interval) --------------
    // Same job as "typed sync seq" with crash-consistent snapshots cut by
    // the requested triggers; SIGTERM/SIGINT checkpoints before exiting
    // and SIGUSR2 checkpoints-and-continues. The snapshot chain lands in
    // fig7_ckpt_snapshots/ for gep_ckpt_inspect.
    if (ckpt_on) {
      const std::string ckdir = "fig7_ckpt_snapshots";
      ::mkdir(ckdir.c_str(), 0755);
      auto clear_dir = [&ckdir] {
        DIR* d = ::opendir(ckdir.c_str());
        if (d == nullptr) return;
        for (struct dirent* e = ::readdir(d); e != nullptr;
             e = ::readdir(d)) {
          const std::string nm = e->d_name;
          if (nm != "." && nm != "..") ::unlink((ckdir + "/" + nm).c_str());
        }
        ::closedir(d);
      };
      PageCache cache(M, B, disk, robust);
      OocTiledMatrix<double> m(cache, n, n);
      m.load(init);
      cache.reset_stats();
      std::unique_ptr<CheckpointCoordinator> ck;
      auto make_coordinator = [&] {
        CheckpointOptions co;
        co.dir = ckdir;
        co.job_id = 0xF1670001;
        co.every_n_leaves = ckpt_every;
        co.interval_sec = ckpt_interval;
        ck = std::make_unique<CheckpointCoordinator>(cache, co);
        ck->add_matrix(m.file_id(), static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(m.tile_side()),
                       sizeof(double), m.file_pages());
      };
      // A chain left behind by a SIGTERMed previous invocation resumes
      // here: pages + frontier replay before the timed pass, which then
      // only runs the remainder (and keeps appending to the chain). A
      // complete or invalid chain is discarded and the pass runs fresh —
      // probed via load_chain (validate-only), because resume() installs
      // pages and re-running FW over its own min-plus closure is not
      // bit-stable in floating point.
      bool resumed = false;
      make_coordinator();
      ck->bind(DagProblem::FloydWarshall, n, m.tile_side(), false);
      try {
        const auto chain = load_chain(ckdir, 0xF1670001ULL);
        if (!chain.empty() &&
            chain.back().header.done_count < chain.back().header.task_count) {
          resumed = ck->resume();
        }
      } catch (const CheckpointError& e) {
        std::fprintf(stderr, "[fig7] stale checkpoint chain rejected: %s\n",
                     e.what());
      }
      if (resumed) {
        std::fprintf(stderr,
                     "[fig7] resumed job %llx: %llu/%llu leaves done\n",
                     0xF1670001ULL,
                     static_cast<unsigned long long>(ck->done_leaves()),
                     static_cast<unsigned long long>(ck->task_count()));
      }
      const bool resumed_this_run = resumed;
      double dt = 0;
      try {
        dt = report.timed("typed sync seq+ckpt", n, bench::flops_fw(n), [&] {
          // Fresh coordinator + chain per pass (except a resumed first
          // pass): a stale tail from the previous pass would break the
          // chain's seq contiguity.
          if (!resumed) {
            clear_dir();
            make_coordinator();
          }
          resumed = false;
          SeqInvoker inv;
          OocTypedOptions o;
          o.ckpt = ck.get();
          ooc_igep_floyd_warshall(m, inv, o);
        });
      } catch (const obs::JobCancelled&) {
        // Checkpoint-then-exit: flush write-behind, cut a final snapshot
        // at the quiesced point, then leave with the interrupt status —
        // the chain in fig7_ckpt_snapshots/ resumes the job.
        std::fprintf(stderr,
                     "\n[fig7] cancelled by signal; checkpointing before "
                     "exit\n");
        cache.flush();
        if (ck != nullptr) ck->checkpoint_now();
        obs::flight::dump_default();
        std::exit(130);
      }
      const CheckpointStats cs = ck->stats();
      report.annotate("ckpt_resumed", resumed_this_run ? 1.0 : 0.0);
      report.annotate("ckpt_every_n_leaves", static_cast<double>(ckpt_every));
      report.annotate("ckpt_interval_sec", ckpt_interval);
      report.annotate("ckpt_count", static_cast<double>(cs.count));
      report.annotate("ckpt_skipped", static_cast<double>(cs.skipped));
      report.annotate("ckpt_failed", static_cast<double>(cs.failed));
      report.annotate("ckpt_bytes", static_cast<double>(cs.bytes));
      report.annotate("ckpt_pages", static_cast<double>(cs.pages));
      report.annotate("ckpt_wall_seconds", cs.wall_seconds);
      report.annotate("ckpt_overhead_fraction",
                      dt > 0 ? cs.wall_seconds / dt : 0.0);
      td.add_row({"typed sync seq+ckpt", Table::num(dt, 3),
                  Table::num(cache.stats().io_wait_seconds, 2),
                  Table::integer(static_cast<long long>(cache.stats().io())),
                  Table::integer(0), Table::num(0.0, 3)});
      Matrix<double> out = m.to_matrix();
      for (index_t i = 0; i < n; ++i)
        for (index_t j = 0; j < n; ++j)
          if (out(i, j) != ref(i, j)) {
            std::fprintf(stderr,
                         "FAIL: checkpointed leg differs from sequential "
                         "at (%lld,%lld)\n",
                         static_cast<long long>(i),
                         static_cast<long long>(j));
            std::exit(1);
          }
      std::printf("checkpoints: %llu cut, %llu skipped, %.1f KB, %.3fs "
                  "(%.1f%% of leg wall)\n",
                  static_cast<unsigned long long>(cs.count),
                  static_cast<unsigned long long>(cs.skipped),
                  cs.bytes / 1e3, cs.wall_seconds,
                  dt > 0 ? 100.0 * cs.wall_seconds / dt : 0.0);
    }
    // Second problem size for the I/O-bound accountant: same B, M kept
    // at n²/2, so measured/predicted should be size-independent (the CI
    // bench-smoke gate checks the two ratios agree within ±25%).
    {
      const index_t n2 = n / 2;
      const std::uint64_t n2b = static_cast<std::uint64_t>(n2) * n2 * 8;
      const std::uint64_t M2 = n2b / 2;
      Matrix<double> init2 = bench::random_dist_matrix(n2, 7);
      PageCache cache(M2, B, disk, robust);
      OocTiledMatrix<double> m(cache, n2, n2);
      m.load(init2);
      cache.reset_stats();
      const int reps = bench::bench_repeats();
      const double passes = reps > 1 ? reps + 1.0 : 1.0;
      obs::ProgressMeter meter;
      meter.begin(passes * obs::typed_cube_updates(static_cast<double>(n2)),
                  passes * bench::flops_fw(n2));
      const obs::IoBoundPrediction pred = obs::igep_io_prediction(
          static_cast<double>(n2), static_cast<double>(M2),
          static_cast<double>(B));
      obs::IoBoundPrediction pred_run = pred;
      pred_run.cube_transfers *= passes;
      pred_run.scan_transfers *= passes;
      const std::uint64_t io_base = cache.stats().io();
      obs::ScopedStatProgress stat_progress(meter, "typed sync seq (n/2)");
      obs::ScopedStatIoModel stat_io(
          pred_run, [&cache, io_base] { return cache.stats().io() - io_base; });
      std::uint64_t io_pass = 0;
      try {
        report.timed("typed sync seq", n2, bench::flops_fw(n2), [&] {
          const std::uint64_t io0 = cache.stats().io();
          ooc_igep_floyd_warshall(m);
          io_pass = cache.stats().io() - io0;
        });
      } catch (const obs::JobCancelled&) {
        cache.flush();
        obs::flight::dump_default();
        std::exit(130);
      }
      report.annotate("io_measured", static_cast<double>(io_pass));
      report.annotate("io_predicted", pred.total());
      report.annotate("io_ratio", obs::io_bound_ratio(io_pass, pred));
      report.annotate("progress_final_fraction", meter.sample().fraction);
    }
    std::printf("typed out-of-core FW (M = n^2/2, B = %llu KB, %d threads):\n",
                static_cast<unsigned long long>(B / 1024), threads);
    td.print(std::cout);
    td.write_csv("fig7_typed_engine.csv");
    report.write();
  }
  std::printf(
      "\npaper: GEP waits 100-500x longer than I-GEP/C-GEP; GEP flat in M,\n"
      "I-GEP/C-GEP improve with M; I/O wait grows ~linearly with M/B.\n");
  return 0;
}
