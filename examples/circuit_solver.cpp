// DC operating point of a resistor-ladder circuit via LU decomposition.
//
// Nodal analysis of an R-2R ladder driven by a current source yields a
// dense-ish SPD system G·v = i. We factor G with cache-oblivious LU
// (no pivoting — G is diagonally dominant, so this is numerically safe),
// then solve by forward/back substitution, and validate against the
// residual ||G·v - i||.
//
// Demonstrates: the LU public API as a building block of a real solver,
// plus triangular solves layered on the factor's in-place storage.
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/apps.hpp"
#include "apps/linear_solver.hpp"
#include "util/timer.hpp"

using namespace gep;

namespace {

// Builds the nodal conductance matrix of an N-stage R-2R ladder with a
// few cross-coupling resistors to densify the system.
Matrix<double> build_conductance(index_t n) {
  Matrix<double> g(n, n, 0.0);
  auto stamp = [&](index_t a, index_t b, double ohms) {
    double c = 1.0 / ohms;
    g(a, a) += c;
    if (b >= 0) {
      g(b, b) += c;
      g(a, b) -= c;
      g(b, a) -= c;
    }
  };
  for (index_t k = 0; k < n; ++k) {
    stamp(k, -1, 2000.0);                       // 2R shunt to ground
    if (k + 1 < n) stamp(k, k + 1, 1000.0);     // R series
    if (k + 7 < n) stamp(k, k + 7, 4700.0);     // cross-coupling
    if (k + 13 < n) stamp(k, k + 13, 6800.0);
  }
  return g;
}

}  // namespace

int main() {
  const index_t n = 300;  // 300 circuit nodes (not a power of two)
  Matrix<double> g = build_conductance(n);

  // 1 mA injected at node 0, 0.5 mA drawn from the middle node.
  std::vector<double> current(static_cast<std::size_t>(n), 0.0);
  current[0] = 1e-3;
  current[static_cast<std::size_t>(n / 2)] = -0.5e-3;

  WallTimer t;
  std::vector<double> v = apps::solve(g, current, apps::Engine::IGep, {32, 1});
  std::printf("solve() on %lld-node conductance matrix: %.2f ms\n",
              static_cast<long long>(n), t.millis());

  double worst = apps::residual_inf(g, v, current);
  std::printf("node 0 voltage: %.4f V\nmid node voltage: %.4f V\n", v[0],
              v[static_cast<std::size_t>(n / 2)]);
  std::printf("residual ||G*v - i||_inf = %.3e  (%s)\n", worst,
              worst < 1e-9 ? "PASS" : "FAIL");
  return worst < 1e-9 ? 0 : 1;
}
