// Out-of-core APSP: the exact same I-GEP engine, now on a disk-backed
// matrix that does not fit in (simulated) memory.
//
// The page cache is configured with M = one quarter of the matrix and
// B = 8 KB pages; the demo contrasts the page traffic of iterative GEP
// with I-GEP at identical (M, B), and verifies both against an in-core
// run — the paper's portability claim, executed.
#include <cstdio>

#include "extmem/ooc_matrix.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace gep;

namespace {

Matrix<double> make_graph(index_t n) {
  SplitMix64 rng(99);
  Matrix<double> w(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j)
      w(i, j) = rng.chance(0.2) ? rng.uniform(1.0, 20.0) : 1e30;
    w(i, i) = 0;
  }
  return w;
}

}  // namespace

int main() {
  const index_t n = 256;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * n * 8;
  const std::uint64_t M = bytes / 4;  // only a quarter fits "in memory"
  const std::uint64_t B = 8 * 1024;
  Matrix<double> w = make_graph(n);

  // In-core reference.
  Matrix<double> ref = w;
  run_igep(ref, MinPlusF{}, FullSet{n}, {32});

  std::printf("matrix: %.1f MB on disk, cache M = %.1f MB, B = %llu KB\n\n",
              bytes / 1e6, M / 1e6,
              static_cast<unsigned long long>(B / 1024));

  auto run_one = [&](const char* name, auto&& engine) {
    PageCache cache(M, B);
    OocMatrix<double> d(cache, n, n);
    d.load(w);
    cache.reset_stats();
    WallTimer t;
    engine(d);
    cache.flush();
    double wall = t.seconds();
    Matrix<double> out = d.to_matrix();
    // GEP and I-GEP relax paths in different association orders, so
    // finite distances may differ by ulps; compare with a tolerance.
    std::printf("%-8s  page I/Os: %8llu   simulated I/O wait: %8.2f s   "
                "wall: %.2f s   correct: %s\n",
                name, static_cast<unsigned long long>(cache.stats().io()),
                cache.stats().io_wait_seconds, wall,
                max_abs_diff(out, ref) < 1e-6 ? "yes" : "NO");
  };

  run_one("GEP", [&](OocMatrix<double>& d) {
    run_gep(d, MinPlusF{}, FullSet{n});
  });
  run_one("I-GEP", [&](OocMatrix<double>& d) {
    run_igep(d, MinPlusF{}, FullSet{n}, {32});
  });

  std::printf("\nsame algorithm object code, in-core and out-of-core —\n"
              "only the accessor changed. I-GEP's page traffic is the\n"
              "Θ(n³/(B√M)) vs Θ(n³/B) gap of the paper's Figure 7.\n");
  return 0;
}
