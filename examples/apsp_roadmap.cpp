// All-pairs shortest paths on a synthetic road network.
//
// Builds a w x h grid "road map" with randomized travel times and some
// closed roads, runs cache-oblivious Floyd-Warshall through the public
// API, and reconstructs an actual route via the successor matrix.
//
// Demonstrates: dense APSP on a non-power-of-two instance, path
// reconstruction on top of the distance-only GEP kernel, and engine
// cross-checking.
#include <cstdio>
#include <vector>

#include "apps/apps.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace gep;

namespace {

struct Grid {
  index_t w, h;
  index_t node(index_t x, index_t y) const { return y * w + x; }
  index_t size() const { return w * h; }
};

}  // namespace

int main() {
  const Grid grid{12, 9};  // 108 intersections (not a power of two)
  const index_t n = grid.size();
  SplitMix64 rng(2024);

  // Adjacent intersections are connected with randomized travel times;
  // ~8% of road segments are closed.
  Matrix<double> w(n, n, apps::kInfDist);
  for (index_t i = 0; i < n; ++i) w(i, i) = 0;
  auto connect = [&](index_t a, index_t b) {
    if (rng.chance(0.08)) return;  // road closed
    double t = rng.uniform(1.0, 5.0);
    w(a, b) = t;
    w(b, a) = t * rng.uniform(1.0, 1.3);  // slight asymmetry (one-way-ish)
  };
  for (index_t y = 0; y < grid.h; ++y) {
    for (index_t x = 0; x < grid.w; ++x) {
      if (x + 1 < grid.w) connect(grid.node(x, y), grid.node(x + 1, y));
      if (y + 1 < grid.h) connect(grid.node(x, y), grid.node(x, y + 1));
    }
  }

  // Distances via I-GEP. For path reconstruction, track successors with
  // a Floyd-Warshall sweep alongside (the iterative reference — the
  // distance matrices must agree, which we check).
  Matrix<double> d = w;
  WallTimer t;
  apps::floyd_warshall(d, apps::Engine::IGep, {32, 1});
  std::printf("I-GEP APSP on %lld nodes: %.2f ms\n",
              static_cast<long long>(n), t.millis());

  // successor[i][j] = next hop from i on a shortest i->j path.
  Matrix<double> d2 = w;
  std::vector<index_t> succ(static_cast<std::size_t>(n * n), -1);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      if (i != j && w(i, j) < apps::kInfDist / 2)
        succ[static_cast<std::size_t>(i * n + j)] = j;
  for (index_t k = 0; k < n; ++k)
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        if (d2(i, k) + d2(k, j) < d2(i, j)) {
          d2(i, j) = d2(i, k) + d2(k, j);
          succ[static_cast<std::size_t>(i * n + j)] =
              succ[static_cast<std::size_t>(i * n + k)];
        }
  std::printf("engines agree: %s\n",
              max_abs_diff(d, d2) < 1e-9 ? "yes" : "NO (bug!)");

  // Reconstruct a route corner-to-corner.
  index_t from = grid.node(0, 0), to = grid.node(grid.w - 1, grid.h - 1);
  if (d(from, to) >= apps::kInfDist / 2) {
    std::printf("no route (too many closed roads)\n");
    return 0;
  }
  std::printf("travel time %lld -> %lld: %.2f\nroute: ",
              static_cast<long long>(from), static_cast<long long>(to),
              d(from, to));
  index_t at = from;
  int hops = 0;
  while (at != to && hops < n) {
    std::printf("%lld ", static_cast<long long>(at));
    at = succ[static_cast<std::size_t>(at * n + to)];
    ++hops;
  }
  std::printf("%lld  (%d hops)\n", static_cast<long long>(to), hops);
  return 0;
}
