// gep_tool — command-line front end to the GEP library.
//
//   gep_tool apsp   [--n N | --in FILE] [--engine E] [--base B] [--threads T]
//   gep_tool lu     [--n N | --in FILE] [--engine E] ...
//   gep_tool mm     [--n N] [--engine E] ...
//   gep_tool tc     [--n N] [--engine E] ...
//   gep_tool solve  [--n N] [--engine E] ...
//   gep_tool bench  [--n N] [--engine E] ...     (times every engine)
//
// Engines: iter, igep, igepz, cgep, cgepc, blocked.
// Matrix files: first line "rows cols", then rows x cols numbers;
// results are written to --out FILE when given. Random inputs are
// deterministic per --seed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "apps/apps.hpp"
#include "apps/linear_solver.hpp"
#include "util/matrix_io.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace gep;

namespace {

struct Args {
  std::string cmd;
  index_t n = 512;
  std::string in, out;
  std::string engine = "igep";
  index_t base = 64;
  int threads = 1;
  std::uint64_t seed = 1;
};

std::optional<apps::Engine> parse_engine(const std::string& e) {
  if (e == "iter") return apps::Engine::Iterative;
  if (e == "igep") return apps::Engine::IGep;
  if (e == "igepz") return apps::Engine::IGepZ;
  if (e == "cgep") return apps::Engine::CGep;
  if (e == "cgepc") return apps::Engine::CGepCompact;
  if (e == "blocked") return apps::Engine::Blocked;
  return std::nullopt;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: gep_tool <apsp|lu|mm|tc|solve|bench> [options]\n"
      "  --n N         random instance size (default 512)\n"
      "  --in FILE     read the input matrix instead\n"
      "  --out FILE    write the result matrix\n"
      "  --engine E    iter|igep|igepz|cgep|cgepc|blocked (default igep)\n"
      "  --base B      base-case size (default 64)\n"
      "  --threads T   fork-join threads (default 1)\n"
      "  --seed S      RNG seed for random instances (default 1)\n");
}

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args a;
  a.cmd = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string k = argv[i], v = argv[i + 1];
    if (k == "--n") a.n = std::stoll(v);
    else if (k == "--in") a.in = v;
    else if (k == "--out") a.out = v;
    else if (k == "--engine") a.engine = v;
    else if (k == "--base") a.base = std::stoll(v);
    else if (k == "--threads") a.threads = std::stoi(v);
    else if (k == "--seed") a.seed = std::stoull(v);
    else return std::nullopt;
  }
  return a;
}

Matrix<double> random_graph(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> d(n, n, apps::kInfDist);
  for (index_t i = 0; i < n; ++i) {
    d(i, i) = 0;
    for (index_t j = 0; j < n; ++j)
      if (i != j && g.chance(0.3)) d(i, j) = g.uniform(1.0, 100.0);
  }
  return d;
}

Matrix<double> random_dd(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

int run_one(const Args& a, apps::Engine e, bool quiet) {
  apps::RunOptions opts{a.base, a.threads};
  Matrix<double> m(1, 1);
  if (!a.in.empty()) {
    auto r = read_matrix_file(a.in);
    if (!r) {
      std::fprintf(stderr, "gep_tool: cannot read %s\n", a.in.c_str());
      return 2;
    }
    m = std::move(*r);
  } else if (a.cmd == "apsp") {
    m = random_graph(a.n, a.seed);
  } else {
    m = random_dd(a.n, a.seed);
  }

  WallTimer t;
  double checksum = 0;
  if (a.cmd == "apsp") {
    apps::floyd_warshall(m, e, opts);
    checksum = m(0, m.cols() - 1);
  } else if (a.cmd == "lu") {
    apps::lu_decompose(m, e, opts);
    checksum = m(m.rows() - 1, m.cols() - 1);
  } else if (a.cmd == "mm") {
    Matrix<double> b = random_dd(m.rows(), a.seed + 1);
    Matrix<double> c(m.rows(), m.cols(), 0.0);
    apps::multiply_add(c, m, b, e, opts);
    checksum = c(0, 0);
    m = std::move(c);
  } else if (a.cmd == "tc") {
    SplitMix64 g(a.seed);
    Matrix<std::uint8_t> r(a.n, a.n, std::uint8_t{0});
    for (index_t i = 0; i < a.n; ++i) {
      r(i, i) = 1;
      for (index_t j = 0; j < a.n; ++j)
        if (i != j && g.chance(0.05)) r(i, j) = 1;
    }
    apps::transitive_closure(r, e, opts);
    long reach = 0;
    for (index_t i = 0; i < a.n; ++i)
      for (index_t j = 0; j < a.n; ++j) reach += (r(i, j) != 0);
    std::printf("%s/%s: n=%lld  reachable pairs=%ld  %.3f s\n", a.cmd.c_str(),
                apps::engine_name(e).c_str(), static_cast<long long>(a.n),
                reach, t.seconds());
    return 0;
  } else if (a.cmd == "solve") {
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    auto x = apps::solve(m, b, e, opts);
    std::printf("%s/%s: n=%lld  residual=%.2e  %.3f s\n", a.cmd.c_str(),
                apps::engine_name(e).c_str(),
                static_cast<long long>(m.rows()),
                apps::residual_inf(m, x, b), t.seconds());
    return 0;
  } else {
    return 2;
  }
  if (!quiet) {
    std::printf("%s/%s: n=%lld  checksum=%.6g  %.3f s\n", a.cmd.c_str(),
                apps::engine_name(e).c_str(), static_cast<long long>(m.rows()),
                checksum, t.seconds());
  }
  if (!a.out.empty()) write_matrix_file(a.out, m);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  Args a = *parsed;
  if (a.cmd == "bench") {
    // Time every engine on the same instance.
    for (const char* e : {"iter", "igep", "igepz", "cgep", "cgepc",
                          "blocked"}) {
      Args one = a;
      one.cmd = "lu";
      auto eng = parse_engine(e);
      if (run_one(one, *eng, false) != 0) return 1;
    }
    return 0;
  }
  auto eng = parse_engine(a.engine);
  if (!eng) {
    usage();
    return 2;
  }
  return run_one(a, *eng, false);
}
