// Global sequence alignment with a concave gap penalty — the GAP
// problem, solved with the cache-oblivious divide-and-conquer adaptation
// of the GEP framework (paper Section 1 / [6]).
//
// Aligns two synthetic DNA sequences under a sqrt-length gap cost (long
// gaps are amortized cheaper — the regime where the O(n³) arbitrary-gap
// DP is actually needed, since affine-gap shortcuts don't apply), then
// cross-checks the cache-oblivious solver against the iterative DP.
#include <cmath>
#include <cstdio>
#include <string>

#include "apps/gap_alignment.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace gep;

namespace {

std::string random_dna(index_t len, std::uint64_t seed) {
  static const char* bases = "ACGT";
  SplitMix64 g(seed);
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (index_t i = 0; i < len; ++i) s.push_back(bases[g.below(4)]);
  return s;
}

// Mutates a sequence: point substitutions plus one long deletion, so the
// optimal alignment needs a long gap.
std::string mutate(const std::string& src, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::string out;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (i == src.size() / 3) {
      i += src.size() / 8;  // long deletion
      continue;
    }
    char c = src[i];
    if (g.chance(0.05)) c = "ACGT"[g.below(4)];
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main() {
  const std::string x = random_dna(300, 11);
  const std::string y = mutate(x, 12);
  const index_t rows = static_cast<index_t>(x.size()) + 1;
  const index_t cols = static_cast<index_t>(y.size()) + 1;
  std::printf("aligning %zu vs %zu bases, concave gap cost 2 + sqrt(len)\n",
              x.size(), y.size());

  auto subst = [&](index_t i, index_t j) {
    return x[static_cast<std::size_t>(i - 1)] ==
                   y[static_cast<std::size_t>(j - 1)]
               ? 0.0
               : 1.5;
  };
  auto gap = [](index_t q, index_t j) {
    return 2.0 + std::sqrt(static_cast<double>(j - q));
  };

  Matrix<double> g_rec(rows, cols);
  WallTimer t1;
  apps::gap_alignment_recursive(g_rec, subst, gap, {32});
  double t_rec = t1.seconds();

  Matrix<double> g_it(rows, cols);
  WallTimer t2;
  apps::gap_alignment_iterative(g_it, subst, gap);
  double t_it = t2.seconds();

  std::printf("optimal alignment cost: %.3f\n", g_rec(rows - 1, cols - 1));
  std::printf("cache-oblivious: %.3f s, iterative DP: %.3f s (%.2fx)\n",
              t_rec, t_it, t_it / t_rec);
  std::printf("solvers agree exactly: %s\n",
              max_abs_diff(g_rec, g_it) == 0.0 ? "yes" : "NO");
  return max_abs_diff(g_rec, g_it) == 0.0 ? 0 : 1;
}
