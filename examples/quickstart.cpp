// Quickstart: the GEP framework in five minutes.
//
// 1. Define the update function f and the update set Σ_G.
// 2. Run the computation with any engine: iterative G, cache-oblivious
//    I-GEP, or fully general C-GEP.
// 3. Or skip straight to the problem-level APIs in apps/.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "apps/apps.hpp"
#include "gep/cgep.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "util/prng.hpp"

using namespace gep;

int main() {
  std::printf("== GEP quickstart ==\n\n");

  // --- 1. A GEP computation from scratch: Floyd-Warshall ---------------
  // f(x, u, v, w) = min(x, u + v), Σ_G = every <i,j,k>.
  const index_t n = 8;
  Matrix<double> d(n, n, 100.0);
  for (index_t i = 0; i < n; ++i) d(i, i) = 0;
  // a ring with shortcuts
  for (index_t i = 0; i < n; ++i) d(i, (i + 1) % n) = 1;
  d(0, n / 2) = 2;

  auto min_plus = [](double x, double u, double v, double /*w*/) {
    return std::min(x, u + v);
  };
  run_igep(d, min_plus, FullSet{n});  // cache-oblivious, in place
  std::printf("shortest path 1 -> 6 on the ring-with-shortcut: %g\n",
              d(1, 6));

  // --- 2. An arbitrary (f, Σ) needs C-GEP -------------------------------
  // The paper's counterexample: f = sum of all four operands. I-GEP gets
  // this wrong; C-GEP matches the iterative semantics exactly.
  Matrix<double> c0(2, 2, 0.0);
  c0(1, 1) = 1.0;
  Matrix<double> g = c0, f_igep = c0, h = c0;
  run_gep(g, SumF{}, FullSet{2});          // ground truth: c(1,0) = 2
  run_igep(f_igep, SumF{}, FullSet{2});    // I-GEP: c(1,0) = 8 (!)
  run_cgep(h, SumF{}, FullSet{2});         // C-GEP: c(1,0) = 2
  std::printf("sum-f counterexample: G=%g, I-GEP=%g, C-GEP=%g\n", g(1, 0),
              f_igep(1, 0), h(1, 0));

  // --- 3. Problem-level APIs --------------------------------------------
  Matrix<double> a(100, 100);  // arbitrary n: padding handled internally
  SplitMix64 rng(7);
  for (index_t i = 0; i < 100; ++i) {
    for (index_t j = 0; j < 100; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += 120.0;
  }
  Matrix<double> lu = a;
  apps::lu_decompose(lu, apps::Engine::IGep);
  // Verify one entry of L*U against A.
  double recon = 0;
  for (index_t k = 0; k <= 3; ++k)
    recon += ((k == 3) ? 1.0 : lu(3, k)) * lu(k, 3);
  std::printf("LU reconstruction check: A(3,3)=%.6f, (L*U)(3,3)=%.6f\n",
              a(3, 3), recon);

  std::printf("\nquickstart done.\n");
  return 0;
}
