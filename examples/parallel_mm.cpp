// Multithreaded I-GEP matrix multiplication (paper Section 3 / Fig. 6).
//
// Multiplies two n x n matrices with the fork-join D-recursion at
// several thread counts, validating every run against the sequential
// result, and prints the schedule-simulated speedup the same DAG would
// achieve on an 8-processor machine like the paper's Opteron 850.
#include <cstdio>
#include <thread>

#include "apps/apps.hpp"
#include "parallel/dag_sim.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace gep;

int main() {
  const index_t n = 512;
  SplitMix64 rng(5);
  Matrix<double> a(n, n), b(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }

  Matrix<double> ref(n, n, 0.0);
  WallTimer t1;
  apps::multiply_add(ref, a, b, apps::Engine::IGep, {64, 1});
  const double seq = t1.seconds();
  std::printf("sequential I-GEP MM, n=%lld: %.3f s (%.2f GFLOP/s)\n",
              static_cast<long long>(n), seq,
              2.0 * n * n * n / seq / 1e9);
  std::printf("host cores: %u\n\n", std::thread::hardware_concurrency());

  for (int threads : {2, 4, 8}) {
    Matrix<double> c(n, n, 0.0);
    WallTimer t;
    apps::multiply_add(c, a, b, apps::Engine::IGep, {64, threads});
    double wall = t.seconds();
    std::printf("threads=%d: %.3f s, speedup %.2fx, matches sequential: %s\n",
                threads, wall, seq / wall,
                max_abs_diff(ref, c) == 0.0 ? "yes" : "NO");
  }

  // What the same DAG would do on the paper's 8-processor machine.
  auto dag = build_igep_dag(DagProblem::MatMul, n, 64);
  const double work = dag_work(dag);
  std::printf("\nschedule-simulated speedup of this DAG (Fig. 12 model):\n");
  for (int p : {2, 4, 8}) {
    std::printf("  p=%d: %.2fx\n", p, work / dag_makespan(dag, p));
  }
  std::printf("paper's measured MM speedup at p=8 (n=5000): 6.0x\n");
  return 0;
}
