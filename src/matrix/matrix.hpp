// Dense matrix storage and views.
//
// Matrix<T> owns an aligned row-major buffer; MatrixView<T> is a
// non-owning strided window used by the recursive GEP engines for
// quadrant decomposition (no copies, just pointer arithmetic).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>

#include "util/aligned.hpp"

namespace gep {

using index_t = std::int64_t;

template <class T>
class MatrixView;

template <class T>
class Matrix {
 public:
  Matrix() = default;

  // Uninitialized rows x cols matrix.
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(make_aligned<T>(static_cast<std::size_t>(rows * cols))) {}

  Matrix(index_t rows, index_t cols, T fill) : Matrix(rows, cols) {
    for (index_t i = 0; i < rows * cols; ++i) data_[i] = fill;
  }

  Matrix(const Matrix& other) : Matrix(other.rows_, other.cols_) {
    for (index_t i = 0; i < rows_ * cols_; ++i) data_[i] = other.data_[i];
  }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      Matrix tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }

  T& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * cols_ + j];
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }

  void fill(T v) {
    for (index_t i = 0; i < rows_ * cols_; ++i) data_[i] = v;
  }

  MatrixView<T> view();
  MatrixView<const T> view() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedPtr<T> data_;
};

// Non-owning strided window into a row-major buffer.
template <class T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {}

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t stride() const { return stride_; }
  T* data() const { return data_; }

  T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * stride_ + j];
  }

  // Sub-window starting at (r0, c0) with the given extent.
  MatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_);
    return MatrixView(data_ + r0 * stride_ + c0, nr, nc, stride_);
  }

  // Quadrants of a square even-sized view (the I-GEP decomposition).
  MatrixView q11() const { return block(0, 0, rows_ / 2, cols_ / 2); }
  MatrixView q12() const { return block(0, cols_ / 2, rows_ / 2, cols_ / 2); }
  MatrixView q21() const { return block(rows_ / 2, 0, rows_ / 2, cols_ / 2); }
  MatrixView q22() const {
    return block(rows_ / 2, cols_ / 2, rows_ / 2, cols_ / 2);
  }

  operator MatrixView<const T>() const {
    return MatrixView<const T>(data_, rows_, cols_, stride_);
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t stride_ = 0;
};

template <class T>
MatrixView<T> Matrix<T>::view() {
  return MatrixView<T>(data_.get(), rows_, cols_, cols_);
}

template <class T>
MatrixView<const T> Matrix<T>::view() const {
  return MatrixView<const T>(data_.get(), rows_, cols_, cols_);
}

// True when every element differs by at most `tol` (exact for tol = 0).
template <class T>
bool approx_equal(const Matrix<T>& a, const Matrix<T>& b, T tol = T{}) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      T d = a(i, j) - b(i, j);
      if (d < T{}) d = -d;
      if (d > tol) return false;
    }
  }
  return true;
}

// Largest absolute element-wise difference.
template <class T>
T max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  T worst{};
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      T d = a(i, j) - b(i, j);
      if (d < T{}) d = -d;
      if (d > worst) worst = d;
    }
  }
  return worst;
}

inline index_t next_pow2(index_t n) {
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

inline bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

// Embeds `m` into a pow2-sized matrix filled with `fill` outside.
template <class T>
Matrix<T> pad_to_pow2(const Matrix<T>& m, T fill) {
  index_t n = next_pow2(std::max(m.rows(), m.cols()));
  Matrix<T> out(n, n, fill);
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j) out(i, j) = m(i, j);
  return out;
}

// Extracts the top-left rows x cols corner (inverse of pad_to_pow2).
template <class T>
Matrix<T> unpad(const Matrix<T>& m, index_t rows, index_t cols) {
  Matrix<T> out(rows, cols);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) out(i, j) = m(i, j);
  return out;
}

}  // namespace gep
