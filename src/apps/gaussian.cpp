#include "apps/apps.hpp"

#include <stdexcept>

#include "apps/runtime_select.hpp"
#include "blas/blas.hpp"
#include "gep/cgep.hpp"
#include "gep/functors.hpp"
#include "gep/typed.hpp"
#include "parallel/thread_pool.hpp"

namespace gep::apps {
namespace {

// Optimized iterative GEP baselines: division hoisted out of the inner
// loop (the paper's o(n³)-divisions optimization), unit-stride sweeps.
void ge_iterative(double* c, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const double wkk = c[k * n + k];
    const double* ck = c + k * n;
    for (index_t i = k + 1; i < n; ++i) {
      const double t = c[i * n + k] / wkk;
      double* ci = c + i * n;
      for (index_t j = k + 1; j < n; ++j) ci[j] -= t * ck[j];
    }
  }
}

void lu_iterative(double* c, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const double wkk = c[k * n + k];
    const double* ck = c + k * n;
    for (index_t i = k + 1; i < n; ++i) {
      c[i * n + k] /= wkk;
      const double lik = c[i * n + k];
      double* ci = c + i * n;
      for (index_t j = k + 1; j < n; ++j) ci[j] -= lik * ck[j];
    }
  }
}

// Identity padding keeps elimination on the padded block inert: padded
// pivots are 1 and padded off-diagonal entries 0, so no padded update
// changes an original entry.
template <class Fn>
void with_identity_padding(Matrix<double>& a, Fn&& fn) {
  const index_t n = a.rows();
  if (is_pow2(n)) {
    fn(a);
    return;
  }
  Matrix<double> p = pad_to_pow2(a, 0.0);
  for (index_t i = n; i < p.rows(); ++i) p(i, i) = 1.0;
  fn(p);
  a = unpad(p, n, n);
}

template <class TypedRun>
void run_typed(Matrix<double>& m, const RunOptions& opts, TypedRun&& run) {
  RowMajorStore<double> st{m.data(), m.rows(),
                           std::min(opts.base_size, m.rows())};
  if (opts.threads > 1) {
    ThreadPool pool(opts.threads);
    ParInvoker inv{&pool};
    run(inv, st);
  } else {
    SeqInvoker inv;
    run(inv, st);
  }
}

}  // namespace

void gaussian_eliminate(Matrix<double>& a, Engine engine, RunOptions opts) {
  if (a.rows() != a.cols()) throw std::invalid_argument("ge: square only");
  simd::ScopedGemmOptions gemm_scope(opts.gemm);
  switch (engine) {
    case Engine::Iterative:
      ge_iterative(a.data(), a.rows());
      return;
    case Engine::Blocked: {
      // The blocked baseline factors via LU; reproduce GE's output
      // convention is unnecessary for benching, but tests compare only
      // the upper triangle, which LU and GE share.
      blas::lu_nopivot(a.rows(), a.data(), a.cols());
      return;
    }
    case Engine::IGep:
      with_identity_padding(a, [&](Matrix<double>& m) {
        if (detail::use_dag(opts)) {
          RowMajorStore<double> st{m.data(), m.rows(),
                                   std::min(opts.base_size, m.rows())};
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_gaussian_dag(pool, st, m.rows(), {opts.base_size});
          });
          return;
        }
        run_typed(m, opts, [&](auto& inv, auto& st) {
          igep_gaussian(inv, st, m.rows(), {opts.base_size});
        });
      });
      return;
    case Engine::IGepZ:
      with_identity_padding(a, [&](Matrix<double>& m) {
        const index_t bs = std::min(opts.base_size, m.rows());
        ZBlocked<double> z(m.rows(), bs);
        z.load(m);
        ZStore<double> st{&z};
        if (detail::use_dag(opts)) {
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_gaussian_dag(pool, st, m.rows(), {bs});
          });
        } else if (opts.threads > 1) {
          ThreadPool pool(opts.threads);
          ParInvoker inv{&pool};
          igep_gaussian(inv, st, m.rows(), {bs});
        } else {
          SeqInvoker inv;
          igep_gaussian(inv, st, m.rows(), {bs});
        }
        z.store(m);
      });
      return;
    case Engine::CGep:
      with_identity_padding(a, [&](Matrix<double>& m) {
        run_cgep(m, GaussF{}, GaussianSet{m.rows()}, {opts.base_size});
      });
      return;
    case Engine::CGepCompact:
      with_identity_padding(a, [&](Matrix<double>& m) {
        run_cgep_compact(m, GaussF{}, GaussianSet{m.rows()},
                         {opts.base_size});
      });
      return;
  }
  throw std::invalid_argument("ge: unknown engine");
}

void lu_decompose(Matrix<double>& a, Engine engine, RunOptions opts) {
  if (a.rows() != a.cols()) throw std::invalid_argument("lu: square only");
  simd::ScopedGemmOptions gemm_scope(opts.gemm);
  switch (engine) {
    case Engine::Iterative:
      lu_iterative(a.data(), a.rows());
      return;
    case Engine::Blocked:
      blas::lu_nopivot(a.rows(), a.data(), a.cols());
      return;
    case Engine::IGep:
      with_identity_padding(a, [&](Matrix<double>& m) {
        if (detail::use_dag(opts)) {
          RowMajorStore<double> st{m.data(), m.rows(),
                                   std::min(opts.base_size, m.rows())};
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_lu_dag(pool, st, m.rows(), {opts.base_size});
          });
          return;
        }
        run_typed(m, opts, [&](auto& inv, auto& st) {
          igep_lu(inv, st, m.rows(), {opts.base_size});
        });
      });
      return;
    case Engine::IGepZ:
      with_identity_padding(a, [&](Matrix<double>& m) {
        const index_t bs = std::min(opts.base_size, m.rows());
        ZBlocked<double> z(m.rows(), bs);
        z.load(m);
        ZStore<double> st{&z};
        if (detail::use_dag(opts)) {
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_lu_dag(pool, st, m.rows(), {bs});
          });
        } else {
          SeqInvoker inv;
          igep_lu(inv, st, m.rows(), {bs});
        }
        z.store(m);
      });
      return;
    case Engine::CGep:
      with_identity_padding(a, [&](Matrix<double>& m) {
        run_cgep(m, LUIndexedF{}, LUSet{m.rows()}, {opts.base_size});
      });
      return;
    case Engine::CGepCompact:
      with_identity_padding(a, [&](Matrix<double>& m) {
        run_cgep_compact(m, LUIndexedF{}, LUSet{m.rows()}, {opts.base_size});
      });
      return;
  }
  throw std::invalid_argument("lu: unknown engine");
}

}  // namespace gep::apps
