#include "apps/apps.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "apps/runtime_select.hpp"
#include "blas/blas.hpp"
#include "gep/numeric_guard.hpp"
#include "gep/typed.hpp"
#include "parallel/thread_pool.hpp"
#include "util/prng.hpp"

namespace gep::apps {
namespace {

// The GEP-style iterative baseline: k-outer triple loop with hoisting.
void mm_iterative(double* c, const double* a, const double* b, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const double* bk = b + k * n;
    for (index_t i = 0; i < n; ++i) {
      const double aik = a[i * n + k];
      double* ci = c + i * n;
      for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

}  // namespace

void multiply_add(Matrix<double>& c, const Matrix<double>& a,
                  const Matrix<double>& b, Engine engine, RunOptions opts) {
  const index_t n = c.rows();
  if (a.rows() != n || a.cols() != n || b.rows() != n || b.cols() != n ||
      c.cols() != n) {
    throw std::invalid_argument("multiply_add: all matrices must be n x n");
  }
  simd::ScopedGemmOptions gemm_scope(opts.gemm);
  switch (engine) {
    case Engine::Iterative:
      mm_iterative(c.data(), a.data(), b.data(), n);
      return;
    case Engine::Blocked:
      blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
      return;
    case Engine::IGep: {
      if (!is_pow2(n)) {  // zero padding is neutral for +=a*b
        Matrix<double> cp = pad_to_pow2(c, 0.0);
        Matrix<double> ap = pad_to_pow2(a, 0.0);
        Matrix<double> bp = pad_to_pow2(b, 0.0);
        multiply_add(cp, ap, bp, engine, opts);
        c = unpad(cp, n, n);
        return;
      }
      const index_t bs = std::min(opts.base_size, n);
      RowMajorStore<double> cst{c.data(), n, bs};
      RowMajorStore<const double> ast{a.data(), n, bs};
      RowMajorStore<const double> bst{b.data(), n, bs};
      if (detail::use_dag(opts)) {
        detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
          igep_matmul_dag(pool, cst, ast, bst, n, {bs});
        });
      } else if (opts.threads > 1) {
        ThreadPool pool(opts.threads);
        ParInvoker inv{&pool};
        igep_matmul(inv, cst, ast, bst, n, {bs});
      } else {
        SeqInvoker inv;
        igep_matmul(inv, cst, ast, bst, n, {bs});
      }
      return;
    }
    case Engine::IGepZ: {
      if (!is_pow2(n)) {
        Matrix<double> cp = pad_to_pow2(c, 0.0);
        Matrix<double> ap = pad_to_pow2(a, 0.0);
        Matrix<double> bp = pad_to_pow2(b, 0.0);
        multiply_add(cp, ap, bp, engine, opts);
        c = unpad(cp, n, n);
        return;
      }
      const index_t bs = std::min(opts.base_size, n);
      ZBlocked<double> cz(n, bs), az(n, bs), bz(n, bs);
      cz.load(c);
      az.load(a);
      bz.load(b);
      ZStore<double> cst{&cz}, ast{&az}, bst{&bz};
      if (detail::use_dag(opts)) {
        detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
          igep_matmul_dag(pool, cst, ast, bst, n, {bs});
        });
      } else if (opts.threads > 1) {
        ThreadPool pool(opts.threads);
        ParInvoker inv{&pool};
        igep_matmul(inv, cst, ast, bst, n, {bs});
      } else {
        SeqInvoker inv;
        igep_matmul(inv, cst, ast, bst, n, {bs});
      }
      cz.store(c);
      return;
    }
    case Engine::CGep:
    case Engine::CGepCompact:
      throw std::invalid_argument(
          "multiply_add: C-GEP applies to the in-place GEP form; use IGep");
  }
  throw std::invalid_argument("multiply_add: unknown engine");
}

namespace {

// Core of both freivalds_check forms: verifies (c_after - c_before) r ==
// a (b r) for random +-1 probes r. c_before == nullptr means zero.
bool freivalds_impl(const Matrix<double>& c_after,
                    const Matrix<double>* c_before, const Matrix<double>& a,
                    const Matrix<double>& b, int iters, std::uint64_t seed) {
  const index_t n = a.rows();
  if (a.cols() != n || b.rows() != n || b.cols() != n ||
      c_after.rows() != n || c_after.cols() != n ||
      (c_before != nullptr &&
       (c_before->rows() != n || c_before->cols() != n))) {
    throw std::invalid_argument("freivalds_check: all matrices must be n x n");
  }
  detail_guard::numeric_obs().residual_checks.inc();
  if (n == 0) return true;
  // Rounding tolerance: each entry of a(b r) accumulates ~n^2 products,
  // so the legitimate error scale is n^2 * eps * |a|_max * |b|_max plus
  // the c terms' own magnitude. A genuinely wrong product differs by
  // O(element magnitude), orders above this.
  const double eps = std::numeric_limits<double>::epsilon();
  const double scale = guard_max_abs(a) * guard_max_abs(b) +
                       guard_max_abs(c_after) +
                       (c_before != nullptr ? guard_max_abs(*c_before) : 0.0);
  const double tol = 64.0 * static_cast<double>(n) * static_cast<double>(n) *
                     eps * (scale > 1.0 ? scale : 1.0);
  SplitMix64 rng(seed);
  std::vector<double> r(static_cast<std::size_t>(n));
  std::vector<double> br(static_cast<std::size_t>(n));
  for (int it = 0; it < iters; ++it) {
    for (double& x : r) x = rng.chance(0.5) ? 1.0 : -1.0;
    for (index_t i = 0; i < n; ++i) {
      double acc = 0;
      for (index_t j = 0; j < n; ++j) {
        acc += b(i, j) * r[static_cast<std::size_t>(j)];
      }
      br[static_cast<std::size_t>(i)] = acc;
    }
    for (index_t i = 0; i < n; ++i) {
      double lhs = 0;  // (c_after - c_before) r, row i
      double rhs = 0;  // a (b r), row i
      for (index_t j = 0; j < n; ++j) {
        const double rj = r[static_cast<std::size_t>(j)];
        lhs += c_after(i, j) * rj;
        if (c_before != nullptr) lhs -= (*c_before)(i, j) * rj;
        rhs += a(i, j) * br[static_cast<std::size_t>(j)];
      }
      if (!(std::abs(lhs - rhs) <= tol)) {  // NaN fails the check
        detail_guard::numeric_obs().residual_failures.inc();
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool freivalds_check(const Matrix<double>& c, const Matrix<double>& a,
                     const Matrix<double>& b, int iters, std::uint64_t seed) {
  return freivalds_impl(c, nullptr, a, b, iters, seed);
}

bool freivalds_check(const Matrix<double>& c_after,
                     const Matrix<double>& c_before, const Matrix<double>& a,
                     const Matrix<double>& b, int iters, std::uint64_t seed) {
  return freivalds_impl(c_after, &c_before, a, b, iters, seed);
}

}  // namespace gep::apps
