#include "apps/apps.hpp"

#include <stdexcept>

#include "blas/blas.hpp"
#include "gep/typed.hpp"
#include "parallel/thread_pool.hpp"

namespace gep::apps {
namespace {

// The GEP-style iterative baseline: k-outer triple loop with hoisting.
void mm_iterative(double* c, const double* a, const double* b, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const double* bk = b + k * n;
    for (index_t i = 0; i < n; ++i) {
      const double aik = a[i * n + k];
      double* ci = c + i * n;
      for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

}  // namespace

void multiply_add(Matrix<double>& c, const Matrix<double>& a,
                  const Matrix<double>& b, Engine engine, RunOptions opts) {
  const index_t n = c.rows();
  if (a.rows() != n || a.cols() != n || b.rows() != n || b.cols() != n ||
      c.cols() != n) {
    throw std::invalid_argument("multiply_add: all matrices must be n x n");
  }
  switch (engine) {
    case Engine::Iterative:
      mm_iterative(c.data(), a.data(), b.data(), n);
      return;
    case Engine::Blocked:
      blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
      return;
    case Engine::IGep: {
      if (!is_pow2(n)) {  // zero padding is neutral for +=a*b
        Matrix<double> cp = pad_to_pow2(c, 0.0);
        Matrix<double> ap = pad_to_pow2(a, 0.0);
        Matrix<double> bp = pad_to_pow2(b, 0.0);
        multiply_add(cp, ap, bp, engine, opts);
        c = unpad(cp, n, n);
        return;
      }
      const index_t bs = std::min(opts.base_size, n);
      RowMajorStore<double> cst{c.data(), n, bs};
      RowMajorStore<const double> ast{a.data(), n, bs};
      RowMajorStore<const double> bst{b.data(), n, bs};
      if (opts.threads > 1) {
        ThreadPool pool(opts.threads);
        ParInvoker inv{&pool};
        igep_matmul(inv, cst, ast, bst, n, {bs});
      } else {
        SeqInvoker inv;
        igep_matmul(inv, cst, ast, bst, n, {bs});
      }
      return;
    }
    case Engine::IGepZ: {
      if (!is_pow2(n)) {
        Matrix<double> cp = pad_to_pow2(c, 0.0);
        Matrix<double> ap = pad_to_pow2(a, 0.0);
        Matrix<double> bp = pad_to_pow2(b, 0.0);
        multiply_add(cp, ap, bp, engine, opts);
        c = unpad(cp, n, n);
        return;
      }
      const index_t bs = std::min(opts.base_size, n);
      ZBlocked<double> cz(n, bs), az(n, bs), bz(n, bs);
      cz.load(c);
      az.load(a);
      bz.load(b);
      ZStore<double> cst{&cz}, ast{&az}, bst{&bz};
      if (opts.threads > 1) {
        ThreadPool pool(opts.threads);
        ParInvoker inv{&pool};
        igep_matmul(inv, cst, ast, bst, n, {bs});
      } else {
        SeqInvoker inv;
        igep_matmul(inv, cst, ast, bst, n, {bs});
      }
      cz.store(c);
      return;
    }
    case Engine::CGep:
    case Engine::CGepCompact:
      throw std::invalid_argument(
          "multiply_add: C-GEP applies to the in-place GEP form; use IGep");
  }
  throw std::invalid_argument("multiply_add: unknown engine");
}

}  // namespace gep::apps
