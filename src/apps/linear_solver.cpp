#include "apps/linear_solver.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/progress.hpp"
#include "obs/stat_server.hpp"

namespace gep::apps {

namespace {

// The solver entry points are the ROADMAP's long-running service front
// door, so they arm the embedded stat server themselves ($GEP_STAT_PORT;
// a no-op when unset or already running) and publish an LU progress
// meter for /progress. The closed form tracks the typed engine's work
// counters; other engines simply report fraction 0.
struct SolverTelemetry {
  obs::ProgressMeter meter;
  obs::ScopedStatProgress publication;

  SolverTelemetry(index_t n, const RunOptions& opts, const char* label)
      : meter(begun(n, opts)), publication(meter, label) {}

 private:
  // begin() must complete before the meter is published (the server
  // samples concurrently under its own lock).
  static obs::ProgressMeter begun(index_t n, const RunOptions& opts) {
    obs::StatServer::start_from_env();
    obs::ProgressMeter m;
    m.begin(obs::typed_lu_updates(static_cast<double>(n),
                                  static_cast<double>(opts.base_size)),
            2.0 / 3.0 * static_cast<double>(n) * static_cast<double>(n) *
                static_cast<double>(n));
    return m;
  }
};

}  // namespace

void forward_substitute(const Matrix<double>& lu, std::vector<double>& x) {
  const index_t n = lu.rows();
  for (index_t i = 0; i < n; ++i) {
    double acc = x[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < i; ++k) {
      acc -= lu(i, k) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = acc;  // L has unit diagonal
  }
}

void backward_substitute(const Matrix<double>& lu, std::vector<double>& x) {
  const index_t n = lu.rows();
  for (index_t i = n - 1; i >= 0; --i) {
    double acc = x[static_cast<std::size_t>(i)];
    for (index_t k = i + 1; k < n; ++k) {
      acc -= lu(i, k) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = acc / lu(i, i);
  }
}

std::vector<double> solve(Matrix<double> a, const std::vector<double>& b,
                          Engine engine, RunOptions opts) {
  const index_t n = a.rows();
  if (a.cols() != n || b.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("solve: dimension mismatch");
  }
  SolverTelemetry telemetry(n, opts, "solve");
  lu_decompose(a, engine, opts);
  std::vector<double> x = b;
  forward_substitute(a, x);
  backward_substitute(a, x);
  return x;
}

Matrix<double> solve(Matrix<double> a, const Matrix<double>& b, Engine engine,
                     RunOptions opts) {
  const index_t n = a.rows();
  if (a.cols() != n || b.rows() != n) {
    throw std::invalid_argument("solve: dimension mismatch");
  }
  SolverTelemetry telemetry(n, opts, "solve");
  lu_decompose(a, engine, opts);
  Matrix<double> x = b;
  // Column-wise triangular solves against the shared factor.
  std::vector<double> col(static_cast<std::size_t>(n));
  for (index_t c = 0; c < b.cols(); ++c) {
    for (index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = x(i, c);
    forward_substitute(a, col);
    backward_substitute(a, col);
    for (index_t i = 0; i < n; ++i) x(i, c) = col[static_cast<std::size_t>(i)];
  }
  return x;
}

double determinant(Matrix<double> a, Engine engine, RunOptions opts) {
  if (a.cols() != a.rows()) throw std::invalid_argument("det: square only");
  lu_decompose(a, engine, opts);
  double det = 1.0;
  for (index_t i = 0; i < a.rows(); ++i) det *= a(i, i);
  return det;
}

Matrix<double> invert(Matrix<double> a, Engine engine, RunOptions opts) {
  const index_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("invert: square only");
  Matrix<double> eye(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return solve(std::move(a), eye, engine, opts);
}

NumericReport lu_decompose_guarded(Matrix<double>& a,
                                   const BreakdownGuard& guard, Engine engine,
                                   RunOptions opts) {
  const index_t n = a.rows();
  if (a.cols() != n) {
    throw std::invalid_argument("lu_decompose_guarded: square only");
  }
  NumericReport rep;
  // One-pass total: boost rounds re-factor, so /progress can exceed 1.0
  // on a breakdown-heavy system — itself a useful live signal.
  SolverTelemetry telemetry(n, opts, "lu_guarded");
  const double amax = guard_max_abs(a);
  const double tiny = guard.threshold(n, amax);
  const Matrix<double> orig = a;  // retry base + residual reference
  double shift = 0;
  for (int round = 0;; ++round) {
    lu_decompose(a, engine, opts);
    double worst = 0;
    const index_t bad = scan_lu_pivots(a, tiny, &worst);
    if (bad < 0 && lu_factors_finite(a)) break;
    ++rep.breakdowns;
    detail_guard::numeric_obs().breakdowns.inc();
    if (guard.policy == BreakdownPolicy::Throw) {
      throw NumericBreakdownError(
          bad >= 0 ? bad : 0, worst,
          "lu_decompose_guarded: pivot " + std::to_string(bad) +
              " has magnitude " + std::to_string(worst) + " <= " +
              std::to_string(tiny) +
              "; the no-pivot precondition does not hold");
    }
    if (guard.policy == BreakdownPolicy::Report ||
        round >= guard.max_boost_rounds) {
      break;  // hand the (possibly broken) factors to the caller
    }
    // Boost: factor the regularized system A + mu*I instead. The shift
    // starts at boost_scale * |A|_max and grows 10x per retry.
    shift = shift == 0 ? guard.boost_scale * (amax > 0 ? amax : 1.0)
                       : shift * 10.0;
    rep.diagonal_shift = shift;
    ++rep.boosts;
    detail_guard::numeric_obs().boosts.inc();
    a = orig;
    for (index_t i = 0; i < n; ++i) a(i, i) += shift;
  }
  const double lumax = guard_max_abs(a);
  rep.growth_factor = amax > 0 ? lumax / amax : lumax;
  if (guard.residual_samples > 0) {
    // Validate against the matrix actually factored: orig + shift*I.
    Matrix<double> target = orig;
    for (index_t i = 0; shift != 0 && i < n; ++i) target(i, i) += shift;
    const double r = lu_residual_sample(target, a, guard.residual_samples);
    ++rep.residual_checks;
    detail_guard::numeric_obs().residual_checks.inc();
    rep.residual_max = r;
    if (!(r <= guard.residual_limit)) {  // NaN counts as a failure
      ++rep.residual_failures;
      detail_guard::numeric_obs().residual_failures.inc();
    }
  }
  return rep;
}

std::vector<double> solve_guarded(Matrix<double> a,
                                  const std::vector<double>& b,
                                  const BreakdownGuard& guard,
                                  NumericReport* report, Engine engine,
                                  RunOptions opts) {
  const index_t n = a.rows();
  if (a.cols() != n || b.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("solve_guarded: dimension mismatch");
  }
  const NumericReport rep = lu_decompose_guarded(a, guard, engine, opts);
  std::vector<double> x = b;
  forward_substitute(a, x);
  backward_substitute(a, x);
  if (report != nullptr) *report = rep;
  return x;
}

double residual_inf(const Matrix<double>& a, const std::vector<double>& x,
                    const std::vector<double>& b) {
  const index_t n = a.rows();
  double worst = 0;
  for (index_t i = 0; i < n; ++i) {
    double r = -b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < a.cols(); ++j) {
      r += a(i, j) * x[static_cast<std::size_t>(j)];
    }
    worst = std::max(worst, std::abs(r));
  }
  return worst;
}

}  // namespace gep::apps
