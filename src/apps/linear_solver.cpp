#include "apps/linear_solver.hpp"

#include <cmath>
#include <stdexcept>

namespace gep::apps {

void forward_substitute(const Matrix<double>& lu, std::vector<double>& x) {
  const index_t n = lu.rows();
  for (index_t i = 0; i < n; ++i) {
    double acc = x[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < i; ++k) {
      acc -= lu(i, k) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = acc;  // L has unit diagonal
  }
}

void backward_substitute(const Matrix<double>& lu, std::vector<double>& x) {
  const index_t n = lu.rows();
  for (index_t i = n - 1; i >= 0; --i) {
    double acc = x[static_cast<std::size_t>(i)];
    for (index_t k = i + 1; k < n; ++k) {
      acc -= lu(i, k) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = acc / lu(i, i);
  }
}

std::vector<double> solve(Matrix<double> a, const std::vector<double>& b,
                          Engine engine, RunOptions opts) {
  const index_t n = a.rows();
  if (a.cols() != n || b.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("solve: dimension mismatch");
  }
  lu_decompose(a, engine, opts);
  std::vector<double> x = b;
  forward_substitute(a, x);
  backward_substitute(a, x);
  return x;
}

Matrix<double> solve(Matrix<double> a, const Matrix<double>& b, Engine engine,
                     RunOptions opts) {
  const index_t n = a.rows();
  if (a.cols() != n || b.rows() != n) {
    throw std::invalid_argument("solve: dimension mismatch");
  }
  lu_decompose(a, engine, opts);
  Matrix<double> x = b;
  // Column-wise triangular solves against the shared factor.
  std::vector<double> col(static_cast<std::size_t>(n));
  for (index_t c = 0; c < b.cols(); ++c) {
    for (index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = x(i, c);
    forward_substitute(a, col);
    backward_substitute(a, col);
    for (index_t i = 0; i < n; ++i) x(i, c) = col[static_cast<std::size_t>(i)];
  }
  return x;
}

double determinant(Matrix<double> a, Engine engine, RunOptions opts) {
  if (a.cols() != a.rows()) throw std::invalid_argument("det: square only");
  lu_decompose(a, engine, opts);
  double det = 1.0;
  for (index_t i = 0; i < a.rows(); ++i) det *= a(i, i);
  return det;
}

Matrix<double> invert(Matrix<double> a, Engine engine, RunOptions opts) {
  const index_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("invert: square only");
  Matrix<double> eye(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return solve(std::move(a), eye, engine, opts);
}

double residual_inf(const Matrix<double>& a, const std::vector<double>& x,
                    const std::vector<double>& b) {
  const index_t n = a.rows();
  double worst = 0;
  for (index_t i = 0; i < n; ++i) {
    double r = -b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < a.cols(); ++j) {
      r += a(i, j) * x[static_cast<std::size_t>(j)];
    }
    worst = std::max(worst, std::abs(r));
  }
  return worst;
}

}  // namespace gep::apps
