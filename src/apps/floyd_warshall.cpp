#include "apps/apps.hpp"

#include <stdexcept>

#include "apps/runtime_select.hpp"
#include "blas/blas.hpp"
#include "gep/cgep.hpp"
#include "gep/functors.hpp"
#include "gep/typed.hpp"
#include "parallel/thread_pool.hpp"

namespace gep::apps {

std::string engine_name(Engine e) {
  switch (e) {
    case Engine::Iterative: return "GEP(iterative)";
    case Engine::IGep: return "I-GEP";
    case Engine::IGepZ: return "I-GEP(z-layout)";
    case Engine::CGep: return "C-GEP(4n^2)";
    case Engine::CGepCompact: return "C-GEP(compact)";
    case Engine::Blocked: return "blocked(cache-aware)";
  }
  return "?";
}

namespace {

// The paper's GEP baseline: the Fig. 1 triple loop, written well
// (hoisted c[i,k], unit-stride inner loop) but with no blocking.
void fw_iterative(double* c, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const double* ck = c + k * n;
    for (index_t i = 0; i < n; ++i) {
      const double cik = c[i * n + k];
      double* ci = c + i * n;
      for (index_t j = 0; j < n; ++j) {
        ci[j] = std::min(ci[j], cik + ck[j]);
      }
    }
  }
}

// Pads to pow2 with +inf off-diagonal / 0 diagonal (isolated vertices),
// runs fn on the padded matrix, unpads. No-op padding when n is pow2.
template <class Fn>
void with_fw_padding(Matrix<double>& d, Fn&& fn) {
  const index_t n = d.rows();
  if (is_pow2(n)) {
    fn(d);
    return;
  }
  Matrix<double> p = pad_to_pow2(d, kInfDist);
  for (index_t i = n; i < p.rows(); ++i) p(i, i) = 0.0;
  fn(p);
  d = unpad(p, n, n);
}

}  // namespace

void floyd_warshall(Matrix<double>& d, Engine engine, RunOptions opts) {
  if (d.rows() != d.cols()) throw std::invalid_argument("fw: square only");
  switch (engine) {
    case Engine::Iterative:
      fw_iterative(d.data(), d.rows());
      return;
    case Engine::Blocked:
      blas::fw_tiled(d.rows(), d.data(), d.cols(), opts.base_size);
      return;
    case Engine::IGep:
      with_fw_padding(d, [&](Matrix<double>& m) {
        RowMajorStore<double> st{m.data(), m.rows(),
                                 std::min(opts.base_size, m.rows())};
        if (detail::use_dag(opts)) {
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_floyd_warshall_dag(pool, st, m.rows(), {opts.base_size});
          });
        } else if (opts.threads > 1) {
          ThreadPool pool(opts.threads);
          ParInvoker inv{&pool};
          igep_floyd_warshall(inv, st, m.rows(), {opts.base_size});
        } else {
          SeqInvoker inv;
          igep_floyd_warshall(inv, st, m.rows(), {opts.base_size});
        }
      });
      return;
    case Engine::IGepZ:
      with_fw_padding(d, [&](Matrix<double>& m) {
        const index_t bs = std::min(opts.base_size, m.rows());
        ZBlocked<double> z(m.rows(), bs);
        z.load(m);  // conversion cost included, as in the paper
        ZStore<double> st{&z};
        if (detail::use_dag(opts)) {
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_floyd_warshall_dag(pool, st, m.rows(), {bs});
          });
        } else if (opts.threads > 1) {
          ThreadPool pool(opts.threads);
          ParInvoker inv{&pool};
          igep_floyd_warshall(inv, st, m.rows(), {bs});
        } else {
          SeqInvoker inv;
          igep_floyd_warshall(inv, st, m.rows(), {bs});
        }
        z.store(m);
      });
      return;
    case Engine::CGep:
      with_fw_padding(d, [&](Matrix<double>& m) {
        run_cgep(m, MinPlusF{}, FloydWarshallSet{m.rows()},
                 {opts.base_size});
      });
      return;
    case Engine::CGepCompact:
      with_fw_padding(d, [&](Matrix<double>& m) {
        run_cgep_compact(m, MinPlusF{}, FloydWarshallSet{m.rows()},
                         {opts.base_size});
      });
      return;
  }
  throw std::invalid_argument("fw: unknown engine");
}

}  // namespace gep::apps
