// Simple-DP (Cherng-Ladner [5]) — the parenthesis-problem family
//
//   D[i][j] = w(i,j) + min_{i<k<j} ( D[i][k] + D[k][j] ),   j > i+1,
//
// with given D[i][i+1] leaf values (polygon triangulation, matrix-chain
// style problems). The paper notes I-GEP's framework extends to this
// class through structural transformation; we provide both the iterative
// O(n³) reference and the cache-oblivious divide-and-conquer solver
// (triangle/rectangle/product recursion) with O(n³/(B√M)) cache misses.
#pragma once

#include <functional>

#include "matrix/matrix.hpp"

namespace gep::apps {

// Weight callback w(i, j); must be cheap and pure.
using DpWeightFn = std::function<double(index_t, index_t)>;

struct SimpleDpOptions {
  index_t base_size = 32;
};

// Iterative reference: fills the upper triangle in diagonal order.
// d must be n x n with leaves d(i, i+1) set; other cells are ignored on
// input. On return d(i,j) holds the DP value for all j > i.
void simple_dp_iterative(Matrix<double>& d, const DpWeightFn& w);

// Cache-oblivious solver; same contract as the iterative version.
void simple_dp_recursive(Matrix<double>& d, const DpWeightFn& w,
                         SimpleDpOptions opts = {});

}  // namespace gep::apps
