// Path-producing GEP applications: Floyd-Warshall with successor
// reconstruction and maximum-capacity (bottleneck) paths.
#include "apps/apps.hpp"

#include <limits>
#include <stdexcept>

#include "apps/runtime_select.hpp"
#include "gep/cgep.hpp"
#include "gep/functors.hpp"
#include "gep/typed.hpp"
#include "parallel/thread_pool.hpp"

namespace gep::apps {
namespace {

void fw_paths_iterative(double* d, std::int32_t* s, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const double* dk = d + k * n;
    for (index_t i = 0; i < n; ++i) {
      const double dik = d[i * n + k];
      const std::int32_t sik = s[i * n + k];
      double* di = d + i * n;
      std::int32_t* si = s + i * n;
      for (index_t j = 0; j < n; ++j) {
        const double cand = dik + dk[j];
        if (cand < di[j]) {
          di[j] = cand;
          si[j] = sik;
        }
      }
    }
  }
}

void bottleneck_iterative(double* c, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const double* ck = c + k * n;
    for (index_t i = 0; i < n; ++i) {
      const double cik = c[i * n + k];
      double* ci = c + i * n;
      for (index_t j = 0; j < n; ++j) {
        ci[j] = std::max(ci[j], std::min(cik, ck[j]));
      }
    }
  }
}

}  // namespace

void floyd_warshall_paths(Matrix<double>& d, Matrix<std::int32_t>& succ,
                          Engine engine, RunOptions opts) {
  const index_t n = d.rows();
  if (d.cols() != n) throw std::invalid_argument("fw_paths: square only");
  // Initialize successors from direct edges.
  succ = Matrix<std::int32_t>(n, n, std::int32_t{-1});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i != j && d(i, j) < kInfDist / 2) {
        succ(i, j) = static_cast<std::int32_t>(j);
      }
    }
  }
  switch (engine) {
    case Engine::Iterative:
      fw_paths_iterative(d.data(), succ.data(), n);
      return;
    case Engine::IGep: {
      // Pad both matrices (isolated extra vertices).
      const index_t np = next_pow2(n);
      Matrix<double> dp = pad_to_pow2(d, kInfDist);
      for (index_t i = n; i < np; ++i) dp(i, i) = 0.0;
      Matrix<std::int32_t> sp = pad_to_pow2(succ, std::int32_t{-1});
      const index_t bs = std::min(opts.base_size, np);
      RowMajorStore<double> dst{dp.data(), np, bs};
      RowMajorStore<std::int32_t> sst{sp.data(), np, bs};
      if (opts.threads > 1) {
        ThreadPool pool(opts.threads);
        ParInvoker inv{&pool};
        igep_floyd_warshall_paths(inv, dst, sst, np, {bs});
      } else {
        SeqInvoker inv;
        igep_floyd_warshall_paths(inv, dst, sst, np, {bs});
      }
      d = unpad(dp, n, n);
      succ = unpad(sp, n, n);
      return;
    }
    default:
      throw std::invalid_argument(
          "fw_paths: supported engines are Iterative and IGep");
  }
}

std::vector<index_t> extract_path(const Matrix<std::int32_t>& succ,
                                  index_t from, index_t to) {
  std::vector<index_t> path;
  if (from == to) return {from};
  if (succ(from, to) < 0) return {};
  index_t at = from;
  path.push_back(at);
  // Bounded walk (paths never exceed n vertices).
  for (index_t steps = 0; steps <= succ.rows(); ++steps) {
    std::int32_t nxt = succ(at, to);
    if (nxt < 0) return {};  // broken chain: treat as unreachable
    at = static_cast<index_t>(nxt);
    path.push_back(at);
    if (at == to) return path;
  }
  return {};  // cycle guard
}

void bottleneck_paths(Matrix<double>& cap, Engine engine, RunOptions opts) {
  const index_t n = cap.rows();
  if (cap.cols() != n) throw std::invalid_argument("bottleneck: square only");
  for (index_t i = 0; i < n; ++i) {
    cap(i, i) = std::numeric_limits<double>::infinity();
  }
  // Padding with zero capacity (no edges) is neutral under (max, min);
  // padded diagonals get +inf like real vertices.
  auto with_padding = [&](auto&& fn) {
    if (is_pow2(n)) {
      fn(cap);
      return;
    }
    Matrix<double> p = pad_to_pow2(cap, 0.0);
    for (index_t i = n; i < p.rows(); ++i) {
      p(i, i) = std::numeric_limits<double>::infinity();
    }
    fn(p);
    cap = unpad(p, n, n);
  };
  switch (engine) {
    case Engine::Iterative:
      bottleneck_iterative(cap.data(), n);
      return;
    case Engine::IGep:
      with_padding([&](Matrix<double>& m) {
        const index_t bs = std::min(opts.base_size, m.rows());
        RowMajorStore<double> st{m.data(), m.rows(), bs};
        if (detail::use_dag(opts)) {
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_bottleneck_dag(pool, st, m.rows(), {bs});
          });
        } else if (opts.threads > 1) {
          ThreadPool pool(opts.threads);
          ParInvoker inv{&pool};
          igep_bottleneck(inv, st, m.rows(), {bs});
        } else {
          SeqInvoker inv;
          igep_bottleneck(inv, st, m.rows(), {bs});
        }
      });
      return;
    case Engine::IGepZ:
      with_padding([&](Matrix<double>& m) {
        const index_t bs = std::min(opts.base_size, m.rows());
        ZBlocked<double> z(m.rows(), bs);
        z.load(m);
        ZStore<double> st{&z};
        if (detail::use_dag(opts)) {
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_bottleneck_dag(pool, st, m.rows(), {bs});
          });
        } else {
          SeqInvoker inv;
          igep_bottleneck(inv, st, m.rows(), {bs});
        }
        z.store(m);
      });
      return;
    case Engine::CGep:
      with_padding([&](Matrix<double>& m) {
        run_cgep(m, MaxMinF{}, FullSet{m.rows()}, {opts.base_size});
      });
      return;
    case Engine::CGepCompact:
      with_padding([&](Matrix<double>& m) {
        run_cgep_compact(m, MaxMinF{}, FullSet{m.rows()}, {opts.base_size});
      });
      return;
    case Engine::Blocked:
      throw std::invalid_argument("bottleneck: no blocked baseline");
  }
  throw std::invalid_argument("bottleneck: unknown engine");
}

}  // namespace gep::apps
