// Sequence alignment with an arbitrary gap function (the GAP problem) —
// the non-GEP application the paper's framework was adapted to in [6].
//
//   G(0,0) = 0
//   G(i,j) = min(  G(i-1, j-1) + s(i, j),                 (substitution)
//                  min_{0 <= q < j} G(i, q) + wg(q, j),   (gap in x)
//                  min_{0 <= p < i} G(p, j) + wg(p, i) )  (gap in y)
//
// for arbitrary substitution s and gap-cost wg — the classic O(n³)
// Waterman DP. The cache-oblivious solver below uses the same
// quadrant-decomposition idea as I-GEP: solve the top-left quadrant,
// min-fold its row/column/diagonal contributions into the neighbouring
// quadrants with rectangular min-plus products, recurse. It runs in
// O(n³) time and O(n³/(B√M)) cache misses, and reproduces the iterative
// DP exactly (same min sets, associativity-free).
#pragma once

#include <functional>

#include "matrix/matrix.hpp"

namespace gep::apps {

// Substitution cost for aligning x[i-1] with y[j-1] (1-based cells).
using GapSubstFn = std::function<double(index_t, index_t)>;
// Gap cost of extending from position q to position j (q < j).
using GapCostFn = std::function<double(index_t, index_t)>;

struct GapOptions {
  index_t base_size = 32;
};

// Iterative reference: fills g (sized (m+1) x (n+1)) in row-major order.
// g(0,0) is forced to 0; every other cell is computed.
void gap_alignment_iterative(Matrix<double>& g, const GapSubstFn& s,
                             const GapCostFn& wg);

// Cache-oblivious divide-and-conquer solver; same contract.
void gap_alignment_recursive(Matrix<double>& g, const GapSubstFn& s,
                             const GapCostFn& wg, GapOptions opts = {});

}  // namespace gep::apps
