// Problem-level entry points: Floyd-Warshall APSP, Gaussian elimination
// and LU decomposition without pivoting, and matrix multiplication —
// each runnable through every engine the paper compares:
//
//   Iterative   — optimized triple-loop GEP (the paper's GEP baseline)
//   IGep        — typed cache-oblivious I-GEP, iterative base case
//   IGepZ       — I-GEP over the bit-interleaved layout (conversion
//                 included, as the paper includes it in its timings)
//   CGep        — C-GEP, 4n²-space variant (generic engine)
//   CGepCompact — C-GEP, reduced-space variant
//   Blocked     — cache-aware tuned baseline (BLAS stand-in)
//
// Inputs of arbitrary n are padded to the next power of two with
// Σ-neutral values for the recursive engines and unpadded on return.
// opts.threads > 1 runs the multithreaded I-GEP of Fig. 6 (IGep/IGepZ
// engines only; other engines are sequential by construction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/matrix.hpp"
#include "simd/strassen.hpp"

namespace gep::apps {

enum class Engine { Iterative, IGep, IGepZ, CGep, CGepCompact, Blocked };

std::string engine_name(Engine e);

// Scheduler for the IGep/IGepZ engines. ForkJoin is the strict Fig. 6
// invoker; Dag the dependency-driven block-task runtime
// (parallel/task_graph.hpp) — bit-identical results, fewer barriers.
// Auto resolves $GEP_DAG_RUNTIME (=1 forces Dag, =0 ForkJoin, unset
// ForkJoin), so a whole test/bench process can be pinned from the
// environment. Engines other than IGep/IGepZ ignore the field; so do
// the drivers without a DAG mirror yet (fw_paths, gap alignment).
enum class Runtime { Auto, ForkJoin, Dag };

struct RunOptions {
  index_t base_size = 64;
  int threads = 1;
  Runtime runtime = Runtime::Auto;
  // Leaf-GEMM tuning (Strassen levels / crossover) for the engines that
  // route D-kind leaves through the packed GEMM (IGep/IGepZ with large
  // base_size, Blocked). Defaults inherit $GEP_STRASSEN_LEVELS /
  // $GEP_STRASSEN_MIN_M; installed process-wide for the run's duration.
  simd::GemmOptions gemm{};
};

// All-pairs shortest paths on a dense distance matrix (INF = +infinity
// semantics via a large sentinel; see kInfDist). In place.
void floyd_warshall(Matrix<double>& d, Engine engine, RunOptions opts = {});

// Gaussian elimination without pivoting: applies every Schur update
// c[i,j] -= c[i,k]*c[k,j]/c[k,k] (k < i, k < j). On return the upper
// triangle (j >= i) holds U; the strict lower triangle holds partially
// eliminated values (NOT multipliers), exactly as the paper's GE kernel
// leaves them. In place.
void gaussian_eliminate(Matrix<double>& a, Engine engine, RunOptions opts = {});

// LU decomposition without pivoting: U on and above the diagonal, unit-
// diagonal L multipliers strictly below. In place.
void lu_decompose(Matrix<double>& a, Engine engine, RunOptions opts = {});

// c += a * b (all square, same n). Engine::CGep* are not meaningful for
// the three-matrix form and fall back to IGep semantics via the GEP
// embedding only in tests; here they are rejected.
void multiply_add(Matrix<double>& c, const Matrix<double>& a,
                  const Matrix<double>& b, Engine engine, RunOptions opts = {});

// All-pairs shortest paths WITH path reconstruction: on return succ(i,j)
// is the next hop after i on a shortest i->j path (-1 when j is
// unreachable or i == j). Engines: Iterative and IGep.
void floyd_warshall_paths(Matrix<double>& d, Matrix<std::int32_t>& succ,
                          Engine engine, RunOptions opts = {});

// Expands a successor matrix into the vertex sequence i -> ... -> j;
// empty when unreachable.
std::vector<index_t> extract_path(const Matrix<std::int32_t>& succ,
                                  index_t from, index_t to);

// Maximum-capacity (bottleneck) paths over the (max, min) semiring:
// cap(i,j) becomes the largest capacity c such that some i->j path uses
// only edges of capacity >= c. 0 = no edge; diagonal is +infinity.
void bottleneck_paths(Matrix<double>& cap, Engine engine,
                      RunOptions opts = {});

// Transitive closure (Warshall): reach(i,j) in {0,1}; in place. The
// boolean or-and semiring instance of GEP — Engine::Blocked is not
// provided (there is no tuned baseline for it); all GEP engines work.
void transitive_closure(Matrix<std::uint8_t>& reach, Engine engine,
                        RunOptions opts = {});

// Freivalds' randomized product check: with `iters` independent +-1
// probe vectors r, verifies c r == a (b r) to within a floating-point
// tolerance. O(n^2) per iteration; a wrong product escapes each probe
// with probability <= 1/2, so `iters` probes bound the false-accept
// rate by 2^-iters. Counts into robust.residual_checks/failures.
bool freivalds_check(const Matrix<double>& c, const Matrix<double>& a,
                     const Matrix<double>& b, int iters = 8,
                     std::uint64_t seed = 1);

// Accumulate form matching multiply_add: verifies
// c_after == c_before + a * b.
bool freivalds_check(const Matrix<double>& c_after,
                     const Matrix<double>& c_before, const Matrix<double>& a,
                     const Matrix<double>& b, int iters = 8,
                     std::uint64_t seed = 1);

// Distance value treated as "no edge" by helpers/benches.
inline constexpr double kInfDist = 1e30;

}  // namespace gep::apps
