#include "apps/gap_alignment.hpp"

#include <algorithm>
#include <limits>

namespace gep::apps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Range {
  index_t lo, hi;  // closed
  index_t size() const { return hi - lo + 1; }
  Range left() const { return {lo, (lo + hi) / 2}; }
  Range right() const { return {(lo + hi) / 2 + 1, hi}; }
};

class GapSolver {
 public:
  GapSolver(Matrix<double>& g, const GapSubstFn& s, const GapCostFn& wg,
            index_t base)
      : g_(g), s_(s), wg_(wg), base_(std::max<index_t>(base, 2)) {}

  // Finalize every cell of R x C, assuming all contributions from
  // sources outside R x C have been min-folded into the cells already.
  void solve(Range R, Range C) {
    if (R.size() <= base_ && C.size() <= base_) {
      solve_base(R, C);
      return;
    }
    if (R.size() < 2) {  // thin strip: split only the columns
      Range C1 = C.left(), C2 = C.right();
      solve(R, C1);
      fold_row(R, C1, C2);
      fold_diag_col_boundary(R, C2.lo);
      solve(R, C2);
      return;
    }
    if (C.size() < 2) {
      Range R1 = R.left(), R2 = R.right();
      solve(R1, C);
      fold_col(C, R1, R2);
      fold_diag_row_boundary(R2.lo, C);
      solve(R2, C);
      return;
    }
    Range R1 = R.left(), R2 = R.right();
    Range C1 = C.left(), C2 = C.right();
    // Q11 first; fold its contributions right and down; Q12 and Q21 are
    // then independent; fold everything into Q22 and finish there.
    solve(R1, C1);
    fold_row(R1, C1, C2);
    fold_diag_col_boundary(R1, C2.lo);
    fold_col(C1, R1, R2);
    fold_diag_row_boundary(R2.lo, C1);
    solve(R1, C2);
    solve(R2, C1);
    fold_row(R2, C1, C2);
    fold_col(C2, R1, R2);
    fold_diag_row_boundary(R2.lo, C2);
    fold_diag_col_boundary(R2, C2.lo);
    solve(R2, C2);
  }

 private:
  // Iterative base case in row-major order; in-region dependencies are
  // final by the scan order, out-of-region ones by precondition.
  void solve_base(Range R, Range C) {
    for (index_t i = R.lo; i <= R.hi; ++i) {
      for (index_t j = C.lo; j <= C.hi; ++j) {
        if (i == 0 && j == 0) continue;  // G(0,0) = 0, fixed
        double best = g_(i, j);          // externally folded partials
        if (i > 0 && j > 0 && i - 1 >= R.lo && j - 1 >= C.lo) {
          best = std::min(best, g_(i - 1, j - 1) + s_(i, j));
        }
        for (index_t q = C.lo; q < j; ++q) {
          best = std::min(best, g_(i, q) + wg_(q, j));
        }
        for (index_t p = R.lo; p < i; ++p) {
          best = std::min(best, g_(p, j) + wg_(p, i));
        }
        g_(i, j) = best;
      }
    }
  }

  // Row-gap fold: g[i][j] min= g[i][q] + wg(q, j) for i in R, q in A
  // (final), j in B. Divide-and-conquer on the largest extent.
  void fold_row(Range R, Range A, Range B) {
    const index_t big = std::max({R.size(), A.size(), B.size()});
    if (big <= base_) {
      for (index_t q = A.lo; q <= A.hi; ++q) {
        for (index_t i = R.lo; i <= R.hi; ++i) {
          const double giq = g_(i, q);
          for (index_t j = B.lo; j <= B.hi; ++j) {
            g_(i, j) = std::min(g_(i, j), giq + wg_(q, j));
          }
        }
      }
      return;
    }
    if (R.size() == big) {
      fold_row(R.left(), A, B);
      fold_row(R.right(), A, B);
    } else if (A.size() == big) {
      fold_row(R, A.left(), B);
      fold_row(R, A.right(), B);
    } else {
      fold_row(R, A, B.left());
      fold_row(R, A, B.right());
    }
  }

  // Column-gap fold: g[i][j] min= g[p][j] + wg(p, i) for j in C, p in A
  // (final), i in B.
  void fold_col(Range C, Range A, Range B) {
    const index_t big = std::max({C.size(), A.size(), B.size()});
    if (big <= base_) {
      for (index_t p = A.lo; p <= A.hi; ++p) {
        for (index_t i = B.lo; i <= B.hi; ++i) {
          const double w = wg_(p, i);
          for (index_t j = C.lo; j <= C.hi; ++j) {
            g_(i, j) = std::min(g_(i, j), g_(p, j) + w);
          }
        }
      }
      return;
    }
    if (C.size() == big) {
      fold_col(C.left(), A, B);
      fold_col(C.right(), A, B);
    } else if (A.size() == big) {
      fold_col(C, A.left(), B);
      fold_col(C, A.right(), B);
    } else {
      fold_col(C, A, B.left());
      fold_col(C, A, B.right());
    }
  }

  // Diagonal edges crossing a column boundary: dest (i, cfirst) for
  // i in R with i-1 >= R-ish; sources (i-1, cfirst-1) are final.
  void fold_diag_col_boundary(Range R, index_t cfirst) {
    if (cfirst == 0) return;
    for (index_t i = std::max<index_t>(R.lo, 1); i <= R.hi; ++i) {
      if (i - 1 < R.lo) continue;  // source row outside: caller's duty
      g_(i, cfirst) =
          std::min(g_(i, cfirst), g_(i - 1, cfirst - 1) + s_(i, cfirst));
    }
  }

  // Diagonal edges crossing a row boundary: dest (rfirst, j) for j in C.
  void fold_diag_row_boundary(index_t rfirst, Range C) {
    if (rfirst == 0) return;
    for (index_t j = std::max<index_t>(C.lo, 1); j <= C.hi; ++j) {
      g_(rfirst, j) =
          std::min(g_(rfirst, j), g_(rfirst - 1, j - 1) + s_(rfirst, j));
    }
  }

  Matrix<double>& g_;
  const GapSubstFn& s_;
  const GapCostFn& wg_;
  index_t base_;
};

}  // namespace

void gap_alignment_iterative(Matrix<double>& g, const GapSubstFn& s,
                             const GapCostFn& wg) {
  const index_t rows = g.rows(), cols = g.cols();
  g(0, 0) = 0.0;
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      if (i == 0 && j == 0) continue;
      double best = kInf;
      if (i > 0 && j > 0) best = g(i - 1, j - 1) + s(i, j);
      for (index_t q = 0; q < j; ++q) best = std::min(best, g(i, q) + wg(q, j));
      for (index_t p = 0; p < i; ++p) best = std::min(best, g(p, j) + wg(p, i));
      g(i, j) = best;
    }
  }
}

void gap_alignment_recursive(Matrix<double>& g, const GapSubstFn& s,
                             const GapCostFn& wg, GapOptions opts) {
  const index_t rows = g.rows(), cols = g.cols();
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) g(i, j) = kInf;
  }
  g(0, 0) = 0.0;
  GapSolver solver(g, s, wg, opts.base_size);
  solver.solve({0, rows - 1}, {0, cols - 1});
}

}  // namespace gep::apps
