// Dense linear-system solving on top of cache-oblivious LU.
//
// The paper's Gaussian-elimination-without-pivoting instance is the
// factorization kernel of a direct solver; this module supplies the
// surrounding pieces — triangular solves, multi-RHS solves, determinant
// — so the library is usable as a solver, not just a factorization.
// No pivoting is performed (the paper's setting): the caller must supply
// a matrix whose leading principal minors are nonsingular (e.g. strictly
// diagonally dominant or SPD), as is standard for GEP.
#pragma once

#include <vector>

#include "apps/apps.hpp"
#include "gep/numeric_guard.hpp"
#include "matrix/matrix.hpp"

namespace gep::apps {

// Solves A x = b. A is factored in place as L U (unit-diagonal L).
// Returns x. Engine selects the LU implementation.
std::vector<double> solve(Matrix<double> a, const std::vector<double>& b,
                          Engine engine = Engine::IGep, RunOptions opts = {});

// Multi-RHS variant: solves A X = B column-wise; B is n x r.
Matrix<double> solve(Matrix<double> a, const Matrix<double>& b,
                     Engine engine = Engine::IGep, RunOptions opts = {});

// In-place triangular solves against a packed LU factor.
void forward_substitute(const Matrix<double>& lu, std::vector<double>& x);
void backward_substitute(const Matrix<double>& lu, std::vector<double>& x);

// Determinant via the product of U's diagonal (LU without pivoting has
// a unit-diagonal L, so det A = prod diag(U)).
double determinant(Matrix<double> a, Engine engine = Engine::IGep,
                   RunOptions opts = {});

// Matrix inverse via LU + multi-RHS solve against the identity.
Matrix<double> invert(Matrix<double> a, Engine engine = Engine::IGep,
                      RunOptions opts = {});

// Max-norm residual ||A x - b||_inf (verification helper).
double residual_inf(const Matrix<double>& a, const std::vector<double>& x,
                    const std::vector<double>& b);

// Guarded LU (gep/numeric_guard.hpp): factors `a` in place, then
// validates the factors post hoc — every pivot above the breakdown
// threshold and every entry finite. On breakdown the policy decides:
// Throw raises NumericBreakdownError; Report returns with the counts in
// the report; Boost re-factors A + mu*I (standard diagonal
// regularization, mu = boost_scale * |A|_max, x10 per retry round) until
// the factorization is clean or max_boost_rounds is spent. The report
// records breakdowns, boosts, the final shift, the growth factor
// max|LU|/max|A|, and — when residual_samples > 0 — a row-sampled
// relative ||A - LU|| residual checked against residual_limit.
NumericReport lu_decompose_guarded(Matrix<double>& a,
                                   const BreakdownGuard& guard,
                                   Engine engine = Engine::IGep,
                                   RunOptions opts = {});

// solve() on top of lu_decompose_guarded. Under Boost with a shift the
// returned x solves the regularized system (A + mu*I) x = b; inspect
// report->diagonal_shift to know. Report (optional out) receives the
// factorization's NumericReport.
std::vector<double> solve_guarded(Matrix<double> a,
                                  const std::vector<double>& b,
                                  const BreakdownGuard& guard,
                                  NumericReport* report = nullptr,
                                  Engine engine = Engine::IGep,
                                  RunOptions opts = {});

}  // namespace gep::apps
