#include "apps/simple_dp.hpp"

#include <algorithm>
#include <limits>

namespace gep::apps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Interval {
  index_t lo, hi;  // closed vertex range
  index_t size() const { return hi - lo + 1; }
  Interval left() const { return {lo, (lo + hi) / 2}; }
  Interval right() const { return {(lo + hi) / 2 + 1, hi}; }
};

class Solver {
 public:
  Solver(Matrix<double>& d, const DpWeightFn& w, index_t base)
      : d_(d), w_(w), base_(std::max<index_t>(base, 2)) {}

  // Triangle: finalize all cells lo <= i < j <= hi.
  void triangle(index_t lo, index_t hi) {
    if (hi - lo < 2) return;  // only leaf cells
    if (hi - lo + 1 <= base_) {
      for (index_t len = 2; len <= hi - lo; ++len) {
        for (index_t i = lo; i + len <= hi; ++i) {
          const index_t j = i + len;
          double best = d_(i, j);  // folded external contributions (none here)
          for (index_t k = i + 1; k < j; ++k) {
            best = std::min(best, d_(i, k) + d_(k, j));
          }
          d_(i, j) = w_(i, j) + best;
        }
      }
      return;
    }
    const index_t mid = (lo + hi) / 2;
    triangle(lo, mid);
    triangle(mid, hi);
    // Cells (i, j) with i < mid < j remain. Fold the single-vertex gap
    // {mid} (a rank-1 min-plus update), then finalize the rectangle.
    if (lo <= mid - 1 && mid + 1 <= hi) {
      Interval I{lo, mid - 1}, J{mid + 1, hi};
      for (index_t i = I.lo; i <= I.hi; ++i) {
        const double dim = d_(i, mid);
        for (index_t j = J.lo; j <= J.hi; ++j) {
          d_(i, j) = std::min(d_(i, j), dim + d_(mid, j));
        }
      }
      rect(I, J);
    }
  }

 private:
  // Rectangle: finalize cells I x J (I entirely left of J), given that
  // the I and J triangles are final and every contribution with k
  // outside I ∪ J has already been min-folded into d(i, j).
  void rect(Interval I, Interval J) {
    if (I.size() < 2 || J.size() < 2 ||
        (I.size() <= base_ && J.size() <= base_)) {
      // i descending / j ascending makes every in-rectangle dependency
      // (d[k][j] with k > i, d[i][k] with k < j) already final.
      for (index_t i = I.hi; i >= I.lo; --i) {
        for (index_t j = J.lo; j <= J.hi; ++j) {
          double best = d_(i, j);
          for (index_t k = i + 1; k <= I.hi; ++k) {
            best = std::min(best, d_(i, k) + d_(k, j));
          }
          for (index_t k = J.lo; k < j; ++k) {
            best = std::min(best, d_(i, k) + d_(k, j));
          }
          d_(i, j) = w_(i, j) + best;
        }
      }
      return;
    }
    Interval I1 = I.left(), I2 = I.right();
    Interval J1 = J.left(), J2 = J.right();
    rect(I2, J1);
    product(I1, J1, I2);  // k in I2 reaches (i,j) in I1 x J1
    product(I2, J2, J1);  // k in J1 reaches (i,j) in I2 x J2
    rect(I1, J1);
    rect(I2, J2);
    product(I1, J2, I2);
    product(I1, J2, J1);
    rect(I1, J2);
  }

  // Min-plus product fold: d[I x J] = min(d[I x J], d[I x K] + d[K x J]),
  // all operand cells final. Divide-and-conquer on the largest dimension
  // keeps it cache-oblivious.
  void product(Interval I, Interval J, Interval K) {
    const index_t big = std::max({I.size(), J.size(), K.size()});
    if (big <= base_) {
      for (index_t k = K.lo; k <= K.hi; ++k) {
        for (index_t i = I.lo; i <= I.hi; ++i) {
          const double dik = d_(i, k);
          for (index_t j = J.lo; j <= J.hi; ++j) {
            d_(i, j) = std::min(d_(i, j), dik + d_(k, j));
          }
        }
      }
      return;
    }
    if (I.size() == big) {
      product(I.left(), J, K);
      product(I.right(), J, K);
    } else if (J.size() == big) {
      product(I, J.left(), K);
      product(I, J.right(), K);
    } else {
      product(I, J, K.left());
      product(I, J, K.right());
    }
  }

  Matrix<double>& d_;
  const DpWeightFn& w_;
  index_t base_;
};

}  // namespace

void simple_dp_iterative(Matrix<double>& d, const DpWeightFn& w) {
  const index_t n = d.rows();
  for (index_t len = 2; len < n; ++len) {
    for (index_t i = 0; i + len < n; ++i) {
      const index_t j = i + len;
      double best = kInf;
      for (index_t k = i + 1; k < j; ++k) {
        best = std::min(best, d(i, k) + d(k, j));
      }
      d(i, j) = w(i, j) + best;
    }
  }
}

void simple_dp_recursive(Matrix<double>& d, const DpWeightFn& w,
                         SimpleDpOptions opts) {
  const index_t n = d.rows();
  // Non-leaf cells start at +inf so partial min-folds compose.
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 2; j < n; ++j) d(i, j) = kInf;
  }
  if (n < 3) return;
  Solver s(d, w, opts.base_size);
  s.triangle(0, n - 1);
}

}  // namespace gep::apps
