#include "apps/apps.hpp"

#include <stdexcept>

#include "apps/runtime_select.hpp"
#include "gep/cgep.hpp"
#include "gep/functors.hpp"
#include "gep/typed.hpp"
#include "parallel/thread_pool.hpp"

namespace gep::apps {
namespace {

// Iterative Warshall with the row-skip hoist (u[i][k] == 0 rows are
// untouched by iteration k).
void tc_iterative(std::uint8_t* c, index_t n) {
  for (index_t k = 0; k < n; ++k) {
    const std::uint8_t* ck = c + k * n;
    for (index_t i = 0; i < n; ++i) {
      if (!c[i * n + k]) continue;
      std::uint8_t* ci = c + i * n;
      for (index_t j = 0; j < n; ++j) {
        ci[j] = static_cast<std::uint8_t>(ci[j] | ck[j]);
      }
    }
  }
}

// Zero padding is neutral: padded vertices have no edges.
template <class Fn>
void with_zero_padding(Matrix<std::uint8_t>& r, Fn&& fn) {
  const index_t n = r.rows();
  if (is_pow2(n)) {
    fn(r);
    return;
  }
  Matrix<std::uint8_t> p = pad_to_pow2(r, std::uint8_t{0});
  fn(p);
  r = unpad(p, n, n);
}

}  // namespace

void transitive_closure(Matrix<std::uint8_t>& reach, Engine engine,
                        RunOptions opts) {
  if (reach.rows() != reach.cols()) {
    throw std::invalid_argument("tc: square only");
  }
  switch (engine) {
    case Engine::Iterative:
      tc_iterative(reach.data(), reach.rows());
      return;
    case Engine::IGep:
      with_zero_padding(reach, [&](Matrix<std::uint8_t>& m) {
        RowMajorStore<std::uint8_t> st{m.data(), m.rows(),
                                       std::min(opts.base_size, m.rows())};
        if (detail::use_dag(opts)) {
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_transitive_closure_dag(pool, st, m.rows(),
                                        {opts.base_size});
          });
        } else if (opts.threads > 1) {
          ThreadPool pool(opts.threads);
          ParInvoker inv{&pool};
          igep_transitive_closure(inv, st, m.rows(), {opts.base_size});
        } else {
          SeqInvoker inv;
          igep_transitive_closure(inv, st, m.rows(), {opts.base_size});
        }
      });
      return;
    case Engine::IGepZ:
      with_zero_padding(reach, [&](Matrix<std::uint8_t>& m) {
        const index_t bs = std::min(opts.base_size, m.rows());
        ZBlocked<std::uint8_t> z(m.rows(), bs);
        z.load(m);
        ZStore<std::uint8_t> st{&z};
        if (detail::use_dag(opts)) {
          detail::with_dag_pool(opts, [&](WorkStealingPool* pool) {
            igep_transitive_closure_dag(pool, st, m.rows(), {bs});
          });
        } else {
          SeqInvoker inv;
          igep_transitive_closure(inv, st, m.rows(), {bs});
        }
        z.store(m);
      });
      return;
    case Engine::CGep:
      with_zero_padding(reach, [&](Matrix<std::uint8_t>& m) {
        run_cgep(m, OrAndF{}, FullSet{m.rows()}, {opts.base_size});
      });
      return;
    case Engine::CGepCompact:
      with_zero_padding(reach, [&](Matrix<std::uint8_t>& m) {
        run_cgep_compact(m, OrAndF{}, FullSet{m.rows()}, {opts.base_size});
      });
      return;
    case Engine::Blocked:
      throw std::invalid_argument("tc: no blocked baseline; use IGep");
  }
  throw std::invalid_argument("tc: unknown engine");
}

}  // namespace gep::apps
