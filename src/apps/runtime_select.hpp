// Internal: resolves RunOptions::runtime and owns the pool for the
// DAG-runtime paths of the app entry points. Not installed API.
#pragma once

#include <algorithm>
#include <thread>

#include "apps/apps.hpp"
#include "obs/stat_server.hpp"
#include "parallel/task_graph.hpp"

namespace gep::apps::detail {

inline bool use_dag(const RunOptions& opts) {
  switch (opts.runtime) {
    case Runtime::ForkJoin: return false;
    case Runtime::Dag: return true;
    case Runtime::Auto: break;
  }
  return runtime_from_env() == RuntimeKind::Dag;
}

// Worker count for the DAG runtime: the request clamped to the host's
// concurrency. A dependency-driven runtime keeps every worker busy (no
// join barriers parking threads), so running more workers than cores
// only interleaves their working sets in the shared cache and adds
// context-switch thrash — unlike fork-join, oversubscription can never
// help it. Compute tasks never block, so there is no latency to hide.
inline int dag_workers(const RunOptions& opts) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min(opts.threads, static_cast<int>(hw));
}

// Runs fn(pool) with a work-stealing pool sized by dag_workers(), or
// fn(nullptr) for the single-threaded case (run_task_graph then
// executes in emission order on the calling thread).
template <class Fn>
void with_dag_pool(const RunOptions& opts, Fn&& fn) {
  // DAG-runtime drivers are long-running entry points: arm the embedded
  // stat server when $GEP_STAT_PORT asks for it (no-op otherwise or when
  // a bench banner already started it; inert stub at GEP_OBS=0).
  obs::StatServer::start_from_env();
  const int workers = dag_workers(opts);
  if (workers > 1) {
    WorkStealingPool pool(workers);
    fn(&pool);
  } else {
    fn(static_cast<WorkStealingPool*>(nullptr));
  }
}

}  // namespace gep::apps::detail
