// Flight recorder: an always-on, lock-free, per-thread ring buffer of
// compact binary events (page traffic, retries, CRC recoveries, task
// steals/parks, recursion enter/leave, numeric-guard trips).
//
// The recorder answers "what was the process doing just before it hung
// or died": each thread appends 16-byte events to its own fixed ring
// with plain stores (no locks, no fences beyond one release store per
// event), and a dump path walks every ring and writes the last-N events
// per thread plus a metrics-registry snapshot to a `*.gepdump` file.
// The dump path comes in two flavors:
//
//   * programmatic (flight::dump) — used by the stall watchdog and the
//     benches' clean-shutdown path; includes the metrics JSON.
//   * signal handler (install_crash_handlers) — SIGSEGV / SIGABRT /
//     SIGBUS / SIGFPE write an events-only dump with raw write(2)
//     calls (async-signal-safe), then re-raise; SIGUSR1 dumps (with
//     metrics — the process is presumed healthy) and continues.
//
// install_job_signal_handlers() adds cooperative SIGINT/SIGTERM
// handling for long OOC jobs: the first signal records the event, sets
// a stop flag the compute leaves poll (throw_if_stop_requested), and
// restores the default disposition so a second signal kills for real.
// The job unwinds via JobCancelled, letting the bench flush the page
// cache's write-behind instead of dying mid-write.
//
// GEP_OBS=0 compiles the recorder to inert stubs (dump returns false,
// stop_requested is constant false) in inline namespace obs::off; the
// dump *format* below stays compiled in both builds so tools/gep_events
// can always decode a file produced by an enabled build.
#pragma once

#ifndef GEP_OBS
#define GEP_OBS 1
#endif

#include <cstdint>
#include <stdexcept>

namespace gep::obs {

// Thrown by throw_if_stop_requested() once a job signal arrived; the
// same type in both builds so catch sites are configuration-agnostic.
class JobCancelled : public std::runtime_error {
 public:
  JobCancelled() : std::runtime_error("GEP job cancelled by signal") {}
};

// --- dump format (always compiled: the decoder must build at GEP_OBS=0) ---
//
// A .gepdump is host-endian binary:
//   FileHeader
//   thread_count x { ThreadHeader, count x Event }   (events oldest first)
//   u32 metrics_len, metrics_len bytes of registry-snapshot JSON
// A file truncated anywhere after the header still decodes up to the
// truncation point (crash dumps stop wherever the handler got to).
namespace flightfmt {

inline constexpr char kMagic[8] = {'G', 'E', 'P', 'D', 'U', 'M', 'P', '1'};
inline constexpr std::uint32_t kVersion = 1;

// Dump reasons: >0 is the signal number that triggered the dump.
inline constexpr std::int32_t kReasonManual = 0;
inline constexpr std::int32_t kReasonWatchdog = -1;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::int32_t reason;
  std::uint64_t dump_ns;       // steady-clock time of the dump
  std::uint32_t thread_count;  // ThreadHeader sections that follow
  std::uint32_t reserved;
};

struct ThreadHeader {
  char name[24];            // NUL-terminated thread role ("ws-worker-3")
  std::uint32_t tid;        // registration-order thread id (1-based)
  std::uint32_t count;      // events following this header
  std::uint64_t seq;        // lifetime events recorded (>= count)
  std::uint64_t reserved;
};

// type in the top 8 bits, a type-specific payload in the low 56.
struct Event {
  std::uint64_t t_ns;
  std::uint64_t w;
};

enum Ev : unsigned {
  kNone = 0,
  kPageIn,         // payload: file/page
  kPageOut,        // payload: file/page
  kEvict,          // payload: file/page
  kPrefetchIssue,  // payload: file/page
  kPrefetchDone,   // payload: file/page
  kIoRetry,        // payload: page
  kCrcRecover,     // payload: page
  kIoHardFail,     // payload: page
  kTaskSteal,      // payload: thief/victim worker ids
  kTaskPark,       // payload: worker id
  kTaskWake,       // payload: worker id
  kRecEnter,       // payload: kind/depth/m
  kRecLeave,       // payload: kind/depth/m
  kGuardTrip,      // payload: global pivot index k
  kStallDetect,    // payload: watchdog source id
  kSignal,         // payload: signal number
  kMark,           // payload: caller-defined (tests)
  // DAG task runtime (parallel/task_graph.hpp). Appended after kMark so
  // dumps from older builds keep decoding with the same numbering.
  kTaskReady,      // payload: task id (entered the lookahead window)
  kTaskRun,        // payload: task id (started executing)
  kTaskRetire,     // payload: task id (finished; successors released)
  // Checkpoint/restart (extmem/checkpoint.hpp). Appended for the same
  // decode-stability reason as above.
  kCkptBegin,      // payload: snapshot sequence number
  kCkptEnd,        // payload: snapshot sequence number
  kCkptSkipped,    // payload: reason (1 = unchanged, 2 = aborted leaf)
  kEvCount
};

inline const char* ev_name(unsigned e) {
  static const char* names[kEvCount] = {
      "none",           "page_in",     "page_out",   "evict",
      "prefetch_issue", "prefetch_done", "io_retry", "crc_recover",
      "io_hard_fail",   "task_steal",  "task_park",  "task_wake",
      "rec_enter",      "rec_leave",   "guard_trip", "stall_detect",
      "signal",         "mark",        "task_ready", "task_run",
      "task_retire",    "ckpt_begin",  "ckpt_end",   "ckpt_skipped"};
  return e < kEvCount ? names[e] : "?";
}

inline constexpr std::uint64_t kPayloadMask = (std::uint64_t{1} << 56) - 1;

inline constexpr std::uint64_t pack(Ev e, std::uint64_t payload) {
  return (static_cast<std::uint64_t>(e) << 56) | (payload & kPayloadMask);
}
inline constexpr unsigned ev_of(std::uint64_t w) {
  return static_cast<unsigned>(w >> 56);
}
inline constexpr std::uint64_t payload_of(std::uint64_t w) {
  return w & kPayloadMask;
}

// Page events: file id in bits 40..55, page number in bits 0..39.
inline constexpr std::uint64_t pack_page(int file_id, std::uint64_t page) {
  return (static_cast<std::uint64_t>(file_id & 0xFFFF) << 40) |
         (page & ((std::uint64_t{1} << 40) - 1));
}
inline constexpr int page_file(std::uint64_t payload) {
  return static_cast<int>((payload >> 40) & 0xFFFF);
}
inline constexpr std::uint64_t page_page(std::uint64_t payload) {
  return payload & ((std::uint64_t{1} << 40) - 1);
}

// Recursion events: box kind char in bits 0..7, depth in 8..15, box
// side m in 16..55.
inline constexpr std::uint64_t pack_rec(char kind, int depth,
                                        std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<unsigned char>(kind)) |
         (static_cast<std::uint64_t>(depth & 0xFF) << 8) |
         ((m & ((std::uint64_t{1} << 40) - 1)) << 16);
}
inline constexpr char rec_kind(std::uint64_t payload) {
  return static_cast<char>(payload & 0xFF);
}
inline constexpr int rec_depth(std::uint64_t payload) {
  return static_cast<int>((payload >> 8) & 0xFF);
}
inline constexpr std::uint64_t rec_m(std::uint64_t payload) {
  return payload >> 16;
}

// Steal events: thief worker in bits 0..15, victim in 16..31.
inline constexpr std::uint64_t pack_steal(int thief, int victim) {
  return static_cast<std::uint64_t>(thief & 0xFFFF) |
         (static_cast<std::uint64_t>(victim & 0xFFFF) << 16);
}
inline constexpr int steal_thief(std::uint64_t payload) {
  return static_cast<int>(payload & 0xFFFF);
}
inline constexpr int steal_victim(std::uint64_t payload) {
  return static_cast<int>((payload >> 16) & 0xFFFF);
}

}  // namespace flightfmt

#if GEP_OBS

inline namespace on {
namespace flight {

// Events each thread's ring retains (the "last N" a dump shows).
inline constexpr std::uint32_t kRingEvents = 4096;

// Appends one event to the calling thread's ring. Lock-free and
// wait-free after the thread's first call (which allocates + registers
// the ring); roughly a clock read and a 16-byte store.
void record(flightfmt::Ev type, std::uint64_t payload = 0);

// Names the calling thread's ring in dumps ("pc-asyncio"); truncated to
// the ThreadHeader field. Threads default to "thread-<tid>".
void set_thread_name(const char* name);

// Where the signal handlers (and argument-less dumps) write. Default
// "flight.gepdump" in the CWD; $GEP_FLIGHT_DUMP overrides; an explicit
// set_dump_path wins over both. Path length is capped (it must live in
// static storage for the handlers); over-long paths are rejected.
void set_dump_path(const char* path);
const char* dump_path();

// Writes every thread's recent events plus the metrics snapshot.
// reason: a flightfmt::kReason* value or a signal number. Returns false
// if the file cannot be opened (or another dump is mid-flight).
bool dump(const char* path, std::int32_t reason = flightfmt::kReasonManual);
bool dump_default(std::int32_t reason = flightfmt::kReasonManual);

// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers (events-only dump,
// then re-raise with the default disposition) and SIGUSR1 (dump with
// metrics, continue). Idempotent.
void install_crash_handlers();

// Installs SIGINT/SIGTERM: record the signal, dump, set the stop flag,
// restore the default disposition (second signal kills). Idempotent.
void install_job_signal_handlers();

// Cooperative cancellation flag set by the job signal handlers.
bool stop_requested();
void request_stop();
void reset_stop();  // tests / repeated bench legs

// Test support: forget all recorded events (rings stay registered).
void clear();

std::uint64_t now_ns();

}  // namespace flight

inline void throw_if_stop_requested() {
  if (flight::stop_requested()) throw JobCancelled();
}

// Recursion enter/leave bracket for the typed engine: ~a clock read and
// a 16-byte ring store on each side.
class FlightRecScope {
 public:
  FlightRecScope(char kind, int depth, std::uint64_t m)
      : w_(flightfmt::pack_rec(kind, depth, m)) {
    flight::record(flightfmt::kRecEnter, w_);
  }
  ~FlightRecScope() { flight::record(flightfmt::kRecLeave, w_); }
  FlightRecScope(const FlightRecScope&) = delete;
  FlightRecScope& operator=(const FlightRecScope&) = delete;

 private:
  std::uint64_t w_;
};

}  // namespace on

#else  // GEP_OBS == 0: inert stubs, dump degrades gracefully.

inline namespace off {
namespace flight {

inline constexpr std::uint32_t kRingEvents = 0;

inline void record(flightfmt::Ev, std::uint64_t = 0) {}
inline void set_thread_name(const char*) {}
inline void set_dump_path(const char*) {}
inline const char* dump_path() { return ""; }
inline bool dump(const char*, std::int32_t = flightfmt::kReasonManual) {
  return false;
}
inline bool dump_default(std::int32_t = flightfmt::kReasonManual) {
  return false;
}
inline void install_crash_handlers() {}
inline void install_job_signal_handlers() {}
inline bool stop_requested() { return false; }
inline void request_stop() {}
inline void reset_stop() {}
inline void clear() {}
inline std::uint64_t now_ns() { return 0; }

}  // namespace flight

inline void throw_if_stop_requested() {}

class FlightRecScope {
 public:
  FlightRecScope(char, int, std::uint64_t) {}
};

}  // namespace off

#endif  // GEP_OBS

}  // namespace gep::obs
