#include "obs/flight_recorder.hpp"

#if GEP_OBS

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "obs/registry.hpp"

namespace gep::obs {
inline namespace on {
namespace flight {

namespace {

using flightfmt::Event;
using flightfmt::FileHeader;
using flightfmt::ThreadHeader;

constexpr std::uint32_t kRingMask = kRingEvents - 1;
static_assert((kRingEvents & kRingMask) == 0, "ring size must be pow2");

// One thread's ring. Allocated on the thread's first record() and
// intentionally leaked: a dump may run (from a signal handler or the
// watchdog) after the owning thread exited, and its tail of events is
// exactly what such a dump is for.
struct Ring {
  Event ev[kRingEvents];
  std::atomic<std::uint64_t> seq{0};
  char name[24] = {};
  std::uint32_t tid = 0;
};

// Fixed global table of ring pointers: iterable from a signal handler
// with nothing but atomic loads. Threads beyond the cap still record
// into their own ring; it just never appears in dumps.
constexpr int kMaxRings = 256;
std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<int> g_nrings{0};

std::atomic<bool> g_stop{false};
std::atomic<int> g_dumping{0};  // one dump at a time; extras are dropped

// Handler-visible dump path; fixed storage, set before handlers fire.
constexpr std::size_t kPathMax = 512;
char g_path[kPathMax] = "flight.gepdump";
std::atomic<bool> g_path_from_env_checked{false};

struct OldActions {
  struct sigaction segv, bus, fpe, abrt;
};

thread_local Ring* t_ring = nullptr;

Ring* ring_slow() {
  Ring* r = new Ring();
  const int i = g_nrings.fetch_add(1, std::memory_order_acq_rel);
  r->tid = static_cast<std::uint32_t>(i + 1);
  std::snprintf(r->name, sizeof r->name, "thread-%d", i + 1);
  if (i < kMaxRings) {
    g_rings[i].store(r, std::memory_order_release);
  }
  t_ring = r;
  return r;
}

inline Ring& this_ring() {
  Ring* r = t_ring;
  return r != nullptr ? *r : *ring_slow();
}

// write(2) the whole buffer, tolerating short writes / EINTR. Returns
// false on a real error (the dump is then simply truncated).
bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t k = ::write(fd, p, len);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<std::size_t>(k);
    len -= static_cast<std::size_t>(k);
  }
  return true;
}

// The events section, written with only async-signal-safe calls.
// Returns the fd still open (metrics may be appended) or -1.
int dump_events(const char* path, std::int32_t reason) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return -1;
  const int nr = std::min(g_nrings.load(std::memory_order_acquire),
                          kMaxRings);
  FileHeader fh{};
  std::memcpy(fh.magic, flightfmt::kMagic, sizeof fh.magic);
  fh.version = flightfmt::kVersion;
  fh.reason = reason;
  fh.dump_ns = now_ns();
  fh.thread_count = static_cast<std::uint32_t>(nr);
  if (!write_all(fd, &fh, sizeof fh)) {
    ::close(fd);
    return -1;
  }
  for (int i = 0; i < nr; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) {  // registered but not yet published: empty stub
      ThreadHeader th{};
      th.tid = static_cast<std::uint32_t>(i + 1);
      write_all(fd, &th, sizeof th);
      continue;
    }
    const std::uint64_t seq = r->seq.load(std::memory_order_acquire);
    const std::uint64_t count = seq < kRingEvents ? seq : kRingEvents;
    ThreadHeader th{};
    std::memcpy(th.name, r->name, sizeof th.name);
    th.name[sizeof th.name - 1] = '\0';
    th.tid = r->tid;
    th.count = static_cast<std::uint32_t>(count);
    th.seq = seq;
    if (!write_all(fd, &th, sizeof th)) break;
    // Oldest-to-newest. The owning thread may keep recording while we
    // copy — a torn event near the head is acceptable in a diagnostic
    // dump (the decoder tolerates any bit pattern).
    bool ok = true;
    for (std::uint64_t s = seq - count; s < seq && ok; ++s) {
      ok = write_all(fd, &r->ev[s & kRingMask], sizeof(Event));
    }
    if (!ok) break;
  }
  return fd;
}

bool dump_impl(const char* path, std::int32_t reason, bool with_metrics) {
  int expected = 0;
  if (!g_dumping.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel)) {
    return false;  // another dump mid-flight (e.g. crash during dump)
  }
  const int fd = dump_events(path, reason);
  bool ok = fd >= 0;
  if (ok) {
    std::uint32_t len = 0;
    if (with_metrics) {
      // Allocates — callers in signal context pass with_metrics=false.
      const std::string metrics = snapshot_json();
      len = static_cast<std::uint32_t>(metrics.size());
      ok = write_all(fd, &len, sizeof len) &&
           write_all(fd, metrics.data(), metrics.size());
    } else {
      ok = write_all(fd, &len, sizeof len);
    }
    ::close(fd);
  }
  g_dumping.store(0, std::memory_order_release);
  return ok;
}

// --- signal handlers -------------------------------------------------------

OldActions g_old{};

void crash_handler(int sig) {
  record(flightfmt::kSignal, static_cast<std::uint64_t>(sig));
  // Events only: snapshot_json() allocates, which a crashed thread may
  // be holding the allocator lock for.
  dump_impl(g_path, sig, /*with_metrics=*/false);
  // Re-raise with the original disposition so the process dies with the
  // real signal (exit status, core dumps, death tests all see it).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void usr1_handler(int sig) {
  record(flightfmt::kSignal, static_cast<std::uint64_t>(sig));
  // Operator-requested diagnostic on a presumed-healthy process: include
  // the metrics section (technically allocates in handler context — the
  // standard trade every thread-dump-on-signal runtime makes).
  dump_impl(g_path, sig, /*with_metrics=*/true);
}

void job_signal_handler(int sig) {
  record(flightfmt::kSignal, static_cast<std::uint64_t>(sig));
  g_stop.store(true, std::memory_order_release);
  dump_impl(g_path, sig, /*with_metrics=*/false);
  // One polite request only: restore the default so a second SIGINT
  // kills a job that is not polling stop_requested().
  ::signal(sig, SIG_DFL);
}

void init_path_from_env() {
  bool expected = false;
  if (!g_path_from_env_checked.compare_exchange_strong(expected, true)) {
    return;
  }
  if (const char* p = std::getenv("GEP_FLIGHT_DUMP")) {
    if (p[0] != '\0' && std::strlen(p) < kPathMax) {
      std::strncpy(g_path, p, kPathMax - 1);
      g_path[kPathMax - 1] = '\0';
    }
  }
}

void install_action(int sig, void (*fn)(int), struct sigaction* old) {
  struct sigaction sa{};
  sa.sa_handler = fn;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(sig, &sa, old);
}

}  // namespace

std::uint64_t now_ns() {
  struct timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void record(flightfmt::Ev type, std::uint64_t payload) {
  Ring& r = this_ring();
  const std::uint64_t s = r.seq.load(std::memory_order_relaxed);
  r.ev[s & kRingMask] = {now_ns(), flightfmt::pack(type, payload)};
  // Release: a dump thread that reads seq sees the event bytes.
  r.seq.store(s + 1, std::memory_order_release);
}

void set_thread_name(const char* name) {
  Ring& r = this_ring();
  std::strncpy(r.name, name, sizeof r.name - 1);
  r.name[sizeof r.name - 1] = '\0';
}

void set_dump_path(const char* path) {
  g_path_from_env_checked.store(true);  // explicit path beats the env
  if (path != nullptr && path[0] != '\0' && std::strlen(path) < kPathMax) {
    std::strncpy(g_path, path, kPathMax - 1);
    g_path[kPathMax - 1] = '\0';
  }
}

const char* dump_path() {
  init_path_from_env();
  return g_path;
}

bool dump(const char* path, std::int32_t reason) {
  return dump_impl(path, reason, /*with_metrics=*/true);
}

bool dump_default(std::int32_t reason) {
  return dump_impl(dump_path(), reason, /*with_metrics=*/true);
}

void install_crash_handlers() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  init_path_from_env();
  install_action(SIGSEGV, crash_handler, &g_old.segv);
  install_action(SIGBUS, crash_handler, &g_old.bus);
  install_action(SIGFPE, crash_handler, &g_old.fpe);
  install_action(SIGABRT, crash_handler, &g_old.abrt);
  install_action(SIGUSR1, usr1_handler, nullptr);
}

void install_job_signal_handlers() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  init_path_from_env();
  install_action(SIGINT, job_signal_handler, nullptr);
  install_action(SIGTERM, job_signal_handler, nullptr);
}

bool stop_requested() { return g_stop.load(std::memory_order_acquire); }
void request_stop() { g_stop.store(true, std::memory_order_release); }
void reset_stop() { g_stop.store(false, std::memory_order_release); }

void clear() {
  const int nr = std::min(g_nrings.load(std::memory_order_acquire),
                          kMaxRings);
  for (int i = 0; i < nr; ++i) {
    if (Ring* r = g_rings[i].load(std::memory_order_acquire)) {
      r->seq.store(0, std::memory_order_release);
    }
  }
}

}  // namespace flight
}  // namespace on
}  // namespace gep::obs

#endif  // GEP_OBS
