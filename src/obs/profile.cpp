#include "obs/profile.hpp"

#if GEP_OBS

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <sstream>

#include "obs/hw_counters.hpp"

namespace gep::obs {
inline namespace on {

namespace {

// A..D map to slots 0..3; every other kind byte shares the overflow
// slot so free-form spans don't corrupt the typed families.
constexpr int kKinds = 5;

int kind_slot(char k) {
  return (k >= 'A' && k <= 'D') ? k - 'A' : kKinds - 1;
}

struct alignas(64) KindAccum {
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> flops{0};
  std::atomic<std::uint64_t> cycles{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> l1d{0};
  std::atomic<std::uint64_t> llc{0};
  std::atomic<std::uint64_t> counted{0};  // samples with a valid HwSample
};

struct SamplerState {
  std::atomic<std::uint32_t> period{0};  // 0 = off
  KindAccum kinds[kKinds];
};

SamplerState& sampler() {
  static SamplerState* s = new SamplerState();  // leaked: see Registry
  return *s;
}

// Thread-local HwCounters, opened lazily on the first sampled leaf.
HwCounters& thread_hw() {
  thread_local HwCounters hw;
  return hw;
}

thread_local std::uint32_t t_leaf_tick = 0;
thread_local bool t_hw_running = false;

}  // namespace

// --- LeafSampler -----------------------------------------------------------

void LeafSampler::enable(std::uint32_t every_n) {
  sampler().period.store(every_n, std::memory_order_relaxed);
}

bool LeafSampler::enabled() {
  return sampler().period.load(std::memory_order_relaxed) != 0;
}

std::uint32_t LeafSampler::period() {
  return sampler().period.load(std::memory_order_relaxed);
}

void LeafSampler::enable_from_env() {
  const char* s = std::getenv("GEP_OBS_PROFILE_SAMPLE");
  if (s == nullptr) return;
  const long n = std::strtol(s, nullptr, 10);
  if (n > 0) enable(static_cast<std::uint32_t>(n));
}

std::vector<RooflinePoint> LeafSampler::snapshot() {
  std::vector<RooflinePoint> out;
  SamplerState& st = sampler();
  for (int i = 0; i < kKinds; ++i) {
    const KindAccum& a = st.kinds[i];
    const std::uint64_t n = a.samples.load(std::memory_order_relaxed);
    if (n == 0) continue;
    RooflinePoint p;
    p.kind = i < 4 ? static_cast<char>('A' + i) : '?';
    p.samples = n;
    p.flops = a.flops.load(std::memory_order_relaxed);
    p.cycles = a.cycles.load(std::memory_order_relaxed);
    p.instructions = a.instructions.load(std::memory_order_relaxed);
    p.l1d_misses = a.l1d.load(std::memory_order_relaxed);
    p.llc_misses = a.llc.load(std::memory_order_relaxed);
    const bool counted = a.counted.load(std::memory_order_relaxed) > 0;
    p.has_cycles = counted && p.cycles > 0;
    p.has_instructions = counted && p.instructions > 0;
    p.has_l1d = counted && p.l1d_misses > 0;
    p.has_llc = counted && p.llc_misses > 0;
    out.push_back(p);
  }
  return out;
}

void LeafSampler::reset() {
  SamplerState& st = sampler();
  for (KindAccum& a : st.kinds) {
    a.samples.store(0, std::memory_order_relaxed);
    a.flops.store(0, std::memory_order_relaxed);
    a.cycles.store(0, std::memory_order_relaxed);
    a.instructions.store(0, std::memory_order_relaxed);
    a.l1d.store(0, std::memory_order_relaxed);
    a.llc.store(0, std::memory_order_relaxed);
    a.counted.store(0, std::memory_order_relaxed);
  }
}

ScopedLeafSample::ScopedLeafSample(char kind, long long m) {
  const std::uint32_t n = sampler().period.load(std::memory_order_relaxed);
  if (n == 0) return;
  if (++t_leaf_tick % n != 0) return;
  kind_ = kind;
  m_ = static_cast<std::uint64_t>(m);
  HwCounters& hw = thread_hw();
  if (hw.available() && !t_hw_running) {
    hw.start();
    t_hw_running = true;
  }
  on_ = true;
}

ScopedLeafSample::~ScopedLeafSample() {
  if (!on_) return;
  KindAccum& a = sampler().kinds[kind_slot(kind_)];
  a.samples.fetch_add(1, std::memory_order_relaxed);
  a.flops.fetch_add(2 * m_ * m_ * m_, std::memory_order_relaxed);
  if (t_hw_running) {
    HwSample s = thread_hw().stop();
    t_hw_running = false;
    if (s.valid) {
      a.counted.fetch_add(1, std::memory_order_relaxed);
      if (s.has_cycles)
        a.cycles.fetch_add(s.cycles, std::memory_order_relaxed);
      if (s.has_instructions)
        a.instructions.fetch_add(s.instructions, std::memory_order_relaxed);
      if (s.has_l1d)
        a.l1d.fetch_add(s.l1d_misses, std::memory_order_relaxed);
      if (s.has_llc)
        a.llc.fetch_add(s.llc_misses, std::memory_order_relaxed);
    }
  }
}

// --- Profile aggregation ---------------------------------------------------

namespace {

struct OpenFrame {
  TraceEvent e;
  std::uint64_t children_ns = 0;
  std::size_t path_len = 0;  // length of the folded path up to this frame
};

bool contains(const TraceEvent& parent, const TraceEvent& child) {
  return parent.t0_ns <= child.t0_ns && child.t1_ns <= parent.t1_ns &&
         parent.depth < child.depth;
}

}  // namespace

Profile Profile::from_traces(const std::vector<ThreadTrace>& traces) {
  Profile p;

  struct Key {
    char kind;
    int depth;
    bool operator<(const Key& o) const {
      return depth != o.depth ? depth < o.depth : kind < o.kind;
    }
  };
  struct Acc {
    std::uint64_t calls = 0, total = 0, self = 0, m_sum = 0;
  };
  std::map<Key, Acc> acc;
  std::map<std::string, std::uint64_t> folded;

  std::uint64_t min_t0 = ~std::uint64_t{0}, max_t1 = 0;

  for (const ThreadTrace& tt : traces) {
    p.dropped_ += tt.dropped;
    if (tt.events.empty()) continue;

    // Top-down interval sweep: sort by start time (parents first at
    // ties — depth rises along a nesting chain), keep the stack of
    // enclosing spans, finalize a frame when the next span escapes it.
    std::vector<TraceEvent> ev = tt.events;
    std::sort(ev.begin(), ev.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                if (a.depth != b.depth) return a.depth < b.depth;
                return a.t1_ns > b.t1_ns;
              });

    ThreadProfile th;
    th.tid = tt.tid;

    std::vector<OpenFrame> stack;
    std::string path = "t" + std::to_string(tt.tid);
    char frame[48];

    auto finalize = [&](const OpenFrame& f) {
      const std::uint64_t dur = f.e.t1_ns - f.e.t0_ns;
      const std::uint64_t self =
          dur > f.children_ns ? dur - f.children_ns : 0;
      Acc& a = acc[{f.e.kind, f.e.depth}];
      ++a.calls;
      a.total += dur;
      a.self += self;
      a.m_sum += f.e.m;
      if (self > 0) folded[path] += self;
      if (stack.empty()) th.busy_ns += dur;  // root-level span
      path.resize(f.path_len);
    };

    for (const TraceEvent& e : ev) {
      min_t0 = std::min(min_t0, e.t0_ns);
      max_t1 = std::max(max_t1, e.t1_ns);
      while (!stack.empty() && !contains(stack.back().e, e)) {
        OpenFrame f = stack.back();
        stack.pop_back();
        finalize(f);
      }
      if (!stack.empty())
        stack.back().children_ns += e.t1_ns - e.t0_ns;
      OpenFrame f;
      f.e = e;
      f.path_len = path.size();
      std::snprintf(frame, sizeof frame, ";%c m=%llu", e.kind,
                    static_cast<unsigned long long>(e.m));
      path += frame;
      stack.push_back(f);
    }
    while (!stack.empty()) {
      OpenFrame f = stack.back();
      stack.pop_back();
      finalize(f);
    }

    p.attributed_ns_ += th.busy_ns;
    p.threads_.push_back(th);
  }

  p.wall_ns_ = max_t1 > min_t0 ? max_t1 - min_t0 : 0;
  for (ThreadProfile& th : p.threads_)
    th.busy_fraction =
        p.wall_ns_ > 0
            ? static_cast<double>(th.busy_ns) / static_cast<double>(p.wall_ns_)
            : 0.0;

  p.entries_.reserve(acc.size());
  for (const auto& [k, a] : acc) {
    ProfileEntry e;
    e.kind = k.kind;
    e.depth = k.depth;
    e.calls = a.calls;
    e.total_ns = a.total;
    e.self_ns = a.self;
    e.mean_m = a.calls > 0
                   ? static_cast<double>(a.m_sum) / static_cast<double>(a.calls)
                   : 0.0;
    p.entries_.push_back(e);
  }

  p.folded_.assign(folded.begin(), folded.end());
  return p;
}

Profile Profile::collect() {
  Profile p = from_traces(Tracer::snapshot());
  p.roofline_ = LeafSampler::snapshot();
  return p;
}

double Profile::coverage() const {
  if (wall_ns_ == 0 || threads_.empty()) return 0.0;
  return static_cast<double>(attributed_ns_) /
         (static_cast<double>(wall_ns_) *
          static_cast<double>(threads_.size()));
}

double Profile::imbalance() const {
  if (threads_.empty()) return 1.0;
  std::uint64_t max_busy = 0, sum_busy = 0;
  for (const ThreadProfile& t : threads_) {
    max_busy = std::max(max_busy, t.busy_ns);
    sum_busy += t.busy_ns;
  }
  const double mean =
      static_cast<double>(sum_busy) / static_cast<double>(threads_.size());
  return mean > 0 ? static_cast<double>(max_busy) / mean : 1.0;
}

void Profile::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("wall_ns", wall_ns_);
  w.kv("attributed_ns", attributed_ns_);
  w.kv("coverage", coverage());
  w.kv("imbalance", imbalance());
  w.kv("dropped", dropped_);
  w.key("entries");
  w.begin_array();
  for (const ProfileEntry& e : entries_) {
    w.begin_object();
    char k[2] = {e.kind, 0};
    w.kv("kind", k);
    w.kv("depth", e.depth);
    w.kv("calls", e.calls);
    w.kv("total_ns", e.total_ns);
    w.kv("self_ns", e.self_ns);
    w.kv("mean_m", e.mean_m);
    w.end_object();
  }
  w.end_array();
  w.key("threads");
  w.begin_array();
  for (const ThreadProfile& t : threads_) {
    w.begin_object();
    w.kv("tid", t.tid);
    w.kv("busy_ns", t.busy_ns);
    w.kv("busy_fraction", t.busy_fraction);
    w.end_object();
  }
  w.end_array();
  if (!roofline_.empty()) {
    w.key("roofline");
    w.begin_array();
    for (const RooflinePoint& r : roofline_) {
      w.begin_object();
      char k[2] = {r.kind, 0};
      w.kv("kind", k);
      w.kv("samples", r.samples);
      w.kv("flops", r.flops);
      if (r.has_cycles) w.kv("cycles", r.cycles);
      if (r.has_instructions) w.kv("instructions", r.instructions);
      if (r.has_l1d) w.kv("l1d_misses", r.l1d_misses);
      if (r.has_llc) w.kv("llc_misses", r.llc_misses);
      // Arithmetic intensity against LLC traffic, assuming 64 B lines
      // (universal on the x86-64 hosts this targets).
      if (r.has_llc && r.llc_misses > 0)
        w.kv("flops_per_llc_byte",
             static_cast<double>(r.flops) /
                 (64.0 * static_cast<double>(r.llc_misses)));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

std::string Profile::json() const {
  std::ostringstream os;
  JsonWriter w(os);
  write_json(w);
  return os.str();
}

std::string Profile::folded(const std::string& prefix) const {
  std::string out;
  for (const auto& [path, ns] : folded_) {
    if (!prefix.empty()) {
      out += prefix;
      out += ';';
    }
    out += path;
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

}  // namespace on
}  // namespace gep::obs

#endif  // GEP_OBS
