// I/O-bound accountant: the paper's predicted block-transfer curve.
//
// I-GEP performs Θ(n³/(B√M)) block transfers (Theorem 2.1 / the Fig. 7
// analysis; Kwasniewski et al. give the matching per-run lower-bound
// formulation). This header evaluates that curve for a concrete run so
// the OOC benches can report measured-vs-predicted: the PageCache's
// page_ins + page_outs divided by the prediction. The ratio's absolute
// value carries the (unknown) constant of the Θ; what the gate checks
// is that it is STABLE — across problem sizes in one bench run (CI
// bench-smoke, ±25%) and across commits (gep_bench_diff, loose).
//
// Plain math on both builds — no registry dependency, no on/off split.
#pragma once

#include <cmath>
#include <cstdint>

namespace gep::obs {

struct IoBoundPrediction {
  double cube_transfers = 0.0;  // n^3 / (B_elems * sqrt(M_elems))
  double scan_transfers = 0.0;  // compulsory n^2-scale traffic
  double total() const { return cube_transfers + scan_transfers; }
};

// Predicted block transfers for a typed I-GEP pass over one n x n
// operand: the recursive term plus the compulsory scan traffic (load
// every page once, write every dirty page back — 2 n²/B — plus one
// re-read of the working set on the way out, rounded to 3 n²/B; the
// constant is absorbed by the ratio's calibration role).
inline IoBoundPrediction igep_io_prediction(double n, double mem_bytes,
                                            double block_bytes,
                                            double elem_bytes = 8.0) {
  IoBoundPrediction p;
  if (n <= 0 || mem_bytes <= 0 || block_bytes <= 0 || elem_bytes <= 0) {
    return p;
  }
  const double b_elems = block_bytes / elem_bytes;
  const double m_elems = mem_bytes / elem_bytes;
  p.cube_transfers = n * n * n / (b_elems * std::sqrt(m_elems));
  p.scan_transfers = 3.0 * n * n / b_elems;
  return p;
}

// measured / predicted; 0 when the prediction is degenerate.
inline double io_bound_ratio(std::uint64_t measured_transfers,
                             const IoBoundPrediction& p) {
  const double pred = p.total();
  return pred > 0 ? static_cast<double>(measured_transfers) / pred : 0.0;
}

}  // namespace gep::obs
