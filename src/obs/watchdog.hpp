// Stall watchdog: heartbeat sources plus a monitor thread.
//
// Long OOC jobs hang in well-known places — an async I/O worker stuck
// behind a latency burst, a work-stealing worker wedged in a leaf, a
// recursion driver blocked on a pin. Each of those loops registers a
// heartbeat source and beats it every iteration (a relaxed clock store,
// and nothing at all while the watchdog is not running). The monitor
// thread polls at ~threshold/4 and escalates a source whose age exceeds
// the threshold while active:
//
//   1st detection  -> obs counter `obs.watchdog.stalls` + stderr warning
//   still stalled  -> flight-recorder dump (`obs.watchdog.dumps`), once
//                     per incident
//
// so a stall is reported within 1.25x the threshold and dumped within
// 1.5x. A source that beats again closes its incident. Sources mark
// themselves idle while legitimately waiting for work (a parked worker
// never false-positives).
//
// The watchdog is off by default; benches start it via $GEP_WATCHDOG_MS
// (start_from_env), tests explicitly. GEP_OBS=0 compiles everything to
// inert stubs.
#pragma once

#ifndef GEP_OBS
#define GEP_OBS 1
#endif

#include <cstdint>
#include <string>

namespace gep::obs {

// Queryable stall state (same shape in both builds) so the stat server
// and tests read health directly instead of parsing stderr.
//   Healthy   — watchdog off, or running with no incident ever recorded
//   Stalled   — at least one active source has an open incident;
//               source/age_ms describe the worst (oldest-beat) offender
//   Recovered — no open incident, but stalls were detected earlier
struct WatchdogStatus {
  enum class State { Healthy, Stalled, Recovered };
  State state = State::Healthy;
  std::string source;     // worst stalled source's name (Stalled only)
  double age_ms = 0.0;    // ms since that source's last beat (Stalled only)
  std::uint64_t stalls = 0;
  std::uint64_t dumps = 0;

  bool healthy() const { return state != State::Stalled; }
};

#if GEP_OBS

inline namespace on {

class Watchdog {
 public:
  struct Options {
    double threshold_ms = 1000.0;  // no-beat age that counts as a stall
    double poll_ms = 0.0;          // 0: threshold/4 (clamped to >= 5ms)
    bool dump_on_stall = true;     // escalate to a flight-recorder dump
  };

  // Starts the monitor thread. Returns false if already running.
  static bool start(const Options& opts);
  // Reads $GEP_WATCHDOG_MS; <= 0 or unset leaves the watchdog off.
  static bool start_from_env();
  static void stop();
  static bool running();

  static std::uint64_t stalls_detected();
  static std::uint64_t dumps_written();

  // Current stall state, computed from the source table (not from the
  // monitor's last poll — a query between polls still sees an open
  // incident). Safe to call from any thread, including while stopped.
  static WatchdogStatus status();

  // --- heartbeat sources ---------------------------------------------------
  // Registration is mutex-protected and rare (thread/pool startup); beat
  // and set_idle are single relaxed stores. Ids are recycled after
  // unregister. Returns -1 when the fixed table is full.
  static int register_source(const char* name);
  static void unregister_source(int id);
  static void beat(int id);          // marks the source active
  static void set_idle(int id);      // waiting for work: exempt from checks

  // Thread-attached beats: loops that run work for a registered source
  // (worker bodies, recursion leaves) bind the source to their thread
  // once and then beat it with no id plumbing. No-ops for unattached
  // threads, and a single relaxed load while the watchdog is stopped.
  static void attach_thread(int id);
  static void detach_thread();
  static int attached_thread();  // -1 when none
  static void beat_this_thread();
};

// RAII activity window for the typed-recursion driver: registers a
// source, attaches it to this thread and beats once; detaches and
// unregisters on scope exit (so a finished driver can't go "stale
// active" and trip the monitor).
class WatchdogThreadSource {
 public:
  explicit WatchdogThreadSource(const char* name) {
    prev_ = Watchdog::attached_thread();
    id_ = Watchdog::register_source(name);
    Watchdog::attach_thread(id_);
    Watchdog::beat(id_);
  }
  ~WatchdogThreadSource() {
    // The driver's work is done: go idle BEFORE detaching/unregistering
    // so a monitor poll landing in this window cannot see an active
    // source whose last beat is the run's final leaf (a stall_detect
    // false positive during teardown).
    Watchdog::set_idle(id_);
    Watchdog::attach_thread(prev_);
    Watchdog::unregister_source(id_);
  }
  WatchdogThreadSource(const WatchdogThreadSource&) = delete;
  WatchdogThreadSource& operator=(const WatchdogThreadSource&) = delete;

  int id() const { return id_; }

 private:
  int id_ = -1;
  int prev_ = -1;
};

}  // namespace on

#else  // GEP_OBS == 0

inline namespace off {

class Watchdog {
 public:
  struct Options {
    double threshold_ms = 1000.0;
    double poll_ms = 0.0;
    bool dump_on_stall = true;
  };
  static bool start(const Options&) { return false; }
  static bool start_from_env() { return false; }
  static void stop() {}
  static bool running() { return false; }
  static std::uint64_t stalls_detected() { return 0; }
  static std::uint64_t dumps_written() { return 0; }
  static WatchdogStatus status() { return {}; }
  static int register_source(const char*) { return -1; }
  static void unregister_source(int) {}
  static void beat(int) {}
  static void set_idle(int) {}
  static void attach_thread(int) {}
  static void detach_thread() {}
  static int attached_thread() { return -1; }
  static void beat_this_thread() {}
};

class WatchdogThreadSource {
 public:
  explicit WatchdogThreadSource(const char*) {}
  int id() const { return -1; }
};

}  // namespace off

#endif  // GEP_OBS

}  // namespace gep::obs
