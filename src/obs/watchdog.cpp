#include "obs/watchdog.hpp"

#if GEP_OBS

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"

namespace gep::obs {
inline namespace on {
namespace {

constexpr int kMaxSources = 64;

// Incident state machine per source: fresh beats close the incident.
enum : int { kIncidentNone = 0, kIncidentWarned = 1, kIncidentDumped = 2 };

struct Source {
  std::atomic<bool> used{false};
  std::atomic<bool> idle{true};
  std::atomic<std::uint64_t> last_beat_ns{0};
  std::atomic<int> incident{kIncidentNone};
  char name[24] = {};
};

struct State {
  Source sources[kMaxSources];
  std::mutex reg_mu;  // registration / unregistration only

  std::mutex run_mu;
  std::condition_variable run_cv;
  std::thread monitor;
  bool running = false;
  bool stop = false;
  Watchdog::Options opts;

  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> dumps{0};
  // One relaxed load on every beat path while stopped.
  std::atomic<bool> enabled{false};
};

State& state() {
  static State* s = new State();  // leaked: outlives late-exiting threads
  return *s;
}

obs::Counter& obs_stalls() {
  static obs::Counter c = obs::counter("obs.watchdog.stalls");
  return c;
}
obs::Counter& obs_dumps() {
  static obs::Counter c = obs::counter("obs.watchdog.dumps");
  return c;
}

thread_local int t_source = -1;

void monitor_loop() {
  State& s = state();
  const double threshold_ms = s.opts.threshold_ms;
  const std::uint64_t threshold_ns =
      static_cast<std::uint64_t>(threshold_ms * 1e6);
  double poll_ms = s.opts.poll_ms > 0 ? s.opts.poll_ms : threshold_ms / 4.0;
  if (poll_ms < 5.0) poll_ms = 5.0;
  std::unique_lock<std::mutex> lock(s.run_mu);
  while (!s.stop) {
    s.run_cv.wait_for(lock, std::chrono::duration<double, std::milli>(
                                poll_ms));
    if (s.stop) break;
    const std::uint64_t now = flight::now_ns();
    for (int i = 0; i < kMaxSources; ++i) {
      Source& src = s.sources[i];
      if (!src.used.load(std::memory_order_acquire)) continue;
      if (src.idle.load(std::memory_order_relaxed)) continue;
      const std::uint64_t beat =
          src.last_beat_ns.load(std::memory_order_relaxed);
      if (beat == 0) continue;
      const std::uint64_t age = now > beat ? now - beat : 0;
      const int inc = src.incident.load(std::memory_order_relaxed);
      if (age <= threshold_ns) {
        if (inc != kIncidentNone) {
          src.incident.store(kIncidentNone, std::memory_order_relaxed);
          std::fprintf(stderr,
                       "[gep-watchdog] source '%s' recovered after %.0f ms\n",
                       src.name, static_cast<double>(age) / 1e6);
        }
        continue;
      }
      if (inc == kIncidentNone) {
        src.incident.store(kIncidentWarned, std::memory_order_relaxed);
        s.stalls.fetch_add(1, std::memory_order_relaxed);
        obs_stalls().inc();
        flight::record(flightfmt::kStallDetect,
                       static_cast<std::uint64_t>(i));
        std::fprintf(stderr,
                     "[gep-watchdog] source '%s' has made no progress for "
                     "%.0f ms (threshold %.0f ms)\n",
                     src.name, static_cast<double>(age) / 1e6, threshold_ms);
      } else if (inc == kIncidentWarned && s.opts.dump_on_stall) {
        src.incident.store(kIncidentDumped, std::memory_order_relaxed);
        s.dumps.fetch_add(1, std::memory_order_relaxed);
        obs_dumps().inc();
        const char* path = flight::dump_path();
        const bool ok = flight::dump(path, flightfmt::kReasonWatchdog);
        std::fprintf(stderr,
                     "[gep-watchdog] source '%s' still stalled; flight "
                     "dump %s -> %s\n",
                     src.name, ok ? "written" : "FAILED", path);
      }
    }
  }
}

}  // namespace

bool Watchdog::start(const Options& opts) {
  State& s = state();
  std::unique_lock<std::mutex> lock(s.run_mu);
  if (s.running) return false;
  s.opts = opts;
  s.stop = false;
  s.running = true;
  s.enabled.store(true, std::memory_order_release);
  // Fresh run: sources keep their registration but start a new incident
  // history and a fresh beat baseline (a source that last beat hours ago
  // is not retroactively stalled).
  const std::uint64_t now = flight::now_ns();
  for (Source& src : s.sources) {
    src.incident.store(kIncidentNone, std::memory_order_relaxed);
    if (src.used.load(std::memory_order_acquire) &&
        !src.idle.load(std::memory_order_relaxed)) {
      src.last_beat_ns.store(now, std::memory_order_relaxed);
    }
  }
  s.monitor = std::thread(monitor_loop);
  return true;
}

bool Watchdog::start_from_env() {
  const char* v = std::getenv("GEP_WATCHDOG_MS");
  if (v == nullptr) return false;
  const double ms = std::atof(v);
  if (ms <= 0) return false;
  Options o;
  o.threshold_ms = ms;
  return start(o);
}

void Watchdog::stop() {
  State& s = state();
  std::thread joinme;
  {
    std::unique_lock<std::mutex> lock(s.run_mu);
    if (!s.running) return;
    s.stop = true;
    s.enabled.store(false, std::memory_order_release);
    s.run_cv.notify_all();
    joinme = std::move(s.monitor);
    s.running = false;
  }
  joinme.join();
}

bool Watchdog::running() {
  State& s = state();
  std::unique_lock<std::mutex> lock(s.run_mu);
  return s.running;
}

std::uint64_t Watchdog::stalls_detected() {
  return state().stalls.load(std::memory_order_relaxed);
}
std::uint64_t Watchdog::dumps_written() {
  return state().dumps.load(std::memory_order_relaxed);
}

WatchdogStatus Watchdog::status() {
  State& s = state();
  WatchdogStatus st;
  st.stalls = s.stalls.load(std::memory_order_relaxed);
  st.dumps = s.dumps.load(std::memory_order_relaxed);
  // Scan the source table for open incidents; report the one with the
  // oldest beat. Same lock-free reads (used -> idle -> incident) the
  // monitor uses, so a query between polls still sees the incident the
  // monitor opened — and a source that beat since (incident closed at
  // the next poll, but already below threshold now) is reported stalled
  // only until that poll, which matches what the operator cares about.
  const std::uint64_t now = flight::now_ns();
  std::uint64_t worst_age = 0;
  for (int i = 0; i < kMaxSources; ++i) {
    Source& src = s.sources[i];
    if (!src.used.load(std::memory_order_acquire)) continue;
    if (src.idle.load(std::memory_order_relaxed)) continue;
    if (src.incident.load(std::memory_order_relaxed) == kIncidentNone)
      continue;
    const std::uint64_t beat = src.last_beat_ns.load(std::memory_order_relaxed);
    const std::uint64_t age = now > beat ? now - beat : 0;
    if (st.state != WatchdogStatus::State::Stalled || age > worst_age) {
      st.state = WatchdogStatus::State::Stalled;
      st.source = src.name;
      st.age_ms = static_cast<double>(age) / 1e6;
      worst_age = age;
    }
  }
  if (st.state != WatchdogStatus::State::Stalled && st.stalls > 0) {
    st.state = WatchdogStatus::State::Recovered;
  }
  return st;
}

int Watchdog::register_source(const char* name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.reg_mu);
  for (int i = 0; i < kMaxSources; ++i) {
    Source& src = s.sources[i];
    if (src.used.load(std::memory_order_relaxed)) continue;
    std::strncpy(src.name, name, sizeof src.name - 1);
    src.name[sizeof src.name - 1] = '\0';
    src.idle.store(true, std::memory_order_relaxed);
    src.incident.store(kIncidentNone, std::memory_order_relaxed);
    src.last_beat_ns.store(flight::now_ns(), std::memory_order_relaxed);
    src.used.store(true, std::memory_order_release);
    return i;
  }
  return -1;
}

void Watchdog::unregister_source(int id) {
  if (id < 0 || id >= kMaxSources) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.reg_mu);
  Source& src = s.sources[id];
  // The monitor reads used -> idle -> last_beat without taking reg_mu,
  // so clear in the order that keeps every interleaving benign: idle
  // first (idle sources are exempt from checks), then a fresh beat (a
  // poll that still reads idle == false sees age ~ 0, not the stale
  // timestamp of the driver's last leaf), and used last. The previous
  // order (used, then idle) left a window where a finished driver's
  // source looked active-with-stale-beat and tripped stall_detect
  // during teardown.
  src.idle.store(true, std::memory_order_relaxed);
  src.last_beat_ns.store(flight::now_ns(), std::memory_order_relaxed);
  src.incident.store(kIncidentNone, std::memory_order_relaxed);
  src.used.store(false, std::memory_order_release);
}

void Watchdog::beat(int id) {
  if (id < 0 || id >= kMaxSources) return;
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  Source& src = s.sources[id];
  src.last_beat_ns.store(flight::now_ns(), std::memory_order_relaxed);
  src.idle.store(false, std::memory_order_relaxed);
}

void Watchdog::set_idle(int id) {
  if (id < 0 || id >= kMaxSources) return;
  State& s = state();
  s.sources[id].idle.store(true, std::memory_order_relaxed);
}

void Watchdog::attach_thread(int id) { t_source = id; }
void Watchdog::detach_thread() { t_source = -1; }
int Watchdog::attached_thread() { return t_source; }

void Watchdog::beat_this_thread() {
  if (t_source < 0) return;
  beat(t_source);
}

}  // namespace on
}  // namespace gep::obs

#endif  // GEP_OBS
