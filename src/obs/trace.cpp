#include "obs/trace.hpp"

#if GEP_OBS

#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace gep::obs {
inline namespace on {

namespace {

// Hard cap per thread: ~24 MB of events. Overflow is counted, not stored,
// so a runaway trace degrades gracefully instead of OOMing the process.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct ThreadBuf {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  int tid = 0;
};

struct Buffers {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> all;
  std::uint64_t base_ns = 0;
};

Buffers& buffers() {
  static Buffers* b = new Buffers();  // leaked: see Registry::global()
  return *b;
}

ThreadBuf& this_thread_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    Buffers& g = buffers();
    std::lock_guard<std::mutex> lock(g.mu);
    b->tid = static_cast<int>(g.all.size());
    g.all.push_back(b);  // global list keeps it alive past thread exit
    return b;
  }();
  return *buf;
}

}  // namespace

std::atomic<bool>& Tracer::active_flag() {
  static std::atomic<bool> f{false};
  return f;
}

std::uint64_t Tracer::base_ns() { return buffers().base_ns; }

void Tracer::start() {
  Buffers& g = buffers();
  {
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.base_ns == 0) g.base_ns = now_ns();
  }
  active_flag().store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_flag().store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  Buffers& g = buffers();
  std::lock_guard<std::mutex> lock(g.mu);
  for (auto& b : g.all) {
    b->events.clear();
    b->dropped = 0;
  }
  g.base_ns = 0;
}

std::size_t Tracer::event_count() {
  Buffers& g = buffers();
  std::lock_guard<std::mutex> lock(g.mu);
  std::size_t n = 0;
  for (const auto& b : g.all) n += b->events.size();
  return n;
}

std::uint64_t Tracer::dropped_count() {
  Buffers& g = buffers();
  std::lock_guard<std::mutex> lock(g.mu);
  std::uint64_t n = 0;
  for (const auto& b : g.all) n += b->dropped;
  return n;
}

std::vector<ThreadTrace> Tracer::snapshot() {
  Buffers& g = buffers();
  std::lock_guard<std::mutex> lock(g.mu);
  std::vector<ThreadTrace> out;
  out.reserve(g.all.size());
  for (const auto& b : g.all) {
    if (b->events.empty() && b->dropped == 0) continue;
    ThreadTrace t;
    t.tid = b->tid;
    t.dropped = b->dropped;
    t.events = b->events;
    out.push_back(std::move(t));
  }
  return out;
}

void Tracer::record(const TraceEvent& e) {
  ThreadBuf& b = this_thread_buf();
  if (b.events.size() >= kMaxEventsPerThread) {
    ++b.dropped;
    return;
  }
  b.events.push_back(e);
}

const char* Tracer::env_path() { return std::getenv("GEP_OBS_TRACE"); }

bool Tracer::write_chrome_trace(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  Buffers& g = buffers();
  std::lock_guard<std::mutex> lock(g.mu);
  for (const auto& b : g.all) {
    for (const TraceEvent& e : b->events) {
      w.begin_object();
      w.key("name");
      char name[2] = {e.kind, 0};
      w.value(name);
      w.kv("cat", "igep");
      w.kv("ph", "X");  // complete event: ts + dur
      w.kv("pid", 1);
      w.kv("tid", b->tid);
      w.kv("ts", static_cast<double>(e.t0_ns) / 1e3);  // microseconds
      w.kv("dur", static_cast<double>(e.t1_ns - e.t0_ns) / 1e3);
      w.key("args");
      w.begin_object();
      w.kv("depth", static_cast<int>(e.depth));
      w.kv("i0", static_cast<std::uint64_t>(e.i0));
      w.kv("j0", static_cast<std::uint64_t>(e.j0));
      w.kv("k0", static_cast<std::uint64_t>(e.k0));
      w.kv("m", static_cast<std::uint64_t>(e.m));
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  os << '\n';
  return static_cast<bool>(os);
}

}  // namespace on
}  // namespace gep::obs

#endif  // GEP_OBS
