// Embedded HTTP/1.1 stat server: the observability layer over the wire.
//
// Everything PRs 1/5/6 built — the sharded registry, per-(kind,depth)
// profiles, the flight recorder, the stall watchdog, progress/ETA and
// the predicted-I/O accountant — was reachable only via SIGUSR1 dumps
// and post-run JSON. This server makes the same state scrapeable from a
// *live* job:
//
//   GET /metrics   Prometheus text exposition (obs/expo.hpp): counters,
//                  gauges, histograms as cumulative buckets, plus
//                  gep_build_info{sha,dispatch_level,obs}
//   GET /healthz   200/503 from Watchdog::status() + the PageCache
//                  async-degraded gauge; JSON body with the detail
//   GET /progress  JSON from the published ProgressMeter: fraction,
//                  ETA, updates/s (inactive -> {"active":false})
//   GET /profile   Profile::collect().json(): per-(kind,depth) rows
//                  over the live Tracer buffers
//   GET /io        measured vs igep_io_prediction transfers + ratio for
//                  the published OOC leg
//   GET /flight?dump=1   trigger a flight-recorder dump (same path as
//                  SIGUSR1), JSON {dumped,path}
//   GET /          plain-text endpoint index
//
// Design: one listener thread with a poll() multiplexer — no
// third-party deps, no thread per connection. Responses are built
// whole, written non-blockingly, Connection: close. Slow or stuck
// clients are bounded by a per-connection deadline; requests are capped
// at 8 KiB (413-free: over-cap is a plain 400). Only GET/HEAD are
// served (405 otherwise). Binds 127.0.0.1 only: this is an operator
// loopback/scrape port, not a public listener.
//
// Opt-in: $GEP_STAT_PORT=<port> (start_from_env, called from the bench
// banner and the solver apps) or StatServer::start(port). Port 0 binds
// an ephemeral port; a busy port falls back to the next 15 ports and
// then ephemeral, so two jobs on one host never fight over the default.
// port() reports what was actually bound.
//
// GEP_OBS=0 compiles the whole API to inert stubs (start returns false,
// handle() reports the disabled build) — same inline-namespace scheme
// as the rest of obs/.
#pragma once

#ifndef GEP_OBS
#define GEP_OBS 1
#endif

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/io_model.hpp"
#include "obs/progress.hpp"

namespace gep::obs {

#if GEP_OBS

inline namespace on {

class StatServer {
 public:
  // Starts the listener thread. Returns false if already running or no
  // port in [port, port+15] ∪ {ephemeral} could be bound. port 0 binds
  // an ephemeral port directly.
  static bool start(int port);
  // Reads $GEP_STAT_PORT; unset, empty or negative leaves the server
  // off ("0" is valid: ephemeral).
  static bool start_from_env();
  static void stop();
  static bool running();
  // Actually-bound TCP port (after fallback), -1 while stopped.
  static int port();
  static std::uint64_t requests_served();

  // --- published state -----------------------------------------------------
  // Identity labels for gep_build_info. nullptr sha falls back to
  // $GEP_GIT_SHA / $GITHUB_SHA / "unknown". Callable before start().
  // (The dispatch level is injected by callers that link the SIMD layer
  // — gep_obs sits below gep_simd and cannot ask it directly.)
  static void set_build_info(const char* sha, const char* dispatch);

  // Publishes a meter for /progress. The meter must have had begin()
  // called and must outlive the publication (use ScopedStatProgress).
  static void set_progress(const ProgressMeter* m, const char* label);
  // Unpublishes only if `m` is still the published meter (nested legs
  // tearing down out of order can't clobber each other).
  static void clear_progress(const ProgressMeter* m);

  // Publishes the /io comparison: the closed-form prediction for the
  // running leg plus a thread-safe sampler of measured block transfers
  // (typically PageCacheStats page_ins+page_outs deltas).
  static void set_io_model(const IoBoundPrediction& predicted,
                           std::function<std::uint64_t()> measured);
  static void clear_io_model();

  // Routes one request target ("/metrics", "/flight?dump=1", ...) to a
  // response body, status and content type — the serve loop and the
  // golden-format tests share this path.
  static std::string handle(std::string_view target, int* status,
                            std::string* content_type);
};

}  // namespace on

#else  // GEP_OBS == 0

inline namespace off {

class StatServer {
 public:
  static bool start(int) { return false; }
  static bool start_from_env() { return false; }
  static void stop() {}
  static bool running() { return false; }
  static int port() { return -1; }
  static std::uint64_t requests_served() { return 0; }
  static void set_build_info(const char*, const char*) {}
  static void set_progress(const ProgressMeter*, const char*) {}
  static void clear_progress(const ProgressMeter*) {}
  static void set_io_model(const IoBoundPrediction&,
                           std::function<std::uint64_t()>) {}
  static void clear_io_model() {}
  static std::string handle(std::string_view, int* status,
                            std::string* content_type) {
    if (status != nullptr) *status = 503;
    if (content_type != nullptr) *content_type = "application/json";
    return "{\"error\":\"observability disabled (GEP_OBS=0)\"}";
  }
};

}  // namespace off

#endif  // GEP_OBS

// RAII publication of a leg's progress meter / io model — defined once
// for both builds (the off-build calls collapse into the stubs above).
class ScopedStatProgress {
 public:
  ScopedStatProgress(const ProgressMeter& m, const char* label) : m_(&m) {
    StatServer::set_progress(m_, label);
  }
  ~ScopedStatProgress() { StatServer::clear_progress(m_); }
  ScopedStatProgress(const ScopedStatProgress&) = delete;
  ScopedStatProgress& operator=(const ScopedStatProgress&) = delete;

 private:
  const ProgressMeter* m_;
};

class ScopedStatIoModel {
 public:
  ScopedStatIoModel(const IoBoundPrediction& predicted,
                    std::function<std::uint64_t()> measured) {
    StatServer::set_io_model(predicted, std::move(measured));
  }
  ~ScopedStatIoModel() { StatServer::clear_io_model(); }
  ScopedStatIoModel(const ScopedStatIoModel&) = delete;
  ScopedStatIoModel& operator=(const ScopedStatIoModel&) = delete;
};

}  // namespace gep::obs
