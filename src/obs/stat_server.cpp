#include "obs/stat_server.hpp"

#if GEP_OBS

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/expo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "obs/watchdog.hpp"

namespace gep::obs {
inline namespace on {
namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;
constexpr int kMaxConns = 32;
constexpr int kPortProbeSpan = 16;  // default port, then the next 15
constexpr auto kConnDeadline = std::chrono::seconds(5);
constexpr auto kPollTick = std::chrono::milliseconds(200);

struct Conn {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t written = 0;
  bool responding = false;  // request parsed, response being written
  std::chrono::steady_clock::time_point deadline;
};

struct Srv {
  // start/stop lifecycle (not taken by the serve loop).
  std::mutex run_mu;
  std::thread thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_flag{false};
  std::atomic<int> bound_port{-1};
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};

  std::atomic<std::uint64_t> requests{0};

  // Published state read by handle() on the serve thread.
  std::mutex hooks_mu;
  std::string sha;
  std::string dispatch;
  bool have_build_info = false;
  const ProgressMeter* progress = nullptr;
  std::string progress_label;
  bool io_active = false;
  IoBoundPrediction io_pred;
  std::function<std::uint64_t()> io_measured;
};

// Leaked (like the watchdog State): handle() stays callable from tests
// and late-exiting threads without destruction-order hazards.
Srv& srv() {
  static Srv* s = new Srv();
  return *s;
}

obs::Counter& obs_requests() {
  static obs::Counter c = obs::counter("obs.stat.requests");
  return c;
}
// The server's own request-handling latency: guarantees /metrics always
// carries at least one histogram with populated buckets on a live job.
obs::Histogram& obs_handle_ns() {
  static obs::Histogram h = obs::histogram("obs.stat.handle_ns");
  return h;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string make_response(int status, const std::string& ctype,
                          const std::string& body, bool head_only) {
  std::string r;
  r.reserve(body.size() + 160);
  r += "HTTP/1.1 ";
  r += std::to_string(status);
  r += ' ';
  r += status_text(status);
  r += "\r\nContent-Type: ";
  r += ctype;
  r += "\r\nContent-Length: ";
  r += std::to_string(body.size());
  if (status == 405) r += "\r\nAllow: GET, HEAD";
  r += "\r\nConnection: close\r\n\r\n";
  if (!head_only) r += body;
  return r;
}

// --- endpoint bodies -------------------------------------------------------

std::string metrics_body() {
  Srv& s = srv();
  expo::BuildInfo info;
  {
    std::lock_guard<std::mutex> lock(s.hooks_mu);
    if (s.have_build_info) {
      info.sha = s.sha;
      info.dispatch = s.dispatch;
    } else {
      info = expo::env_build_info();
    }
  }
  return expo::exposition(Registry::global().snapshot(), info);
}

const char* watchdog_state_name(WatchdogStatus::State st) {
  switch (st) {
    case WatchdogStatus::State::Stalled: return "stalled";
    case WatchdogStatus::State::Recovered: return "recovered";
    default: return "healthy";
  }
}

std::string healthz_body(int* status) {
  const WatchdogStatus ws = Watchdog::status();
  // PageCache mirrors its async-worker degraded flag into this gauge
  // (1.0 while degraded); reading it here keeps gep_obs below gep_extmem
  // in the layering.
  const bool degraded = obs::gauge("extmem.async.degraded").value() > 0.5;
  const bool ok = ws.healthy() && !degraded;
  *status = ok ? 200 : 503;
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("status", !ws.healthy() ? "stalled" : (degraded ? "degraded" : "ok"));
  w.key("watchdog");
  w.begin_object();
  w.kv("running", Watchdog::running());
  w.kv("state", watchdog_state_name(ws.state));
  if (ws.state == WatchdogStatus::State::Stalled) {
    w.kv("source", ws.source);
    w.kv("age_ms", ws.age_ms);
  }
  w.kv("stalls", ws.stalls);
  w.kv("dumps", ws.dumps);
  w.end_object();
  w.kv("async_degraded", degraded);
  w.end_object();
  return os.str();
}

std::string progress_body() {
  Srv& s = srv();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  {
    std::lock_guard<std::mutex> lock(s.hooks_mu);
    if (s.progress == nullptr) {
      w.kv("active", false);
    } else {
      const ProgressSample p = s.progress->sample();
      w.kv("active", true);
      w.kv("label", s.progress_label);
      w.kv("fraction", p.fraction);
      w.kv("elapsed_s", p.elapsed_s);
      w.kv("eta_s", p.eta_s);
      w.kv("gflops", p.gflops);
      w.kv("updates_done", p.updates_done);
      w.kv("updates_total", p.updates_total);
      w.kv("updates_per_s",
           p.elapsed_s > 0 ? p.updates_done / p.elapsed_s : 0.0);
    }
  }
  w.end_object();
  return os.str();
}

std::string io_body() {
  Srv& s = srv();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  {
    std::lock_guard<std::mutex> lock(s.hooks_mu);
    if (!s.io_active) {
      w.kv("active", false);
    } else {
      const std::uint64_t measured = s.io_measured ? s.io_measured() : 0;
      w.kv("active", true);
      w.kv("io_measured", measured);
      w.kv("io_predicted", s.io_pred.total());
      w.kv("cube_transfers", s.io_pred.cube_transfers);
      w.kv("scan_transfers", s.io_pred.scan_transfers);
      w.kv("io_ratio", io_bound_ratio(measured, s.io_pred));
    }
  }
  w.end_object();
  return os.str();
}

std::string flight_body(std::string_view query) {
  const bool want_dump = query.find("dump=1") != std::string_view::npos;
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (want_dump) {
    const bool ok = flight::dump_default(flightfmt::kReasonManual);
    w.kv("dumped", ok);
  } else {
    w.kv("dumped", false);
    w.kv("hint", "GET /flight?dump=1 to write a dump");
  }
  w.kv("path", flight::dump_path());
  w.end_object();
  return os.str();
}

constexpr const char* kIndexBody =
    "gep stat server\n"
    "  /metrics   Prometheus text exposition\n"
    "  /healthz   200/503 liveness (watchdog + async-degraded)\n"
    "  /progress  live ProgressMeter sample (JSON)\n"
    "  /profile   per-(kind,depth) profile snapshot (JSON)\n"
    "  /io        measured vs predicted block transfers (JSON)\n"
    "  /flight?dump=1  trigger a flight-recorder dump\n";

}  // namespace

std::string StatServer::handle(std::string_view target, int* status,
                               std::string* content_type) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string_view path = target;
  std::string_view query;
  if (const auto q = target.find('?'); q != std::string_view::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }

  int st = 200;
  std::string ctype = "application/json";
  std::string body;
  if (path == "/metrics") {
    ctype = "text/plain; version=0.0.4; charset=utf-8";
    body = metrics_body();
  } else if (path == "/healthz") {
    body = healthz_body(&st);
  } else if (path == "/progress") {
    body = progress_body();
  } else if (path == "/profile") {
    body = Profile::collect().json();
  } else if (path == "/io") {
    body = io_body();
  } else if (path == "/flight") {
    body = flight_body(query);
  } else if (path == "/" || path.empty()) {
    ctype = "text/plain; charset=utf-8";
    body = kIndexBody;
  } else {
    st = 404;
    body = "{\"error\":\"not found\"}";
  }

  srv().requests.fetch_add(1, std::memory_order_relaxed);
  obs_requests().inc();
  obs_handle_ns().observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  if (status != nullptr) *status = st;
  if (content_type != nullptr) *content_type = ctype;
  return body;
}

namespace {

// Parses the buffered request head and builds the full response. Returns
// false while the request is still incomplete (keep reading).
bool try_respond(Conn& c) {
  if (c.in.size() > kMaxRequestBytes) {
    c.out = make_response(400, "application/json",
                          "{\"error\":\"request too large\"}", false);
    return true;
  }
  const auto head_end = c.in.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;

  const auto line_end = c.in.find("\r\n");
  const std::string_view line(c.in.data(), line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.substr(sp2 + 1).rfind("HTTP/1.", 0) != 0) {
    c.out = make_response(400, "application/json",
                          "{\"error\":\"malformed request\"}", false);
    return true;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET" && method != "HEAD") {
    c.out = make_response(405, "application/json",
                          "{\"error\":\"method not allowed\"}", false);
    return true;
  }
  int status = 200;
  std::string ctype;
  const std::string body = StatServer::handle(target, &status, &ctype);
  c.out = make_response(status, ctype, body, method == "HEAD");
  return true;
}

void close_conn(Conn& c) {
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
}

void serve_loop() {
  Srv& s = srv();
  std::vector<Conn> conns;
  while (!s.stop_flag.load(std::memory_order_acquire)) {
    const std::size_t n_polled = conns.size();
    std::vector<pollfd> pfds;
    pfds.push_back({s.listen_fd, POLLIN, 0});
    pfds.push_back({s.wake_pipe[0], POLLIN, 0});
    for (const Conn& c : conns) {
      pfds.push_back(
          {c.fd, static_cast<short>(c.responding ? POLLOUT : POLLIN), 0});
    }
    const int timeout_ms =
        static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                             kPollTick)
                             .count());
    ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (s.stop_flag.load(std::memory_order_acquire)) break;

    if ((pfds[1].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(s.wake_pipe[0], buf, sizeof buf) > 0) {
      }
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(s.listen_fd, nullptr, nullptr);
        if (fd < 0) break;
        if (conns.size() >= kMaxConns || !set_nonblocking(fd)) {
          ::close(fd);
          continue;
        }
        Conn c;
        c.fd = fd;
        c.deadline = std::chrono::steady_clock::now() + kConnDeadline;
        conns.push_back(std::move(c));
      }
    }

    // Only the first n_polled conns have pollfd entries; connections
    // accepted this tick wait for the next poll round.
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n_polled; ++i) {
      Conn& c = conns[i];
      const short rev = pfds[2 + i].revents;
      if ((rev & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !c.responding) {
        close_conn(c);
        continue;
      }
      if (!c.responding && (rev & POLLIN) != 0) {
        char buf[4096];
        for (;;) {
          const ssize_t got = ::read(c.fd, buf, sizeof buf);
          if (got > 0) {
            c.in.append(buf, static_cast<std::size_t>(got));
            if (c.in.size() > kMaxRequestBytes + sizeof buf) break;
            continue;
          }
          if (got == 0 && !try_respond(c)) close_conn(c);  // EOF, no request
          break;
        }
        if (c.fd >= 0 && !c.responding && try_respond(c)) {
          c.responding = true;
          c.written = 0;
        }
      }
      if (c.fd >= 0 && c.responding &&
          ((rev & POLLOUT) != 0 || c.written < c.out.size())) {
        while (c.written < c.out.size()) {
          const ssize_t put = ::write(c.fd, c.out.data() + c.written,
                                      c.out.size() - c.written);
          if (put > 0) {
            c.written += static_cast<std::size_t>(put);
            continue;
          }
          if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          close_conn(c);  // peer went away mid-write
          break;
        }
        if (c.fd >= 0 && c.written >= c.out.size()) close_conn(c);
      }
      if (c.fd >= 0 && now > c.deadline) close_conn(c);  // slow client
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const Conn& c) { return c.fd < 0; }),
                conns.end());
  }
  for (Conn& c : conns) close_conn(c);
}

// Binds 127.0.0.1:port; returns the fd or -1.
int bind_port(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

bool StatServer::start(int port) {
  if (port < 0 || port > 65535) return false;
  Srv& s = srv();
  std::lock_guard<std::mutex> lock(s.run_mu);
  if (s.running.load(std::memory_order_relaxed)) return false;

  int fd = -1;
  if (port == 0) {
    fd = bind_port(0);
  } else {
    // Port-in-use fallback: probe the requested port and the next 15,
    // then settle for an ephemeral one (two jobs on one host both
    // exporting must not fight; port() reports the winner).
    for (int p = port; p < port + kPortProbeSpan && p <= 65535; ++p) {
      fd = bind_port(p);
      if (fd >= 0) break;
    }
    if (fd < 0) fd = bind_port(0);
  }
  if (fd < 0) return false;

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return false;
  }
  if (::pipe(s.wake_pipe) != 0) {
    ::close(fd);
    return false;
  }
  set_nonblocking(s.wake_pipe[0]);
  set_nonblocking(s.wake_pipe[1]);
  // A scrape racing job teardown can hit a closed socket mid-write;
  // that must be an EPIPE errno, not process death.
  ::signal(SIGPIPE, SIG_IGN);

  s.listen_fd = fd;
  s.bound_port.store(static_cast<int>(ntohs(bound.sin_port)),
                     std::memory_order_relaxed);
  s.stop_flag.store(false, std::memory_order_release);
  s.thread = std::thread(serve_loop);
  s.running.store(true, std::memory_order_release);
  std::fprintf(stderr, "[gep-stat] serving on 127.0.0.1:%d\n",
               s.bound_port.load(std::memory_order_relaxed));
  return true;
}

bool StatServer::start_from_env() {
  const char* v = std::getenv("GEP_STAT_PORT");
  if (v == nullptr || *v == 0) return false;
  char* end = nullptr;
  const long port = std::strtol(v, &end, 10);
  if (end == v || port < 0 || port > 65535) return false;
  return start(static_cast<int>(port));
}

void StatServer::stop() {
  Srv& s = srv();
  std::thread joinme;
  {
    std::lock_guard<std::mutex> lock(s.run_mu);
    if (!s.running.load(std::memory_order_relaxed)) return;
    s.stop_flag.store(true, std::memory_order_release);
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(s.wake_pipe[1], &b, 1);
    joinme = std::move(s.thread);
    s.running.store(false, std::memory_order_release);
  }
  joinme.join();
  std::lock_guard<std::mutex> lock(s.run_mu);
  ::close(s.listen_fd);
  ::close(s.wake_pipe[0]);
  ::close(s.wake_pipe[1]);
  s.listen_fd = -1;
  s.wake_pipe[0] = s.wake_pipe[1] = -1;
  s.bound_port.store(-1, std::memory_order_relaxed);
}

bool StatServer::running() {
  return srv().running.load(std::memory_order_acquire);
}

int StatServer::port() {
  return srv().bound_port.load(std::memory_order_relaxed);
}

std::uint64_t StatServer::requests_served() {
  return srv().requests.load(std::memory_order_relaxed);
}

void StatServer::set_build_info(const char* sha, const char* dispatch) {
  Srv& s = srv();
  const expo::BuildInfo env = expo::env_build_info();
  std::lock_guard<std::mutex> lock(s.hooks_mu);
  s.sha = sha != nullptr && *sha != 0 ? sha : env.sha;
  s.dispatch = dispatch != nullptr && *dispatch != 0 ? dispatch : "unknown";
  s.have_build_info = true;
}

void StatServer::set_progress(const ProgressMeter* m, const char* label) {
  if (m == nullptr) return;
  Srv& s = srv();
  std::lock_guard<std::mutex> lock(s.hooks_mu);
  s.progress = m;
  s.progress_label = label != nullptr ? label : "";
}

void StatServer::clear_progress(const ProgressMeter* m) {
  Srv& s = srv();
  std::lock_guard<std::mutex> lock(s.hooks_mu);
  if (s.progress == m) {
    s.progress = nullptr;
    s.progress_label.clear();
  }
}

void StatServer::set_io_model(const IoBoundPrediction& predicted,
                              std::function<std::uint64_t()> measured) {
  Srv& s = srv();
  std::lock_guard<std::mutex> lock(s.hooks_mu);
  s.io_active = true;
  s.io_pred = predicted;
  s.io_measured = std::move(measured);
}

void StatServer::clear_io_model() {
  Srv& s = srv();
  std::lock_guard<std::mutex> lock(s.hooks_mu);
  s.io_active = false;
  s.io_measured = nullptr;
}

}  // namespace on
}  // namespace gep::obs

#endif  // GEP_OBS
