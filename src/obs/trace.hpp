// Scoped span tracer for the typed I-GEP recursion.
//
// Each traced call records {kind, depth, quadrant origin (i0,j0,k0), box
// side m, thread, t_start, t_end} into a per-thread buffer (no locks on
// the hot path; one relaxed atomic load when tracing is inactive).
// Buffers are exported as Chrome trace_event JSON, viewable in
// chrome://tracing or Perfetto (ui.perfetto.dev) as a flamegraph per
// thread.
//
// Usage:
//   obs::Tracer::start();
//   ... run an igep_* driver ...
//   obs::Tracer::stop();
//   obs::Tracer::write_chrome_trace("igep.trace.json");
//
// The bench harness drives this from the GEP_OBS_TRACE environment
// variable (value = output path). With GEP_OBS=0 everything here is an
// empty inline stub.
#pragma once

#ifndef GEP_OBS
#define GEP_OBS 1
#endif

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if GEP_OBS
#include <atomic>
#include <chrono>
#endif

namespace gep::obs {

#if GEP_OBS

inline namespace on {

struct TraceEvent {
  std::uint64_t t0_ns = 0;  // relative to Tracer::start()
  std::uint64_t t1_ns = 0;
  std::uint32_t i0 = 0, j0 = 0, k0 = 0, m = 0;
  std::uint16_t depth = 0;
  char kind = '?';  // 'A' / 'B' / 'C' / 'D' (typed recursion), free-form
};

// Copy of one thread's recorded spans (Tracer::snapshot()).
struct ThreadTrace {
  int tid = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

class Tracer {
 public:
  static bool active() {
    return active_flag().load(std::memory_order_relaxed);
  }
  static void start();  // clears nothing; resumes appending
  static void stop();
  static void clear();  // drops all recorded events
  static std::size_t event_count();
  static std::uint64_t dropped_count();

  // Copies every thread's buffer out under the registry lock — the input
  // of the profile aggregation pass (obs/profile.hpp). Call while
  // stopped (a racing record() on a live thread may or may not be seen).
  static std::vector<ThreadTrace> snapshot();

  // Appends to the calling thread's buffer (capped; overflow is counted,
  // not stored). Only meaningful while active.
  static void record(const TraceEvent& e);

  // Serializes all buffers as Chrome trace_event JSON. Call while
  // stopped. Returns false when the file cannot be written.
  static bool write_chrome_trace(const std::string& path);

  // Value of $GEP_OBS_TRACE (the trace output path), or nullptr.
  static const char* env_path();

  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  static std::uint64_t base_ns();  // timestamp of the last start()

 private:
  static std::atomic<bool>& active_flag();
};

// RAII span: captures the start time on construction when tracing is
// active and records the event on destruction.
class ScopedSpan {
 public:
  ScopedSpan(char kind, int depth, long long i0, long long j0, long long k0,
             long long m) {
    if (!Tracer::active()) return;
    on_ = true;
    e_.kind = kind;
    e_.depth = static_cast<std::uint16_t>(depth);
    e_.i0 = static_cast<std::uint32_t>(i0);
    e_.j0 = static_cast<std::uint32_t>(j0);
    e_.k0 = static_cast<std::uint32_t>(k0);
    e_.m = static_cast<std::uint32_t>(m);
    e_.t0_ns = Tracer::now_ns() - Tracer::base_ns();
  }
  ~ScopedSpan() {
    if (!on_) return;
    e_.t1_ns = Tracer::now_ns() - Tracer::base_ns();
    Tracer::record(e_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceEvent e_;
  bool on_ = false;
};

}  // namespace on

#else  // GEP_OBS == 0

inline namespace off {

struct TraceEvent {};

struct ThreadTrace {
  int tid = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

class Tracer {
 public:
  static bool active() { return false; }
  static void start() {}
  static void stop() {}
  static void clear() {}
  static std::size_t event_count() { return 0; }
  static std::uint64_t dropped_count() { return 0; }
  static std::vector<ThreadTrace> snapshot() { return {}; }
  static void record(const TraceEvent&) {}
  static bool write_chrome_trace(const std::string&) { return false; }
  static const char* env_path() { return nullptr; }
};

class ScopedSpan {
 public:
  ScopedSpan(char, int, long long, long long, long long, long long) {}
};

}  // namespace off

#endif  // GEP_OBS

}  // namespace gep::obs
