// Minimal streaming JSON writer used by the observability exporters
// (registry snapshots, Chrome trace files, BENCH_*.json reports).
//
// Always compiled, independent of GEP_OBS: the bench reporter emits its
// machine-readable output even in uninstrumented builds (the registry /
// hardware-counter sections are simply empty there).
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace gep::obs {

// Comma placement and nesting are tracked with a stack of "container has
// emitted an element yet" flags, so callers just stream keys and values.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() {
    element_prefix();
    os_ << '{';
    first_.push_back(true);
  }
  void end_object() {
    first_.pop_back();
    os_ << '}';
  }
  void begin_array() {
    element_prefix();
    os_ << '[';
    first_.push_back(true);
  }
  void end_array() {
    first_.pop_back();
    os_ << ']';
  }

  void key(std::string_view k) {
    element_prefix();
    write_string(k);
    os_ << ':';
    after_key_ = true;
  }

  void value(std::string_view s) {
    element_prefix();
    write_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    element_prefix();
    os_ << (b ? "true" : "false");
  }
  void value(double d) {
    element_prefix();
    if (!std::isfinite(d)) {  // JSON has no NaN/Inf literals
      os_ << "null";
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    os_ << buf;
  }
  void value(std::uint64_t v) {
    element_prefix();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    os_ << buf;
  }
  void value(std::int64_t v) {
    element_prefix();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    os_ << buf;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null() {
    element_prefix();
    os_ << "null";
  }

  // Splices pre-serialized JSON in as one value (e.g. a registry
  // snapshot produced by snapshot_json()). The caller vouches for its
  // validity.
  void raw(std::string_view json) {
    element_prefix();
    os_ << json;
  }

  template <class T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  void element_prefix() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) os_ << ',';
      first_.back() = false;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace gep::obs
