#include "obs/registry.hpp"

#if GEP_OBS

#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/json.hpp"

namespace gep::obs {
inline namespace on {

namespace detail {

int this_thread_shard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

}  // namespace detail

struct Registry::Impl {
  mutable std::mutex mu;
  // node-based maps: impl addresses are stable across registrations.
  std::map<std::string, std::unique_ptr<detail::CounterImpl>, std::less<>>
      counters;
  std::map<std::string, std::unique_ptr<detail::GaugeImpl>, std::less<>>
      gauges;
  std::map<std::string, std::unique_ptr<detail::HistogramImpl>, std::less<>>
      histograms;
};

Registry& Registry::global() {
  // Leaked intentionally: handles cached in function-local statics across
  // the codebase may be used during static destruction.
  static Registry* r = new Registry();
  return *r;
}

Registry::Registry() : impl_(new Impl()) {}
Registry::~Registry() { delete impl_; }

Counter Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name),
                      std::make_unique<detail::CounterImpl>())
             .first;
  }
  return Counter(it->second.get());
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges
             .emplace(std::string(name), std::make_unique<detail::GaugeImpl>())
             .first;
  }
  return Gauge(it->second.get());
}

Histogram Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name),
                      std::make_unique<detail::HistogramImpl>())
             .first;
  }
  return Histogram(it->second.get());
}

std::vector<MetricSample> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<MetricSample> out;
  out.reserve(impl_->counters.size() + impl_->gauges.size() +
              impl_->histograms.size());
  for (const auto& [name, c] : impl_->counters) {
    MetricSample s;
    s.kind = MetricSample::Kind::Counter;
    s.name = name;
    s.count = c->total();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : impl_->gauges) {
    MetricSample s;
    s.kind = MetricSample::Kind::Gauge;
    s.name = name;
    s.value = g->v.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : impl_->histograms) {
    MetricSample s;
    s.kind = MetricSample::Kind::Histogram;
    s.name = name;
    s.buckets = h->totals();
    for (std::uint64_t b : s.buckets) s.count += b;
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges)
    g->v.store(0.0, std::memory_order_relaxed);
  for (auto& [name, h] : impl_->histograms) h->reset();
}

std::string snapshot_json() {
  const std::vector<MetricSample> snap = Registry::global().snapshot();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const MetricSample& s : snap)
    if (s.kind == MetricSample::Kind::Counter) w.kv(s.name, s.count);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const MetricSample& s : snap)
    if (s.kind == MetricSample::Kind::Gauge) w.kv(s.name, s.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const MetricSample& s : snap) {
    if (s.kind != MetricSample::Kind::Histogram) continue;
    w.key(s.name);
    w.begin_object();
    w.kv("count", s.count);
    // Percentile summaries estimated from the log2 buckets (upper bound
    // of the covering bucket — see hist_percentile()).
    w.kv("p50", hist_percentile(s.buckets, 0.50));
    w.kv("p95", hist_percentile(s.buckets, 0.95));
    w.kv("max", hist_max(s.buckets));
    // Nonzero buckets only, as [bucket_index, count] pairs.
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (s.buckets[i] == 0) continue;
      w.begin_array();
      w.value(static_cast<std::uint64_t>(i));
      w.value(s.buckets[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace on
}  // namespace gep::obs

#endif  // GEP_OBS
