#include "obs/hw_counters.hpp"

#if GEP_OBS

#if defined(__linux__)

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

namespace gep::obs {
inline namespace on {

namespace {

int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                    unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

int open_event(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // user-space only: works at paranoid <= 2
  attr.exclude_hv = 1;
  // this thread, any cpu
  return perf_event_open(&attr, 0, -1, -1, 0);
}

constexpr std::uint64_t l1d_read_miss_config() {
  return PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
}

}  // namespace

HwCounters::HwCounters() {
  fds_[0] = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fds_[1] = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fds_[2] = open_event(PERF_TYPE_HW_CACHE, l1d_read_miss_config());
  fds_[3] = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
}

HwCounters::~HwCounters() {
  for (int fd : fds_)
    if (fd >= 0) close(fd);
}

bool HwCounters::available() const {
  for (int fd : fds_)
    if (fd >= 0) return true;
  return false;
}

void HwCounters::start() {
  for (int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

HwSample HwCounters::read() const {
  HwSample s;
  std::uint64_t v[kEvents] = {0, 0, 0, 0};
  bool ok[kEvents] = {false, false, false, false};
  for (int i = 0; i < kEvents; ++i) {
    if (fds_[i] < 0) continue;
    ok[i] = ::read(fds_[i], &v[i], sizeof v[i]) == sizeof v[i];
  }
  s.cycles = v[0];
  s.instructions = v[1];
  s.l1d_misses = v[2];
  s.llc_misses = v[3];
  s.has_cycles = ok[0];
  s.has_instructions = ok[1];
  s.has_l1d = ok[2];
  s.has_llc = ok[3];
  s.valid = ok[0] || ok[1] || ok[2] || ok[3];
  return s;
}

HwSample HwCounters::stop() {
  for (int fd : fds_)
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  return read();
}

}  // namespace on
}  // namespace gep::obs

#else  // !__linux__: compile the same interface as an always-off stub.

namespace gep::obs {
inline namespace on {

HwCounters::HwCounters() {}
HwCounters::~HwCounters() {}
bool HwCounters::available() const { return false; }
void HwCounters::start() {}
HwSample HwCounters::read() const { return {}; }
HwSample HwCounters::stop() { return {}; }

}  // namespace on
}  // namespace gep::obs

#endif  // __linux__

#endif  // GEP_OBS
