// Performance-attribution profiles over the recursion tracer.
//
// The tracer (obs/trace.hpp) records raw {kind, depth, box, t0, t1}
// spans; this module is the aggregation pass that turns a buffer of
// spans into engineering signal:
//
//   * per-(kind, depth) entries: call count, inclusive (total) and
//     exclusive (self) nanoseconds, mean box side m — "where did the
//     traced wall time go, by recursion family and level";
//   * per-thread busy time / busy fraction and an overall imbalance
//     factor (max busy / mean busy across threads that ran spans);
//   * flamegraph-compatible folded stacks ("frame;frame;frame self_ns"
//     lines, one frame per enclosing span, suitable for flamegraph.pl
//     or speedscope);
//   * optional roofline points per kind from the sampled-leaf hardware
//     counter attribution (LeafSampler below): FLOPs executed vs L1d /
//     LLC miss bytes for the sampled leaves of each recursion family.
//
// Everything degrades the usual way under GEP_OBS=0: Profile::collect()
// returns an empty profile whose JSON form is still valid (the bench
// manifest stays well-formed), and the sampler is an empty stub.
#pragma once

#ifndef GEP_OBS
#define GEP_OBS 1
#endif

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace gep::obs {

// One (kind, depth) row of a profile (same shape in both builds).
struct ProfileEntry {
  char kind = '?';
  int depth = 0;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;  // inclusive: sum of span durations
  std::uint64_t self_ns = 0;   // exclusive: minus enclosed child spans
  double mean_m = 0.0;         // mean box side of the spans
};

// Per-thread activity during the traced window.
struct ThreadProfile {
  int tid = 0;
  std::uint64_t busy_ns = 0;   // sum of root-level span durations
  double busy_fraction = 0.0;  // busy_ns / traced wall duration
};

// Sampled-leaf hardware attribution for one recursion family: the
// coordinates of a roofline point (arithmetic intensity = flops /
// llc_miss_bytes) for the leaves of that kind.
struct RooflinePoint {
  char kind = '?';
  std::uint64_t samples = 0;        // leaves actually bracketed
  std::uint64_t flops = 0;          // 2·m³ per sampled leaf
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_misses = 0;
  bool has_cycles = false, has_instructions = false;
  bool has_l1d = false, has_llc = false;
};

#if GEP_OBS

inline namespace on {

class Profile {
 public:
  // Aggregates the tracer's current buffers (Tracer::snapshot()) plus
  // the LeafSampler's accumulated roofline points. Call with the tracer
  // stopped for a consistent cut.
  static Profile collect();

  // Aggregates an explicit set of buffers (unit tests feed synthetic
  // events through this).
  static Profile from_traces(const std::vector<ThreadTrace>& traces);

  const std::vector<ProfileEntry>& entries() const { return entries_; }
  const std::vector<ThreadProfile>& threads() const { return threads_; }
  const std::vector<RooflinePoint>& roofline() const { return roofline_; }

  // Traced window: [min t0, max t1] over every span.
  std::uint64_t wall_ns() const { return wall_ns_; }
  // Time inside root-level spans, summed over threads.
  std::uint64_t attributed_ns() const { return attributed_ns_; }
  // attributed / (wall · active threads): 1.0 = every traced nanosecond
  // of every active thread is accounted to some (kind, depth).
  double coverage() const;
  // max busy / mean busy across threads with spans (1.0 = balanced).
  double imbalance() const;

  std::uint64_t dropped() const { return dropped_; }
  bool empty() const { return entries_.empty(); }

  // Serializes the profile as one JSON value on `w` (object form used
  // inside BENCH_*.json runs).
  void write_json(JsonWriter& w) const;
  std::string json() const;

  // Folded flamegraph stacks, one line per distinct span path:
  //   [prefix;]t<tid>;A m=1024;B m=512;... <self_ns>
  // Frame order is root → leaf; counts are exclusive nanoseconds.
  std::string folded(const std::string& prefix = "") const;

 private:
  std::vector<ProfileEntry> entries_;
  std::vector<ThreadProfile> threads_;
  std::vector<RooflinePoint> roofline_;
  std::vector<std::pair<std::string, std::uint64_t>> folded_;  // path → ns
  std::uint64_t wall_ns_ = 0;
  std::uint64_t attributed_ns_ = 0;
  std::uint64_t dropped_ = 0;
};

// Samples hardware counters on every Nth typed-recursion leaf (per
// thread) and accumulates the readings per BoxKind. Sampling rather
// than bracketing every leaf bounds the perturbation: an N of 32 means
// one counter start/stop ioctl pair per 32 leaves. Enabled either
// programmatically or via $GEP_OBS_PROFILE_SAMPLE=<N> (0/unset = off).
class LeafSampler {
 public:
  static void enable(std::uint32_t every_n);  // 0 disables
  static void disable() { enable(0); }
  static bool enabled();
  static std::uint32_t period();

  // Reads $GEP_OBS_PROFILE_SAMPLE once and enables the sampler when it
  // names a positive period. The bench reporter calls this.
  static void enable_from_env();

  // Accumulated per-kind roofline points (kinds with zero samples are
  // omitted), and the reset the bench reporter uses between runs.
  static std::vector<RooflinePoint> snapshot();
  static void reset();

 private:
  friend class ScopedLeafSample;
  static void accumulate(char kind, std::uint64_t m, bool counted);
};

// RAII bracket placed around the typed engine's leaf-kernel call. Cheap
// when the sampler is off (one relaxed atomic load); on the sampled
// leaves it starts/stops a thread-local HwCounters set.
class ScopedLeafSample {
 public:
  ScopedLeafSample(char kind, long long m);
  ~ScopedLeafSample();
  ScopedLeafSample(const ScopedLeafSample&) = delete;
  ScopedLeafSample& operator=(const ScopedLeafSample&) = delete;

 private:
  char kind_ = 0;
  bool on_ = false;
  std::uint64_t m_ = 0;
};

}  // namespace on

#else  // GEP_OBS == 0

inline namespace off {

class Profile {
 public:
  static Profile collect() { return {}; }
  static Profile from_traces(const std::vector<ThreadTrace>&) { return {}; }

  const std::vector<ProfileEntry>& entries() const { return entries_; }
  const std::vector<ThreadProfile>& threads() const { return threads_; }
  const std::vector<RooflinePoint>& roofline() const { return roofline_; }
  std::uint64_t wall_ns() const { return 0; }
  std::uint64_t attributed_ns() const { return 0; }
  double coverage() const { return 0.0; }
  double imbalance() const { return 1.0; }
  std::uint64_t dropped() const { return 0; }
  bool empty() const { return true; }

  // Still emits a valid (empty) JSON object so GEP_OBS=0 bench reports
  // and manifests keep their schema.
  void write_json(JsonWriter& w) const {
    w.begin_object();
    w.kv("wall_ns", std::uint64_t{0});
    w.kv("attributed_ns", std::uint64_t{0});
    w.kv("coverage", 0.0);
    w.kv("imbalance", 1.0);
    w.kv("dropped", std::uint64_t{0});
    w.key("entries");
    w.begin_array();
    w.end_array();
    w.key("threads");
    w.begin_array();
    w.end_array();
    w.end_object();
  }
  std::string json() const {
    return "{\"wall_ns\":0,\"attributed_ns\":0,\"coverage\":0,"
           "\"imbalance\":1,\"dropped\":0,\"entries\":[],\"threads\":[]}";
  }
  std::string folded(const std::string& = "") const { return {}; }

 private:
  std::vector<ProfileEntry> entries_;
  std::vector<ThreadProfile> threads_;
  std::vector<RooflinePoint> roofline_;
};

class LeafSampler {
 public:
  static void enable(std::uint32_t) {}
  static void disable() {}
  static bool enabled() { return false; }
  static std::uint32_t period() { return 0; }
  static void enable_from_env() {}
  static std::vector<RooflinePoint> snapshot() { return {}; }
  static void reset() {}
};

class ScopedLeafSample {
 public:
  ScopedLeafSample(char, long long) {}
};

}  // namespace off

#endif  // GEP_OBS

}  // namespace gep::obs
