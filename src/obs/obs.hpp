// Umbrella header for the observability layer.
//
//   registry.hpp    — named counters / gauges / log2 histograms,
//                     per-thread sharded, lock-free on the hot path
//   hw_counters.hpp — perf_event_open wrapper (cycles, instructions,
//                     L1d / LLC misses) with graceful no-op fallback
//   trace.hpp       — scoped spans for the typed recursion, exported as
//                     Chrome trace_event JSON
//   profile.hpp     — aggregation pass over the tracer: per-(kind,depth)
//                     attribution, folded flamegraph stacks, sampled
//                     leaf roofline points
//   json.hpp        — the streaming JSON writer the exporters share
//   json_read.hpp   — the matching reader (manifest / diff tooling)
//   flight_recorder.hpp — always-on per-thread event rings with a
//                     signal-handler *.gepdump path (tools/gep_events)
//   watchdog.hpp    — heartbeat sources + stall monitor (counter ->
//                     stderr -> flight dump escalation)
//   progress.hpp    — percent-complete / ETA from the typed engine's
//                     work counters vs the closed-form totals
//   io_model.hpp    — predicted Θ(n³/(B√M)) block transfers for the
//                     measured-vs-bound ratio in the OOC benches
//   expo.hpp        — Prometheus text exposition shared by the live
//                     /metrics endpoint and `gep_events --prom`
//   stat_server.hpp — embedded HTTP exporter (/metrics, /healthz,
//                     /progress, /profile, /io, /flight?dump=1)
//
// Compile-time switch: GEP_OBS (default 1; CMake -DGEP_OBS=0 turns every
// producer into an inline no-op stub — the default hot paths carry no
// instrumentation code at all). See docs/OBSERVABILITY.md.
#pragma once

#include "obs/expo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/hw_counters.hpp"
#include "obs/io_model.hpp"
#include "obs/json.hpp"
#include "obs/json_read.hpp"
#include "obs/profile.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/stat_server.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
