// Hardware performance counters via Linux perf_event_open.
//
// Samples cycles, retired instructions, L1d read misses and last-level
// cache misses for the calling thread. Each event is opened as its own
// fd (not a group) so that a partially supported PMU — common in VMs and
// containers — still yields whatever subset exists; `has_*` flags say
// which fields of a sample are real.
//
// Graceful fallback is part of the contract: when the syscall is denied
// (perf_event_paranoid, seccomp, no PMU) available() is false, start()
// and stop() are no-ops and samples come back zeroed with valid=false.
// Callers never need to special-case CI. With GEP_OBS=0 the class is an
// inline stub that always reports unavailable.
#pragma once

#ifndef GEP_OBS
#define GEP_OBS 1
#endif

#include <cstdint>

namespace gep::obs {

struct HwSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_misses = 0;
  bool valid = false;  // at least one event was actually measured
  bool has_cycles = false;
  bool has_instructions = false;
  bool has_l1d = false;
  bool has_llc = false;

  double ipc() const {
    return (has_cycles && has_instructions && cycles > 0)
               ? static_cast<double>(instructions) /
                     static_cast<double>(cycles)
               : 0.0;
  }
};

#if GEP_OBS

inline namespace on {

class HwCounters {
 public:
  HwCounters();  // opens whatever events the kernel permits
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  // True when at least one event opened successfully.
  bool available() const;

  void start();      // reset + enable all open events
  HwSample stop();   // disable + read
  HwSample read() const;  // read without disabling

 private:
  static constexpr int kEvents = 4;  // cycles, instr, l1d, llc
  int fds_[kEvents] = {-1, -1, -1, -1};
};

}  // namespace on

#else

inline namespace off {

class HwCounters {
 public:
  bool available() const { return false; }
  void start() {}
  HwSample stop() { return {}; }
  HwSample read() const { return {}; }
};

}  // namespace off

#endif  // GEP_OBS

}  // namespace gep::obs
