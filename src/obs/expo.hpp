// Prometheus text exposition (version 0.0.4) for registry snapshots.
//
// One formatter, two consumers: the embedded stat server's /metrics
// endpoint (obs/stat_server.hpp, live snapshot) and the offline
// `gep_events --prom` view of the registry JSON embedded in a flight
// dump. Keeping both on write_exposition() means the live and offline
// renderings cannot drift.
//
// Mapping:
//   counter  "typed.updates.A"     -> gep_typed_updates_A_total 123
//   gauge    "extmem.prefetch.queue_depth" -> gep_extmem_prefetch_queue_depth 4
//   histogram (log2 buckets)       -> gep_<name>_bucket{le="..."} cumulative
//                                     + _sum (upper-bound estimate) + _count
//   identity                       -> gep_build_info{sha=...,dispatch_level=...,
//                                     obs=...} 1
// Histogram bucket b >= 1 covers [2^(b-1), 2^b), so its `le` boundary is
// 2^b - 1; bucket 0 is the exact-zero bucket (le="0"). The _sum series
// is an upper-bound estimate (observations counted at their bucket's
// boundary) — the registry keeps only log2 counts, and the estimate is
// consistent with hist_percentile()'s convention.
//
// Always compiled, independent of GEP_OBS (MetricSample exists in both
// builds; an empty snapshot renders as just the build-info series).
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_read.hpp"
#include "obs/registry.hpp"

namespace gep::obs::expo {

// Labels on the gep_build_info identity series.
struct BuildInfo {
  std::string sha = "unknown";
  std::string dispatch = "unknown";
  bool obs_enabled = kEnabled;
};

// $GEP_GIT_SHA, then $GITHUB_SHA, then "unknown" (no subprocesses: this
// runs inside servers and signal-adjacent tooling).
inline BuildInfo env_build_info() {
  BuildInfo b;
  if (const char* s = std::getenv("GEP_GIT_SHA"); s != nullptr && *s != 0) {
    b.sha = s;
  } else if (const char* g = std::getenv("GITHUB_SHA");
             g != nullptr && *g != 0) {
    b.sha = g;
  }
  return b;
}

// Registry name -> Prometheus metric name: "gep_" prefix, every
// character outside [a-zA-Z0-9_] replaced by '_'.
inline std::string prom_name(std::string_view raw) {
  std::string out = "gep_";
  out.reserve(raw.size() + 4);
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Label-value escaping per the exposition format: backslash, quote, LF.
inline std::string prom_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace detail {

inline void write_double(std::ostream& os, double d) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

}  // namespace detail

// Renders a registry snapshot (Registry::snapshot() order: counters,
// gauges, histograms, each sorted by name) plus the build-info series.
inline void write_exposition(std::ostream& os,
                             const std::vector<MetricSample>& samples,
                             const BuildInfo& info) {
  os << "# TYPE gep_build_info gauge\n"
     << "gep_build_info{sha=\"" << prom_label_value(info.sha)
     << "\",dispatch_level=\"" << prom_label_value(info.dispatch)
     << "\",obs=\"" << (info.obs_enabled ? "on" : "off") << "\"} 1\n";
  for (const MetricSample& s : samples) {
    const std::string name = prom_name(s.name);
    switch (s.kind) {
      case MetricSample::Kind::Counter: {
        os << "# TYPE " << name << "_total counter\n"
           << name << "_total " << s.count << "\n";
        break;
      }
      case MetricSample::Kind::Gauge: {
        os << "# TYPE " << name << " gauge\n" << name << ' ';
        detail::write_double(os, s.value);
        os << "\n";
        break;
      }
      case MetricSample::Kind::Histogram: {
        os << "# TYPE " << name << " histogram\n";
        // Highest populated bucket bounds the emitted `le` ladder (the
        // cumulative count is constant above it).
        std::size_t top = 0;
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (s.buckets[i] != 0) top = i;
        }
        std::uint64_t cum = 0;
        double sum_estimate = 0.0;
        for (std::size_t b = 0; b <= top && b < s.buckets.size(); ++b) {
          cum += s.buckets[b];
          const double bound =
              b == 0 ? 0.0
                     : static_cast<double>(
                           b >= 64 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << b) - 1);
          sum_estimate += static_cast<double>(s.buckets[b]) * bound;
          os << name << "_bucket{le=\"";
          detail::write_double(os, bound);
          os << "\"} " << cum << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
        os << name << "_sum ";
        detail::write_double(os, sum_estimate);
        os << "\n" << name << "_count " << s.count << "\n";
        break;
      }
    }
  }
}

inline std::string exposition(const std::vector<MetricSample>& samples,
                              const BuildInfo& info) {
  std::ostringstream os;
  write_exposition(os, samples, info);
  return os.str();
}

// Rebuilds a MetricSample list from the snapshot_json() shape
// ({"counters":{...},"gauges":{...},"histograms":{name:{"count":...,
// "buckets":[[index,count],...]}}}) — the inverse the offline path
// (gep_events --prom over a dump's embedded metrics JSON) feeds to
// write_exposition().
inline std::vector<MetricSample> samples_from_snapshot_json(
    const JsonValue& v) {
  std::vector<MetricSample> out;
  if (!v.is_object()) return out;
  if (const JsonValue* c = v.find("counters"); c != nullptr && c->is_object()) {
    for (const auto& [name, val] : c->members()) {
      MetricSample s;
      s.kind = MetricSample::Kind::Counter;
      s.name = name;
      s.count = static_cast<std::uint64_t>(val.as_double());
      out.push_back(std::move(s));
    }
  }
  if (const JsonValue* g = v.find("gauges"); g != nullptr && g->is_object()) {
    for (const auto& [name, val] : g->members()) {
      MetricSample s;
      s.kind = MetricSample::Kind::Gauge;
      s.name = name;
      s.value = val.as_double();
      out.push_back(std::move(s));
    }
  }
  if (const JsonValue* h = v.find("histograms");
      h != nullptr && h->is_object()) {
    for (const auto& [name, val] : h->members()) {
      MetricSample s;
      s.kind = MetricSample::Kind::Histogram;
      s.name = name;
      s.buckets.assign(static_cast<std::size_t>(kHistBuckets), 0);
      if (const JsonValue* bk = val.find("buckets");
          bk != nullptr && bk->is_array()) {
        for (const JsonValue& pair : bk->items()) {
          if (!pair.is_array() || pair.items().size() != 2) continue;
          const auto idx =
              static_cast<std::size_t>(pair.items()[0].as_double());
          if (idx < s.buckets.size()) {
            s.buckets[idx] =
                static_cast<std::uint64_t>(pair.items()[1].as_double());
          }
        }
      }
      for (std::uint64_t b : s.buckets) s.count += b;
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace gep::obs::expo
