// Minimal recursive-descent JSON reader — the counterpart of
// obs/json.hpp's writer, used by the bench-manifest aggregator, the
// regression-diff gate (tools/), and the tests that round-trip
// BENCH_*.json output. Always compiled, independent of GEP_OBS.
//
// Scope: full JSON values (object / array / string / number / bool /
// null), escape sequences including \uXXXX (surrogate pairs decoded to
// UTF-8), a nesting-depth cap instead of unbounded recursion. Numbers
// are held as double — exact for the 53-bit counter ranges the bench
// reports actually carry.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gep::obs {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool(bool dflt = false) const { return is_bool() ? b_ : dflt; }
  double as_double(double dflt = 0.0) const {
    return is_number() ? num_ : dflt;
  }
  std::int64_t as_int(std::int64_t dflt = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : dflt;
  }
  const std::string& as_string() const { return str_; }

  const std::vector<JsonValue>& items() const { return arr_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return obj_;
  }
  std::size_t size() const {
    return is_array() ? arr_.size() : is_object() ? obj_.size() : 0;
  }

  bool has(std::string_view key) const { return find(key) != nullptr; }

  // Object lookup; returns a shared null value when absent (so lookups
  // chain without null checks: v["a"]["b"].as_double()).
  const JsonValue& operator[](std::string_view key) const {
    const JsonValue* v = find(key);
    return v != nullptr ? *v : null_value();
  }
  const JsonValue& operator[](std::size_t i) const {
    return is_array() && i < arr_.size() ? arr_[i] : null_value();
  }

  const JsonValue* find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : obj_)
      if (k == key) return &v;
    return nullptr;
  }

  // Parses `text` into `*out`, replacing any previous contents (the
  // object/array fillers append, so a reused value must start empty or
  // stale members shadow fresh ones in find()). On failure returns
  // false and, when `err` is non-null, describes the first error and
  // its byte offset.
  static bool parse(std::string_view text, JsonValue* out,
                    std::string* err = nullptr) {
    *out = JsonValue();
    Parser p{text, 0, err};
    if (!p.value(out, 0)) return false;
    p.skip_ws();
    if (p.pos != text.size()) {
      p.fail("trailing characters after JSON value");
      return false;
    }
    return true;
  }

 private:
  static const JsonValue& null_value() {
    static const JsonValue v;
    return v;
  }

  struct Parser {
    std::string_view s;
    std::size_t pos;
    std::string* err;
    static constexpr int kMaxDepth = 256;

    bool fail(const std::string& what) {
      if (err != nullptr && err->empty())
        *err = what + " at offset " + std::to_string(pos);
      return false;
    }
    void skip_ws() {
      while (pos < s.size() &&
             (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
              s[pos] == '\r'))
        ++pos;
    }
    bool literal(std::string_view lit) {
      if (s.substr(pos, lit.size()) != lit) return false;
      pos += lit.size();
      return true;
    }

    bool value(JsonValue* out, int depth) {
      if (depth > kMaxDepth) return fail("nesting too deep");
      skip_ws();
      if (pos >= s.size()) return fail("unexpected end of input");
      switch (s[pos]) {
        case '{': return object(out, depth);
        case '[': return array(out, depth);
        case '"':
          out->type_ = Type::String;
          return string(&out->str_);
        case 't':
          if (!literal("true")) return fail("bad literal");
          out->type_ = Type::Bool;
          out->b_ = true;
          return true;
        case 'f':
          if (!literal("false")) return fail("bad literal");
          out->type_ = Type::Bool;
          out->b_ = false;
          return true;
        case 'n':
          if (!literal("null")) return fail("bad literal");
          out->type_ = Type::Null;
          return true;
        default: return number(out);
      }
    }

    bool object(JsonValue* out, int depth) {
      ++pos;  // '{'
      out->type_ = Type::Object;
      skip_ws();
      if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        skip_ws();
        if (pos >= s.size() || s[pos] != '"')
          return fail("expected object key");
        std::string key;
        if (!string(&key)) return false;
        skip_ws();
        if (pos >= s.size() || s[pos] != ':') return fail("expected ':'");
        ++pos;
        JsonValue v;
        if (!value(&v, depth + 1)) return false;
        out->obj_.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos >= s.size()) return fail("unterminated object");
        if (s[pos] == ',') {
          ++pos;
          continue;
        }
        if (s[pos] == '}') {
          ++pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }

    bool array(JsonValue* out, int depth) {
      ++pos;  // '['
      out->type_ = Type::Array;
      skip_ws();
      if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!value(&v, depth + 1)) return false;
        out->arr_.push_back(std::move(v));
        skip_ws();
        if (pos >= s.size()) return fail("unterminated array");
        if (s[pos] == ',') {
          ++pos;
          continue;
        }
        if (s[pos] == ']') {
          ++pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }

    bool hex4(std::uint32_t* out) {
      if (pos + 4 > s.size()) return fail("truncated \\u escape");
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        const char c = s[pos + static_cast<std::size_t>(i)];
        v <<= 4;
        if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
          v |= static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
          v |= static_cast<std::uint32_t>(c - 'A' + 10);
        else
          return fail("bad \\u escape");
      }
      pos += 4;
      *out = v;
      return true;
    }

    static void append_utf8(std::string* out, std::uint32_t cp) {
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    }

    bool string(std::string* out) {
      ++pos;  // '"'
      out->clear();
      while (pos < s.size()) {
        const char c = s[pos];
        if (c == '"') {
          ++pos;
          return true;
        }
        if (c == '\\') {
          ++pos;
          if (pos >= s.size()) return fail("truncated escape");
          const char e = s[pos++];
          switch (e) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
              std::uint32_t cp = 0;
              if (!hex4(&cp)) return false;
              if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
                if (pos + 1 < s.size() && s[pos] == '\\' &&
                    s[pos + 1] == 'u') {
                  pos += 2;
                  std::uint32_t lo = 0;
                  if (!hex4(&lo)) return false;
                  if (lo >= 0xDC00 && lo <= 0xDFFF)
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                  else
                    return fail("unpaired surrogate");
                } else {
                  return fail("unpaired surrogate");
                }
              }
              append_utf8(out, cp);
              break;
            }
            default: return fail("bad escape character");
          }
          continue;
        }
        if (static_cast<unsigned char>(c) < 0x20)
          return fail("raw control character in string");
        out->push_back(c);
        ++pos;
      }
      return fail("unterminated string");
    }

    bool number(JsonValue* out) {
      const std::size_t start = pos;
      if (pos < s.size() && s[pos] == '-') ++pos;
      while (pos < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[pos])) != 0 ||
              s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
              s[pos] == '+' || s[pos] == '-'))
        ++pos;
      if (pos == start) return fail("expected a value");
      const std::string tok(s.substr(start, pos - start));
      char* end = nullptr;
      const double v = std::strtod(tok.c_str(), &end);
      if (end != tok.c_str() + tok.size() || !std::isfinite(v)) {
        pos = start;
        return fail("malformed number");
      }
      out->type_ = Type::Number;
      out->num_ = v;
      return true;
    }
  };

  Type type_ = Type::Null;
  bool b_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace gep::obs
