// Metrics registry: named counters, gauges and log2-bucket histograms.
//
// Hot-path design: registration (name lookup) takes a mutex but happens
// once per call site — the returned handle is a raw pointer into the
// registry's storage. Increments are wait-free: each counter/histogram is
// sharded into cache-line-sized slots, and a thread bumps only the slot
// for its shard with a relaxed fetch_add. Aggregation (snapshot) sums the
// shards on demand.
//
// Everything here compiles to empty inline no-ops when GEP_OBS=0. The
// enabled and disabled implementations live in *different* inline
// namespaces (obs::on / obs::off), so a translation unit built with
// -DGEP_OBS=0 can link against a library built with GEP_OBS=1 without ODR
// clashes (used by tests/test_obs_off.cpp).
#pragma once

#ifndef GEP_OBS
#define GEP_OBS 1
#endif

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#if GEP_OBS
#include <algorithm>
#include <atomic>
#include <bit>
#endif

namespace gep::obs {

// One metric in a registry snapshot (same shape in both builds).
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  Kind kind = Kind::Counter;
  std::string name;
  std::uint64_t count = 0;                // counter value / histogram total
  double value = 0.0;                     // gauge value
  std::vector<std::uint64_t> buckets;     // histogram: log2 buckets
};

// Percentile estimate from log2 buckets: the upper bound of the bucket
// holding the q-quantile observation (bucket 0 = {0}; bucket b >= 1 =
// [2^(b-1), 2^b), so the estimate is 2^b - 1). Returns 0 for an empty
// histogram. Shared by snapshot_json() and the bench reports' p50/p95
// summaries.
inline std::uint64_t hist_percentile(const std::vector<std::uint64_t>& buckets,
                                     double q) {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) >= target && buckets[i] > 0) {
      if (i == 0) return 0;
      if (i >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << i) - 1;
    }
  }
  return 0;
}

// Upper bound of the highest populated bucket (the "max" summary).
inline std::uint64_t hist_max(const std::vector<std::uint64_t>& buckets) {
  for (std::size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] == 0) continue;
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }
  return 0;
}

#if GEP_OBS

inline namespace on {

inline constexpr bool kEnabled = true;
inline constexpr int kShards = 16;       // power of two
inline constexpr int kHistBuckets = 64;  // bucket b: [2^(b-1), 2^b), b0 = {0}

namespace detail {

struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};

struct CounterImpl {
  Cell shards[kShards];

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const Cell& c : shards) t += c.v.load(std::memory_order_relaxed);
    return t;
  }
  void reset() {
    for (Cell& c : shards) c.v.store(0, std::memory_order_relaxed);
  }
};

struct GaugeImpl {
  std::atomic<double> v{0.0};
};

struct HistogramImpl {
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> b[kHistBuckets];
  };
  Shard shards[kShards];

  void observe(std::uint64_t x) {
    const int bucket =
        x == 0 ? 0
               : std::min(static_cast<int>(std::bit_width(x)),
                          kHistBuckets - 1);
    shards[this_shard()].b[bucket].fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<std::uint64_t> totals() const {
    std::vector<std::uint64_t> t(kHistBuckets, 0);
    for (const Shard& s : shards)
      for (int i = 0; i < kHistBuckets; ++i)
        t[static_cast<std::size_t>(i)] +=
            s.b[i].load(std::memory_order_relaxed);
    return t;
  }
  void reset() {
    for (Shard& s : shards)
      for (auto& b : s.b) b.store(0, std::memory_order_relaxed);
  }

  static int this_shard();
};

// Round-robin shard id for the calling thread (shared with CounterImpl).
int this_thread_shard();

inline int HistogramImpl::this_shard() { return this_thread_shard(); }

}  // namespace detail

// Handles are cheap value types; a default-constructed handle is inert.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t d = 1) {
    if (p_ != nullptr)
      p_->shards[detail::this_thread_shard()].v.fetch_add(
          d, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return p_ == nullptr ? 0 : p_->total(); }

 private:
  friend class Registry;
  explicit Counter(detail::CounterImpl* p) : p_(p) {}
  detail::CounterImpl* p_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (p_ != nullptr) p_->v.store(v, std::memory_order_relaxed);
  }
  // Relative adjustment for level-style gauges shared by many threads
  // (active workers, cache occupancy): CAS loop, since fetch_add on
  // atomic<double> predates parts of our toolchain matrix.
  void add(double d) {
    if (p_ == nullptr) return;
    double cur = p_->v.load(std::memory_order_relaxed);
    while (!p_->v.compare_exchange_weak(cur, cur + d,
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return p_ == nullptr ? 0.0 : p_->v.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeImpl* p) : p_(p) {}
  detail::GaugeImpl* p_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t v) {
    if (p_ != nullptr) p_->observe(v);
  }
  std::vector<std::uint64_t> buckets() const {
    return p_ == nullptr ? std::vector<std::uint64_t>(kHistBuckets, 0)
                         : p_->totals();
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramImpl* p) : p_(p) {}
  detail::HistogramImpl* p_ = nullptr;
};

class Registry {
 public:
  // The process-wide registry every producer publishes into.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Returns the handle for `name`, registering it on first use. Handles
  // stay valid for the registry's lifetime.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  // Aggregated values of every registered metric, sorted by name within
  // each kind (counters, then gauges, then histograms).
  std::vector<MetricSample> snapshot() const;

  // Zeroes every counter, gauge and histogram (names stay registered).
  void reset();

 private:
  struct Impl;
  Impl* impl_;
};

// Convenience accessors on the global registry.
inline Counter counter(std::string_view name) {
  return Registry::global().counter(name);
}
inline Gauge gauge(std::string_view name) {
  return Registry::global().gauge(name);
}
inline Histogram histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

// Global snapshot serialized as a JSON object
// {"counters":{...},"gauges":{...},"histograms":{...}}.
std::string snapshot_json();

}  // namespace on

#else  // GEP_OBS == 0: the whole API exists but is inert no-op stubs.

inline namespace off {

inline constexpr bool kEnabled = false;
inline constexpr int kShards = 1;
inline constexpr int kHistBuckets = 64;

class Counter {
 public:
  void inc(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  double value() const { return 0.0; }
};

class Histogram {
 public:
  void observe(std::uint64_t) {}
  std::vector<std::uint64_t> buckets() const {
    return std::vector<std::uint64_t>(kHistBuckets, 0);
  }
};

class Registry {
 public:
  static Registry& global() {
    static Registry r;
    return r;
  }
  Counter counter(std::string_view) { return {}; }
  Gauge gauge(std::string_view) { return {}; }
  Histogram histogram(std::string_view) { return {}; }
  std::vector<MetricSample> snapshot() const { return {}; }
  void reset() {}
};

inline Counter counter(std::string_view) { return {}; }
inline Gauge gauge(std::string_view) { return {}; }
inline Histogram histogram(std::string_view) { return {}; }

inline std::string snapshot_json() {
  return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
}

}  // namespace off

#endif  // GEP_OBS

}  // namespace gep::obs
