// Progress / ETA for typed I-GEP runs, derived from the engine's own
// work counters.
//
// The typed recursion already accumulates its exact update volume in
// the registry (`typed.updates.{A,B,C,D}` and `typed.mm.updates`, one
// relaxed add per leaf), and the total volume of a run is a closed form
// of (n, base size) — so percent-complete costs the hot path nothing:
// the meter snapshots the counters at begin() and divides the delta by
// the closed-form total. ETA assumes a constant update rate (exact for
// FW/MM whose leaves are uniform; a mild approximation for LU/GE).
//
// Closed forms (leaf-granularity update volume, t = n/bs):
//   full cube (FW, TC, bottleneck, MM):  n^3
//   LU / GE (prune i0<k0 || j0<k0):      bs^3 * t(t+1)(2t+1)/6
// The LU sum counts the (t-k)^2 surviving base boxes of each of the t
// elimination slabs, each contributing bs^3 updates.
//
// GEP_OBS=0: the counters do not exist, so the meter reports fraction 0
// and unknown ETA (and the reporter thread never starts).
#pragma once

#ifndef GEP_OBS
#define GEP_OBS 1
#endif

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "obs/registry.hpp"

namespace gep::obs {

// --- closed-form work totals (pure math: shared by both builds) -----------

// Update volume of a full-cube typed run (FW / TC / bottleneck / MM).
inline double typed_cube_updates(double n) { return n * n * n; }

// Update volume of a typed LU/GE run at base size bs.
inline double typed_lu_updates(double n, double bs) {
  const double t = n / bs;
  return bs * bs * bs * (t * (t + 1.0) * (2.0 * t + 1.0) / 6.0);
}

struct ProgressSample {
  double fraction = 0.0;      // updates done / closed-form total
  double elapsed_s = 0.0;
  double eta_s = -1.0;        // -1: unknown (no progress yet / GEP_OBS=0)
  double gflops = 0.0;        // achieved, from the run's flop estimate
  double updates_done = 0.0;
  double updates_total = 0.0;
};

#if GEP_OBS

inline namespace on {

class ProgressMeter {
 public:
  // `total_updates`: closed-form volume of ONE pass of the job.
  // `total_flops`: flop estimate for the same pass (for GF/s); 0 skips
  // the GF/s column.
  void begin(double total_updates, double total_flops = 0.0) {
    total_ = total_updates > 0 ? total_updates : 1.0;
    flops_ = total_flops;
    base_ = updates_now();
    t0_ = std::chrono::steady_clock::now();
  }

  ProgressSample sample() const {
    ProgressSample s;
    s.updates_total = total_;
    s.updates_done = updates_now() - base_;
    s.fraction = s.updates_done / total_;
    s.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0_)
                      .count();
    if (s.fraction > 0 && s.fraction < 1.0) {
      s.eta_s = s.elapsed_s * (1.0 - s.fraction) / s.fraction;
    } else if (s.fraction >= 1.0) {
      s.eta_s = 0.0;
    }
    if (flops_ > 0 && s.elapsed_s > 0) {
      s.gflops = flops_ * s.fraction / s.elapsed_s / 1e9;
    }
    return s;
  }

 private:
  // Sum of every typed work counter: the A/B/C/D recursion families plus
  // the dedicated MM recursion.
  static double updates_now() {
    static Counter c[5] = {counter("typed.updates.A"),
                           counter("typed.updates.B"),
                           counter("typed.updates.C"),
                           counter("typed.updates.D"),
                           counter("typed.mm.updates")};
    std::uint64_t sum = 0;
    for (Counter& k : c) sum += k.value();
    return static_cast<double>(sum);
  }

  double total_ = 1.0;
  double flops_ = 0.0;
  double base_ = 0.0;
  std::chrono::steady_clock::time_point t0_{};
};

// Background stderr printer: "[progress] label 42.3% eta 12.1s ...".
// Enabled only when interval_s > 0 (benches pass env_interval(), i.e.
// $GEP_PROGRESS_SEC), so CI logs stay quiet by default.
class ProgressReporter {
 public:
  ProgressReporter(const ProgressMeter* meter, double interval_s,
                   const char* label)
      : meter_(meter), label_(label) {
    if (meter_ == nullptr || interval_s <= 0) return;
    thread_ = std::thread([this, interval_s] {
      while (!stop_.load(std::memory_order_acquire)) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait_for(lock,
                     std::chrono::duration<double>(interval_s));
        if (stop_.load(std::memory_order_acquire)) break;
        const ProgressSample s = meter_->sample();
        std::fprintf(stderr,
                     "[progress] %s %5.1f%%  elapsed %.1fs  eta %s  "
                     "%.2f GF/s\n",
                     label_, 100.0 * s.fraction, s.elapsed_s,
                     s.eta_s < 0 ? "?" : fmt_eta(s.eta_s).c_str(),
                     s.gflops);
      }
    });
  }

  ~ProgressReporter() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    thread_.join();
  }

  static double env_interval() {
    const char* v = std::getenv("GEP_PROGRESS_SEC");
    return v == nullptr ? 0.0 : std::atof(v);
  }

 private:
  static std::string fmt_eta(double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fs", s);
    return buf;
  }

  const ProgressMeter* meter_;
  const char* label_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace on

#else  // GEP_OBS == 0

inline namespace off {

class ProgressMeter {
 public:
  void begin(double, double = 0.0) {}
  ProgressSample sample() const { return {}; }
};

class ProgressReporter {
 public:
  ProgressReporter(const ProgressMeter*, double, const char*) {}
  static double env_interval() { return 0.0; }
};

}  // namespace off

#endif  // GEP_OBS

}  // namespace gep::obs
