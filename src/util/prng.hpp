// Small deterministic PRNGs for workload generation and property tests.
//
// Benchmarks and tests must be reproducible across runs and machines, so we
// avoid std::random_device / unseeded engines and use explicit-seed
// SplitMix64 (for streams of 64-bit values) everywhere.
#pragma once

#include <cstdint>
#include <limits>

namespace gep {

// SplitMix64: tiny, fast, passes BigCrush; ideal for reproducible workloads.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace gep
