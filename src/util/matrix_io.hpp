// Plain-text matrix file I/O.
//
// Format: a header line "rows cols" followed by rows x cols
// whitespace-separated values. Used by the gep_tool CLI and handy for
// shuttling instances between runs; full precision round-trips.
#pragma once

#include <optional>
#include <string>

#include "matrix/matrix.hpp"

namespace gep {

// Reads a matrix; returns nullopt on missing file or malformed content.
std::optional<Matrix<double>> read_matrix_file(const std::string& path);

// Writes with round-trip-exact precision. Returns false on I/O failure.
bool write_matrix_file(const std::string& path, const Matrix<double>& m);

}  // namespace gep
