// Host introspection: CPU model, core count, cache geometry.
//
// The paper's Table 2 lists the machines used for its experiments; every
// bench binary prints the equivalent row for the host it runs on so that
// EXPERIMENTS.md can record paper-vs-measured context.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gep {

struct CacheLevel {
  int level = 0;            // 1, 2, 3...
  std::string type;         // "Data", "Instruction", "Unified"
  std::size_t size_bytes = 0;
  std::size_t line_bytes = 0;
  int associativity = 0;    // 0 when unknown / fully associative
};

// x86 SIMD capability flags (CPUID + XGETBV). All false on non-x86
// hosts. `os_avx` / `os_avx512` report whether the OS context-switches
// the ymm / zmm register state (XCR0) — an ISA bit without the matching
// OS bit must not be dispatched to.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool os_avx = false;
  bool os_avx512 = false;

  // True when AVX2+FMA kernels are safe to execute on this host.
  bool can_run_avx2() const { return avx2 && fma && os_avx; }

  // "avx2+fma+avx512f" / "avx2+fma" / "none" — for banners and reports.
  std::string summary() const;
};

// Detected once (first call) via CPUID; never throws.
const CpuFeatures& cpu_features();

struct CpuInfo {
  std::string model_name;
  int logical_cpus = 1;
  std::vector<CacheLevel> caches;
  CpuFeatures features;

  // First data/unified cache at the given level, or a zeroed default.
  CacheLevel level(int lvl) const;

  // One-line human readable summary (model, cores, cache sizes).
  std::string summary() const;
};

// Reads /proc/cpuinfo and /sys/devices/system/cpu/cpu0/cache.
// Missing information is left defaulted; never throws.
CpuInfo query_cpu_info();

}  // namespace gep
