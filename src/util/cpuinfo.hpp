// Host introspection: CPU model, core count, cache geometry.
//
// The paper's Table 2 lists the machines used for its experiments; every
// bench binary prints the equivalent row for the host it runs on so that
// EXPERIMENTS.md can record paper-vs-measured context.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gep {

struct CacheLevel {
  int level = 0;            // 1, 2, 3...
  std::string type;         // "Data", "Instruction", "Unified"
  std::size_t size_bytes = 0;
  std::size_t line_bytes = 0;
  int associativity = 0;    // 0 when unknown / fully associative
};

struct CpuInfo {
  std::string model_name;
  int logical_cpus = 1;
  std::vector<CacheLevel> caches;

  // First data/unified cache at the given level, or a zeroed default.
  CacheLevel level(int lvl) const;

  // One-line human readable summary (model, cores, cache sizes).
  std::string summary() const;
};

// Reads /proc/cpuinfo and /sys/devices/system/cpu/cpu0/cache.
// Missing information is left defaulted; never throws.
CpuInfo query_cpu_info();

}  // namespace gep
