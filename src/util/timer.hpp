// Wall-clock timing helpers used by benches and the examples.
#pragma once

#include <chrono>

namespace gep {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gep
