#include "util/peak.hpp"

#include "util/timer.hpp"

namespace gep {
namespace {

// Register-blocked multiply-add burst: the same shape as a dgemm
// micro-kernel (rank-1 updates into a 4x8 accumulator block), which is
// the highest-throughput double-precision pattern this library emits.
// The compiler keeps `acc` in vector registers and the two source rows
// in L1, so the measured rate is the machine's achievable multiply-add
// ceiling for this codebase — the denominator of "% of peak".
double gemm_burst(double* acc /*32*/, const double* a /*4*/,
                  const double* b /*8*/, long iters) {
  double c[4][8];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j) c[i][j] = acc[i * 8 + j];
  for (long it = 0; it < iters; ++it) {
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 8; ++j) c[i][j] += a[i] * b[j];
    }
  }
  double sum = 0;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j) {
      acc[i * 8 + j] = c[i][j];
      sum += c[i][j];
    }
  return sum;
}

}  // namespace

double measured_peak_gflops(double seconds) {
  static double cached = -1.0;
  if (cached > 0) return cached;

  double acc[32];
  double a[4] = {1.0000001, 0.9999999, 1.0000002, 0.9999998};
  double b[8] = {1e-9, -1e-9, 2e-9, -2e-9, 1e-9, -1e-9, 2e-9, -2e-9};
  for (int i = 0; i < 32; ++i) acc[i] = 0.0;

  volatile double sink = 0;
  long iters = 1 << 16;
  double best = 0;
  WallTimer total;
  while (total.seconds() < seconds) {
    WallTimer t;
    sink = sink + gemm_burst(acc, a, b, iters);
    double dt = t.seconds();
    // 32 accumulators x (1 mul + 1 add) per iteration.
    double gflops = 64.0 * static_cast<double>(iters) / dt / 1e9;
    if (gflops > best) best = gflops;
    if (dt < 0.01) iters *= 2;  // too short to time reliably; grow the burst
  }
  cached = best;
  return cached;
}

}  // namespace gep
