#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gep {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&] {
    for (auto w : width) out << "+" << std::string(w + 2, '-');
    out << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << "| " << std::setw(static_cast<int>(width[c])) << cell << " ";
    }
    out << "|\n";
  };
  line();
  emit(headers_);
  line();
  for (const auto& row : rows_) emit(row);
  line();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace gep
