// Aligned heap buffers for matrix storage.
//
// Cache-line / SIMD-width alignment keeps base-case kernels on their fast
// path and makes simulated cache-block boundaries match real ones.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace gep {

inline constexpr std::size_t kCacheLineBytes = 64;

// Allocates `count` objects of T aligned to `alignment` bytes.
// Returned memory is value-initialized only for trivially constructible T.
template <class T>
T* aligned_new(std::size_t count, std::size_t alignment = kCacheLineBytes) {
  static_assert(std::is_trivially_destructible_v<T>,
                "aligned buffers hold trivially destructible types only");
  if (count == 0) return nullptr;
  std::size_t bytes = count * sizeof(T);
  // std::aligned_alloc requires size to be a multiple of alignment.
  bytes = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, bytes);
  if (p == nullptr) throw std::bad_alloc{};
  return static_cast<T*>(p);
}

struct AlignedDeleter {
  void operator()(void* p) const noexcept { std::free(p); }
};

template <class T>
using AlignedPtr = std::unique_ptr<T[], AlignedDeleter>;

// RAII aligned buffer of `count` T, uninitialized.
template <class T>
AlignedPtr<T> make_aligned(std::size_t count,
                           std::size_t alignment = kCacheLineBytes) {
  return AlignedPtr<T>(aligned_new<T>(count, alignment));
}

}  // namespace gep
