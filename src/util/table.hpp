// Fixed-width console tables + CSV emission for benchmark output.
//
// Every bench binary prints the rows of the paper figure/table it
// regenerates; Table writes an aligned console rendering and can mirror
// the same rows into a CSV file for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gep {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; each cell is preformatted text. Row width may be shorter
  // than the header row (missing cells render empty).
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  void print(std::ostream& out) const;
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gep
