// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) for page
// checksums in the out-of-core layer.
//
// Uses the SSE4.2 crc32 instruction when the build targets it
// (-march=native on any x86-64 of the last decade); otherwise a
// slice-by-8 table implementation. Either way a 16 KB page costs a few
// microseconds at most, which keeps the fault-free checksum overhead of
// the out-of-core benches well under the 5% budget (docs/ROBUSTNESS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace gep {

namespace detail_crc {

inline constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

struct Crc32cTables {
  std::uint32_t t[8][256];

  Crc32cTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

inline const Crc32cTables& tables() {
  static const Crc32cTables tab;
  return tab;
}

inline std::uint32_t update_sw(std::uint32_t crc, const unsigned char* p,
                               std::size_t len) {
  const Crc32cTables& tab = tables();
  while (len >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tab.t[7][lo & 0xFF] ^ tab.t[6][(lo >> 8) & 0xFF] ^
          tab.t[5][(lo >> 16) & 0xFF] ^ tab.t[4][lo >> 24] ^
          tab.t[3][hi & 0xFF] ^ tab.t[2][(hi >> 8) & 0xFF] ^
          tab.t[1][(hi >> 16) & 0xFF] ^ tab.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) crc = tab.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  return crc;
}

#if defined(__SSE4_2__)
inline std::uint32_t update_hw(std::uint32_t crc, const unsigned char* p,
                               std::size_t len) {
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --len;
  }
  std::uint64_t c64 = crc;
  while (len >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c64 = _mm_crc32_u64(c64, v);
    p += 8;
    len -= 8;
  }
  crc = static_cast<std::uint32_t>(c64);
  while (len-- > 0) crc = _mm_crc32_u8(crc, *p++);
  return crc;
}
#endif

}  // namespace detail_crc

// CRC32C of `len` bytes. crc32c("123456789", 9) == 0xE3069283.
inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
#if defined(__SSE4_2__)
  crc = detail_crc::update_hw(crc, p, len);
#else
  crc = detail_crc::update_sw(crc, p, len);
#endif
  return ~crc;
}

}  // namespace gep
