#include "util/matrix_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>

namespace gep {

std::optional<Matrix<double>> read_matrix_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  index_t rows = 0, cols = 0;
  if (!(in >> rows >> cols) || rows <= 0 || cols <= 0) return std::nullopt;
  Matrix<double> m(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      if (!(in >> m(i, j))) return std::nullopt;
    }
  }
  return m;
}

bool write_matrix_file(const std::string& path, const Matrix<double>& m) {
  std::ofstream out(path);
  if (!out) return false;
  out << m.rows() << " " << m.cols() << "\n";
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j = 0; j < m.cols(); ++j) {
      out << m(i, j) << (j + 1 == m.cols() ? '\n' : ' ');
    }
  }
  return static_cast<bool>(out);
}

}  // namespace gep
