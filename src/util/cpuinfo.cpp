#include "util/cpuinfo.hpp"

#include <fstream>
#include <sstream>
#include <thread>

namespace gep {
namespace {

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

// Parses strings like "32K", "1024K", "8M" from sysfs cache size files.
std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size()) {
    if (s[i] == 'K' || s[i] == 'k') value *= 1024;
    if (s[i] == 'M' || s[i] == 'm') value *= 1024 * 1024;
  }
  return value;
}

}  // namespace

CacheLevel CpuInfo::level(int lvl) const {
  for (const auto& c : caches) {
    if (c.level == lvl && c.type != "Instruction") return c;
  }
  return CacheLevel{};
}

std::string CpuInfo::summary() const {
  std::ostringstream out;
  out << (model_name.empty() ? "unknown CPU" : model_name) << ", "
      << logical_cpus << " logical CPU(s)";
  for (const auto& c : caches) {
    if (c.type == "Instruction") continue;
    out << ", L" << c.level << "=" << (c.size_bytes >> 10) << "K";
    if (c.associativity > 0) out << "/" << c.associativity << "w";
    if (c.line_bytes > 0) out << "/B=" << c.line_bytes;
  }
  return out.str();
}

CpuInfo query_cpu_info() {
  CpuInfo info;
  info.logical_cpus =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (cpuinfo && std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      auto pos = line.find(':');
      if (pos != std::string::npos && pos + 2 <= line.size()) {
        info.model_name = line.substr(pos + 2);
      }
      break;
    }
  }

  for (int idx = 0; idx < 8; ++idx) {
    std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx) + "/";
    std::string lvl = read_first_line(base + "level");
    if (lvl.empty()) break;
    CacheLevel c;
    c.level = std::stoi(lvl);
    c.type = read_first_line(base + "type");
    c.size_bytes = parse_size(read_first_line(base + "size"));
    c.line_bytes = parse_size(read_first_line(base + "coherency_line_size"));
    std::string ways = read_first_line(base + "ways_of_associativity");
    if (!ways.empty()) c.associativity = std::stoi(ways);
    info.caches.push_back(c);
  }
  return info;
}

}  // namespace gep
