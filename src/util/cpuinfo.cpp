#include "util/cpuinfo.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define GEP_CPUINFO_X86 1
#else
#define GEP_CPUINFO_X86 0
#endif

namespace gep {
namespace {

#if GEP_CPUINFO_X86

// XCR0 via xgetbv; only callable once CPUID reports OSXSAVE.
std::uint64_t read_xcr0() {
  std::uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0u));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures detect_features() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  f.fma = (ecx & bit_FMA) != 0;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  if (osxsave) {
    const std::uint64_t xcr0 = read_xcr0();
    f.os_avx = (xcr0 & 0x6) == 0x6;          // XMM + YMM state saved
    f.os_avx512 = (xcr0 & 0xe6) == 0xe6;     // + opmask, ZMM0-15, ZMM16-31
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & bit_AVX2) != 0;
    f.avx512f = (ebx & bit_AVX512F) != 0;
  }
  return f;
}

#else

CpuFeatures detect_features() { return CpuFeatures{}; }

#endif  // GEP_CPUINFO_X86

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

// Parses strings like "32K", "1024K", "8M" from sysfs cache size files.
std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size()) {
    if (s[i] == 'K' || s[i] == 'k') value *= 1024;
    if (s[i] == 'M' || s[i] == 'm') value *= 1024 * 1024;
  }
  return value;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect_features();
  return f;
}

std::string CpuFeatures::summary() const {
  std::string s;
  auto add = [&](const char* name) {
    if (!s.empty()) s += '+';
    s += name;
  };
  if (avx2 && os_avx) add("avx2");
  if (fma && os_avx) add("fma");
  if (avx512f && os_avx512) add("avx512f");
  return s.empty() ? "none" : s;
}

CacheLevel CpuInfo::level(int lvl) const {
  for (const auto& c : caches) {
    if (c.level == lvl && c.type != "Instruction") return c;
  }
  return CacheLevel{};
}

std::string CpuInfo::summary() const {
  std::ostringstream out;
  out << (model_name.empty() ? "unknown CPU" : model_name) << ", "
      << logical_cpus << " logical CPU(s)";
  for (const auto& c : caches) {
    if (c.type == "Instruction") continue;
    out << ", L" << c.level << "=" << (c.size_bytes >> 10) << "K";
    if (c.associativity > 0) out << "/" << c.associativity << "w";
    if (c.line_bytes > 0) out << "/B=" << c.line_bytes;
  }
  out << ", simd=" << features.summary();
  return out.str();
}

CpuInfo query_cpu_info() {
  CpuInfo info;
  info.features = cpu_features();
  info.logical_cpus =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (cpuinfo && std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      auto pos = line.find(':');
      if (pos != std::string::npos && pos + 2 <= line.size()) {
        info.model_name = line.substr(pos + 2);
      }
      break;
    }
  }

  for (int idx = 0; idx < 8; ++idx) {
    std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx) + "/";
    std::string lvl = read_first_line(base + "level");
    if (lvl.empty()) break;
    CacheLevel c;
    c.level = std::stoi(lvl);
    c.type = read_first_line(base + "type");
    c.size_bytes = parse_size(read_first_line(base + "size"));
    c.line_bytes = parse_size(read_first_line(base + "coherency_line_size"));
    std::string ways = read_first_line(base + "ways_of_associativity");
    if (!ways.empty()) c.associativity = std::stoi(ways);
    info.caches.push_back(c);
  }
  return info;
}

}  // namespace gep
