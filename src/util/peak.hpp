// Measured floating-point peak of the host.
//
// The paper reports algorithm throughput as "% of peak" where peak is
// 2 x clock (one multiply + one add per cycle on the 2006-era machines).
// Modern cores have wider SIMD and FMA units, so instead of a formula we
// *measure* an achievable peak with a register-resident multiply-add loop
// and report throughput relative to that, which preserves the meaning of
// the paper's metric.
#pragma once

namespace gep {

// Returns measured peak in GFLOP/s (double precision multiply-add).
// Runs for roughly `seconds` wall time; result is cached after first call.
double measured_peak_gflops(double seconds = 0.25);

}  // namespace gep
