// Bit-interleaved (Z-Morton) blocked layout — Section 4.2's TLB
// optimization.
//
// The matrix is partitioned into base-size x base-size tiles; tiles are
// stored contiguously, ordered by the Morton interleave of their (tile
// row, tile column) index, with row-major data inside each tile. The
// I-GEP recursion then touches physically contiguous memory at every
// level, reducing TLB misses at large n. Conversion to/from row-major is
// O(n²) and is included in reported timings, as in the paper.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "util/aligned.hpp"

namespace gep {

// Interleaves the low 32 bits of x into even positions.
inline std::uint64_t spread_bits(std::uint64_t x) {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

// Morton code: row bits in odd positions, column bits in even positions.
inline std::uint64_t morton2(index_t row, index_t col) {
  return (spread_bits(static_cast<std::uint64_t>(row)) << 1) |
         spread_bits(static_cast<std::uint64_t>(col));
}

// Owning Z-Morton tiled buffer for an n x n matrix (n, bs powers of two,
// bs divides n).
template <class T>
class ZBlocked {
 public:
  ZBlocked(index_t n, index_t bs)
      : n_(n), bs_(bs), buf_(make_aligned<T>(static_cast<std::size_t>(n * n))) {
    assert(is_pow2(n) && is_pow2(bs) && bs <= n);
  }

  index_t n() const { return n_; }
  index_t block_size() const { return bs_; }

  // Pointer to the contiguous bs x bs tile at tile coordinates (ti, tj).
  T* tile(index_t ti, index_t tj) {
    return buf_.get() + static_cast<index_t>(morton2(ti, tj)) * bs_ * bs_;
  }
  const T* tile(index_t ti, index_t tj) const {
    return buf_.get() + static_cast<index_t>(morton2(ti, tj)) * bs_ * bs_;
  }

  // Element access (slow path — used by tests and conversions only).
  T& at(index_t i, index_t j) {
    return tile(i / bs_, j / bs_)[(i % bs_) * bs_ + (j % bs_)];
  }
  T at(index_t i, index_t j) const {
    return tile(i / bs_, j / bs_)[(i % bs_) * bs_ + (j % bs_)];
  }

  void load(const Matrix<T>& m) {
    assert(m.rows() == n_ && m.cols() == n_);
    const index_t tiles = n_ / bs_;
    for (index_t ti = 0; ti < tiles; ++ti) {
      for (index_t tj = 0; tj < tiles; ++tj) {
        T* dst = tile(ti, tj);
        const T* src = m.data() + ti * bs_ * n_ + tj * bs_;
        for (index_t r = 0; r < bs_; ++r) {
          for (index_t c = 0; c < bs_; ++c) dst[r * bs_ + c] = src[r * n_ + c];
        }
      }
    }
  }

  void store(Matrix<T>& m) const {
    assert(m.rows() == n_ && m.cols() == n_);
    const index_t tiles = n_ / bs_;
    for (index_t ti = 0; ti < tiles; ++ti) {
      for (index_t tj = 0; tj < tiles; ++tj) {
        const T* src = tile(ti, tj);
        T* dst = m.data() + ti * bs_ * n_ + tj * bs_;
        for (index_t r = 0; r < bs_; ++r) {
          for (index_t c = 0; c < bs_; ++c) dst[r * n_ + c] = src[r * bs_ + c];
        }
      }
    }
  }

 private:
  index_t n_;
  index_t bs_;
  AlignedPtr<T> buf_;
};

// --- Tile stores ----------------------------------------------------------
//
// The optimized typed I-GEP engine (gep/typed.hpp) addresses the matrix
// through a TileStore: tile(ti, tj) -> pointer, with a fixed row stride.
// RowMajorStore views an ordinary matrix; ZStore views a ZBlocked buffer.

template <class T>
struct RowMajorStore {
  T* data;
  index_t n;
  index_t bs;

  T* tile(index_t ti, index_t tj) const { return data + ti * bs * n + tj * bs; }
  index_t tile_stride() const { return n; }
  index_t block_size() const { return bs; }
};

template <class T>
struct ZStore {
  ZBlocked<T>* z;

  T* tile(index_t ti, index_t tj) const { return z->tile(ti, tj); }
  index_t tile_stride() const { return z->block_size(); }
  index_t block_size() const { return z->block_size(); }
};

}  // namespace gep
