// Typed I-GEP — the production engine (paper Figs. 4, 5, 6, 13, 14).
//
// I-GEP's recursive calls fall into four families by how the i/j/k
// intervals overlap: A (I = J = K), B (I = K), C (J = K), D (disjoint).
// Less overlap means fewer ordering constraints: within one call,
//   A: 6 stages  seq{ A, par{B,C}, D }  per k-half,
//   B: 4 stages  par{B,B}; par{D,D}  per k-half,
//   C: 4 stages  par{C,C}; par{D,D}  per k-half,
//   D: 2 stages  par{D,D,D,D}        per k-half.
// Executed sequentially this is exactly Fig. 4/5; executed with a
// fork-join invoker it is the multithreaded I-GEP of Fig. 6 with span
// O(n log² n) (Theorem 3.1).
//
// The engine is generic over an Invoker (sequential here; the
// work-stealing one lives in parallel/), a TileStore (row-major or
// Z-Morton; layout/zblocked.hpp) and a Problem supplying the pruning
// rule and the leaf kernel. Leaves are base-size tiles dispatched to the
// kernels in kernels.hpp — which themselves runtime-dispatch to the
// AVX2/FMA implementations in simd/ when the host supports them. The
// BoxKind matters for more than ordering: the di/dj flags each leaf
// derives from it tell the kernel wrappers when a tile is fully
// disjoint (D-kind, di == dj == false), which is what licenses routing
// GE/LU/MM leaves through the packed-panel GEMM (simd/gemm_leaf.hpp).
// Those D-kind leaves are in turn Strassen-eligible: gemm_tile[_scaled]
// consults simd/strassen.hpp first, so a leaf box whose edge clears
// strassen_min_m() (384 by default — i.e. a base size that large) runs
// the fused Strassen path with no changes here.
#pragma once

#include <type_traits>

#include "gep/kernels.hpp"
#include "layout/zblocked.hpp"
#include "matrix/matrix.hpp"
#include "obs/obs.hpp"

namespace gep {

enum class BoxKind { A, B, C, D };

inline char box_kind_char(BoxKind k) {
  return "ABCD"[static_cast<int>(k)];
}

// Runs callables one after another (the unthreaded engine).
struct SeqInvoker {
  template <class... Fs>
  void invoke(Fs&&... fs) {
    (static_cast<Fs&&>(fs)(), ...);
  }
};

namespace detail {

// Per-kind leaf instrumentation (counters live in the global registry).
// The "updates" counters accumulate the m³ update volume of each leaf
// box — the typed engine's work accounting, per recursion family.
// Preprocessor-guarded rather than if constexpr: with GEP_OBS=0 these
// names must not exist at all, so a GEP_OBS=0 translation unit can link
// against GEP_OBS=1 libraries without two same-named inline definitions
// whose obs::Counter members resolve to different types (an ODR trap).
#if GEP_OBS
struct TypedMetrics {
  obs::Counter leaf_calls[4];
  obs::Counter updates[4];
};
inline TypedMetrics& typed_metrics() {
  static TypedMetrics m{
      {obs::counter("typed.leaf_calls.A"), obs::counter("typed.leaf_calls.B"),
       obs::counter("typed.leaf_calls.C"), obs::counter("typed.leaf_calls.D")},
      {obs::counter("typed.updates.A"), obs::counter("typed.updates.B"),
       obs::counter("typed.updates.C"), obs::counter("typed.updates.D")}};
  return m;
}
#endif

// Default hint: the in-core engines pass nothing, and the if constexpr
// checks below make the hint plumbing compile away entirely for them.
struct NoHint {
  void operator()(index_t, index_t, index_t, index_t) const {}
};

template <class Inv, class Leaf, class Prune, class Hint = NoHint>
void typed_rec(Inv& inv, index_t i0, index_t j0, index_t k0, index_t m,
               index_t bs, const Leaf& leaf, const Prune& prune,
               const Hint& hint = {}, int depth = 0) {
  if (prune(i0, j0, k0, m)) return;
  const bool ik = (i0 == k0), jk = (j0 == k0);
  const BoxKind kind = ik ? (jk ? BoxKind::A : BoxKind::B)
                          : (jk ? BoxKind::C : BoxKind::D);
  // One relaxed atomic load when tracing is off; a recorded span when on.
  obs::ScopedSpan span(box_kind_char(kind), depth, i0, j0, k0, m);
  // Flight-recorder breadcrumb + stall-watchdog heartbeat: a wedged
  // worker's dump shows exactly which box it never left.
  obs::Watchdog::beat_this_thread();
  obs::FlightRecScope frec(box_kind_char(kind), depth,
                           static_cast<std::uint64_t>(m));
  if (m <= bs) {
#if GEP_OBS
    TypedMetrics& tm = typed_metrics();
    const int ki = static_cast<int>(kind);
    tm.leaf_calls[ki].inc();
    tm.updates[ki].inc(static_cast<std::uint64_t>(m) * m * m);
#endif
    // Sampled hardware-counter attribution (obs/profile.hpp): brackets
    // every Nth leaf per thread when the LeafSampler is enabled; one
    // relaxed load otherwise.
    obs::ScopedLeafSample sample(box_kind_char(kind), m);
    leaf(i0, j0, k0, m, kind);
    return;
  }
  const index_t h = m / 2;
  const index_t ka = k0, kb = k0 + h;
  auto R = [&](index_t ii, index_t jj, index_t kk) {
    typed_rec(inv, ii, jj, kk, h, bs, leaf, prune, hint, depth + 1);
  };
  // Prefetch hook: announce the (ii,jj,kk,h) subtrees of the NEXT stage
  // just before the current stage runs, giving the async I/O worker one
  // stage of compute to hide the fault behind (hint receivers derive the
  // subtree's first-leaf tiles from these corner coordinates). Pruned
  // subtrees execute nothing, so hinting them would pollute the cache.
  auto H = [&](index_t ii, index_t jj, index_t kk) {
    if constexpr (!std::is_same_v<Hint, NoHint>) {
      if (!prune(ii, jj, kk, h)) hint(ii, jj, kk, h);
    }
  };
  if (ik && jk) {  // A (Fig. 6 top): A; par{B,C}; D — per k-half
    H(i0, j0 + h, ka);
    H(i0 + h, j0, ka);
    R(i0, j0, ka);
    H(i0 + h, j0 + h, ka);
    inv.invoke([&] { R(i0, j0 + h, ka); }, [&] { R(i0 + h, j0, ka); });
    H(i0 + h, j0 + h, kb);
    R(i0 + h, j0 + h, ka);
    H(i0 + h, j0, kb);
    H(i0, j0 + h, kb);
    R(i0 + h, j0 + h, kb);
    H(i0, j0, kb);
    inv.invoke([&] { R(i0 + h, j0, kb); }, [&] { R(i0, j0 + h, kb); });
    R(i0, j0, kb);
  } else if (ik) {  // B: row panels share U; columns split
    H(i0 + h, j0, ka);
    H(i0 + h, j0 + h, ka);
    inv.invoke([&] { R(i0, j0, ka); }, [&] { R(i0, j0 + h, ka); });
    H(i0 + h, j0, kb);
    H(i0 + h, j0 + h, kb);
    inv.invoke([&] { R(i0 + h, j0, ka); }, [&] { R(i0 + h, j0 + h, ka); });
    H(i0, j0, kb);
    H(i0, j0 + h, kb);
    inv.invoke([&] { R(i0 + h, j0, kb); }, [&] { R(i0 + h, j0 + h, kb); });
    inv.invoke([&] { R(i0, j0, kb); }, [&] { R(i0, j0 + h, kb); });
  } else if (jk) {  // C: column panels share V; rows split
    H(i0, j0 + h, ka);
    H(i0 + h, j0 + h, ka);
    inv.invoke([&] { R(i0, j0, ka); }, [&] { R(i0 + h, j0, ka); });
    H(i0, j0 + h, kb);
    H(i0 + h, j0 + h, kb);
    inv.invoke([&] { R(i0, j0 + h, ka); }, [&] { R(i0 + h, j0 + h, ka); });
    H(i0, j0, kb);
    H(i0 + h, j0, kb);
    inv.invoke([&] { R(i0, j0 + h, kb); }, [&] { R(i0 + h, j0 + h, kb); });
    inv.invoke([&] { R(i0, j0, kb); }, [&] { R(i0 + h, j0, kb); });
  } else {  // D: fully disjoint; each k-half is one parallel stage
    H(i0, j0, kb);
    H(i0, j0 + h, kb);
    H(i0 + h, j0, kb);
    H(i0 + h, j0 + h, kb);
    inv.invoke([&] { R(i0, j0, ka); }, [&] { R(i0, j0 + h, ka); },
               [&] { R(i0 + h, j0, ka); }, [&] { R(i0 + h, j0 + h, ka); });
    inv.invoke([&] { R(i0, j0, kb); }, [&] { R(i0, j0 + h, kb); },
               [&] { R(i0 + h, j0, kb); }, [&] { R(i0 + h, j0 + h, kb); });
  }
}

// Matrix multiplication C += A·B is I-GEP's D function over three
// disjoint matrices; both k-halves of every level are single parallel
// stages, giving span O(n) (end of Section 3).
template <class Inv, class Leaf, class Hint = NoHint>
void mm_rec(Inv& inv, index_t i0, index_t j0, index_t k0, index_t m,
            index_t bs, const Leaf& leaf, const Hint& hint = {},
            int depth = 0) {
  obs::ScopedSpan span('D', depth, i0, j0, k0, m);
  obs::Watchdog::beat_this_thread();
  obs::FlightRecScope frec('D', depth, static_cast<std::uint64_t>(m));
  if (m <= bs) {
#if GEP_OBS
    static obs::Counter calls = obs::counter("typed.mm.leaf_calls");
    static obs::Counter upd = obs::counter("typed.mm.updates");
    calls.inc();
    upd.inc(static_cast<std::uint64_t>(m) * m * m);
#endif
    obs::ScopedLeafSample sample('D', m);
    leaf(i0, j0, k0, m);
    return;
  }
  const index_t h = m / 2;
  auto R = [&](index_t ii, index_t jj, index_t kk) {
    mm_rec(inv, ii, jj, kk, h, bs, leaf, hint, depth + 1);
  };
  // Same one-stage-ahead prefetch hook as typed_rec (nothing prunes).
  if constexpr (!std::is_same_v<Hint, NoHint>) {
    hint(i0, j0, k0 + h, h);
    hint(i0, j0 + h, k0 + h, h);
    hint(i0 + h, j0, k0 + h, h);
    hint(i0 + h, j0 + h, k0 + h, h);
  }
  for (index_t kk : {k0, k0 + h}) {
    inv.invoke([&] { R(i0, j0, kk); }, [&] { R(i0, j0 + h, kk); },
               [&] { R(i0 + h, j0, kk); }, [&] { R(i0 + h, j0 + h, kk); });
  }
}

}  // namespace detail

// --- Problem drivers -------------------------------------------------------

struct TypedOptions {
  index_t base_size = 64;  // paper: best 64 (Opteron) / 128 (Xeon)
};

// Floyd-Warshall over a TileStore. Σ is the full cube: nothing prunes.
template <class Inv, class Store>
void igep_floyd_warshall(Inv& inv, const Store& st, index_t n,
                         TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-fw");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t m, BoxKind) {
    T* x = st.tile(i0 / bs, j0 / bs);
    const T* u = st.tile(i0 / bs, k0 / bs);
    const T* v = st.tile(k0 / bs, j0 / bs);
    kernel_fw(x, u, v, m, s, s, s);
  };
  auto prune = [](index_t, index_t, index_t, index_t) { return false; };
  detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
}

// Floyd-Warshall with successor tracking: dst holds distances, sst the
// successor (next hop) indices; both advance in lockstep.
template <class Inv, class StoreD, class StoreS>
void igep_floyd_warshall_paths(Inv& inv, const StoreD& dst, const StoreS& sst,
                               index_t n, TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-fw-paths");
  using T = std::remove_reference_t<decltype(dst.tile(0, 0)[0])>;
  using I = std::remove_reference_t<decltype(sst.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = dst.tile_stride();
  const index_t ss = sst.tile_stride();
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t m, BoxKind) {
    T* x = dst.tile(i0 / bs, j0 / bs);
    const T* u = dst.tile(i0 / bs, k0 / bs);
    const T* v = dst.tile(k0 / bs, j0 / bs);
    I* xs = sst.tile(i0 / bs, j0 / bs);
    const I* us = sst.tile(i0 / bs, k0 / bs);
    kernel_fw_paths(x, u, v, xs, us, m, s, s, s, ss, ss);
  };
  auto prune = [](index_t, index_t, index_t, index_t) { return false; };
  detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
}

// Maximum-capacity (bottleneck) paths over a TileStore.
template <class Inv, class Store>
void igep_bottleneck(Inv& inv, const Store& st, index_t n,
                     TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-bottleneck");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t m, BoxKind) {
    T* x = st.tile(i0 / bs, j0 / bs);
    const T* u = st.tile(i0 / bs, k0 / bs);
    const T* v = st.tile(k0 / bs, j0 / bs);
    kernel_bottleneck(x, u, v, m, s, s, s);
  };
  auto prune = [](index_t, index_t, index_t, index_t) { return false; };
  detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
}

// Transitive closure (boolean or-and Floyd-Warshall) over a TileStore.
template <class Inv, class Store>
void igep_transitive_closure(Inv& inv, const Store& st, index_t n,
                             TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-tc");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t m, BoxKind) {
    T* x = st.tile(i0 / bs, j0 / bs);
    const T* u = st.tile(i0 / bs, k0 / bs);
    const T* v = st.tile(k0 / bs, j0 / bs);
    kernel_tc(x, u, v, m, s, s, s);
  };
  auto prune = [](index_t, index_t, index_t, index_t) { return false; };
  detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
}

// Gaussian elimination without pivoting (Σ: k < i && k < j).
template <class Inv, class Store>
void igep_gaussian(Inv& inv, const Store& st, index_t n,
                   TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-ge");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t m,
                  BoxKind kind) {
    T* x = st.tile(i0 / bs, j0 / bs);
    const T* u = st.tile(i0 / bs, k0 / bs);
    const T* v = st.tile(k0 / bs, j0 / bs);
    const T* w = st.tile(k0 / bs, k0 / bs);
    const bool di = (kind == BoxKind::A || kind == BoxKind::B);
    const bool dj = (kind == BoxKind::A || kind == BoxKind::C);
    kernel_ge(x, u, v, w, m, s, s, s, s, di, dj);
  };
  // Aligned ranges are equal or disjoint, so Σ misses the box iff the
  // i-range or the j-range lies strictly below the k-range.
  auto prune = [](index_t i0, index_t j0, index_t k0, index_t) {
    return i0 < k0 || j0 < k0;
  };
  detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
}

// LU decomposition without pivoting (Σ: k < i && k <= j); multipliers are
// stored in the strictly lower triangle.
template <class Inv, class Store>
void igep_lu(Inv& inv, const Store& st, index_t n, TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-lu");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t m,
                  BoxKind kind) {
    T* x = st.tile(i0 / bs, j0 / bs);
    const T* u = st.tile(i0 / bs, k0 / bs);
    const T* v = st.tile(k0 / bs, j0 / bs);
    const T* w = st.tile(k0 / bs, k0 / bs);
    const bool di = (kind == BoxKind::A || kind == BoxKind::B);
    const bool dj = (kind == BoxKind::A || kind == BoxKind::C);
    kernel_lu(x, u, v, w, m, s, s, s, s, di, dj);
  };
  auto prune = [](index_t i0, index_t j0, index_t k0, index_t) {
    return i0 < k0 || j0 < k0;
  };
  detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
}

// C += A·B with A, B, C in separate tile stores.
template <class Inv, class StoreC, class StoreA, class StoreB>
void igep_matmul(Inv& inv, const StoreC& cst, const StoreA& ast,
                 const StoreB& bst, index_t n, TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-mm");
  using T = std::remove_reference_t<decltype(cst.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t sc = cst.tile_stride();
  const index_t sa = ast.tile_stride();
  const index_t sb = bst.tile_stride();
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t m) {
    T* x = cst.tile(i0 / bs, j0 / bs);
    const T* a = ast.tile(i0 / bs, k0 / bs);
    const T* b = bst.tile(k0 / bs, j0 / bs);
    kernel_mm(x, a, b, m, sc, sa, sb);
  };
  detail::mm_rec(inv, 0, 0, 0, n, bs, leaf);
}

}  // namespace gep
