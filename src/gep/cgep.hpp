// H — C-GEP, the fully general cache-oblivious GEP (paper Fig. 3).
//
// Same recursion as I-GEP, but each update reads its c[i,k], c[k,j] and
// c[k,k] operands from saved snapshots (u0, u1, v0, v1) that hold exactly
// the states the iterative G would have seen (Table 1, column G):
//
//   u0[i,j] = c[i,j] after update <i,j,τ_ij(j-1)>   (read as u0[i,k], j<=k)
//   u1[i,j] = c[i,j] after update <i,j,τ_ij(j)>     (read as u1[i,k], j>k)
//   v0[i,j] = c[i,j] after update <i,j,τ_ij(i-1)>   (read as v0[k,j], i<=k)
//   v1[i,j] = c[i,j] after update <i,j,τ_ij(i)>     (read as v1[k,j], i>k)
//   w reads u0/u1[k,k] selected by (i>k) || (i==k && j>k).
//
// This makes H ≡ G for EVERY f and Σ_G, at the cost of 4n² extra cells.
//
// The reduced-space variant (run_cgep_compact) exploits that during the
// k-half [k1,k2] only u-columns and v-rows in [k1,k2] are ever read, and
// that at the half boundary every needed save with index >= k2 equals the
// *current* value of c (no update lies strictly between τ and the
// boundary, by maximality of τ). It therefore keeps only half-width
// slices (2n² extra) and re-initializes them between the two top-level
// k-phases — the paper's TR variant pushes the same idea to n²+n cells;
// see DESIGN.md §4(5). Both variants are validated against G on random
// (f, Σ_G) instances where I-GEP provably fails.
#pragma once

#include <algorithm>
#include <vector>

#include "gep/access.hpp"
#include "gep/functors.hpp"
#include "gep/igep.hpp"
#include "gep/update_set.hpp"

namespace gep {

struct CGepOptions {
  index_t base_size = 1;
};

namespace detail {

// Store concept: rectangular get/set in slice-local coordinates.
template <class Acc, class AuxU, class AuxV, class F, class S, class Hook>
class CGepEngine {
 public:
  CGepEngine(Acc& c, AuxU& u0, AuxU& u1, AuxV& v0, AuxV& v1, const F& f,
             const S& sigma, Hook* hook, index_t kbase, index_t kwidth,
             index_t base)
      : c_(c), u0_(u0), u1_(u1), v0_(v0), v1_(v1), f_(f), sigma_(sigma),
        hook_(hook), kbase_(kbase), kwidth_(kwidth), base_(base) {
    // The w operand only ever reads u0/u1 at diagonal cells (k,k); two
    // length-kwidth vectors (the "+n" of the paper's reduced variant)
    // serve those reads without touching the snapshot matrices. At
    // construction c holds the correct snapshot for every diagonal cell
    // in [kbase, kbase+kwidth) (initial matrix for full H; the phase
    // boundary state for the compact variant, by the τ-maximality
    // argument in run_cgep_compact_with_aux).
    d0_.resize(static_cast<std::size_t>(kwidth));
    d1_.resize(static_cast<std::size_t>(kwidth));
    for (index_t t = 0; t < kwidth; ++t) {
      auto v = c_.get(kbase + t, kbase + t);
      d0_[static_cast<std::size_t>(t)] = v;
      d1_[static_cast<std::size_t>(t)] = v;
    }
  }

  void rec(index_t i0, index_t j0, index_t k0, index_t m) {
    if (!sigma_.intersects_box(i0, i0 + m - 1, j0, j0 + m - 1, k0,
                               k0 + m - 1))
      return;
    if (m <= base_) {
      box_kernel(i0, j0, k0, m);
      return;
    }
    const index_t h = m / 2;
    const index_t k2 = k0 + h;
    rec(i0, j0, k0, h);
    rec(i0, j0 + h, k0, h);
    rec(i0 + h, j0, k0, h);
    rec(i0 + h, j0 + h, k0, h);
    rec(i0 + h, j0 + h, k2, h);
    rec(i0 + h, j0, k2, h);
    rec(i0, j0 + h, k2, h);
    rec(i0, j0, k2, h);
  }

  // Multithreaded C-GEP (paper Section 3: the Fig. 6 staging applies to
  // H unchanged — "a similar parallel algorithm with the same parallel
  // time bound applies to C-GEP"). Safe because parallel boxes within a
  // stage have disjoint X regions and snapshot writes target only the
  // updated cell's own slot, so all concurrent writes are disjoint.
  // NOTE: the hook is not invoked on this path (hooks are for the
  // sequential analysis/tests) — callers pass hook == nullptr.
  template <class Inv>
  void rec_parallel(Inv& inv, index_t i0, index_t j0, index_t k0,
                    index_t m) {
    if (!sigma_.intersects_box(i0, i0 + m - 1, j0, j0 + m - 1, k0,
                               k0 + m - 1))
      return;
    if (m <= base_) {
      box_kernel(i0, j0, k0, m);
      return;
    }
    const index_t h = m / 2;
    const index_t ka = k0, kb = k0 + h;
    auto R = [&](index_t ii, index_t jj, index_t kk) {
      rec_parallel(inv, ii, jj, kk, h);
    };
    const bool ik = (i0 == k0), jk = (j0 == k0);
    if (ik && jk) {  // A
      R(i0, j0, ka);
      inv.invoke([&] { R(i0, j0 + h, ka); }, [&] { R(i0 + h, j0, ka); });
      R(i0 + h, j0 + h, ka);
      R(i0 + h, j0 + h, kb);
      inv.invoke([&] { R(i0 + h, j0, kb); }, [&] { R(i0, j0 + h, kb); });
      R(i0, j0, kb);
    } else if (ik) {  // B
      inv.invoke([&] { R(i0, j0, ka); }, [&] { R(i0, j0 + h, ka); });
      inv.invoke([&] { R(i0 + h, j0, ka); }, [&] { R(i0 + h, j0 + h, ka); });
      inv.invoke([&] { R(i0 + h, j0, kb); }, [&] { R(i0 + h, j0 + h, kb); });
      inv.invoke([&] { R(i0, j0, kb); }, [&] { R(i0, j0 + h, kb); });
    } else if (jk) {  // C
      inv.invoke([&] { R(i0, j0, ka); }, [&] { R(i0 + h, j0, ka); });
      inv.invoke([&] { R(i0, j0 + h, ka); }, [&] { R(i0 + h, j0 + h, ka); });
      inv.invoke([&] { R(i0, j0 + h, kb); }, [&] { R(i0 + h, j0 + h, kb); });
      inv.invoke([&] { R(i0, j0, kb); }, [&] { R(i0 + h, j0, kb); });
    } else {  // D
      inv.invoke([&] { R(i0, j0, ka); }, [&] { R(i0, j0 + h, ka); },
                 [&] { R(i0 + h, j0, ka); }, [&] { R(i0 + h, j0 + h, ka); });
      inv.invoke([&] { R(i0, j0, kb); }, [&] { R(i0, j0 + h, kb); },
                 [&] { R(i0 + h, j0, kb); }, [&] { R(i0 + h, j0 + h, kb); });
    }
  }

  // Iterative kernel over a box. Operand cells inside the box's own
  // I x J region are read live (G's k/i/j order makes the live value
  // exactly the state Table 1 column G prescribes); all other operands
  // come from the saved snapshots. With base == 1 this is literally
  // Fig. 3 line 4 (the live/saved distinction coincides).
  //
  // The operand selectors (u0 vs u1 etc.) depend on j and i only through
  // the comparisons j <= k and i <= k, so the j-loop is split at j = k
  // and the u/w sources hoisted per segment — the same updates in the
  // same order, with the ternaries lifted out of the inner loop.
  void box_kernel(index_t i0, index_t j0, index_t k0, index_t m) {
    using T = typename Acc::value_type;
    const bool u_live = (j0 == k0);
    const bool v_live = (i0 == k0);
    const bool w_live = u_live && v_live;
    const index_t jend = j0 + m;
    for (index_t k = k0; k < k0 + m; ++k) {
      for (index_t i = i0; i < i0 + m; ++i) {
        // v source and (for i != k) w source are j-invariant.
        const bool i_gt_k = i > k;
        // Segment 1: j <= k (u0/u0-flavored); segment 2: j > k.
        const index_t jsplit = std::clamp(k + 1, j0, jend);
        run_segment(i, k, j0, jsplit, /*j_gt_k=*/false, u_live, v_live,
                    w_live, i_gt_k);
        run_segment(i, k, jsplit, jend, /*j_gt_k=*/true, u_live, v_live,
                    w_live, i_gt_k);
      }
    }
  }

  void run_segment(index_t i, index_t k, index_t jlo, index_t jhi,
                   bool j_gt_k, bool u_live, bool v_live, bool w_live,
                   bool i_gt_k) {
    using T = typename Acc::value_type;
    if (jlo >= jhi) return;
    // Hoisted u source (value still depends on j only when live, since
    // the live cell IS (i,k) — constant across the segment either way).
    const T u_saved = u_live ? T{} : (j_gt_k ? u1_ : u0_).get(i, k - kbase_);
    const bool w_from_u1 = i_gt_k || (i == k && j_gt_k);
    const T w_val =
        w_live ? c_.get(k, k)
               : (w_from_u1 ? d1_ : d0_)[static_cast<std::size_t>(k - kbase_)];
    for (index_t j = jlo; j < jhi; ++j) {
      if (!sigma_.contains(i, j, k)) continue;
      if (hook_) hook_->on_update(i, j, k);
      T x = c_.get(i, j);
      T u = u_live ? c_.get(i, k) : u_saved;
      T v = v_live ? c_.get(k, j)
                   : (i_gt_k ? v1_ : v0_).get(k - kbase_, j);
      T w = w_live ? c_.get(k, k) : w_val;
      T y = apply_f(f_, x, u, v, w, i, j, k);
      c_.set(i, j, y);
      save(i, j, k, y);
    }
  }

 private:
  // Fig. 3 lines 5-8: snapshot c[i,j] right after the update that leaves
  // it in state τ_ij(j-1) / τ_ij(j) / τ_ij(i-1) / τ_ij(i).
  // k == τ_ij(l)  <=>  k <= l && next_k(i,j,k) > l.
  void save(index_t i, index_t j, index_t k, typename Acc::value_type y) {
    const index_t nk = sigma_.next_k(i, j, k);
    if (j >= kbase_ && j < kbase_ + kwidth_) {
      if (k <= j - 1 && nk > j - 1) {
        u0_.set(i, j - kbase_, y);
        if (i == j) d0_[static_cast<std::size_t>(j - kbase_)] = y;
      }
      if (k <= j && nk > j) {
        u1_.set(i, j - kbase_, y);
        if (i == j) d1_[static_cast<std::size_t>(j - kbase_)] = y;
      }
    }
    if (i >= kbase_ && i < kbase_ + kwidth_) {
      if (k <= i - 1 && nk > i - 1) v0_.set(i - kbase_, j, y);
      if (k <= i && nk > i) v1_.set(i - kbase_, j, y);
    }
  }

  Acc& c_;
  AuxU& u0_;
  AuxU& u1_;
  AuxV& v0_;
  AuxV& v1_;
  std::vector<typename Acc::value_type> d0_, d1_;  // diagonal snapshots
  const F& f_;
  const S& sigma_;
  Hook* hook_;
  index_t kbase_;
  index_t kwidth_;
  index_t base_;
};

}  // namespace detail

// C-GEP with caller-supplied auxiliary stores (each must behave as an
// n x n snapshot of c's initial contents). Used directly by the
// out-of-core engine, which supplies disk-backed auxiliaries.
template <Accessor Acc, class AuxU, class AuxV, class F, UpdateSet S,
          class Hook = NoHook>
void run_cgep_with_aux(Acc& c, AuxU& u0, AuxU& u1, AuxV& v0, AuxV& v1,
                       const F& f, const S& sigma, CGepOptions opts = {},
                       Hook* hook = nullptr) {
  const index_t n = c.n();
  assert(is_pow2(n));
  detail::CGepEngine<Acc, AuxU, AuxV, F, S, Hook> eng(
      c, u0, u1, v0, v1, f, sigma, hook, /*kbase=*/0, /*kwidth=*/n,
      std::max<index_t>(1, opts.base_size));
  eng.rec(0, 0, 0, n);
}

// C-GEP, 4n²-space variant: allocates the four snapshot matrices.
template <class T, class F, UpdateSet S, class Hook = NoHook>
void run_cgep(Matrix<T>& c, const F& f, const S& sigma, CGepOptions opts = {},
              Hook* hook = nullptr) {
  Matrix<T> u0(c), u1(c), v0(c), v1(c);
  DirectAccess<T> ca(c.view()), a0(u0.view()), a1(u1.view()), b0(v0.view()),
      b1(v1.view());
  run_cgep_with_aux(ca, a0, a1, b0, b1, f, sigma, opts, hook);
}

// Multithreaded C-GEP (4n²-space) driven by a fork-join Invoker (see
// parallel/thread_pool.hpp's ParInvoker, or SeqInvoker for sequential
// staging). Same T_p = O(n³/p + n log² n) bound as parallel I-GEP.
template <class Inv, class T, class F, UpdateSet S>
void run_cgep_parallel(Inv& inv, Matrix<T>& c, const F& f, const S& sigma,
                       CGepOptions opts = {}) {
  const index_t n = c.rows();
  assert(is_pow2(n) && c.cols() == n);
  Matrix<T> u0(c), u1(c), v0(c), v1(c);
  DirectAccess<T> ca(c.view()), a0(u0.view()), a1(u1.view()), b0(v0.view()),
      b1(v1.view());
  detail::CGepEngine<DirectAccess<T>, DirectAccess<T>, DirectAccess<T>, F, S,
                     NoHook>
      eng(ca, a0, a1, b0, b1, f, sigma, nullptr, /*kbase=*/0, /*kwidth=*/n,
          std::max<index_t>(1, opts.base_size));
  eng.rec_parallel(inv, 0, 0, 0, n);
}

// C-GEP, reduced-space variant over caller-supplied slice stores: u0/u1
// must behave as n x (n/2) stores, v0/v1 as (n/2) x n stores (any
// Accessor-like get/set object — in-core matrices or OocMatrix slices).
// The engine re-initializes the slices from c between the two top-level
// k-phases: at the phase boundary every update with k < n/2 has been
// applied and none with k >= n/2, so for any save index l >= n/2-1 the
// needed snapshot c_{τ_ij(l)} equals the current c (no update of cell
// (i,j) lies in (τ_ij(l), l] ⊇ (τ_ij(l), n/2-1], by maximality of τ).
template <Accessor Acc, class AuxU, class AuxV, class F, UpdateSet S,
          class Hook = NoHook>
void run_cgep_compact_with_aux(Acc& c, AuxU& u0, AuxU& u1, AuxV& v0,
                               AuxV& v1, const F& f, const S& sigma,
                               CGepOptions opts = {}, Hook* hook = nullptr) {
  using T = typename Acc::value_type;
  const index_t n = c.n();
  assert(is_pow2(n));
  if (n == 1) {
    // Single cell: operands coincide with the cell itself.
    if (sigma.contains(0, 0, 0)) {
      if (hook) hook->on_update(0, 0, 0);
      T x = c.get(0, 0);
      c.set(0, 0,
            apply_f(f, x, x, x, x, index_t{0}, index_t{0}, index_t{0}));
    }
    return;
  }
  const index_t h = n / 2;
  const index_t base = std::max<index_t>(1, opts.base_size);

  auto load_slices = [&](index_t kbase) {
    for (index_t i = 0; i < n; ++i) {
      for (index_t kk = 0; kk < h; ++kk) {
        T val = c.get(i, kbase + kk);
        u0.set(i, kk, val);
        u1.set(i, kk, val);
      }
    }
    for (index_t kk = 0; kk < h; ++kk) {
      for (index_t j = 0; j < n; ++j) {
        T val = c.get(kbase + kk, j);
        v0.set(kk, j, val);
        v1.set(kk, j, val);
      }
    }
  };

  // Phase 1: k in [0, h). Slice values start at c's initial state, which
  // is the correct snapshot for every save not yet performed.
  load_slices(0);
  {
    detail::CGepEngine<Acc, AuxU, AuxV, F, S, Hook> eng(
        c, u0, u1, v0, v1, f, sigma, hook, /*kbase=*/0, /*kwidth=*/h, base);
    eng.rec(0, 0, 0, h);  // X11 forward
    eng.rec(0, h, 0, h);  // X12
    eng.rec(h, 0, 0, h);  // X21
    eng.rec(h, h, 0, h);  // X22
  }
  // Phase 2: k in [h, n).
  load_slices(h);
  {
    detail::CGepEngine<Acc, AuxU, AuxV, F, S, Hook> eng(
        c, u0, u1, v0, v1, f, sigma, hook, /*kbase=*/h, /*kwidth=*/h, base);
    eng.rec(h, h, h, h);  // X22 backward
    eng.rec(h, 0, h, h);  // X21
    eng.rec(0, h, h, h);  // X12
    eng.rec(0, 0, h, h);  // X11
  }
}

// In-core reduced-space C-GEP: allocates the 2n² extra cells.
template <class T, class F, UpdateSet S, class Hook = NoHook>
void run_cgep_compact(Matrix<T>& c, const F& f, const S& sigma,
                      CGepOptions opts = {}, Hook* hook = nullptr) {
  const index_t n = c.rows();
  assert(c.cols() == n);
  DirectAccess<T> ca(c.view());
  if (n == 1) {
    run_cgep_compact_with_aux(ca, ca, ca, ca, ca, f, sigma, opts, hook);
    return;
  }
  const index_t h = n / 2;
  Matrix<T> u0(n, h), u1(n, h), v0(h, n), v1(h, n);
  DirectAccess<T> a0(u0.view()), a1(u1.view()), b0(v0.view()), b1(v1.view());
  run_cgep_compact_with_aux(ca, a0, a1, b0, b1, f, sigma, opts, hook);
}

}  // namespace gep
