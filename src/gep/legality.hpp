// I-GEP legality testing — the compiler-optimization view of Section 2.3.
//
// Viewed as a loop transformation, I-GEP is a cache-oblivious tiling of
// the Fig. 1 triple loop. C-GEP is a *legal* transformation for every
// (f, Σ_G); I-GEP is legal only for instances where the operand-state
// differences pinned down by Theorem 2.2 / Table 1 do not change the
// output. An optimizer therefore needs a legality check before swapping
// G for I-GEP. This header provides:
//
//   * differential_check — randomized differential testing of I-GEP
//     against G over a family of random inputs. Sound for rejection
//     (any mismatch proves illegality); probabilistic for acceptance.
//   * known-instance helpers documenting the classes proven legal in
//     [6] (min-plus/FW-like idempotent semirings, GE/LU update sets,
//     or-and closure).
#pragma once

#include <cmath>

#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "gep/update_set.hpp"
#include "util/prng.hpp"

namespace gep::legality {

struct CheckResult {
  bool legal = true;       // no divergence found across all trials
  double max_diff = 0.0;   // largest |G - I-GEP| observed
  int trials_run = 0;
  index_t witness_i = -1;  // first diverging cell (when !legal)
  index_t witness_j = -1;
};

struct CheckOptions {
  int trials = 8;
  double tolerance = 1e-9;   // diffs above this rule I-GEP illegal
  double lo = -1.0, hi = 1.0;  // input value range
  std::uint64_t seed = 0x5eed;
};

// Randomized differential test: runs G and I-GEP on `trials` random
// matrices and compares. `f` must be a pure update function; `sigma` any
// UpdateSet. A returned legal=false is definitive; legal=true means "no
// counterexample found" (use enough trials, or rely on the proofs in [6]
// for the known classes).
template <class F, UpdateSet S>
CheckResult differential_check(const F& f, const S& sigma, index_t n,
                               CheckOptions opts = {}) {
  assert(is_pow2(n));
  CheckResult result;
  SplitMix64 rng(opts.seed);
  for (int t = 0; t < opts.trials; ++t) {
    Matrix<double> init(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) init(i, j) = rng.uniform(opts.lo, opts.hi);
    }
    Matrix<double> g = init, fmat = init;
    run_gep(g, f, sigma);
    run_igep(fmat, f, sigma, {1});
    ++result.trials_run;
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        double d = std::abs(g(i, j) - fmat(i, j));
        result.max_diff = std::max(result.max_diff, d);
        if (d > opts.tolerance && result.legal) {
          result.legal = false;
          result.witness_i = i;
          result.witness_j = j;
        }
      }
    }
    if (!result.legal) break;
  }
  return result;
}

}  // namespace gep::legality
