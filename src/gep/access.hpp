// Element-access adapters for the generic GEP engines.
//
// The iterative G, the recursive I-GEP F and C-GEP H are templated on an
// accessor so the *same* engine code runs
//   * in-core        (DirectAccess over a Matrix<T>),
//   * trace-counted  (cachesim::TracedAccess — feeds a cache simulator),
//   * out-of-core    (extmem::OocAccess — goes through the page cache).
//
// An accessor provides value-semantics get/set; engines never form long-
// lived references, which is what lets the out-of-core adapter page data
// in and out underneath them.
#pragma once

#include <concepts>

#include "matrix/matrix.hpp"

namespace gep {

template <class A>
concept Accessor = requires(A a, const A ca, index_t i,
                            typename A::value_type v) {
  typename A::value_type;
  { ca.n() } -> std::convertible_to<index_t>;
  { a.get(i, i) } -> std::convertible_to<typename A::value_type>;
  a.set(i, i, v);
};

// Plain in-memory accessor over a square MatrixView.
template <class T>
class DirectAccess {
 public:
  using value_type = T;

  explicit DirectAccess(MatrixView<T> m) : m_(m) {}

  // Square-matrix extent (aux slice stores never call this).
  index_t n() const {
    assert(m_.rows() == m_.cols());
    return m_.rows();
  }
  T get(index_t i, index_t j) const { return m_(i, j); }
  void set(index_t i, index_t j, T v) { m_(i, j) = v; }

 private:
  MatrixView<T> m_;
};

// No-op instrumentation hook; see trace.hpp for recording hooks.
struct NoHook {
  void on_update(index_t /*i*/, index_t /*j*/, index_t /*k*/) {}
};

}  // namespace gep
