// Base-case kernels for the typed I-GEP engine: runtime-dispatched.
//
// The portable reference kernels live in gep::scalar (below, unchanged
// from the original iterative base cases). The gep::kernel_* entry
// points every engine calls are thin dispatch wrappers: for double /
// float (and byte tiles for TC) they consult simd::active() once per
// leaf and route to the explicit AVX2/FMA implementations in
// simd/kernels_avx2.cpp; D-kind (fully disjoint) GE/LU/MM leaves of at
// least simd::kGemmMinM rows additionally route through the
// packed-panel GEMM in simd/gemm_leaf.cpp. Everything else — other
// element types, non-x86 hosts, $GEP_FORCE_SCALAR=1, and the semiring
// kernels in AVX-512 TUs (GEP_SIMD_ROUTE_SEMIRING below) — runs the
// scalar templates exactly as before. See docs/KERNELS.md.
//
// Numeric contract of the dispatch (tests/test_simd_kernels.cpp):
//   - fw / bottleneck / tc: AVX2 results are BIT-IDENTICAL to scalar
//     (same elementwise min/max/or/add, same tie resolution).
//   - ge / lu / mm: AVX2 uses FMA and a different summation order in
//     the packed path, so results are tolerance-equivalent to scalar
//     and deterministic run-to-run at a fixed dispatch level.
//   - kernel_lu vs kernel_lu_guarded route identically, so guarded and
//     unguarded runs stay bit-identical on healthy input.
//
// Each scalar kernel processes one m x m tile box of updates in G's
// k/i/j order with operand hoisting: the c[i,k]-derived coefficient is
// loop-invariant in j, so the inner loop is a unit-stride vectorizable
// sweep. This is the paper's Section 4.2 recipe (iterative base case,
// divisions hoisted out of the innermost loop); `restrict` is applied
// only where the tile arguments are guaranteed disjoint (D-kind boxes).
//
// Kernel arguments follow the paper's X/U/V/W naming:
//   x — the updated tile           (c[I x J])
//   u — the coefficient tile       (c[I x K])
//   v — the row tile               (c[K x J])
//   w — the diagonal tile          (c[K x K])
// `diag_i` means I == K (updates restricted to i > k), `diag_j` means
// J == K (updates restricted to j >= k resp. j > k). Tiles may alias
// when ranges coincide; kernels are written to be alias-correct.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "gep/numeric_guard.hpp"
#include "matrix/matrix.hpp"
#include "simd/dispatch.hpp"
#include "simd/gemm_leaf.hpp"
#include "simd/kernels_avx2.hpp"

// The semiring kernels (fw / bottleneck / tc) are pure elementwise
// sweeps with no reductions across the vector lanes — exactly the shape
// compilers autovectorize perfectly. In a TU compiled with AVX-512
// enabled (e.g. -march=native on a 512-bit host, the GEP_NATIVE_ARCH=ON
// default), the autovectorized scalar template is 512 bits wide and
// beats the explicit 256-bit kernels, so routing there would be a
// de-optimization. Route them to AVX2 only where the TU's own codegen
// cannot already match it; portable (non-native) builds — the reason
// runtime dispatch exists — still route and win. All TUs of one build
// share arch flags, so this compile-time fork is ODR-consistent.
// The FMA kernels (ge / lu / mm) always route: packing + register
// blocking beat autovectorization at any ISA width.
#if GEP_SIMD_X86 && !defined(__AVX512F__)
#define GEP_SIMD_ROUTE_SEMIRING 1
#else
#define GEP_SIMD_ROUTE_SEMIRING 0
#endif

namespace gep {
namespace scalar {

// Floyd-Warshall relaxation over one box; Σ is the full cube, so the
// flags are irrelevant. Aliasing (A/B/C boxes) is benign: with a
// zero-diagonal metric, the k-row and k-column are fixed points of
// iteration k, so the hoisted u_ik stays valid across the j sweep.
template <class T>
void kernel_fw(T* x, const T* u, const T* v, index_t m, index_t sx,
               index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      const T uik = u[i * su + k];
      T* xi = x + i * sx;
      for (index_t j = 0; j < m; ++j) {
        xi[j] = std::min(xi[j], static_cast<T>(uik + vk[j]));
      }
    }
  }
}

// Gaussian elimination without pivoting (no multipliers stored):
// x[i][j] -= (u[i][k] / w[k][k]) * v[k][j] over the box, with the
// division hoisted out of the inner loop.
template <class T>
void kernel_ge(T* x, const T* u, const T* v, const T* w, index_t m,
               index_t sx, index_t su, index_t sv, index_t sw, bool diag_i,
               bool diag_j) {
  for (index_t k = 0; k < m; ++k) {
    const T wkk = w[k * sw + k];
    const T* vk = v + k * sv;
    const index_t ilo = diag_i ? k + 1 : 0;
    const index_t jlo = diag_j ? k + 1 : 0;
    for (index_t i = ilo; i < m; ++i) {
      const T t = u[i * su + k] / wkk;
      T* xi = x + i * sx;
      for (index_t j = jlo; j < m; ++j) xi[j] -= t * vk[j];
    }
  }
}

// LU decomposition without pivoting (multipliers stored in place).
// When J == K the j == k update computes the multiplier x[i][k] /= w[k][k]
// before the row sweep; when J != K the multipliers already live in u.
template <class T>
void kernel_lu(T* x, const T* u, const T* v, const T* w, index_t m,
               index_t sx, index_t su, index_t sv, index_t sw, bool diag_i,
               bool diag_j) {
  for (index_t k = 0; k < m; ++k) {
    const T wkk = w[k * sw + k];
    const T* vk = v + k * sv;
    const index_t ilo = diag_i ? k + 1 : 0;
    const index_t jlo = diag_j ? k + 1 : 0;
    for (index_t i = ilo; i < m; ++i) {
      T* xi = x + i * sx;
      T uik;
      if (diag_j) {
        xi[k] /= wkk;  // <i,k,k>: store multiplier (x aliases u here)
        uik = xi[k];
      } else {
        uik = u[i * su + k];
      }
      for (index_t j = jlo; j < m; ++j) xi[j] -= uik * vk[j];
    }
  }
}

// kernel_lu with a pivot guard: every pivot consulted while J == K runs
// through PivotGuard::admit before the division. Boosting is only legal
// where the pivot is being CREATED — the A-kind diagonal boxes
// (diag_i && diag_j), where w aliases the write-pinned x tile, so the
// floored value persists and every later reader (B/C/D boxes) sees it.
// k_base is the box's global elimination offset (error messages and
// reports index pivots in matrix coordinates). w is non-const because
// Boost rewrites the slot; Throw/Report never write through it.
template <class T>
void kernel_lu_guarded(T* x, const T* u, const T* v, T* w, index_t m,
                       index_t sx, index_t su, index_t sv, index_t sw,
                       bool diag_i, bool diag_j, const PivotGuard& guard,
                       index_t k_base) {
  for (index_t k = 0; k < m; ++k) {
    T wkk = w[k * sw + k];
    if (diag_j) {
      wkk = guard.admit(&w[k * sw + k], k_base + k,
                        /*boostable=*/diag_i && diag_j);
    }
    const T* vk = v + k * sv;
    const index_t ilo = diag_i ? k + 1 : 0;
    const index_t jlo = diag_j ? k + 1 : 0;
    for (index_t i = ilo; i < m; ++i) {
      T* xi = x + i * sx;
      T uik;
      if (diag_j) {
        xi[k] /= wkk;
        uik = xi[k];
      } else {
        uik = u[i * su + k];
      }
      for (index_t j = jlo; j < m; ++j) xi[j] -= uik * vk[j];
    }
  }
}

// Floyd-Warshall relaxation with successor tracking: whenever a strict
// improvement x[i][j] > u[i][k] + v[k][j] is applied, the successor of
// (i,j) becomes the successor of (i,k) — the first hop of the improving
// path. The successor tiles alias exactly as the distance tiles do, so
// the state a successor is read in always matches the state of its
// distance (both matrices advance in lockstep).
template <class T, class I>
void kernel_fw_paths(T* x, const T* u, const T* v, I* sx_succ,
                     const I* su_succ, index_t m, index_t sx, index_t su,
                     index_t sv, index_t ssx, index_t ssu) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      const T uik = u[i * su + k];
      const I sik = su_succ[i * ssu + k];
      T* xi = x + i * sx;
      I* si = sx_succ + i * ssx;
      for (index_t j = 0; j < m; ++j) {
        const T cand = uik + vk[j];
        if (cand < xi[j]) {
          xi[j] = cand;
          si[j] = sik;
        }
      }
    }
  }
}

// Maximum-capacity (bottleneck) paths over the (max, min) semiring:
// x[i][j] = max(x[i][j], min(u[i][k], v[k][j])). Idempotent like min-plus,
// so it is an I-GEP-legal instance; the aliasing argument mirrors
// kernel_fw (the diagonal is +infinity capacity, a fixed point).
template <class T>
void kernel_bottleneck(T* x, const T* u, const T* v, index_t m, index_t sx,
                       index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      const T uik = u[i * su + k];
      T* xi = x + i * sx;
      for (index_t j = 0; j < m; ++j) {
        xi[j] = std::max(xi[j], std::min(uik, vk[j]));
      }
    }
  }
}

// Transitive closure over the boolean or-and semiring:
// x[i][j] |= u[i][k] & v[k][j]. The u[i][k] test hoists to a row skip —
// and stays valid under aliasing, because the j == k update
// x[i][k] |= x[i][k] & w never changes x[i][k].
template <class T>
void kernel_tc(T* x, const T* u, const T* v, index_t m, index_t sx,
               index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      if (!u[i * su + k]) continue;
      T* xi = x + i * sx;
      for (index_t j = 0; j < m; ++j) {
        xi[j] = static_cast<T>(xi[j] | vk[j]);
      }
    }
  }
}

// Matrix multiplication accumulate: x += u * v. Only ever called on
// disjoint tiles, so restrict is sound and the compiler can vectorize
// and unroll freely.
template <class T>
void kernel_mm(T* __restrict x, const T* __restrict u, const T* __restrict v,
               index_t m, index_t sx, index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      const T uik = u[i * su + k];
      T* xi = x + i * sx;
      for (index_t j = 0; j < m; ++j) xi[j] += uik * vk[j];
    }
  }
}

}  // namespace scalar

namespace detail {

// True for element types with an explicit AVX2 kernel set.
template <class T>
inline constexpr bool simd_vec_type =
    std::is_same_v<T, double> || std::is_same_v<T, float>;

// True for 1-byte integral types the TC byte kernel serves.
template <class T>
inline constexpr bool simd_byte_type =
    std::is_integral_v<T> && sizeof(T) == 1;

// One dispatch decision per leaf call, with the obs tick.
inline bool leaf_use_avx2() {
#if GEP_SIMD_X86
  const simd::Level l = simd::active();
  simd::note_leaf(l);
  return l == simd::Level::Avx2;
#else
  simd::note_leaf(simd::Level::Scalar);
  return false;
#endif
}

}  // namespace detail

// --- dispatch wrappers (the names every engine calls) ----------------------

template <class T>
void kernel_fw(T* x, const T* u, const T* v, index_t m, index_t sx,
               index_t su, index_t sv) {
#if GEP_SIMD_ROUTE_SEMIRING
  if constexpr (detail::simd_vec_type<T>) {
    if (detail::leaf_use_avx2()) {
      simd::fw_avx2(x, u, v, m, sx, su, sv);
      return;
    }
  } else {
    simd::note_leaf(simd::Level::Scalar);
  }
#else
  simd::note_leaf(simd::Level::Scalar);
#endif
  scalar::kernel_fw(x, u, v, m, sx, su, sv);
}

template <class T>
void kernel_ge(T* x, const T* u, const T* v, const T* w, index_t m,
               index_t sx, index_t su, index_t sv, index_t sw, bool diag_i,
               bool diag_j) {
#if GEP_SIMD_X86
  if constexpr (detail::simd_vec_type<T>) {
    if (detail::leaf_use_avx2()) {
      if (!diag_i && !diag_j && m >= simd::gemm_min_m()) {
        // D-kind leaf: fold the division into A-packing, run as GEMM.
        simd::gemm_tile_scaled(x, u, v, w, m, sx, su, sv, sw);
      } else {
        simd::ge_avx2(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j);
      }
      return;
    }
  } else {
    simd::note_leaf(simd::Level::Scalar);
  }
#else
  simd::note_leaf(simd::Level::Scalar);
#endif
  scalar::kernel_ge(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j);
}

template <class T>
void kernel_lu(T* x, const T* u, const T* v, const T* w, index_t m,
               index_t sx, index_t su, index_t sv, index_t sw, bool diag_i,
               bool diag_j) {
#if GEP_SIMD_X86
  if constexpr (detail::simd_vec_type<T>) {
    if (detail::leaf_use_avx2()) {
      if (!diag_i && !diag_j && m >= simd::gemm_min_m()) {
        // D-kind leaf: multipliers already live in u — pure schur GEMM.
        simd::gemm_tile(x, u, v, m, sx, su, sv, T{-1});
      } else {
        // lu_avx2 takes w mutable for the guarded variant; the
        // unguarded call (guard == nullptr) never writes through it.
        simd::lu_avx2(x, u, v, const_cast<T*>(w), m, sx, su, sv, sw, diag_i,
                      diag_j, /*guard=*/nullptr, /*k_base=*/0);
      }
      return;
    }
  } else {
    simd::note_leaf(simd::Level::Scalar);
  }
#else
  simd::note_leaf(simd::Level::Scalar);
#endif
  scalar::kernel_lu(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j);
}

template <class T>
void kernel_lu_guarded(T* x, const T* u, const T* v, T* w, index_t m,
                       index_t sx, index_t su, index_t sv, index_t sw,
                       bool diag_i, bool diag_j, const PivotGuard& guard,
                       index_t k_base) {
#if GEP_SIMD_X86
  if constexpr (detail::simd_vec_type<T>) {
    if (detail::leaf_use_avx2()) {
      if (!diag_i && !diag_j && m >= simd::gemm_min_m()) {
        // D-kind never consults the guard (diag_j is false) — identical
        // routing to kernel_lu keeps guarded == unguarded bitwise.
        simd::gemm_tile(x, u, v, m, sx, su, sv, T{-1});
      } else {
        simd::lu_avx2(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j, &guard,
                      k_base);
      }
      return;
    }
  } else {
    simd::note_leaf(simd::Level::Scalar);
  }
#else
  simd::note_leaf(simd::Level::Scalar);
#endif
  scalar::kernel_lu_guarded(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j,
                            guard, k_base);
}

// Successor tracking is branchy per element (data-dependent stores), so
// it stays on the scalar path at every dispatch level.
template <class T, class I>
void kernel_fw_paths(T* x, const T* u, const T* v, I* sx_succ,
                     const I* su_succ, index_t m, index_t sx, index_t su,
                     index_t sv, index_t ssx, index_t ssu) {
  simd::note_leaf(simd::Level::Scalar);
  scalar::kernel_fw_paths(x, u, v, sx_succ, su_succ, m, sx, su, sv, ssx,
                          ssu);
}

template <class T>
void kernel_bottleneck(T* x, const T* u, const T* v, index_t m, index_t sx,
                       index_t su, index_t sv) {
#if GEP_SIMD_ROUTE_SEMIRING
  if constexpr (detail::simd_vec_type<T>) {
    if (detail::leaf_use_avx2()) {
      simd::bottleneck_avx2(x, u, v, m, sx, su, sv);
      return;
    }
  } else {
    simd::note_leaf(simd::Level::Scalar);
  }
#else
  simd::note_leaf(simd::Level::Scalar);
#endif
  scalar::kernel_bottleneck(x, u, v, m, sx, su, sv);
}

template <class T>
void kernel_tc(T* x, const T* u, const T* v, index_t m, index_t sx,
               index_t su, index_t sv) {
#if GEP_SIMD_ROUTE_SEMIRING
  if constexpr (detail::simd_byte_type<T>) {
    if (detail::leaf_use_avx2()) {
      simd::tc_avx2(reinterpret_cast<std::uint8_t*>(x),
                    reinterpret_cast<const std::uint8_t*>(u),
                    reinterpret_cast<const std::uint8_t*>(v), m, sx, su, sv);
      return;
    }
  } else {
    simd::note_leaf(simd::Level::Scalar);
  }
#else
  simd::note_leaf(simd::Level::Scalar);
#endif
  scalar::kernel_tc(x, u, v, m, sx, su, sv);
}

template <class T>
void kernel_mm(T* x, const T* u, const T* v, index_t m, index_t sx,
               index_t su, index_t sv) {
#if GEP_SIMD_X86
  if constexpr (detail::simd_vec_type<T>) {
    if (detail::leaf_use_avx2()) {
      if (m >= simd::gemm_min_m()) {
        simd::gemm_tile(x, u, v, m, sx, su, sv, T{1});
      } else {
        simd::mm_avx2(x, u, v, m, sx, su, sv);
      }
      return;
    }
  } else {
    simd::note_leaf(simd::Level::Scalar);
  }
#else
  simd::note_leaf(simd::Level::Scalar);
#endif
  scalar::kernel_mm(x, u, v, m, sx, su, sv);
}

}  // namespace gep
