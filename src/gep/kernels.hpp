// Iterative base-case kernels for the typed I-GEP engine.
//
// Each kernel processes one m x m tile box of updates in G's k/i/j order
// with operand hoisting: the c[i,k]-derived coefficient is loop-invariant
// in j, so the inner loop is a unit-stride vectorizable sweep. This is
// the paper's Section 4.2 recipe (iterative base case, divisions hoisted
// out of the innermost loop); `restrict` is applied only where the tile
// arguments are guaranteed disjoint (D-kind boxes).
//
// Kernel arguments follow the paper's X/U/V/W naming:
//   x — the updated tile           (c[I x J])
//   u — the coefficient tile       (c[I x K])
//   v — the row tile               (c[K x J])
//   w — the diagonal tile          (c[K x K])
// `diag_i` means I == K (updates restricted to i > k), `diag_j` means
// J == K (updates restricted to j >= k resp. j > k). Tiles may alias
// when ranges coincide; kernels are written to be alias-correct.
#pragma once

#include <algorithm>

#include "gep/numeric_guard.hpp"
#include "matrix/matrix.hpp"

namespace gep {

// Floyd-Warshall relaxation over one box; Σ is the full cube, so the
// flags are irrelevant. Aliasing (A/B/C boxes) is benign: with a
// zero-diagonal metric, the k-row and k-column are fixed points of
// iteration k, so the hoisted u_ik stays valid across the j sweep.
template <class T>
void kernel_fw(T* x, const T* u, const T* v, index_t m, index_t sx,
               index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      const T uik = u[i * su + k];
      T* xi = x + i * sx;
      for (index_t j = 0; j < m; ++j) {
        xi[j] = std::min(xi[j], static_cast<T>(uik + vk[j]));
      }
    }
  }
}

// Gaussian elimination without pivoting (no multipliers stored):
// x[i][j] -= (u[i][k] / w[k][k]) * v[k][j] over the box, with the
// division hoisted out of the inner loop.
template <class T>
void kernel_ge(T* x, const T* u, const T* v, const T* w, index_t m,
               index_t sx, index_t su, index_t sv, index_t sw, bool diag_i,
               bool diag_j) {
  for (index_t k = 0; k < m; ++k) {
    const T wkk = w[k * sw + k];
    const T* vk = v + k * sv;
    const index_t ilo = diag_i ? k + 1 : 0;
    const index_t jlo = diag_j ? k + 1 : 0;
    for (index_t i = ilo; i < m; ++i) {
      const T t = u[i * su + k] / wkk;
      T* xi = x + i * sx;
      for (index_t j = jlo; j < m; ++j) xi[j] -= t * vk[j];
    }
  }
}

// LU decomposition without pivoting (multipliers stored in place).
// When J == K the j == k update computes the multiplier x[i][k] /= w[k][k]
// before the row sweep; when J != K the multipliers already live in u.
template <class T>
void kernel_lu(T* x, const T* u, const T* v, const T* w, index_t m,
               index_t sx, index_t su, index_t sv, index_t sw, bool diag_i,
               bool diag_j) {
  for (index_t k = 0; k < m; ++k) {
    const T wkk = w[k * sw + k];
    const T* vk = v + k * sv;
    const index_t ilo = diag_i ? k + 1 : 0;
    const index_t jlo = diag_j ? k + 1 : 0;
    for (index_t i = ilo; i < m; ++i) {
      T* xi = x + i * sx;
      T uik;
      if (diag_j) {
        xi[k] /= wkk;  // <i,k,k>: store multiplier (x aliases u here)
        uik = xi[k];
      } else {
        uik = u[i * su + k];
      }
      for (index_t j = jlo; j < m; ++j) xi[j] -= uik * vk[j];
    }
  }
}

// kernel_lu with a pivot guard: every pivot consulted while J == K runs
// through PivotGuard::admit before the division. Boosting is only legal
// where the pivot is being CREATED — the A-kind diagonal boxes
// (diag_i && diag_j), where w aliases the write-pinned x tile, so the
// floored value persists and every later reader (B/C/D boxes) sees it.
// k_base is the box's global elimination offset (error messages and
// reports index pivots in matrix coordinates). w is non-const because
// Boost rewrites the slot; Throw/Report never write through it.
template <class T>
void kernel_lu_guarded(T* x, const T* u, const T* v, T* w, index_t m,
                       index_t sx, index_t su, index_t sv, index_t sw,
                       bool diag_i, bool diag_j, const PivotGuard& guard,
                       index_t k_base) {
  for (index_t k = 0; k < m; ++k) {
    T wkk = w[k * sw + k];
    if (diag_j) {
      wkk = guard.admit(&w[k * sw + k], k_base + k,
                        /*boostable=*/diag_i && diag_j);
    }
    const T* vk = v + k * sv;
    const index_t ilo = diag_i ? k + 1 : 0;
    const index_t jlo = diag_j ? k + 1 : 0;
    for (index_t i = ilo; i < m; ++i) {
      T* xi = x + i * sx;
      T uik;
      if (diag_j) {
        xi[k] /= wkk;
        uik = xi[k];
      } else {
        uik = u[i * su + k];
      }
      for (index_t j = jlo; j < m; ++j) xi[j] -= uik * vk[j];
    }
  }
}

// Floyd-Warshall relaxation with successor tracking: whenever a strict
// improvement x[i][j] > u[i][k] + v[k][j] is applied, the successor of
// (i,j) becomes the successor of (i,k) — the first hop of the improving
// path. The successor tiles alias exactly as the distance tiles do, so
// the state a successor is read in always matches the state of its
// distance (both matrices advance in lockstep).
template <class T, class I>
void kernel_fw_paths(T* x, const T* u, const T* v, I* sx_succ,
                     const I* su_succ, index_t m, index_t sx, index_t su,
                     index_t sv, index_t ssx, index_t ssu) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      const T uik = u[i * su + k];
      const I sik = su_succ[i * ssu + k];
      T* xi = x + i * sx;
      I* si = sx_succ + i * ssx;
      for (index_t j = 0; j < m; ++j) {
        const T cand = uik + vk[j];
        if (cand < xi[j]) {
          xi[j] = cand;
          si[j] = sik;
        }
      }
    }
  }
}

// Maximum-capacity (bottleneck) paths over the (max, min) semiring:
// x[i][j] = max(x[i][j], min(u[i][k], v[k][j])). Idempotent like min-plus,
// so it is an I-GEP-legal instance; the aliasing argument mirrors
// kernel_fw (the diagonal is +infinity capacity, a fixed point).
template <class T>
void kernel_bottleneck(T* x, const T* u, const T* v, index_t m, index_t sx,
                       index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      const T uik = u[i * su + k];
      T* xi = x + i * sx;
      for (index_t j = 0; j < m; ++j) {
        xi[j] = std::max(xi[j], std::min(uik, vk[j]));
      }
    }
  }
}

// Transitive closure over the boolean or-and semiring:
// x[i][j] |= u[i][k] & v[k][j]. The u[i][k] test hoists to a row skip —
// and stays valid under aliasing, because the j == k update
// x[i][k] |= x[i][k] & w never changes x[i][k].
template <class T>
void kernel_tc(T* x, const T* u, const T* v, index_t m, index_t sx,
               index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      if (!u[i * su + k]) continue;
      T* xi = x + i * sx;
      for (index_t j = 0; j < m; ++j) {
        xi[j] = static_cast<T>(xi[j] | vk[j]);
      }
    }
  }
}

// Matrix multiplication accumulate: x += u * v. Only ever called on
// disjoint tiles, so restrict is sound and the compiler can vectorize
// and unroll freely.
template <class T>
void kernel_mm(T* __restrict x, const T* __restrict u, const T* __restrict v,
               index_t m, index_t sx, index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      const T uik = u[i * su + k];
      T* xi = x + i * sx;
      for (index_t j = 0; j < m; ++j) xi[j] += uik * vk[j];
    }
  }
}

}  // namespace gep
