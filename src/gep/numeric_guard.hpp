// Numeric breakdown guards for the no-pivot GEP kernels.
//
// The paper's Gaussian elimination / LU instances never pivot: the
// caller promises nonsingular leading principal minors (diagonally
// dominant, SPD, ...). When that promise is broken the factorization
// silently divides by a tiny or zero pivot and floods the factors with
// inf/nan. This header makes the failure mode explicit and configurable:
//
//   - PivotGuard: a runtime check the LU kernels consult at each pivot.
//     |w_kk| <= tiny (or non-finite) is a BREAKDOWN, handled per
//     BreakdownPolicy: Throw (typed NumericBreakdownError), Boost
//     (replace the pivot with a sign-preserving floor where the kernel
//     owns the slot — the A-kind diagonal boxes that create pivots),
//     or Report (count and continue, caller inspects the report).
//   - Growth-factor monitoring: max|LU| / max|A| — the classic
//     no-pivot instability signal (Wilkinson); non-finite factors are
//     the overflow end of the same spectrum.
//   - Randomized residual checks: Freivalds' +-1-vector test for
//     matmul (apps.hpp) and row-sampled ||A - LU|| for factorizations
//     (lu_residual_sample below) — O(n^2)-per-iteration certificates
//     that the O(n^3) result is right.
//
// All events are mirrored into the obs registry under robust.*
// (breakdowns, pivot_boosts, residual_checks, residual_failures) so
// they land in BENCH JSON next to the I/O fault counters.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "matrix/matrix.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "util/prng.hpp"

namespace gep {

enum class BreakdownPolicy {
  Throw,   // raise NumericBreakdownError at the offending pivot
  Boost,   // floor the pivot (in-core: shift the diagonal and retry)
  Report,  // count it and continue; the caller reads the report
};

class NumericBreakdownError : public std::runtime_error {
 public:
  NumericBreakdownError(index_t k, double pivot, const std::string& what)
      : std::runtime_error(what), k_(k), pivot_(pivot) {}

  index_t pivot_index() const { return k_; }
  double pivot_value() const { return pivot_; }

 private:
  index_t k_;
  double pivot_;
};

namespace detail_guard {

struct NumericObs {
  obs::Counter breakdowns = obs::counter("robust.breakdowns");
  obs::Counter boosts = obs::counter("robust.pivot_boosts");
  obs::Counter residual_checks = obs::counter("robust.residual_checks");
  obs::Counter residual_failures = obs::counter("robust.residual_failures");
};
inline NumericObs& numeric_obs() {
  static NumericObs o;
  return o;
}

// Uniform element read across the matrix flavors: Matrix<T> exposes
// operator(), the out-of-core wrappers expose get().
template <class M>
double at(const M& m, index_t i, index_t j) {
  if constexpr (requires { m.get(i, j); }) {
    return static_cast<double>(m.get(i, j));
  } else {
    return static_cast<double>(m(i, j));
  }
}

}  // namespace detail_guard

// |A|_max over a square matrix (any flavor). The scale every threshold
// below is relative to.
template <class M>
double guard_max_abs(const M& m) {
  double amax = 0;
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j = 0; j < m.cols(); ++j) {
      const double v = std::abs(detail_guard::at(m, i, j));
      if (v > amax) amax = v;
    }
  }
  return amax;
}

// Default breakdown threshold: n * eps * |A|_max (the backward-error
// scale at which a pivot is numerically indistinguishable from zero).
// Positive even for the all-zero matrix, so a zero pivot always trips.
inline double default_tiny_pivot(index_t n, double amax) {
  const double eps = std::numeric_limits<double>::epsilon();
  const double t = static_cast<double>(n) * eps * amax;
  return t > 0 ? t : eps;
}

// Configuration for the guarded factorization / solve entry points.
struct BreakdownGuard {
  BreakdownPolicy policy = BreakdownPolicy::Throw;
  double tiny_pivot = 0.0;    // absolute threshold; 0 = default_tiny_pivot
  double boost_scale = 1e-8;  // Boost: diagonal shift = scale * max(|A|,1)
  int max_boost_rounds = 3;   // Boost retries before giving up (in-core)
  int residual_samples = 0;   // rows sampled for ||A - LU|| (0 = off)
  double residual_limit = 1e-6;  // relative residual that counts as failure

  double threshold(index_t n, double amax) const {
    return tiny_pivot > 0 ? tiny_pivot : default_tiny_pivot(n, amax);
  }
};

// What a guarded run observed. `ok()` is the headline: no unresolved
// breakdowns and every residual check passed.
struct NumericReport {
  std::uint64_t breakdowns = 0;  // tiny/non-finite pivots encountered
  std::uint64_t boosts = 0;      // pivots floored / retry rounds shifted
  double diagonal_shift = 0;     // Boost: mu such that A + mu*I was solved
  double growth_factor = 0;      // max|LU| / max|A| (inf on overflow)
  std::uint64_t residual_checks = 0;
  std::uint64_t residual_failures = 0;
  double residual_max = 0;  // worst relative residual sampled

  bool ok() const {
    return residual_failures == 0 && (breakdowns == 0 || boosts > 0);
  }
};

// Runtime pivot check shared by concurrent LU leaves. Thresholds are
// immutable; the counters are atomics so the parallel typed engine can
// consult one guard from every worker.
class PivotGuard {
 public:
  PivotGuard(BreakdownPolicy policy, double tiny, double boost_value)
      : policy_(policy), tiny_(tiny), boost_(boost_value) {}

  BreakdownPolicy policy() const { return policy_; }
  double tiny() const { return tiny_; }

  // Admits the pivot in *slot for elimination step k (global index).
  // Returns the value to divide by — the original, or the boosted floor
  // when policy is Boost and `boostable` (the kernel owns the slot: the
  // A-kind diagonal boxes, where w aliases the write-pinned x tile and
  // the pivot is being CREATED rather than re-read). Non-boostable
  // breakdowns under Boost are only counted: the A-kind box that created
  // the pivot already handled it, so a tiny pivot seen from a C-kind box
  // means the caller disabled boosting upstream.
  template <class T>
  T admit(T* slot, index_t k, bool boostable) const {
    const double p = static_cast<double>(*slot);
    if (std::isfinite(p) && std::abs(p) > tiny_) return *slot;
    breakdowns_.fetch_add(1, std::memory_order_relaxed);
    detail_guard::numeric_obs().breakdowns.inc();
    obs::flight::record(obs::flightfmt::kGuardTrip,
                        static_cast<std::uint64_t>(k));
    if (policy_ == BreakdownPolicy::Throw) {
      throw NumericBreakdownError(
          k, p,
          "numeric breakdown: pivot " + std::to_string(k) + " is " +
              std::to_string(p) + " (|.| <= " + std::to_string(tiny_) +
              "); the no-pivot GEP precondition does not hold");
    }
    if (policy_ == BreakdownPolicy::Boost && boostable) {
      const T b = static_cast<T>(p < 0 ? -boost_ : boost_);
      *slot = b;
      boosts_.fetch_add(1, std::memory_order_relaxed);
      detail_guard::numeric_obs().boosts.inc();
      return b;
    }
    return *slot;
  }

  std::uint64_t breakdowns() const {
    return breakdowns_.load(std::memory_order_relaxed);
  }
  std::uint64_t boosts() const {
    return boosts_.load(std::memory_order_relaxed);
  }
  void reset_counts() {
    breakdowns_.store(0, std::memory_order_relaxed);
    boosts_.store(0, std::memory_order_relaxed);
  }

 private:
  BreakdownPolicy policy_;
  double tiny_;
  double boost_;
  mutable std::atomic<std::uint64_t> breakdowns_{0};
  mutable std::atomic<std::uint64_t> boosts_{0};
};

// Post-hoc factor scan (the in-core path guards this way: factor, then
// validate — cheaper than a branch in the innermost loop). Returns the
// index of the first pivot that is tiny or non-finite, or -1.
template <class M>
index_t scan_lu_pivots(const M& lu, double tiny, double* worst = nullptr) {
  index_t bad = -1;
  double w = std::numeric_limits<double>::infinity();
  const index_t n = lu.rows();
  for (index_t k = 0; k < n; ++k) {
    const double p = detail_guard::at(lu, k, k);
    if (!std::isfinite(p) || std::abs(p) <= tiny) {
      if (bad < 0) bad = k;
      if (std::abs(p) < w) w = std::abs(p);
    }
  }
  if (worst != nullptr) *worst = bad < 0 ? 0.0 : w;
  return bad;
}

// True when every entry of the packed factor is finite (no overflow
// escaped the pivot checks).
template <class M>
bool lu_factors_finite(const M& lu) {
  for (index_t i = 0; i < lu.rows(); ++i) {
    for (index_t j = 0; j < lu.cols(); ++j) {
      if (!std::isfinite(detail_guard::at(lu, i, j))) return false;
    }
  }
  return true;
}

// Row-sampled relative residual of a packed no-pivot factorization:
// max over `samples` rows i of |(L U)(i,:) - A(i,:)|_inf / |A|_max.
// L is unit-diagonal below the diagonal of `lu`, U on and above. O(n^2)
// per sampled row; counts into robust.residual_checks/failures when the
// caller compares against a limit (see linear_solver).
template <class MA, class MLU>
double lu_residual_sample(const MA& a, const MLU& lu, int samples,
                          std::uint64_t seed = 1) {
  const index_t n = a.rows();
  if (n == 0 || samples <= 0) return 0.0;
  const double amax = guard_max_abs(a);
  const double scale = amax > 0 ? amax : 1.0;
  SplitMix64 rng(seed);
  double worst = 0;
  for (int s = 0; s < samples; ++s) {
    const index_t i = static_cast<index_t>(
        rng.below(static_cast<std::uint64_t>(n)));
    for (index_t j = 0; j < n; ++j) {
      // (L U)(i, j) = sum_{k <= min(i, j)} L(i,k) U(k,j), L(i,i) = 1.
      const index_t kmax = i < j ? i : j;
      double acc = 0;
      for (index_t k = 0; k < kmax; ++k) {
        acc += detail_guard::at(lu, i, k) * detail_guard::at(lu, k, j);
      }
      // k = kmax term: L(i,i) = 1 when i <= j, else U(j,j) closes it.
      acc += (i <= j) ? detail_guard::at(lu, kmax, j)
                      : detail_guard::at(lu, i, kmax) *
                            detail_guard::at(lu, kmax, j);
      const double r = std::abs(acc - detail_guard::at(a, i, j)) / scale;
      if (r > worst) worst = r;
    }
  }
  return worst;
}

}  // namespace gep
