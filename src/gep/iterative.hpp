// G — the iterative Gaussian Elimination Paradigm (paper Fig. 1).
//
// Triply nested k/i/j loops applying c[i,j] <- f(c[i,j], c[i,k], c[k,j],
// c[k,k]) for every <i,j,k> in Σ_G. O(n³) time, O(n³/B) I/Os. This is the
// ground-truth semantics: C-GEP must reproduce it for *every* (f, Σ_G),
// I-GEP for the instances of Section 2.2.
#pragma once

#include "gep/access.hpp"
#include "gep/functors.hpp"
#include "gep/update_set.hpp"

namespace gep {

template <Accessor Acc, class F, UpdateSet S, class Hook = NoHook>
void run_gep(Acc& c, const F& f, const S& sigma, Hook* hook = nullptr) {
  using T = typename Acc::value_type;
  const index_t n = c.n();
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        if (!sigma.contains(i, j, k)) continue;
        if (hook) hook->on_update(i, j, k);
        T x = c.get(i, j);
        T u = c.get(i, k);
        T v = c.get(k, j);
        T w = c.get(k, k);
        c.set(i, j, apply_f(f, x, u, v, w, i, j, k));
      }
    }
  }
}

// Convenience overload for an in-memory matrix.
template <class T, class F, UpdateSet S>
void run_gep(Matrix<T>& c, const F& f, const S& sigma) {
  DirectAccess<T> acc(c.view());
  run_gep(acc, f, sigma);
}

}  // namespace gep
