// Update sets Σ_G for the Gaussian Elimination Paradigm.
//
// A GEP computation (paper Fig. 1) applies updates
//     c[i,j] <- f(c[i,j], c[i,k], c[k,j], c[k,k])
// for every triple <i,j,k> in a problem-specific set Σ_G, with k in the
// outer loop. An UpdateSet describes Σ_G. The recursive engines need two
// queries beyond membership:
//
//  * intersects_box  — "does Σ_G intersect the box I x J x K?" (line 1 of
//    Figs. 2 and 3; lets the recursion prune empty subproblems in O(1)).
//  * next_k          — smallest k' > k with <i,j,k'> in Σ_G. C-GEP's save
//    conditions (Fig. 3 lines 5-8) test k == τ_ij(l), which is equivalent
//    to k <= l && next_k(i,j,k) > l, so an O(1) next_k gives O(1) saves.
//
// All indices are 0-based; boxes are closed ranges [lo, hi].
#pragma once

#include <algorithm>
#include <concepts>
#include <limits>

#include "matrix/matrix.hpp"

namespace gep {

inline constexpr index_t kNoNextK = std::numeric_limits<index_t>::max();

template <class S>
concept UpdateSet = requires(const S s, index_t i, index_t j, index_t k) {
  { s.contains(i, j, k) } -> std::convertible_to<bool>;
  { s.intersects_box(i, i, j, j, k, k) } -> std::convertible_to<bool>;
  { s.next_k(i, j, k) } -> std::convertible_to<index_t>;
};

// Σ_G = [0,n)³ — every triple. Used by Floyd-Warshall and by matrix
// multiplication expressed as GEP.
struct FullSet {
  index_t n = 0;

  bool contains(index_t, index_t, index_t) const { return true; }
  bool intersects_box(index_t, index_t, index_t, index_t, index_t,
                      index_t) const {
    return true;
  }
  index_t next_k(index_t, index_t, index_t k) const {
    return k + 1 < n ? k + 1 : kNoNextK;
  }
};

using FloydWarshallSet = FullSet;

// Σ_G = { <i,j,k> : k < i && k < j } — Gaussian elimination without
// pivoting (Schur-complement updates only; multipliers not stored).
struct GaussianSet {
  index_t n = 0;

  bool contains(index_t i, index_t j, index_t k) const {
    return k < i && k < j;
  }
  bool intersects_box(index_t i1, index_t i2, index_t j1, index_t j2,
                      index_t k1, index_t k2) const {
    (void)i1;
    (void)j1;
    (void)k2;
    return k1 < i2 && k1 < j2;
  }
  index_t next_k(index_t i, index_t j, index_t k) const {
    index_t nk = k + 1;
    return (nk < i && nk < j) ? nk : kNoNextK;
  }
};

// Σ_G = { <i,j,k> : k < i && k <= j } — LU decomposition without pivoting.
// The extra j == k updates store the multipliers c[i,k] <- c[i,k]/c[k,k].
struct LUSet {
  index_t n = 0;

  bool contains(index_t i, index_t j, index_t k) const {
    return k < i && k <= j;
  }
  bool intersects_box(index_t i1, index_t i2, index_t j1, index_t j2,
                      index_t k1, index_t k2) const {
    (void)i1;
    (void)j1;
    (void)k2;
    return k1 < i2 && k1 <= j2;
  }
  index_t next_k(index_t i, index_t j, index_t k) const {
    index_t nk = k + 1;
    return (nk < i && nk <= j) ? nk : kNoNextK;
  }
};

// Banded Σ_G: updates restricted to |i - k| <= band && |j - k| <= band —
// the GEP shape of banded Gaussian elimination and banded shortest
// paths. Exact O(1) box tests and next_k, so the recursive engines prune
// everything outside the band (work drops to O(n·band²)).
struct BandedSet {
  index_t n = 0;
  index_t band = 0;

  bool contains(index_t i, index_t j, index_t k) const {
    return (i >= k ? i - k : k - i) <= band &&
           (j >= k ? j - k : k - j) <= band;
  }
  bool intersects_box(index_t i1, index_t i2, index_t j1, index_t j2,
                      index_t k1, index_t k2) const {
    // Ranges of k compatible with each axis: [i1-band, i2+band] etc.
    const index_t klo = std::max(i1 - band, j1 - band);
    const index_t khi = std::min(i2 + band, j2 + band);
    return std::max(k1, klo) <= std::min(k2, khi);
  }
  index_t next_k(index_t i, index_t j, index_t k) const {
    // Valid k interval for cell (i, j):
    const index_t lo = std::max(i - band, j - band);
    const index_t hi = std::min({i + band, j + band, n - 1});
    index_t nk = std::max(k + 1, lo);
    return nk <= hi ? nk : kNoNextK;
  }
};

// Arbitrary predicate Σ_G. intersects_box is conservatively true (the
// engines stay correct, just without pruning) and next_k scans, so this
// is the "full generality" escape hatch used by tests and by C-GEP on
// irregular update sets.
template <class Pred>
struct PredicateSet {
  index_t n = 0;
  Pred pred;  // bool(i, j, k)

  bool contains(index_t i, index_t j, index_t k) const { return pred(i, j, k); }
  bool intersects_box(index_t, index_t, index_t, index_t, index_t,
                      index_t) const {
    return true;
  }
  index_t next_k(index_t i, index_t j, index_t k) const {
    for (index_t kk = k + 1; kk < n; ++kk) {
      if (pred(i, j, kk)) return kk;
    }
    return kNoNextK;
  }
};

template <class Pred>
PredicateSet<Pred> make_predicate_set(index_t n, Pred pred) {
  return PredicateSet<Pred>{n, std::move(pred)};
}

// τ_ij(l): largest k' <= l with <i,j,k'> in Σ, or -1 ("initial state")
// when no such update exists. (Paper Definition 2.3, 0-based.) Computed
// by scanning; used by tests, not by the engines.
template <UpdateSet S>
index_t tau(const S& sigma, index_t i, index_t j, index_t l) {
  for (index_t k = l; k >= 0; --k) {
    if (sigma.contains(i, j, k)) return k;
  }
  return -1;
}

}  // namespace gep
