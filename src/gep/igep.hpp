// F — cache-oblivious I-GEP (paper Fig. 2).
//
// Recursive divide-and-conquer over the quadrants of X and halves of the
// k-interval: a forward pass (lower k-half) over X11, X12, X21, X22
// followed by a backward pass (upper k-half) over X22, X21, X12, X11.
// In-place, O(n³) work, O(n³/(B·√M)) cache misses under the tall-cache
// assumption. Correct for the GEP instances of Section 2 (Floyd-Warshall,
// Gaussian elimination / LU without pivoting, matrix multiplication, ...)
// but NOT for arbitrary (f, Σ_G) — see C-GEP (cgep.hpp) for those.
//
// opts.base_size > 1 switches to an iterative kernel (G's loop order
// restricted to the box) once subproblems reach that size — the standard
// recursion-overhead optimization of Section 4.2. With base_size == 1 the
// execution matches Fig. 2 exactly (used by the theorem tests).
#pragma once

#include "gep/access.hpp"
#include "gep/functors.hpp"
#include "gep/update_set.hpp"

namespace gep {

struct IGepOptions {
  index_t base_size = 1;
};

namespace detail {

// Iterative kernel over the box [i0,i0+m) x [j0,j0+m) x [k0,k0+m),
// reading live values in G's k/i/j order (legal refinement of the
// recursion for I-GEP-correct instances; see DESIGN.md §6).
template <class Acc, class F, class S, class Hook>
void igep_box_kernel(Acc& c, const F& f, const S& sigma, Hook* hook,
                     index_t i0, index_t j0, index_t k0, index_t m) {
  using T = typename Acc::value_type;
  for (index_t k = k0; k < k0 + m; ++k) {
    for (index_t i = i0; i < i0 + m; ++i) {
      for (index_t j = j0; j < j0 + m; ++j) {
        if (!sigma.contains(i, j, k)) continue;
        if (hook) hook->on_update(i, j, k);
        T x = c.get(i, j);
        T u = c.get(i, k);
        T v = c.get(k, j);
        T w = c.get(k, k);
        c.set(i, j, apply_f(f, x, u, v, w, i, j, k));
      }
    }
  }
}

template <class Acc, class F, class S, class Hook>
void igep_rec(Acc& c, const F& f, const S& sigma, Hook* hook, index_t i0,
              index_t j0, index_t k0, index_t m, index_t base) {
  if (!sigma.intersects_box(i0, i0 + m - 1, j0, j0 + m - 1, k0, k0 + m - 1))
    return;
  if (m <= base) {
    igep_box_kernel(c, f, sigma, hook, i0, j0, k0, m);
    return;
  }
  const index_t h = m / 2;
  const index_t k2 = k0 + h;
  // Forward pass: X11, X12, X21, X22 with the lower k-half.
  igep_rec(c, f, sigma, hook, i0, j0, k0, h, base);
  igep_rec(c, f, sigma, hook, i0, j0 + h, k0, h, base);
  igep_rec(c, f, sigma, hook, i0 + h, j0, k0, h, base);
  igep_rec(c, f, sigma, hook, i0 + h, j0 + h, k0, h, base);
  // Backward pass: X22, X21, X12, X11 with the upper k-half.
  igep_rec(c, f, sigma, hook, i0 + h, j0 + h, k2, h, base);
  igep_rec(c, f, sigma, hook, i0 + h, j0, k2, h, base);
  igep_rec(c, f, sigma, hook, i0, j0 + h, k2, h, base);
  igep_rec(c, f, sigma, hook, i0, j0, k2, h, base);
}

}  // namespace detail

template <Accessor Acc, class F, UpdateSet S, class Hook = NoHook>
void run_igep(Acc& c, const F& f, const S& sigma, IGepOptions opts = {},
              Hook* hook = nullptr) {
  const index_t n = c.n();
  assert(is_pow2(n));
  detail::igep_rec(c, f, sigma, hook, 0, 0, 0, n,
                   std::max<index_t>(1, opts.base_size));
}

// Convenience overload for an in-memory matrix.
template <class T, class F, UpdateSet S>
void run_igep(Matrix<T>& c, const F& f, const S& sigma, IGepOptions opts = {}) {
  DirectAccess<T> acc(c.view());
  run_igep(acc, f, sigma, opts);
}

}  // namespace gep
