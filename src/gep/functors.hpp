// Update functions f(x, u, v, w) for the GEP instances treated in the
// paper, plus helpers used by the correctness tests.
//
// The GEP update is c[i,j] <- f(c[i,j], c[i,k], c[k,j], c[k,k]); each
// functor below receives the operands in that order.
#pragma once

#include <algorithm>

#include "matrix/matrix.hpp"
#include "gep/update_set.hpp"

namespace gep {

// Floyd-Warshall all-pairs shortest paths: path relaxation through k.
struct MinPlusF {
  template <class T>
  T operator()(T x, T u, T v, T /*w*/) const {
    return std::min(x, static_cast<T>(u + v));
  }
};

// Gaussian elimination without pivoting (no multipliers stored):
// Schur-complement update with the division kept in the inner loop,
// exactly as the paper's unoptimized GEP kernel does.
struct GaussF {
  template <class T>
  T operator()(T x, T u, T v, T w) const {
    return x - u * v / w;
  }
};

// Matrix multiplication as GEP: accumulate u*v.
struct MulAddF {
  template <class T>
  T operator()(T x, T u, T v, T /*w*/) const {
    return x + u * v;
  }
};

// Maximum-capacity (bottleneck) paths: the (max, min) semiring.
struct MaxMinF {
  template <class T>
  T operator()(T x, T u, T v, T /*w*/) const {
    return std::max(x, std::min(u, v));
  }
};

// Transitive closure (Warshall's theorem [22]): boolean or-and semiring.
// x | (u & v) over {0,1} — the GEP instance behind reachability.
struct OrAndF {
  template <class T>
  T operator()(T x, T u, T v, T /*w*/) const {
    return static_cast<T>(x | (u & v));
  }
};

// The paper's Section 2.2.1 counterexample: f returns the sum of all four
// operands. I-GEP diverges from GEP on this f with Σ = full.
struct SumF {
  template <class T>
  T operator()(T x, T u, T v, T w) const {
    return x + u + v + w;
  }
};

// A linear combination with fixed coefficients. Because the output is a
// weighted sum of the four operand *states*, any difference in the state
// an engine supplies for any operand changes the result — this makes it
// the sharpest probe for C-GEP's full-generality claim.
struct LinearF {
  double a = 1.0, b = 1.0, c = 1.0, d = 1.0;
  double operator()(double x, double u, double v, double w) const {
    return a * x + b * u + c * v + d * w;
  }
};

// --- Index-aware application --------------------------------------------
//
// Some instances need the indices of the update (LU's j == k case).
// Engines apply updates through apply_update, which passes (i, j, k)
// along when the functor wants them.

template <class F, class T>
concept IndexAwareF = requires(const F f, T x, index_t i) {
  { f(x, x, x, x, i, i, i) } -> std::convertible_to<T>;
};

// Index-aware LU functor used by the engines.
struct LUIndexedF {
  template <class T>
  T operator()(T x, T u, T v, T w, index_t /*i*/, index_t j, index_t k) const {
    if (j == k) return x / w;  // store multiplier
    return x - u * v;          // u is already divided (Theorem 2.2 ordering)
  }
};

template <class F, class T>
T apply_f(const F& f, T x, T u, T v, T w, index_t i, index_t j, index_t k) {
  if constexpr (IndexAwareF<F, T>) {
    return f(x, u, v, w, i, j, k);
  } else {
    (void)i;
    (void)j;
    (void)k;
    return f(x, u, v, w);
  }
}

}  // namespace gep
