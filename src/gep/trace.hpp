// Instrumentation for the structural theorems of Section 2.
//
// π and δ (Definition 2.2, 0-based):
//   * an aligned subinterval for n = 2^q is [a, b] with b-a+1 = 2^r and
//     a a multiple of 2^r;
//   * π(x, z) = right endpoint of the largest aligned subinterval
//     containing z but not x (z-1 when x == z);
//   * δ(x, y, z) = right endpoint b of the largest aligned subsquare
//     [a,b] x [a,b] containing (z,z) but not (x,y) (z-1 when x == y == z).
//
// Theorem 2.2 states that immediately before I-GEP applies <i,j,k>:
//   c[i,j] = c_{k-1}(i,j),      c[i,k] = c_{π(j,k)}(i,k),
//   c[k,j] = c_{π(i,k)}(k,j),   c[k,k] = c_{δ(i,j,k)}(k,k).
// The hooks below record enough of an execution to verify this and
// Theorem 2.1 programmatically.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "gep/access.hpp"
#include "matrix/matrix.hpp"

namespace gep {

// Largest r such that the aligned 2^r-interval around z excludes x is
// bit_width(x ^ z) - 1; the interval is z with the low r bits saturated.
inline index_t pi_func(index_t x, index_t z) {
  if (x == z) return z - 1;
  auto diff = static_cast<std::uint64_t>(x ^ z);
  const int r = std::bit_width(diff) - 1;  // highest differing bit
  const index_t mask = (index_t{1} << r) - 1;
  return z | mask;
}

inline index_t delta_func(index_t x, index_t y, index_t z) {
  if (x == z && y == z) return z - 1;
  // Smallest aligned square around (z,z) that contains x on the row axis
  // has side 2^bit_width(x^z); the largest square EXCLUDING (x,y) is one
  // level below the smallest containing both coordinates.
  const int rx = (x == z) ? 0 : std::bit_width(static_cast<std::uint64_t>(x ^ z));
  const int ry = (y == z) ? 0 : std::bit_width(static_cast<std::uint64_t>(y ^ z));
  const int r = std::max(rx, ry) - 1;
  const index_t mask = (index_t{1} << r) - 1;
  return z | mask;
}

struct UpdateRecord {
  index_t i, j, k;
};

// Records every update an engine applies, in order. Π_F of Theorem 2.1.
struct UpdateLogHook {
  std::vector<UpdateRecord> log;
  void on_update(index_t i, index_t j, index_t k) { log.push_back({i, j, k}); }
};

// Tracks, per cell, the largest k whose update has been applied (-1 when
// untouched) and the number of applied updates. Because Theorem 2.1(c)
// guarantees per-cell updates arrive in increasing k, `last_k` fully
// identifies the state c_l(i,j) a cell is in. The verify callback runs
// BEFORE the state table is bumped, i.e. it sees the pre-update states.
template <class Verify>
struct StateTrackHook {
  index_t n;
  std::vector<index_t> last_k;  // n*n, init -1
  std::vector<index_t> count;   // n*n, init 0
  Verify verify;                // void(i, j, k, const StateTrackHook&)

  StateTrackHook(index_t n_, Verify v)
      : n(n_), last_k(static_cast<std::size_t>(n_ * n_), -1),
        count(static_cast<std::size_t>(n_ * n_), 0), verify(std::move(v)) {}

  index_t state_of(index_t i, index_t j) const {
    return last_k[static_cast<std::size_t>(i * n + j)];
  }
  index_t count_of(index_t i, index_t j) const {
    return count[static_cast<std::size_t>(i * n + j)];
  }

  void on_update(index_t i, index_t j, index_t k) {
    verify(i, j, k, *this);
    last_k[static_cast<std::size_t>(i * n + j)] = k;
    count[static_cast<std::size_t>(i * n + j)] += 1;
  }
};

}  // namespace gep
