// Ideal-cache model simulator (Frigo et al. [11], as used by the paper).
//
// A single fully-associative cache of M bytes with B-byte blocks. The
// model prescribes an optimal offline replacement policy; like all
// practical simulators (and like the paper's Cachegrind measurements) we
// use LRU, which is within a constant factor of optimal for any
// algorithm under the standard resource-augmentation argument.
//
// The cache-complexity claims under test:
//   GEP    incurs Θ(n³ / B)        misses,
//   I-GEP  incurs Θ(n³ / (B√M))    misses (tall cache, M = Ω(B²)).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "matrix/matrix.hpp"

namespace gep {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
  // Block transfers between cache and memory (the paper's "I/Os").
  std::uint64_t io() const { return misses + dirty_writebacks; }
};

// Publishes `s` into the global metrics registry as gauges named
// "cachesim.<prefix>.{accesses,misses,evictions,writebacks}", so benches
// can print SIMULATED miss counts next to hardware-counter ones and the
// JSON reporter picks both up from one snapshot. No-op when GEP_OBS=0.
void publish_cachesim_gauges(const std::string& prefix, const CacheStats& s);

class IdealCache {
 public:
  // capacity_bytes = M, block_bytes = B (both > 0; M >= B).
  IdealCache(std::uint64_t capacity_bytes, std::uint64_t block_bytes);

  void access(std::uintptr_t addr, bool write);
  void flush();  // write back and drop everything

  const CacheStats& stats() const { return stats_; }
  std::uint64_t capacity_blocks() const { return capacity_blocks_; }
  std::uint64_t block_bytes() const { return block_bytes_; }

 private:
  struct Line {
    std::uint64_t block;
    bool dirty;
  };
  std::uint64_t capacity_blocks_;
  std::uint64_t block_bytes_;
  std::list<Line> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Line>::iterator> where_;
  CacheStats stats_;
};

// Trace-feeding accessor: wraps a matrix, forwards every element load and
// store to a simulator before touching memory. Satisfies the generic
// engines' Accessor concept, so G / I-GEP / C-GEP run unmodified under
// simulation.
template <class T, class Sim>
class TracedAccess {
 public:
  using value_type = T;

  TracedAccess(T* data, index_t n, Sim* sim) : data_(data), n_(n), sim_(sim) {}

  index_t n() const { return n_; }
  T get(index_t i, index_t j) const {
    sim_->access(reinterpret_cast<std::uintptr_t>(data_ + i * n_ + j), false);
    return data_[i * n_ + j];
  }
  void set(index_t i, index_t j, T v) {
    sim_->access(reinterpret_cast<std::uintptr_t>(data_ + i * n_ + j), true);
    data_[i * n_ + j] = v;
  }

 private:
  T* data_;
  index_t n_;
  Sim* sim_;
};

}  // namespace gep
