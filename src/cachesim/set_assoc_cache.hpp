// Set-associative, multi-level cache simulator (Cachegrind substitute).
//
// The paper measures L1/L2 miss counts with Cachegrind on the machines of
// Table 2 (e.g. Xeon: L1 8K/4-way/64B, L2 512K/8-way/64B). We simulate
// the same geometry, driven by the instrumented matrix accessors, so the
// relative miss behaviour of GEP / I-GEP / C-GEP / blocked baselines is
// reproduced. Only matrix-element traffic is traced (no stack/code),
// which lowers absolute counts uniformly across algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/ideal_cache.hpp"

namespace gep {

struct CacheGeometry {
  std::uint64_t size_bytes = 0;
  std::uint64_t line_bytes = 64;
  int ways = 8;  // 0 = fully associative

  std::string describe() const;
};

// Geometries of the paper's Table 2 machines, for like-for-like runs.
CacheGeometry xeon_l1();     // 8 KB, 4-way, 64 B
CacheGeometry xeon_l2();     // 512 KB, 8-way, 64 B
CacheGeometry opteron_l1();  // 64 KB, 2-way, 64 B
CacheGeometry opteron_l2();  // 1 MB, 8-way, 64 B

class SetAssocCache {
 public:
  explicit SetAssocCache(CacheGeometry geom);

  // Returns true on hit. Misses insert the line (allocate-on-write too).
  bool access(std::uintptr_t addr, bool write);
  void flush();

  const CacheStats& stats() const { return stats_; }
  const CacheGeometry& geometry() const { return geom_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // global counter value at last touch
    bool valid = false;
    bool dirty = false;
  };
  CacheGeometry geom_;
  std::uint64_t sets_;
  std::uint64_t counter_ = 0;
  std::vector<Way> ways_;  // sets_ x geom_.ways
  CacheStats stats_;
};

// An inclusive-feel two-level hierarchy: every access goes to L1; L1
// misses are forwarded to L2 (as Cachegrind models it).
class CacheHierarchy {
 public:
  CacheHierarchy(CacheGeometry l1, CacheGeometry l2)
      : l1_(l1), l2_(l2) {}

  void access(std::uintptr_t addr, bool write) {
    if (!l1_.access(addr, write)) l2_.access(addr, write);
  }

  const CacheStats& l1_stats() const { return l1_.stats(); }
  const CacheStats& l2_stats() const { return l2_.stats(); }

  // Registry gauges "cachesim.<prefix>.l1.*" / "cachesim.<prefix>.l2.*".
  void publish_gauges(const std::string& prefix) const {
    publish_cachesim_gauges(prefix + ".l1", l1_.stats());
    publish_cachesim_gauges(prefix + ".l2", l2_.stats());
  }

 private:
  SetAssocCache l1_;
  SetAssocCache l2_;
};

}  // namespace gep
