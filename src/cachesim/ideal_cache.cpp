#include "cachesim/ideal_cache.hpp"

#include <cassert>

#include "obs/registry.hpp"

namespace gep {

IdealCache::IdealCache(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
    : capacity_blocks_(capacity_bytes / block_bytes),
      block_bytes_(block_bytes) {
  assert(block_bytes > 0 && capacity_blocks_ > 0);
  where_.reserve(static_cast<std::size_t>(capacity_blocks_) * 2);
}

void IdealCache::access(std::uintptr_t addr, bool write) {
  ++stats_.accesses;
  const std::uint64_t block = static_cast<std::uint64_t>(addr) / block_bytes_;
  auto it = where_.find(block);
  if (it != where_.end()) {
    // Hit: move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    if (write) it->second->dirty = true;
    return;
  }
  ++stats_.misses;
  if (lru_.size() >= capacity_blocks_) {
    Line victim = lru_.back();
    lru_.pop_back();
    where_.erase(victim.block);
    ++stats_.evictions;
    if (victim.dirty) ++stats_.dirty_writebacks;
  }
  lru_.push_front(Line{block, write});
  where_[block] = lru_.begin();
}

void IdealCache::flush() {
  for (const Line& l : lru_) {
    if (l.dirty) ++stats_.dirty_writebacks;
  }
  lru_.clear();
  where_.clear();
}

void publish_cachesim_gauges(const std::string& prefix, const CacheStats& s) {
  auto g = [&](const char* field) {
    return obs::gauge("cachesim." + prefix + "." + field);
  };
  g("accesses").set(static_cast<double>(s.accesses));
  g("misses").set(static_cast<double>(s.misses));
  g("evictions").set(static_cast<double>(s.evictions));
  g("writebacks").set(static_cast<double>(s.dirty_writebacks));
}

}  // namespace gep
