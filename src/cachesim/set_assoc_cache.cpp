#include "cachesim/set_assoc_cache.hpp"

#include <cassert>
#include <sstream>

namespace gep {

std::string CacheGeometry::describe() const {
  std::ostringstream out;
  out << (size_bytes >> 10) << "KB/"
      << (ways == 0 ? std::string("full") : std::to_string(ways) + "-way")
      << "/B=" << line_bytes;
  return out.str();
}

CacheGeometry xeon_l1() { return {8 * 1024, 64, 4}; }
CacheGeometry xeon_l2() { return {512 * 1024, 64, 8}; }
CacheGeometry opteron_l1() { return {64 * 1024, 64, 2}; }
CacheGeometry opteron_l2() { return {1024 * 1024, 64, 8}; }

SetAssocCache::SetAssocCache(CacheGeometry geom) : geom_(geom) {
  assert(geom_.size_bytes >= geom_.line_bytes);
  const std::uint64_t lines = geom_.size_bytes / geom_.line_bytes;
  if (geom_.ways == 0 || static_cast<std::uint64_t>(geom_.ways) > lines) {
    geom_.ways = static_cast<int>(lines);  // fully associative
  }
  sets_ = lines / static_cast<std::uint64_t>(geom_.ways);
  assert(sets_ > 0);
  ways_.assign(sets_ * static_cast<std::uint64_t>(geom_.ways), Way{});
}

bool SetAssocCache::access(std::uintptr_t addr, bool write) {
  ++stats_.accesses;
  const std::uint64_t line = static_cast<std::uint64_t>(addr) / geom_.line_bytes;
  const std::uint64_t set = line % sets_;
  const std::uint64_t tag = line / sets_;
  Way* base = &ways_[set * static_cast<std::uint64_t>(geom_.ways)];
  ++counter_;
  Way* lru = base;
  for (int w = 0; w < geom_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = counter_;
      way.dirty = way.dirty || write;
      return true;
    }
    if (!way.valid) {
      lru = &way;  // prefer an empty slot
    } else if (lru->valid && way.lru < lru->lru) {
      lru = &way;
    }
  }
  ++stats_.misses;
  if (lru->valid) {
    ++stats_.evictions;
    if (lru->dirty) ++stats_.dirty_writebacks;
  }
  lru->valid = true;
  lru->tag = tag;
  lru->lru = counter_;
  lru->dirty = write;
  return false;
}

void SetAssocCache::flush() {
  for (Way& w : ways_) {
    if (w.valid && w.dirty) ++stats_.dirty_writebacks;
    w = Way{};
  }
}

}  // namespace gep
