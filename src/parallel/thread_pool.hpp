// Fork-join runtime for multithreaded I-GEP.
//
// The paper parallelizes I-GEP with pthreads; we provide the same model
// as a small fork-join pool: TaskGroup::run() forks a task, wait() joins
// by *helping* (the waiting thread executes queued tasks instead of
// blocking), so deeply nested parallel recursion neither deadlocks nor
// idles cores. ParInvoker adapts the pool to the typed I-GEP engine's
// Invoker concept (gep/typed.hpp): the last callable of each parallel
// stage runs inline, the rest are forked.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gep {

class TaskGroup;

class ThreadPool {
 public:
  // Spawns `threads - 1` workers (the caller is the remaining thread).
  // threads <= 1 means fully inline execution.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Tasks executed by the pool (workers + helping waiters). Also
  // mirrored into the metrics registry as "parallel.pool.executed".
  long executed_count() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };
  void note_executed();

  void push(Task t);
  // Pops and runs one queued task; returns false if the queue was empty.
  bool try_run_one();
  void worker_loop();

  int threads_;
  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<long> executed_{0};
  bool stop_ = false;
};

// One fork-join scope. Not reusable across threads other than through
// run(); wait() must be called before destruction.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  // Forks fn (runs inline when the pool is absent or single-threaded).
  void run(std::function<void()> fn);

  // Blocks until every task forked from this group has finished,
  // executing queued work (from any group) while waiting.
  void wait();

 private:
  friend class ThreadPool;
  ThreadPool* pool_;
  std::atomic<long> pending_{0};
};

// Invoker over a pool; satisfies the typed I-GEP engine's concept.
struct ParInvoker {
  ThreadPool* pool = nullptr;  // nullptr: sequential

  template <class... Fs>
  void invoke(Fs&&... fs) {
    if (pool == nullptr || pool->threads() <= 1) {
      (static_cast<Fs&&>(fs)(), ...);
      return;
    }
    TaskGroup g(pool);
    fork_all_but_last(g, static_cast<Fs&&>(fs)...);
    g.wait();
  }

 private:
  template <class F>
  void fork_all_but_last(TaskGroup&, F&& last) {
    static_cast<F&&>(last)();  // run the final callable inline
  }
  template <class F, class... Rest>
  void fork_all_but_last(TaskGroup& g, F&& first, Rest&&... rest) {
    g.run(std::function<void()>(static_cast<F&&>(first)));
    fork_all_but_last(g, static_cast<Rest&&>(rest)...);
  }
};

}  // namespace gep
