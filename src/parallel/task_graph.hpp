// Dependency-driven block-task runtime for typed I-GEP (ROADMAP item 2).
//
// The fork-join invoker (Fig. 6) serializes every recursion level at a
// join barrier even though only the A/B/C-kind boxes carry true
// dependencies. Here the typed A/B/C/D recursion *emits* a DAG of block
// tasks instead of executing them: one node per base-case box
// (kind, box, depth), with edges derived from the boxes' read/write
// BLOCK sets — the same X/U/V/W tile accesses the legality analysis
// reasons about. Emission order is the sequential execution order, and
// the builder runs the classic superscalar dependence analysis over it
// (RAW: read depends on the block's last writer; WAR: a write depends on
// every reader since that writer; WAW: writes to a block form a chain).
// Any topological execution of the resulting DAG therefore performs each
// block's update sequence in exactly the sequential order, which makes
// every schedule — 1 thread, N threads, work-stealing jitter and all —
// bit-identical to the sequential run.
//
// The runtime executes the DAG on the existing WorkStealingPool with
//  * data-dependency tracking (atomic unmet-predecessor counts),
//  * priority by critical path (longest cost-weighted path to the exit;
//    newly ready tasks are pushed so the LIFO pop order prefers the
//    critical path), and
//  * lookahead: the ready frontier extends past what used to be join
//    barriers, and its first `lookahead` tasks are announced to an
//    optional prefetch hook. Out-of-core drivers point that hook at
//    PageCache::prefetch, so the SAME scheduler state drives both the
//    workers and the async I/O worker (extmem/ooc_typed.hpp).
//
// The fork-join invoker remains the default engine; the DAG runtime is
// opted into per call site or process-wide via $GEP_DAG_RUNTIME=1
// (apps::RunOptions::runtime). dag_sim.hpp's greedy scheduler is the
// quality oracle: task_graph_makespan() on this DAG must not exceed the
// fork-join DAG's makespan (fewer constraints, same greedy policy).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "gep/typed.hpp"
#include "parallel/dag_sim.hpp"
#include "parallel/work_stealing.hpp"

namespace gep {

// One base-case box of the typed recursion, as a schedulable task.
struct BlockTask {
  BoxKind kind = BoxKind::D;
  index_t i0 = 0, j0 = 0, k0 = 0, m = 0;  // element coords, box side
  int depth = 0;                          // recursion depth of the leaf
  double cost = 0;                        // update count (dag_sim costs)
};

// Dependency DAG over block tasks. Built task by task in sequential
// emission order; finalize() computes critical-path priorities.
class TaskGraph {
 public:
  // One block touched by a task. `mat` distinguishes operand matrices
  // (0 = X/C; matmul uses 1 = A, 2 = B); (bi, bj) are tile coordinates.
  struct Access {
    int mat;
    index_t bi, bj;
    bool write;
  };

  // Sizes the per-block analysis state: `grid_tiles` tiles per side,
  // `n_mats` operand matrices, and an expected task count to reserve
  // for. Must be called before the first add_task.
  void begin_build(index_t grid_tiles, int n_mats, std::size_t n_tasks);

  // Appends a task and derives its dependency edges from the accesses.
  // Tasks MUST be added in sequential execution order (the analysis
  // serializes each block's access history in that order). Returns the
  // task id. A block both written and read by one task counts as a
  // write only (in-place kernels read their own partially updated X).
  int add_task(const BlockTask& t, const Access* acc, int n_acc);

  // Computes priorities and the initial ready list. Call once, after
  // the last add_task; add_task afterwards is undefined.
  void finalize();

  int size() const { return static_cast<int>(tasks_.size()); }
  const BlockTask& task(int id) const {
    return tasks_[static_cast<std::size_t>(id)];
  }
  const std::vector<int>& successors(int id) const {
    return succ_[static_cast<std::size_t>(id)];
  }
  int pred_count(int id) const { return preds_[static_cast<std::size_t>(id)]; }
  // Critical-path length (cost-weighted, inclusive) from this task to
  // the DAG's exit. Valid after finalize().
  double priority(int id) const {
    return priority_[static_cast<std::size_t>(id)];
  }
  std::size_t edge_count() const { return edges_; }
  double work() const { return work_; }        // sum of task costs
  double span() const { return span_; }        // critical path, finalized
  // Tasks with no predecessors, highest priority first.
  const std::vector<int>& initial_ready() const { return ready0_; }

  // Which counter family executions bill to (typed.* vs typed.mm.*).
  DagProblem problem = DagProblem::FloydWarshall;

 private:
  struct BlockState {
    int last_writer = -1;
    std::vector<int> readers;  // since last_writer
  };

  std::vector<BlockTask> tasks_;
  std::vector<std::vector<int>> succ_;
  std::vector<int> preds_;
  std::vector<double> priority_;
  std::vector<int> ready0_;
  // Flat (mat, bi, bj) -> state array: the grid is known before the
  // first add_task, and a direct index beats hashing the coordinates on
  // the build's hot path (~4 lookups per task).
  std::vector<BlockState> blocks_;
  index_t grid_ = 0;
  std::vector<int> dep_scratch_;
  std::size_t edges_ = 0;
  double work_ = 0;
  double span_ = 0;
};

// Emits the typed recursion's leaf boxes (gep/typed.hpp, sequential
// order) into a TaskGraph with per-problem prune rule, access sets
// (X/U/V plus W for GE/LU; C/A/B for matmul) and dag_sim leaf costs.
TaskGraph build_typed_task_graph(DagProblem prob, index_t n, index_t base);

// Checkpoint/restart contract between the runtime and a coordinator
// (extmem/checkpoint.hpp — declared here so parallel/ stays independent
// of extmem/). The runtime calls, around every leaf it executes:
//   is_done(id)  — skip the task entirely (completed before a resume);
//   leaf_enter() — may block while a snapshot is being cut (quiesce);
//   leaf_exit(id)— the leaf's effects are complete; marks the frontier
//                  and may itself cut a snapshot;
//   leaf_cancel()— the leaf was cancelled BEFORE mutating anything
//                  (JobCancelled unwinds between enter and the kernel);
//   leaf_abort() — the leaf died mid-kernel; its block is half-updated
//                  and NO further snapshot may be taken.
// All methods may be called from any worker thread.
class TaskCheckpointHook {
 public:
  virtual ~TaskCheckpointHook() = default;
  virtual bool is_done(int id) const = 0;
  virtual void leaf_enter() = 0;
  virtual void leaf_exit(int id) = 0;
  virtual void leaf_cancel() noexcept = 0;
  virtual void leaf_abort() noexcept = 0;
};

struct TaskRuntimeOptions {
  // Ready tasks announced to `prefetch` ahead of execution. 0 disables
  // the hook. The window is counted in TASKS (each OOC task pins up to
  // 4 tiles), bounding how many unpinned frames hints can occupy.
  int lookahead = 0;
  // Called once per task when it enters the lookahead window (ready, or
  // about to run in the sequential engine). May run on any thread.
  std::function<void(const BlockTask&)> prefetch;
  // Optional checkpoint coordinator. Completed tasks (is_done) are
  // skipped — the resume path — and every executed leaf is bracketed by
  // leaf_enter/leaf_exit so snapshots only ever see whole-leaf states.
  TaskCheckpointHook* ckpt = nullptr;
};

// Executes the DAG. With a pool of >= 2 threads, ready tasks run on the
// work-stealing pool (the calling thread helps); otherwise tasks run on
// the calling thread in emission order — exactly the sequential typed
// engine's schedule. A leaf exception stops dependents of the failed
// task from being submitted and rethrows from here (first failure wins,
// matching WsTaskGroup::wait).
void run_task_graph(const TaskGraph& g, WorkStealingPool* pool,
                    const std::function<void(const BlockTask&)>& leaf,
                    const TaskRuntimeOptions& opts = {});

// Greedy list-scheduling makespan of the task DAG with p virtual
// processors, dispatching by critical-path priority — the counterpart
// of dag_makespan() (same policy, fork-join DAG) for schedule-quality
// validation.
double task_graph_makespan(const TaskGraph& g, int p);

// Process-wide runtime pin: $GEP_DAG_RUNTIME=1 selects the DAG runtime,
// =0 the fork-join invoker; unset keeps `fallback`.
enum class RuntimeKind { ForkJoin, Dag };
RuntimeKind runtime_from_env(RuntimeKind fallback = RuntimeKind::ForkJoin);

// Lookahead depth for DAG-driven prefetch ($GEP_DAG_LOOKAHEAD).
int dag_lookahead_from_env(int fallback = 4);

// --- typed in-core drivers over the DAG runtime ----------------------------
// Mirrors of the typed.hpp drivers: same stores, same kernels, same
// results bit for bit; only the schedule differs. pool == nullptr (or a
// 1-thread pool) runs the DAG sequentially.

template <class Store>
void igep_floyd_warshall_dag(WorkStealingPool* pool, const Store& st,
                             index_t n, TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-fw-dag");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  TaskGraph g = build_typed_task_graph(DagProblem::FloydWarshall, n, bs);
  run_task_graph(g, pool, [&](const BlockTask& t) {
    T* x = st.tile(t.i0 / bs, t.j0 / bs);
    const T* u = st.tile(t.i0 / bs, t.k0 / bs);
    const T* v = st.tile(t.k0 / bs, t.j0 / bs);
    kernel_fw(x, u, v, t.m, s, s, s);
  });
}

template <class Store>
void igep_transitive_closure_dag(WorkStealingPool* pool, const Store& st,
                                 index_t n, TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-tc-dag");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  TaskGraph g = build_typed_task_graph(DagProblem::FloydWarshall, n, bs);
  run_task_graph(g, pool, [&](const BlockTask& t) {
    T* x = st.tile(t.i0 / bs, t.j0 / bs);
    const T* u = st.tile(t.i0 / bs, t.k0 / bs);
    const T* v = st.tile(t.k0 / bs, t.j0 / bs);
    kernel_tc(x, u, v, t.m, s, s, s);
  });
}

template <class Store>
void igep_bottleneck_dag(WorkStealingPool* pool, const Store& st, index_t n,
                         TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-bottleneck-dag");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  TaskGraph g = build_typed_task_graph(DagProblem::FloydWarshall, n, bs);
  run_task_graph(g, pool, [&](const BlockTask& t) {
    T* x = st.tile(t.i0 / bs, t.j0 / bs);
    const T* u = st.tile(t.i0 / bs, t.k0 / bs);
    const T* v = st.tile(t.k0 / bs, t.j0 / bs);
    kernel_bottleneck(x, u, v, t.m, s, s, s);
  });
}

template <class Store>
void igep_gaussian_dag(WorkStealingPool* pool, const Store& st, index_t n,
                       TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-ge-dag");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  TaskGraph g = build_typed_task_graph(DagProblem::Gaussian, n, bs);
  run_task_graph(g, pool, [&](const BlockTask& t) {
    T* x = st.tile(t.i0 / bs, t.j0 / bs);
    const T* u = st.tile(t.i0 / bs, t.k0 / bs);
    const T* v = st.tile(t.k0 / bs, t.j0 / bs);
    const T* w = st.tile(t.k0 / bs, t.k0 / bs);
    const bool di = (t.kind == BoxKind::A || t.kind == BoxKind::B);
    const bool dj = (t.kind == BoxKind::A || t.kind == BoxKind::C);
    kernel_ge(x, u, v, w, t.m, s, s, s, s, di, dj);
  });
}

template <class Store>
void igep_lu_dag(WorkStealingPool* pool, const Store& st, index_t n,
                 TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-lu-dag");
  using T = std::remove_reference_t<decltype(st.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t s = st.tile_stride();
  TaskGraph g = build_typed_task_graph(DagProblem::LU, n, bs);
  run_task_graph(g, pool, [&](const BlockTask& t) {
    T* x = st.tile(t.i0 / bs, t.j0 / bs);
    const T* u = st.tile(t.i0 / bs, t.k0 / bs);
    const T* v = st.tile(t.k0 / bs, t.j0 / bs);
    const T* w = st.tile(t.k0 / bs, t.k0 / bs);
    const bool di = (t.kind == BoxKind::A || t.kind == BoxKind::B);
    const bool dj = (t.kind == BoxKind::A || t.kind == BoxKind::C);
    kernel_lu(x, u, v, w, t.m, s, s, s, s, di, dj);
  });
}

template <class StoreC, class StoreA, class StoreB>
void igep_matmul_dag(WorkStealingPool* pool, const StoreC& cst,
                     const StoreA& ast, const StoreB& bst, index_t n,
                     TypedOptions opts = {}) {
  obs::WatchdogThreadSource wd_src("igep-mm-dag");
  using T = std::remove_reference_t<decltype(cst.tile(0, 0)[0])>;
  const index_t bs = std::min(opts.base_size, n);
  const index_t sc = cst.tile_stride();
  const index_t sa = ast.tile_stride();
  const index_t sb = bst.tile_stride();
  TaskGraph g = build_typed_task_graph(DagProblem::MatMul, n, bs);
  run_task_graph(g, pool, [&](const BlockTask& t) {
    T* x = cst.tile(t.i0 / bs, t.j0 / bs);
    const T* a = ast.tile(t.i0 / bs, t.k0 / bs);
    const T* b = bst.tile(t.k0 / bs, t.j0 / bs);
    kernel_mm(x, a, b, t.m, sc, sa, sb);
  });
}

}  // namespace gep
