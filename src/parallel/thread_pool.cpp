#include "parallel/thread_pool.hpp"

#include "obs/registry.hpp"

namespace gep {

void ThreadPool::note_executed() {
  executed_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter c = obs::counter("parallel.pool.executed");
  c.inc();
}

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  for (int t = 0; t + 1 < threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::push(Task t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(t));
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  Task t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    t = std::move(queue_.front());
    queue_.pop_front();
  }
  note_executed();
  t.fn();
  t.group->pending_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task t;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    note_executed();
    t.fn();
    t.group->pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void TaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->threads() <= 1) {
    fn();
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->push(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::wait() {
  if (pool_ == nullptr) return;
  // Help: drain queued tasks (any group's) while our forks are in flight.
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!pool_->try_run_one()) std::this_thread::yield();
  }
}

}  // namespace gep
