#include "parallel/dag_sim.hpp"

#include <algorithm>
#include <array>
#include <queue>

namespace gep {
namespace {

// Update count of a base-case box with the given diagonal restrictions:
// sum over k of (#i) * (#j), where a diagonal-restricted index runs over
// k+1..m-1 (strict, `lo1`) or k..m-1 (inclusive, used by LU's j range).
double box_cost(index_t m, bool di_strict, int j_mode /*0=full,1=strict,2=incl*/) {
  double total = 0;
  for (index_t k = 0; k < m; ++k) {
    double ci = di_strict ? static_cast<double>(m - 1 - k)
                          : static_cast<double>(m);
    double cj = j_mode == 0   ? static_cast<double>(m)
                : j_mode == 1 ? static_cast<double>(m - 1 - k)
                              : static_cast<double>(m - k);
    total += ci * cj;
  }
  return total;
}

struct Builder {
  DagProblem prob;
  index_t base;
  std::vector<LeafBox>* boxes = nullptr;

  bool prune(index_t i0, index_t j0, index_t k0) const {
    if (prob == DagProblem::Gaussian || prob == DagProblem::LU) {
      return i0 < k0 || j0 < k0;
    }
    return false;
  }

  SPNode leaf(index_t i0, index_t j0, index_t k0, index_t m) const {
    const bool di = (i0 == k0);
    const bool dj = (j0 == k0);
    SPNode n;
    if (boxes != nullptr) {
      n.leaf_id = static_cast<int>(boxes->size());
      boxes->push_back(LeafBox{i0, j0, k0, m});
    }
    n.cost = leaf_cost(prob, m, di, dj);
    return n;
  }

  SPNode rec(index_t i0, index_t j0, index_t k0, index_t m) const {
    if (m <= base) return leaf(i0, j0, k0, m);
    const index_t h = m / 2;
    const index_t ka = k0, kb = k0 + h;
    const bool ik = (i0 == k0), jk = (j0 == k0);
    SPNode node;
    auto add_stage = [&](std::vector<std::array<index_t, 3>> calls) {
      std::vector<SPNode> group;
      for (auto [ii, jj, kk] : calls) {
        if (!prune(ii, jj, kk)) group.push_back(rec(ii, jj, kk, h));
      }
      if (!group.empty()) node.stages.push_back(std::move(group));
    };
    if (prob == DagProblem::MatMul) {  // pure D: two 4-way stages
      add_stage({{i0, j0, ka}, {i0, j0 + h, ka}, {i0 + h, j0, ka},
                 {i0 + h, j0 + h, ka}});
      add_stage({{i0, j0, kb}, {i0, j0 + h, kb}, {i0 + h, j0, kb},
                 {i0 + h, j0 + h, kb}});
    } else if (ik && jk) {  // A
      add_stage({{i0, j0, ka}});
      add_stage({{i0, j0 + h, ka}, {i0 + h, j0, ka}});
      add_stage({{i0 + h, j0 + h, ka}});
      add_stage({{i0 + h, j0 + h, kb}});
      add_stage({{i0 + h, j0, kb}, {i0, j0 + h, kb}});
      add_stage({{i0, j0, kb}});
    } else if (ik) {  // B
      add_stage({{i0, j0, ka}, {i0, j0 + h, ka}});
      add_stage({{i0 + h, j0, ka}, {i0 + h, j0 + h, ka}});
      add_stage({{i0 + h, j0, kb}, {i0 + h, j0 + h, kb}});
      add_stage({{i0, j0, kb}, {i0, j0 + h, kb}});
    } else if (jk) {  // C
      add_stage({{i0, j0, ka}, {i0 + h, j0, ka}});
      add_stage({{i0, j0 + h, ka}, {i0 + h, j0 + h, ka}});
      add_stage({{i0, j0 + h, kb}, {i0 + h, j0 + h, kb}});
      add_stage({{i0, j0, kb}, {i0 + h, j0, kb}});
    } else {  // D
      add_stage({{i0, j0, ka}, {i0, j0 + h, ka}, {i0 + h, j0, ka},
                 {i0 + h, j0 + h, ka}});
      add_stage({{i0, j0, kb}, {i0, j0 + h, kb}, {i0 + h, j0, kb},
                 {i0 + h, j0 + h, kb}});
    }
    return node;
  }
};

struct FlatNode {
  double cost = 0;
  int leaf_id = -1;
  int unmet = 0;
  std::vector<int> succ;
};

struct FlatDag {
  std::vector<FlatNode> nodes;

  int add(double cost, int leaf_id = -1) {
    nodes.push_back(FlatNode{cost, leaf_id, 0, {}});
    return static_cast<int>(nodes.size()) - 1;
  }
  void edge(int from, int to) {
    nodes[static_cast<std::size_t>(from)].succ.push_back(to);
    nodes[static_cast<std::size_t>(to)].unmet += 1;
  }

  // Returns (entry nodes, exit nodes) of the subgraph for sp.
  std::pair<std::vector<int>, std::vector<int>> build(const SPNode& sp) {
    if (sp.is_leaf()) {
      int id = add(sp.cost, sp.leaf_id);
      return {{id}, {id}};
    }
    std::vector<int> first_entries;
    std::vector<int> prev_exits;
    bool first = true;
    for (const auto& stage : sp.stages) {
      std::vector<int> entries, exits;
      for (const auto& child : stage) {
        auto [e, x] = build(child);
        entries.insert(entries.end(), e.begin(), e.end());
        exits.insert(exits.end(), x.begin(), x.end());
      }
      if (entries.empty()) continue;  // fully pruned stage
      if (first) {
        first_entries = entries;
        first = false;
      } else {
        // Zero-cost join keeps the edge count linear.
        int join = add(0);
        for (int x : prev_exits) edge(x, join);
        for (int e : entries) edge(join, e);
      }
      prev_exits = exits;
    }
    if (first) {  // everything pruned: empty subgraph -> zero-cost node
      int id = add(0);
      return {{id}, {id}};
    }
    return {first_entries, prev_exits};
  }
};

}  // namespace

double leaf_cost(DagProblem prob, index_t m, bool di, bool dj) {
  switch (prob) {
    case DagProblem::Gaussian:
      return box_cost(m, di, dj ? 1 : 0);
    case DagProblem::LU:
      return box_cost(m, di, dj ? 2 : 0);
    case DagProblem::FloydWarshall:
    case DagProblem::MatMul:
      break;
  }
  return static_cast<double>(m) * m * m;
}

SPNode build_igep_dag(DagProblem prob, index_t n, index_t base,
                      std::vector<LeafBox>* boxes) {
  Builder b{prob, std::min(base, n), boxes};
  return b.rec(0, 0, 0, n);
}

double dag_work(const SPNode& root) {
  if (root.is_leaf()) return root.cost;
  double total = 0;
  for (const auto& stage : root.stages) {
    for (const auto& child : stage) total += dag_work(child);
  }
  return total;
}

double dag_span(const SPNode& root) {
  if (root.is_leaf()) return root.cost;
  double total = 0;
  for (const auto& stage : root.stages) {
    double widest = 0;
    for (const auto& child : stage) widest = std::max(widest, dag_span(child));
    total += widest;
  }
  return total;
}

namespace {

// Shared greedy event loop; fills `sched` (when non-null) with one entry
// per leaf node, ordered by start time.
double run_greedy(FlatDag& dag, int p, std::vector<ScheduledLeaf>* sched) {
  // Ready nodes are dispatched by DFS priority (node ids are assigned in
  // DFS order), making this a PDF (parallel depth-first) schedule: with
  // p = 1 it reduces to the sequential execution order, which is the
  // property Lemma 3.2 builds on.
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (std::size_t id = 0; id < dag.nodes.size(); ++id) {
    if (dag.nodes[id].unmet == 0) ready.push(static_cast<int>(id));
  }
  using Event = std::tuple<double, int, int>;  // (finish, node, proc)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  std::vector<int> idle_procs;
  for (int q = std::max(1, p) - 1; q >= 0; --q) idle_procs.push_back(q);
  double t = 0;
  std::size_t done = 0;
  while (done < dag.nodes.size()) {
    while (!idle_procs.empty() && !ready.empty()) {
      int id = ready.top();
      ready.pop();
      int proc = idle_procs.back();
      idle_procs.pop_back();
      const FlatNode& node = dag.nodes[static_cast<std::size_t>(id)];
      if (sched != nullptr && node.leaf_id >= 0) {
        sched->push_back(ScheduledLeaf{node.leaf_id, proc, t});
      }
      running.emplace(t + node.cost, id, proc);
    }
    auto [finish, id, proc] = running.top();
    running.pop();
    t = finish;
    idle_procs.push_back(proc);
    ++done;
    for (int s : dag.nodes[static_cast<std::size_t>(id)].succ) {
      if (--dag.nodes[static_cast<std::size_t>(s)].unmet == 0) ready.push(s);
    }
  }
  return t;
}

}  // namespace

double dag_makespan(const SPNode& root, int p) {
  FlatDag dag;
  dag.build(root);
  return run_greedy(dag, p, nullptr);
}

std::vector<ScheduledLeaf> dag_schedule(const SPNode& root, int p) {
  FlatDag dag;
  dag.build(root);
  std::vector<ScheduledLeaf> sched;
  run_greedy(dag, p, &sched);
  return sched;
}

}  // namespace gep
