#include "parallel/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <queue>

namespace gep {

void TaskGraph::begin_build(index_t grid_tiles, int n_mats,
                            std::size_t n_tasks) {
  grid_ = grid_tiles;
  blocks_.assign(static_cast<std::size_t>(n_mats) *
                     static_cast<std::size_t>(grid_tiles) *
                     static_cast<std::size_t>(grid_tiles),
                 BlockState{});
  tasks_.reserve(n_tasks);
  succ_.reserve(n_tasks);
  preds_.reserve(n_tasks);
}

int TaskGraph::add_task(const BlockTask& t, const Access* acc, int n_acc) {
  const int id = static_cast<int>(tasks_.size());
  tasks_.push_back(t);
  succ_.emplace_back();
  preds_.push_back(0);
  work_ += t.cost;

  auto key = [this](const Access& a) {
    return (static_cast<std::size_t>(a.mat) * static_cast<std::size_t>(grid_) +
            static_cast<std::size_t>(a.bi)) *
               static_cast<std::size_t>(grid_) +
           static_cast<std::size_t>(a.bj);
  };

  // Collect dependencies from the pre-task block states: a write waits
  // for the block's last writer (WAW) and every reader since it (WAR); a
  // read waits for the last writer (RAW).
  dep_scratch_.clear();
  for (int i = 0; i < n_acc; ++i) {
    const BlockState& st = blocks_[key(acc[i])];
    if (st.last_writer >= 0) dep_scratch_.push_back(st.last_writer);
    if (acc[i].write) {
      dep_scratch_.insert(dep_scratch_.end(), st.readers.begin(),
                          st.readers.end());
    }
  }

  // Update the states: writes first, so a block this task both writes
  // and reads (the in-place A/B/C leaves read their own partially
  // updated X) registers as a write only.
  for (int i = 0; i < n_acc; ++i) {
    if (!acc[i].write) continue;
    BlockState& st = blocks_[key(acc[i])];
    st.last_writer = id;
    st.readers.clear();
  }
  for (int i = 0; i < n_acc; ++i) {
    if (acc[i].write) continue;
    BlockState& st = blocks_[key(acc[i])];
    if (st.last_writer == id) continue;
    // Duplicate reads of one block (GE's U and W coincide in B-kind
    // boxes) would land adjacent: ids only grow.
    if (!st.readers.empty() && st.readers.back() == id) continue;
    st.readers.push_back(id);
  }

  std::sort(dep_scratch_.begin(), dep_scratch_.end());
  dep_scratch_.erase(std::unique(dep_scratch_.begin(), dep_scratch_.end()),
                     dep_scratch_.end());
  for (int d : dep_scratch_) {
    succ_[static_cast<std::size_t>(d)].push_back(id);
    preds_[static_cast<std::size_t>(id)] += 1;
    ++edges_;
  }
  return id;
}

void TaskGraph::finalize() {
  const int n = size();
  priority_.assign(static_cast<std::size_t>(n), 0.0);
  span_ = 0;
  // Emission order is topological (every dependency has a smaller id),
  // so one backward sweep computes the critical path to the exit.
  for (int id = n - 1; id >= 0; --id) {
    double best = 0;
    for (int s : succ_[static_cast<std::size_t>(id)]) {
      best = std::max(best, priority_[static_cast<std::size_t>(s)]);
    }
    priority_[static_cast<std::size_t>(id)] =
        tasks_[static_cast<std::size_t>(id)].cost + best;
    span_ = std::max(span_, priority_[static_cast<std::size_t>(id)]);
  }
  ready0_.clear();
  for (int id = 0; id < n; ++id) {
    if (preds_[static_cast<std::size_t>(id)] == 0) ready0_.push_back(id);
  }
  std::sort(ready0_.begin(), ready0_.end(), [this](int a, int b) {
    const double pa = priority_[static_cast<std::size_t>(a)];
    const double pb = priority_[static_cast<std::size_t>(b)];
    // Priority ties resolve to emission (sequential) order.
    return pa != pb ? pa > pb : a < b;
  });
  // The per-block analysis state is only needed while adding tasks.
  blocks_.clear();
  blocks_.shrink_to_fit();
  dep_scratch_.clear();
  dep_scratch_.shrink_to_fit();
}

TaskGraph build_typed_task_graph(DagProblem prob, index_t n, index_t base) {
  TaskGraph g;
  g.problem = prob;
  const index_t bs = std::min(base, n);
  // build_igep_dag emits the leaf boxes in exactly the typed recursion's
  // sequential order (same stage lists as detail::typed_rec / mm_rec),
  // which is the order the superscalar analysis in add_task requires —
  // and, unlike running typed_rec with a recording leaf, it does not
  // bill emission to the typed.* work counters.
  std::vector<LeafBox> boxes;
  build_igep_dag(prob, n, bs, &boxes);
  int log_n = 0;
  while ((index_t{1} << log_n) < n) ++log_n;
  const index_t grid = (n + bs - 1) / bs;
  g.begin_build(grid, prob == DagProblem::MatMul ? 3 : 1, boxes.size());
  TaskGraph::Access acc[4];
  for (const LeafBox& b : boxes) {
    const bool di = (b.i0 == b.k0), dj = (b.j0 == b.k0);
    BlockTask t;
    t.kind = di ? (dj ? BoxKind::A : BoxKind::B)
                : (dj ? BoxKind::C : BoxKind::D);
    t.i0 = b.i0;
    t.j0 = b.j0;
    t.k0 = b.k0;
    t.m = b.m;
    int log_m = 0;
    while ((index_t{1} << log_m) < b.m) ++log_m;
    t.depth = log_n - log_m;
    t.cost = leaf_cost(prob, b.m, di, dj);
    const index_t bi = b.i0 / bs, bj = b.j0 / bs, bk = b.k0 / bs;
    int na = 0;
    if (prob == DagProblem::MatMul) {
      acc[na++] = TaskGraph::Access{0, bi, bj, true};   // C
      acc[na++] = TaskGraph::Access{1, bi, bk, false};  // A
      acc[na++] = TaskGraph::Access{2, bk, bj, false};  // B
    } else {
      acc[na++] = TaskGraph::Access{0, bi, bj, true};   // X
      acc[na++] = TaskGraph::Access{0, bi, bk, false};  // U
      acc[na++] = TaskGraph::Access{0, bk, bj, false};  // V
      if (prob == DagProblem::Gaussian || prob == DagProblem::LU) {
        acc[na++] = TaskGraph::Access{0, bk, bk, false};  // W (pivot)
      }
    }
    g.add_task(t, acc, na);
  }
  g.finalize();
  obs::counter("parallel.dag.tasks").inc(static_cast<std::uint64_t>(g.size()));
  obs::counter("parallel.dag.edges").inc(
      static_cast<std::uint64_t>(g.edge_count()));
  return g;
}

namespace {

// Shared execution state for one run_task_graph call. The leaf-side
// instrumentation mirrors detail::typed_rec's leaf branch (span, flight
// breadcrumb, watchdog beat, typed.* counters, sampled hw attribution)
// so profiles and progress meters read identically across runtimes.
struct DagExec {
  const TaskGraph& g;
  const std::function<void(const BlockTask&)>& leaf;
  const TaskRuntimeOptions& opts;
  WsTaskGroup* group = nullptr;
  std::unique_ptr<std::atomic<int>[]> unmet;
  std::unique_ptr<std::atomic<bool>[]> was_hinted;
  std::atomic<int> hints_out{0};

  DagExec(const TaskGraph& graph,
          const std::function<void(const BlockTask&)>& l,
          const TaskRuntimeOptions& o)
      : g(graph), leaf(l), opts(o) {}

  bool hinting() const { return opts.lookahead > 0 && opts.prefetch; }

  // Issues the prefetch hint for a ready task if the lookahead window
  // has room. Outstanding = hinted but not yet started, so the window
  // bounds how many speculative working sets the hints can occupy.
  void maybe_hint(int id) {
    if (!hinting()) return;
    int h = hints_out.load(std::memory_order_relaxed);
    while (h < opts.lookahead) {
      if (hints_out.compare_exchange_weak(h, h + 1,
                                          std::memory_order_relaxed)) {
        was_hinted[id].store(true, std::memory_order_relaxed);
        obs::counter("parallel.dag.hints").inc();
        opts.prefetch(g.task(id));
        return;
      }
    }
  }

  void bump_counters(const BlockTask& t) {
#if GEP_OBS
    const std::uint64_t cube =
        static_cast<std::uint64_t>(t.m) * t.m * t.m;
    if (g.problem == DagProblem::MatMul) {
      static obs::Counter calls = obs::counter("typed.mm.leaf_calls");
      static obs::Counter upd = obs::counter("typed.mm.updates");
      calls.inc();
      upd.inc(cube);
    } else {
      detail::TypedMetrics& tm = detail::typed_metrics();
      const int ki = static_cast<int>(t.kind);
      tm.leaf_calls[ki].inc();
      tm.updates[ki].inc(cube);
    }
#else
    (void)t;
#endif
  }

  void exec_leaf(int id) {
    obs::Watchdog::beat_this_thread();
    const BlockTask& t = g.task(id);
    if (was_hinted != nullptr &&
        was_hinted[id].load(std::memory_order_relaxed)) {
      hints_out.fetch_sub(1, std::memory_order_relaxed);
    }
    // Quiesce gate: may block here while a snapshot is being cut. The
    // leaf has not touched its blocks yet, so a JobCancelled unwinding
    // from inside (leaf's own stop-poll) is a CLEAN cancel; any other
    // exception mid-kernel leaves a half-updated block and poisons
    // further snapshots (leaf_abort).
    if (opts.ckpt != nullptr) opts.ckpt->leaf_enter();
    try {
      obs::flight::record(obs::flightfmt::kTaskRun,
                          static_cast<std::uint64_t>(id));
      const char kc = box_kind_char(t.kind);
      obs::ScopedSpan span(kc, t.depth, t.i0, t.j0, t.k0, t.m);
      obs::FlightRecScope frec(kc, t.depth, static_cast<std::uint64_t>(t.m));
      bump_counters(t);
      {
        obs::ScopedLeafSample sample(kc, static_cast<long long>(t.m));
        leaf(t);
      }
    } catch (const obs::JobCancelled&) {
      if (opts.ckpt != nullptr) opts.ckpt->leaf_cancel();
      throw;
    } catch (...) {
      if (opts.ckpt != nullptr) opts.ckpt->leaf_abort();
      throw;
    }
    obs::flight::record(obs::flightfmt::kTaskRetire,
                        static_cast<std::uint64_t>(id));
    if (opts.ckpt != nullptr) opts.ckpt->leaf_exit(id);
  }

  void submit(int id) {
    obs::flight::record(obs::flightfmt::kTaskReady,
                        static_cast<std::uint64_t>(id));
    maybe_hint(id);
    group->run([this, id] { run_parallel(id); });
  }

  void run_parallel(int id) {
    thread_local std::vector<int> newly;
    while (true) {
      exec_leaf(id);
      // Release successors. A leaf that threw skips this (the exception
      // is captured by the pool and rethrown from wait()), so dependents
      // of a failed task are never submitted. acq_rel: the last
      // predecessor's matrix writes happen-before the successor's
      // execution.
      newly.clear();
      for (int s : g.successors(id)) {
        if (unmet[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          newly.push_back(s);
        }
      }
      if (newly.empty()) return;
      // The deque pops LIFO, so submit in ASCENDING priority: the
      // highest-priority (deepest critical path) task lands on top.
      // Ties resolve to emission order popping first (larger id pushed
      // earlier).
      std::sort(newly.begin(), newly.end(), [this](int a, int b) {
        const double pa = g.priority(a), pb = g.priority(b);
        return pa != pb ? pa < pb : a > b;
      });
      // Work-first continuation: the best released successor runs inline
      // on this worker. It shares blocks with the task that released it,
      // and most tasks release exactly one successor (the block's WAW
      // chain), so skipping the deque removes a push/pop/steal round
      // trip per task and keeps the critical path off the steal path.
      const int next = newly.back();
      newly.pop_back();
      for (int s : newly) submit(s);
      obs::flight::record(obs::flightfmt::kTaskReady,
                          static_cast<std::uint64_t>(next));
      id = next;
    }
  }
};

}  // namespace

void run_task_graph(const TaskGraph& g, WorkStealingPool* pool,
                    const std::function<void(const BlockTask&)>& leaf,
                    const TaskRuntimeOptions& opts) {
  const int n = g.size();
  if (n == 0) return;
  if (pool == nullptr || pool->threads() <= 1) {
    // Sequential engine: execute in emission order — a topological
    // order that IS the typed recursion's sequential schedule — with a
    // cursor hinting `lookahead` tasks past the one about to run. No
    // group machinery: chaining submits through WsTaskGroup::run's
    // inline path would recurse a full DAG deep.
    DagExec ex(g, leaf, opts);
    int cursor = 0;
    for (int id = 0; id < n; ++id) {
      // Resume path: tasks the checkpoint frontier already covers are
      // skipped (their effects were replayed from the snapshot). Skipped
      // tasks are not hinted either — their pages are not needed.
      if (opts.ckpt != nullptr && opts.ckpt->is_done(id)) {
        cursor = std::max(cursor, id + 1);
        continue;
      }
      if (ex.hinting()) {
        const int limit = std::min(n, id + 1 + opts.lookahead);
        for (; cursor < limit; ++cursor) {
          if (opts.ckpt != nullptr && opts.ckpt->is_done(cursor)) continue;
          obs::flight::record(obs::flightfmt::kTaskReady,
                              static_cast<std::uint64_t>(cursor));
          obs::counter("parallel.dag.hints").inc();
          opts.prefetch(g.task(cursor));
        }
      }
      ex.exec_leaf(id);
    }
    return;
  }

  DagExec ex(g, leaf, opts);
  ex.unmet = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(n));
  ex.was_hinted = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    ex.unmet[id].store(g.pred_count(id), std::memory_order_relaxed);
    ex.was_hinted[id].store(false, std::memory_order_relaxed);
  }
  if (opts.ckpt != nullptr) {
    // Resume path: the frontier is a dependence downset (every
    // predecessor of a done task is done), so retiring the done set up
    // front — decrement successors, never execute — leaves exactly the
    // not-done tasks with their not-done predecessor counts.
    for (int id = 0; id < n; ++id) {
      if (!opts.ckpt->is_done(id)) continue;
      for (int s : g.successors(id)) {
        ex.unmet[s].fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  WsTaskGroup group(pool);
  ex.group = &group;
  // initial_ready() is priority-descending; push ascending so the LIFO
  // pop order starts on the critical path.
  if (opts.ckpt != nullptr) {
    // The seeds are every not-done task whose predecessors are all done.
    std::vector<int> r0;
    for (int id = 0; id < n; ++id) {
      if (opts.ckpt->is_done(id)) continue;
      if (ex.unmet[id].load(std::memory_order_relaxed) == 0) {
        r0.push_back(id);
      }
    }
    if (r0.empty()) return;  // everything already done
    std::sort(r0.begin(), r0.end(), [&g](int a, int b) {
      const double pa = g.priority(a), pb = g.priority(b);
      return pa != pb ? pa > pb : a < b;
    });
    for (auto it = r0.rbegin(); it != r0.rend(); ++it) ex.submit(*it);
  } else {
    const std::vector<int>& r0 = g.initial_ready();
    for (auto it = r0.rbegin(); it != r0.rend(); ++it) ex.submit(*it);
  }
  group.wait();
}

double task_graph_makespan(const TaskGraph& g, int p) {
  const int n = g.size();
  if (n == 0) return 0;
  std::vector<int> unmet(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    unmet[static_cast<std::size_t>(id)] = g.pred_count(id);
  }
  // Dispatch ready tasks by critical-path priority (ties: emission
  // order) — the same greedy non-preemptive policy as dag_makespan, so
  // the two makespans are directly comparable.
  auto lower = [&g](int a, int b) {
    const double pa = g.priority(a), pb = g.priority(b);
    return pa != pb ? pa < pb : a > b;
  };
  std::priority_queue<int, std::vector<int>, decltype(lower)> ready(lower);
  for (int id : g.initial_ready()) ready.push(id);
  using Event = std::pair<double, int>;  // (finish time, task)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  const int procs = std::max(1, p);
  int busy = 0;
  double t = 0;
  int done = 0;
  while (done < n) {
    while (busy < procs && !ready.empty()) {
      const int id = ready.top();
      ready.pop();
      running.emplace(t + g.task(id).cost, id);
      ++busy;
    }
    const auto [finish, id] = running.top();
    running.pop();
    t = finish;
    --busy;
    ++done;
    for (int s : g.successors(id)) {
      if (--unmet[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  return t;
}

RuntimeKind runtime_from_env(RuntimeKind fallback) {
  const char* v = std::getenv("GEP_DAG_RUNTIME");
  if (v == nullptr || *v == '\0') return fallback;
  return (*v == '0') ? RuntimeKind::ForkJoin : RuntimeKind::Dag;
}

int dag_lookahead_from_env(int fallback) {
  const char* v = std::getenv("GEP_DAG_LOOKAHEAD");
  if (v == nullptr || *v == '\0') return fallback;
  const int k = std::atoi(v);
  return k >= 0 ? k : fallback;
}

}  // namespace gep
