// Work-stealing fork-join pool — the Cilk-style scheduler whose caching
// behaviour Lemma 3.1(a) analyzes.
//
// Each worker owns a deque: it pushes and pops forked tasks at the back
// (LIFO, preserving the sequential order's locality — the property the
// lemma's bound rests on) and steals from the FRONT of a random victim
// when empty (stealing the oldest, largest-granularity work). The
// central-queue ThreadPool (thread_pool.hpp) is the simpler alternative;
// both satisfy the same fork-join interface, so the typed I-GEP engine
// runs on either (see WsParInvoker).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "util/prng.hpp"

namespace gep {

class WsTaskGroup;

// Aggregated view of one worker's activity (worker 0 is the external /
// calling thread's deque). idle_seconds is time spent parked in the
// sleep condition variable, not time spinning in wait().
struct WsWorkerStats {
  long steals = 0;
  long executed = 0;
  long idle_wakes = 0;
  double idle_seconds = 0.0;
};

class WorkStealingPool {
 public:
  explicit WorkStealingPool(int threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int threads() const { return threads_; }

  // Total successful steals (for the scheduler-behaviour tests; the
  // work-stealing bound charges cache misses to steals).
  long steal_count() const;

  // Tasks executed across all workers, and the per-worker breakdown.
  long executed_count() const;
  WsWorkerStats worker_stats(int worker) const;

 private:
  friend class WsTaskGroup;
  struct Task {
    std::function<void()> fn;
    WsTaskGroup* group;
  };
  // Per-worker counters ride in the worker's own Deque allocation; each
  // field is bumped only by its owner (relaxed), read by aggregators.
  struct Deque {
    std::deque<Task> q;
    std::mutex mu;
    alignas(64) std::atomic<long> steals{0};
    std::atomic<long> executed{0};
    std::atomic<long> idle_wakes{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  // Pushes to the calling worker's deque (or deque 0 from outside).
  void push(Task t);
  // Pops own back, else steals a victim's front. False when all empty.
  bool try_run_one();
  void worker_loop(int id);
  int self_id() const;

  int threads_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  // Workers currently parked (or about to park) in sleep_cv_. Publishers
  // take sleep_mu_ only when this is non-zero, closing the lost-wakeup
  // window (predicate evaluated, not yet blocked) without a lock on the
  // fast path. Both counters use seq_cst so a parking worker's increment
  // is visible to any push that its predicate check missed.
  std::atomic<int> sleepers_{0};
  std::atomic<long> pending_tasks_{0};
  std::atomic<bool> stop_{false};
};

// Fork-join scope on a WorkStealingPool; wait() helps by running tasks.
// A task that throws does not kill its worker: the first exception is
// captured and rethrown from wait(). The destructor still drains the
// scope but must swallow any unclaimed exception (destructors cannot
// throw) — call wait() explicitly when task failures matter.
class WsTaskGroup {
 public:
  explicit WsTaskGroup(WorkStealingPool* pool) : pool_(pool) {}
  ~WsTaskGroup() { drain(); }

  void run(std::function<void()> fn);
  void wait();

 private:
  friend class WorkStealingPool;
  void drain();  // blocks until pending_ == 0, never throws
  void record_exception(std::exception_ptr e);

  WorkStealingPool* pool_;
  std::atomic<long> pending_{0};
  std::mutex eptr_mu_;
  std::exception_ptr eptr_;
};

// Invoker over a work-stealing pool (typed I-GEP engine concept).
struct WsParInvoker {
  WorkStealingPool* pool = nullptr;

  template <class... Fs>
  void invoke(Fs&&... fs) {
    if (pool == nullptr || pool->threads() <= 1) {
      (static_cast<Fs&&>(fs)(), ...);
      return;
    }
    WsTaskGroup g(pool);
    fork_all_but_last(g, static_cast<Fs&&>(fs)...);
    g.wait();
  }

 private:
  template <class F>
  void fork_all_but_last(WsTaskGroup&, F&& last) {
    static_cast<F&&>(last)();
  }
  template <class F, class... Rest>
  void fork_all_but_last(WsTaskGroup& g, F&& first, Rest&&... rest) {
    g.run(std::function<void()>(static_cast<F&&>(first)));
    fork_all_but_last(g, static_cast<Rest&&>(rest)...);
  }
};

}  // namespace gep
