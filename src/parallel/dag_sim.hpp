// Fork-join DAG construction and p-processor schedule simulation.
//
// The host running this reproduction may have fewer cores than the
// paper's 8-processor Opteron 850, so in addition to the real pthreads
// execution we reproduce Figure 12's speedup curves with a scheduler
// simulation: the exact series-parallel DAG of multithreaded I-GEP
// (Fig. 6) is built with leaf costs equal to the update counts of each
// base-case box, then executed by a greedy list scheduler with p virtual
// processors. T(1) equals the work; T(p) is the makespan. This is the
// machine model Theorem 3.1 analyzes (T1/p + T∞), and the *relative*
// parallelism of MM vs FW vs GE — the content of Fig. 12 — is a
// structural property of the DAG, not of the silicon.
#pragma once

#include <memory>
#include <vector>

#include "matrix/matrix.hpp"

namespace gep {

// Series-parallel task tree: a node is either a leaf with a cost, or a
// series of stages, each stage a list of parallel children.
struct SPNode {
  double cost = 0;  // leaf cost (update count); ignored for inner nodes
  int leaf_id = -1; // index into the box list (leaves only; -1 otherwise)
  std::vector<std::vector<SPNode>> stages;

  bool is_leaf() const { return stages.empty(); }
};

enum class DagProblem { FloydWarshall, Gaussian, LU, MatMul };

// One base-case box of the recursion (element-index coordinates).
struct LeafBox {
  index_t i0, j0, k0, m;
};

// Update count of one base-case box — the leaf cost build_igep_dag
// assigns. di/dj are the diagonal-overlap flags (i0 == k0, j0 == k0);
// GE/LU boxes touching the diagonal skip already-eliminated rows or
// columns, so their cost is below m³. Shared with the task-graph
// runtime (task_graph.hpp) so both schedulers price work identically.
double leaf_cost(DagProblem prob, index_t m, bool di, bool dj);

// Builds the multithreaded I-GEP DAG for an n x n problem with the given
// base size (n, base powers of two, base <= n). When `boxes` is non-null
// it receives the leaf boxes; SPNode::leaf_id indexes into it.
SPNode build_igep_dag(DagProblem prob, index_t n, index_t base,
                      std::vector<LeafBox>* boxes = nullptr);

// One leaf execution in a simulated p-processor greedy schedule.
struct ScheduledLeaf {
  int leaf_id;   // index into the box list
  int proc;      // virtual processor that ran it
  double start;  // start time in the simulation
};

// Greedy schedule (same policy as dag_makespan) returning the leaf
// executions ordered by start time — input for the shared/distributed
// cache replays of the Lemma 3.1/3.2 experiments.
std::vector<ScheduledLeaf> dag_schedule(const SPNode& root, int p);

// Total work (sum of leaf costs).
double dag_work(const SPNode& root);

// Critical path length (infinite processors).
double dag_span(const SPNode& root);

// Greedy list-scheduling makespan with p processors (PDF dispatch:
// ready tasks run in sequential-DFS priority order; non-preemptive).
double dag_makespan(const SPNode& root, int p);

}  // namespace gep
