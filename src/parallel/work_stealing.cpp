#include "parallel/work_stealing.hpp"

#include <cstdio>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/watchdog.hpp"

namespace gep {
namespace {

// Which worker of which pool the current thread is (set by worker_loop).
thread_local const WorkStealingPool* tls_pool = nullptr;
thread_local int tls_id = -1;

// Pool-wide mirrors in the global metrics registry (no-ops at GEP_OBS=0).
obs::Counter& obs_steals() {
  static obs::Counter c = obs::counter("parallel.ws.steals");
  return c;
}
obs::Counter& obs_executed() {
  static obs::Counter c = obs::counter("parallel.ws.executed");
  return c;
}
obs::Counter& obs_idle_wakes() {
  static obs::Counter c = obs::counter("parallel.ws.idle_wakes");
  return c;
}
// Level gauge of currently unparked workers across every live pool
// (scraped by the stat server; a fully parked pool reads 0).
obs::Gauge& obs_active_workers() {
  static obs::Gauge g = obs::gauge("parallel.ws.active_workers");
  return g;
}

}  // namespace

long WorkStealingPool::steal_count() const {
  long n = 0;
  for (const auto& d : deques_) n += d->steals.load(std::memory_order_relaxed);
  return n;
}

long WorkStealingPool::executed_count() const {
  long n = 0;
  for (const auto& d : deques_)
    n += d->executed.load(std::memory_order_relaxed);
  return n;
}

WsWorkerStats WorkStealingPool::worker_stats(int worker) const {
  const Deque& d = *deques_[static_cast<std::size_t>(worker)];
  WsWorkerStats s;
  s.steals = d.steals.load(std::memory_order_relaxed);
  s.executed = d.executed.load(std::memory_order_relaxed);
  s.idle_wakes = d.idle_wakes.load(std::memory_order_relaxed);
  s.idle_seconds =
      static_cast<double>(d.idle_ns.load(std::memory_order_relaxed)) / 1e9;
  return s;
}

WorkStealingPool::WorkStealingPool(int threads)
    : threads_(threads < 1 ? 1 : threads) {
  // Register the pool metrics up front so registry snapshots always show
  // them (a single-threaded run legitimately reports steals == 0).
  obs_steals();
  obs_executed();
  obs_idle_wakes();
  for (int d = 0; d < threads_; ++d) {
    deques_.push_back(std::make_unique<Deque>());
  }
  for (int t = 0; t + 1 < threads_; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t + 1); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    // Publish under the sleep mutex so a worker between its predicate
    // check and blocking cannot miss the shutdown notification: the
    // worker evaluates the wait predicate holding sleep_mu_, so it
    // either sees stop_ already true (returns without blocking) or
    // blocks before this store runs — and then notify_all reaches it.
    // Without the lock here, a store landing in that predicate-to-block
    // window would be a classically lost final wake (the 1ms wait_for
    // timeout would mask it as slow shutdown, not a hang — which is why
    // the construct/destroy stress test also checks teardown LATENCY
    // indirectly by iterating many pools).
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_.store(true);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int WorkStealingPool::self_id() const {
  return (tls_pool == this) ? tls_id : 0;  // external threads use deque 0
}

void WorkStealingPool::push(Task t) {
  // Count the task BEFORE it becomes stealable. With the increment after
  // the deque insert, a parked worker's wait predicate could run in the
  // window between them, read pending == 0 with the task already queued,
  // and sleep its full timeout — a once-per-push 1ms stall that the DAG
  // runtime's submit-on-release path hits far more often than fork-join
  // did. A transient pending > 0 with the deque still empty is harmless:
  // try_run_one simply finds nothing and the waiter rechecks.
  pending_tasks_.fetch_add(1);  // seq_cst: ordered against sleepers_ below
  Deque& d = *deques_[static_cast<std::size_t>(self_id())];
  {
    std::lock_guard<std::mutex> lock(d.mu);
    d.q.push_back(std::move(t));
  }
  if (sleepers_.load() > 0) {
    // A worker may have evaluated the wait predicate (pending == 0) but
    // not yet blocked; notifying in that window is lost and the worker
    // sleeps its full timeout. Acquiring the sleep mutex serializes the
    // publish with the predicate-to-block transition, so the notify
    // below always reaches a parked (or about-to-recheck) worker.
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    sleep_cv_.notify_one();
  }
}

bool WorkStealingPool::try_run_one() {
  const int me = self_id();
  Task task;
  bool got = false;
  // 1. Own deque, back (LIFO: sequential-order locality).
  {
    Deque& d = *deques_[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lock(d.mu);
    if (!d.q.empty()) {
      task = std::move(d.q.back());
      d.q.pop_back();
      got = true;
    }
  }
  // 2. Steal from a random victim's front (oldest = biggest subtree).
  if (!got) {
    static thread_local SplitMix64 rng(
        0x9e3779b97f4a7c15ULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    const int start = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(threads_)));
    for (int off = 0; off < threads_ && !got; ++off) {
      const int victim = (start + off) % threads_;
      if (victim == me) continue;
      Deque& d = *deques_[static_cast<std::size_t>(victim)];
      std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) {
        task = std::move(d.q.front());
        d.q.pop_front();
        got = true;
        // Charged to the THIEF: steals are the unit Lemma 3.1's cache-
        // miss bound counts, and the thief is the worker whose working
        // set changes.
        deques_[static_cast<std::size_t>(me)]->steals.fetch_add(
            1, std::memory_order_relaxed);
        obs_steals().inc();
        obs::flight::record(obs::flightfmt::kTaskSteal,
                            obs::flightfmt::pack_steal(me, victim));
      }
    }
  }
  if (!got) return false;
  pending_tasks_.fetch_sub(1, std::memory_order_acq_rel);
  deques_[static_cast<std::size_t>(me)]->executed.fetch_add(
      1, std::memory_order_relaxed);
  obs_executed().inc();
  // A throwing task must still decrement pending_ (or every later wait()
  // hangs) and must not unwind through the worker loop (std::terminate).
  // Record the exception first: the group is guaranteed alive until its
  // pending_ count reaches zero.
  try {
    task.fn();
  } catch (...) {
    task.group->record_exception(std::current_exception());
  }
  task.group->pending_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void WorkStealingPool::worker_loop(int id) {
  tls_pool = this;
  tls_id = id;
  char wd_name[24];
  std::snprintf(wd_name, sizeof wd_name, "ws-worker-%d", id);
  obs::flight::set_thread_name(wd_name);
  const int wd = obs::Watchdog::register_source(wd_name);
  obs::Watchdog::attach_thread(wd);
  obs_active_workers().add(1.0);  // starts active; park/wake adjust below
  // Park/wake events only on transitions (an idle worker wakes every
  // millisecond; recording each wake would flood its ring). While
  // parked the source is idle — the watchdog clock only runs across
  // task execution, where leaves beat via beat_this_thread().
  bool parked = false;
  Deque& mine = *deques_[static_cast<std::size_t>(id)];
  while (!stop_.load(std::memory_order_acquire)) {
    if (!parked) obs::Watchdog::beat(wd);
    if (try_run_one()) {
      if (parked) {
        parked = false;
        obs::flight::record(obs::flightfmt::kTaskWake,
                            static_cast<std::uint64_t>(id));
        obs::Watchdog::beat(wd);
        obs_active_workers().add(1.0);
      }
    } else {
      if (!parked) {
        parked = true;
        obs::flight::record(obs::flightfmt::kTaskPark,
                            static_cast<std::uint64_t>(id));
        obs::Watchdog::set_idle(wd);
        obs_active_workers().add(-1.0);
      }
      const auto park_start = std::chrono::steady_clock::now();
      {
        std::unique_lock<std::mutex> lock(sleep_mu_);
        sleepers_.fetch_add(1);  // seq_cst: visible to push()'s check
        sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
          return stop_.load(std::memory_order_acquire) ||
                 pending_tasks_.load(std::memory_order_acquire) > 0;
        });
        sleepers_.fetch_sub(1);
      }
      mine.idle_wakes.fetch_add(1, std::memory_order_relaxed);
      mine.idle_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - park_start)
                  .count()),
          std::memory_order_relaxed);
      obs_idle_wakes().inc();
    }
  }
  if (!parked) obs_active_workers().add(-1.0);  // parked already subtracted
  obs::Watchdog::detach_thread();
  obs::Watchdog::unregister_source(wd);
  tls_pool = nullptr;
  tls_id = -1;
}

void WsTaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->threads() <= 1) {
    fn();  // inline: exceptions propagate directly to the caller
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->push(WorkStealingPool::Task{std::move(fn), this});
}

void WsTaskGroup::record_exception(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(eptr_mu_);
  if (!eptr_) eptr_ = std::move(e);  // keep the first failure
}

void WsTaskGroup::drain() {
  if (pool_ == nullptr) return;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!pool_->try_run_one()) std::this_thread::yield();
  }
}

void WsTaskGroup::wait() {
  drain();
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(eptr_mu_);
    e = std::exchange(eptr_, nullptr);
  }
  if (e) std::rethrow_exception(e);
}

}  // namespace gep
