#include "parallel/work_stealing.hpp"

namespace gep {
namespace {

// Which worker of which pool the current thread is (set by worker_loop).
thread_local const WorkStealingPool* tls_pool = nullptr;
thread_local int tls_id = -1;

}  // namespace

WorkStealingPool::WorkStealingPool(int threads)
    : threads_(threads < 1 ? 1 : threads) {
  for (int d = 0; d < threads_; ++d) {
    deques_.push_back(std::make_unique<Deque>());
  }
  for (int t = 0; t + 1 < threads_; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t + 1); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  stop_.store(true);
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int WorkStealingPool::self_id() const {
  return (tls_pool == this) ? tls_id : 0;  // external threads use deque 0
}

void WorkStealingPool::push(Task t) {
  Deque& d = *deques_[static_cast<std::size_t>(self_id())];
  {
    std::lock_guard<std::mutex> lock(d.mu);
    d.q.push_back(std::move(t));
  }
  pending_tasks_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
}

bool WorkStealingPool::try_run_one() {
  const int me = self_id();
  Task task;
  bool got = false;
  // 1. Own deque, back (LIFO: sequential-order locality).
  {
    Deque& d = *deques_[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lock(d.mu);
    if (!d.q.empty()) {
      task = std::move(d.q.back());
      d.q.pop_back();
      got = true;
    }
  }
  // 2. Steal from a random victim's front (oldest = biggest subtree).
  if (!got) {
    static thread_local SplitMix64 rng(
        0x9e3779b97f4a7c15ULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    const int start = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(threads_)));
    for (int off = 0; off < threads_ && !got; ++off) {
      const int victim = (start + off) % threads_;
      if (victim == me) continue;
      Deque& d = *deques_[static_cast<std::size_t>(victim)];
      std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) {
        task = std::move(d.q.front());
        d.q.pop_front();
        got = true;
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!got) return false;
  pending_tasks_.fetch_sub(1, std::memory_order_acq_rel);
  task.fn();
  task.group->pending_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void WorkStealingPool::worker_loop(int id) {
  tls_pool = this;
  tls_id = id;
  while (!stop_.load(std::memory_order_acquire)) {
    if (!try_run_one()) {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return stop_.load(std::memory_order_acquire) ||
               pending_tasks_.load(std::memory_order_acquire) > 0;
      });
    }
  }
  tls_pool = nullptr;
  tls_id = -1;
}

void WsTaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->threads() <= 1) {
    fn();
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->push(WorkStealingPool::Task{std::move(fn), this});
}

void WsTaskGroup::wait() {
  if (pool_ == nullptr) return;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!pool_->try_run_one()) std::this_thread::yield();
  }
}

}  // namespace gep
