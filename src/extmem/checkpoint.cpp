#include "extmem/checkpoint.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/watchdog.hpp"
#include "util/crc32c.hpp"

namespace gep {
namespace {

struct CkptObs {
  obs::Counter count = obs::counter("ckpt.count");
  obs::Counter skipped = obs::counter("ckpt.skipped");
  obs::Counter failed = obs::counter("ckpt.failed");
  obs::Counter bytes = obs::counter("ckpt.bytes");
  obs::Counter pages = obs::counter("ckpt.pages");
};
CkptObs& ckpt_obs() {
  static CkptObs o;
  return o;
}

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
  void close_now() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

// Sequential reader with a running CRC32C over every byte consumed —
// the footer validates the whole stream against it. Short reads are
// truncation: a crash mid-checkpoint can only leave a .tmp behind, so a
// short *renamed* snapshot means real corruption.
struct FileReader {
  int fd;
  const std::string& path;
  std::uint32_t crc = 0;

  void read_exact(void* p, std::size_t nbytes, const char* what) {
    std::size_t got = 0;
    while (got < nbytes) {
      const ssize_t r =
          ::read(fd, static_cast<char*>(p) + got, nbytes - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        throw CheckpointError(path + ": read failed (" + what +
                              "): " + std::strerror(errno));
      }
      if (r == 0) {
        throw CheckpointError(path + ": truncated snapshot (" + what + ")");
      }
      got += static_cast<std::size_t>(r);
    }
    crc = crc32c(p, nbytes, crc);
  }
};

struct FileWriter {
  int fd;
  const std::string& path;
  std::uint32_t crc = 0;
  std::uint64_t bytes = 0;

  void write(const void* p, std::size_t nbytes) {
    std::size_t put = 0;
    while (put < nbytes) {
      const ssize_t w =
          ::write(fd, static_cast<const char*>(p) + put, nbytes - put);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw CheckpointError(path +
                              ": write failed: " + std::strerror(errno));
      }
      put += static_cast<std::size_t>(w);
    }
    crc = crc32c(p, nbytes, crc);
    bytes += nbytes;
  }
};

// SIGUSR2 latch: handler-side store, coordinator-side exchange.
std::atomic<bool> g_ckpt_signal{false};

void on_sigusr2(int) { g_ckpt_signal.store(true, std::memory_order_relaxed); }

std::uint64_t pack_box(index_t i0, index_t j0, index_t k0) {
  return (static_cast<std::uint64_t>(i0) << 42) |
         (static_cast<std::uint64_t>(j0) << 21) |
         static_cast<std::uint64_t>(k0);
}

}  // namespace

std::string snapshot_filename(std::uint64_t job_id, std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "ckpt_%016" PRIx64 "_%06" PRIu64 ".gepckpt",
                job_id, seq);
  return buf;
}

void install_checkpoint_signal_handler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_sigusr2;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR2, &sa, nullptr);
}

bool checkpoint_signal_pending() {
  return g_ckpt_signal.exchange(false, std::memory_order_relaxed);
}

double ckpt_interval_from_env(double fallback) {
  const char* v = std::getenv("GEP_CKPT_INTERVAL_SEC");
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double s = std::strtod(v, &end);
  return (end != v && s > 0) ? s : fallback;
}

SnapshotInfo read_snapshot(const std::string& path, const ExtentSink& sink) {
  FdCloser f{::open(path.c_str(), O_RDONLY)};
  if (f.fd < 0) {
    throw CheckpointError(path + ": cannot open snapshot: " +
                          std::strerror(errno));
  }
  FileReader r{f.fd, path};
  SnapshotInfo info;
  info.path = path;

  r.read_exact(&info.header, sizeof info.header, "header");
  const ckptfmt::FileHeader& h = info.header;
  if (std::memcmp(h.magic, ckptfmt::kMagic, sizeof h.magic) != 0) {
    throw CheckpointError(path + ": not a GEPCKPT1 snapshot");
  }
  if (h.version != ckptfmt::kVersion) {
    throw CheckpointError(path + ": unsupported snapshot version " +
                          std::to_string(h.version));
  }
  {
    ckptfmt::FileHeader hc = h;
    hc.header_crc = 0;
    if (crc32c(&hc, sizeof hc) != h.header_crc) {
      throw CheckpointError(path + ": header checksum mismatch");
    }
  }
  // Bounds that keep a corrupt header from driving absurd allocations.
  if (h.n_mats == 0 || h.n_mats > 64 || h.page_bytes == 0 ||
      h.page_bytes > (std::uint64_t{1} << 30) ||
      h.task_count > (std::uint64_t{1} << 32)) {
    throw CheckpointError(path + ": implausible snapshot header");
  }

  info.mats.resize(h.n_mats);
  r.read_exact(info.mats.data(), h.n_mats * sizeof(ckptfmt::MatRecord),
               "matrix table");

  info.frontier.resize((h.task_count + 7) / 8);
  if (!info.frontier.empty()) {
    r.read_exact(info.frontier.data(), info.frontier.size(), "frontier");
  }

  std::vector<char> payload;
  info.extents.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(h.extent_count, 4096)));
  for (std::uint64_t e = 0; e < h.extent_count; ++e) {
    ckptfmt::ExtentRecord rec;
    r.read_exact(&rec, sizeof rec, "extent record");
    if (rec.count == 0 || rec.count > ckptfmt::kMaxExtentPages ||
        rec.mat >= h.n_mats) {
      throw CheckpointError(path + ": implausible extent record");
    }
    payload.resize(static_cast<std::size_t>(rec.count) * h.page_bytes);
    r.read_exact(payload.data(), payload.size(), "extent payload");
    if (crc32c(payload.data(), payload.size()) != rec.payload_crc) {
      throw CheckpointError(path + ": extent payload checksum mismatch (mat " +
                            std::to_string(rec.mat) + ", pages " +
                            std::to_string(rec.start_page) + "+" +
                            std::to_string(rec.count) + ")");
    }
    info.extents.push_back(rec);
    if (sink) sink(rec, payload.data());
  }

  const std::uint32_t body_crc = r.crc;
  ckptfmt::Footer foot;
  r.read_exact(&foot, sizeof foot, "footer");
  if (std::memcmp(foot.magic, ckptfmt::kEndMagic, sizeof foot.magic) != 0) {
    throw CheckpointError(path + ": footer magic missing (truncated?)");
  }
  if (foot.file_crc != body_crc) {
    throw CheckpointError(path + ": whole-file checksum mismatch");
  }
  info.file_crc = foot.file_crc;
  return info;
}

std::vector<SnapshotInfo> load_chain(const std::string& dir,
                                     std::uint64_t job_id) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return {};  // no directory yet: no chain
    char pfx[32];
    std::snprintf(pfx, sizeof pfx, "ckpt_%016" PRIx64 "_", job_id);
    const std::string prefix = pfx;
    const std::string suffix = ".gepckpt";
    for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() <= prefix.size() + suffix.size()) continue;
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      if (name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
        continue;
      }
      const std::string digits = name.substr(
          prefix.size(), name.size() - prefix.size() - suffix.size());
      char* end = nullptr;
      const std::uint64_t seq = std::strtoull(digits.c_str(), &end, 10);
      if (end == digits.c_str() || *end != '\0') continue;
      found.emplace_back(seq, name);
    }
    ::closedir(d);
  }
  if (found.empty()) return {};
  std::sort(found.begin(), found.end());

  std::vector<SnapshotInfo> chain;
  chain.reserve(found.size());
  for (std::size_t i = 0; i < found.size(); ++i) {
    if (found[i].first != i) {
      throw CheckpointError(dir + ": broken snapshot chain for job — " +
                            "missing sequence " + std::to_string(i) +
                            " (found " + std::to_string(found[i].first) +
                            ")");
    }
    SnapshotInfo s = read_snapshot(dir + "/" + found[i].second, nullptr);
    if (s.header.seq != i) {
      throw CheckpointError(s.path + ": filename/header sequence mismatch");
    }
    if (s.header.job_id != job_id) {
      throw CheckpointError(s.path + ": job id mismatch");
    }
    if (i == 0) {
      if (s.header.parent_crc != 0) {
        throw CheckpointError(s.path +
                              ": base snapshot carries a parent checksum");
      }
    } else {
      const SnapshotInfo& prev = chain.back();
      if (s.header.parent_crc != prev.file_crc) {
        throw CheckpointError(
            s.path + ": incremental chain broken — parent checksum does not "
                     "match snapshot " + std::to_string(i - 1));
      }
      const ckptfmt::FileHeader& a = chain.front().header;
      const ckptfmt::FileHeader& b = s.header;
      if (a.algo != b.algo || a.n != b.n || a.base != b.base ||
          a.options_hash != b.options_hash || a.n_mats != b.n_mats ||
          a.elem_bytes != b.elem_bytes || a.page_bytes != b.page_bytes ||
          a.task_count != b.task_count) {
        throw CheckpointError(s.path +
                              ": fingerprint differs from the chain base");
      }
    }
    chain.push_back(std::move(s));
  }
  return chain;
}

CheckpointCoordinator::CheckpointCoordinator(PageCache& cache,
                                             CheckpointOptions opts)
    : cache_(&cache), opts_(std::move(opts)) {
  if (opts_.interval_sec <= 0) {
    opts_.interval_sec = ckpt_interval_from_env(0.0);
  }
}

void CheckpointCoordinator::add_matrix(int file_id, std::uint64_t rows,
                                       std::uint64_t cols,
                                       std::uint64_t tile_side,
                                       std::uint64_t elem_bytes,
                                       std::uint64_t pages) {
  std::lock_guard<std::mutex> lk(mu_);
  if (bound_) {
    throw CheckpointError("checkpoint: add_matrix() after bind()");
  }
  if (elem_bytes_ == 0) {
    elem_bytes_ = static_cast<std::uint32_t>(elem_bytes);
  } else if (elem_bytes_ != elem_bytes) {
    throw CheckpointError("checkpoint: mixed element sizes in one job");
  }
  mats_.push_back(MatrixInfo{file_id, rows, cols, tile_side, pages});
}

void CheckpointCoordinator::bind(DagProblem algo, index_t n, index_t base,
                                 bool lu_guarded) {
  std::lock_guard<std::mutex> lk(mu_);
  const index_t bs = std::min(base, n);
  if (bound_) {
    if (algo_ != algo || n_ != n || base_ != bs ||
        lu_guarded_ != lu_guarded) {
      throw CheckpointError(
          "checkpoint: coordinator already bound to a different job");
    }
    return;
  }
  if (mats_.empty()) {
    throw CheckpointError("checkpoint: bind() before add_matrix()");
  }
  TaskGraph g = build_typed_task_graph(algo, n, bs);
  task_count_ = static_cast<std::uint64_t>(g.size());
  task_map_.reserve(static_cast<std::size_t>(task_count_) * 2);
  for (int id = 0; id < g.size(); ++id) {
    const BlockTask& t = g.task(id);
    task_map_[pack_box(t.i0, t.j0, t.k0)] = id;
  }
  word_count_ = static_cast<std::size_t>((task_count_ + 63) / 64);
  words_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      std::max<std::size_t>(word_count_, 1));
  for (std::size_t w = 0; w < word_count_; ++w) {
    words_[w].store(0, std::memory_order_relaxed);
  }
  algo_ = algo;
  n_ = n;
  base_ = bs;
  lu_guarded_ = lu_guarded;
  bound_ = true;
}

int CheckpointCoordinator::task_id(index_t i0, index_t j0, index_t k0) const {
  const auto it = task_map_.find(pack_box(i0, j0, k0));
  if (it == task_map_.end()) {
    throw CheckpointError("checkpoint: leaf box not in the bound task graph");
  }
  return it->second;
}

std::uint64_t CheckpointCoordinator::fingerprint_hash() const {
  // Everything that must match for a snapshot to be replayable: the
  // problem, its shape, the leaf grid, element/page geometry and the
  // matrix set. Deliberately NOT the runtime or thread count — any
  // topological execution of the same DAG is bit-identical, so a
  // snapshot cut under the fork-join invoker legally resumes under the
  // DAG scheduler (and vice versa).
  std::vector<std::uint64_t> buf;
  buf.push_back(static_cast<std::uint64_t>(algo_));
  buf.push_back(static_cast<std::uint64_t>(n_));
  buf.push_back(static_cast<std::uint64_t>(base_));
  buf.push_back(elem_bytes_);
  buf.push_back(cache_->page_bytes());
  buf.push_back(lu_guarded_ ? 1 : 0);
  buf.push_back(mats_.size());
  for (const MatrixInfo& m : mats_) {
    buf.push_back(m.rows);
    buf.push_back(m.cols);
    buf.push_back(m.tile_side);
    buf.push_back(m.pages);
  }
  return crc32c(buf.data(), buf.size() * sizeof(std::uint64_t));
}

void CheckpointCoordinator::verify_compat(const SnapshotInfo& s) const {
  const ckptfmt::FileHeader& h = s.header;
  auto fail = [&s](const char* what) {
    throw CheckpointError(s.path +
                          ": snapshot incompatible with this job: " + what);
  };
  if (h.algo != static_cast<std::uint32_t>(algo_)) fail("algorithm");
  if (h.n != static_cast<std::uint64_t>(n_)) fail("problem size");
  if (h.base != static_cast<std::uint64_t>(base_)) fail("base size");
  if (h.options_hash != fingerprint_hash()) fail("options hash");
  if (h.n_mats != mats_.size()) fail("matrix count");
  if (h.elem_bytes != elem_bytes_) fail("element size");
  if (h.page_bytes != cache_->page_bytes()) fail("page size");
  if (h.task_count != task_count_) fail("task count");
  for (std::size_t i = 0; i < mats_.size(); ++i) {
    const ckptfmt::MatRecord& r = s.mats[i];
    const MatrixInfo& m = mats_[i];
    if (r.rows != m.rows || r.cols != m.cols ||
        r.tile_side != m.tile_side || r.pages != m.pages) {
      fail("matrix shape");
    }
  }
}

bool CheckpointCoordinator::resume() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!bound_) throw CheckpointError("checkpoint: resume() before bind()");
  // Pass 1 validates the whole chain (load_chain reads every file end to
  // end); pass 2 below installs pages. Nothing touches the matrices
  // unless the entire chain checked out.
  std::vector<SnapshotInfo> chain = load_chain(opts_.dir, opts_.job_id);
  if (chain.empty()) return false;
  verify_compat(chain.front());

  const std::uint64_t pb = cache_->page_bytes();
  for (const SnapshotInfo& s : chain) {
    read_snapshot(s.path, [this, pb](const ckptfmt::ExtentRecord& rec,
                                     const char* payload) {
      const int fid = mats_[rec.mat].file_id;
      for (std::uint32_t j = 0; j < rec.count; ++j) {
        cache_->install_page(fid, rec.start_page + j,
                             payload + static_cast<std::size_t>(j) * pb);
      }
    });
  }

  // The frontier is cumulative: the newest snapshot names every leaf
  // completed across the whole chain.
  const SnapshotInfo& last = chain.back();
  std::uint64_t done = 0;
  for (std::uint64_t id = 0; id < task_count_; ++id) {
    if ((last.frontier[id >> 3] >> (id & 7)) & 1) {
      words_[id >> 6].fetch_or(std::uint64_t{1} << (id & 63),
                               std::memory_order_relaxed);
      ++done;
    }
  }
  if (done != last.header.done_count) {
    throw CheckpointError(last.path +
                          ": frontier bit count disagrees with header");
  }
  done_count_.store(done, std::memory_order_release);
  last_done_count_ = done;
  // The resumed job APPENDS to the chain it was loaded from.
  seq_ = last.header.seq + 1;
  parent_crc_ = last.file_crc;
  stats_.last_seq = seq_;
  // install_page marked every replayed page; the next incremental must
  // only carry pages the resumed run writes itself.
  for (const MatrixInfo& m : mats_) cache_->clear_changed_mark(m.file_id);
  leaves_since_ = 0;
  deadline_armed_ = false;
  return true;
}

bool CheckpointCoordinator::is_done(int id) const {
  if (words_ == nullptr || id < 0 ||
      static_cast<std::uint64_t>(id) >= task_count_) {
    return false;
  }
  return (words_[static_cast<std::size_t>(id) >> 6].load(
              std::memory_order_acquire) >>
          (id & 63)) &
         1;
}

void CheckpointCoordinator::leaf_enter() {
  std::unique_lock<std::mutex> lk(mu_);
  while (pending_) {
    // The gate is closed while a snapshot drains and writes. Keep the
    // watchdog fed (this is a legitimate stall) and stay cancellable —
    // leaf_enter runs BEFORE the runtime's cancel bracket, so throwing
    // here needs no leaf_cancel().
    obs::Watchdog::beat_this_thread();
    if (obs::flight::stop_requested()) throw obs::JobCancelled();
    cv_.wait_for(lk, std::chrono::milliseconds(50));
  }
  ++inflight_;
}

void CheckpointCoordinator::leaf_exit(int id) {
  if (words_ != nullptr && id >= 0 &&
      static_cast<std::uint64_t>(id) < task_count_) {
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    const std::uint64_t prev =
        words_[static_cast<std::size_t>(id) >> 6].fetch_or(
            bit, std::memory_order_release);
    if ((prev & bit) == 0) {
      done_count_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  --inflight_;
  ++leaves_since_;
  if (requested_) {
    requested_ = false;
    pending_ = true;
  }
  if (checkpoint_signal_pending()) pending_ = true;
  if (opts_.every_n_leaves > 0 && leaves_since_ >= opts_.every_n_leaves) {
    pending_ = true;
  }
  if (opts_.interval_sec > 0) {
    if (!deadline_armed_) {
      arm_deadline();
    } else if (std::chrono::steady_clock::now() >= deadline_) {
      pending_ = true;
    }
  }
  if (pending_ && inflight_ == 0) {
    // Last leaf out cuts the snapshot, under mu_ — every other worker
    // is parked in leaf_enter until the gate reopens.
    try {
      cut_snapshot();
    } catch (...) {
      pending_ = false;
      cv_.notify_all();
      throw;  // job-fatal; the previous snapshot chain stays valid
    }
    pending_ = false;
    cv_.notify_all();
  }
}

void CheckpointCoordinator::leaf_cancel() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  --inflight_;
  // A pending cut whose last in-flight leaf cancelled cannot run here
  // (the job is unwinding); reopen the gate so enter-waiters can poll
  // their stop flag and unwind too. checkpoint_now() after the unwind
  // is the cancellation-path snapshot.
  if (inflight_ == 0 && pending_) pending_ = false;
  cv_.notify_all();
}

void CheckpointCoordinator::leaf_abort() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  --inflight_;
  // The leaf died mid-kernel: its block mixes old and new element
  // values, a state no frontier can name. Snapshots are permanently
  // off; the existing chain (pre-abort) remains the resume point.
  dirty_abort_ = true;
  if (inflight_ == 0 && pending_) pending_ = false;
  cv_.notify_all();
}

void CheckpointCoordinator::request_checkpoint() {
  std::lock_guard<std::mutex> lk(mu_);
  requested_ = true;
}

bool CheckpointCoordinator::checkpoint_now() {
  std::unique_lock<std::mutex> lk(mu_);
  while (inflight_ > 0) cv_.wait_for(lk, std::chrono::milliseconds(50));
  return cut_snapshot() == CutResult::Written;
}

void CheckpointCoordinator::arm_deadline() {
  if (opts_.interval_sec > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opts_.interval_sec));
    deadline_armed_ = true;
  }
}

CheckpointCoordinator::CutResult CheckpointCoordinator::cut_snapshot() {
  if (!bound_) {
    throw CheckpointError("checkpoint: cut before bind()");
  }
  if (dirty_abort_) {
    ++stats_.skipped;
    ckpt_obs().skipped.inc();
    obs::flight::record(obs::flightfmt::kCkptSkipped, 2);
    return CutResult::SkippedAborted;
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Quiesced: no leaf holds pins; write back every dirty frame and make
  // the stores durable (flush ends with per-store sync: data first,
  // then each RobustStore's CRC sidecar).
  cache_->flush();
  const bool incremental = seq_ > 0;
  std::vector<std::vector<std::uint64_t>> per_mat;
  per_mat.reserve(mats_.size());
  bool any_pages = false;
  for (const MatrixInfo& m : mats_) {
    per_mat.push_back(cache_->changed_pages(m.file_id, incremental));
    any_pages = any_pages || !per_mat.back().empty();
  }
  const std::uint64_t done = done_count_.load(std::memory_order_acquire);
  if (incremental && !any_pages && done == last_done_count_) {
    ++stats_.skipped;
    ckpt_obs().skipped.inc();
    obs::flight::record(obs::flightfmt::kCkptSkipped, 1);
    leaves_since_ = 0;
    arm_deadline();
    return CutResult::SkippedUnchanged;
  }

  obs::flight::record(obs::flightfmt::kCkptBegin, seq_);
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  try {
    write_snapshot_file(opts_.dir, seq_, per_mat, done, &bytes, &crc);
  } catch (...) {
    ++stats_.failed;
    ckpt_obs().failed.inc();
    throw;
  }
  // Only after the rename is durable does the incremental epoch roll
  // over — a failed write leaves the change marks intact for the next
  // attempt.
  for (const MatrixInfo& m : mats_) cache_->clear_changed_mark(m.file_id);
  last_done_count_ = done;
  parent_crc_ = crc;
  obs::flight::record(obs::flightfmt::kCkptEnd, seq_);
  ++seq_;
  leaves_since_ = 0;
  arm_deadline();

  std::uint64_t npages = 0;
  for (const auto& v : per_mat) npages += v.size();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++stats_.count;
  stats_.bytes += bytes;
  stats_.pages += npages;
  stats_.wall_seconds += wall;
  stats_.last_seq = seq_;
  ckpt_obs().count.inc();
  ckpt_obs().bytes.inc(bytes);
  ckpt_obs().pages.inc(npages);
  return CutResult::Written;
}

void CheckpointCoordinator::write_snapshot_file(
    const std::string& dir, std::uint64_t seq,
    const std::vector<std::vector<std::uint64_t>>& pages_per_mat,
    std::uint64_t done, std::uint64_t* bytes_out,
    std::uint32_t* crc_out) const {
  // Coalesce each matrix's sorted page list into consecutive runs of at
  // most kMaxExtentPages.
  struct Run {
    std::uint32_t mat;
    std::uint64_t start;
    std::uint32_t count;
  };
  std::vector<Run> runs;
  for (std::size_t mi = 0; mi < pages_per_mat.size(); ++mi) {
    const std::vector<std::uint64_t>& pages = pages_per_mat[mi];
    for (std::size_t i = 0; i < pages.size();) {
      std::size_t j = i + 1;
      while (j < pages.size() && pages[j] == pages[j - 1] + 1 &&
             j - i < ckptfmt::kMaxExtentPages) {
        ++j;
      }
      runs.push_back(Run{static_cast<std::uint32_t>(mi), pages[i],
                         static_cast<std::uint32_t>(j - i)});
      i = j;
    }
  }

  const std::string final_path =
      dir + "/" + snapshot_filename(opts_.job_id, seq);
  const std::string tmp_path = final_path + ".tmp";
  FdCloser f{::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644)};
  if (f.fd < 0) {
    throw CheckpointError(tmp_path + ": cannot create snapshot: " +
                          std::strerror(errno));
  }
  FileWriter w{f.fd, tmp_path};

  ckptfmt::FileHeader h{};
  std::memcpy(h.magic, ckptfmt::kMagic, sizeof h.magic);
  h.version = ckptfmt::kVersion;
  h.algo = static_cast<std::uint32_t>(algo_);
  h.job_id = opts_.job_id;
  h.options_hash = fingerprint_hash();
  h.n = static_cast<std::uint64_t>(n_);
  h.base = static_cast<std::uint64_t>(base_);
  h.n_mats = static_cast<std::uint32_t>(mats_.size());
  h.elem_bytes = elem_bytes_;
  h.page_bytes = cache_->page_bytes();
  h.seq = seq;
  h.parent_crc = parent_crc_;
  h.task_count = task_count_;
  h.done_count = done;
  h.extent_count = runs.size();
  h.header_crc = 0;
  h.header_crc = crc32c(&h, sizeof h);
  w.write(&h, sizeof h);

  for (const MatrixInfo& m : mats_) {
    ckptfmt::MatRecord r{m.rows, m.cols, m.tile_side, m.pages};
    w.write(&r, sizeof r);
  }

  std::vector<std::uint8_t> fb((task_count_ + 7) / 8, 0);
  for (std::uint64_t id = 0; id < task_count_; ++id) {
    if ((words_[id >> 6].load(std::memory_order_acquire) >> (id & 63)) & 1) {
      fb[id >> 3] |= static_cast<std::uint8_t>(1u << (id & 7));
    }
  }
  if (!fb.empty()) w.write(fb.data(), fb.size());

  const std::uint64_t pb = cache_->page_bytes();
  std::vector<char> payload;
  for (const Run& run : runs) {
    payload.resize(static_cast<std::size_t>(run.count) * pb);
    for (std::uint32_t j = 0; j < run.count; ++j) {
      cache_->read_page_snapshot(mats_[run.mat].file_id, run.start + j,
                                 payload.data() +
                                     static_cast<std::size_t>(j) * pb);
    }
    ckptfmt::ExtentRecord rec;
    rec.mat = run.mat;
    rec.count = run.count;
    rec.start_page = run.start;
    rec.payload_crc = crc32c(payload.data(), payload.size());
    rec.reserved = 0;
    w.write(&rec, sizeof rec);
    w.write(payload.data(), payload.size());
  }

  ckptfmt::Footer foot{};
  std::memcpy(foot.magic, ckptfmt::kEndMagic, sizeof foot.magic);
  foot.file_crc = w.crc;
  w.write(&foot, sizeof foot);

  // fsync-before-rename: the snapshot's bytes reach the device before
  // its name does, so the renamed file is never partial; the directory
  // fsync makes the name itself durable.
  while (::fsync(f.fd) != 0) {
    if (errno == EINTR) continue;
    throw CheckpointError(tmp_path + ": fsync failed: " +
                          std::strerror(errno));
  }
  f.close_now();
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw CheckpointError(final_path + ": rename failed: " +
                          std::strerror(errno));
  }
  {
    FdCloser d{::open(dir.c_str(), O_RDONLY)};
    if (d.fd >= 0) ::fsync(d.fd);
  }
  *bytes_out = w.bytes;
  *crc_out = foot.file_crc;
}

CheckpointStats CheckpointCoordinator::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace gep
