// Shared LRU page cache over one or more block files.
//
// This is the STXXL-cache substitute: a fully associative pool of M bytes
// in B-byte pages with LRU replacement and write-back, shared by every
// out-of-core matrix registered with it (just as STXXL's pool is shared
// by all its containers). M and B are the user-set knobs the paper
// sweeps in Fig. 7(a) and 7(b). Every page transfer is charged to the
// DiskModel, accumulating the simulated I/O wait time the figure plots.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "extmem/block_file.hpp"
#include "extmem/disk_model.hpp"
#include "util/aligned.hpp"

namespace gep {

struct PageCacheStats {
  std::uint64_t pins = 0;
  std::uint64_t hits = 0;
  std::uint64_t page_ins = 0;   // transfers disk -> cache
  std::uint64_t page_outs = 0;  // dirty write-backs cache -> disk
  std::uint64_t evictions = 0;  // frames repurposed
  double io_wait_seconds = 0;   // simulated (DiskModel)

  std::uint64_t io() const { return page_ins + page_outs; }
  // Every pin is either a hit or a fault, so hits + misses == pins.
  std::uint64_t misses() const { return pins - hits; }
};

class PageCache {
 public:
  // capacity_bytes = M, page_bytes = B. Needs at least one frame.
  PageCache(std::uint64_t capacity_bytes, std::uint64_t page_bytes,
            DiskModel model = {});
  ~PageCache();

  // Registers a backing file (created by the cache, page size = B).
  // Returns a file id used by pin(). `pages` bounds the address space.
  int register_file(std::uint64_t pages);

  // Returns the in-memory frame holding the page, faulting it in if
  // needed; marks it dirty when for_write. The pointer stays valid until
  // the next pin() call (which may evict it).
  void* pin(int file_id, std::uint64_t page, bool for_write);

  // RAII pin: the page's frame cannot be evicted while a PagePin exists.
  // Lets block-level algorithms hold several tiles resident at once and
  // run raw-pointer kernels on them (the typed out-of-core engine).
  class PagePin {
   public:
    PagePin() = default;
    PagePin(PageCache* cache, std::size_t frame, void* data)
        : cache_(cache), frame_(frame), data_(data) {}
    PagePin(PagePin&& o) noexcept
        : cache_(o.cache_), frame_(o.frame_), data_(o.data_) {
      o.cache_ = nullptr;
    }
    PagePin& operator=(PagePin&& o) noexcept {
      release();
      cache_ = o.cache_;
      frame_ = o.frame_;
      data_ = o.data_;
      o.cache_ = nullptr;
      return *this;
    }
    PagePin(const PagePin&) = delete;
    PagePin& operator=(const PagePin&) = delete;
    ~PagePin() { release(); }

    void* data() const { return data_; }

    void release() {
      if (cache_ != nullptr) {
        cache_->unpin_frame(frame_);
        cache_ = nullptr;
      }
    }

   private:
    PageCache* cache_ = nullptr;
    std::size_t frame_ = 0;
    void* data_ = nullptr;
  };

  // Pins and locks a page. Throws std::runtime_error when every frame is
  // already locked (the cache must have headroom for the concurrent pins
  // an algorithm holds — 4 tiles for the GEP kernels).
  PagePin acquire(int file_id, std::uint64_t page, bool for_write);

  // Write back all dirty frames (counts as I/O).
  void flush();

  // Monotonic counter bumped whenever any frame is repurposed; lets
  // callers revalidate cached frame pointers cheaply.
  std::uint64_t eviction_epoch() const { return epoch_; }

  const PageCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PageCacheStats{}; }
  std::uint64_t page_bytes() const { return page_bytes_; }
  std::uint64_t frames() const { return frame_count_; }

 private:
  struct Frame {
    std::uint64_t key = 0;  // (file_id << 40) | page
    int pins = 0;           // eviction-locked while > 0
    bool valid = false;
    bool dirty = false;
  };
  void unpin_frame(std::size_t frame);
  static std::uint64_t make_key(int file_id, std::uint64_t page) {
    return (static_cast<std::uint64_t>(file_id) << 40) | page;
  }
  void evict(std::size_t frame);

  std::uint64_t page_bytes_;
  std::uint64_t frame_count_;
  DiskModel model_;
  AlignedPtr<char> pool_;                  // frame_count_ x page_bytes_
  std::vector<Frame> frames_;
  std::list<std::size_t> lru_;             // front = MRU, holds frame ids
  std::vector<std::list<std::size_t>::iterator> lru_pos_;
  std::unordered_map<std::uint64_t, std::size_t> table_;  // key -> frame
  std::vector<std::unique_ptr<BlockFile>> files_;
  PageCacheStats stats_;
  std::uint64_t epoch_ = 0;
};

}  // namespace gep
