// Shared LRU page cache over one or more block files.
//
// This is the STXXL-cache substitute: a fully associative pool of M bytes
// in B-byte pages with LRU replacement and write-back, shared by every
// out-of-core matrix registered with it (just as STXXL's pool is shared
// by all its containers). M and B are the user-set knobs the paper
// sweeps in Fig. 7(a) and 7(b). Every page transfer is charged to the
// DiskModel, accumulating the simulated I/O wait time the figure plots.
//
// Concurrency model (docs/EXTMEM.md has the full contract):
//  - The frame table / LRU / frame metadata are guarded by one mutex;
//    page I/O itself runs OUTSIDE the lock with the frame marked busy,
//    so independent faults and the async worker overlap on the disk.
//  - Pin counts are atomic; acquire()/PagePin is the thread-safe API.
//    Raw pin() returns an unlocked pointer and is single-threaded only.
//  - Stats are sharded per-thread cells (the src/obs registry pattern)
//    aggregated on demand by stats().
//  - An optional async I/O worker (enable_async_io) services a prefetch
//    queue and opportunistically writes back dirty LRU-tail frames, both
//    charged to the DiskModel as overlapped (async) I/O wait.
//
// Fault tolerance (docs/ROBUSTNESS.md): every backing file is wrapped
// in a RobustStore (CRC32C page checksums + bounded retry with backoff)
// and, when RobustOptions::faults is enabled, a FaultInjector below it.
// Failed transfers surface as typed IoError/CorruptPageError with the
// cache's frame metadata left consistent (no leaked io_busy frames, no
// lost dirty pages); the async worker degrades to synchronous I/O after
// repeated failures instead of wedging the prefetch queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "extmem/block_file.hpp"
#include "extmem/disk_model.hpp"
#include "extmem/fault_injector.hpp"
#include "extmem/robust_store.hpp"
#include "util/aligned.hpp"

namespace gep {

// Fault-tolerance knobs for a PageCache (defaults are the production
// posture: checksums + retry on, no injection).
struct RobustOptions {
  bool checksums = true;  // CRC32C validated on every page-in
  RetryPolicy retry{};
  FaultConfig faults{};  // faults.enabled() inserts a FaultInjector
};

struct PageCacheStats {
  std::uint64_t pins = 0;
  std::uint64_t hits = 0;
  std::uint64_t page_ins = 0;   // transfers disk -> cache
  std::uint64_t page_outs = 0;  // dirty write-backs cache -> disk
  std::uint64_t evictions = 0;  // frames repurposed
  std::uint64_t prefetch_issued = 0;     // prefetch() calls
  std::uint64_t prefetch_completed = 0;  // pages faulted in by the worker
  std::uint64_t prefetch_redundant = 0;  // hint found the page resident
  std::uint64_t prefetch_hits = 0;       // pins served by a prefetched page
  std::uint64_t prefetch_dropped = 0;    // queue full / worker not running
  std::uint64_t writebacks_async = 0;    // background (overlapped) flushes
  // Fault-tolerance counters (aggregated from the per-file RobustStores
  // plus the cache's own recovery paths; mirrored as obs robust.*).
  std::uint64_t io_retries = 0;          // transparently retried transfers
  std::uint64_t crc_failures = 0;        // checksum mismatches seen
  std::uint64_t io_hard_failures = 0;    // ops that exhausted retries
  std::uint64_t writeback_failures = 0;  // evict/flush/write-behind throws
  std::uint64_t prefetch_errors = 0;     // async faults the worker absorbed
  std::uint64_t async_degraded = 0;      // 1 once the worker gave up
  double io_wait_seconds = 0;        // simulated (DiskModel), all transfers
  double io_wait_async_seconds = 0;  // portion done off the critical path

  std::uint64_t io() const { return page_ins + page_outs; }
  // Every pin is either a hit or a fault, so hits + misses == pins.
  std::uint64_t misses() const { return pins - hits; }
  // Fraction of worker-completed prefetches later consumed by a pin.
  double prefetch_hit_rate() const {
    return prefetch_completed == 0
               ? 0.0
               : static_cast<double>(prefetch_hits) /
                     static_cast<double>(prefetch_completed);
  }
  // Simulated wait actually blocking compute (total minus overlapped).
  double io_wait_foreground_seconds() const {
    return io_wait_seconds - io_wait_async_seconds;
  }
};

class PageCache {
 public:
  // Page ids are packed into 40 bits of the frame-table key.
  static constexpr std::uint64_t kMaxPages = 1ULL << 40;

  // capacity_bytes = M, page_bytes = B. Needs at least one frame.
  PageCache(std::uint64_t capacity_bytes, std::uint64_t page_bytes,
            DiskModel model = {}, RobustOptions robust = {});
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Registers a backing file (created by the cache, page size = B).
  // Returns a file id used by pin(). `pages` bounds the address space:
  // any access at page >= min(pages, kMaxPages) throws std::out_of_range
  // (an unchecked id would silently alias another file's pages in the
  // 40-bit key).
  int register_file(std::uint64_t pages);

  // Returns the in-memory frame holding the page, faulting it in if
  // needed; marks it dirty when for_write. The pointer stays valid until
  // the next pin() call (which may evict it). SINGLE-THREADED ONLY, and
  // incompatible with the async worker (which may evict the unlocked
  // frame at any time) — concurrent callers must use acquire().
  void* pin(int file_id, std::uint64_t page, bool for_write);

  // RAII pin: the page's frame cannot be evicted while a PagePin exists.
  // Lets block-level algorithms hold several tiles resident at once and
  // run raw-pointer kernels on them (the typed out-of-core engine).
  class PagePin {
   public:
    PagePin() = default;
    PagePin(PageCache* cache, std::size_t frame, void* data)
        : cache_(cache), frame_(frame), data_(data) {}
    PagePin(PagePin&& o) noexcept
        : cache_(o.cache_), frame_(o.frame_), data_(o.data_) {
      o.cache_ = nullptr;
      o.data_ = nullptr;
    }
    PagePin& operator=(PagePin&& o) noexcept {
      if (this != &o) {  // self-move must not drop the pin
        release();
        cache_ = o.cache_;
        frame_ = o.frame_;
        data_ = o.data_;
        o.cache_ = nullptr;
        o.data_ = nullptr;
      }
      return *this;
    }
    PagePin(const PagePin&) = delete;
    PagePin& operator=(const PagePin&) = delete;
    ~PagePin() { release(); }

    void* data() const { return data_; }

    void release() {
      if (cache_ != nullptr) {
        cache_->unpin_frame(frame_);
        cache_ = nullptr;
        data_ = nullptr;
      }
    }

   private:
    PageCache* cache_ = nullptr;
    std::size_t frame_ = 0;
    void* data_ = nullptr;
  };

  // Pins and locks a page; thread-safe. When every frame is pinned the
  // call waits for an unpin (bounded), then throws std::runtime_error —
  // the cache must have headroom for the concurrent pins the algorithms
  // hold (4 tiles per in-flight GEP leaf).
  PagePin acquire(int file_id, std::uint64_t page, bool for_write);

  // Hints that `page` will be pinned soon. With the async worker running
  // the page is faulted in from a background thread so the eventual pin
  // hits; without it the hint is counted as dropped. Never blocks.
  void prefetch(int file_id, std::uint64_t page);

  // Starts/stops the background I/O worker (prefetch + write-behind).
  // Idempotent; the destructor stops it automatically.
  void enable_async_io();
  void disable_async_io();
  bool async_io_enabled() const;

  // True once the worker has hit kWorkerDegradeThreshold consecutive
  // I/O failures and fallen back to synchronous-only operation (every
  // later prefetch is counted dropped). enable_async_io() after a
  // disable_async_io() clears the flag.
  bool async_degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  // The file's fault injector, or nullptr when robust.faults was not
  // enabled at construction. Test hook for hard faults / at-rest
  // corruption; valid for the cache's lifetime.
  FaultInjector* fault_injector(int file_id) const;

  // Current depth of the prefetch queue (diagnostics).
  std::size_t prefetch_queue_depth() const;

  // Write back all dirty frames (counts as foreground I/O), then sync
  // every backing store (data before CRC sidecar — see BlockStore::sync)
  // so the flushed state survives a crash. The post-flush sync is what
  // makes a checkpoint's "all pages durable" claim true.
  void flush();

  // Syncs every backing store without flushing (pages already written
  // back become durable; dirty resident frames are NOT written).
  void sync_files();

  // --- checkpoint support (extmem/checkpoint.hpp) ---

  // Pages of `file_id` ever written through the cache (since_mark=false)
  // or written since the last clear_changed_mark (since_mark=true).
  // Sorted ascending. A page counts as changed the moment a write pin
  // touches its frame, so after flush() the union of changed pages is
  // exactly the file's non-zero content.
  std::vector<std::uint64_t> changed_pages(int file_id,
                                           bool since_mark) const;

  // Starts a new incremental epoch: subsequent changed_pages(id, true)
  // reports only pages written after this call.
  void clear_changed_mark(int file_id);

  // Copies the page's CURRENT content into buf (page_bytes() bytes):
  // from the resident frame when valid and not mid-I/O, else from the
  // backing store. Thread-safe; intended to run quiesced (no concurrent
  // writers to this page).
  void read_page_snapshot(int file_id, std::uint64_t page, void* buf);

  // Writes the page through the full store stack (so RobustStore
  // recomputes its checksum), refreshes any resident frame, and records
  // the page as changed (total set only). Resume-time page replay.
  void install_page(int file_id, std::uint64_t page, const void* buf);

  // Monotonic counter bumped whenever any frame is repurposed; lets
  // callers revalidate cached frame pointers cheaply.
  std::uint64_t eviction_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // Aggregates the per-thread stat cells.
  PageCacheStats stats() const;
  void reset_stats();
  std::uint64_t page_bytes() const { return page_bytes_; }
  std::uint64_t frames() const { return frame_count_; }

 private:
  static constexpr int kStatShards = 16;
  static constexpr std::size_t kNoFrame = ~std::size_t{0};
  static constexpr std::size_t kMaxPrefetchQueue = 1024;
  // Consecutive async-worker I/O failures before it degrades.
  static constexpr int kWorkerDegradeThreshold = 8;

  struct Frame {
    std::uint64_t key = 0;         // (file_id << 40) | page
    std::atomic<int> pins{0};      // eviction-locked while > 0
    bool valid = false;
    bool dirty = false;
    bool io_busy = false;      // fault-in or write-back in flight
    bool prefetched = false;   // filled by the worker, not yet pinned
  };

  // Per-thread stat cells; aggregated by stats(). Doubles use a CAS add
  // so sequential accumulation stays bit-identical to the old field.
  struct alignas(64) StatShard {
    std::atomic<std::uint64_t> pins{0}, hits{0}, page_ins{0}, page_outs{0},
        evictions{0};
    std::atomic<std::uint64_t> prefetch_issued{0}, prefetch_completed{0},
        prefetch_redundant{0}, prefetch_hits{0}, prefetch_dropped{0},
        writebacks_async{0};
    std::atomic<double> io_wait{0.0}, io_wait_async{0.0};
  };

  struct PrefetchRequest {
    int file_id;
    std::uint64_t page;
  };

  // Per-file changed-page sets for checkpointing (guarded by mu_).
  // `total` accumulates every page ever dirtied; `since` restarts at
  // each clear_changed_mark() and feeds incremental snapshots.
  struct ChangeSet {
    std::unordered_set<std::uint64_t> total;
    std::unordered_set<std::uint64_t> since;
  };

  void unpin_frame(std::size_t frame);
  static std::uint64_t make_key(int file_id, std::uint64_t page) {
    return (static_cast<std::uint64_t>(file_id) << 40) | page;
  }
  static int key_file(std::uint64_t key) { return static_cast<int>(key >> 40); }
  static std::uint64_t key_page(std::uint64_t key) {
    return key & (kMaxPages - 1);
  }

  // All four require mu_ held (resident_frame/pick_victim may drop and
  // reacquire it around disk transfers).
  void check_key(int file_id, std::uint64_t page) const;
  void note_write(int file_id, std::uint64_t page);  // mu_ held
  std::size_t resident_frame(std::unique_lock<std::mutex>& lock, int file_id,
                             std::uint64_t page, bool for_write,
                             bool is_prefetch);
  std::size_t pick_victim(std::unique_lock<std::mutex>& lock,
                          bool is_prefetch);
  std::size_t write_behind_candidate() const;

  void io_worker_loop();
  void note_worker_failure();  // mu_ held; may set degraded_
  void touch_lru(std::size_t frame);
  StatShard& stat_cell();
  static void add_double(std::atomic<double>& a, double d);

  std::uint64_t page_bytes_;
  std::uint64_t frame_count_;
  DiskModel model_;
  RobustOptions robust_;
  AlignedPtr<char> pool_;                  // frame_count_ x page_bytes_
  std::unique_ptr<Frame[]> frames_;

  mutable std::mutex mu_;
  std::condition_variable io_cv_;    // I/O completion + unpin wakeups
  std::condition_variable work_cv_;  // async worker's queue signal
  std::list<std::size_t> lru_;       // front = MRU, holds frame ids
  std::vector<std::list<std::size_t>::iterator> lru_pos_;
  std::unordered_map<std::uint64_t, std::size_t> table_;  // key -> frame
  // Per-file store stack (owned top-down): RobustStore ->
  // [FaultInjector ->] BlockFile. The view vectors alias into the stack.
  std::vector<std::unique_ptr<BlockStore>> files_;
  std::vector<RobustStore*> robust_views_;
  std::vector<FaultInjector*> injector_views_;
  std::vector<std::uint64_t> bounds_;  // per-file page-count bound
  std::vector<ChangeSet> changed_;     // per-file, for checkpoints
  std::deque<PrefetchRequest> prefetch_q_;
  int io_in_flight_ = 0;        // frames with io_busy set
  bool worker_running_ = false;
  bool worker_stop_ = false;
  int worker_failures_ = 0;     // consecutive; reset on success

  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> writeback_failures_{0};
  std::atomic<std::uint64_t> prefetch_errors_{0};
  std::atomic<int> evict_waiters_{0};
  std::atomic<std::uint64_t> epoch_{0};
  StatShard stat_shards_[kStatShards];
  std::thread io_worker_;
};

}  // namespace gep
