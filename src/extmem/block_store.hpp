// Page-addressed storage interface and the typed I/O errors the
// out-of-core layer raises.
//
// BlockFile (real pread/pwrite), FaultInjector (deterministic fault
// injection for tests) and RobustStore (CRC32C validation + bounded
// retry with backoff) all implement BlockStore, so the PageCache can
// stack them: PageCache -> RobustStore -> [FaultInjector ->] BlockFile.
// See docs/ROBUSTNESS.md for the failure model.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace gep {

// A failed page transfer. `transient()` marks conditions a retry may
// cure (interrupted/advisory errors, injected transient faults, torn
// writes); hard faults and exhausted retries surface as non-transient.
class IoError : public std::runtime_error {
 public:
  enum class Op { Read, Write };

  IoError(Op op, std::uint64_t page, int error_code, bool transient,
          const std::string& what)
      : std::runtime_error(what),
        op_(op),
        page_(page),
        error_code_(error_code),
        transient_(transient) {}

  Op op() const { return op_; }
  std::uint64_t page() const { return page_; }
  int error_code() const { return error_code_; }
  bool transient() const { return transient_; }

 private:
  Op op_;
  std::uint64_t page_;
  int error_code_;
  bool transient_;
};

// A page whose contents failed checksum validation even after re-reads:
// the data on the device is silently corrupt (bit rot, torn write that
// was never repaired). Never transient — retrying cannot help.
class CorruptPageError : public IoError {
 public:
  CorruptPageError(std::uint64_t page, std::uint32_t expected_crc,
                   std::uint32_t actual_crc, const std::string& what)
      : IoError(Op::Read, page, 0, /*transient=*/false, what),
        expected_crc_(expected_crc),
        actual_crc_(actual_crc) {}

  std::uint32_t expected_crc() const { return expected_crc_; }
  std::uint32_t actual_crc() const { return actual_crc_; }

 private:
  std::uint32_t expected_crc_;
  std::uint32_t actual_crc_;
};

// Fixed-size page storage. Implementations must be thread-safe for
// concurrent operations on DISTINCT pages (the page cache serializes
// per-page access through its io_busy frames).
class BlockStore {
 public:
  virtual ~BlockStore() = default;

  // Reads/writes exactly page_bytes() bytes. Throw IoError on failure;
  // a read of a never-written page fills `buf` with zeros.
  virtual void read_page(std::uint64_t page, void* buf) = 0;
  virtual void write_page(std::uint64_t page, const void* buf) = 0;

  // Makes every completed write durable (fdatasync for real files).
  // Layered stores must order the sync DATA-FIRST: RobustStore syncs the
  // inner store before persisting its CRC sidecar, so a crash between
  // the two strands a synced page behind a stale checksum — never a
  // stale page behind a fresh checksum (docs/ROBUSTNESS.md). Default is
  // a no-op for purely in-memory stores.
  virtual void sync() {}

  virtual std::uint64_t page_bytes() const = 0;
};

}  // namespace gep
