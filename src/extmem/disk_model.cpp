// disk_model is header-only; this TU exists to give the target a home
// for future non-inline additions and to keep one object per header.
#include "extmem/disk_model.hpp"
