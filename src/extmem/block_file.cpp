#include "extmem/block_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace gep {

BlockFile::BlockFile(std::uint64_t page_bytes, const std::string& dir)
    : page_bytes_(page_bytes) {
  std::string base = dir.empty() ? "/tmp" : dir;
  std::string tmpl = base + "/gep_ooc_XXXXXX";
  std::vector<char> path(tmpl.begin(), tmpl.end());
  path.push_back('\0');
  fd_ = ::mkstemp(path.data());
  if (fd_ < 0) {
    throw std::runtime_error(std::string("BlockFile: mkstemp failed: ") +
                             std::strerror(errno));
  }
  ::unlink(path.data());  // anonymous: vanishes when closed
}

BlockFile::~BlockFile() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockFile::read_page(std::uint64_t page, void* buf) {
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  const off_t off = static_cast<off_t>(page * page_bytes_);
  std::uint64_t got = 0;
  while (got < page_bytes_) {
    ssize_t r = ::pread(fd_, static_cast<char*>(buf) + got,
                        page_bytes_ - got, off + static_cast<off_t>(got));
    if (r < 0) throw std::runtime_error("BlockFile: pread failed");
    if (r == 0) {  // beyond EOF: sparse page reads as zeros
      std::memset(static_cast<char*>(buf) + got, 0, page_bytes_ - got);
      return;
    }
    got += static_cast<std::uint64_t>(r);
  }
}

void BlockFile::write_page(std::uint64_t page, const void* buf) {
  pages_written_.fetch_add(1, std::memory_order_relaxed);
  const off_t off = static_cast<off_t>(page * page_bytes_);
  std::uint64_t put = 0;
  while (put < page_bytes_) {
    ssize_t w = ::pwrite(fd_, static_cast<const char*>(buf) + put,
                         page_bytes_ - put, off + static_cast<off_t>(put));
    if (w <= 0) throw std::runtime_error("BlockFile: pwrite failed");
    put += static_cast<std::uint64_t>(w);
  }
}

}  // namespace gep
