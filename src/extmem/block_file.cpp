#include "extmem/block_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace gep {
namespace {

// EAGAIN and device-level EIO are worth a bounded retry one layer up
// (RobustStore); everything else (EBADF, EINVAL, EFBIG, ENOSPC...) is a
// programming or capacity error a retry cannot fix.
bool errno_is_transient(int err) { return err == EIO || err == EAGAIN; }

[[noreturn]] void throw_io_error(IoError::Op op, std::uint64_t page,
                                 int err) {
  std::string what = std::string("BlockFile: ") +
                     (op == IoError::Op::Read ? "pread" : "pwrite") +
                     " failed at page " + std::to_string(page) + ": " +
                     std::strerror(err);
  throw IoError(op, page, err, errno_is_transient(err), what);
}

}  // namespace

BlockFile::BlockFile(std::uint64_t page_bytes, const std::string& dir)
    : page_bytes_(page_bytes) {
  std::string base = dir.empty() ? "/tmp" : dir;
  std::string tmpl = base + "/gep_ooc_XXXXXX";
  std::vector<char> path(tmpl.begin(), tmpl.end());
  path.push_back('\0');
  fd_ = ::mkstemp(path.data());
  if (fd_ < 0) {
    throw std::runtime_error(std::string("BlockFile: mkstemp failed: ") +
                             std::strerror(errno));
  }
  ::unlink(path.data());  // anonymous: vanishes when closed
}

BlockFile::~BlockFile() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockFile::read_page(std::uint64_t page, void* buf) {
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  const off_t off = static_cast<off_t>(page * page_bytes_);
  std::uint64_t got = 0;
  while (got < page_bytes_) {
    ssize_t r = ::pread(fd_, static_cast<char*>(buf) + got,
                        page_bytes_ - got, off + static_cast<off_t>(got));
    if (r < 0) {
      if (errno == EINTR) continue;  // interrupted syscall: just retry
      throw_io_error(IoError::Op::Read, page, errno);
    }
    if (r == 0) {  // beyond EOF: sparse page reads as zeros
      std::memset(static_cast<char*>(buf) + got, 0, page_bytes_ - got);
      return;
    }
    got += static_cast<std::uint64_t>(r);
  }
}

void BlockFile::sync() {
  syncs_.fetch_add(1, std::memory_order_relaxed);
  while (::fdatasync(fd_) != 0) {
    if (errno == EINTR) continue;
    // A failed fdatasync means previously "written" pages may not be on
    // the device; a retry cannot recover what the kernel already
    // dropped, so this is never transient.
    throw IoError(IoError::Op::Write, 0, errno, /*transient=*/false,
                  std::string("BlockFile: fdatasync failed: ") +
                      std::strerror(errno));
  }
}

void BlockFile::write_page(std::uint64_t page, const void* buf) {
  pages_written_.fetch_add(1, std::memory_order_relaxed);
  const off_t off = static_cast<off_t>(page * page_bytes_);
  std::uint64_t put = 0;
  while (put < page_bytes_) {
    ssize_t w = ::pwrite(fd_, static_cast<const char*>(buf) + put,
                         page_bytes_ - put, off + static_cast<off_t>(put));
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_io_error(IoError::Op::Write, page, errno);
    }
    if (w == 0) throw_io_error(IoError::Op::Write, page, ENOSPC);
    put += static_cast<std::uint64_t>(w);
  }
}

}  // namespace gep
