// Disk latency model for out-of-core experiments.
//
// The paper's out-of-core runs (Fig. 7) measure I/O wait time on a
// Fujitsu MAP3735NC disk (10K RPM, 4.5 ms average seek, 64.1-107.86 MB/s
// transfer) accessed via STXXL with DIRECT-I/O. Spinning 10K-RPM disks
// are not available here, so we charge each page transfer an analytic
// cost from the same spec sheet: avg_seek + bytes / transfer_rate.
// The quantity Fig. 7 plots — how I/O wait scales with M and M/B for
// GEP vs I-GEP vs C-GEP — depends only on the number and size of page
// transfers, which this model preserves exactly.
#pragma once

#include <cstdint>

namespace gep {

struct DiskModel {
  double avg_seek_ms = 4.5;        // Fujitsu MAP3735NC average seek
  double transfer_mb_per_s = 86.0; // mid-range of 64.1-107.86 MB/s

  // Fraction of io_seconds() the PageCache actually sleeps per transfer
  // (0 = pure accounting, the Fig. 7 sweeps). Making a slice of the
  // latency real is how the prefetch benches demonstrate overlap: with
  // instant NVMe-backed I/O there is no latency to hide, so async
  // prefetch could never show a wall-clock win.
  double realize_fraction = 0.0;

  // Simulated wall time for one page transfer of `bytes`.
  double io_seconds(std::uint64_t bytes) const {
    return avg_seek_ms * 1e-3 +
           static_cast<double>(bytes) / (transfer_mb_per_s * 1e6);
  }
};

}  // namespace gep
