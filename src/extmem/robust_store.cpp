#include "extmem/robust_store.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "util/crc32c.hpp"

namespace gep {
namespace {

struct RobustObs {
  obs::Counter retries = obs::counter("robust.retries");
  obs::Counter crc_failures = obs::counter("robust.crc_failures");
  obs::Counter crc_recoveries = obs::counter("robust.crc_recoveries");
  obs::Counter hard_failures = obs::counter("robust.io_hard_failures");
};
RobustObs& robust_obs() {
  static RobustObs o;
  return o;
}

}  // namespace

RobustStore::RobustStore(std::unique_ptr<BlockStore> inner,
                         RetryPolicy retry, bool checksums,
                         std::uint64_t backoff_seed)
    : inner_(std::move(inner)),
      retry_(retry),
      checksums_(checksums),
      rng_(backoff_seed) {
  if (retry_.max_attempts < 1) retry_.max_attempts = 1;
}

RobustStore::~RobustStore() {
  if (sidecar_fd_ >= 0) ::close(sidecar_fd_);
}

void RobustStore::sync() {
  // Data first: if this throws, the sidecar keeps its previous (older)
  // snapshot and re-reads will re-validate the pages that did land.
  inner_->sync();
  if (!checksums_) return;

  // Serialize the CRC table: u64 entry count, (u64 page, u32 crc) pairs,
  // then a CRC32C of everything preceding it.
  std::vector<unsigned char> blob;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t count = crc_.size();
    blob.reserve(sizeof(count) + count * 12 + sizeof(std::uint32_t));
    auto put = [&blob](const void* p, std::size_t n) {
      const auto* b = static_cast<const unsigned char*>(p);
      blob.insert(blob.end(), b, b + n);
    };
    put(&count, sizeof(count));
    for (const auto& [page, sum] : crc_) {
      put(&page, sizeof(page));
      put(&sum, sizeof(sum));
    }
  }
  const std::uint32_t table_crc = crc32c(blob.data(), blob.size());
  blob.insert(blob.end(),
              reinterpret_cast<const unsigned char*>(&table_crc),
              reinterpret_cast<const unsigned char*>(&table_crc) +
                  sizeof(table_crc));

  if (sidecar_fd_ < 0) {
    char tmpl[] = "/tmp/gep_crc_sidecar_XXXXXX";
    sidecar_fd_ = ::mkstemp(tmpl);
    if (sidecar_fd_ < 0) {
      throw IoError(IoError::Op::Write, 0, errno, /*transient=*/false,
                    std::string("RobustStore: sidecar mkstemp failed: ") +
                        std::strerror(errno));
    }
    ::unlink(tmpl);  // anonymous, same lifetime as the data temp file
  }
  std::size_t put_off = 0;
  while (put_off < blob.size()) {
    ssize_t w = ::pwrite(sidecar_fd_, blob.data() + put_off,
                         blob.size() - put_off,
                         static_cast<off_t>(put_off));
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(IoError::Op::Write, 0, errno, /*transient=*/false,
                    std::string("RobustStore: sidecar pwrite failed: ") +
                        std::strerror(errno));
    }
    put_off += static_cast<std::size_t>(w);
  }
  while (::fdatasync(sidecar_fd_) != 0) {
    if (errno == EINTR) continue;
    throw IoError(IoError::Op::Write, 0, errno, /*transient=*/false,
                  std::string("RobustStore: sidecar fdatasync failed: ") +
                      std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sidecar_syncs;
}

void RobustStore::backoff(int attempt) {
  if (retry_.backoff_us <= 0) return;
  double us = retry_.backoff_us;
  for (int i = 1; i < attempt; ++i) us *= retry_.multiplier;
  if (retry_.jitter > 0) {
    double scale;
    {
      std::lock_guard<std::mutex> lock(mu_);
      scale = rng_.uniform(1.0 - retry_.jitter, 1.0 + retry_.jitter);
    }
    us *= scale;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
}

void RobustStore::read_page(std::uint64_t page, void* buf) {
  std::optional<std::uint32_t> want;
  if (checksums_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = crc_.find(page);
    if (it != crc_.end()) want = it->second;
  }
  bool had_mismatch = false;
  std::uint32_t got = 0;
  for (int attempt = 1;; ++attempt) {
    try {
      inner_->read_page(page, buf);
      if (!want.has_value()) return;  // never written: nothing to check
      got = crc32c(buf, inner_->page_bytes());
      if (got == *want) {
        if (had_mismatch) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.crc_recoveries;
          robust_obs().crc_recoveries.inc();
          obs::flight::record(obs::flightfmt::kCrcRecover, page);
        }
        return;
      }
      // Mismatch: count it and treat like a transient fault — a re-read
      // cures corruption that happened in flight (bus/DMA/bit flip on
      // the wire); corruption at rest keeps failing and falls through.
      had_mismatch = true;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.crc_failures;
        robust_obs().crc_failures.inc();
      }
      if (attempt >= retry_.max_attempts) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hard_failures;
        robust_obs().hard_failures.inc();
        obs::flight::record(obs::flightfmt::kIoHardFail, page);
        throw CorruptPageError(
            page, *want, got,
            "RobustStore: page " + std::to_string(page) +
                " failed CRC32C validation after " +
                std::to_string(attempt) + " read(s): expected " +
                std::to_string(*want) + ", got " + std::to_string(got));
      }
    } catch (const CorruptPageError&) {
      throw;
    } catch (const IoError& e) {
      if (!e.transient() || attempt >= retry_.max_attempts) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hard_failures;
        robust_obs().hard_failures.inc();
        obs::flight::record(obs::flightfmt::kIoHardFail, page);
        throw;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
      robust_obs().retries.inc();
      obs::flight::record(obs::flightfmt::kIoRetry, page);
    }
    backoff(attempt);
  }
}

void RobustStore::write_page(std::uint64_t page, const void* buf) {
  const std::uint32_t sum =
      checksums_ ? crc32c(buf, inner_->page_bytes()) : 0;
  for (int attempt = 1;; ++attempt) {
    try {
      inner_->write_page(page, buf);
      if (checksums_) {
        // Stored only after the full write succeeded: a torn write that
        // is never repaired leaves the OLD checksum in place, so the
        // next read flags the mixed-content page as corrupt.
        std::lock_guard<std::mutex> lock(mu_);
        crc_[page] = sum;
      }
      return;
    } catch (const IoError& e) {
      if (!e.transient() || attempt >= retry_.max_attempts) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hard_failures;
        robust_obs().hard_failures.inc();
        obs::flight::record(obs::flightfmt::kIoHardFail, page);
        throw;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
      robust_obs().retries.inc();
      obs::flight::record(obs::flightfmt::kIoRetry, page);
    }
    backoff(attempt);
  }
}

RobustStoreStats RobustStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RobustStore::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = {};
}

}  // namespace gep
