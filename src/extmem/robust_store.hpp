// Hardened BlockStore wrapper: per-page CRC32C checksums and bounded
// retry with exponential backoff + jitter.
//
// Checksums live in an in-memory sidecar map (page -> CRC32C of the
// last successful write). The backing files are unlinked temporaries
// that never outlive the process, so the sidecar's lifetime matches the
// data's; a persistent store would serialize the same map as a page
// trailer (see docs/ROBUSTNESS.md). Every read of a previously written
// page is validated; a mismatch triggers a re-read (curing in-flight
// corruption) and, if the mismatch persists, a CorruptPageError — the
// at-rest corruption case retrying cannot fix. Pages never written have
// no checksum and are accepted as-is (they read back as zeros).
//
// Transient IoErrors from the inner store are retried up to
// RetryPolicy::max_attempts with exponentially growing, jittered
// backoff; non-transient errors and exhausted budgets propagate.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "extmem/block_store.hpp"
#include "util/prng.hpp"

namespace gep {

struct RetryPolicy {
  int max_attempts = 4;      // total tries per operation (1 = no retry)
  double backoff_us = 50.0;  // delay before the first retry
  double multiplier = 2.0;   // growth per subsequent retry
  double jitter = 0.5;       // each delay scaled by U[1 - j, 1 + j]
};

struct RobustStoreStats {
  std::uint64_t retries = 0;         // extra attempts after a failure
  std::uint64_t crc_failures = 0;    // checksum mismatches observed
  std::uint64_t crc_recoveries = 0;  // mismatches cured by a re-read
  std::uint64_t hard_failures = 0;   // ops that exhausted the budget
  std::uint64_t sidecar_syncs = 0;   // sidecar snapshots made durable
};

class RobustStore final : public BlockStore {
 public:
  RobustStore(std::unique_ptr<BlockStore> inner, RetryPolicy retry,
              bool checksums, std::uint64_t backoff_seed = 0x9E3779B9ULL);

  ~RobustStore() override;

  void read_page(std::uint64_t page, void* buf) override;
  void write_page(std::uint64_t page, const void* buf) override;
  std::uint64_t page_bytes() const override { return inner_->page_bytes(); }

  // Durability point, ordered data-first: (1) sync the inner store so
  // every written page is on the device, then (2) serialize the CRC
  // sidecar map (page count + (page, crc) pairs + table CRC32C) to its
  // own unlinked temp file and fdatasync it. A crash between the two
  // leaves valid pages behind a stale sidecar (re-validated as the pages
  // are re-read), never the reverse — checkpoint durability depends on
  // this ordering (docs/ROBUSTNESS.md). If the inner sync throws, the
  // sidecar is NOT persisted.
  void sync() override;

  RobustStoreStats stats() const;
  void reset_stats();

 private:
  void backoff(int attempt);  // sleeps; attempt is 1-based

  std::unique_ptr<BlockStore> inner_;
  RetryPolicy retry_;
  bool checksums_;
  int sidecar_fd_ = -1;  // lazily created on the first sync()

  mutable std::mutex mu_;  // sidecar map + stats + backoff rng
  std::unordered_map<std::uint64_t, std::uint32_t> crc_;
  SplitMix64 rng_;
  RobustStoreStats stats_;
};

}  // namespace gep
