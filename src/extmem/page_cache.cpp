#include "extmem/page_cache.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "obs/registry.hpp"

namespace gep {
namespace {

// Process-wide mirrors: every PageCache instance publishes into the same
// registry counters (the bench reporter snapshots them by name).
struct PageCacheObs {
  obs::Counter hits = obs::counter("extmem.page_cache.hits");
  obs::Counter misses = obs::counter("extmem.page_cache.misses");
  obs::Counter evictions = obs::counter("extmem.page_cache.evictions");
  obs::Counter writebacks = obs::counter("extmem.page_cache.writebacks");
};
PageCacheObs& page_cache_obs() {
  static PageCacheObs o;
  return o;
}

}  // namespace

PageCache::PageCache(std::uint64_t capacity_bytes, std::uint64_t page_bytes,
                     DiskModel model)
    : page_bytes_(page_bytes),
      frame_count_(capacity_bytes / page_bytes),
      model_(model) {
  assert(page_bytes_ > 0);
  if (frame_count_ == 0) frame_count_ = 1;
  pool_ = make_aligned<char>(frame_count_ * page_bytes_);
  frames_.assign(frame_count_, Frame{});
  lru_pos_.resize(frame_count_);
  for (std::size_t f = 0; f < frame_count_; ++f) {
    lru_.push_back(f);  // cold frames at the back
    lru_pos_[f] = std::prev(lru_.end());
  }
  table_.reserve(frame_count_ * 2);
}

PageCache::~PageCache() { flush(); }

int PageCache::register_file(std::uint64_t pages) {
  (void)pages;
  files_.push_back(std::make_unique<BlockFile>(page_bytes_));
  return static_cast<int>(files_.size()) - 1;
}

void PageCache::evict(std::size_t frame) {
  Frame& fr = frames_[frame];
  if (!fr.valid) return;
  ++stats_.evictions;
  page_cache_obs().evictions.inc();
  if (fr.dirty) {
    const int file_id = static_cast<int>(fr.key >> 40);
    const std::uint64_t page = fr.key & ((1ULL << 40) - 1);
    files_[static_cast<std::size_t>(file_id)]->write_page(
        page, pool_.get() + frame * page_bytes_);
    ++stats_.page_outs;
    page_cache_obs().writebacks.inc();
    stats_.io_wait_seconds += model_.io_seconds(page_bytes_);
  }
  table_.erase(fr.key);
  fr.valid = false;
  fr.dirty = false;
  ++epoch_;
}

void* PageCache::pin(int file_id, std::uint64_t page, bool for_write) {
  ++stats_.pins;
  const std::uint64_t key = make_key(file_id, page);
  auto it = table_.find(key);
  if (it != table_.end()) {
    ++stats_.hits;
    page_cache_obs().hits.inc();
    const std::size_t frame = it->second;
    lru_.splice(lru_.begin(), lru_, lru_pos_[frame]);  // bump to MRU
    if (for_write) frames_[frame].dirty = true;
    return pool_.get() + frame * page_bytes_;
  }
  // Fault: repurpose the least-recently-used UNLOCKED frame.
  std::size_t frame = frame_count_;  // sentinel
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    if (frames_[*rit].pins == 0) {
      frame = *rit;
      break;
    }
  }
  if (frame == frame_count_) {
    throw std::runtime_error("PageCache: every frame is pinned");
  }
  evict(frame);
  page_cache_obs().misses.inc();
  files_[static_cast<std::size_t>(file_id)]->read_page(
      page, pool_.get() + frame * page_bytes_);
  ++stats_.page_ins;
  stats_.io_wait_seconds += model_.io_seconds(page_bytes_);
  frames_[frame] = Frame{key, 0, true, for_write};
  table_[key] = frame;
  lru_.splice(lru_.begin(), lru_, lru_pos_[frame]);
  return pool_.get() + frame * page_bytes_;
}

PageCache::PagePin PageCache::acquire(int file_id, std::uint64_t page,
                                      bool for_write) {
  void* data = pin(file_id, page, for_write);
  const std::size_t frame =
      static_cast<std::size_t>(static_cast<char*>(data) - pool_.get()) /
      page_bytes_;
  frames_[frame].pins += 1;
  return PagePin(this, frame, data);
}

void PageCache::unpin_frame(std::size_t frame) {
  assert(frames_[frame].pins > 0);
  frames_[frame].pins -= 1;
}

void PageCache::flush() {
  for (std::size_t f = 0; f < frame_count_; ++f) {
    Frame& fr = frames_[f];
    if (fr.valid && fr.dirty) {
      const int file_id = static_cast<int>(fr.key >> 40);
      const std::uint64_t page = fr.key & ((1ULL << 40) - 1);
      files_[static_cast<std::size_t>(file_id)]->write_page(
          page, pool_.get() + f * page_bytes_);
      ++stats_.page_outs;
      page_cache_obs().writebacks.inc();
      stats_.io_wait_seconds += model_.io_seconds(page_bytes_);
      fr.dirty = false;
    }
  }
}

}  // namespace gep
