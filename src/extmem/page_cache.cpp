#include "extmem/page_cache.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/watchdog.hpp"

namespace gep {
namespace {

// Flight-recorder shorthand for page-traffic events ((file, page) packed
// into the payload). Compiles away at GEP_OBS=0.
inline void rec_page(obs::flightfmt::Ev e, int file, std::uint64_t page) {
  obs::flight::record(e, obs::flightfmt::pack_page(file, page));
}

// Process-wide mirrors: every PageCache instance publishes into the same
// registry counters (the bench reporter snapshots them by name).
struct PageCacheObs {
  obs::Counter hits = obs::counter("extmem.page_cache.hits");
  obs::Counter misses = obs::counter("extmem.page_cache.misses");
  obs::Counter evictions = obs::counter("extmem.page_cache.evictions");
  obs::Counter writebacks = obs::counter("extmem.page_cache.writebacks");
  obs::Counter writebacks_async =
      obs::counter("extmem.page_cache.writebacks_async");
  obs::Counter prefetch_issued = obs::counter("extmem.prefetch.issued");
  obs::Counter prefetch_completed = obs::counter("extmem.prefetch.completed");
  obs::Counter prefetch_hits = obs::counter("extmem.prefetch.hits");
  obs::Counter prefetch_redundant = obs::counter("extmem.prefetch.redundant");
  obs::Counter prefetch_dropped = obs::counter("extmem.prefetch.dropped");
  obs::Gauge queue_depth = obs::gauge("extmem.prefetch.queue_depth");
  // 1.0 while the async worker is degraded: the stat server's /healthz
  // reads this (it cannot reach PageCache instances from gep_obs).
  obs::Gauge degraded = obs::gauge("extmem.async.degraded");
  // Resident (valid-mapping) fraction of the cache's frames.
  obs::Gauge occupancy = obs::gauge("extmem.cache.occupancy");
  obs::Counter writeback_failures =
      obs::counter("robust.writeback_failures");
  obs::Counter prefetch_errors = obs::counter("robust.prefetch_errors");
  obs::Counter async_degraded = obs::counter("robust.async_degraded");
};
PageCacheObs& page_cache_obs() {
  static PageCacheObs o;
  return o;
}

// How long acquire() waits for another thread to unpin a frame before
// concluding the cache is over-committed and throwing.
constexpr auto kAllPinnedDeadline = std::chrono::milliseconds(250);

// Sleeps off the realized slice of a transfer's modeled latency. Must be
// called WITHOUT mu_ held — this is the latency prefetch overlaps.
void realize_latency(const DiskModel& model, double sim_seconds) {
  if (model.realize_fraction <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      sim_seconds * model.realize_fraction));
}

}  // namespace

PageCache::PageCache(std::uint64_t capacity_bytes, std::uint64_t page_bytes,
                     DiskModel model, RobustOptions robust)
    : page_bytes_(page_bytes),
      frame_count_(capacity_bytes / page_bytes),
      model_(model),
      robust_(robust) {
  assert(page_bytes_ > 0);
  if (frame_count_ == 0) frame_count_ = 1;
  pool_ = make_aligned<char>(frame_count_ * page_bytes_);
  frames_ = std::make_unique<Frame[]>(frame_count_);
  lru_pos_.resize(frame_count_);
  for (std::size_t f = 0; f < frame_count_; ++f) {
    lru_.push_back(f);  // cold frames at the back
    lru_pos_[f] = std::prev(lru_.end());
  }
  table_.reserve(frame_count_ * 2);
}

PageCache::~PageCache() {
  disable_async_io();
  try {
    flush();
  } catch (...) {
    // Destructors must not throw. The failure was already counted
    // (writeback_failures_); data in still-dirty frames is lost with
    // the anonymous backing file, exactly as on process death.
  }
}

int PageCache::register_file(std::uint64_t pages) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = static_cast<int>(files_.size());
  std::unique_ptr<BlockStore> store =
      std::make_unique<BlockFile>(page_bytes_);
  FaultInjector* inj = nullptr;
  if (robust_.faults.enabled()) {
    FaultConfig cfg = robust_.faults;
    // Distinct per-file streams, deterministic in registration order.
    cfg.seed = cfg.seed * 0x9E3779B97F4A7C15ULL + static_cast<unsigned>(id);
    auto fi = std::make_unique<FaultInjector>(std::move(store), cfg);
    inj = fi.get();
    store = std::move(fi);
  }
  auto rs = std::make_unique<RobustStore>(
      std::move(store), robust_.retry, robust_.checksums,
      /*backoff_seed=*/0x9E3779B9ULL + static_cast<unsigned>(id));
  robust_views_.push_back(rs.get());
  injector_views_.push_back(inj);
  files_.push_back(std::move(rs));
  bounds_.push_back(pages < kMaxPages ? pages : kMaxPages);
  changed_.emplace_back();
  return id;
}

void PageCache::note_write(int file_id, std::uint64_t page) {
  ChangeSet& cs = changed_[static_cast<std::size_t>(file_id)];
  cs.total.insert(page);
  cs.since.insert(page);
}

FaultInjector* PageCache::fault_injector(int file_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_id < 0 ||
      static_cast<std::size_t>(file_id) >= injector_views_.size()) {
    return nullptr;
  }
  return injector_views_[static_cast<std::size_t>(file_id)];
}

void PageCache::check_key(int file_id, std::uint64_t page) const {
  if (file_id < 0 || static_cast<std::size_t>(file_id) >= files_.size()) {
    throw std::out_of_range("PageCache: unregistered file id");
  }
  if (page >= bounds_[static_cast<std::size_t>(file_id)]) {
    throw std::out_of_range("PageCache: page beyond the file's bound");
  }
}

PageCache::StatShard& PageCache::stat_cell() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard = next.fetch_add(1) % kStatShards;
  return stat_shards_[shard];
}

void PageCache::add_double(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void PageCache::touch_lru(std::size_t frame) {
  lru_.splice(lru_.begin(), lru_, lru_pos_[frame]);
}

std::size_t PageCache::write_behind_candidate() const {
  // Only the LRU tail quarter: those frames are next in line for
  // eviction, so a background flush there replaces a foreground
  // write-back one-for-one instead of duplicating writes of hot pages.
  std::size_t budget = frame_count_ / 4 + 1;
  for (auto rit = lru_.rbegin(); rit != lru_.rend() && budget > 0; ++rit) {
    const Frame& fr = frames_[*rit];
    if (!fr.valid) continue;  // cold frames don't count against the budget
    --budget;
    if (fr.dirty && !fr.io_busy &&
        fr.pins.load(std::memory_order_acquire) == 0) {
      return *rit;
    }
  }
  return kNoFrame;
}

std::size_t PageCache::pick_victim(std::unique_lock<std::mutex>& lock,
                                   bool is_prefetch) {
  const auto deadline = std::chrono::steady_clock::now() + kAllPinnedDeadline;
  for (;;) {
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      Frame& fr = frames_[*rit];
      if (!fr.io_busy && fr.pins.load(std::memory_order_acquire) == 0) {
        return *rit;
      }
    }
    // No evictable frame right now. The worker never blocks (a full
    // cache just drops the hint); foreground faults wait for an I/O
    // completion or an unpin, then rescan.
    if (is_prefetch) return kNoFrame;
    if (io_in_flight_ > 0) {
      io_cv_.wait(lock);
      continue;
    }
    evict_waiters_.fetch_add(1, std::memory_order_relaxed);
    const auto st = io_cv_.wait_for(lock, std::chrono::milliseconds(10));
    evict_waiters_.fetch_sub(1, std::memory_order_relaxed);
    (void)st;
    if (std::chrono::steady_clock::now() >= deadline && io_in_flight_ == 0) {
      throw std::runtime_error("PageCache: every frame is pinned");
    }
  }
}

// Returns the frame holding (file_id, page) with its contents resident,
// faulting it in if needed. mu_ is held on entry and exit but released
// around the disk transfers (the frame is marked io_busy meanwhile).
// Prefetch calls never block on concurrent I/O and may return kNoFrame.
std::size_t PageCache::resident_frame(std::unique_lock<std::mutex>& lock,
                                      int file_id, std::uint64_t page,
                                      bool for_write, bool is_prefetch) {
  check_key(file_id, page);
  StatShard& st = stat_cell();
  if (!is_prefetch) st.pins.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t key = make_key(file_id, page);
  for (;;) {
    auto it = table_.find(key);
    if (it == table_.end()) break;
    Frame& fr = frames_[it->second];
    if (fr.io_busy) {
      if (is_prefetch) {
        // Already being faulted (or its frame is mid-writeback): the
        // hint has done its job or cannot help; don't stall the worker.
        st.prefetch_redundant.fetch_add(1, std::memory_order_relaxed);
        page_cache_obs().prefetch_redundant.inc();
        return kNoFrame;
      }
      io_cv_.wait(lock);
      continue;  // re-lookup: the mapping may have changed
    }
    // Resident.
    if (is_prefetch) {
      st.prefetch_redundant.fetch_add(1, std::memory_order_relaxed);
      page_cache_obs().prefetch_redundant.inc();
      touch_lru(it->second);  // the hint says it's about to be used
      return it->second;
    }
    st.hits.fetch_add(1, std::memory_order_relaxed);
    page_cache_obs().hits.inc();
    if (fr.prefetched) {
      fr.prefetched = false;
      st.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      page_cache_obs().prefetch_hits.inc();
    }
    touch_lru(it->second);
    if (for_write) {
      fr.dirty = true;
      note_write(file_id, page);
    }
    return it->second;
  }
  // Fault: repurpose the least-recently-used unlocked frame.
  const std::size_t frame = pick_victim(lock, is_prefetch);
  if (frame == kNoFrame) {
    st.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
    page_cache_obs().prefetch_dropped.inc();
    return kNoFrame;
  }
  if (!is_prefetch) page_cache_obs().misses.inc();
  Frame& fr = frames_[frame];
  const bool old_valid = fr.valid;
  const bool old_dirty = fr.dirty;
  const std::uint64_t old_key = fr.key;
  fr.io_busy = true;
  ++io_in_flight_;
  // Publish the new mapping before dropping the lock so a concurrent
  // request for this page waits on io_busy instead of double-faulting.
  // The old mapping stays until the write-back below completes: anyone
  // wanting the old page waits, then re-faults against the fresh file
  // contents.
  table_[key] = frame;
  BlockStore* old_file =
      old_valid && old_dirty
          ? files_[static_cast<std::size_t>(key_file(old_key))].get()
          : nullptr;
  BlockStore* new_file = files_[static_cast<std::size_t>(file_id)].get();
  char* buf = pool_.get() + frame * page_bytes_;
  lock.unlock();
  double wait = 0;
  if (old_file != nullptr) {
    try {
      old_file->write_page(key_page(old_key), buf);
    } catch (...) {
      // Write-back of the victim failed: the frame still holds the old
      // page's bytes untouched, so keep the old mapping, keep it dirty,
      // and only withdraw the new mapping. Nothing is lost; the next
      // eviction attempt retries the write-back.
      lock.lock();
      table_.erase(key);
      fr.io_busy = false;
      --io_in_flight_;
      writeback_failures_.fetch_add(1, std::memory_order_relaxed);
      page_cache_obs().writeback_failures.inc();
      io_cv_.notify_all();
      throw;
    }
    st.page_outs.fetch_add(1, std::memory_order_relaxed);
    page_cache_obs().writebacks.inc();
    rec_page(obs::flightfmt::kPageOut, key_file(old_key), key_page(old_key));
    wait += model_.io_seconds(page_bytes_);
  }
  try {
    new_file->read_page(page, buf);
  } catch (...) {
    // Fault-in failed: the buffer may hold a torn read, so the frame is
    // unusable for either page. The old page (if any) was written back
    // above, so dropping both mappings loses nothing; the frame goes to
    // the LRU tail as the next victim.
    add_double(st.io_wait, wait);
    if (is_prefetch && wait > 0) add_double(st.io_wait_async, wait);
    lock.lock();
    table_.erase(key);
    if (old_valid) {
      table_.erase(old_key);
      st.evictions.fetch_add(1, std::memory_order_relaxed);
      page_cache_obs().evictions.inc();
      rec_page(obs::flightfmt::kEvict, key_file(old_key), key_page(old_key));
    }
    epoch_.fetch_add(1, std::memory_order_release);
    fr.valid = false;
    fr.dirty = false;
    fr.prefetched = false;
    fr.io_busy = false;
    --io_in_flight_;
    lru_.splice(lru_.end(), lru_, lru_pos_[frame]);
    page_cache_obs().occupancy.set(static_cast<double>(table_.size()) /
                                   static_cast<double>(frame_count_));
    io_cv_.notify_all();
    throw;
  }
  st.page_ins.fetch_add(1, std::memory_order_relaxed);
  rec_page(obs::flightfmt::kPageIn, file_id, page);
  wait += model_.io_seconds(page_bytes_);
  add_double(st.io_wait, wait);
  if (is_prefetch) add_double(st.io_wait_async, wait);
  realize_latency(model_, wait);
  lock.lock();
  if (old_valid) {
    table_.erase(old_key);
    st.evictions.fetch_add(1, std::memory_order_relaxed);
    page_cache_obs().evictions.inc();
    rec_page(obs::flightfmt::kEvict, key_file(old_key), key_page(old_key));
    epoch_.fetch_add(1, std::memory_order_release);
  }
  fr.key = key;
  fr.valid = true;
  fr.dirty = !is_prefetch && for_write;
  if (fr.dirty) note_write(file_id, page);
  fr.prefetched = is_prefetch;
  fr.io_busy = false;
  --io_in_flight_;
  touch_lru(frame);
  page_cache_obs().occupancy.set(static_cast<double>(table_.size()) /
                                 static_cast<double>(frame_count_));
  if (is_prefetch) {
    st.prefetch_completed.fetch_add(1, std::memory_order_relaxed);
    page_cache_obs().prefetch_completed.inc();
    rec_page(obs::flightfmt::kPrefetchDone, file_id, page);
  }
  io_cv_.notify_all();
  return frame;
}

void* PageCache::pin(int file_id, std::uint64_t page, bool for_write) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t frame =
      resident_frame(lock, file_id, page, for_write, /*is_prefetch=*/false);
  return pool_.get() + frame * page_bytes_;
}

PageCache::PagePin PageCache::acquire(int file_id, std::uint64_t page,
                                      bool for_write) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t frame =
      resident_frame(lock, file_id, page, for_write, /*is_prefetch=*/false);
  frames_[frame].pins.fetch_add(1, std::memory_order_acq_rel);
  return PagePin(this, frame, pool_.get() + frame * page_bytes_);
}

void PageCache::unpin_frame(std::size_t frame) {
  const int prev = frames_[frame].pins.fetch_sub(1, std::memory_order_acq_rel);
  assert(prev > 0);
  (void)prev;
  if (evict_waiters_.load(std::memory_order_relaxed) > 0) io_cv_.notify_all();
}

void PageCache::prefetch(int file_id, std::uint64_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  check_key(file_id, page);
  StatShard& st = stat_cell();
  st.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
  page_cache_obs().prefetch_issued.inc();
  if (!worker_running_ || degraded_.load(std::memory_order_acquire)) {
    st.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
    page_cache_obs().prefetch_dropped.inc();
    return;
  }
  if (table_.count(make_key(file_id, page)) != 0) {
    st.prefetch_redundant.fetch_add(1, std::memory_order_relaxed);
    page_cache_obs().prefetch_redundant.inc();
    return;
  }
  if (prefetch_q_.size() >= kMaxPrefetchQueue) {
    st.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
    page_cache_obs().prefetch_dropped.inc();
    return;
  }
  prefetch_q_.push_back({file_id, page});
  page_cache_obs().queue_depth.set(static_cast<double>(prefetch_q_.size()));
  rec_page(obs::flightfmt::kPrefetchIssue, file_id, page);
  work_cv_.notify_one();
}

void PageCache::note_worker_failure() {
  ++worker_failures_;
  if (worker_failures_ >= kWorkerDegradeThreshold &&
      !degraded_.load(std::memory_order_relaxed)) {
    degraded_.store(true, std::memory_order_release);
    page_cache_obs().async_degraded.inc();
    page_cache_obs().degraded.set(1.0);
  }
}

void PageCache::io_worker_loop() {
  obs::flight::set_thread_name("pc-asyncio");
  const int wd = obs::Watchdog::register_source("pc-asyncio");
  std::unique_lock<std::mutex> lock(mu_);
  while (!worker_stop_) {
    obs::Watchdog::beat(wd);
    if (!prefetch_q_.empty()) {
      const PrefetchRequest req = prefetch_q_.front();
      prefetch_q_.pop_front();
      page_cache_obs().queue_depth.set(
          static_cast<double>(prefetch_q_.size()));
      if (degraded_.load(std::memory_order_acquire)) {
        // Degraded: drain the queue without touching the disk; the
        // foreground path does its own (retried, checksummed) I/O.
        StatShard& st = stat_cell();
        st.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
        page_cache_obs().prefetch_dropped.inc();
        continue;
      }
      try {
        resident_frame(lock, req.file_id, req.page, /*for_write=*/false,
                       /*is_prefetch=*/true);
        worker_failures_ = 0;
      } catch (...) {
        // A prefetch is only a hint: absorb the error (the foreground
        // pin will retry and surface it if it persists). resident_frame
        // already restored the frame invariants and reacquired mu_.
        prefetch_errors_.fetch_add(1, std::memory_order_relaxed);
        page_cache_obs().prefetch_errors.inc();
        StatShard& st = stat_cell();
        st.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
        page_cache_obs().prefetch_dropped.inc();
        note_worker_failure();
      }
      continue;
    }
    // Idle: flush one about-to-be-evicted dirty frame so the next fault
    // finds it clean (write-back overlapped with compute).
    const std::size_t f = write_behind_candidate();
    if (f != kNoFrame) {
      Frame& fr = frames_[f];
      fr.io_busy = true;
      ++io_in_flight_;
      const int fid = key_file(fr.key);
      BlockStore* file = files_[static_cast<std::size_t>(fid)].get();
      const std::uint64_t page = key_page(fr.key);
      char* buf = pool_.get() + f * page_bytes_;
      lock.unlock();
      bool wrote = true;
      try {
        file->write_page(page, buf);
      } catch (...) {
        wrote = false;
      }
      if (!wrote) {
        // The frame stays dirty; a later eviction or flush() retries the
        // write-back on the foreground path and reports it there.
        lock.lock();
        fr.io_busy = false;
        --io_in_flight_;
        writeback_failures_.fetch_add(1, std::memory_order_relaxed);
        page_cache_obs().writeback_failures.inc();
        note_worker_failure();
        io_cv_.notify_all();
        continue;
      }
      const double wait = model_.io_seconds(page_bytes_);
      StatShard& st = stat_cell();
      st.page_outs.fetch_add(1, std::memory_order_relaxed);
      rec_page(obs::flightfmt::kPageOut, fid, page);
      st.writebacks_async.fetch_add(1, std::memory_order_relaxed);
      page_cache_obs().writebacks.inc();
      page_cache_obs().writebacks_async.inc();
      add_double(st.io_wait, wait);
      add_double(st.io_wait_async, wait);
      realize_latency(model_, wait);
      lock.lock();
      worker_failures_ = 0;
      fr.dirty = false;
      fr.io_busy = false;
      --io_in_flight_;
      io_cv_.notify_all();
      continue;
    }
    obs::Watchdog::set_idle(wd);
    work_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  obs::Watchdog::unregister_source(wd);
}

void PageCache::enable_async_io() {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_running_) return;
  worker_running_ = true;
  worker_stop_ = false;
  worker_failures_ = 0;
  degraded_.store(false, std::memory_order_release);
  page_cache_obs().degraded.set(0.0);
  io_worker_ = std::thread([this] { io_worker_loop(); });
}

void PageCache::disable_async_io() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!worker_running_) return;
    worker_stop_ = true;
  }
  work_cv_.notify_all();
  io_worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  worker_running_ = false;
  prefetch_q_.clear();
  page_cache_obs().queue_depth.set(0.0);
}

bool PageCache::async_io_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return worker_running_;
}

std::size_t PageCache::prefetch_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prefetch_q_.size();
}

void PageCache::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  StatShard& st = stat_cell();
  for (std::size_t f = 0; f < frame_count_; ++f) {
    while (frames_[f].io_busy) io_cv_.wait(lock);
    Frame& fr = frames_[f];
    if (fr.valid && fr.dirty) {
      try {
        files_[static_cast<std::size_t>(key_file(fr.key))]->write_page(
            key_page(fr.key), pool_.get() + f * page_bytes_);
      } catch (...) {
        // The frame stays dirty (data preserved); the caller decides
        // whether to retry flush() or abandon the file.
        writeback_failures_.fetch_add(1, std::memory_order_relaxed);
        page_cache_obs().writeback_failures.inc();
        throw;
      }
      st.page_outs.fetch_add(1, std::memory_order_relaxed);
      page_cache_obs().writebacks.inc();
      rec_page(obs::flightfmt::kPageOut, key_file(fr.key), key_page(fr.key));
      add_double(st.io_wait, model_.io_seconds(page_bytes_));
      fr.dirty = false;
    }
  }
  // Everything written back; now make it durable. Waiting out any
  // worker-initiated I/O first keeps the sync ordered after every write
  // the stores have been handed.
  while (io_in_flight_ > 0) io_cv_.wait(lock);
  for (auto& f : files_) f->sync();
}

void PageCache::sync_files() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& f : files_) f->sync();
}

std::vector<std::uint64_t> PageCache::changed_pages(int file_id,
                                                    bool since_mark) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_id < 0 ||
      static_cast<std::size_t>(file_id) >= changed_.size()) {
    throw std::out_of_range("PageCache: unregistered file id");
  }
  const ChangeSet& cs = changed_[static_cast<std::size_t>(file_id)];
  const auto& src = since_mark ? cs.since : cs.total;
  std::vector<std::uint64_t> out(src.begin(), src.end());
  std::sort(out.begin(), out.end());
  return out;
}

void PageCache::clear_changed_mark(int file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_id < 0 ||
      static_cast<std::size_t>(file_id) >= changed_.size()) {
    throw std::out_of_range("PageCache: unregistered file id");
  }
  changed_[static_cast<std::size_t>(file_id)].since.clear();
}

void PageCache::read_page_snapshot(int file_id, std::uint64_t page,
                                   void* buf) {
  std::unique_lock<std::mutex> lock(mu_);
  check_key(file_id, page);
  const std::uint64_t key = make_key(file_id, page);
  for (;;) {
    auto it = table_.find(key);
    if (it == table_.end()) break;
    Frame& fr = frames_[it->second];
    if (fr.io_busy) {
      io_cv_.wait(lock);
      continue;  // re-lookup: the mapping may have changed
    }
    if (fr.valid) {
      std::memcpy(buf, pool_.get() + it->second * page_bytes_, page_bytes_);
      return;
    }
    break;
  }
  // Not resident: read the store directly. mu_ stays held — checkpoints
  // run quiesced and are rare, so blocking the cache briefly is cheaper
  // than an io_busy dance for a page nobody is racing us for.
  files_[static_cast<std::size_t>(file_id)]->read_page(page, buf);
}

void PageCache::install_page(int file_id, std::uint64_t page,
                             const void* buf) {
  std::unique_lock<std::mutex> lock(mu_);
  check_key(file_id, page);
  // Through the full stack: RobustStore recomputes the page's checksum,
  // so replayed pages validate on every later read.
  files_[static_cast<std::size_t>(file_id)]->write_page(page, buf);
  note_write(file_id, page);
  const std::uint64_t key = make_key(file_id, page);
  for (;;) {
    auto it = table_.find(key);
    if (it == table_.end()) return;
    Frame& fr = frames_[it->second];
    if (fr.io_busy) {
      io_cv_.wait(lock);
      continue;  // re-lookup: the mapping may have changed
    }
    if (fr.valid) {
      std::memcpy(pool_.get() + it->second * page_bytes_, buf, page_bytes_);
      fr.dirty = false;  // frame now matches the store
    }
    return;
  }
}

PageCacheStats PageCache::stats() const {
  PageCacheStats s;
  for (const StatShard& c : stat_shards_) {
    s.pins += c.pins.load(std::memory_order_relaxed);
    s.hits += c.hits.load(std::memory_order_relaxed);
    s.page_ins += c.page_ins.load(std::memory_order_relaxed);
    s.page_outs += c.page_outs.load(std::memory_order_relaxed);
    s.evictions += c.evictions.load(std::memory_order_relaxed);
    s.prefetch_issued += c.prefetch_issued.load(std::memory_order_relaxed);
    s.prefetch_completed +=
        c.prefetch_completed.load(std::memory_order_relaxed);
    s.prefetch_redundant +=
        c.prefetch_redundant.load(std::memory_order_relaxed);
    s.prefetch_hits += c.prefetch_hits.load(std::memory_order_relaxed);
    s.prefetch_dropped += c.prefetch_dropped.load(std::memory_order_relaxed);
    s.writebacks_async += c.writebacks_async.load(std::memory_order_relaxed);
    s.io_wait_seconds += c.io_wait.load(std::memory_order_relaxed);
    s.io_wait_async_seconds += c.io_wait_async.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const RobustStore* rs : robust_views_) {
      const RobustStoreStats r = rs->stats();
      s.io_retries += r.retries;
      s.crc_failures += r.crc_failures;
      s.io_hard_failures += r.hard_failures;
    }
  }
  s.writeback_failures = writeback_failures_.load(std::memory_order_relaxed);
  s.prefetch_errors = prefetch_errors_.load(std::memory_order_relaxed);
  s.async_degraded = degraded_.load(std::memory_order_acquire) ? 1 : 0;
  return s;
}

void PageCache::reset_stats() {
  for (StatShard& c : stat_shards_) {
    c.pins.store(0, std::memory_order_relaxed);
    c.hits.store(0, std::memory_order_relaxed);
    c.page_ins.store(0, std::memory_order_relaxed);
    c.page_outs.store(0, std::memory_order_relaxed);
    c.evictions.store(0, std::memory_order_relaxed);
    c.prefetch_issued.store(0, std::memory_order_relaxed);
    c.prefetch_completed.store(0, std::memory_order_relaxed);
    c.prefetch_redundant.store(0, std::memory_order_relaxed);
    c.prefetch_hits.store(0, std::memory_order_relaxed);
    c.prefetch_dropped.store(0, std::memory_order_relaxed);
    c.writebacks_async.store(0, std::memory_order_relaxed);
    c.io_wait.store(0.0, std::memory_order_relaxed);
    c.io_wait_async.store(0.0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (RobustStore* rs : robust_views_) rs->reset_stats();
  }
  writeback_failures_.store(0, std::memory_order_relaxed);
  prefetch_errors_.store(0, std::memory_order_relaxed);
}

}  // namespace gep
