// Page-granular temporary file storage for out-of-core matrices.
//
// One BlockFile backs one out-of-core object. Pages are fixed-size and
// addressed by index; unwritten pages read back as zero bytes (the file
// is created sparse). Real pread/pwrite I/O is performed — the disk
// *latency* is modelled separately (disk_model.hpp) because the host's
// NVMe-class storage would otherwise hide the effect Fig. 7 measures.
//
// Failed transfers raise gep::IoError carrying the errno, strerror text
// and page number; EINTR is retried internally and never surfaces.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "extmem/block_store.hpp"

namespace gep {

class BlockFile final : public BlockStore {
 public:
  // Creates an unlinked temporary file in `dir` (falls back to /tmp).
  explicit BlockFile(std::uint64_t page_bytes, const std::string& dir = "");
  ~BlockFile() override;

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  // Thread-safe: pread/pwrite are positioned, and the transfer counters
  // are atomic (the page cache's async worker and foreground faults hit
  // the same file concurrently).
  void read_page(std::uint64_t page, void* buf) override;
  void write_page(std::uint64_t page, const void* buf) override;

  // fdatasync (EINTR-retried); failures raise a non-transient IoError.
  void sync() override;

  std::uint64_t page_bytes() const override { return page_bytes_; }
  std::uint64_t syncs() const {
    return syncs_.load(std::memory_order_relaxed);
  }
  std::uint64_t pages_read() const {
    return pages_read_.load(std::memory_order_relaxed);
  }
  std::uint64_t pages_written() const {
    return pages_written_.load(std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  std::uint64_t page_bytes_;
  std::atomic<std::uint64_t> pages_read_{0};
  std::atomic<std::uint64_t> pages_written_{0};
  std::atomic<std::uint64_t> syncs_{0};
};

}  // namespace gep
