// Out-of-core matrix backed by a shared PageCache.
//
// Elements are stored row-major across B-byte pages of an unlinked
// temporary file; get/set pin the owning page, with a one-entry pointer
// memo (validated against the cache's eviction epoch) so the unit-stride
// inner loops of the GEP engines touch the hash table only on page
// crossings. Satisfies the generic engines' Accessor concept, so the
// identical G / I-GEP / C-GEP code used in-core runs out-of-core — the
// paper's portability claim made literal.
#pragma once

#include "extmem/page_cache.hpp"
#include "matrix/matrix.hpp"

namespace gep {

template <class T>
class OocMatrix {
 public:
  using value_type = T;

  OocMatrix(PageCache& cache, index_t rows, index_t cols)
      : cache_(&cache), rows_(rows), cols_(cols),
        elems_per_page_(static_cast<index_t>(cache.page_bytes() / sizeof(T))) {
    assert(elems_per_page_ > 0);
    pages_ = (static_cast<std::uint64_t>(rows * cols) +
              static_cast<std::uint64_t>(elems_per_page_) - 1) /
             static_cast<std::uint64_t>(elems_per_page_);
    file_id_ = cache.register_file(pages_);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  // Checkpoint identity: which cache file backs this matrix, how big.
  int file_id() const { return file_id_; }
  std::uint64_t file_pages() const { return pages_; }
  index_t n() const {
    assert(rows_ == cols_);
    return rows_;
  }

  T get(index_t i, index_t j) const {
    return *element(i, j, /*for_write=*/false);
  }
  void set(index_t i, index_t j, T v) { *element(i, j, /*for_write=*/true) = v; }

  // Bulk initialization from an in-core matrix.
  void load(const Matrix<T>& m) {
    assert(m.rows() == rows_ && m.cols() == cols_);
    for (index_t i = 0; i < rows_; ++i)
      for (index_t j = 0; j < cols_; ++j) set(i, j, m(i, j));
  }

  // Bulk copy from another out-of-core matrix of identical shape.
  void copy_from(const OocMatrix& other) {
    assert(other.rows_ == rows_ && other.cols_ == cols_);
    for (index_t i = 0; i < rows_; ++i)
      for (index_t j = 0; j < cols_; ++j) set(i, j, other.get(i, j));
  }

  Matrix<T> to_matrix() const {
    Matrix<T> m(rows_, cols_);
    for (index_t i = 0; i < rows_; ++i)
      for (index_t j = 0; j < cols_; ++j) m(i, j) = get(i, j);
    return m;
  }

 private:
  T* element(index_t i, index_t j, bool for_write) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    const index_t idx = i * cols_ + j;
    const index_t page = idx / elems_per_page_;
    const index_t off = idx - page * elems_per_page_;
    // Fast path: same page as last time, no eviction since, and we are
    // not upgrading a read-pinned page to a write.
    if (page == memo_page_ && memo_epoch_ == cache_->eviction_epoch() &&
        (memo_dirty_ || !for_write)) {
      return memo_ptr_ + off;
    }
    memo_ptr_ = static_cast<T*>(
        cache_->pin(file_id_, static_cast<std::uint64_t>(page), for_write));
    memo_page_ = page;
    memo_epoch_ = cache_->eviction_epoch();
    memo_dirty_ = for_write;
    return memo_ptr_ + off;
  }

  PageCache* cache_;
  index_t rows_;
  index_t cols_;
  index_t elems_per_page_;
  int file_id_;
  std::uint64_t pages_ = 0;
  mutable T* memo_ptr_ = nullptr;
  mutable index_t memo_page_ = -1;
  mutable std::uint64_t memo_epoch_ = ~0ULL;
  mutable bool memo_dirty_ = false;
};

// Out-of-core matrix with a TILE-MAJOR on-disk layout: square ts x ts
// tiles, one tile per page, tiles ordered row-major. A recursive engine
// working on an m x m box then touches O((m/ts)²) pages instead of the
// O(m²/elems_per_page) row-segments of the row-major layout — the
// out-of-core analogue of the bit-interleaved in-core layout (§4.2), and
// the layout STXXL's matrix containers use. Drop-in accessor replacement
// for OocMatrix.
template <class T>
class OocTiledMatrix {
 public:
  using value_type = T;

  // Tile side defaults to the largest power-of-two square fitting one
  // page (power-of-two sides align tiles with the recursion's boxes);
  // when the page holds more than one such tile, consecutive tiles share
  // a page so no capacity is wasted.
  OocTiledMatrix(PageCache& cache, index_t rows, index_t cols,
                 index_t tile_side = 0)
      : cache_(&cache), rows_(rows), cols_(cols) {
    const index_t per_page =
        static_cast<index_t>(cache.page_bytes() / sizeof(T));
    if (tile_side <= 0) {
      tile_side = 1;
      while ((tile_side * 2) * (tile_side * 2) <= per_page) tile_side *= 2;
    }
    ts_ = tile_side;
    assert(ts_ * ts_ <= per_page);
    tiles_per_page_ = std::max<index_t>(1, per_page / (ts_ * ts_));
    tiles_per_row_ = (cols_ + ts_ - 1) / ts_;
    const index_t tile_rows = (rows_ + ts_ - 1) / ts_;
    const index_t tiles = tile_rows * tiles_per_row_;
    pages_ = static_cast<std::uint64_t>(
        (tiles + tiles_per_page_ - 1) / tiles_per_page_);
    file_id_ = cache.register_file(pages_);
  }

  index_t rows() const { return rows_; }
  // Checkpoint identity: which cache file backs this matrix, how big.
  int file_id() const { return file_id_; }
  std::uint64_t file_pages() const { return pages_; }
  index_t cols() const { return cols_; }
  index_t tile_side() const { return ts_; }

  // Pins the tile's page and returns a typed pointer to the ts x ts
  // tile (row-major, stride = tile_side()). The tile stays resident
  // until the TilePin is destroyed — the basis of the typed out-of-core
  // engine (ooc_typed.hpp).
  struct TilePin {
    PageCache::PagePin pin;
    T* ptr = nullptr;
  };
  TilePin pin_tile(index_t ti, index_t tj, bool for_write) {
    const index_t tile = ti * tiles_per_row_ + tj;
    const index_t page = tile / tiles_per_page_;
    // If pinning evicted the page the get/set memo pointed at, the
    // eviction-epoch check in element() already invalidates it — no
    // memo write here, which would race between concurrent pinners.
    PageCache::PagePin pin = cache_->acquire(
        file_id_, static_cast<std::uint64_t>(page), for_write);
    T* base = static_cast<T*>(pin.data()) +
              (tile % tiles_per_page_) * ts_ * ts_;
    return TilePin{std::move(pin), base};
  }

  // Hints the cache that the tile's page will be pinned soon (no-op
  // without the cache's async worker). Thread-safe, never blocks.
  void prefetch_tile(index_t ti, index_t tj) {
    const index_t tile = ti * tiles_per_row_ + tj;
    cache_->prefetch(file_id_,
                     static_cast<std::uint64_t>(tile / tiles_per_page_));
  }

  PageCache& cache() { return *cache_; }
  index_t n() const {
    assert(rows_ == cols_);
    return rows_;
  }

  T get(index_t i, index_t j) const {
    return *element(i, j, /*for_write=*/false);
  }
  void set(index_t i, index_t j, T v) { *element(i, j, /*for_write=*/true) = v; }

  void load(const Matrix<T>& m) {
    assert(m.rows() == rows_ && m.cols() == cols_);
    for (index_t i = 0; i < rows_; ++i)
      for (index_t j = 0; j < cols_; ++j) set(i, j, m(i, j));
  }

  Matrix<T> to_matrix() const {
    Matrix<T> m(rows_, cols_);
    for (index_t i = 0; i < rows_; ++i)
      for (index_t j = 0; j < cols_; ++j) m(i, j) = get(i, j);
    return m;
  }

 private:
  T* element(index_t i, index_t j, bool for_write) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    const index_t tile = (i / ts_) * tiles_per_row_ + (j / ts_);
    const index_t page = tile / tiles_per_page_;
    const index_t off =
        (tile % tiles_per_page_) * ts_ * ts_ + (i % ts_) * ts_ + (j % ts_);
    if (page == memo_page_ && memo_epoch_ == cache_->eviction_epoch() &&
        (memo_dirty_ || !for_write)) {
      return memo_ptr_ + off;
    }
    memo_ptr_ = static_cast<T*>(
        cache_->pin(file_id_, static_cast<std::uint64_t>(page), for_write));
    memo_page_ = page;
    memo_epoch_ = cache_->eviction_epoch();
    memo_dirty_ = for_write;
    return memo_ptr_ + off;
  }

  PageCache* cache_;
  index_t rows_;
  index_t cols_;
  index_t ts_ = 0;
  index_t tiles_per_row_ = 0;
  index_t tiles_per_page_ = 1;
  int file_id_;
  std::uint64_t pages_ = 0;
  mutable T* memo_ptr_ = nullptr;
  mutable index_t memo_page_ = -1;
  mutable std::uint64_t memo_epoch_ = ~0ULL;
  mutable bool memo_dirty_ = false;
};

}  // namespace gep
