#include "extmem/fault_injector.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace gep {
namespace {

struct InjectorObs {
  obs::Counter read_errors = obs::counter("robust.injected.read_errors");
  obs::Counter write_errors = obs::counter("robust.injected.write_errors");
  obs::Counter torn_writes = obs::counter("robust.injected.torn_writes");
  obs::Counter bitflips = obs::counter("robust.injected.bitflips");
  obs::Counter latency = obs::counter("robust.injected.latency_spikes");
  obs::Counter kills = obs::counter("robust.injected.kills");
};
InjectorObs& injector_obs() {
  static InjectorObs o;
  return o;
}

[[noreturn]] void throw_injected(IoError::Op op, std::uint64_t page,
                                 bool transient, const char* kind) {
  std::string what = std::string("FaultInjector: injected ") + kind +
                     " at page " + std::to_string(page) + ": " +
                     std::strerror(EIO);
  throw IoError(op, page, EIO, transient, what);
}

}  // namespace

FaultInjector::FaultInjector(std::unique_ptr<BlockStore> inner,
                             FaultConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg), rng_(cfg.seed) {}

bool FaultInjector::draw(double p) { return p > 0 && rng_.chance(p); }

// A triggered error fails this operation and the next error_burst - 1
// operations of the same kind on the same page — retries above consume
// the burst, so error_burst <= retry budget is transient, larger is
// effectively hard.
bool FaultInjector::take_burst_failure(std::uint64_t page, bool is_write,
                                       double p) {
  const std::uint64_t key = (page << 1) | (is_write ? 1u : 0u);
  auto it = burst_.find(key);
  if (it != burst_.end()) {
    if (--it->second <= 0) burst_.erase(it);
    return true;
  }
  if (!draw(p)) return false;
  if (cfg_.error_burst > 1) burst_[key] = cfg_.error_burst - 1;
  return true;
}

void FaultInjector::maybe_latency_spike() {
  if (!draw(cfg_.p_latency)) return;
  ++stats_.latency_spikes;
  injector_obs().latency.inc();
  // Sleep outside mu_? The spike is milliseconds and injection is a
  // test/bench-only path; holding mu_ keeps the fault stream strictly
  // ordered, which the determinism tests rely on.
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(cfg_.latency_spike_ms));
}

void FaultInjector::read_page(std::uint64_t page, void* buf) {
  std::uint64_t flip_bit = ~0ULL;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.ops;
    if (killed_) {
      throw_injected(IoError::Op::Read, page, /*transient=*/false,
                     "read on crashed store");
    }
    maybe_latency_spike();
    if (hard_read_.count(page) != 0) {
      ++stats_.read_errors;
      injector_obs().read_errors.inc();
      throw_injected(IoError::Op::Read, page, /*transient=*/false,
                     "hard read error");
    }
    if (take_burst_failure(page, /*is_write=*/false, cfg_.p_read_error)) {
      ++stats_.read_errors;
      injector_obs().read_errors.inc();
      throw_injected(IoError::Op::Read, page, /*transient=*/true,
                     "read error");
    }
    if (draw(cfg_.p_bitflip_read)) {
      flip_bit = rng_.below(inner_->page_bytes() * 8);
      ++stats_.bitflips;
      injector_obs().bitflips.inc();
    }
  }
  inner_->read_page(page, buf);
  if (flip_bit != ~0ULL) {
    static_cast<unsigned char*>(buf)[flip_bit / 8] ^=
        static_cast<unsigned char>(1u << (flip_bit % 8));
  }
}

void FaultInjector::write_page(std::uint64_t page, const void* buf) {
  bool torn = false;
  bool kill_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.ops;
    if (killed_) {
      throw_injected(IoError::Op::Write, page, /*transient=*/false,
                     "write on crashed store");
    }
    ++writes_seen_;
    if (cfg_.kill_after_writes > 0 &&
        writes_seen_ >= cfg_.kill_after_writes) {
      killed_ = true;
      kill_now = true;
      ++stats_.kills;
      injector_obs().kills.inc();
    }
    maybe_latency_spike();
    if (!kill_now && hard_write_.count(page) != 0) {
      ++stats_.write_errors;
      injector_obs().write_errors.inc();
      throw_injected(IoError::Op::Write, page, /*transient=*/false,
                     "hard write error");
    }
    if (!kill_now &&
        take_burst_failure(page, /*is_write=*/true, cfg_.p_write_error)) {
      ++stats_.write_errors;
      injector_obs().write_errors.inc();
      throw_injected(IoError::Op::Write, page, /*transient=*/true,
                     "write error");
    }
    if (!kill_now && draw(cfg_.p_torn_write)) {
      torn = true;
      ++stats_.torn_writes;
      injector_obs().torn_writes.inc();
    }
  }
  if (kill_now) {
    // The crash interrupts this very write: half the page lands (like
    // the torn-write path) and the store is dead from here on. Unlike a
    // torn write the error is NON-transient — a crashed process does not
    // come back because the layer above retries.
    const std::uint64_t pb = inner_->page_bytes();
    std::vector<char> partial(pb);
    inner_->read_page(page, partial.data());
    std::memcpy(partial.data(), buf, pb / 2);
    inner_->write_page(page, partial.data());
    throw_injected(IoError::Op::Write, page, /*transient=*/false,
                   "crash (kill_after_writes)");
  }
  if (torn) {
    // Half the page reaches the device, then the "power fails": the
    // stored page now mixes old and new bytes. The error is transient —
    // a retried full write repairs it — but a crash here would leave
    // the tear for checksums to catch on the next read.
    const std::uint64_t pb = inner_->page_bytes();
    std::vector<char> partial(pb);
    inner_->read_page(page, partial.data());
    std::memcpy(partial.data(), buf, pb / 2);
    inner_->write_page(page, partial.data());
    throw_injected(IoError::Op::Write, page, /*transient=*/true,
                   "torn write");
  }
  inner_->write_page(page, buf);
}

void FaultInjector::set_hard_fault(std::uint64_t page, bool reads,
                                   bool writes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (reads) hard_read_.insert(page);
  if (writes) hard_write_.insert(page);
}

void FaultInjector::clear_hard_faults() {
  std::lock_guard<std::mutex> lock(mu_);
  hard_read_.clear();
  hard_write_.clear();
}

void FaultInjector::corrupt_stored_page(std::uint64_t page,
                                        std::uint64_t bit) {
  const std::uint64_t pb = inner_->page_bytes();
  std::vector<char> buf(pb);
  inner_->read_page(page, buf.data());
  bit %= pb * 8;
  buf[bit / 8] = static_cast<char>(
      static_cast<unsigned char>(buf[bit / 8]) ^ (1u << (bit % 8)));
  inner_->write_page(page, buf.data());
}

void FaultInjector::sync() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (killed_) {
      throw_injected(IoError::Op::Write, 0, /*transient=*/false,
                     "sync on crashed store");
    }
  }
  inner_->sync();
}

bool FaultInjector::killed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return killed_;
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FaultInjectorStats s = stats_;
  s.writes_seen = writes_seen_;
  return s;
}

}  // namespace gep
