// Deterministic, seedable I/O fault injection behind the BlockStore
// interface.
//
// Wraps an inner store and injects, with per-operation probabilities
// drawn from a SplitMix64 stream: transient EIO on reads/writes, torn
// (partial) writes, single-bit corruption of read buffers, and latency
// spikes. Every failure mode the hardening layer (RobustStore,
// PageCache) must survive is therefore reproducible in tests from a
// fixed seed. Hard faults (a page that fails every time) and at-rest
// corruption (a bit flipped in the stored bytes, below any checksum)
// are settable explicitly for targeted regression tests.
//
// Sits UNDER RobustStore in the stack, so the checksums and retries
// above see injected faults exactly as they would see real ones.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "extmem/block_store.hpp"
#include "util/prng.hpp"

namespace gep {

struct FaultConfig {
  std::uint64_t seed = 1;

  double p_read_error = 0.0;    // transient EIO on read_page
  double p_write_error = 0.0;   // transient EIO on write_page
  double p_torn_write = 0.0;    // half the page written, then EIO
  double p_bitflip_read = 0.0;  // one bit flipped in the returned buffer
  double p_latency = 0.0;       // latency spike (sleep) on any op
  double latency_spike_ms = 2.0;

  // Consecutive failures per triggered read/write error: a burst larger
  // than the retry budget turns a probabilistic fault into a hard one.
  int error_burst = 1;

  // Deterministic crash: the Nth block-store write (counted across all
  // pages) performs a torn half-write and then this store "dies" — that
  // write and every subsequent read/write/sync raises a NON-transient
  // IoError, so RobustStore's retry budget cannot paper over it. Models
  // kill -9 at a reproducible point for checkpoint/restart tests.
  // 0 disables.
  std::uint64_t kill_after_writes = 0;

  // Install the injector even with all probabilities zero (tests that
  // only use set_hard_fault / corrupt_stored_page).
  bool install = false;

  bool any() const {
    return p_read_error > 0 || p_write_error > 0 || p_torn_write > 0 ||
           p_bitflip_read > 0 || p_latency > 0 || kill_after_writes > 0;
  }
  bool enabled() const { return install || any(); }
};

struct FaultInjectorStats {
  std::uint64_t ops = 0;  // operations seen (reads + writes)
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t bitflips = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t kills = 0;  // 0 or 1: kill_after_writes fired
  std::uint64_t writes_seen = 0;  // write_page calls (calibrates kills)

  std::uint64_t injected() const {
    return read_errors + write_errors + torn_writes + bitflips +
           latency_spikes + kills;
  }
};

class FaultInjector final : public BlockStore {
 public:
  FaultInjector(std::unique_ptr<BlockStore> inner, FaultConfig cfg);

  void read_page(std::uint64_t page, void* buf) override;
  void write_page(std::uint64_t page, const void* buf) override;
  void sync() override;  // fails after the kill fired, else forwards
  std::uint64_t page_bytes() const override { return inner_->page_bytes(); }

  // True once kill_after_writes has fired; the store is dead from the
  // caller's point of view.
  bool killed() const;

  // Marks `page` to fail with EIO on every read and/or write until
  // clear_hard_faults(); models an unreadable sector.
  void set_hard_fault(std::uint64_t page, bool reads, bool writes);
  void clear_hard_faults();

  // Flips one bit of the page AT REST (directly through the inner
  // store, below any checksum layer): silent persistent corruption.
  void corrupt_stored_page(std::uint64_t page, std::uint64_t bit);

  FaultInjectorStats stats() const;

 private:
  // All mu_-held: probability draw and burst bookkeeping.
  bool draw(double p);
  bool take_burst_failure(std::uint64_t page, bool is_write, double p);
  void maybe_latency_spike();

  std::unique_ptr<BlockStore> inner_;
  FaultConfig cfg_;
  mutable std::mutex mu_;
  SplitMix64 rng_;
  // (page << 1 | is_write) -> remaining failures of the current burst.
  std::unordered_map<std::uint64_t, int> burst_;
  std::unordered_set<std::uint64_t> hard_read_, hard_write_;
  std::uint64_t writes_seen_ = 0;  // for kill_after_writes
  bool killed_ = false;
  FaultInjectorStats stats_;
};

}  // namespace gep
