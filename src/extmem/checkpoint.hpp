// Checkpoint/restart for long-running out-of-core I-GEP jobs
// (ROADMAP item 5(b); docs/ROBUSTNESS.md "Checkpoint/restart").
//
// A snapshot pairs the matrix state (every OocMatrix page written since
// the previous snapshot, as checksummed extents) with the execution
// frontier (the set of completed base-case leaves, as a bitmap over the
// typed task graph's emission-order ids). Emission order is the
// sequential execution order and every quiesced completed-set is a
// dependence DOWNSET of the DAG, so "replay the pages, skip the done
// leaves, run the rest in any topological order" reproduces the
// uninterrupted run bit for bit — on either runtime: the fork-join
// invoker and the DAG scheduler retire the same leaves, so one frontier
// format serves both (a snapshot cut under one runtime resumes under
// the other).
//
// Stream format GEPCKPT1 (host-endian, one file per snapshot):
//   FileHeader        magic "GEPCKPT1", schema version, job id, matrix
//                     fingerprint (algo, n, base, matrix shapes, element
//                     and page sizes), options hash, sequence number,
//                     parent checksum (chains incrementals), header CRC
//   MatRecord[n_mats] rows/cols/tile_side/pages per matrix
//   frontier bitmap   (task_count + 7) / 8 bytes, bit = leaf id done
//   Extent*           {mat, count, start_page, payload CRC32C} followed
//                     by count raw pages (consecutive, <= 64 per extent)
//   Footer            magic "GEPCKEND" + CRC32C of all preceding bytes
// Snapshots are written to "<name>.tmp", fsynced, renamed into place,
// and the directory fsynced — a crash mid-checkpoint leaves the
// previous snapshot chain valid. Snapshot seq 0 is a full image (the
// cache tracks every page ever written, and matrix load() writes every
// page, so no separate input copy is needed); seq >= 1 hold only pages
// changed since the previous cut, linked by parent_crc and validated as
// a chain on load. Truncation, bit flips and broken links surface as
// CheckpointError — never a silent resume from bad state.
//
// Quiesce protocol: the coordinator implements TaskCheckpointHook.
// leaf_enter() blocks new leaves while a snapshot is pending; once the
// in-flight count drains to zero the snapshot is cut under the
// coordinator lock (flush + store sync, then the stream write), and the
// gate reopens. Leaves that unwind via JobCancelled before touching
// their blocks are clean cancels; any other mid-kernel exception marks
// the job dirty and permanently blocks further snapshots (the matrix
// holds a half-applied leaf that no frontier can describe).
//
// Triggers: every_n_leaves, a wall-clock interval (GEP_CKPT_INTERVAL_SEC
// or CheckpointOptions::interval_sec), request_checkpoint() (thread-
// safe), SIGUSR2 (install_checkpoint_signal_handler), and explicit
// checkpoint_now() from a quiesced caller (e.g. the JobCancelled catch
// of a SIGTERM'd bench: checkpoint, then exit 130).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "extmem/page_cache.hpp"
#include "matrix/matrix.hpp"
#include "parallel/task_graph.hpp"

namespace gep {

// A snapshot file (or chain) that cannot be trusted: truncated, failed
// a checksum, wrong schema/fingerprint, or a broken incremental chain.
// Resume MUST fail rather than continue from it.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace ckptfmt {

inline constexpr char kMagic[8] = {'G', 'E', 'P', 'C', 'K', 'P', 'T', '1'};
inline constexpr char kEndMagic[8] = {'G', 'E', 'P', 'C', 'K', 'E', 'N', 'D'};
inline constexpr std::uint32_t kVersion = 1;
// Extents are capped so payload CRCs cover bounded buffers.
inline constexpr std::uint64_t kMaxExtentPages = 64;

struct FileHeader {
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t algo = 0;  // DagProblem
  std::uint64_t job_id = 0;
  std::uint64_t options_hash = 0;
  std::uint64_t n = 0;
  std::uint64_t base = 0;
  std::uint32_t n_mats = 0;
  std::uint32_t elem_bytes = 0;
  std::uint64_t page_bytes = 0;
  std::uint64_t seq = 0;
  std::uint32_t parent_crc = 0;  // footer CRC of seq-1; 0 for seq 0
  std::uint32_t header_crc = 0;  // CRC32C of this struct, field zeroed
  std::uint64_t task_count = 0;
  std::uint64_t done_count = 0;
  std::uint64_t extent_count = 0;
  std::uint64_t reserved = 0;
};

struct MatRecord {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t tile_side = 0;  // 0 = row-major OocMatrix
  std::uint64_t pages = 0;
};

struct ExtentRecord {
  std::uint32_t mat = 0;         // index into the MatRecord table
  std::uint32_t count = 0;       // pages in this extent
  std::uint64_t start_page = 0;  // first page id
  std::uint32_t payload_crc = 0; // CRC32C of the count raw pages
  std::uint32_t reserved = 0;
};

struct Footer {
  char magic[8];
  std::uint32_t file_crc = 0;  // CRC32C of every byte before the footer
  std::uint32_t reserved = 0;
};

}  // namespace ckptfmt

// A fully validated snapshot file: header, matrix table, frontier
// bitmap, extent table (payloads are streamed to the read_snapshot
// sink, not retained), and the footer checksum that chains the next
// incremental.
struct SnapshotInfo {
  ckptfmt::FileHeader header;
  std::vector<ckptfmt::MatRecord> mats;
  std::vector<std::uint8_t> frontier;  // (task_count + 7) / 8 bytes
  std::vector<ckptfmt::ExtentRecord> extents;
  std::uint32_t file_crc = 0;
  std::string path;
};

// Reads and validates one snapshot end to end (header CRC, every extent
// payload CRC, footer magic + whole-file CRC), throwing CheckpointError
// on any mismatch or truncation. `sink`, when non-null, receives each
// extent's record and raw payload in file order.
using ExtentSink =
    std::function<void(const ckptfmt::ExtentRecord&, const char* payload)>;
SnapshotInfo read_snapshot(const std::string& path, const ExtentSink& sink);

// Scans `dir` for the job's snapshots, orders them by sequence number
// and validates the full chain: contiguous seq 0..k, consistent
// fingerprints, each file's parent_crc equal to its predecessor's
// footer CRC, every file individually validated by read_snapshot.
// Returns the ordered chain ([] when the job has no snapshots yet);
// throws CheckpointError on a gap or any validation failure.
std::vector<SnapshotInfo> load_chain(const std::string& dir,
                                     std::uint64_t job_id);

// Snapshot filename for (job, seq): "ckpt_<job:016x>_<seq:06>.gepckpt".
std::string snapshot_filename(std::uint64_t job_id, std::uint64_t seq);

// SIGUSR2 -> checkpoint-and-continue: the handler sets a flag the
// coordinator consumes at the next leaf retirement. Idempotent install.
void install_checkpoint_signal_handler();
bool checkpoint_signal_pending();  // consumes the flag

// $GEP_CKPT_INTERVAL_SEC (seconds, fractional ok; <= 0 disables).
double ckpt_interval_from_env(double fallback = 0.0);

struct CheckpointOptions {
  std::string dir;           // where snapshots live (must exist)
  std::uint64_t job_id = 1;  // names the chain; stable across restarts
  // Periodic triggers; 0 disables. Both may be combined with explicit
  // request_checkpoint() / SIGUSR2 / checkpoint_now().
  std::uint64_t every_n_leaves = 0;
  double interval_sec = 0.0;
};

struct CheckpointStats {
  std::uint64_t count = 0;    // snapshots written
  std::uint64_t skipped = 0;  // triggers with nothing new (or aborted)
  std::uint64_t failed = 0;   // write attempts that threw
  std::uint64_t bytes = 0;    // snapshot file bytes written
  std::uint64_t pages = 0;    // matrix pages captured
  double wall_seconds = 0;    // time spent cutting snapshots
  std::uint64_t last_seq = 0; // seq of the most recent snapshot + 1
};

// Orchestrates quiesce + snapshot + resume for one job: one PageCache,
// one or more OocMatrix files, one typed task graph. Thread-safe; the
// same object serves the fork-join leaves and the DAG runtime (via
// TaskRuntimeOptions::ckpt).
class CheckpointCoordinator final : public TaskCheckpointHook {
 public:
  CheckpointCoordinator(PageCache& cache, CheckpointOptions opts);

  // Declares a matrix participating in the job, in a FIXED order that
  // becomes the snapshot's mat indices. Call before bind()/resume().
  void add_matrix(int file_id, std::uint64_t rows, std::uint64_t cols,
                  std::uint64_t tile_side, std::uint64_t elem_bytes,
                  std::uint64_t pages);

  // Binds the job's execution fingerprint and builds the leaf-id map
  // from the typed task graph (emission order). Idempotent for equal
  // arguments — the OOC drivers re-bind on entry — and throws on a
  // mismatch (the coordinator serves exactly one job).
  void bind(DagProblem algo, index_t n, index_t base, bool lu_guarded);

  // Loads and applies the job's snapshot chain: verifies compatibility
  // with the bound fingerprint, replays every page extent through the
  // cache, and seeds the frontier from the newest snapshot. Later
  // snapshots APPEND to the chain (seq continues, parent_crc links).
  // Returns false when no chain exists (caller runs from scratch);
  // throws CheckpointError on corruption — never a partial resume: no
  // page is installed unless the whole chain validated.
  bool resume();

  // Emission-order task id of the leaf keyed by its box origin.
  int task_id(index_t i0, index_t j0, index_t k0) const;

  // Asks for a snapshot at the next consistent point (thread-safe,
  // returns immediately).
  void request_checkpoint();

  // Cuts a snapshot right now. Caller must be quiesced (no leaf between
  // leaf_enter and leaf_exit — e.g. after run_task_graph returned or a
  // JobCancelled unwound). Returns true if a snapshot was written,
  // false if skipped (nothing changed, or an aborted leaf poisoned the
  // state); throws on I/O failure (the previous chain stays valid).
  bool checkpoint_now();

  // TaskCheckpointHook (called by the runtimes; see task_graph.hpp).
  bool is_done(int id) const override;
  void leaf_enter() override;
  void leaf_exit(int id) override;
  void leaf_cancel() noexcept override;
  void leaf_abort() noexcept override;

  CheckpointStats stats() const;
  std::uint64_t done_leaves() const {
    return done_count_.load(std::memory_order_acquire);
  }
  std::uint64_t task_count() const { return task_count_; }
  const CheckpointOptions& options() const { return opts_; }

 private:
  struct MatrixInfo {
    int file_id;
    std::uint64_t rows, cols, tile_side, pages;
  };
  enum class CutResult { Written, SkippedUnchanged, SkippedAborted };

  std::uint64_t fingerprint_hash() const;  // options_hash field
  void verify_compat(const SnapshotInfo& s) const;
  CutResult cut_snapshot();  // mu_ held; quiesced
  void write_snapshot_file(const std::string& dir, std::uint64_t seq,
                           const std::vector<std::vector<std::uint64_t>>&
                               pages_per_mat,
                           std::uint64_t done,
                           std::uint64_t* bytes_out,
                           std::uint32_t* crc_out) const;
  void arm_deadline();  // mu_ held

  PageCache* cache_;
  CheckpointOptions opts_;

  std::vector<MatrixInfo> mats_;
  std::uint32_t elem_bytes_ = 0;

  bool bound_ = false;
  DagProblem algo_ = DagProblem::FloydWarshall;
  index_t n_ = 0, base_ = 0;
  bool lu_guarded_ = false;
  std::uint64_t task_count_ = 0;
  std::unordered_map<std::uint64_t, int> task_map_;  // packed box -> id

  // Frontier: one bit per task, set at leaf_exit. Lock-free so markers
  // never contend with the quiesce mutex.
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
  std::size_t word_count_ = 0;
  std::atomic<std::uint64_t> done_count_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inflight_ = 0;        // leaves between leaf_enter and leaf_exit
  bool pending_ = false;    // snapshot requested; gate closed
  bool requested_ = false;  // request_checkpoint() latch
  bool dirty_abort_ = false;  // a leaf died mid-kernel; no more snapshots
  std::uint64_t seq_ = 0;          // next snapshot's sequence number
  std::uint32_t parent_crc_ = 0;   // footer CRC of seq_ - 1
  std::uint64_t last_done_count_ = 0;
  std::uint64_t leaves_since_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool deadline_armed_ = false;
  CheckpointStats stats_;
};

}  // namespace gep
