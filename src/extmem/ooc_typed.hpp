// Typed out-of-core I-GEP: the A/B/C/D recursion over tile-major disk
// pages, with base-case kernels running on PINNED frames.
//
// The generic engines run out-of-core through per-element get/set — fully
// general, but every element access pays accessor overhead. A production
// out-of-core implementation (what STXXL-based code does, and what the
// paper's out-of-core numbers imply) operates at block granularity: pin
// the X/U/V(/W) tiles of a base-case box in memory, run the raw-pointer
// kernel, release. Same recursion, same I/O pattern, near in-core compute
// speed. Requires the base size to equal the on-disk tile side and the
// page cache to hold at least 4 pinned tiles plus headroom.
#pragma once

#include <stdexcept>

#include "extmem/ooc_matrix.hpp"
#include "gep/typed.hpp"

namespace gep {

namespace detail {

template <class T>
void check_ooc_typed(const OocTiledMatrix<T>& m) {
  const index_t n = m.rows();
  if (m.cols() != n || !is_pow2(n)) {
    throw std::invalid_argument("ooc typed engine: square pow2 matrix only");
  }
  if (n % m.tile_side() != 0 || !is_pow2(m.tile_side())) {
    throw std::invalid_argument("ooc typed engine: tile side must divide n");
  }
}

}  // namespace detail

// Out-of-core Floyd-Warshall at block granularity (base = tile side).
template <class T>
void ooc_igep_floyd_warshall(OocTiledMatrix<T>& m) {
  detail::check_ooc_typed(m);
  const index_t n = m.rows();
  const index_t bs = m.tile_side();
  SeqInvoker inv;
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t mm, BoxKind) {
    auto x = m.pin_tile(i0 / bs, j0 / bs, /*for_write=*/true);
    auto u = m.pin_tile(i0 / bs, k0 / bs, /*for_write=*/false);
    auto v = m.pin_tile(k0 / bs, j0 / bs, /*for_write=*/false);
    kernel_fw(x.ptr, u.ptr, v.ptr, mm, bs, bs, bs);
  };
  auto prune = [](index_t, index_t, index_t, index_t) { return false; };
  detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
}

// Out-of-core LU decomposition without pivoting at block granularity.
template <class T>
void ooc_igep_lu(OocTiledMatrix<T>& m) {
  detail::check_ooc_typed(m);
  const index_t n = m.rows();
  const index_t bs = m.tile_side();
  SeqInvoker inv;
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t mm,
                  BoxKind kind) {
    auto x = m.pin_tile(i0 / bs, j0 / bs, /*for_write=*/true);
    auto u = m.pin_tile(i0 / bs, k0 / bs, /*for_write=*/false);
    auto v = m.pin_tile(k0 / bs, j0 / bs, /*for_write=*/false);
    auto w = m.pin_tile(k0 / bs, k0 / bs, /*for_write=*/false);
    const bool di = (kind == BoxKind::A || kind == BoxKind::B);
    const bool dj = (kind == BoxKind::A || kind == BoxKind::C);
    kernel_lu(x.ptr, u.ptr, v.ptr, w.ptr, mm, bs, bs, bs, bs, di, dj);
  };
  auto prune = [](index_t i0, index_t j0, index_t k0, index_t) {
    return i0 < k0 || j0 < k0;
  };
  detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
}

// Out-of-core matrix multiplication C += A·B at block granularity.
template <class T>
void ooc_igep_matmul(OocTiledMatrix<T>& c, OocTiledMatrix<T>& a,
                     OocTiledMatrix<T>& b) {
  detail::check_ooc_typed(c);
  detail::check_ooc_typed(a);
  detail::check_ooc_typed(b);
  const index_t n = c.rows();
  const index_t bs = c.tile_side();
  if (a.rows() != n || b.rows() != n || a.tile_side() != bs ||
      b.tile_side() != bs) {
    throw std::invalid_argument("ooc matmul: shapes/tiles must match");
  }
  SeqInvoker inv;
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t mm) {
    auto x = c.pin_tile(i0 / bs, j0 / bs, /*for_write=*/true);
    auto u = a.pin_tile(i0 / bs, k0 / bs, /*for_write=*/false);
    auto v = b.pin_tile(k0 / bs, j0 / bs, /*for_write=*/false);
    kernel_mm(x.ptr, u.ptr, v.ptr, mm, bs, bs, bs);
  };
  detail::mm_rec(inv, 0, 0, 0, n, bs, leaf);
}

}  // namespace gep
