// Typed out-of-core I-GEP: the A/B/C/D recursion over tile-major disk
// pages, with base-case kernels running on PINNED frames.
//
// The generic engines run out-of-core through per-element get/set — fully
// general, but every element access pays accessor overhead. A production
// out-of-core implementation (what STXXL-based code does, and what the
// paper's out-of-core numbers imply) operates at block granularity: pin
// the X/U/V(/W) tiles of a base-case box in memory, run the raw-pointer
// kernel, release. Same recursion, same I/O pattern, near in-core compute
// speed.
//
// The engines are generic over the Invoker concept (gep/typed.hpp), so
// the same code runs sequentially (SeqInvoker) or as the multithreaded
// I-GEP of Fig. 6 on a work-stealing pool — acquire()'s pins make the
// cache safe for concurrent leaves, and invoke() barriers keep each
// stage's X tiles disjoint, so the parallel run is bit-identical to the
// sequential one. With OocTypedOptions::prefetch the recursion issues
// hints for the next stage's first-leaf tiles one stage ahead, which the
// cache's async worker (PageCache::enable_async_io) turns into
// overlapped fault-ins.
//
// Sizing contract: the page cache must hold the concurrently pinned
// tiles plus headroom — at least 4 frames per in-flight leaf (X, U, V,
// W) times the worker count, or acquire() throws under pressure (see
// docs/EXTMEM.md).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "extmem/checkpoint.hpp"
#include "extmem/ooc_matrix.hpp"
#include "gep/typed.hpp"
#include "parallel/task_graph.hpp"
#include "simd/strassen.hpp"

namespace gep {

struct OocTypedOptions {
  // Issue prefetch hints from the recursion. Only useful with the
  // cache's async worker running; harmless (counted as dropped) without.
  bool prefetch = false;
  // Pivot guard for ooc_igep_lu (gep/numeric_guard.hpp): every pivot is
  // admitted before division. Throw propagates NumericBreakdownError
  // through the invoker (WsTaskGroup rethrows from wait()); Boost floors
  // pivots at the A-kind boxes that create them — the floored value
  // lands in the write-pinned diagonal tile, so it persists to disk and
  // every later reader sees it. Null = unguarded (the paper's kernel).
  const PivotGuard* lu_guard = nullptr;
  // Checkpoint/restart coordinator (extmem/checkpoint.hpp). The driver
  // binds it to this job's task graph at entry; leaves the coordinator's
  // frontier already covers are skipped (resume), and every executed
  // leaf is bracketed so snapshots cut at whole-leaf boundaries.
  CheckpointCoordinator* ckpt = nullptr;
  // Leaf-GEMM tuning (simd/strassen.hpp): OOC tiles are large (whole
  // leaves of the tile size), so D-kind leaves clear the Strassen
  // crossover whenever the tile edge does. Installed process-wide for
  // the run's duration; defaults inherit the env knobs.
  simd::GemmOptions gemm{};
};

namespace detail {

template <class T>
void check_ooc_typed(const OocTiledMatrix<T>& m) {
  const index_t n = m.rows();
  if (m.cols() != n || !is_pow2(n)) {
    throw std::invalid_argument("ooc typed engine: square pow2 matrix only");
  }
  if (n % m.tile_side() != 0 || !is_pow2(m.tile_side())) {
    throw std::invalid_argument("ooc typed engine: tile side must divide n");
  }
}

// Suppresses duplicate prefetch hints within a sliding window of
// recently hinted tiles. The recursion's hint hook fires per subtree
// corner, and sibling corners of one stage share tiles (B-kind siblings
// share U, the k-column tiles recur in every corner); worse, a 2bs-wide
// corner and the bs-wide corners inside it hint the SAME tiles one
// level apart. Unsuppressed, those duplicates flood the async worker's
// queue and can evict still-pinned pages it re-faults. The window (not
// a per-run set) is what makes re-hinting legal later: a tile evicted
// between stages ages out of the window and may be hinted again.
// Thread-safe — the parallel invoker runs the hint hook from workers.
class PrefetchDeduper {
 public:
  explicit PrefetchDeduper(std::size_t window = 64) : window_(window) {}

  // True if (mat, ti, tj) has not been hinted within the window; records
  // it. False counts into extmem.prefetch.hints_deduped.
  bool should_hint(int mat, index_t ti, index_t tj) {
    const std::uint64_t key = (static_cast<std::uint64_t>(mat) << 48) |
                              (static_cast<std::uint64_t>(ti) << 24) |
                              static_cast<std::uint64_t>(tj);
    std::lock_guard<std::mutex> lock(mu_);
    if (seen_.count(key) != 0) {
      suppressed_.inc();
      return false;
    }
    seen_.insert(key);
    order_.push_back(key);
    if (order_.size() > window_) {
      seen_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

 private:
  std::size_t window_;
  std::mutex mu_;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> order_;
  obs::Counter suppressed_ = obs::counter("extmem.prefetch.hints_deduped");
};

// Brackets one fork-join leaf under an optional checkpoint coordinator:
// leaves the resumed frontier already covers are skipped outright, and
// the enter/exit pair lets a pending snapshot quiesce at a whole-leaf
// boundary. A JobCancelled unwind before the body touched its blocks is
// a clean cancel; any other exception means a half-applied leaf, which
// poisons further snapshots (leaf_abort).
template <class Body>
inline void ckpt_leaf(CheckpointCoordinator* ck, index_t i0, index_t j0,
                      index_t k0, Body&& body) {
  if (ck == nullptr) {
    body();
    return;
  }
  const int id = ck->task_id(i0, j0, k0);
  if (ck->is_done(id)) return;
  ck->leaf_enter();
  try {
    body();
  } catch (const obs::JobCancelled&) {
    ck->leaf_cancel();
    throw;
  } catch (...) {
    ck->leaf_abort();
    throw;
  }
  ck->leaf_exit(id);
}

}  // namespace detail

// Out-of-core Floyd-Warshall at block granularity (base = tile side).
template <class T, class Inv>
void ooc_igep_floyd_warshall(OocTiledMatrix<T>& m, Inv& inv,
                             OocTypedOptions opts = {}) {
  detail::check_ooc_typed(m);
  const index_t n = m.rows();
  const index_t bs = m.tile_side();
  CheckpointCoordinator* ck = opts.ckpt;
  if (ck != nullptr) ck->bind(DagProblem::FloydWarshall, n, bs, false);
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t mm, BoxKind) {
    // Cooperative SIGINT/SIGTERM: unwind before pinning so the bench can
    // flush write-behind instead of dying mid-update.
    obs::throw_if_stop_requested();
    detail::ckpt_leaf(ck, i0, j0, k0, [&] {
      auto x = m.pin_tile(i0 / bs, j0 / bs, /*for_write=*/true);
      auto u = m.pin_tile(i0 / bs, k0 / bs, /*for_write=*/false);
      auto v = m.pin_tile(k0 / bs, j0 / bs, /*for_write=*/false);
      kernel_fw(x.ptr, u.ptr, v.ptr, mm, bs, bs, bs);
    });
  };
  auto prune = [](index_t, index_t, index_t, index_t) { return false; };
  if (opts.prefetch) {
    // (i0,j0,k0) is a subtree corner: its first leaf reads exactly these
    // tiles. Hint only near the bottom (subtree ≤ 2 base boxes wide) —
    // higher corners are too far in the future to hold in the cache.
    // Sibling corners share tiles; the deduper swallows the repeats.
    detail::PrefetchDeduper dedupe;
    auto hint = [&](index_t i0, index_t j0, index_t k0, index_t mm) {
      if (mm > 2 * bs) return;
      if (dedupe.should_hint(0, i0 / bs, j0 / bs))
        m.prefetch_tile(i0 / bs, j0 / bs);
      if (dedupe.should_hint(0, i0 / bs, k0 / bs))
        m.prefetch_tile(i0 / bs, k0 / bs);
      if (dedupe.should_hint(0, k0 / bs, j0 / bs))
        m.prefetch_tile(k0 / bs, j0 / bs);
    };
    detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune, hint);
  } else {
    detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
  }
}

// Out-of-core LU decomposition without pivoting at block granularity.
template <class T, class Inv>
void ooc_igep_lu(OocTiledMatrix<T>& m, Inv& inv, OocTypedOptions opts = {}) {
  detail::check_ooc_typed(m);
  simd::ScopedGemmOptions gemm_scope(opts.gemm);
  const index_t n = m.rows();
  const index_t bs = m.tile_side();
  CheckpointCoordinator* ck = opts.ckpt;
  if (ck != nullptr) {
    ck->bind(DagProblem::LU, n, bs, opts.lu_guard != nullptr);
  }
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t mm,
                  BoxKind kind) {
    obs::throw_if_stop_requested();
    detail::ckpt_leaf(ck, i0, j0, k0, [&] {
      auto x = m.pin_tile(i0 / bs, j0 / bs, /*for_write=*/true);
      auto u = m.pin_tile(i0 / bs, k0 / bs, /*for_write=*/false);
      auto v = m.pin_tile(k0 / bs, j0 / bs, /*for_write=*/false);
      auto w = m.pin_tile(k0 / bs, k0 / bs, /*for_write=*/false);
      const bool di = (kind == BoxKind::A || kind == BoxKind::B);
      const bool dj = (kind == BoxKind::A || kind == BoxKind::C);
      if (opts.lu_guard != nullptr) {
        kernel_lu_guarded(x.ptr, u.ptr, v.ptr, w.ptr, mm, bs, bs, bs, bs, di,
                          dj, *opts.lu_guard, k0);
      } else {
        kernel_lu(x.ptr, u.ptr, v.ptr, w.ptr, mm, bs, bs, bs, bs, di, dj);
      }
    });
  };
  auto prune = [](index_t i0, index_t j0, index_t k0, index_t) {
    return i0 < k0 || j0 < k0;
  };
  if (opts.prefetch) {
    detail::PrefetchDeduper dedupe;
    auto hint = [&](index_t i0, index_t j0, index_t k0, index_t mm) {
      if (mm > 2 * bs) return;
      if (dedupe.should_hint(0, i0 / bs, j0 / bs))
        m.prefetch_tile(i0 / bs, j0 / bs);
      if (dedupe.should_hint(0, i0 / bs, k0 / bs))
        m.prefetch_tile(i0 / bs, k0 / bs);
      if (dedupe.should_hint(0, k0 / bs, j0 / bs))
        m.prefetch_tile(k0 / bs, j0 / bs);
      if (dedupe.should_hint(0, k0 / bs, k0 / bs))
        m.prefetch_tile(k0 / bs, k0 / bs);
    };
    detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune, hint);
  } else {
    detail::typed_rec(inv, 0, 0, 0, n, bs, leaf, prune);
  }
}

// Out-of-core matrix multiplication C += A·B at block granularity.
template <class T, class Inv>
void ooc_igep_matmul(OocTiledMatrix<T>& c, OocTiledMatrix<T>& a,
                     OocTiledMatrix<T>& b, Inv& inv,
                     OocTypedOptions opts = {}) {
  detail::check_ooc_typed(c);
  detail::check_ooc_typed(a);
  detail::check_ooc_typed(b);
  simd::ScopedGemmOptions gemm_scope(opts.gemm);
  const index_t n = c.rows();
  const index_t bs = c.tile_side();
  if (a.rows() != n || b.rows() != n || a.tile_side() != bs ||
      b.tile_side() != bs) {
    throw std::invalid_argument("ooc matmul: shapes/tiles must match");
  }
  CheckpointCoordinator* ck = opts.ckpt;
  if (ck != nullptr) ck->bind(DagProblem::MatMul, n, bs, false);
  auto leaf = [&](index_t i0, index_t j0, index_t k0, index_t mm) {
    obs::throw_if_stop_requested();
    detail::ckpt_leaf(ck, i0, j0, k0, [&] {
      auto x = c.pin_tile(i0 / bs, j0 / bs, /*for_write=*/true);
      auto u = a.pin_tile(i0 / bs, k0 / bs, /*for_write=*/false);
      auto v = b.pin_tile(k0 / bs, j0 / bs, /*for_write=*/false);
      kernel_mm(x.ptr, u.ptr, v.ptr, mm, bs, bs, bs);
    });
  };
  if (opts.prefetch) {
    detail::PrefetchDeduper dedupe;
    auto hint = [&](index_t i0, index_t j0, index_t k0, index_t mm) {
      if (mm > 2 * bs) return;
      if (dedupe.should_hint(0, i0 / bs, j0 / bs))
        c.prefetch_tile(i0 / bs, j0 / bs);
      if (dedupe.should_hint(1, i0 / bs, k0 / bs))
        a.prefetch_tile(i0 / bs, k0 / bs);
      if (dedupe.should_hint(2, k0 / bs, j0 / bs))
        b.prefetch_tile(k0 / bs, j0 / bs);
    };
    detail::mm_rec(inv, 0, 0, 0, n, bs, leaf, hint);
  } else {
    detail::mm_rec(inv, 0, 0, 0, n, bs, leaf);
  }
}

// --- DAG-runtime drivers ---------------------------------------------------
// The dependency-driven runtime (parallel/task_graph.hpp) replaces the
// recursion's bolted-on one-stage-ahead hints with the scheduler's own
// lookahead: the ready frontier that feeds workers also names the next
// `lookahead` tasks, and this driver's prefetch hook turns each of them
// into page hints for the async I/O worker. One scheduler state drives
// both compute and I/O — a task is hinted exactly when its dependencies
// have retired, so a hinted page is needed soon and never speculatively
// wrong. Sizing contract is the fork-join drivers' plus `lookahead`
// unpinned working sets of headroom (4 frames each).

struct OocDagOptions {
  // Ready tasks announced to the prefetcher ahead of execution; 0
  // disables prefetch. Overridable per process via $GEP_DAG_LOOKAHEAD.
  int lookahead = 4;
  bool prefetch = true;
  // Same pivot-guard contract as OocTypedOptions::lu_guard.
  const PivotGuard* lu_guard = nullptr;
  // Same checkpoint contract as OocTypedOptions::ckpt: the driver binds
  // it and hands it to the DAG runtime, which skips retired tasks when
  // seeding (resume) and brackets every leaf for quiesce.
  CheckpointCoordinator* ckpt = nullptr;
};

template <class T>
void ooc_igep_floyd_warshall_dag(OocTiledMatrix<T>& m, WorkStealingPool* pool,
                                 OocDagOptions opts = {}) {
  detail::check_ooc_typed(m);
  obs::WatchdogThreadSource wd_src("ooc-fw-dag");
  const index_t n = m.rows();
  const index_t bs = m.tile_side();
  TaskGraph g = build_typed_task_graph(DagProblem::FloydWarshall, n, bs);
  detail::PrefetchDeduper dedupe;
  TaskRuntimeOptions ro;
  if (opts.ckpt != nullptr) {
    opts.ckpt->bind(DagProblem::FloydWarshall, n, bs, false);
    ro.ckpt = opts.ckpt;
  }
  if (opts.prefetch && opts.lookahead > 0) {
    ro.lookahead = opts.lookahead;
    ro.prefetch = [&m, &dedupe, bs](const BlockTask& t) {
      const index_t bi = t.i0 / bs, bj = t.j0 / bs, bk = t.k0 / bs;
      if (dedupe.should_hint(0, bi, bj)) m.prefetch_tile(bi, bj);
      if (dedupe.should_hint(0, bi, bk)) m.prefetch_tile(bi, bk);
      if (dedupe.should_hint(0, bk, bj)) m.prefetch_tile(bk, bj);
    };
  }
  run_task_graph(g, pool, [&m, bs](const BlockTask& t) {
    obs::throw_if_stop_requested();
    auto x = m.pin_tile(t.i0 / bs, t.j0 / bs, /*for_write=*/true);
    auto u = m.pin_tile(t.i0 / bs, t.k0 / bs, /*for_write=*/false);
    auto v = m.pin_tile(t.k0 / bs, t.j0 / bs, /*for_write=*/false);
    kernel_fw(x.ptr, u.ptr, v.ptr, t.m, bs, bs, bs);
  }, ro);
}

template <class T>
void ooc_igep_lu_dag(OocTiledMatrix<T>& m, WorkStealingPool* pool,
                     OocDagOptions opts = {}) {
  detail::check_ooc_typed(m);
  obs::WatchdogThreadSource wd_src("ooc-lu-dag");
  const index_t n = m.rows();
  const index_t bs = m.tile_side();
  TaskGraph g = build_typed_task_graph(DagProblem::LU, n, bs);
  detail::PrefetchDeduper dedupe;
  TaskRuntimeOptions ro;
  if (opts.ckpt != nullptr) {
    opts.ckpt->bind(DagProblem::LU, n, bs, opts.lu_guard != nullptr);
    ro.ckpt = opts.ckpt;
  }
  if (opts.prefetch && opts.lookahead > 0) {
    ro.lookahead = opts.lookahead;
    ro.prefetch = [&m, &dedupe, bs](const BlockTask& t) {
      const index_t bi = t.i0 / bs, bj = t.j0 / bs, bk = t.k0 / bs;
      if (dedupe.should_hint(0, bi, bj)) m.prefetch_tile(bi, bj);
      if (dedupe.should_hint(0, bi, bk)) m.prefetch_tile(bi, bk);
      if (dedupe.should_hint(0, bk, bj)) m.prefetch_tile(bk, bj);
      if (dedupe.should_hint(0, bk, bk)) m.prefetch_tile(bk, bk);
    };
  }
  const PivotGuard* guard = opts.lu_guard;
  run_task_graph(g, pool, [&m, bs, guard](const BlockTask& t) {
    obs::throw_if_stop_requested();
    auto x = m.pin_tile(t.i0 / bs, t.j0 / bs, /*for_write=*/true);
    auto u = m.pin_tile(t.i0 / bs, t.k0 / bs, /*for_write=*/false);
    auto v = m.pin_tile(t.k0 / bs, t.j0 / bs, /*for_write=*/false);
    auto w = m.pin_tile(t.k0 / bs, t.k0 / bs, /*for_write=*/false);
    const bool di = (t.kind == BoxKind::A || t.kind == BoxKind::B);
    const bool dj = (t.kind == BoxKind::A || t.kind == BoxKind::C);
    if (guard != nullptr) {
      kernel_lu_guarded(x.ptr, u.ptr, v.ptr, w.ptr, t.m, bs, bs, bs, bs, di,
                        dj, *guard, t.k0);
    } else {
      kernel_lu(x.ptr, u.ptr, v.ptr, w.ptr, t.m, bs, bs, bs, bs, di, dj);
    }
  }, ro);
}

template <class T>
void ooc_igep_matmul_dag(OocTiledMatrix<T>& c, OocTiledMatrix<T>& a,
                         OocTiledMatrix<T>& b, WorkStealingPool* pool,
                         OocDagOptions opts = {}) {
  detail::check_ooc_typed(c);
  detail::check_ooc_typed(a);
  detail::check_ooc_typed(b);
  const index_t n = c.rows();
  const index_t bs = c.tile_side();
  if (a.rows() != n || b.rows() != n || a.tile_side() != bs ||
      b.tile_side() != bs) {
    throw std::invalid_argument("ooc matmul: shapes/tiles must match");
  }
  obs::WatchdogThreadSource wd_src("ooc-mm-dag");
  TaskGraph g = build_typed_task_graph(DagProblem::MatMul, n, bs);
  detail::PrefetchDeduper dedupe;
  TaskRuntimeOptions ro;
  if (opts.ckpt != nullptr) {
    opts.ckpt->bind(DagProblem::MatMul, n, bs, false);
    ro.ckpt = opts.ckpt;
  }
  if (opts.prefetch && opts.lookahead > 0) {
    ro.lookahead = opts.lookahead;
    ro.prefetch = [&c, &a, &b, &dedupe, bs](const BlockTask& t) {
      const index_t bi = t.i0 / bs, bj = t.j0 / bs, bk = t.k0 / bs;
      if (dedupe.should_hint(0, bi, bj)) c.prefetch_tile(bi, bj);
      if (dedupe.should_hint(1, bi, bk)) a.prefetch_tile(bi, bk);
      if (dedupe.should_hint(2, bk, bj)) b.prefetch_tile(bk, bj);
    };
  }
  run_task_graph(g, pool, [&c, &a, &b, bs](const BlockTask& t) {
    obs::throw_if_stop_requested();
    auto x = c.pin_tile(t.i0 / bs, t.j0 / bs, /*for_write=*/true);
    auto u = a.pin_tile(t.i0 / bs, t.k0 / bs, /*for_write=*/false);
    auto v = b.pin_tile(t.k0 / bs, t.j0 / bs, /*for_write=*/false);
    kernel_mm(x.ptr, u.ptr, v.ptr, t.m, bs, bs, bs);
  }, ro);
}

// Back-compat single-argument forms: synchronous sequential execution.
template <class T>
void ooc_igep_floyd_warshall(OocTiledMatrix<T>& m) {
  SeqInvoker inv;
  ooc_igep_floyd_warshall(m, inv);
}

template <class T>
void ooc_igep_lu(OocTiledMatrix<T>& m) {
  SeqInvoker inv;
  ooc_igep_lu(m, inv);
}

template <class T>
void ooc_igep_matmul(OocTiledMatrix<T>& c, OocTiledMatrix<T>& a,
                     OocTiledMatrix<T>& b) {
  SeqInvoker inv;
  ooc_igep_matmul(c, a, b, inv);
}

}  // namespace gep
