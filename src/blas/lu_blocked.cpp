#include "blas/blas.hpp"

#include <algorithm>

namespace gep::blas {
namespace {

constexpr index_t NB = 64;  // panel width

// Unblocked right-looking LU without pivoting on an m x nb panel whose
// top nb x nb block is the diagonal block (getf2, no pivoting).
void lu_panel(index_t m, index_t nb, double* a, index_t lda) {
  for (index_t k = 0; k < nb; ++k) {
    const double pivot = a[k * lda + k];
    for (index_t i = k + 1; i < m; ++i) {
      a[i * lda + k] /= pivot;
      const double lik = a[i * lda + k];
      for (index_t j = k + 1; j < nb; ++j) {
        a[i * lda + j] -= lik * a[k * lda + j];
      }
    }
  }
}

// Solves L * X = B in place (L unit lower triangular nb x nb, B nb x n).
void trsm_lower_unit(index_t nb, index_t n, const double* l, index_t ldl,
                     double* b, index_t ldb) {
  for (index_t k = 0; k < nb; ++k) {
    for (index_t i = k + 1; i < nb; ++i) {
      const double lik = l[i * ldl + k];
      for (index_t j = 0; j < n; ++j) {
        b[i * ldb + j] -= lik * b[k * ldb + j];
      }
    }
  }
}

}  // namespace

void lu_nopivot(index_t n, double* a, index_t lda) {
  for (index_t k = 0; k < n; k += NB) {
    const index_t nb = std::min(NB, n - k);
    double* akk = a + k * lda + k;
    // Factor the current column panel A[k:n, k:k+nb].
    lu_panel(n - k, nb, akk, lda);
    const index_t rest = n - k - nb;
    if (rest <= 0) continue;
    // U block row: solve L11 * U12 = A12.
    trsm_lower_unit(nb, rest, akk, lda, akk + nb, lda);
    // Trailing update: A22 -= L21 * U12 (the dgemm bulk of the work).
    dgemm(rest, rest, nb, -1.0, akk + nb * lda, lda, akk + nb, lda,
          akk + nb * lda + nb, lda);
  }
}

}  // namespace gep::blas
