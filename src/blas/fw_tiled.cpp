#include "blas/blas.hpp"

#include <algorithm>

namespace gep::blas {
namespace {

// min-plus "GEMM" tile kernel: x[i][j] = min(x[i][j], u[i][k] + v[k][j])
// over an mx x nx tile with depth kx. k-outer with hoisted u[i][k] keeps
// the inner loop a unit-stride vector min.
void fw_tile(double* x, const double* u, const double* v, index_t mx,
             index_t nx, index_t kx, index_t ld) {
  for (index_t k = 0; k < kx; ++k) {
    const double* vk = v + k * ld;
    for (index_t i = 0; i < mx; ++i) {
      const double uik = u[i * ld + k];
      double* xi = x + i * ld;
      for (index_t j = 0; j < nx; ++j) {
        xi[j] = std::min(xi[j], uik + vk[j]);
      }
    }
  }
}

}  // namespace

// Cache-aware blocked Floyd-Warshall: for each diagonal tile K, first
// close the K tile, then relax the K row and K column of tiles, then
// relax every remaining tile through K. Equivalent to FW because all
// intermediate vertices within the K range are applied transitively.
void fw_tiled(index_t n, double* d, index_t ld, index_t tile) {
  const index_t ts = std::min(tile, n);
  for (index_t k0 = 0; k0 < n; k0 += ts) {
    const index_t kb = std::min(ts, n - k0);
    double* dkk = d + k0 * ld + k0;
    // Phase 1: diagonal tile (dependent, run to fixpoint over its range).
    fw_tile(dkk, dkk, dkk, kb, kb, kb, ld);
    // Phase 2: row and column of tiles through the diagonal tile.
    for (index_t j0 = 0; j0 < n; j0 += ts) {
      if (j0 == k0) continue;
      const index_t jb = std::min(ts, n - j0);
      fw_tile(d + k0 * ld + j0, dkk, d + k0 * ld + j0, kb, jb, kb, ld);
    }
    for (index_t i0 = 0; i0 < n; i0 += ts) {
      if (i0 == k0) continue;
      const index_t ib = std::min(ts, n - i0);
      fw_tile(d + i0 * ld + k0, d + i0 * ld + k0, dkk, ib, kb, kb, ld);
    }
    // Phase 3: all independent tiles.
    for (index_t i0 = 0; i0 < n; i0 += ts) {
      if (i0 == k0) continue;
      const index_t ib = std::min(ts, n - i0);
      for (index_t j0 = 0; j0 < n; j0 += ts) {
        if (j0 == k0) continue;
        const index_t jb = std::min(ts, n - j0);
        fw_tile(d + i0 * ld + j0, d + i0 * ld + k0, d + k0 * ld + j0, ib, jb,
                kb, ld);
      }
    }
  }
}

}  // namespace gep::blas
