#include "blas/blas.hpp"

#include <algorithm>
#include <cstring>

#include "util/aligned.hpp"

namespace gep::blas {
namespace {

constexpr index_t MR = 4;  // micro-kernel rows
constexpr index_t NR = 8;  // micro-kernel cols (one AVX-512 / two AVX2 lanes)

// 4x8 register-blocked micro-kernel: c(4 x 8, row-major ldc) +=
// alpha * packed_a(kc x 4) * packed_b(kc x 8). The accumulators live in
// a local array the compiler keeps in vector registers.
void micro_kernel(index_t kc, double alpha, const double* __restrict pa,
                  const double* __restrict pb, double* __restrict c,
                  index_t ldc) {
  double acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* a = pa + p * MR;
    const double* b = pb + p * NR;
    for (index_t i = 0; i < MR; ++i) {
      for (index_t j = 0; j < NR; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  for (index_t i = 0; i < MR; ++i) {
    for (index_t j = 0; j < NR; ++j) c[i * ldc + j] += alpha * acc[i][j];
  }
}

// Edge-case micro-kernel for fringe tiles smaller than MR x NR.
void micro_kernel_edge(index_t kc, double alpha, const double* pa,
                       const double* pb, double* c, index_t ldc, index_t mr,
                       index_t nr) {
  double acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* a = pa + p * MR;
    const double* b = pb + p * NR;
    for (index_t i = 0; i < mr; ++i) {
      for (index_t j = 0; j < nr; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  for (index_t i = 0; i < mr; ++i) {
    for (index_t j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[i][j];
  }
}

// Packs an mc x kc block of A into MR-wide column panels (zero padded).
void pack_a(const double* a, index_t lda, index_t mc, index_t kc,
            double* dst) {
  for (index_t i0 = 0; i0 < mc; i0 += MR) {
    const index_t mr = std::min(MR, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t i = 0; i < MR; ++i) {
        *dst++ = (i < mr) ? a[(i0 + i) * lda + p] : 0.0;
      }
    }
  }
}

// Packs a kc x nc block of B into NR-wide row panels (zero padded).
void pack_b(const double* b, index_t ldb, index_t kc, index_t nc,
            double* dst) {
  for (index_t j0 = 0; j0 < nc; j0 += NR) {
    const index_t nr = std::min(NR, nc - j0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t j = 0; j < NR; ++j) {
        *dst++ = (j < nr) ? b[p * ldb + j0 + j] : 0.0;
      }
    }
  }
}

}  // namespace

void dgemm_blocked(index_t m, index_t n, index_t k, double alpha,
                   const double* a, index_t lda, const double* b, index_t ldb,
                   double* c, index_t ldc, const GemmBlocking& bl) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const index_t mc = bl.mc, kc = bl.kc, nc = bl.nc;
  auto packed_a = make_aligned<double>(
      static_cast<std::size_t>((mc + MR) * kc + MR * kc));
  auto packed_b =
      make_aligned<double>(static_cast<std::size_t>((nc + NR) * kc + NR * kc));

  for (index_t jc = 0; jc < n; jc += nc) {
    const index_t ncb = std::min(nc, n - jc);
    for (index_t pc = 0; pc < k; pc += kc) {
      const index_t kcb = std::min(kc, k - pc);
      pack_b(b + pc * ldb + jc, ldb, kcb, ncb, packed_b.get());
      for (index_t ic = 0; ic < m; ic += mc) {
        const index_t mcb = std::min(mc, m - ic);
        pack_a(a + ic * lda + pc, lda, mcb, kcb, packed_a.get());
        // Macro kernel over the packed panels.
        for (index_t jr = 0; jr < ncb; jr += NR) {
          const index_t nr = std::min(NR, ncb - jr);
          const double* pb = packed_b.get() + (jr / NR) * kcb * NR;
          for (index_t ir = 0; ir < mcb; ir += MR) {
            const index_t mr = std::min(MR, mcb - ir);
            const double* pa = packed_a.get() + (ir / MR) * kcb * MR;
            double* cij = c + (ic + ir) * ldc + jc + jr;
            if (mr == MR && nr == NR) {
              micro_kernel(kcb, alpha, pa, pb, cij, ldc);
            } else {
              micro_kernel_edge(kcb, alpha, pa, pb, cij, ldc, mr, nr);
            }
          }
        }
      }
    }
  }
}

void dgemm(index_t m, index_t n, index_t k, double alpha, const double* a,
           index_t lda, const double* b, index_t ldb, double* c, index_t ldc) {
  dgemm_blocked(m, n, k, alpha, a, lda, b, ldb, c, ldc, GemmBlocking{});
}

}  // namespace gep::blas
