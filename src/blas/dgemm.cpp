#include "blas/blas.hpp"

#include <algorithm>
#include <cstring>

#include "simd/dispatch.hpp"
#include "simd/kernels_avx2.hpp"
#include "simd/microkernel.hpp"
#include "simd/strassen.hpp"
#include "util/aligned.hpp"

namespace gep::blas {
namespace {

// Shared BLIS-style micro-kernel layer (simd/microkernel.hpp): 6 x 8
// register-blocked micro-tiles, A packed into MR-row column panels, B
// into NR-column row panels. The AVX2/FMA micro-kernel is selected once
// per dgemm_blocked call via runtime dispatch; the scalar reference
// micro-kernel keeps the identical packed contract on other hosts and
// under $GEP_FORCE_SCALAR=1.
constexpr index_t MR = simd::kMicroRows;
constexpr index_t NR = simd::micro_cols<double>();

}  // namespace

void dgemm_blocked(index_t m, index_t n, index_t k, double alpha,
                   const double* a, index_t lda, const double* b, index_t ldb,
                   double* c, index_t ldc, const GemmBlocking& bl) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const index_t mc = bl.mc, kc = bl.kc, nc = bl.nc;
  auto packed_a = make_aligned<double>(
      static_cast<std::size_t>(simd::packed_a_size<double>(mc, kc)));
  auto packed_b = make_aligned<double>(
      static_cast<std::size_t>(simd::packed_b_size<double>(kc, nc)));
#if GEP_SIMD_X86
  const bool use_avx2 = simd::active() == simd::Level::Avx2;
#else
  const bool use_avx2 = false;
#endif

  for (index_t jc = 0; jc < n; jc += nc) {
    const index_t ncb = std::min(nc, n - jc);
    for (index_t pc = 0; pc < k; pc += kc) {
      const index_t kcb = std::min(kc, k - pc);
      simd::pack_b(b + pc * ldb + jc, ldb, kcb, ncb, packed_b.get());
      for (index_t ic = 0; ic < m; ic += mc) {
        const index_t mcb = std::min(mc, m - ic);
        simd::pack_a(a + ic * lda + pc, lda, mcb, kcb, packed_a.get());
        // Macro kernel over the packed panels.
        for (index_t jr = 0; jr < ncb; jr += NR) {
          const index_t nr = std::min(NR, ncb - jr);
          const double* pb = packed_b.get() + (jr / NR) * kcb * NR;
          for (index_t ir = 0; ir < mcb; ir += MR) {
            const index_t mr = std::min(MR, mcb - ir);
            const double* pa = packed_a.get() + (ir / MR) * kcb * MR;
            double* cij = c + (ic + ir) * ldc + jc + jr;
#if GEP_SIMD_X86
            if (use_avx2) {
              if (mr == MR && nr == NR) {
                simd::ukr_avx2(kcb, alpha, pa, pb, cij, ldc);
              } else {
                simd::ukr_avx2_edge(kcb, alpha, pa, pb, cij, ldc, mr, nr);
              }
              continue;
            }
#endif
            if (mr == MR && nr == NR) {
              simd::ukr_scalar(kcb, alpha, pa, pb, cij, ldc);
            } else {
              simd::ukr_scalar_edge(kcb, alpha, pa, pb, cij, ldc, mr, nr);
            }
          }
        }
      }
    }
  }
  (void)use_avx2;
}

void dgemm(index_t m, index_t n, index_t k, double alpha, const double* a,
           index_t lda, const double* b, index_t ldb, double* c, index_t ldc) {
  // Strassen engages above the measured crossover (simd/strassen.hpp);
  // below it — and in dgemm_blocked, which benches the explicit
  // blocking — the classic packed path runs bit-identically to before.
  if (simd::strassen_gemm(m, n, k, alpha, a, lda, b, ldb, c, ldc)) return;
  dgemm_blocked(m, n, k, alpha, a, lda, b, ldb, c, ldc, GemmBlocking{});
}

}  // namespace gep::blas
