// Cache-aware tuned baselines (the reproduction's stand-in for ATLAS /
// GotoBLAS, which are closed or assembly-tuned and unavailable offline).
//
// These follow the GotoBLAS algorithm sketch — explicit cache blocking
// with panel packing and a register-blocked micro-kernel — written in
// portable C++ so the comparison against cache-oblivious I-GEP
// (Figs. 10, 11) pits the same *design points* against each other:
// cache-aware + layout-packing vs cache-oblivious + recursion.
//
// All matrices are row-major with explicit leading dimensions.
#pragma once

#include "matrix/matrix.hpp"

namespace gep::blas {

// C(m x n) += alpha * A(m x k) * B(k x n); alpha is +1 or -1 in practice.
void dgemm(index_t m, index_t n, index_t k, double alpha, const double* a,
           index_t lda, const double* b, index_t ldb, double* c, index_t ldc);

// In-place LU decomposition without pivoting of the n x n matrix A
// (unit lower triangular L below the diagonal, U on and above), using
// blocked right-looking elimination with dgemm trailing updates.
void lu_nopivot(index_t n, double* a, index_t lda);

// Cache-aware tiled Floyd-Warshall (the blocked FW of Venkataraman et
// al. / Park-Penner-Prasanna): in-place on the n x n distance matrix.
void fw_tiled(index_t n, double* d, index_t ld, index_t tile = 64);

// Blocking parameters (exposed for the ablation bench).
struct GemmBlocking {
  index_t mc = 128;  // rows of packed A block   (fits L2 with kc)
  index_t kc = 256;  // depth of packed panels   (fits L1-ish per stripe)
  index_t nc = 1024; // columns of packed B panel
};
void dgemm_blocked(index_t m, index_t n, index_t k, double alpha,
                   const double* a, index_t lda, const double* b, index_t ldb,
                   double* c, index_t ldc, const GemmBlocking& blocking);

}  // namespace gep::blas
