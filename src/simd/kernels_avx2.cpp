// Explicit AVX2/FMA base-case kernels.
//
// Compiled with per-function `target("avx2,fma")` attributes so this TU
// builds under any -march (including the portable -DGEP_NATIVE_ARCH=OFF
// CI leg); the gep/kernels.hpp wrappers only call in here after
// simd::active() confirmed the host executes AVX2+FMA.
//
// Correctness contracts (verified by tests/test_simd_kernels.cpp):
//  - fw / bottleneck / tc are BIT-EXACT vs the scalar templates: the
//    vector lanes perform the identical elementwise add/min/max/or, and
//    min/max operand order is chosen so ties resolve like std::min /
//    std::max (second operand = the old x value).
//  - ge / lu / micro-kernels use FMA, so they are tolerance-equivalent
//    to scalar (documented in docs/KERNELS.md) and deterministic
//    run-to-run at fixed dispatch.
//  - No `restrict` across x/u/v/w: A/B/C-kind boxes alias. Per-row
//    sweeps are safe because a row-i sweep never overlaps the k-row /
//    k-column it reads (see the aliasing notes in gep/kernels.hpp).
#include "simd/kernels_avx2.hpp"

#if GEP_SIMD_X86

#include <immintrin.h>

#include "gep/numeric_guard.hpp"

#define GEP_AVX2_FN __attribute__((target("avx2,fma")))

namespace gep::simd {
namespace {

// --- row primitives --------------------------------------------------------

// x[0..len) = min(x, t + v)  — elementwise, tie keeps x (std::min order).
GEP_AVX2_FN inline void minplus_row(double* x, const double* v, double t,
                                    index_t len) {
  const __m256d vt = _mm256_set1_pd(t);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m256d cand = _mm256_add_pd(vt, _mm256_loadu_pd(v + j));
    _mm256_storeu_pd(x + j, _mm256_min_pd(cand, _mm256_loadu_pd(x + j)));
  }
  for (; j < len; ++j) {
    const double cand = t + v[j];
    if (cand < x[j]) x[j] = cand;
  }
}

GEP_AVX2_FN inline void minplus_row(float* x, const float* v, float t,
                                    index_t len) {
  const __m256 vt = _mm256_set1_ps(t);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    const __m256 cand = _mm256_add_ps(vt, _mm256_loadu_ps(v + j));
    _mm256_storeu_ps(x + j, _mm256_min_ps(cand, _mm256_loadu_ps(x + j)));
  }
  for (; j < len; ++j) {
    const float cand = t + v[j];
    if (cand < x[j]) x[j] = cand;
  }
}

// x[0..len) = max(x, min(t, v)) — tie orders match std::min/std::max.
GEP_AVX2_FN inline void maxmin_row(double* x, const double* v, double t,
                                   index_t len) {
  const __m256d vt = _mm256_set1_pd(t);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m256d cand = _mm256_min_pd(_mm256_loadu_pd(v + j), vt);
    _mm256_storeu_pd(x + j, _mm256_max_pd(cand, _mm256_loadu_pd(x + j)));
  }
  for (; j < len; ++j) {
    const double cand = v[j] < t ? v[j] : t;
    if (cand > x[j]) x[j] = cand;
  }
}

GEP_AVX2_FN inline void maxmin_row(float* x, const float* v, float t,
                                   index_t len) {
  const __m256 vt = _mm256_set1_ps(t);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    const __m256 cand = _mm256_min_ps(_mm256_loadu_ps(v + j), vt);
    _mm256_storeu_ps(x + j, _mm256_max_ps(cand, _mm256_loadu_ps(x + j)));
  }
  for (; j < len; ++j) {
    const float cand = v[j] < t ? v[j] : t;
    if (cand > x[j]) x[j] = cand;
  }
}

// x[0..len) -= t * v[0..len)   (FMA, one rounding per element)
GEP_AVX2_FN inline void fnmadd_row(double* x, const double* v, double t,
                                   index_t len) {
  const __m256d vt = _mm256_set1_pd(t);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    _mm256_storeu_pd(
        x + j, _mm256_fnmadd_pd(vt, _mm256_loadu_pd(v + j),
                                _mm256_loadu_pd(x + j)));
  }
  for (; j < len; ++j) x[j] = __builtin_fma(-t, v[j], x[j]);
}

GEP_AVX2_FN inline void fnmadd_row(float* x, const float* v, float t,
                                   index_t len) {
  const __m256 vt = _mm256_set1_ps(t);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    _mm256_storeu_ps(
        x + j, _mm256_fnmadd_ps(vt, _mm256_loadu_ps(v + j),
                                _mm256_loadu_ps(x + j)));
  }
  for (; j < len; ++j) x[j] = __builtin_fmaf(-t, v[j], x[j]);
}

// x[0..len) += t * v[0..len)
GEP_AVX2_FN inline void fmadd_row(double* x, const double* v, double t,
                                  index_t len) {
  const __m256d vt = _mm256_set1_pd(t);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    _mm256_storeu_pd(
        x + j, _mm256_fmadd_pd(vt, _mm256_loadu_pd(v + j),
                               _mm256_loadu_pd(x + j)));
  }
  for (; j < len; ++j) x[j] = __builtin_fma(t, v[j], x[j]);
}

GEP_AVX2_FN inline void fmadd_row(float* x, const float* v, float t,
                                  index_t len) {
  const __m256 vt = _mm256_set1_ps(t);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    _mm256_storeu_ps(
        x + j, _mm256_fmadd_ps(vt, _mm256_loadu_ps(v + j),
                               _mm256_loadu_ps(x + j)));
  }
  for (; j < len; ++j) x[j] = __builtin_fmaf(t, v[j], x[j]);
}

// --- shared kernel bodies (double/float via template over row prims) -------

template <class T>
GEP_AVX2_FN void fw_impl(T* x, const T* u, const T* v, index_t m, index_t sx,
                         index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      minplus_row(x + i * sx, vk, u[i * su + k], m);
    }
  }
}

template <class T>
GEP_AVX2_FN void bottleneck_impl(T* x, const T* u, const T* v, index_t m,
                                 index_t sx, index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      maxmin_row(x + i * sx, vk, u[i * su + k], m);
    }
  }
}

template <class T>
GEP_AVX2_FN void ge_impl(T* x, const T* u, const T* v, const T* w, index_t m,
                         index_t sx, index_t su, index_t sv, index_t sw,
                         bool diag_i, bool diag_j) {
  for (index_t k = 0; k < m; ++k) {
    const T wkk = w[k * sw + k];
    const T* vk = v + k * sv;
    const index_t ilo = diag_i ? k + 1 : 0;
    const index_t jlo = diag_j ? k + 1 : 0;
    for (index_t i = ilo; i < m; ++i) {
      const T t = u[i * su + k] / wkk;
      fnmadd_row(x + i * sx + jlo, vk + jlo, t, m - jlo);
    }
  }
}

template <class T>
GEP_AVX2_FN void lu_impl(T* x, const T* u, const T* v, T* w, index_t m,
                         index_t sx, index_t su, index_t sv, index_t sw,
                         bool diag_i, bool diag_j, const PivotGuard* guard,
                         index_t k_base) {
  for (index_t k = 0; k < m; ++k) {
    T wkk = w[k * sw + k];
    if (guard != nullptr && diag_j) {
      wkk = guard->admit(&w[k * sw + k], k_base + k,
                         /*boostable=*/diag_i && diag_j);
    }
    const T* vk = v + k * sv;
    const index_t ilo = diag_i ? k + 1 : 0;
    const index_t jlo = diag_j ? k + 1 : 0;
    for (index_t i = ilo; i < m; ++i) {
      T* xi = x + i * sx;
      T uik;
      if (diag_j) {
        xi[k] /= wkk;  // <i,k,k>: store multiplier (x aliases u here)
        uik = xi[k];
      } else {
        uik = u[i * su + k];
      }
      fnmadd_row(xi + jlo, vk + jlo, uik, m - jlo);
    }
  }
}

template <class T>
GEP_AVX2_FN void mm_impl(T* x, const T* u, const T* v, index_t m, index_t sx,
                         index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const T* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      fmadd_row(x + i * sx, vk, u[i * su + k], m);
    }
  }
}

}  // namespace

// --- GEMM micro-kernels ----------------------------------------------------

// 6 x 8 doubles: 12 ymm accumulators + 2 B vectors + 1 broadcast.
GEP_AVX2_FN void ukr_avx2(index_t kc, double alpha, const double* pa,
                          const double* pb, double* c, index_t ldc) {
  constexpr int MR = 6;
  constexpr index_t NR = 8;
  __m256d acc[MR][2];
  for (int i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_pd();
    acc[i][1] = _mm256_setzero_pd();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(pb + p * NR);
    const __m256d b1 = _mm256_loadu_pd(pb + p * NR + 4);
    const double* a = pa + p * MR;
    for (int i = 0; i < MR; ++i) {
      const __m256d ai = _mm256_broadcast_sd(a + i);
      acc[i][0] = _mm256_fmadd_pd(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_pd(ai, b1, acc[i][1]);
    }
  }
  const __m256d va = _mm256_set1_pd(alpha);
  for (int i = 0; i < MR; ++i) {
    double* ci = c + i * ldc;
    _mm256_storeu_pd(ci,
                     _mm256_fmadd_pd(va, acc[i][0], _mm256_loadu_pd(ci)));
    _mm256_storeu_pd(
        ci + 4, _mm256_fmadd_pd(va, acc[i][1], _mm256_loadu_pd(ci + 4)));
  }
}

// 6 x 16 floats.
GEP_AVX2_FN void ukr_avx2(index_t kc, float alpha, const float* pa,
                          const float* pb, float* c, index_t ldc) {
  constexpr int MR = 6;
  constexpr index_t NR = 16;
  __m256 acc[MR][2];
  for (int i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(pb + p * NR);
    const __m256 b1 = _mm256_loadu_ps(pb + p * NR + 8);
    const float* a = pa + p * MR;
    for (int i = 0; i < MR; ++i) {
      const __m256 ai = _mm256_broadcast_ss(a + i);
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  const __m256 va = _mm256_set1_ps(alpha);
  for (int i = 0; i < MR; ++i) {
    float* ci = c + i * ldc;
    _mm256_storeu_ps(ci, _mm256_fmadd_ps(va, acc[i][0], _mm256_loadu_ps(ci)));
    _mm256_storeu_ps(
        ci + 8, _mm256_fmadd_ps(va, acc[i][1], _mm256_loadu_ps(ci + 8)));
  }
}

namespace {

template <class T, index_t NR>
GEP_AVX2_FN void ukr_edge_impl(index_t kc, T alpha, const T* pa, const T* pb,
                               T* c, index_t ldc, index_t mr, index_t nr) {
  // The panels are zero-padded, so computing the full micro-tile into a
  // scratch buffer is safe; only the valid corner is written back.
  alignas(64) T tmp[6 * NR] = {};
  ukr_avx2(kc, alpha, pa, pb, tmp, NR);
  for (index_t i = 0; i < mr; ++i) {
    for (index_t j = 0; j < nr; ++j) c[i * ldc + j] += tmp[i * NR + j];
  }
}

}  // namespace

GEP_AVX2_FN void ukr_avx2_edge(index_t kc, double alpha, const double* pa,
                               const double* pb, double* c, index_t ldc,
                               index_t mr, index_t nr) {
  ukr_edge_impl<double, 8>(kc, alpha, pa, pb, c, ldc, mr, nr);
}

GEP_AVX2_FN void ukr_avx2_edge(index_t kc, float alpha, const float* pa,
                               const float* pb, float* c, index_t ldc,
                               index_t mr, index_t nr) {
  ukr_edge_impl<float, 16>(kc, alpha, pa, pb, c, ldc, mr, nr);
}

// --- multi-destination micro-kernels (Strassen output fusion) --------------
//
// The accumulation loop is identical to ukr_avx2; the product tile is
// then streamed from registers to every destination quadrant with its
// own ±1 coefficient, so Strassen's output additions cost no separate
// sweep and all destinations share the identically-rounded product.

GEP_AVX2_FN void ukr_avx2_multi(index_t kc, double alpha, const double* pa,
                                const double* pb, const GemmDest<double>* dst,
                                int nd, index_t ldc) {
  constexpr int MR = 6;
  constexpr index_t NR = 8;
  __m256d acc[MR][2];
  for (int i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_pd();
    acc[i][1] = _mm256_setzero_pd();
  }
  // Early RFO prefetch of every destination tile: the multi writeback
  // streams up to kMaxGemmOperands C quadrants, so hiding the C-line
  // fetch behind the k-loop matters more than in the classic kernel.
  for (int q = 0; q < nd; ++q) {
    for (int i = 0; i < MR; ++i) {
      __builtin_prefetch(dst[q].c + i * ldc, 1, 3);
    }
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(pb + p * NR);
    const __m256d b1 = _mm256_loadu_pd(pb + p * NR + 4);
    const double* a = pa + p * MR;
    for (int i = 0; i < MR; ++i) {
      const __m256d ai = _mm256_broadcast_sd(a + i);
      acc[i][0] = _mm256_fmadd_pd(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_pd(ai, b1, acc[i][1]);
    }
  }
  for (int q = 0; q < nd; ++q) {
    const __m256d vs = _mm256_set1_pd(alpha * dst[q].coeff);
    for (int i = 0; i < MR; ++i) {
      double* ci = dst[q].c + i * ldc;
      _mm256_storeu_pd(ci,
                       _mm256_fmadd_pd(vs, acc[i][0], _mm256_loadu_pd(ci)));
      _mm256_storeu_pd(
          ci + 4, _mm256_fmadd_pd(vs, acc[i][1], _mm256_loadu_pd(ci + 4)));
    }
  }
}

GEP_AVX2_FN void ukr_avx2_multi(index_t kc, float alpha, const float* pa,
                                const float* pb, const GemmDest<float>* dst,
                                int nd, index_t ldc) {
  constexpr int MR = 6;
  constexpr index_t NR = 16;
  __m256 acc[MR][2];
  for (int i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(pb + p * NR);
    const __m256 b1 = _mm256_loadu_ps(pb + p * NR + 8);
    const float* a = pa + p * MR;
    for (int i = 0; i < MR; ++i) {
      const __m256 ai = _mm256_broadcast_ss(a + i);
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  for (int q = 0; q < nd; ++q) {
    const __m256 vs = _mm256_set1_ps(alpha * dst[q].coeff);
    for (int i = 0; i < MR; ++i) {
      float* ci = dst[q].c + i * ldc;
      _mm256_storeu_ps(ci,
                       _mm256_fmadd_ps(vs, acc[i][0], _mm256_loadu_ps(ci)));
      _mm256_storeu_ps(
          ci + 8, _mm256_fmadd_ps(vs, acc[i][1], _mm256_loadu_ps(ci + 8)));
    }
  }
}

namespace {

template <class T, index_t NR>
GEP_AVX2_FN void ukr_multi_edge_impl(index_t kc, T alpha, const T* pa,
                                     const T* pb, const GemmDest<T>* dst,
                                     int nd, index_t ldc, index_t mr,
                                     index_t nr) {
  // Full zero-padded tile into scratch (alpha folded in), then each
  // destination receives its ±1-scaled valid corner.
  alignas(64) T tmp[6 * NR] = {};
  GemmDest<T> t{tmp, T{1}};
  ukr_avx2_multi(kc, alpha, pa, pb, &t, 1, NR);
  for (int q = 0; q < nd; ++q) {
    const T s = dst[q].coeff;
    T* c = dst[q].c;
    for (index_t i = 0; i < mr; ++i) {
      for (index_t j = 0; j < nr; ++j) c[i * ldc + j] += s * tmp[i * NR + j];
    }
  }
}

}  // namespace

GEP_AVX2_FN void ukr_avx2_multi_edge(index_t kc, double alpha,
                                     const double* pa, const double* pb,
                                     const GemmDest<double>* dst, int nd,
                                     index_t ldc, index_t mr, index_t nr) {
  ukr_multi_edge_impl<double, 8>(kc, alpha, pa, pb, dst, nd, ldc, mr, nr);
}

GEP_AVX2_FN void ukr_avx2_multi_edge(index_t kc, float alpha, const float* pa,
                                     const float* pb,
                                     const GemmDest<float>* dst, int nd,
                                     index_t ldc, index_t mr, index_t nr) {
  ukr_multi_edge_impl<float, 16>(kc, alpha, pa, pb, dst, nd, ldc, mr, nr);
}

// --- leaf kernels ----------------------------------------------------------

GEP_AVX2_FN void fw_avx2(double* x, const double* u, const double* v,
                         index_t m, index_t sx, index_t su, index_t sv) {
  fw_impl(x, u, v, m, sx, su, sv);
}
GEP_AVX2_FN void fw_avx2(float* x, const float* u, const float* v, index_t m,
                         index_t sx, index_t su, index_t sv) {
  fw_impl(x, u, v, m, sx, su, sv);
}

GEP_AVX2_FN void bottleneck_avx2(double* x, const double* u, const double* v,
                                 index_t m, index_t sx, index_t su,
                                 index_t sv) {
  bottleneck_impl(x, u, v, m, sx, su, sv);
}
GEP_AVX2_FN void bottleneck_avx2(float* x, const float* u, const float* v,
                                 index_t m, index_t sx, index_t su,
                                 index_t sv) {
  bottleneck_impl(x, u, v, m, sx, su, sv);
}

GEP_AVX2_FN void tc_avx2(std::uint8_t* x, const std::uint8_t* u,
                         const std::uint8_t* v, index_t m, index_t sx,
                         index_t su, index_t sv) {
  for (index_t k = 0; k < m; ++k) {
    const std::uint8_t* vk = v + k * sv;
    for (index_t i = 0; i < m; ++i) {
      if (!u[i * su + k]) continue;
      std::uint8_t* xi = x + i * sx;
      index_t j = 0;
      for (; j + 32 <= m; j += 32) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xi + j));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(vk + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(xi + j),
                            _mm256_or_si256(a, b));
      }
      for (; j < m; ++j) xi[j] = static_cast<std::uint8_t>(xi[j] | vk[j]);
    }
  }
}

GEP_AVX2_FN void ge_avx2(double* x, const double* u, const double* v,
                         const double* w, index_t m, index_t sx, index_t su,
                         index_t sv, index_t sw, bool diag_i, bool diag_j) {
  ge_impl(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j);
}
GEP_AVX2_FN void ge_avx2(float* x, const float* u, const float* v,
                         const float* w, index_t m, index_t sx, index_t su,
                         index_t sv, index_t sw, bool diag_i, bool diag_j) {
  ge_impl(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j);
}

GEP_AVX2_FN void lu_avx2(double* x, const double* u, const double* v,
                         double* w, index_t m, index_t sx, index_t su,
                         index_t sv, index_t sw, bool diag_i, bool diag_j,
                         const PivotGuard* guard, index_t k_base) {
  lu_impl(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j, guard, k_base);
}
GEP_AVX2_FN void lu_avx2(float* x, const float* u, const float* v, float* w,
                         index_t m, index_t sx, index_t su, index_t sv,
                         index_t sw, bool diag_i, bool diag_j,
                         const PivotGuard* guard, index_t k_base) {
  lu_impl(x, u, v, w, m, sx, su, sv, sw, diag_i, diag_j, guard, k_base);
}

GEP_AVX2_FN void mm_avx2(double* x, const double* u, const double* v,
                         index_t m, index_t sx, index_t su, index_t sv) {
  mm_impl(x, u, v, m, sx, su, sv);
}
GEP_AVX2_FN void mm_avx2(float* x, const float* u, const float* v, index_t m,
                         index_t sx, index_t su, index_t sv) {
  mm_impl(x, u, v, m, sx, su, sv);
}

}  // namespace gep::simd

#endif  // GEP_SIMD_X86
