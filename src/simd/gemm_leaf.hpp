// Packed-panel GEMM routing for D-kind leaves.
//
// A D-kind box updates a tile disjoint from its u/v/w inputs, so the
// k-i-j leaf loop is a pure rank-m update and can run through the
// BLIS-style packed micro-kernel (simd/microkernel.hpp) instead of the
// strided axpy form. The B panel (v) is packed once per k-chunk and
// reused across every A row panel — the "B-panel reuse across the
// k-sweep" that makes the leaf compute-bound.
//
// gep/kernels.hpp routes here only for tiles with m >= gemm_min_m();
// below that the packing overhead loses to the plain vectorized sweep.
// The threshold depends only on m, so a run's numeric path is
// deterministic.
#pragma once

#include "matrix/matrix.hpp"

namespace gep::simd {

// Default minimum tile edge for packed-GEMM routing (see
// docs/KERNELS.md). The effective threshold is gemm_min_m().
inline constexpr index_t kGemmMinM = 16;

// Effective packed-GEMM threshold: $GEP_GEMM_MIN_M if set, else
// kGemmMinM. Read once per process (defined in strassen.cpp alongside
// the Strassen routing knobs — both thresholds share one mechanism).
index_t gemm_min_m();

// x(m x m, row stride sx) += alpha * u(m x m, su) * v(m x m, sv).
// x must not alias u or v (D-kind contract). alpha = +1 serves
// kernel_mm leaves, alpha = -1 the D-kind LU schur update.
void gemm_tile(double* x, const double* u, const double* v, index_t m,
               index_t sx, index_t su, index_t sv, double alpha);
void gemm_tile(float* x, const float* u, const float* v, index_t m,
               index_t sx, index_t su, index_t sv, float alpha);

// D-kind GE leaf: x(m x m) -= (u[i][k] / w[k][k]) * v(m x m). The
// division folds into A-panel packing (pack_a_scaled) with exactly the
// scalar kernel's operands and rounding. w is strided by sw; x must not
// alias u, v, or w.
void gemm_tile_scaled(double* x, const double* u, const double* v,
                      const double* w, index_t m, index_t sx, index_t su,
                      index_t sv, index_t sw);
void gemm_tile_scaled(float* x, const float* u, const float* v,
                      const float* w, index_t m, index_t sx, index_t su,
                      index_t sv, index_t sw);

}  // namespace gep::simd
