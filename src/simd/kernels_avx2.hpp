// Explicit AVX2/FMA base-case kernels (declarations).
//
// Definitions live in kernels_avx2.cpp, compiled with
// `__attribute__((target("avx2,fma")))` so the library builds — and the
// scalar path stays runnable — without any -march flags; callers must
// check simd::active() == Level::Avx2 (gep/kernels.hpp wrappers do)
// before invoking. Argument conventions (x/u/v/w, strides, diag flags)
// match the scalar templates in gep/kernels.hpp exactly; semiring
// kernels (fw, bottleneck, tc) are bit-identical to scalar, the FMA
// kernels (ge, lu, mm, micro-kernels) are tolerance-equivalent and
// deterministic run-to-run. None of these use `restrict` across
// x/u/v/w — A/B/C-kind boxes alias.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "simd/dispatch.hpp"
#include "simd/microkernel.hpp"

#if GEP_SIMD_X86

namespace gep {

class PivotGuard;  // gep/numeric_guard.hpp

namespace simd {

// --- GEMM micro-kernels (packed-panel contract of microkernel.hpp) ---------

// c(6 x 8, row-major ldc) += alpha * packed_a(kc x 6)^T * packed_b(kc x 8).
void ukr_avx2(index_t kc, double alpha, const double* pa, const double* pb,
              double* c, index_t ldc);
// float shape is 6 x 16.
void ukr_avx2(index_t kc, float alpha, const float* pa, const float* pb,
              float* c, index_t ldc);

// Fringe variant: computes the full zero-padded micro-tile into a local
// buffer, writes back only the valid mr x nr corner.
void ukr_avx2_edge(index_t kc, double alpha, const double* pa,
                   const double* pb, double* c, index_t ldc, index_t mr,
                   index_t nr);
void ukr_avx2_edge(index_t kc, float alpha, const float* pa, const float* pb,
                   float* c, index_t ldc, index_t mr, index_t nr);

// Multi-destination variants for the Strassen layer: one micro-tile
// product streamed to up to kMaxGemmOperands C quadrants as
// c_q += alpha * coeff_q * acc (see ukr_scalar_multi).
void ukr_avx2_multi(index_t kc, double alpha, const double* pa,
                    const double* pb, const GemmDest<double>* dst, int nd,
                    index_t ldc);
void ukr_avx2_multi(index_t kc, float alpha, const float* pa, const float* pb,
                    const GemmDest<float>* dst, int nd, index_t ldc);
void ukr_avx2_multi_edge(index_t kc, double alpha, const double* pa,
                         const double* pb, const GemmDest<double>* dst,
                         int nd, index_t ldc, index_t mr, index_t nr);
void ukr_avx2_multi_edge(index_t kc, float alpha, const float* pa,
                         const float* pb, const GemmDest<float>* dst, int nd,
                         index_t ldc, index_t mr, index_t nr);

// --- Leaf kernels ----------------------------------------------------------

// min-plus: x[i][j] = min(x[i][j], u[i][k] + v[k][j])   (bit-exact)
void fw_avx2(double* x, const double* u, const double* v, index_t m,
             index_t sx, index_t su, index_t sv);
void fw_avx2(float* x, const float* u, const float* v, index_t m, index_t sx,
             index_t su, index_t sv);

// max-min: x[i][j] = max(x[i][j], min(u[i][k], v[k][j]))   (bit-exact)
void bottleneck_avx2(double* x, const double* u, const double* v, index_t m,
                     index_t sx, index_t su, index_t sv);
void bottleneck_avx2(float* x, const float* u, const float* v, index_t m,
                     index_t sx, index_t su, index_t sv);

// or-and over bytes: x[i][j] |= u[i][k] & v[k][j]   (bit-exact)
void tc_avx2(std::uint8_t* x, const std::uint8_t* u, const std::uint8_t* v,
             index_t m, index_t sx, index_t su, index_t sv);

// Gaussian elimination box (A/B/C kinds; D-kind routes through
// gemm_leaf): x[i][j] -= (u[i][k] / w[k][k]) * v[k][j].
void ge_avx2(double* x, const double* u, const double* v, const double* w,
             index_t m, index_t sx, index_t su, index_t sv, index_t sw,
             bool diag_i, bool diag_j);
void ge_avx2(float* x, const float* u, const float* v, const float* w,
             index_t m, index_t sx, index_t su, index_t sv, index_t sw,
             bool diag_i, bool diag_j);

// LU box with in-place multipliers. guard == nullptr is the unguarded
// kernel; otherwise every diag_j pivot runs through guard->admit
// (k_base = box's global elimination offset) exactly as
// scalar::kernel_lu_guarded does — one code path keeps guarded and
// unguarded runs bit-identical on healthy input. w is written only by
// an admitting guard with policy Boost.
void lu_avx2(double* x, const double* u, const double* v, double* w,
             index_t m, index_t sx, index_t su, index_t sv, index_t sw,
             bool diag_i, bool diag_j, const PivotGuard* guard,
             index_t k_base);
void lu_avx2(float* x, const float* u, const float* v, float* w, index_t m,
             index_t sx, index_t su, index_t sv, index_t sw, bool diag_i,
             bool diag_j, const PivotGuard* guard, index_t k_base);

// Small-tile matmul accumulate x += u * v (axpy form, for tiles below
// the packing threshold; larger D-kind tiles use gemm_leaf).
void mm_avx2(double* x, const double* u, const double* v, index_t m,
             index_t sx, index_t su, index_t sv);
void mm_avx2(float* x, const float* u, const float* v, index_t m, index_t sx,
             index_t su, index_t sv);

}  // namespace simd
}  // namespace gep

#endif  // GEP_SIMD_X86
