// Runtime SIMD dispatch for the base-case kernels.
//
// Every leaf kernel in gep/kernels.hpp consults active() once per call
// and routes to either the explicit AVX2/FMA implementation
// (simd/kernels_avx2.cpp, compiled with a `target("avx2,fma")` function
// attribute so the build works without -march flags) or the portable
// scalar template. Selection order:
//
//   1. $GEP_FORCE_SCALAR=1   -> Scalar, always (CI fallback leg, benches)
//   2. force_level(l)        -> l, clamped to what the host can run
//                               (in-process test/bench hook)
//   3. CPUID                 -> Avx2 iff AVX2 + FMA + OS ymm state
//
// AVX-512F is detected and reported (util/cpuinfo) but not dispatched
// to: the kernels target AVX2/FMA, which every AVX-512 host also runs at
// full rate, without the license-based frequency reduction 512-bit ops
// trigger on several generations. See docs/KERNELS.md.
#pragma once

// True when this build can contain the AVX2 kernel translation unit
// (x86-64 with a compiler that supports target attributes). On other
// hosts active() is constant Scalar and the wrappers compile straight
// through to the scalar templates.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GEP_SIMD_X86 1
#else
#define GEP_SIMD_X86 0
#endif

namespace gep::simd {

enum class Level { Scalar = 0, Avx2 = 1 };

// The level leaf kernels dispatch to right now (env > forced > CPUID).
Level active();

// True when the host can execute the AVX2/FMA kernels at all,
// independent of $GEP_FORCE_SCALAR and force_level overrides.
bool avx2_available();

// True when $GEP_FORCE_SCALAR=1 pinned the process to the scalar path.
bool forced_scalar_env();

// In-process override for tests and benches (measuring both paths in
// one binary). Clamped: forcing Avx2 on a host without AVX2+FMA leaves
// Scalar active. $GEP_FORCE_SCALAR=1 still wins. clear_forced_level()
// returns to CPUID-based selection.
void force_level(Level l);
void clear_forced_level();

const char* level_name(Level l);
inline const char* active_name() { return level_name(active()); }

// Bumps obs counter kernels.dispatch.{avx2,scalar} — one tick per leaf
// kernel invocation, so traces and BENCH JSON show which path ran.
void note_leaf(Level l);

}  // namespace gep::simd
