// Shared register-blocked GEMM micro-kernel layer (BLIS-style).
//
// One packing format and one micro-tile shape serve both the cache-aware
// BLAS baseline (blas/dgemm.cpp macro loops) and the typed engine's
// D-kind leaf routing (simd/gemm_leaf.*): A blocks are packed into
// MR-row column panels, B blocks into NR-column row panels, both
// zero-padded to full micro-tile width so the interior micro-kernel
// never sees a fringe.
//
// Micro-tile shape: MR x NR = 6 x 8 for double (12 ymm accumulators +
// 2 B vectors + 1 broadcast = 15 of 16 registers, the AVX2 analogue of
// BLIS's haswell dgemm kernel) and 6 x 16 for float. The AVX2/FMA
// micro-kernels live in kernels_avx2.cpp behind runtime dispatch; the
// scalar reference micro-kernels below keep the identical contract for
// non-AVX2 hosts and the $GEP_FORCE_SCALAR leg.
#pragma once

#include <algorithm>
#include <cstddef>

#include "matrix/matrix.hpp"
#include "util/aligned.hpp"

namespace gep::simd {

// Micro-tile rows (shared) and columns (per element type).
inline constexpr index_t kMicroRows = 6;

template <class T>
constexpr index_t micro_cols() {
  return sizeof(T) == 4 ? 16 : 8;
}

// Packs an mc x kc block of row-major A (leading dimension lda) into
// kMicroRows-wide column panels: panel p0 holds rows [p0*MR, p0*MR+MR)
// laid out column-by-column, short panels zero-padded.
template <class T>
void pack_a(const T* a, index_t lda, index_t mc, index_t kc, T* dst) {
  constexpr index_t MR = kMicroRows;
  for (index_t i0 = 0; i0 < mc; i0 += MR) {
    const index_t mr = std::min(MR, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t i = 0; i < MR; ++i) {
        *dst++ = (i < mr) ? a[(i0 + i) * lda + p] : T{};
      }
    }
  }
}

// Largest k-extent a single pack_a_scaled call accepts (= the k-chunk
// the leaf GEMM blocks by; gemm_leaf.cpp asserts it never exceeds this).
inline constexpr index_t kMaxPanelK = 256;

// pack_a with the Gaussian-elimination multiplier fold: packs
// a[i][p] * (1 / w[p][p]) (w strided by sw), so a D-kind GE leaf
// becomes the pure GEMM x -= t * v. The reciprocal is hoisted — kc
// divisions instead of the scalar kernel's mc * kc — which changes each
// multiplier by at most one ulp relative to the scalar division; the
// GE kernels are tolerance-equivalent (not bit-exact) across dispatch
// levels precisely to license this (see docs/KERNELS.md).
template <class T>
void pack_a_scaled(const T* a, index_t lda, index_t mc, index_t kc,
                   const T* w, index_t sw, T* dst) {
  constexpr index_t MR = kMicroRows;
  T inv[kMaxPanelK];
  for (index_t p = 0; p < kc; ++p) inv[p] = T{1} / w[p * sw + p];
  for (index_t i0 = 0; i0 < mc; i0 += MR) {
    const index_t mr = std::min(MR, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      const T t = inv[p];
      for (index_t i = 0; i < MR; ++i) {
        *dst++ = (i < mr) ? a[(i0 + i) * lda + p] * t : T{};
      }
    }
  }
}

// Row-chunk size for pack_b traversal: strip-outer order alone reads NR
// elements then jumps a whole row stride (TLB-miss per touch on large
// ldb), row-outer order alone scatters writes across every panel.
// Chunking kPackBRows rows and sweeping panels inside the chunk keeps
// the source slab cache-resident across panels and each panel's write
// run sequential — ~25% faster than either pure order at ldb = 1024,
// and within ~25% of this-host memcpy bandwidth (the practical floor).
inline constexpr index_t kPackBRows = 32;

// Packs a kc x nc block of row-major B (leading dimension ldb) into
// NR-column row panels, zero-padded.
template <class T>
void pack_b(const T* b, index_t ldb, index_t kc, index_t nc, T* dst) {
  constexpr index_t NR = micro_cols<T>();
  for (index_t p0 = 0; p0 < kc; p0 += kPackBRows) {
    const index_t pe = std::min(p0 + kPackBRows, kc);
    for (index_t j0 = 0; j0 < nc; j0 += NR) {
      const index_t nr = std::min(NR, nc - j0);
      T* dp = dst + (j0 / NR) * kc * NR + p0 * NR;
      if (nr == NR) {
        for (index_t p = p0; p < pe; ++p, dp += NR) {
          const T* bp = b + p * ldb + j0;
          for (index_t j = 0; j < NR; ++j) dp[j] = bp[j];
        }
      } else {
        for (index_t p = p0; p < pe; ++p, dp += NR) {
          const T* bp = b + p * ldb + j0;
          for (index_t j = 0; j < nr; ++j) dp[j] = bp[j];
          for (index_t j = nr; j < NR; ++j) dp[j] = T{};
        }
      }
    }
  }
}

// Scalar reference micro-kernel:
// c(MR x NR, row-major ldc) += alpha * packed_a(kc x MR)^T * packed_b.
// The accumulators live in a local array the compiler keeps in
// registers; `restrict` holds because packed panels never alias C.
template <class T>
void ukr_scalar(index_t kc, T alpha, const T* __restrict pa,
                const T* __restrict pb, T* __restrict c, index_t ldc) {
  constexpr index_t MR = kMicroRows;
  constexpr index_t NR = micro_cols<T>();
  T acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* a = pa + p * MR;
    const T* b = pb + p * NR;
    for (index_t i = 0; i < MR; ++i) {
      for (index_t j = 0; j < NR; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  for (index_t i = 0; i < MR; ++i) {
    for (index_t j = 0; j < NR; ++j) c[i * ldc + j] += alpha * acc[i][j];
  }
}

// Fringe micro-kernel for tiles smaller than MR x NR. The panels are
// zero-padded so the full-width accumulation is safe; only the valid
// mr x nr corner is written back. Same `restrict` contract as above —
// the packed panels are private buffers, never aliases of C.
template <class T>
void ukr_scalar_edge(index_t kc, T alpha, const T* __restrict pa,
                     const T* __restrict pb, T* __restrict c, index_t ldc,
                     index_t mr, index_t nr) {
  constexpr index_t MR = kMicroRows;
  constexpr index_t NR = micro_cols<T>();
  T acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* a = pa + p * MR;
    const T* b = pb + p * NR;
    for (index_t i = 0; i < mr; ++i) {
      for (index_t j = 0; j < nr; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  for (index_t i = 0; i < mr; ++i) {
    for (index_t j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[i][j];
  }
}

// Number of packed elements pack_a / pack_b emit for an mc x kc (resp.
// kc x nc) block — buffer sizing for callers.
template <class T>
constexpr index_t packed_a_size(index_t mc, index_t kc) {
  return ((mc + kMicroRows - 1) / kMicroRows) * kMicroRows * kc;
}
template <class T>
constexpr index_t packed_b_size(index_t kc, index_t nc) {
  constexpr index_t NR = micro_cols<T>();
  return ((nc + NR - 1) / NR) * NR * kc;
}

// --- Strassen fusion hooks -------------------------------------------------
//
// The Strassen layer (simd/strassen.*) never materializes operand sums
// like A00+A11: each of its multiplies is a packed GEMM whose A/B
// operand is a ±1 linear combination of up to kMaxGemmOperands source
// quadrants (formed on the fly while packing) and whose product is
// scattered to up to kMaxGemmOperands C quadrants with ±1 coefficients
// (applied in the micro-kernel's writeback). Two Strassen levels square
// the per-multiply operand count from <=2 to <=4, hence the cap.

inline constexpr int kMaxGemmOperands = 4;

// One source quadrant of a packed operand. `inv`, when non-null, points
// at per-column reciprocals (the Gaussian-elimination multiplier fold of
// pack_a_scaled, hoisted so each quadrant indexes the shared reciprocal
// vector at its own column offset); only A sources use it.
template <class T>
struct PackSrc {
  const T* p;
  T coeff;
  const T* inv;
};

// One destination quadrant of a micro-tile writeback.
template <class T>
struct GemmDest {
  T* c;
  T coeff;
};

namespace detail_pack {

// Compile-time-NS bodies: source pointers and coefficients live in
// locals (the aliasing-opaque PackSrc fields would otherwise reload
// every element), and the inv indirection is a template branch, not a
// per-element one. NS <= kMaxGemmOperands.
template <class T, int NS, bool Inv>
void pack_a_multi_fixed(const PackSrc<T>* s, index_t lda, index_t mc,
                        index_t kc, T* dst) {
  constexpr index_t MR = kMicroRows;
  const T* src[NS];
  const T* inv[NS];
  T co[NS];
  for (int q = 0; q < NS; ++q) {
    src[q] = s[q].p;
    inv[q] = s[q].inv;
    co[q] = s[q].coeff;
  }
  for (index_t i0 = 0; i0 < mc; i0 += MR) {
    const index_t mr = std::min(MR, mc - i0);
    if (mr == MR) {
      for (index_t p = 0; p < kc; ++p) {
        for (index_t i = 0; i < MR; ++i) {
          T acc{};
          for (int q = 0; q < NS; ++q) {
            T v = src[q][(i0 + i) * lda + p];
            if constexpr (Inv) v *= inv[q][p];
            acc += co[q] * v;
          }
          *dst++ = acc;
        }
      }
    } else {
      for (index_t p = 0; p < kc; ++p) {
        for (index_t i = 0; i < MR; ++i) {
          T acc{};
          if (i < mr) {
            for (int q = 0; q < NS; ++q) {
              T v = src[q][(i0 + i) * lda + p];
              if constexpr (Inv) v *= inv[q][p];
              acc += co[q] * v;
            }
          }
          *dst++ = acc;
        }
      }
    }
  }
}

// Same chunked traversal as pack_b (see kPackBRows).
template <class T, int NS>
void pack_b_multi_fixed(const PackSrc<T>* s, index_t ldb, index_t kc,
                        index_t nc, T* dst) {
  constexpr index_t NR = micro_cols<T>();
  const T* src[NS];
  T co[NS];
  for (int q = 0; q < NS; ++q) {
    src[q] = s[q].p;
    co[q] = s[q].coeff;
  }
  for (index_t p0 = 0; p0 < kc; p0 += kPackBRows) {
    const index_t pe = std::min(p0 + kPackBRows, kc);
    for (index_t j0 = 0; j0 < nc; j0 += NR) {
      const index_t nr = std::min(NR, nc - j0);
      T* dp = dst + (j0 / NR) * kc * NR + p0 * NR;
      for (index_t p = p0; p < pe; ++p, dp += NR) {
        for (index_t j = 0; j < nr; ++j) {
          T acc = co[0] * src[0][p * ldb + j0 + j];
          for (int q = 1; q < NS; ++q) {
            acc += co[q] * src[q][p * ldb + j0 + j];
          }
          dp[j] = acc;
        }
        for (index_t j = nr; j < NR; ++j) dp[j] = T{};
      }
    }
  }
}

}  // namespace detail_pack

// pack_a over a ±1 linear combination of source quadrants (all sharing
// lda). Layout is identical to pack_a, so the micro-kernels are reused
// unchanged. Sources must carry `inv` uniformly (all null or all
// non-null), which the Strassen layer guarantees.
template <class T>
void pack_a_multi(const PackSrc<T>* s, int ns, index_t lda, index_t mc,
                  index_t kc, T* dst) {
  const bool inv = s[0].inv != nullptr;
  switch (ns) {
    case 1:
      inv ? detail_pack::pack_a_multi_fixed<T, 1, true>(s, lda, mc, kc, dst)
          : detail_pack::pack_a_multi_fixed<T, 1, false>(s, lda, mc, kc, dst);
      return;
    case 2:
      inv ? detail_pack::pack_a_multi_fixed<T, 2, true>(s, lda, mc, kc, dst)
          : detail_pack::pack_a_multi_fixed<T, 2, false>(s, lda, mc, kc, dst);
      return;
    case 3:
      inv ? detail_pack::pack_a_multi_fixed<T, 3, true>(s, lda, mc, kc, dst)
          : detail_pack::pack_a_multi_fixed<T, 3, false>(s, lda, mc, kc, dst);
      return;
    default:
      inv ? detail_pack::pack_a_multi_fixed<T, 4, true>(s, lda, mc, kc, dst)
          : detail_pack::pack_a_multi_fixed<T, 4, false>(s, lda, mc, kc, dst);
      return;
  }
}

// pack_b over a ±1 linear combination of source quadrants (shared ldb).
template <class T>
void pack_b_multi(const PackSrc<T>* s, int ns, index_t ldb, index_t kc,
                  index_t nc, T* dst) {
  switch (ns) {
    case 1:
      detail_pack::pack_b_multi_fixed<T, 1>(s, ldb, kc, nc, dst);
      return;
    case 2:
      detail_pack::pack_b_multi_fixed<T, 2>(s, ldb, kc, nc, dst);
      return;
    case 3:
      detail_pack::pack_b_multi_fixed<T, 3>(s, ldb, kc, nc, dst);
      return;
    default:
      detail_pack::pack_b_multi_fixed<T, 4>(s, ldb, kc, nc, dst);
      return;
  }
}

// Multi-destination scalar micro-kernel: accumulates one micro-tile
// product, then streams it to every destination quadrant as
// c_q += alpha * coeff_q * acc. The single product is rounded once and
// shared, so all destinations see the identical tile.
template <class T>
void ukr_scalar_multi(index_t kc, T alpha, const T* __restrict pa,
                      const T* __restrict pb, const GemmDest<T>* dst, int nd,
                      index_t ldc) {
  constexpr index_t MR = kMicroRows;
  constexpr index_t NR = micro_cols<T>();
  T acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* a = pa + p * MR;
    const T* b = pb + p * NR;
    for (index_t i = 0; i < MR; ++i) {
      for (index_t j = 0; j < NR; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  for (int q = 0; q < nd; ++q) {
    const T s = alpha * dst[q].coeff;
    T* c = dst[q].c;
    for (index_t i = 0; i < MR; ++i) {
      for (index_t j = 0; j < NR; ++j) c[i * ldc + j] += s * acc[i][j];
    }
  }
}

template <class T>
void ukr_scalar_multi_edge(index_t kc, T alpha, const T* __restrict pa,
                           const T* __restrict pb, const GemmDest<T>* dst,
                           int nd, index_t ldc, index_t mr, index_t nr) {
  constexpr index_t MR = kMicroRows;
  constexpr index_t NR = micro_cols<T>();
  T acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* a = pa + p * MR;
    const T* b = pb + p * NR;
    for (index_t i = 0; i < mr; ++i) {
      for (index_t j = 0; j < nr; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  for (int q = 0; q < nd; ++q) {
    const T s = alpha * dst[q].coeff;
    T* c = dst[q].c;
    for (index_t i = 0; i < mr; ++i) {
      for (index_t j = 0; j < nr; ++j) c[i * ldc + j] += s * acc[i][j];
    }
  }
}

// Grow-on-demand thread-local packing panels (index 0 = A, 1 = B),
// shared by the classic leaf GEMM (gemm_leaf.cpp) and the Strassen
// macro loops (strassen.cpp) — they never run nested, and thread-local
// storage keeps the parallel typed engine's workers from sharing.
template <class T>
T* packing_buffer(int which, std::size_t count) {
  thread_local AlignedPtr<T> buf[2];
  thread_local std::size_t cap[2] = {0, 0};
  if (cap[which] < count) {
    buf[which] = make_aligned<T>(count);
    cap[which] = count;
  }
  return buf[which].get();
}

}  // namespace gep::simd
