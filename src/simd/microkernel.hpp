// Shared register-blocked GEMM micro-kernel layer (BLIS-style).
//
// One packing format and one micro-tile shape serve both the cache-aware
// BLAS baseline (blas/dgemm.cpp macro loops) and the typed engine's
// D-kind leaf routing (simd/gemm_leaf.*): A blocks are packed into
// MR-row column panels, B blocks into NR-column row panels, both
// zero-padded to full micro-tile width so the interior micro-kernel
// never sees a fringe.
//
// Micro-tile shape: MR x NR = 6 x 8 for double (12 ymm accumulators +
// 2 B vectors + 1 broadcast = 15 of 16 registers, the AVX2 analogue of
// BLIS's haswell dgemm kernel) and 6 x 16 for float. The AVX2/FMA
// micro-kernels live in kernels_avx2.cpp behind runtime dispatch; the
// scalar reference micro-kernels below keep the identical contract for
// non-AVX2 hosts and the $GEP_FORCE_SCALAR leg.
#pragma once

#include <algorithm>

#include "matrix/matrix.hpp"

namespace gep::simd {

// Micro-tile rows (shared) and columns (per element type).
inline constexpr index_t kMicroRows = 6;

template <class T>
constexpr index_t micro_cols() {
  return sizeof(T) == 4 ? 16 : 8;
}

// Packs an mc x kc block of row-major A (leading dimension lda) into
// kMicroRows-wide column panels: panel p0 holds rows [p0*MR, p0*MR+MR)
// laid out column-by-column, short panels zero-padded.
template <class T>
void pack_a(const T* a, index_t lda, index_t mc, index_t kc, T* dst) {
  constexpr index_t MR = kMicroRows;
  for (index_t i0 = 0; i0 < mc; i0 += MR) {
    const index_t mr = std::min(MR, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t i = 0; i < MR; ++i) {
        *dst++ = (i < mr) ? a[(i0 + i) * lda + p] : T{};
      }
    }
  }
}

// Largest k-extent a single pack_a_scaled call accepts (= the k-chunk
// the leaf GEMM blocks by; gemm_leaf.cpp asserts it never exceeds this).
inline constexpr index_t kMaxPanelK = 256;

// pack_a with the Gaussian-elimination multiplier fold: packs
// a[i][p] * (1 / w[p][p]) (w strided by sw), so a D-kind GE leaf
// becomes the pure GEMM x -= t * v. The reciprocal is hoisted — kc
// divisions instead of the scalar kernel's mc * kc — which changes each
// multiplier by at most one ulp relative to the scalar division; the
// GE kernels are tolerance-equivalent (not bit-exact) across dispatch
// levels precisely to license this (see docs/KERNELS.md).
template <class T>
void pack_a_scaled(const T* a, index_t lda, index_t mc, index_t kc,
                   const T* w, index_t sw, T* dst) {
  constexpr index_t MR = kMicroRows;
  T inv[kMaxPanelK];
  for (index_t p = 0; p < kc; ++p) inv[p] = T{1} / w[p * sw + p];
  for (index_t i0 = 0; i0 < mc; i0 += MR) {
    const index_t mr = std::min(MR, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      const T t = inv[p];
      for (index_t i = 0; i < MR; ++i) {
        *dst++ = (i < mr) ? a[(i0 + i) * lda + p] * t : T{};
      }
    }
  }
}

// Packs a kc x nc block of row-major B (leading dimension ldb) into
// NR-column row panels, zero-padded.
template <class T>
void pack_b(const T* b, index_t ldb, index_t kc, index_t nc, T* dst) {
  constexpr index_t NR = micro_cols<T>();
  for (index_t j0 = 0; j0 < nc; j0 += NR) {
    const index_t nr = std::min(NR, nc - j0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t j = 0; j < NR; ++j) {
        *dst++ = (j < nr) ? b[p * ldb + j0 + j] : T{};
      }
    }
  }
}

// Scalar reference micro-kernel:
// c(MR x NR, row-major ldc) += alpha * packed_a(kc x MR)^T * packed_b.
// The accumulators live in a local array the compiler keeps in
// registers; `restrict` holds because packed panels never alias C.
template <class T>
void ukr_scalar(index_t kc, T alpha, const T* __restrict pa,
                const T* __restrict pb, T* __restrict c, index_t ldc) {
  constexpr index_t MR = kMicroRows;
  constexpr index_t NR = micro_cols<T>();
  T acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* a = pa + p * MR;
    const T* b = pb + p * NR;
    for (index_t i = 0; i < MR; ++i) {
      for (index_t j = 0; j < NR; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  for (index_t i = 0; i < MR; ++i) {
    for (index_t j = 0; j < NR; ++j) c[i * ldc + j] += alpha * acc[i][j];
  }
}

// Fringe micro-kernel for tiles smaller than MR x NR. The panels are
// zero-padded so the full-width accumulation is safe; only the valid
// mr x nr corner is written back. Same `restrict` contract as above —
// the packed panels are private buffers, never aliases of C.
template <class T>
void ukr_scalar_edge(index_t kc, T alpha, const T* __restrict pa,
                     const T* __restrict pb, T* __restrict c, index_t ldc,
                     index_t mr, index_t nr) {
  constexpr index_t MR = kMicroRows;
  constexpr index_t NR = micro_cols<T>();
  T acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* a = pa + p * MR;
    const T* b = pb + p * NR;
    for (index_t i = 0; i < mr; ++i) {
      for (index_t j = 0; j < nr; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  for (index_t i = 0; i < mr; ++i) {
    for (index_t j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[i][j];
  }
}

// Number of packed elements pack_a / pack_b emit for an mc x kc (resp.
// kc x nc) block — buffer sizing for callers.
template <class T>
constexpr index_t packed_a_size(index_t mc, index_t kc) {
  return ((mc + kMicroRows - 1) / kMicroRows) * kMicroRows * kc;
}
template <class T>
constexpr index_t packed_b_size(index_t kc, index_t nc) {
  constexpr index_t NR = micro_cols<T>();
  return ((nc + NR - 1) / NR) * NR * kc;
}

}  // namespace gep::simd
