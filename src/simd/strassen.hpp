// Strassen-accelerated packed GEMM for large D-kind leaves and the
// cache-aware BLAS baseline.
//
// One or two levels of Strassen's 7-multiply recursion run directly on
// the BLIS-style packed engine (simd/microkernel.hpp): every one of the
// 7 (resp. 49) sub-multiplies is a packed GEMM whose operand sums
// (A11+A22, B21-B11, ...) are formed on the fly inside pack_a/pack_b
// (pack_a_multi / pack_b_multi) and whose product is scattered to its C
// quadrants with ±1 coefficients inside the micro-kernel writeback
// (ukr_*_multi). There are no standalone add/copy sweeps and no
// quadrant temporaries: workspace is exactly the thread-local packed
// panels the classic path already owns.
//
// Routing: gemm_tile / gemm_tile_scaled (typed-engine D-kind leaves)
// and blas::dgemm consult strassen_gemm first; it engages only when
// strassen_levels() > 0 and min(m, n, k) >= strassen_min_m(), and
// returns false otherwise so the caller falls through to the classic
// packed path — sub-threshold results stay bit-identical to a build
// without this layer. Odd extents are handled by dynamic peeling (even
// core via Strassen, one-row/column fix-up GEMMs via the packed path).
//
// Numerics: Strassen trades the classic O(k·eps) forward error for a
// larger-constant bound (×~3 per level in practice); results remain
// deterministic run-to-run at a fixed dispatch level. See
// docs/KERNELS.md ("Fast matrix multiplication") for the measured
// crossover and error data.
#pragma once

#include "matrix/matrix.hpp"

namespace gep::simd {

// Hard cap on recursion depth: two levels keep every fused operand list
// within kMaxGemmOperands (each level at most doubles it).
inline constexpr int kStrassenMaxLevels = 2;

// Defaults behind the env knobs, both measured on the dev/CI host with
// bench_kernels --tune-strassen: one level breaks even near edge 320
// (>= 1.0x from 384 up, 1.10-1.16x at 1024-2048), a second level loses to one
// level at every size tried up to 4096 on this bandwidth-limited host
// (its 4-operand packs triple the quadrant read traffic), so the
// default depth is 1. GEP_STRASSEN_LEVELS=2 opts into the second level
// for hosts where compute, not bandwidth, dominates.
inline constexpr int kStrassenLevelsDefault = 1;
inline constexpr index_t kStrassenMinMDefault = 384;

// Smallest accepted strassen_min_m: below this the sub-multiplies
// (edge >= min_m / 2) are too small to amortize even one packing pass.
inline constexpr index_t kStrassenMinMFloor = 16;

// Per-run GEMM tuning, threaded from apps::RunOptions and
// extmem::OocTypedOptions. -1 means "inherit" the process default
// ($GEP_STRASSEN_LEVELS / $GEP_STRASSEN_MIN_M / built-in).
struct GemmOptions {
  int strassen_levels = -1;
  index_t strassen_min_m = -1;
};

// Resolved configuration: scoped override if installed, else env knob,
// else built-in default. Levels are clamped to [0, kStrassenMaxLevels],
// min_m to >= kStrassenMinMFloor.
int strassen_levels();
index_t strassen_min_m();

// Installs opts as the process-wide override (fields left at -1 keep
// inheriting the env/default). Drivers install this around a run;
// concurrent runs with conflicting options race benignly (same caveat
// as force_level), so pin via env for multi-job processes.
void set_gemm_options(const GemmOptions& opts);
void clear_gemm_options();

class ScopedGemmOptions {
 public:
  explicit ScopedGemmOptions(const GemmOptions& opts);
  ~ScopedGemmOptions();
  ScopedGemmOptions(const ScopedGemmOptions&) = delete;
  ScopedGemmOptions& operator=(const ScopedGemmOptions&) = delete;

 private:
  int prev_levels_;
  index_t prev_min_m_;
};

// Number of Strassen levels the current configuration applies to an
// m x k by k x n product (0 = classic path).
int strassen_planned_levels(index_t m, index_t n, index_t k);

// c(m x n, row-major ldc) += alpha * a(m x k, lda) * b(k x n, ldb) via
// Strassen. Returns false — with c untouched — when the configuration
// or problem size does not engage at least one level; the caller then
// runs its classic path. c must not alias a or b.
bool strassen_gemm(index_t m, index_t n, index_t k, double alpha,
                   const double* a, index_t lda, const double* b, index_t ldb,
                   double* c, index_t ldc);
bool strassen_gemm(index_t m, index_t n, index_t k, float alpha,
                   const float* a, index_t lda, const float* b, index_t ldb,
                   float* c, index_t ldc);

// Strassen form of gemm_tile_scaled: x(m x m) -= (u * diag(w)^-1) * v.
// The per-column reciprocals are hoisted once (exactly pack_a_scaled's
// rounding) and every packed A quadrant indexes them at its own column
// offset. Same engage-or-return-false contract as strassen_gemm.
bool strassen_gemm_scaled(double* x, const double* u, const double* v,
                          const double* w, index_t m, index_t sx, index_t su,
                          index_t sv, index_t sw);
bool strassen_gemm_scaled(float* x, const float* u, const float* v,
                          const float* w, index_t m, index_t sx, index_t su,
                          index_t sv, index_t sw);

}  // namespace gep::simd
