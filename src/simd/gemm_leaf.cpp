#include "simd/gemm_leaf.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "simd/dispatch.hpp"
#include "simd/kernels_avx2.hpp"
#include "simd/microkernel.hpp"
#include "simd/strassen.hpp"
#include "util/aligned.hpp"

namespace gep::simd {
namespace {

// k-chunk for panel packing. Leaf tiles are almost always <= this, so B
// packs exactly once per leaf call and is reused across all A panels.
// (The thread-local packing panels live in microkernel.hpp's
// packing_buffer, shared with the Strassen layer.)
constexpr index_t kGemmKc = kMaxPanelK;
static_assert(kGemmKc <= kMaxPanelK,
              "pack_a_scaled's reciprocal buffer is sized for kMaxPanelK");

// Shared macro-loop: x += alpha * packed(u') * v, where u' is either u
// or u scaled by 1/diag(w) (Scaled = GE multiplier fold).
template <class T, bool Scaled>
void gemm_impl(T* x, const T* u, const T* v, const T* w, index_t m,
               index_t sx, index_t su, index_t sv, index_t sw, T alpha) {
  constexpr index_t MR = kMicroRows;
  constexpr index_t NR = micro_cols<T>();
  const index_t kc = std::min(m, kGemmKc);
  T* pa = packing_buffer<T>(0, static_cast<std::size_t>(packed_a_size<T>(m, kc)));
  T* pb = packing_buffer<T>(1, static_cast<std::size_t>(packed_b_size<T>(kc, m)));
#if GEP_SIMD_X86
  const bool use_avx2 = active() == Level::Avx2;
#else
  const bool use_avx2 = false;
#endif

  for (index_t pc = 0; pc < m; pc += kc) {
    const index_t kcb = std::min(kc, m - pc);
    pack_b(v + pc * sv, sv, kcb, m, pb);
    if constexpr (Scaled) {
      pack_a_scaled(u + pc, su, m, kcb, w + pc * sw + pc, sw, pa);
    } else {
      pack_a(u + pc, su, m, kcb, pa);
    }
    for (index_t jr = 0; jr < m; jr += NR) {
      const index_t nr = std::min(NR, m - jr);
      const T* pbj = pb + (jr / NR) * kcb * NR;
      for (index_t ir = 0; ir < m; ir += MR) {
        const index_t mr = std::min(MR, m - ir);
        const T* pai = pa + (ir / MR) * kcb * MR;
        T* cij = x + ir * sx + jr;
#if GEP_SIMD_X86
        if (use_avx2) {
          if (mr == MR && nr == NR) {
            ukr_avx2(kcb, alpha, pai, pbj, cij, sx);
          } else {
            ukr_avx2_edge(kcb, alpha, pai, pbj, cij, sx, mr, nr);
          }
          continue;
        }
#endif
        if (mr == MR && nr == NR) {
          ukr_scalar(kcb, alpha, pai, pbj, cij, sx);
        } else {
          ukr_scalar_edge(kcb, alpha, pai, pbj, cij, sx, mr, nr);
        }
      }
    }
  }
  (void)use_avx2;
}

}  // namespace

// Each entry point consults the Strassen layer first; it engages only
// above the measured crossover (strassen_min_m) and returns false
// otherwise, keeping sub-threshold leaves bit-identical to the classic
// packed path.
void gemm_tile(double* x, const double* u, const double* v, index_t m,
               index_t sx, index_t su, index_t sv, double alpha) {
  if (strassen_gemm(m, m, m, alpha, u, su, v, sv, x, sx)) return;
  gemm_impl<double, false>(x, u, v, nullptr, m, sx, su, sv, 0, alpha);
}
void gemm_tile(float* x, const float* u, const float* v, index_t m,
               index_t sx, index_t su, index_t sv, float alpha) {
  if (strassen_gemm(m, m, m, alpha, u, su, v, sv, x, sx)) return;
  gemm_impl<float, false>(x, u, v, nullptr, m, sx, su, sv, 0, alpha);
}

void gemm_tile_scaled(double* x, const double* u, const double* v,
                      const double* w, index_t m, index_t sx, index_t su,
                      index_t sv, index_t sw) {
  if (strassen_gemm_scaled(x, u, v, w, m, sx, su, sv, sw)) return;
  gemm_impl<double, true>(x, u, v, w, m, sx, su, sv, sw, -1.0);
}
void gemm_tile_scaled(float* x, const float* u, const float* v,
                      const float* w, index_t m, index_t sx, index_t su,
                      index_t sv, index_t sw) {
  if (strassen_gemm_scaled(x, u, v, w, m, sx, su, sv, sw)) return;
  gemm_impl<float, true>(x, u, v, w, m, sx, su, sv, sw, -1.0f);
}

}  // namespace gep::simd
