#include "simd/strassen.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/registry.hpp"
#include "simd/dispatch.hpp"
#include "simd/gemm_leaf.hpp"
#include "simd/kernels_avx2.hpp"
#include "simd/microkernel.hpp"
#include "util/aligned.hpp"

namespace gep::simd {
namespace {

long env_long(const char* name, long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  return end == s ? fallback : v;
}

int env_strassen_levels() {
  static const int v = static_cast<int>(std::clamp<long>(
      env_long("GEP_STRASSEN_LEVELS", kStrassenLevelsDefault), 0,
      kStrassenMaxLevels));
  return v;
}

index_t env_strassen_min_m() {
  static const index_t v = std::max<long>(
      env_long("GEP_STRASSEN_MIN_M", kStrassenMinMDefault),
      kStrassenMinMFloor);
  return v;
}

// Process-wide overrides installed by set_gemm_options; -1 = inherit.
std::atomic<int> g_levels_override{-1};
std::atomic<index_t> g_min_m_override{-1};

// --- generalized packed GEMM ----------------------------------------------
//
// C_q += alpha * coeff_q * (Σ_s a_s) (Σ_t b_t) over row-major blocks
// sharing lda / ldb / ldc. Macro blocking mirrors blas::GemmBlocking
// (mc x kc A blocks in L2, kc x nc B panels in L3); the packing passes
// form the operand sums, the micro-kernel writeback scatters the
// product — Strassen's 15 additions ride inside passes the classic
// path already makes.

// mc and kc are twice the classic path's 128 x 256: multi-source packs
// and multi-destination writebacks make operand passes the scarce
// resource (a sub-multiply streams up to 4 quadrants per pack and per
// k-chunk), so the Strassen macro loop trades micro-panel L1 residency
// for fewer passes — kc = 512 halves the C writebacks, mc = 256 halves
// the B-panel sweeps, and the packed A block (256 x 512 doubles = 1 MB)
// still fits a 2 MB L2. Values picked by a paired sweep on the dev/CI
// host (see docs/KERNELS.md).
constexpr index_t kStrassenMc = 256;
constexpr index_t kStrassenKc = 512;
constexpr index_t kStrassenNc = 1024;

template <class T>
void gemm_packed_multi(index_t m, index_t n, index_t k, T alpha,
                       const PackSrc<T>* as, int na, index_t lda,
                       const PackSrc<T>* bs, int nb, index_t ldb,
                       const GemmDest<T>* cs, int nd, index_t ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  constexpr index_t MR = kMicroRows;
  constexpr index_t NR = micro_cols<T>();
  const index_t mc = std::min(m, kStrassenMc);
  const index_t kc = std::min(k, kStrassenKc);
  const index_t nc = std::min(n, kStrassenNc);
  T* pa = packing_buffer<T>(
      0, static_cast<std::size_t>(packed_a_size<T>(mc, kc)));
  T* pb = packing_buffer<T>(
      1, static_cast<std::size_t>(packed_b_size<T>(kc, nc)));
#if GEP_SIMD_X86
  const bool use_avx2 = active() == Level::Avx2;
#else
  const bool use_avx2 = false;
#endif

  PackSrc<T> ab[kMaxGemmOperands];
  PackSrc<T> bb[kMaxGemmOperands];
  GemmDest<T> db[kMaxGemmOperands];
  for (index_t jc = 0; jc < n; jc += nc) {
    const index_t ncb = std::min(nc, n - jc);
    for (index_t pc = 0; pc < k; pc += kc) {
      const index_t kcb = std::min(kc, k - pc);
      for (int q = 0; q < nb; ++q) {
        bb[q] = {bs[q].p + pc * ldb + jc, bs[q].coeff, nullptr};
      }
      pack_b_multi(bb, nb, ldb, kcb, ncb, pb);
      for (index_t ic = 0; ic < m; ic += mc) {
        const index_t mcb = std::min(mc, m - ic);
        for (int q = 0; q < na; ++q) {
          ab[q] = {as[q].p + ic * lda + pc, as[q].coeff,
                   as[q].inv == nullptr ? nullptr : as[q].inv + pc};
        }
        pack_a_multi(ab, na, lda, mcb, kcb, pa);
        for (index_t jr = 0; jr < ncb; jr += NR) {
          const index_t nr = std::min(NR, ncb - jr);
          const T* pbj = pb + (jr / NR) * kcb * NR;
          for (index_t ir = 0; ir < mcb; ir += MR) {
            const index_t mr = std::min(MR, mcb - ir);
            const T* pai = pa + (ir / MR) * kcb * MR;
            const index_t coff = (ic + ir) * ldc + jc + jr;
            for (int q = 0; q < nd; ++q) {
              db[q] = {cs[q].c + coff, cs[q].coeff};
            }
#if GEP_SIMD_X86
            if (use_avx2) {
              if (mr == MR && nr == NR) {
                ukr_avx2_multi(kcb, alpha, pai, pbj, db, nd, ldc);
              } else {
                ukr_avx2_multi_edge(kcb, alpha, pai, pbj, db, nd, ldc, mr,
                                    nr);
              }
              continue;
            }
#endif
            if (mr == MR && nr == NR) {
              ukr_scalar_multi(kcb, alpha, pai, pbj, db, nd, ldc);
            } else {
              ukr_scalar_multi_edge(kcb, alpha, pai, pbj, db, nd, ldc, mr,
                                    nr);
            }
          }
        }
      }
    }
  }
  (void)use_avx2;
}

// --- Strassen recursion ----------------------------------------------------
//
// Classic Strassen (not the Winograd variant): its 7-multiply schedule
// is the one whose fused form needs no intermediate at all — every
// multiply reads at most 2 A quadrants and 2 B quadrants and writes at
// most 2 C quadrants, so one packed-GEMM pass per multiply covers the
// whole update. Winograd's fewer additions only pay off when sums are
// materialized; fused, its U/W intermediates would force extra sweeps.
//
//   M1 = (A11+A22)(B11+B22) -> C11+, C22+
//   M2 = (A21+A22) B11      -> C21+, C22-
//   M3 = A11 (B12-B22)      -> C12+, C22+
//   M4 = A22 (B21-B11)      -> C11+, C21+
//   M5 = (A11+A12) B22      -> C11-, C12+
//   M6 = (A21-A11)(B11+B12) -> C22+
//   M7 = (A12-A22)(B21+B22) -> C11+

struct QuadTerm {
  int q;  // quadrant index: (row half) * 2 + (col half)
  int sign;
};

struct Multiply {
  QuadTerm a[2];
  int na;
  QuadTerm b[2];
  int nb;
  QuadTerm c[2];
  int nc;
};

constexpr Multiply kStrassenTable[7] = {
    {{{0, +1}, {3, +1}}, 2, {{0, +1}, {3, +1}}, 2, {{0, +1}, {3, +1}}, 2},
    {{{2, +1}, {3, +1}}, 2, {{0, +1}, {0, 0}}, 1, {{2, +1}, {3, -1}}, 2},
    {{{0, +1}, {0, 0}}, 1, {{1, +1}, {3, -1}}, 2, {{1, +1}, {3, +1}}, 2},
    {{{3, +1}, {0, 0}}, 1, {{2, +1}, {0, -1}}, 2, {{0, +1}, {2, +1}}, 2},
    {{{0, +1}, {1, +1}}, 2, {{3, +1}, {0, 0}}, 1, {{0, -1}, {1, +1}}, 2},
    {{{2, +1}, {0, -1}}, 2, {{0, +1}, {1, +1}}, 2, {{3, +1}, {0, 0}}, 1},
    {{{1, +1}, {3, -1}}, 2, {{2, +1}, {3, +1}}, 2, {{0, +1}, {0, 0}}, 1},
};

template <class T>
void strassen_node(int levels, index_t min_m, index_t m, index_t n,
                   index_t k, T alpha, const PackSrc<T>* as, int na,
                   index_t lda, const PackSrc<T>* bs, int nb, index_t ldb,
                   const GemmDest<T>* cs, int nd, index_t ldc) {
  if (levels <= 0 || std::min({m, n, k}) < min_m ||
      2 * na > kMaxGemmOperands || 2 * nb > kMaxGemmOperands ||
      2 * nd > kMaxGemmOperands) {
    gemm_packed_multi(m, n, k, alpha, as, na, lda, bs, nb, ldb, cs, nd, ldc);
    return;
  }
  const index_t mh = m / 2, nh = n / 2, kh = k / 2;
  const index_t mE = 2 * mh, nE = 2 * nh, kE = 2 * kh;

  for (const Multiply& mul : kStrassenTable) {
    PackSrc<T> a2[kMaxGemmOperands];
    PackSrc<T> b2[kMaxGemmOperands];
    GemmDest<T> c2[kMaxGemmOperands];
    int na2 = 0, nb2 = 0, nd2 = 0;
    for (int t = 0; t < mul.na; ++t) {
      const index_t off =
          (mul.a[t].q >> 1) * mh * lda + (mul.a[t].q & 1) * kh;
      const index_t ioff = (mul.a[t].q & 1) * kh;
      for (int s = 0; s < na; ++s) {
        a2[na2++] = {as[s].p + off,
                     static_cast<T>(mul.a[t].sign) * as[s].coeff,
                     as[s].inv == nullptr ? nullptr : as[s].inv + ioff};
      }
    }
    for (int t = 0; t < mul.nb; ++t) {
      const index_t off =
          (mul.b[t].q >> 1) * kh * ldb + (mul.b[t].q & 1) * nh;
      for (int s = 0; s < nb; ++s) {
        b2[nb2++] = {bs[s].p + off,
                     static_cast<T>(mul.b[t].sign) * bs[s].coeff, nullptr};
      }
    }
    for (int t = 0; t < mul.nc; ++t) {
      const index_t off =
          (mul.c[t].q >> 1) * mh * ldc + (mul.c[t].q & 1) * nh;
      for (int s = 0; s < nd; ++s) {
        c2[nd2++] = {cs[s].c + off,
                     static_cast<T>(mul.c[t].sign) * cs[s].coeff};
      }
    }
    strassen_node(levels - 1, min_m, mh, nh, kh, alpha, a2, na2, lda, b2,
                  nb2, ldb, c2, nd2, ldc);
  }

  // Dynamic peeling for odd extents: the even core above covers
  // C[0:mE, 0:nE] += A[0:mE, 0:kE] B[0:kE, 0:nE]; three thin packed
  // GEMMs on the original operand lists finish the product.
  if (kE < k) {  // last k column/row: rank-1 update of the even core
    PackSrc<T> at[kMaxGemmOperands];
    PackSrc<T> bt[kMaxGemmOperands];
    for (int s = 0; s < na; ++s) {
      at[s] = {as[s].p + kE, as[s].coeff,
               as[s].inv == nullptr ? nullptr : as[s].inv + kE};
    }
    for (int s = 0; s < nb; ++s) {
      bt[s] = {bs[s].p + kE * ldb, bs[s].coeff, nullptr};
    }
    gemm_packed_multi(mE, nE, k - kE, alpha, at, na, lda, bt, nb, ldb, cs,
                      nd, ldc);
  }
  if (nE < n) {  // last column of C, full k
    PackSrc<T> bt[kMaxGemmOperands];
    GemmDest<T> ct[kMaxGemmOperands];
    for (int s = 0; s < nb; ++s) {
      bt[s] = {bs[s].p + nE, bs[s].coeff, nullptr};
    }
    for (int s = 0; s < nd; ++s) ct[s] = {cs[s].c + nE, cs[s].coeff};
    gemm_packed_multi(mE, n - nE, k, alpha, as, na, lda, bt, nb, ldb, ct,
                      nd, ldc);
  }
  if (mE < m) {  // last row of C, full n and k
    PackSrc<T> at[kMaxGemmOperands];
    GemmDest<T> ct[kMaxGemmOperands];
    for (int s = 0; s < na; ++s) {
      at[s] = {as[s].p + mE * lda, as[s].coeff, as[s].inv};
    }
    for (int s = 0; s < nd; ++s) ct[s] = {cs[s].c + mE * ldc, cs[s].coeff};
    gemm_packed_multi(m - mE, n, k, alpha, at, na, lda, bs, nb, ldb, ct, nd,
                      ldc);
  }
}

struct StrassenCounters {
  obs::Counter calls = obs::counter("kernels.strassen.calls");
  obs::Counter levels = obs::counter("kernels.strassen.levels");
  obs::Counter fallbacks = obs::counter("kernels.strassen.fallbacks");
};

StrassenCounters& counters() {
  static StrassenCounters c;
  return c;
}

template <class T>
bool strassen_gemm_impl(index_t m, index_t n, index_t k, T alpha, const T* a,
                        index_t lda, const T* b, index_t ldb, T* c,
                        index_t ldc, const T* inv) {
  const int planned = strassen_planned_levels(m, n, k);
  if (planned == 0) {
    if (strassen_levels() > 0) counters().fallbacks.inc();
    return false;
  }
  counters().calls.inc();
  counters().levels.inc(static_cast<std::uint64_t>(planned));
  const PackSrc<T> as{a, T{1}, inv};
  const PackSrc<T> bs{b, T{1}, nullptr};
  const GemmDest<T> cs{c, T{1}};
  strassen_node(planned, strassen_min_m(), m, n, k, alpha, &as, 1, lda, &bs,
                1, ldb, &cs, 1, ldc);
  return true;
}

// Reciprocal vector for the scaled (GE multiplier fold) path: one
// division per k, identical rounding to pack_a_scaled's hoist.
template <class T>
T* reciprocal_buffer(const T* w, index_t sw, index_t k) {
  thread_local AlignedPtr<T> buf;
  thread_local std::size_t cap = 0;
  const auto count = static_cast<std::size_t>(k);
  if (cap < count) {
    buf = make_aligned<T>(count);
    cap = count;
  }
  for (index_t p = 0; p < k; ++p) buf[p] = T{1} / w[p * sw + p];
  return buf.get();
}

}  // namespace

int strassen_levels() {
  const int o = g_levels_override.load(std::memory_order_relaxed);
  if (o >= 0) return std::min(o, kStrassenMaxLevels);
  return env_strassen_levels();
}

index_t strassen_min_m() {
  const index_t o = g_min_m_override.load(std::memory_order_relaxed);
  if (o >= 0) return std::max(o, kStrassenMinMFloor);
  return env_strassen_min_m();
}

index_t gemm_min_m() {
  static const index_t v =
      std::max<long>(1, env_long("GEP_GEMM_MIN_M", kGemmMinM));
  return v;
}

void set_gemm_options(const GemmOptions& opts) {
  g_levels_override.store(opts.strassen_levels, std::memory_order_relaxed);
  g_min_m_override.store(opts.strassen_min_m, std::memory_order_relaxed);
}

void clear_gemm_options() {
  g_levels_override.store(-1, std::memory_order_relaxed);
  g_min_m_override.store(-1, std::memory_order_relaxed);
}

ScopedGemmOptions::ScopedGemmOptions(const GemmOptions& opts)
    : prev_levels_(g_levels_override.load(std::memory_order_relaxed)),
      prev_min_m_(g_min_m_override.load(std::memory_order_relaxed)) {
  set_gemm_options(opts);
}

ScopedGemmOptions::~ScopedGemmOptions() {
  g_levels_override.store(prev_levels_, std::memory_order_relaxed);
  g_min_m_override.store(prev_min_m_, std::memory_order_relaxed);
}

int strassen_planned_levels(index_t m, index_t n, index_t k) {
  const int levels = strassen_levels();
  const index_t min_m = strassen_min_m();
  int applied = 0;
  index_t edge = std::min({m, n, k});
  while (applied < levels && edge >= min_m) {
    ++applied;
    edge /= 2;
  }
  return applied;
}

bool strassen_gemm(index_t m, index_t n, index_t k, double alpha,
                   const double* a, index_t lda, const double* b, index_t ldb,
                   double* c, index_t ldc) {
  return strassen_gemm_impl<double>(m, n, k, alpha, a, lda, b, ldb, c, ldc,
                                    nullptr);
}
bool strassen_gemm(index_t m, index_t n, index_t k, float alpha,
                   const float* a, index_t lda, const float* b, index_t ldb,
                   float* c, index_t ldc) {
  return strassen_gemm_impl<float>(m, n, k, alpha, a, lda, b, ldb, c, ldc,
                                   nullptr);
}

bool strassen_gemm_scaled(double* x, const double* u, const double* v,
                          const double* w, index_t m, index_t sx, index_t su,
                          index_t sv, index_t sw) {
  if (strassen_planned_levels(m, m, m) == 0) {
    if (strassen_levels() > 0) counters().fallbacks.inc();
    return false;
  }
  const double* inv = reciprocal_buffer(w, sw, m);
  return strassen_gemm_impl<double>(m, m, m, -1.0, u, su, v, sv, x, sx, inv);
}
bool strassen_gemm_scaled(float* x, const float* u, const float* v,
                          const float* w, index_t m, index_t sx, index_t su,
                          index_t sv, index_t sw) {
  if (strassen_planned_levels(m, m, m) == 0) {
    if (strassen_levels() > 0) counters().fallbacks.inc();
    return false;
  }
  const float* inv = reciprocal_buffer(w, sw, m);
  return strassen_gemm_impl<float>(m, m, m, -1.0f, u, su, v, sv, x, sx, inv);
}

}  // namespace gep::simd
