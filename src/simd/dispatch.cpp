#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/registry.hpp"
#include "util/cpuinfo.hpp"

namespace gep::simd {
namespace {

// -1 = no override; otherwise a Level value.
std::atomic<int> g_forced{-1};

bool env_scalar() {
  static const bool v = [] {
    const char* s = std::getenv("GEP_FORCE_SCALAR");
    return s != nullptr && s[0] != '\0' && std::strcmp(s, "0") != 0;
  }();
  return v;
}

Level detected_level() {
  static const Level l =
      cpu_features().can_run_avx2() ? Level::Avx2 : Level::Scalar;
  return l;
}

}  // namespace

bool avx2_available() { return detected_level() == Level::Avx2; }

bool forced_scalar_env() { return env_scalar(); }

Level active() {
  if (env_scalar()) return Level::Scalar;
  const int f = g_forced.load(std::memory_order_relaxed);
  if (f >= 0) {
    const Level l = static_cast<Level>(f);
    return (l == Level::Avx2 && !avx2_available()) ? Level::Scalar : l;
  }
  return detected_level();
}

void force_level(Level l) {
  g_forced.store(static_cast<int>(l), std::memory_order_relaxed);
}

void clear_forced_level() { g_forced.store(-1, std::memory_order_relaxed); }

const char* level_name(Level l) {
  return l == Level::Avx2 ? "avx2" : "scalar";
}

void note_leaf(Level l) {
  static obs::Counter avx2 = obs::counter("kernels.dispatch.avx2");
  static obs::Counter scalar = obs::counter("kernels.dispatch.scalar");
  (l == Level::Avx2 ? avx2 : scalar).inc();
}

}  // namespace gep::simd
