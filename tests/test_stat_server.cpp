// Stat-server matrix: the Prometheus exposition formatter (golden
// format + snapshot-JSON round trip), the request router (handle()),
// the live HTTP listener (real sockets: concurrent scrapes, malformed
// and slow clients, port-in-use fallback), the queryable watchdog
// status and its /healthz 503 flip, and the gauge producers.
//
// The golden-format tests go through obs/expo.hpp directly — the same
// formatter the live /metrics endpoint and `gep_events --prom` use, so
// a format regression breaks here before it breaks a scraper.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/work_stealing.hpp"

namespace gep {
namespace {

#if GEP_OBS

// ---- minimal blocking loopback HTTP client -------------------------------

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct HttpReply {
  int status = -1;
  std::string head;
  std::string body;
};

// The server always answers Connection: close, so read-to-EOF is the
// whole reply.
HttpReply read_reply(int fd) {
  HttpReply r;
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got <= 0) break;
    raw.append(buf, static_cast<std::size_t>(got));
  }
  const auto head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return r;
  r.head = raw.substr(0, head_end);
  r.body = raw.substr(head_end + 4);
  if (raw.rfind("HTTP/1.1 ", 0) == 0) r.status = std::atoi(raw.c_str() + 9);
  return r;
}

HttpReply http_txn(int port, const std::string& request) {
  HttpReply r;
  const int fd = connect_loopback(port);
  if (fd < 0) return r;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t put =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (put <= 0) break;
    sent += static_cast<std::size_t>(put);
  }
  r = read_reply(fd);
  ::close(fd);
  return r;
}

HttpReply http_get(int port, const std::string& path) {
  return http_txn(port,
                  "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

// RAII server lifetime for tests (the server is process-global).
struct ScopedServer {
  bool up;
  explicit ScopedServer(int port = 0) : up(obs::StatServer::start(port)) {}
  ~ScopedServer() { obs::StatServer::stop(); }
  int port() const { return obs::StatServer::port(); }
};

#endif  // GEP_OBS

// ---- exposition formatter (compiled in both builds) ----------------------

TEST(Expo, NameAndLabelEscaping) {
  EXPECT_EQ(obs::expo::prom_name("typed.updates.A"), "gep_typed_updates_A");
  EXPECT_EQ(obs::expo::prom_name("extmem.prefetch.queue_depth"),
            "gep_extmem_prefetch_queue_depth");
  EXPECT_EQ(obs::expo::prom_name("a-b c"), "gep_a_b_c");
  EXPECT_EQ(obs::expo::prom_label_value("plain"), "plain");
  EXPECT_EQ(obs::expo::prom_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Expo, GoldenExpositionFormat) {
  std::vector<obs::MetricSample> samples;
  {
    obs::MetricSample c;
    c.kind = obs::MetricSample::Kind::Counter;
    c.name = "typed.updates.A";
    c.count = 123;
    samples.push_back(c);
  }
  {
    obs::MetricSample g;
    g.kind = obs::MetricSample::Kind::Gauge;
    g.name = "extmem.prefetch.queue_depth";
    g.value = 4.0;
    samples.push_back(g);
  }
  {
    // Two exact zeros and one observation in [4,8): the le ladder stops
    // at the highest populated bucket, +Inf always closes it, and _sum
    // is the bucket-boundary upper-bound estimate (2*0 + 1*7).
    obs::MetricSample h;
    h.kind = obs::MetricSample::Kind::Histogram;
    h.name = "lat";
    h.count = 3;
    h.buckets.assign(64, 0);
    h.buckets[0] = 2;
    h.buckets[3] = 1;
    samples.push_back(h);
  }
  obs::expo::BuildInfo info;
  info.sha = "abc123";
  info.dispatch = "avx2";
  info.obs_enabled = true;
  const char* want =
      "# TYPE gep_build_info gauge\n"
      "gep_build_info{sha=\"abc123\",dispatch_level=\"avx2\",obs=\"on\"} 1\n"
      "# TYPE gep_typed_updates_A_total counter\n"
      "gep_typed_updates_A_total 123\n"
      "# TYPE gep_extmem_prefetch_queue_depth gauge\n"
      "gep_extmem_prefetch_queue_depth 4\n"
      "# TYPE gep_lat histogram\n"
      "gep_lat_bucket{le=\"0\"} 2\n"
      "gep_lat_bucket{le=\"1\"} 2\n"
      "gep_lat_bucket{le=\"3\"} 2\n"
      "gep_lat_bucket{le=\"7\"} 3\n"
      "gep_lat_bucket{le=\"+Inf\"} 3\n"
      "gep_lat_sum 7\n"
      "gep_lat_count 3\n";
  EXPECT_EQ(obs::expo::exposition(samples, info), want);
}

TEST(Expo, EmptySnapshotRendersOnlyBuildInfo) {
  obs::expo::BuildInfo info;
  info.sha = "s";
  info.dispatch = "d";
  info.obs_enabled = false;
  EXPECT_EQ(obs::expo::exposition({}, info),
            "# TYPE gep_build_info gauge\n"
            "gep_build_info{sha=\"s\",dispatch_level=\"d\",obs=\"off\"} 1\n");
}

TEST(Expo, SnapshotJsonRoundTripsThroughSamples) {
  // The offline path: gep_events --prom parses a dump's embedded
  // registry JSON back into samples. Shapes must agree with
  // snapshot_json()'s writer.
  const char* json =
      "{\"counters\":{\"x.total\":7},"
      "\"gauges\":{\"g.v\":2.5},"
      "\"histograms\":{\"h\":{\"count\":3,\"p50\":1,\"p95\":7,\"max\":7,"
      "\"buckets\":[[0,2],[3,1]]}}}";
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(json, &v, &err)) << err;
  const std::vector<obs::MetricSample> samples =
      obs::expo::samples_from_snapshot_json(v);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].kind, obs::MetricSample::Kind::Counter);
  EXPECT_EQ(samples[0].name, "x.total");
  EXPECT_EQ(samples[0].count, 7u);
  EXPECT_EQ(samples[1].kind, obs::MetricSample::Kind::Gauge);
  EXPECT_EQ(samples[1].value, 2.5);
  EXPECT_EQ(samples[2].kind, obs::MetricSample::Kind::Histogram);
  EXPECT_EQ(samples[2].count, 3u);
  ASSERT_EQ(samples[2].buckets.size(),
            static_cast<std::size_t>(obs::kHistBuckets));
  EXPECT_EQ(samples[2].buckets[0], 2u);
  EXPECT_EQ(samples[2].buckets[3], 1u);
  // And it renders with the same ladder as a live histogram would.
  const std::string text =
      obs::expo::exposition(samples, obs::expo::BuildInfo{});
  EXPECT_NE(text.find("gep_h_bucket{le=\"7\"} 3"), std::string::npos);
  EXPECT_NE(text.find("gep_x_total_total 7"), std::string::npos);
}

// Everything below exercises live behavior that only exists in
// instrumented builds; GEP_OBS=0 inertness is pinned by test_obs_off.
#if GEP_OBS

// ---- gauge producers ------------------------------------------------------

TEST(StatGauge, AddIsRelativeAndThreadSafe) {
  obs::Gauge g = obs::gauge("test.stat.add");
  g.set(0.0);
  g.add(2.0);
  g.add(-0.5);
  EXPECT_EQ(g.value(), 1.5);
  g.set(0.0);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(1.0);
      for (int i = 0; i < 1000; ++i) g.add(-1.0);
    });
  }
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(g.value(), 0.0) << "CAS add must not lose updates";
}

TEST(StatGauge, WorkStealingPoolPublishesActiveWorkers) {
  obs::Gauge g = obs::gauge("parallel.ws.active_workers");
  {
    WorkStealingPool pool(3);
    WsTaskGroup group(&pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) group.run([&ran] { ran.fetch_add(1); });
    group.wait();
    EXPECT_EQ(ran.load(), 8);
  }
  // All workers exited: the level gauge must balance back to zero.
  EXPECT_EQ(g.value(), 0.0);
}

// ---- watchdog status ------------------------------------------------------

TEST(StatWatchdog, StatusReportsStallAndRecovery) {
  ASSERT_FALSE(obs::Watchdog::running());
  const int id = obs::Watchdog::register_source("test-status-stall");
  ASSERT_GE(id, 0);
  obs::Watchdog::Options opts;
  opts.threshold_ms = 100.0;
  opts.poll_ms = 25.0;
  opts.dump_on_stall = false;
  ASSERT_TRUE(obs::Watchdog::start(opts));

  obs::Watchdog::beat(id);
  EXPECT_TRUE(obs::Watchdog::status().healthy());

  // Silence: within ~1.5x threshold the monitor opens an incident and
  // status() must report this source as the (worst) offender.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const obs::WatchdogStatus stalled = obs::Watchdog::status();
  EXPECT_EQ(stalled.state, obs::WatchdogStatus::State::Stalled);
  EXPECT_FALSE(stalled.healthy());
  EXPECT_EQ(stalled.source, "test-status-stall");
  EXPECT_GT(stalled.age_ms, 100.0);
  EXPECT_GE(stalled.stalls, 1u);

  // A beat followed by going idle ends the incident: the source is
  // exempt from checks (a parked worker is not a stall), so the earlier
  // detections leave the status at Recovered — and healthy() again
  // (recovered jobs must not fail liveness probes).
  obs::Watchdog::beat(id);
  obs::Watchdog::set_idle(id);
  const obs::WatchdogStatus after = obs::Watchdog::status();
  EXPECT_EQ(after.state, obs::WatchdogStatus::State::Recovered);
  EXPECT_TRUE(after.healthy());

  obs::Watchdog::stop();
  obs::Watchdog::unregister_source(id);
}

// ---- handle(): the router the serve loop and the tests share -------------

TEST(StatHandle, MetricsIsValidExpositionWithServerHistogram) {
  obs::StatServer::set_build_info("cafef00d", "avx512");
  int st = 0;
  std::string ct;
  const std::string body = obs::StatServer::handle("/metrics", &st, &ct);
  EXPECT_EQ(st, 200);
  EXPECT_EQ(ct, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(body.find("gep_build_info{sha=\"cafef00d\","
                      "dispatch_level=\"avx512\",obs=\"on\"} 1"),
            std::string::npos);
  // handle() observes its own latency, so a second scrape always sees
  // the server's histogram with populated buckets.
  const std::string again = obs::StatServer::handle("/metrics", &st, &ct);
  EXPECT_NE(again.find("gep_obs_stat_requests_total"), std::string::npos);
  EXPECT_NE(again.find("gep_obs_stat_handle_ns_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(again.find("gep_obs_stat_handle_ns_count"), std::string::npos);
  // Promtool-style line discipline: every non-comment line is
  // "name{labels} value" or "name value".
  std::size_t pos = 0;
  while (pos < again.size()) {
    const std::size_t eol = again.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "exposition must end with \\n";
    const std::string line = again.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.rfind("gep_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(StatHandle, RequestCountersAdvance) {
  const std::uint64_t before = obs::StatServer::requests_served();
  int st = 0;
  obs::StatServer::handle("/", &st, nullptr);
  obs::StatServer::handle("/progress", &st, nullptr);
  EXPECT_EQ(obs::StatServer::requests_served(), before + 2);
}

TEST(StatHandle, UnknownPathIs404) {
  int st = 0;
  std::string ct;
  const std::string body = obs::StatServer::handle("/nope", &st, &ct);
  EXPECT_EQ(st, 404);
  EXPECT_EQ(ct, "application/json");
  EXPECT_NE(body.find("not found"), std::string::npos);
}

TEST(StatHandle, ProgressInactiveThenPublished) {
  int st = 0;
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/progress", &st, nullptr), &v, &err))
      << err;
  EXPECT_FALSE(v["active"].as_bool());

  obs::ProgressMeter meter;
  meter.begin(1000.0, 1e9);
  {
    obs::ScopedStatProgress pub(meter, "test-leg");
    ASSERT_TRUE(obs::JsonValue::parse(
        obs::StatServer::handle("/progress", &st, nullptr), &v, &err))
        << err;
    EXPECT_TRUE(v["active"].as_bool());
    EXPECT_EQ(v["label"].as_string(), "test-leg");
    EXPECT_EQ(v["updates_total"].as_double(), 1000.0);
    EXPECT_GE(v["fraction"].as_double(), 0.0);
  }
  // RAII teardown unpublishes.
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/progress", &st, nullptr), &v, &err))
      << err;
  EXPECT_FALSE(v["active"].as_bool());
}

TEST(StatHandle, ClearProgressIgnoresStaleMeter) {
  obs::ProgressMeter a, b;
  a.begin(10.0);
  b.begin(20.0);
  obs::StatServer::set_progress(&a, "a");
  obs::StatServer::set_progress(&b, "b");
  obs::StatServer::clear_progress(&a);  // stale: must NOT clobber b
  int st = 0;
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/progress", &st, nullptr), &v, &err))
      << err;
  EXPECT_TRUE(v["active"].as_bool());
  EXPECT_EQ(v["label"].as_string(), "b");
  obs::StatServer::clear_progress(&b);
}

TEST(StatHandle, IoModelComparesMeasuredToPrediction) {
  int st = 0;
  obs::JsonValue v;
  std::string err;
  const obs::IoBoundPrediction pred =
      obs::igep_io_prediction(1024.0, 1 << 20, 1 << 12);
  std::atomic<std::uint64_t> measured{0};
  {
    obs::ScopedStatIoModel pub(
        pred, [&measured] { return measured.load(); });
    measured.store(static_cast<std::uint64_t>(pred.total()));
    ASSERT_TRUE(obs::JsonValue::parse(
        obs::StatServer::handle("/io", &st, nullptr), &v, &err))
        << err;
    EXPECT_TRUE(v["active"].as_bool());
    EXPECT_EQ(v["io_predicted"].as_double(), pred.total());
    EXPECT_NEAR(v["io_ratio"].as_double(), 1.0, 1e-2);
  }
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/io", &st, nullptr), &v, &err))
      << err;
  EXPECT_FALSE(v["active"].as_bool());
}

TEST(StatHandle, ProfileIsParsableJson) {
  int st = 0;
  std::string ct;
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/profile", &st, &ct), &v, &err))
      << err;
  EXPECT_EQ(st, 200);
  EXPECT_TRUE(v["entries"].is_array());
}

TEST(StatHandle, HealthzFlipsTo503DuringStallAndBack) {
  ASSERT_FALSE(obs::Watchdog::running());
  int st = 0;
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/healthz", &st, nullptr), &v, &err))
      << err;
  EXPECT_EQ(st, 200) << "no watchdog, no degradation: healthy";

  const int id = obs::Watchdog::register_source("test-healthz-stall");
  ASSERT_GE(id, 0);
  obs::Watchdog::Options opts;
  opts.threshold_ms = 100.0;
  opts.poll_ms = 25.0;
  opts.dump_on_stall = false;
  ASSERT_TRUE(obs::Watchdog::start(opts));
  obs::Watchdog::beat(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/healthz", &st, nullptr), &v, &err))
      << err;
  EXPECT_EQ(st, 503) << "an open stall incident must fail the probe";
  EXPECT_EQ(v["status"].as_string(), "stalled");
  EXPECT_EQ(v["watchdog"]["state"].as_string(), "stalled");
  EXPECT_EQ(v["watchdog"]["source"].as_string(), "test-healthz-stall");

  obs::Watchdog::beat(id);
  obs::Watchdog::set_idle(id);  // work done: exempt, incident over
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/healthz", &st, nullptr), &v, &err))
      << err;
  EXPECT_EQ(st, 200) << "a closed incident restores the probe";
  EXPECT_EQ(v["status"].as_string(), "ok");
  EXPECT_EQ(v["watchdog"]["state"].as_string(), "recovered");

  obs::Watchdog::stop();
  obs::Watchdog::unregister_source(id);
}

TEST(StatHandle, HealthzDegradesWithAsyncGauge) {
  ASSERT_FALSE(obs::Watchdog::running());
  obs::Gauge g = obs::gauge("extmem.async.degraded");
  g.set(1.0);
  int st = 0;
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/healthz", &st, nullptr), &v, &err))
      << err;
  EXPECT_EQ(st, 503);
  EXPECT_EQ(v["status"].as_string(), "degraded");
  EXPECT_TRUE(v["async_degraded"].as_bool());
  g.set(0.0);
  ASSERT_TRUE(obs::JsonValue::parse(
      obs::StatServer::handle("/healthz", &st, nullptr), &v, &err))
      << err;
  EXPECT_EQ(st, 200);
}

// ---- the live listener ----------------------------------------------------

TEST(StatServerLive, ServesAllEndpointsOverRealSockets) {
  ScopedServer server(0);  // ephemeral: never collides with CI jobs
  ASSERT_TRUE(server.up);
  ASSERT_TRUE(obs::StatServer::running());
  ASSERT_GT(server.port(), 0);
  EXPECT_FALSE(obs::StatServer::start(0)) << "double start must refuse";

  const HttpReply metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.head.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gep_build_info"), std::string::npos);

  for (const char* path : {"/healthz", "/progress", "/profile", "/io"}) {
    const HttpReply r = http_get(server.port(), path);
    EXPECT_GE(r.status, 200) << path;
    obs::JsonValue v;
    std::string err;
    EXPECT_TRUE(obs::JsonValue::parse(r.body, &v, &err)) << path << ": "
                                                         << err;
  }
  const HttpReply index = http_get(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);

  // HEAD: headers only, with the body's true Content-Length.
  const HttpReply head = http_txn(
      server.port(), "HEAD /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
  EXPECT_NE(head.head.find("Content-Length: "), std::string::npos);
}

TEST(StatServerLive, RejectsMalformedOversizedAndNonGet) {
  ScopedServer server(0);
  ASSERT_TRUE(server.up);

  EXPECT_EQ(http_txn(server.port(), "BOGUS\r\n\r\n").status, 400);
  EXPECT_EQ(http_txn(server.port(), "GET /metrics\r\n\r\n").status, 400)
      << "missing HTTP version";

  const HttpReply post = http_txn(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(post.status, 405);
  EXPECT_NE(post.head.find("Allow: GET, HEAD"), std::string::npos);

  // A request head larger than the 8 KiB cap is refused without the
  // server buffering it forever.
  std::string huge = "GET /";
  huge.append(10 * 1024, 'a');
  huge += " HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(http_txn(server.port(), huge).status, 400);
}

TEST(StatServerLive, SlowClientCompletesAndHungClientDoesNotBlockOthers) {
  ScopedServer server(0);
  ASSERT_TRUE(server.up);

  // A connection that never sends a byte must not stop other clients
  // from being served (it is reaped by the per-conn deadline later).
  const int hung = connect_loopback(server.port());
  ASSERT_GE(hung, 0);

  // A trickled request still gets its response once complete.
  const int slow = connect_loopback(server.port());
  ASSERT_GE(slow, 0);
  const std::string req = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::size_t half = req.size() / 2;
  ASSERT_EQ(::send(slow, req.data(), half, 0),
            static_cast<ssize_t>(half));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::send(slow, req.data() + half, req.size() - half, 0),
            static_cast<ssize_t>(req.size() - half));
  const HttpReply trickled = read_reply(slow);
  ::close(slow);
  EXPECT_EQ(trickled.status, 200);

  EXPECT_EQ(http_get(server.port(), "/metrics").status, 200)
      << "a hung peer must not starve the poll loop";
  ::close(hung);
}

TEST(StatServerLive, PortInUseFallsBackToNeighborPort) {
  // Occupy a port with a plain listener, then ask the server for it:
  // it must come up anyway on a different port and report it.
  const int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(blocker, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(blocker, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_EQ(::listen(blocker, 1), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(blocker, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int taken = static_cast<int>(ntohs(addr.sin_port));

  ScopedServer server(taken);
  ASSERT_TRUE(server.up) << "a busy port must not keep the exporter down";
  EXPECT_NE(server.port(), taken);
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  ::close(blocker);
}

TEST(StatServerLive, StartFromEnvParsesPortStrictly) {
  ASSERT_FALSE(obs::StatServer::running());
  ::unsetenv("GEP_STAT_PORT");
  EXPECT_FALSE(obs::StatServer::start_from_env());
  ::setenv("GEP_STAT_PORT", "", 1);
  EXPECT_FALSE(obs::StatServer::start_from_env());
  ::setenv("GEP_STAT_PORT", "notaport", 1);
  EXPECT_FALSE(obs::StatServer::start_from_env());
  ::setenv("GEP_STAT_PORT", "-1", 1);
  EXPECT_FALSE(obs::StatServer::start_from_env());
  ::setenv("GEP_STAT_PORT", "70000", 1);
  EXPECT_FALSE(obs::StatServer::start_from_env());
  ::setenv("GEP_STAT_PORT", "0", 1);  // valid: ephemeral
  EXPECT_TRUE(obs::StatServer::start_from_env());
  EXPECT_GT(obs::StatServer::port(), 0);
  obs::StatServer::stop();
  ::unsetenv("GEP_STAT_PORT");
}

TEST(StatServerLive, ConcurrentScrapesWhileJobRuns) {
  ScopedServer server(0);
  ASSERT_TRUE(server.up);
  const int port = server.port();

  // A "job": counters ticking and a published progress meter, exactly
  // what a scraper sees mid-run.
  obs::ProgressMeter meter;
  meter.begin(1e6, 1e9);
  obs::ScopedStatProgress pub(meter, "stress");
  std::atomic<bool> stop{false};
  std::thread job([&stop] {
    obs::Counter c = obs::counter("test.stat.jobticks");
    while (!stop.load()) {
      c.inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const char* paths[] = {"/metrics", "/healthz", "/progress", "/profile",
                         "/io"};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&failures, port, &paths, t] {
      for (int i = 0; i < 20; ++i) {
        const HttpReply r = http_get(port, paths[(t + i) % 5]);
        if (r.status < 200 || r.body.empty()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  stop.store(true);
  job.join();
  EXPECT_EQ(failures.load(), 0)
      << "every concurrent scrape must get a complete response";
  EXPECT_GE(obs::StatServer::requests_served(), 80u);
}

#endif  // GEP_OBS

}  // namespace
}  // namespace gep
