// C-GEP's full-generality claim: H must equal G bit-for-bit on EVERY
// (f, Σ_G) — including instances where I-GEP provably fails. We probe
// with linear functionals (any operand-state error shifts the output),
// nonlinear functions, random sparse Σ sets, and both space variants.
#include <gtest/gtest.h>

#include <cmath>

#include "gep/cgep.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

Matrix<double> random_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
  return m;
}

struct Instance {
  index_t n;
  index_t base;
};

class CGepFullGenerality : public ::testing::TestWithParam<Instance> {};

TEST_P(CGepFullGenerality, SumFMatchesGWhereIGepFails) {
  auto [n, base] = GetParam();
  Matrix<double> init = random_matrix(n, 3 + static_cast<unsigned>(n));
  Matrix<double> ref = init, h4 = init, hc = init;
  run_gep(ref, SumF{}, FullSet{n});
  run_cgep(h4, SumF{}, FullSet{n}, {base});
  run_cgep_compact(hc, SumF{}, FullSet{n}, {base});
  EXPECT_TRUE(approx_equal(ref, h4, 0.0)) << "4n^2 n=" << n;
  EXPECT_TRUE(approx_equal(ref, hc, 0.0)) << "compact n=" << n;
}

TEST_P(CGepFullGenerality, LinearFMatchesG) {
  auto [n, base] = GetParam();
  LinearF f{0.9, -0.4, 0.3, 0.2};
  Matrix<double> init = random_matrix(n, 17 + static_cast<unsigned>(n));
  Matrix<double> ref = init, h4 = init, hc = init;
  run_gep(ref, f, FullSet{n});
  run_cgep(h4, f, FullSet{n}, {base});
  run_cgep_compact(hc, f, FullSet{n}, {base});
  // multiply-based f: allow ulp-level drift from FMA contraction, which
  // the optimizer applies differently across inlined call sites.
  EXPECT_TRUE(approx_equal(ref, h4, 1e-9));
  EXPECT_TRUE(approx_equal(ref, hc, 1e-9));
}

TEST_P(CGepFullGenerality, NonlinearFMatchesG) {
  auto [n, base] = GetParam();
  auto f = [](double x, double u, double v, double w) {
    return 0.5 * x + std::sin(u) * 0.2 + v * w * 0.1;
  };
  Matrix<double> init = random_matrix(n, 29 + static_cast<unsigned>(n));
  Matrix<double> ref = init, h4 = init, hc = init;
  run_gep(ref, f, FullSet{n});
  run_cgep(h4, f, FullSet{n}, {base});
  run_cgep_compact(hc, f, FullSet{n}, {base});
  EXPECT_TRUE(approx_equal(ref, h4, 1e-9));
  EXPECT_TRUE(approx_equal(ref, hc, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBases, CGepFullGenerality,
    ::testing::Values(Instance{1, 1}, Instance{2, 1}, Instance{4, 1},
                      Instance{8, 1}, Instance{8, 4}, Instance{16, 1},
                      Instance{16, 8}, Instance{32, 1}, Instance{32, 8},
                      Instance{64, 16}));

// Randomized sparse update sets: each (i,j,k) independently in Σ.
TEST(CGepRandomSigma, MatchesGOnRandomSets) {
  const index_t n = 16;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    // Deterministic hash-based membership: pure predicate, ~35% density.
    auto member = [seed, n](index_t i, index_t j, index_t k) {
      std::uint64_t h = static_cast<std::uint64_t>(
          (i * n + j) * n + k);
      h ^= seed * 0x9e3779b97f4a7c15ULL;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 29;
      return (h % 100) < 35;
    };
    auto sigma = make_predicate_set(n, member);
    LinearF f{1.0, 0.7, -0.6, 0.25};
    Matrix<double> init = random_matrix(n, 1000 + seed);
    Matrix<double> ref = init, h4 = init, hc = init;
    run_gep(ref, f, sigma);
    run_cgep(h4, f, sigma, {1});
    run_cgep_compact(hc, f, sigma, {1});
    // LinearF multiplies: tolerate FMA-contraction ulp drift (see above).
    EXPECT_TRUE(approx_equal(ref, h4, 1e-9)) << "seed=" << seed;
    EXPECT_TRUE(approx_equal(ref, hc, 1e-9)) << "seed=" << seed;
  }
}

// On supported instances C-GEP and I-GEP agree too (both equal G).
TEST(CGepSupportedInstances, AgreesWithIGepOnGaussian) {
  const index_t n = 32;
  Matrix<double> init = random_matrix(n, 5);
  for (index_t i = 0; i < n; ++i) init(i, i) += n + 1.0;
  Matrix<double> a = init, b = init;
  run_igep(a, GaussF{}, GaussianSet{n}, {8});
  run_cgep(b, GaussF{}, GaussianSet{n}, {8});
  EXPECT_LT(max_abs_diff(a, b), 1e-9);
}

// Base-size sweep for C-GEP: every base size must give the identical
// (bit-exact) result — the iterative box kernel with live/saved reads is
// an exact refinement.
TEST(CGepBaseSize, BitExactAcrossBaseSizes) {
  const index_t n = 32;
  Matrix<double> init = random_matrix(n, 77);
  Matrix<double> ref = init;
  run_gep(ref, SumF{}, FullSet{n});
  for (index_t base : {1, 2, 4, 8, 16, 32}) {
    Matrix<double> got = init;
    run_cgep(got, SumF{}, FullSet{n}, {base});
    EXPECT_TRUE(approx_equal(ref, got, 0.0)) << "base=" << base;
    Matrix<double> gotc = init;
    run_cgep_compact(gotc, SumF{}, FullSet{n}, {base});
    EXPECT_TRUE(approx_equal(ref, gotc, 0.0)) << "compact base=" << base;
  }
}

// The counterexample of Section 2.2.1, but C-GEP fixes it.
TEST(CGepCounterexample, RepairsTheSumFCase) {
  Matrix<double> init(2, 2, 0.0);
  init(1, 1) = 1.0;
  Matrix<double> ref = init, h = init, hc = init, f = init;
  run_gep(ref, SumF{}, FullSet{2});
  run_igep(f, SumF{}, FullSet{2}, {1});
  run_cgep(h, SumF{}, FullSet{2}, {1});
  run_cgep_compact(hc, SumF{}, FullSet{2}, {1});
  EXPECT_DOUBLE_EQ(ref(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(f(1, 0), 8.0);      // I-GEP: wrong, as the paper shows
  EXPECT_DOUBLE_EQ(h(1, 0), 2.0);      // C-GEP: right
  EXPECT_DOUBLE_EQ(hc(1, 0), 2.0);
}

}  // namespace
}  // namespace gep
