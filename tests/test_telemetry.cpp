// Live-telemetry matrix: flight recorder (ring semantics, dump format,
// signal paths), stall watchdog (detection, escalation, no false
// positives, latency-burst coverage), progress/ETA closed forms, and
// the I/O-bound accountant.
//
// The dump-decoding tests read .gepdump files with the same flightfmt
// structs tools/gep_events uses, so they double as a format regression
// gate: a layout change that breaks the CLI breaks these first.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "extmem/fault_injector.hpp"
#include "extmem/ooc_matrix.hpp"
#include "extmem/ooc_typed.hpp"
#include "gep/typed.hpp"
#include "layout/zblocked.hpp"
#include "obs/obs.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

namespace ff = obs::flightfmt;

// Teardown gate for the idle/exit false-positive fix: after the whole
// suite has run — every WatchdogThreadSource destroyed, every test's
// monitor stopped — re-arm the watchdog over whatever source slots the
// tests left behind. A source that failed to de-register (or whose slot
// kept a stale last_beat) trips this within one poll.
class NoLeakedStallSources : public ::testing::Environment {
 public:
  void TearDown() override {
    ASSERT_FALSE(obs::Watchdog::running())
        << "a test forgot to stop the watchdog";
    const std::uint64_t stalls0 = obs::Watchdog::stalls_detected();
    obs::Watchdog::Options o;
    o.threshold_ms = 60.0;
    o.poll_ms = 15.0;
    o.dump_on_stall = false;
    if (!obs::Watchdog::start(o)) return;  // GEP_OBS=0: nothing to check
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    obs::Watchdog::stop();
    EXPECT_EQ(obs::Watchdog::stalls_detected(), stalls0)
        << "a leaked or stale watchdog source stalls after teardown";
  }
};

const ::testing::Environment* const kNoLeakedStallSources =
    ::testing::AddGlobalTestEnvironment(new NoLeakedStallSources);

Matrix<double> dd_matrix(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

#if GEP_OBS

// ---- .gepdump decoding (mirrors tools/gep_events) ------------------------

struct DecodedThread {
  ff::ThreadHeader th{};
  std::vector<ff::Event> events;
};

struct DecodedDump {
  bool ok = false;
  ff::FileHeader hdr{};
  std::vector<DecodedThread> threads;
  std::string metrics;
};

DecodedDump decode_dump(const std::string& path) {
  DecodedDump d;
  std::ifstream in(path, std::ios::binary);
  if (!in) return d;
  in.read(reinterpret_cast<char*>(&d.hdr), sizeof d.hdr);
  if (!in || std::memcmp(d.hdr.magic, ff::kMagic, sizeof ff::kMagic) != 0 ||
      d.hdr.version != ff::kVersion) {
    return d;
  }
  d.ok = true;  // header valid; the rest is truncation-tolerant
  for (std::uint32_t t = 0; t < d.hdr.thread_count; ++t) {
    DecodedThread dt;
    in.read(reinterpret_cast<char*>(&dt.th), sizeof dt.th);
    if (!in) return d;
    dt.events.resize(dt.th.count);
    in.read(reinterpret_cast<char*>(dt.events.data()),
            static_cast<std::streamsize>(dt.th.count * sizeof(ff::Event)));
    if (!in) {
      dt.events.resize(static_cast<std::size_t>(in.gcount()) /
                       sizeof(ff::Event));
      d.threads.push_back(std::move(dt));
      return d;
    }
    d.threads.push_back(std::move(dt));
  }
  std::uint32_t mlen = 0;
  in.read(reinterpret_cast<char*>(&mlen), sizeof mlen);
  if (in && mlen > 0) {
    d.metrics.resize(mlen);
    in.read(d.metrics.data(), mlen);
    d.metrics.resize(static_cast<std::size_t>(in.gcount()));
  }
  return d;
}

const DecodedThread* find_thread(const DecodedDump& d, const char* name) {
  for (const DecodedThread& t : d.threads) {
    if (std::strncmp(t.th.name, name, sizeof t.th.name) == 0) return &t;
  }
  return nullptr;
}

bool any_event(const DecodedDump& d, unsigned type) {
  for (const DecodedThread& t : d.threads) {
    for (const ff::Event& e : t.events) {
      if (ff::ev_of(e.w) == type) return true;
    }
  }
  return false;
}

#endif  // GEP_OBS

// ---- event word packing --------------------------------------------------

TEST(TelemetryFormat, PackUnpackRoundTrips) {
  const std::uint64_t w = ff::pack(ff::kPageIn, 0x123456789ABCull);
  EXPECT_EQ(ff::ev_of(w), static_cast<unsigned>(ff::kPageIn));
  EXPECT_EQ(ff::payload_of(w), 0x123456789ABCull);

  // Page payloads: full-width file id and 40-bit page number survive.
  const std::uint64_t pmax = (std::uint64_t{1} << 40) - 1;
  const std::uint64_t pp = ff::pack_page(0xFFFF, pmax);
  EXPECT_EQ(ff::page_file(pp), 0xFFFF);
  EXPECT_EQ(ff::page_page(pp), pmax);
  EXPECT_EQ(ff::page_file(ff::pack_page(3, 17)), 3);
  EXPECT_EQ(ff::page_page(ff::pack_page(3, 17)), 17u);

  // Recursion payloads.
  const std::uint64_t rp = ff::pack_rec('C', 11, 2048);
  EXPECT_EQ(ff::rec_kind(rp), 'C');
  EXPECT_EQ(ff::rec_depth(rp), 11);
  EXPECT_EQ(ff::rec_m(rp), 2048u);

  // Steal payloads.
  const std::uint64_t sp = ff::pack_steal(7, 12);
  EXPECT_EQ(ff::steal_thief(sp), 7);
  EXPECT_EQ(ff::steal_victim(sp), 12);

  // Payload stays inside its 56 bits even for hostile values.
  const std::uint64_t hostile = ff::pack(ff::kMark, ~std::uint64_t{0});
  EXPECT_EQ(ff::ev_of(hostile), static_cast<unsigned>(ff::kMark));

  EXPECT_STREQ(ff::ev_name(ff::kPageIn), "page_in");
  EXPECT_STREQ(ff::ev_name(ff::kMark), "mark");
  EXPECT_STREQ(ff::ev_name(ff::kEvCount + 5), "?");
}

// Everything from here to the closed-form sanity tests exercises live
// recording/dumping/watchdog/progress behavior that only exists in
// instrumented builds; GEP_OBS=0 inertness is pinned by
// tests/test_obs_off.cpp instead.
#if GEP_OBS

// ---- ring + programmatic dump --------------------------------------------

TEST(TelemetryFlight, RingKeepsLastNAndDumpDecodes) {
  obs::flight::clear();
  obs::flight::set_thread_name("telemetry-main");
  const std::uint32_t n = obs::flight::kRingEvents + 905;
  for (std::uint32_t i = 0; i < n; ++i) {
    obs::flight::record(ff::kMark, i);
  }
  const char* path = "telemetry_ring.gepdump";
  ASSERT_TRUE(obs::flight::dump(path));

  const DecodedDump d = decode_dump(path);
  ASSERT_TRUE(d.ok);
  EXPECT_EQ(d.hdr.reason, ff::kReasonManual);
  EXPECT_GT(d.hdr.dump_ns, 0u);
  ASSERT_GE(d.hdr.thread_count, 1u);

  const DecodedThread* t = find_thread(d, "telemetry-main");
  ASSERT_NE(t, nullptr);
  // The ring holds exactly the last kRingEvents marks, oldest first.
  ASSERT_EQ(t->th.count, obs::flight::kRingEvents);
  EXPECT_GE(t->th.seq, static_cast<std::uint64_t>(n));
  std::uint64_t prev_ns = 0;
  for (std::uint32_t i = 0; i < t->th.count; ++i) {
    const ff::Event& e = t->events[i];
    EXPECT_EQ(ff::ev_of(e.w), static_cast<unsigned>(ff::kMark));
    EXPECT_EQ(ff::payload_of(e.w), n - obs::flight::kRingEvents + i);
    EXPECT_GE(e.t_ns, prev_ns) << "timestamps must be monotone";
    prev_ns = e.t_ns;
  }

  // Manual dumps carry the metrics snapshot, and it is valid JSON.
  ASSERT_FALSE(d.metrics.empty());
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(d.metrics, &v, &err)) << err;
  EXPECT_TRUE(v.is_object());
  std::remove(path);
}

TEST(TelemetryFlight, DumpPathDefaultsAndOverrides) {
  obs::flight::set_dump_path("telemetry_alt.gepdump");
  EXPECT_STREQ(obs::flight::dump_path(), "telemetry_alt.gepdump");
  obs::flight::record(ff::kMark, 1);
  ASSERT_TRUE(obs::flight::dump_default());
  EXPECT_TRUE(decode_dump("telemetry_alt.gepdump").ok);
  std::remove("telemetry_alt.gepdump");

  // Over-long paths are rejected (the buffer is static for handlers).
  const std::string huge(4096, 'x');
  obs::flight::set_dump_path(huge.c_str());
  EXPECT_STRNE(obs::flight::dump_path(), huge.c_str());
  obs::flight::set_dump_path("flight.gepdump");
}

TEST(TelemetryFlight, DumpToUnwritablePathReturnsFalse) {
  EXPECT_FALSE(obs::flight::dump("/nonexistent-dir/x/y.gepdump"));
}

// ---- signal paths --------------------------------------------------------

TEST(TelemetryFlight, Sigusr1DumpsWithMetricsAndContinues) {
  obs::flight::install_crash_handlers();
  const char* path = "telemetry_usr1.gepdump";
  obs::flight::set_dump_path(path);
  obs::flight::record(ff::kMark, 77);
  ASSERT_EQ(std::raise(SIGUSR1), 0);
  // The handler ran synchronously; the process is still alive here.
  const DecodedDump d = decode_dump(path);
  ASSERT_TRUE(d.ok);
  EXPECT_EQ(d.hdr.reason, SIGUSR1);
  EXPECT_TRUE(any_event(d, ff::kSignal));
  EXPECT_FALSE(d.metrics.empty()) << "healthy-process dump keeps metrics";
  std::remove(path);
  obs::flight::set_dump_path("flight.gepdump");
}

TEST(TelemetryFlightDeathTest, FatalSignalWritesEventsOnlyDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* path = "telemetry_crash.gepdump";
  std::remove(path);
  EXPECT_EXIT(
      {
        obs::flight::install_crash_handlers();
        obs::flight::set_dump_path(path);
        obs::flight::set_thread_name("crasher");
        obs::flight::record(ff::kMark, 42);
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");
  const DecodedDump d = decode_dump(path);
  ASSERT_TRUE(d.ok) << "crash handler must leave a decodable dump";
  EXPECT_EQ(d.hdr.reason, SIGABRT);
  const DecodedThread* t = find_thread(d, "crasher");
  ASSERT_NE(t, nullptr);
  bool saw_mark = false;
  for (const ff::Event& e : t->events) {
    if (ff::ev_of(e.w) == ff::kMark && ff::payload_of(e.w) == 42) {
      saw_mark = true;
    }
  }
  EXPECT_TRUE(saw_mark);
  EXPECT_TRUE(d.metrics.empty()) << "fatal dumps are events-only";
  std::remove(path);
}

// ---- cooperative cancellation --------------------------------------------

TEST(TelemetryCancel, StopFlagThrowsAndResets) {
  obs::flight::reset_stop();
  EXPECT_FALSE(obs::flight::stop_requested());
  EXPECT_NO_THROW(obs::throw_if_stop_requested());
  obs::flight::request_stop();
  EXPECT_TRUE(obs::flight::stop_requested());
  EXPECT_THROW(obs::throw_if_stop_requested(), obs::JobCancelled);
  obs::flight::reset_stop();
  EXPECT_FALSE(obs::flight::stop_requested());
}

TEST(TelemetryCancel, OocLeavesPollTheStopFlag) {
  const index_t n = 16, bs = 8;
  const std::uint64_t B = bs * bs * sizeof(double);
  PageCache cache(8 * B, B);
  OocTiledMatrix<double> m(cache, n, n, bs);
  Matrix<double> init(n, n, 1.0);
  m.load(init);
  obs::flight::request_stop();
  EXPECT_THROW(ooc_igep_floyd_warshall(m), obs::JobCancelled);
  obs::flight::reset_stop();
  // With the flag cleared the same job completes.
  EXPECT_NO_THROW(ooc_igep_floyd_warshall(m));
}

// ---- watchdog ------------------------------------------------------------

TEST(TelemetryWatchdog, AttachNestingRestoresPreviousSource) {
  EXPECT_EQ(obs::Watchdog::attached_thread(), -1);
  {
    obs::WatchdogThreadSource outer("wd-outer");
    ASSERT_GE(outer.id(), 0);
    EXPECT_EQ(obs::Watchdog::attached_thread(), outer.id());
    {
      obs::WatchdogThreadSource inner("wd-inner");
      ASSERT_GE(inner.id(), 0);
      EXPECT_EQ(obs::Watchdog::attached_thread(), inner.id());
    }
    EXPECT_EQ(obs::Watchdog::attached_thread(), outer.id());
    obs::Watchdog::beat_this_thread();  // must not crash while stopped
  }
  EXPECT_EQ(obs::Watchdog::attached_thread(), -1);
}

TEST(TelemetryWatchdog, StalledSourceIsDetectedAndDumped) {
  ASSERT_FALSE(obs::Watchdog::running());
  const char* path = "telemetry_stall.gepdump";
  std::remove(path);
  obs::flight::set_dump_path(path);
  const std::uint64_t stalls0 = obs::Watchdog::stalls_detected();
  const std::uint64_t dumps0 = obs::Watchdog::dumps_written();

  const int id = obs::Watchdog::register_source("test-stall");
  ASSERT_GE(id, 0);
  obs::Watchdog::Options opts;
  opts.threshold_ms = 100.0;
  opts.poll_ms = 25.0;
  ASSERT_TRUE(obs::Watchdog::start(opts));
  EXPECT_TRUE(obs::Watchdog::running());
  EXPECT_FALSE(obs::Watchdog::start(opts)) << "double start must refuse";

  // One beat activates the source (beats are no-ops while stopped),
  // then silence: within ~1.5x threshold the monitor must have both
  // counted the stall and escalated to a dump. 500ms is 5x: no flake.
  obs::Watchdog::beat(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_GE(obs::Watchdog::stalls_detected(), stalls0 + 1);
  EXPECT_GE(obs::Watchdog::dumps_written(), dumps0 + 1);

  // Beating closes the incident; a NEW stall is a new incident with
  // exactly one more dump.
  obs::Watchdog::beat(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const std::uint64_t dumps_after = obs::Watchdog::dumps_written();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(obs::Watchdog::dumps_written(), dumps_after + 1);

  obs::Watchdog::stop();
  obs::Watchdog::unregister_source(id);
  EXPECT_FALSE(obs::Watchdog::running());

  const DecodedDump d = decode_dump(path);
  ASSERT_TRUE(d.ok);
  EXPECT_EQ(d.hdr.reason, ff::kReasonWatchdog);
  EXPECT_TRUE(any_event(d, ff::kStallDetect));
  std::remove(path);
  obs::flight::set_dump_path("flight.gepdump");
}

TEST(TelemetryWatchdog, BeatingAndIdleSourcesNeverFalsePositive) {
  ASSERT_FALSE(obs::Watchdog::running());
  const std::uint64_t stalls0 = obs::Watchdog::stalls_detected();

  const int beating = obs::Watchdog::register_source("test-beating");
  const int idle = obs::Watchdog::register_source("test-idle");
  ASSERT_GE(beating, 0);
  ASSERT_GE(idle, 0);
  obs::Watchdog::set_idle(idle);

  obs::Watchdog::Options opts;
  opts.threshold_ms = 150.0;
  opts.poll_ms = 25.0;
  opts.dump_on_stall = false;
  ASSERT_TRUE(obs::Watchdog::start(opts));

  std::atomic<bool> stop{false};
  std::thread beater([&] {
    while (!stop.load()) {
      obs::Watchdog::beat(beating);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  beater.join();
  obs::Watchdog::stop();

  EXPECT_EQ(obs::Watchdog::stalls_detected(), stalls0)
      << "neither a beating source nor an idle one may trip the monitor";
  obs::Watchdog::unregister_source(beating);
  obs::Watchdog::unregister_source(idle);
}

// Regression for the idle false-positive: a WatchdogThreadSource whose
// scope ends while the monitor is armed must leave nothing behind that
// can stall — its destructor idles the slot, refreshes the beat, and
// de-registers, in that order, so the monitor can never observe a
// live-looking slot with a stale last_beat.
TEST(TelemetryWatchdog, SourceScopeExitLeavesNoStallBehind) {
  ASSERT_FALSE(obs::Watchdog::running());
  const std::uint64_t stalls0 = obs::Watchdog::stalls_detected();

  obs::Watchdog::Options opts;
  opts.threshold_ms = 80.0;
  opts.poll_ms = 20.0;
  opts.dump_on_stall = false;
  ASSERT_TRUE(obs::Watchdog::start(opts));
  {
    obs::WatchdogThreadSource src("test-scope-exit");
    ASSERT_GE(src.id(), 0);
    obs::Watchdog::beat_this_thread();
  }  // armed monitor keeps polling; the dead slot must stay silent
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Slot reuse: a NEW source taking the freed slot starts from a fresh
  // beat, not the dead source's last one.
  {
    obs::WatchdogThreadSource next("test-scope-reuse");
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  obs::Watchdog::stop();
  EXPECT_EQ(obs::Watchdog::stalls_detected(), stalls0)
      << "an exited source must never trip the monitor";
}

TEST(TelemetryWatchdog, LatencyBurstInPageCacheIsDetected) {
  // A FaultInjector latency spike (300ms) far beyond the threshold
  // (100ms) stalls the pinning thread mid-read; the attached source must
  // trip. Detection deadline: threshold + poll = 125ms < 2x threshold,
  // well inside the 300ms the pin is actually stuck.
  ASSERT_FALSE(obs::Watchdog::running());
  const std::uint64_t stalls0 = obs::Watchdog::stalls_detected();

  constexpr std::uint64_t kPage = 256;
  RobustOptions r;
  r.faults.p_latency = 1.0;
  r.faults.latency_spike_ms = 300.0;
  r.retry.backoff_us = 0;
  PageCache cache(4 * kPage, kPage, {}, r);
  const int f = cache.register_file(8);
  ASSERT_NE(cache.fault_injector(f), nullptr);

  obs::Watchdog::Options opts;
  opts.threshold_ms = 100.0;
  opts.poll_ms = 25.0;
  opts.dump_on_stall = false;
  {
    obs::WatchdogThreadSource src("test-latency");
    ASSERT_GE(src.id(), 0);
    ASSERT_TRUE(obs::Watchdog::start(opts));
    obs::Watchdog::beat_this_thread();
    cache.pin(f, 0, false);  // blocks ~300ms inside the injector
  }
  obs::Watchdog::stop();
  EXPECT_GE(obs::Watchdog::stalls_detected(), stalls0 + 1)
      << "the 300ms latency burst must be reported as a stall";
  EXPECT_GE(cache.fault_injector(f)->stats().latency_spikes, 1u);
}

TEST(TelemetryWatchdog, DefaultFaultLatencyBelowThresholdIsQuiet) {
  // The test_faults seed matrix uses latency_spike_ms defaults (2ms);
  // with a realistic threshold those spikes must never false-positive.
  ASSERT_FALSE(obs::Watchdog::running());
  const std::uint64_t stalls0 = obs::Watchdog::stalls_detected();

  constexpr std::uint64_t kPage = 256;
  RobustOptions r;
  r.faults.p_latency = 0.5;  // frequent, but each spike is only 2ms
  r.retry.backoff_us = 0;
  PageCache cache(4 * kPage, kPage, {}, r);
  const int f = cache.register_file(16);

  obs::Watchdog::Options opts;
  opts.threshold_ms = 200.0;
  opts.poll_ms = 25.0;
  opts.dump_on_stall = false;
  {
    obs::WatchdogThreadSource src("test-quiet");
    ASSERT_TRUE(obs::Watchdog::start(opts));
    for (std::uint64_t p = 0; p < 16; ++p) {
      obs::Watchdog::beat_this_thread();
      char* b = static_cast<char*>(cache.pin(f, p, true));
      b[0] = static_cast<char>(p);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    obs::Watchdog::beat_this_thread();
  }
  obs::Watchdog::stop();
  EXPECT_EQ(obs::Watchdog::stalls_detected(), stalls0)
      << "2ms spikes under a 200ms threshold are not stalls";
}

// ---- progress / ETA ------------------------------------------------------

TEST(TelemetryProgress, CubeClosedFormIsExactForFloydWarshall) {
  const index_t n = 64, bs = 16;
  Matrix<double> a = dd_matrix(n, 51);
  obs::ProgressMeter meter;
  meter.begin(obs::typed_cube_updates(static_cast<double>(n)));
  const obs::ProgressSample before = meter.sample();
  EXPECT_EQ(before.fraction, 0.0);
  EXPECT_EQ(before.eta_s, -1.0) << "no progress yet: ETA unknown";

  SeqInvoker inv;
  RowMajorStore<double> st{a.data(), n, bs};
  igep_floyd_warshall(inv, st, n, {bs});

  const obs::ProgressSample s = meter.sample();
  // The counters count exactly one update per (i,j,k): n^3 total, so
  // the closed form lands on fraction == 1.0 with no tolerance.
  EXPECT_EQ(s.updates_done, static_cast<double>(n) * n * n);
  EXPECT_EQ(s.fraction, 1.0);
  EXPECT_EQ(s.eta_s, 0.0);
}

TEST(TelemetryProgress, LuClosedFormMatchesThePrunedRecursion) {
  const index_t n = 64, bs = 16;
  Matrix<double> a = dd_matrix(n, 52);
  obs::ProgressMeter meter;
  meter.begin(obs::typed_lu_updates(static_cast<double>(n),
                                    static_cast<double>(bs)));
  SeqInvoker inv;
  RowMajorStore<double> st{a.data(), n, bs};
  igep_lu(inv, st, n, {bs});
  const obs::ProgressSample s = meter.sample();
  EXPECT_EQ(s.fraction, 1.0)
      << "done=" << s.updates_done << " total=" << s.updates_total;
}

#endif  // GEP_OBS

TEST(TelemetryProgress, ClosedFormsAgreeOnShapes) {
  EXPECT_EQ(obs::typed_cube_updates(64.0), 64.0 * 64.0 * 64.0);
  // t=1 (one slab): the LU form degenerates to the full cube.
  EXPECT_EQ(obs::typed_lu_updates(64.0, 64.0), 64.0 * 64.0 * 64.0);
  // LU does strictly less work than the cube once it can prune.
  EXPECT_LT(obs::typed_lu_updates(64.0, 16.0), obs::typed_cube_updates(64.0));
  // Doubling n multiplies the t(t+1)(2t+1)/6 sum by a bit under 8.
  const double r =
      obs::typed_lu_updates(128.0, 16.0) / obs::typed_lu_updates(64.0, 16.0);
  EXPECT_GT(r, 6.0);
  EXPECT_LT(r, 8.0);
}

TEST(TelemetryProgress, ReporterStartsAndStopsCleanly) {
  obs::ProgressMeter meter;
  meter.begin(1000.0, 1e9);
  {
    obs::ProgressReporter quiet(&meter, 0.0, "quiet");  // no thread
    obs::ProgressReporter live(&meter, 0.005, "live");
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }  // joins without hanging
  SUCCEED();
}

// ---- I/O-bound accountant ------------------------------------------------

TEST(TelemetryIoModel, PredictionFollowsTheTheorem) {
  const double n = 4096, M = 1 << 24, B = 1 << 16;
  const obs::IoBoundPrediction p = obs::igep_io_prediction(n, M, B);
  EXPECT_GT(p.cube_transfers, 0.0);
  EXPECT_GT(p.scan_transfers, 0.0);
  EXPECT_EQ(p.total(), p.cube_transfers + p.scan_transfers);

  // n^3/(B sqrt(M)): 8x the problem -> 8x the cube term at fixed M, B.
  const obs::IoBoundPrediction p2 = obs::igep_io_prediction(2 * n, M, B);
  EXPECT_NEAR(p2.cube_transfers / p.cube_transfers, 8.0, 1e-9);
  // 4x the memory -> half the cube term (sqrt scaling).
  const obs::IoBoundPrediction pm = obs::igep_io_prediction(n, 4 * M, B);
  EXPECT_NEAR(pm.cube_transfers / p.cube_transfers, 0.5, 1e-9);
  // Scan traffic is memory-independent.
  EXPECT_EQ(pm.scan_transfers, p.scan_transfers);

  // Degenerate inputs predict zero rather than NaN.
  EXPECT_EQ(obs::igep_io_prediction(0, M, B).total(), 0.0);
  EXPECT_EQ(obs::igep_io_prediction(n, 0, B).total(), 0.0);
}

TEST(TelemetryIoModel, RatioCalibration) {
  const obs::IoBoundPrediction p = obs::igep_io_prediction(1024, 1 << 20,
                                                           1 << 12);
  const std::uint64_t exact = static_cast<std::uint64_t>(p.total());
  EXPECT_NEAR(obs::io_bound_ratio(exact, p), 1.0, 1e-3);
  EXPECT_NEAR(obs::io_bound_ratio(2 * exact, p), 2.0, 2e-3);
  EXPECT_EQ(obs::io_bound_ratio(100, obs::IoBoundPrediction{}), 0.0);
}

TEST(TelemetryIoModel, MeasuredOocTrafficIsWithinModelRange) {
  // End-to-end: run the OOC FW at two sizes with M scaled as n^2/2 and a
  // fixed tile size; the measured/predicted ratio must be positive and
  // stable across sizes (the CI bench-smoke checks +-25%; the unit test
  // allows 2x to stay timing- and layout-independent).
  auto ratio_at = [](index_t n) {
    const index_t bs = 8;
    const std::uint64_t B = bs * bs * sizeof(double);
    const std::uint64_t bytes = static_cast<std::uint64_t>(n) * n * 8;
    PageCache cache(bytes / 2, B);
    OocTiledMatrix<double> m(cache, n, n, bs);
    m.load(dd_matrix(n, 53));
    cache.reset_stats();
    ooc_igep_floyd_warshall(m);
    const std::uint64_t io = cache.stats().page_ins + cache.stats().page_outs;
    return obs::io_bound_ratio(
        io, obs::igep_io_prediction(static_cast<double>(n),
                                    static_cast<double>(bytes) / 2,
                                    static_cast<double>(B)));
  };
  const double r64 = ratio_at(64);
  const double r128 = ratio_at(128);
  EXPECT_GT(r64, 0.0);
  EXPECT_GT(r128, 0.0);
  EXPECT_LT(std::max(r64, r128) / std::min(r64, r128), 2.0)
      << "r64=" << r64 << " r128=" << r128;
}

}  // namespace
}  // namespace gep
