#include <gtest/gtest.h>

#include <atomic>

#include "gep/iterative.hpp"
#include "gep/typed.hpp"
#include "parallel/dag_sim.hpp"
#include "parallel/thread_pool.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup g(&pool);
  for (int i = 0; i < 100; ++i) g.run([&] { count.fetch_add(1); });
  g.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedForkJoin) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) inner.run([&] { count.fetch_add(1); });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SingleThreadInline) {
  ThreadPool pool(1);
  int count = 0;  // no atomics needed: everything runs inline
  TaskGroup g(&pool);
  for (int i = 0; i < 10; ++i) g.run([&] { ++count; });
  g.wait();
  EXPECT_EQ(count, 10);
}

TEST(ParInvoker, SequentialFallbackPreservesOrder) {
  ParInvoker inv{nullptr};
  std::vector<int> order;
  inv.invoke([&] { order.push_back(1); }, [&] { order.push_back(2); },
             [&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

Matrix<double> random_dist(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 50.0);
    m(i, i) = 0.0;
  }
  return m;
}

Matrix<double> random_dd(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(-1.0, 1.0);
    m(i, i) += static_cast<double>(n) + 2.0;
  }
  return m;
}

class ParallelIGep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelIGep, FloydWarshallMatchesSequential) {
  const int threads = GetParam();
  const index_t n = 128, bs = 16;
  Matrix<double> init = random_dist(n, 31);
  Matrix<double> seq = init, par = init;
  SeqInvoker sinv;
  RowMajorStore<double> sst{seq.data(), n, bs};
  igep_floyd_warshall(sinv, sst, n, {bs});

  ThreadPool pool(threads);
  ParInvoker pinv{&pool};
  RowMajorStore<double> pst{par.data(), n, bs};
  igep_floyd_warshall(pinv, pst, n, {bs});
  EXPECT_TRUE(approx_equal(seq, par, 0.0)) << "threads=" << threads;
}

TEST_P(ParallelIGep, LUMatchesSequential) {
  const int threads = GetParam();
  const index_t n = 128, bs = 16;
  Matrix<double> init = random_dd(n, 33);
  Matrix<double> seq = init, par = init;
  SeqInvoker sinv;
  RowMajorStore<double> sst{seq.data(), n, bs};
  igep_lu(sinv, sst, n, {bs});

  ThreadPool pool(threads);
  ParInvoker pinv{&pool};
  RowMajorStore<double> pst{par.data(), n, bs};
  igep_lu(pinv, pst, n, {bs});
  EXPECT_TRUE(approx_equal(seq, par, 0.0)) << "threads=" << threads;
}

TEST_P(ParallelIGep, GaussianMatchesSequential) {
  const int threads = GetParam();
  const index_t n = 64, bs = 8;
  Matrix<double> init = random_dd(n, 35);
  Matrix<double> seq = init, par = init;
  SeqInvoker sinv;
  RowMajorStore<double> sst{seq.data(), n, bs};
  igep_gaussian(sinv, sst, n, {bs});

  ThreadPool pool(threads);
  ParInvoker pinv{&pool};
  RowMajorStore<double> pst{par.data(), n, bs};
  igep_gaussian(pinv, pst, n, {bs});
  EXPECT_TRUE(approx_equal(seq, par, 0.0)) << "threads=" << threads;
}

TEST_P(ParallelIGep, MatMulMatchesSequential) {
  const int threads = GetParam();
  const index_t n = 64, bs = 8;
  SplitMix64 g(8);
  Matrix<double> a(n, n), b(n, n), cs(n, n, 0.0), cp(n, n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = g.uniform(-1, 1);
      b(i, j) = g.uniform(-1, 1);
    }
  SeqInvoker sinv;
  RowMajorStore<double> csst{cs.data(), n, bs};
  RowMajorStore<const double> ast{a.data(), n, bs};
  RowMajorStore<const double> bst{b.data(), n, bs};
  igep_matmul(sinv, csst, ast, bst, n, {bs});

  ThreadPool pool(threads);
  ParInvoker pinv{&pool};
  RowMajorStore<double> cpst{cp.data(), n, bs};
  igep_matmul(pinv, cpst, ast, bst, n, {bs});
  EXPECT_TRUE(approx_equal(cs, cp, 0.0)) << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelIGep, ::testing::Values(2, 3, 4, 8));

// --- DAG simulator -------------------------------------------------------

TEST(DagSim, WorkMatchesUpdateCounts) {
  const index_t n = 64, bs = 8;
  auto fw = build_igep_dag(DagProblem::FloydWarshall, n, bs);
  EXPECT_DOUBLE_EQ(dag_work(fw), static_cast<double>(n) * n * n);
  auto mm = build_igep_dag(DagProblem::MatMul, n, bs);
  EXPECT_DOUBLE_EQ(dag_work(mm), static_cast<double>(n) * n * n);
  // GE: sum over k of (n-1-k)^2.
  double ge_expected = 0;
  for (index_t k = 0; k < n; ++k)
    ge_expected += static_cast<double>((n - 1 - k)) * (n - 1 - k);
  auto ge = build_igep_dag(DagProblem::Gaussian, n, bs);
  EXPECT_DOUBLE_EQ(dag_work(ge), ge_expected);
  // LU: sum over k of (n-1-k)*(n-k).
  double lu_expected = 0;
  for (index_t k = 0; k < n; ++k)
    lu_expected += static_cast<double>(n - 1 - k) * (n - k);
  auto lu = build_igep_dag(DagProblem::LU, n, bs);
  EXPECT_DOUBLE_EQ(dag_work(lu), lu_expected);
}

TEST(DagSim, MakespanMonotoneAndBracketed) {
  const index_t n = 128, bs = 16;
  for (auto prob : {DagProblem::FloydWarshall, DagProblem::MatMul,
                    DagProblem::Gaussian, DagProblem::LU}) {
    auto dag = build_igep_dag(prob, n, bs);
    const double work = dag_work(dag);
    const double span = dag_span(dag);
    EXPECT_LE(span, work);
    for (int p : {1, 2, 4, 8, 16}) {
      double t = dag_makespan(dag, p);
      EXPECT_GE(t, work / p - 1e-6);  // lower bound
      EXPECT_GE(t, span - 1e-6);
      EXPECT_LE(t, work / p + span + 1e-6);  // Brent / greedy bound
    }
    EXPECT_NEAR(dag_makespan(dag, 1), work, work * 1e-12);
  }
}

TEST(DagSim, MatMulHasMoreParallelismThanGE) {
  const index_t n = 256, bs = 16;
  auto mm = build_igep_dag(DagProblem::MatMul, n, bs);
  auto ge = build_igep_dag(DagProblem::Gaussian, n, bs);
  auto fw = build_igep_dag(DagProblem::FloydWarshall, n, bs);
  // Average parallelism work/span: MM >> FW and MM >> GE (Section 3).
  double mm_par = dag_work(mm) / dag_span(mm);
  double fw_par = dag_work(fw) / dag_span(fw);
  double ge_par = dag_work(ge) / dag_span(ge);
  EXPECT_GT(mm_par, fw_par);
  EXPECT_GT(mm_par, ge_par);
  // Speedup at p=8 mirrors Fig. 12's ordering: MM best.
  double mm_s8 = dag_work(mm) / dag_makespan(mm, 8);
  double ge_s8 = dag_work(ge) / dag_makespan(ge, 8);
  EXPECT_GT(mm_s8, ge_s8);
}

// Span recurrence check: T_inf = O(n log^2 n) for I-GEP (Theorem 3.1).
// With unit leaf costs at base 1 the span should grow ~ n log^2 n; check
// the growth ratio between n and 2n stays well below the work ratio 8.
TEST(DagSim, SpanGrowsSubcubically) {
  double span32 = dag_span(build_igep_dag(DagProblem::FloydWarshall, 32, 1));
  double span64 = dag_span(build_igep_dag(DagProblem::FloydWarshall, 64, 1));
  double ratio = span64 / span32;
  EXPECT_LT(ratio, 3.5);  // ~2 * (log64/log32)^2 ≈ 2.9, far below 8
  EXPECT_GT(ratio, 1.8);
}

}  // namespace
}  // namespace gep
