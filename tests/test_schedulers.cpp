// Scheduler tests: the Cilk-style work-stealing pool vs the central
// queue pool — same fork-join semantics, same I-GEP results — plus the
// matrix file I/O utility.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>

#include "gep/typed.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"
#include "util/matrix_io.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

TEST(WorkStealing, RunsAllTasks) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  WsTaskGroup g(&pool);
  for (int i = 0; i < 200; ++i) g.run([&] { count.fetch_add(1); });
  g.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(WorkStealing, NestedForkJoinTree) {
  WorkStealingPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    WsTaskGroup g(&pool);
    g.run([&, depth] { rec(depth - 1); });
    g.run([&, depth] { rec(depth - 1); });
    g.wait();
  };
  rec(10);
  EXPECT_EQ(leaves.load(), 1024);
}

TEST(WorkStealing, SingleThreadInline) {
  WorkStealingPool pool(1);
  int count = 0;
  WsTaskGroup g(&pool);
  for (int i = 0; i < 7; ++i) g.run([&] { ++count; });
  g.wait();
  EXPECT_EQ(count, 7);
  EXPECT_EQ(pool.steal_count(), 0);
}

Matrix<double> random_dist(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 50.0);
    m(i, i) = 0.0;
  }
  return m;
}

class WsIGep : public ::testing::TestWithParam<int> {};

TEST_P(WsIGep, FloydWarshallMatchesSequential) {
  const int threads = GetParam();
  const index_t n = 128, bs = 16;
  Matrix<double> init = random_dist(n, 5);
  Matrix<double> seq = init, par = init;
  SeqInvoker sinv;
  RowMajorStore<double> sst{seq.data(), n, bs};
  igep_floyd_warshall(sinv, sst, n, {bs});

  WorkStealingPool pool(threads);
  WsParInvoker pinv{&pool};
  RowMajorStore<double> pst{par.data(), n, bs};
  igep_floyd_warshall(pinv, pst, n, {bs});
  EXPECT_TRUE(approx_equal(seq, par, 0.0)) << "threads=" << threads;
}

TEST_P(WsIGep, LUMatchesCentralQueuePool) {
  const int threads = GetParam();
  const index_t n = 128, bs = 16;
  SplitMix64 g(8);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(-1, 1);
    init(i, i) += n + 2.0;
  }
  Matrix<double> a = init, b = init;
  {
    ThreadPool pool(threads);
    ParInvoker inv{&pool};
    RowMajorStore<double> st{a.data(), n, bs};
    igep_lu(inv, st, n, {bs});
  }
  {
    WorkStealingPool pool(threads);
    WsParInvoker inv{&pool};
    RowMajorStore<double> st{b.data(), n, bs};
    igep_lu(inv, st, n, {bs});
  }
  EXPECT_TRUE(approx_equal(a, b, 0.0)) << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(Threads, WsIGep, ::testing::Values(2, 4, 8));

TEST(WorkStealing, StressManyGroups) {
  WorkStealingPool pool(8);
  std::atomic<long> hits{0};
  for (int round = 0; round < 100; ++round) {
    WsTaskGroup g(&pool);
    for (int t = 0; t < 8; ++t) g.run([&] { hits.fetch_add(1); });
    g.wait();
  }
  EXPECT_EQ(hits.load(), 800);
}

// --- Matrix file I/O ---------------------------------------------------------

TEST(MatrixIo, RoundTripExact) {
  SplitMix64 g(3);
  Matrix<double> m(7, 5);
  for (index_t i = 0; i < 7; ++i)
    for (index_t j = 0; j < 5; ++j) m(i, j) = g.uniform(-1e6, 1e6) / 3.0;
  std::string path = ::testing::TempDir() + "gep_mio_test.txt";
  ASSERT_TRUE(write_matrix_file(path, m));
  auto back = read_matrix_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(approx_equal(m, *back, 0.0));  // max_digits10 round-trips
  std::remove(path.c_str());
}

TEST(MatrixIo, MissingAndMalformedFiles) {
  EXPECT_FALSE(read_matrix_file("does-not-exist-anywhere.txt").has_value());
  std::string path = ::testing::TempDir() + "gep_mio_bad.txt";
  {
    std::ofstream out(path);
    out << "3 3\n1 2 3\n4 5\n";  // truncated
  }
  EXPECT_FALSE(read_matrix_file(path).has_value());
  {
    std::ofstream out(path);
    out << "-2 4\n";  // bad dims
  }
  EXPECT_FALSE(read_matrix_file(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gep
