// Scheduler tests: the Cilk-style work-stealing pool vs the central
// queue pool — same fork-join semantics, same I-GEP results — plus the
// matrix file I/O utility.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gep/typed.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"
#include "util/matrix_io.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

TEST(WorkStealing, RunsAllTasks) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  WsTaskGroup g(&pool);
  for (int i = 0; i < 200; ++i) g.run([&] { count.fetch_add(1); });
  g.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(WorkStealing, NestedForkJoinTree) {
  WorkStealingPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    WsTaskGroup g(&pool);
    g.run([&, depth] { rec(depth - 1); });
    g.run([&, depth] { rec(depth - 1); });
    g.wait();
  };
  rec(10);
  EXPECT_EQ(leaves.load(), 1024);
}

TEST(WorkStealing, SingleThreadInline) {
  WorkStealingPool pool(1);
  int count = 0;
  WsTaskGroup g(&pool);
  for (int i = 0; i < 7; ++i) g.run([&] { ++count; });
  g.wait();
  EXPECT_EQ(count, 7);
  EXPECT_EQ(pool.steal_count(), 0);
}

TEST(WorkStealing, TaskExceptionPropagatesToWait) {
  WorkStealingPool pool(4);
  {
    WsTaskGroup g(&pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
      g.run([&, i] {
        ran.fetch_add(1);
        if (i == 5) throw std::runtime_error("leaf failed");
      });
    }
    EXPECT_THROW(g.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 16);  // a throwing task doesn't kill the group
  }
  // The pool survives a failed group: no hung pending count, no dead
  // worker — later groups run normally.
  WsTaskGroup g2(&pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) g2.run([&] { count.fetch_add(1); });
  g2.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkStealing, GroupDestructorSwallowsUnclaimedException) {
  WorkStealingPool pool(2);
  {
    WsTaskGroup g(&pool);
    g.run([] { throw std::runtime_error("never waited on"); });
    // ~WsTaskGroup drains without rethrowing (destructors cannot throw).
  }
  SUCCEED();
}

TEST(WorkStealing, PromptWakeupAfterPush) {
  // Regression for the lost-wakeup race: push() used to notify without
  // synchronizing with the sleep mutex, so a worker that had evaluated
  // the wait predicate (pending == 0) but not yet blocked missed the
  // notify and slept its full 1 ms timeout. With the fix, a parked
  // worker must pick up freshly pushed work well under the timeout on
  // average. The submitting thread only OBSERVES (no try_run_one help),
  // so the latency measured is the worker's.
  WorkStealingPool pool(2);
  const int kIters = 50;
  std::vector<double> lat_ms;
  for (int it = 0; it < kIters; ++it) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // park worker
    std::atomic<bool> done{false};
    WsTaskGroup g(&pool);
    const auto t0 = std::chrono::steady_clock::now();
    g.run([&] { done.store(true, std::memory_order_release); });
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    lat_ms.push_back(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
    g.wait();
  }
  // Median, not mean: robust to preemption outliers on loaded CI boxes,
  // while a systematic lost-wakeup (every affected push waits out the
  // full 1 ms timeout) still drags it over the bound.
  std::sort(lat_ms.begin(), lat_ms.end());
  const double median_ms = lat_ms[kIters / 2];
  EXPECT_LT(median_ms, 0.9) << "worst " << lat_ms.back() << " ms";
  EXPECT_LT(lat_ms.back(), 500.0);
}

Matrix<double> random_dist(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  Matrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m(i, j) = g.uniform(1.0, 50.0);
    m(i, i) = 0.0;
  }
  return m;
}

class WsIGep : public ::testing::TestWithParam<int> {};

TEST_P(WsIGep, FloydWarshallMatchesSequential) {
  const int threads = GetParam();
  const index_t n = 128, bs = 16;
  Matrix<double> init = random_dist(n, 5);
  Matrix<double> seq = init, par = init;
  SeqInvoker sinv;
  RowMajorStore<double> sst{seq.data(), n, bs};
  igep_floyd_warshall(sinv, sst, n, {bs});

  WorkStealingPool pool(threads);
  WsParInvoker pinv{&pool};
  RowMajorStore<double> pst{par.data(), n, bs};
  igep_floyd_warshall(pinv, pst, n, {bs});
  EXPECT_TRUE(approx_equal(seq, par, 0.0)) << "threads=" << threads;
}

TEST_P(WsIGep, LUMatchesCentralQueuePool) {
  const int threads = GetParam();
  const index_t n = 128, bs = 16;
  SplitMix64 g(8);
  Matrix<double> init(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(-1, 1);
    init(i, i) += n + 2.0;
  }
  Matrix<double> a = init, b = init;
  {
    ThreadPool pool(threads);
    ParInvoker inv{&pool};
    RowMajorStore<double> st{a.data(), n, bs};
    igep_lu(inv, st, n, {bs});
  }
  {
    WorkStealingPool pool(threads);
    WsParInvoker inv{&pool};
    RowMajorStore<double> st{b.data(), n, bs};
    igep_lu(inv, st, n, {bs});
  }
  EXPECT_TRUE(approx_equal(a, b, 0.0)) << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(Threads, WsIGep, ::testing::Values(2, 4, 8));

TEST(WorkStealing, StressManyGroups) {
  WorkStealingPool pool(8);
  std::atomic<long> hits{0};
  for (int round = 0; round < 100; ++round) {
    WsTaskGroup g(&pool);
    for (int t = 0; t < 8; ++t) g.run([&] { hits.fetch_add(1); });
    g.wait();
  }
  EXPECT_EQ(hits.load(), 800);
}

// Shutdown-race regression (run under TSan in CI): tearing a pool down
// right after — or even during — a burst of submissions must never hang
// a parked worker or lose a task. Exercises the ~WorkStealingPool
// stop_-under-sleep_mu_ publish and the pending-before-push ordering
// against workers that are mid-predicate on the sleep fence.
TEST(WorkStealing, StressPoolConstructDestroyLoop) {
  for (int round = 0; round < 60; ++round) {
    const int threads = 1 + round % 8;
    WorkStealingPool pool(threads);
    std::atomic<int> count{0};
    WsTaskGroup g(&pool);
    // A tiny burst: workers are likely still parked from construction,
    // so push() hits the just-woken / still-sleeping window, and the
    // destructor follows immediately after wait().
    for (int t = 0; t < threads + 2; ++t) {
      g.run([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    g.wait();
    ASSERT_EQ(count.load(), threads + 2) << "round " << round;
  }
  // Destruction with NO work ever submitted: workers die from the
  // parked state off the stop_ flag alone.
  for (int round = 0; round < 60; ++round) {
    WorkStealingPool pool(1 + round % 8);
  }
}

// --- Matrix file I/O ---------------------------------------------------------

TEST(MatrixIo, RoundTripExact) {
  SplitMix64 g(3);
  Matrix<double> m(7, 5);
  for (index_t i = 0; i < 7; ++i)
    for (index_t j = 0; j < 5; ++j) m(i, j) = g.uniform(-1e6, 1e6) / 3.0;
  std::string path = ::testing::TempDir() + "gep_mio_test.txt";
  ASSERT_TRUE(write_matrix_file(path, m));
  auto back = read_matrix_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(approx_equal(m, *back, 0.0));  // max_digits10 round-trips
  std::remove(path.c_str());
}

TEST(MatrixIo, MissingAndMalformedFiles) {
  EXPECT_FALSE(read_matrix_file("does-not-exist-anywhere.txt").has_value());
  std::string path = ::testing::TempDir() + "gep_mio_bad.txt";
  {
    std::ofstream out(path);
    out << "3 3\n1 2 3\n4 5\n";  // truncated
  }
  EXPECT_FALSE(read_matrix_file(path).has_value());
  {
    std::ofstream out(path);
    out << "-2 4\n";  // bad dims
  }
  EXPECT_FALSE(read_matrix_file(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gep
