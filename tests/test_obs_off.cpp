// Compiled with -DGEP_OBS=0 (see tests/CMakeLists.txt): proves the
// observability API compiles away cleanly — every handle is an inert
// stub, the typed engine still computes correct results through the
// stubbed spans/counters, and nothing here links against gep_obs
// internals (the enabled impls live in inline namespace obs::on, the
// stubs in obs::off, so mixing this TU with GEP_OBS=1 libraries is
// ODR-safe).
#if defined(GEP_OBS) && GEP_OBS
#error "test_obs_off.cpp must be compiled with GEP_OBS=0"
#endif

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "../bench/bench_common.hpp"
#include "gep/typed.hpp"
#include "layout/zblocked.hpp"
#include "matrix/matrix.hpp"
#include "obs/obs.hpp"
#include "parallel/work_stealing.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

static_assert(!obs::kEnabled, "GEP_OBS=0 must disable the obs layer");
// The stub span carries no state — the typed recursion's hot frames pay
// nothing for it.
static_assert(std::is_empty_v<obs::ScopedSpan>,
              "disabled ScopedSpan must be stateless");
static_assert(std::is_empty_v<obs::ScopedLeafSample>,
              "disabled ScopedLeafSample must be stateless");
static_assert(std::is_empty_v<obs::FlightRecScope>,
              "disabled FlightRecScope must be stateless");
static_assert(obs::flight::kRingEvents == 0,
              "disabled flight recorder must not reserve ring space");

TEST(ObsOff, HandlesAreInertNoOps) {
  obs::Counter c = obs::counter("off.c");
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g = obs::gauge("off.g");
  g.set(3.25);
  g.add(2.0);
  EXPECT_EQ(g.value(), 0.0);

  obs::Histogram h = obs::histogram("off.h");
  h.observe(42);
  for (std::uint64_t b : h.buckets()) EXPECT_EQ(b, 0u);

  EXPECT_TRUE(obs::Registry::global().snapshot().empty());
  EXPECT_EQ(obs::snapshot_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(ObsOff, HwCountersUnavailable) {
  obs::HwCounters hw;
  EXPECT_FALSE(hw.available());
  hw.start();
  obs::HwSample s = hw.stop();
  EXPECT_FALSE(s.valid);
  EXPECT_EQ(s.cycles, 0u);
}

TEST(ObsOff, TracerRecordsNothing) {
  obs::Tracer::start();
  { obs::ScopedSpan s('A', 0, 0, 0, 0, 64); }
  obs::Tracer::stop();
  EXPECT_FALSE(obs::Tracer::active());
  EXPECT_EQ(obs::Tracer::event_count(), 0u);
  EXPECT_FALSE(obs::Tracer::write_chrome_trace("should_not_exist.json"));
}

TEST(ObsOff, JsonWriterStillWorks) {
  // The writer is shared with the bench reporter and stays functional.
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("k", 1);
  w.end_object();
  EXPECT_EQ(os.str(), "{\"k\":1}");
}

TEST(ObsOff, ProfileIsEmptyButJsonStaysValid) {
  obs::Profile p = obs::Profile::collect();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.wall_ns(), 0u);
  EXPECT_EQ(p.coverage(), 0.0);
  EXPECT_EQ(p.imbalance(), 1.0);
  EXPECT_EQ(p.folded(), "");
  // The JSON form still parses with the full schema skeleton, so a
  // GEP_OBS=0 bench report keeps its shape in the manifest.
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(p.json(), &v, &err)) << err;
  EXPECT_EQ(v["entries"].size(), 0u);
  EXPECT_EQ(v["dropped"].as_int(), 0);
}

TEST(ObsOff, LeafSamplerInert) {
  obs::LeafSampler::enable(1);
  EXPECT_FALSE(obs::LeafSampler::enabled());
  EXPECT_EQ(obs::LeafSampler::period(), 0u);
  { obs::ScopedLeafSample s('A', 64); }
  EXPECT_TRUE(obs::LeafSampler::snapshot().empty());
  obs::LeafSampler::reset();
}

// A GEP_OBS=0 bench report must still be a valid manifest input: full
// run rows, empty metrics sections, no profile/trace keys.
TEST(ObsOff, BenchReportStillWritesValidJson) {
  {
    bench::BenchReport rep("tmp_obs_off", 1.0);
    rep.timed("probe", 32, 1e3, [] {
      volatile double x = 1.0;
      for (int i = 0; i < 1000; ++i) x = x * 1.0000001;
    });
    ASSERT_TRUE(rep.write());
  }
  std::ifstream in("BENCH_tmp_obs_off.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(buf.str(), &v, &err)) << err;
  EXPECT_FALSE(v["gep_obs"].as_bool());
  EXPECT_EQ(v["schema_version"].as_int(), bench::kBenchSchemaVersion);
  ASSERT_EQ(v["runs"].size(), 1u);
  EXPECT_GT(v["runs"][0]["seconds"].as_double(), 0.0);
  EXPECT_FALSE(v["runs"][0].has("profile"));
  EXPECT_EQ(v["trace_dropped"].as_int(), 0);
  EXPECT_TRUE(v["metrics"]["counters"].is_object());
  std::remove("BENCH_tmp_obs_off.json");
}

// The live-telemetry surface degrades to no-ops: recording costs
// nothing, dumps refuse, cancellation never fires, the watchdog refuses
// to start, and progress reports zeros with an unknown ETA.
TEST(ObsOff, FlightRecorderIsInert) {
  obs::flight::record(obs::flightfmt::kMark, 1);
  obs::flight::set_thread_name("off-thread");
  EXPECT_FALSE(obs::flight::dump("should_not_exist.gepdump"));
  EXPECT_FALSE(obs::flight::dump_default());
  EXPECT_EQ(obs::flight::now_ns(), 0u);
  obs::flight::install_crash_handlers();
  obs::flight::install_job_signal_handlers();
  obs::flight::request_stop();
  EXPECT_FALSE(obs::flight::stop_requested()) << "stop flag compiled out";
  EXPECT_NO_THROW(obs::throw_if_stop_requested());
  obs::flight::reset_stop();
  { obs::FlightRecScope s('A', 0, 64); }
  // The dump format itself stays available for the decoder build.
  EXPECT_EQ(obs::flightfmt::ev_of(obs::flightfmt::pack(
                obs::flightfmt::kPageIn, 9)),
            static_cast<unsigned>(obs::flightfmt::kPageIn));
}

TEST(ObsOff, WatchdogRefusesToStart) {
  EXPECT_FALSE(obs::Watchdog::start({}));
  EXPECT_FALSE(obs::Watchdog::start_from_env());
  EXPECT_FALSE(obs::Watchdog::running());
  EXPECT_EQ(obs::Watchdog::stalls_detected(), 0u);
  EXPECT_EQ(obs::Watchdog::dumps_written(), 0u);
  const obs::WatchdogStatus st = obs::Watchdog::status();
  EXPECT_EQ(st.state, obs::WatchdogStatus::State::Healthy);
  EXPECT_TRUE(st.healthy());
  EXPECT_EQ(st.stalls, 0u);
  EXPECT_EQ(obs::Watchdog::register_source("off"), -1);
  obs::Watchdog::beat(0);
  obs::Watchdog::beat_this_thread();
  EXPECT_EQ(obs::Watchdog::attached_thread(), -1);
  { obs::WatchdogThreadSource src("off-src"); EXPECT_EQ(src.id(), -1); }
  obs::Watchdog::stop();
}

// The wire surface compiles to refusals: the server never starts, the
// router answers 503 with a machine-readable reason, and the RAII
// publication helpers collapse into the stubs.
TEST(ObsOff, StatServerRefusesToServe) {
  EXPECT_FALSE(obs::StatServer::start(0));
  EXPECT_FALSE(obs::StatServer::start_from_env());
  EXPECT_FALSE(obs::StatServer::running());
  EXPECT_EQ(obs::StatServer::port(), -1);
  EXPECT_EQ(obs::StatServer::requests_served(), 0u);
  obs::StatServer::set_build_info("sha", "dispatch");
  int status = 0;
  std::string ctype;
  const std::string body = obs::StatServer::handle("/metrics", &status,
                                                   &ctype);
  EXPECT_EQ(status, 503);
  EXPECT_EQ(ctype, "application/json");
  EXPECT_NE(body.find("GEP_OBS=0"), std::string::npos);
  obs::ProgressMeter m;
  m.begin(10.0);
  { obs::ScopedStatProgress pub(m, "off"); }
  {
    obs::ScopedStatIoModel io(obs::igep_io_prediction(64, 1 << 20, 1 << 12),
                              [] { return std::uint64_t{0}; });
  }
  obs::StatServer::stop();
}

// The exposition formatter stays live in both builds (the offline
// `gep_events --prom` path must render dumps from instrumented runs):
// an empty off-build snapshot is just the identity series.
TEST(ObsOff, ExpositionRendersBuildInfoOnly) {
  obs::expo::BuildInfo info;
  info.sha = "s";
  info.dispatch = "d";
  EXPECT_FALSE(info.obs_enabled) << "default must reflect this build";
  EXPECT_EQ(obs::expo::exposition(obs::Registry::global().snapshot(), info),
            "# TYPE gep_build_info gauge\n"
            "gep_build_info{sha=\"s\",dispatch_level=\"d\",obs=\"off\"} 1\n");
}

TEST(ObsOff, ProgressMeterReportsZeros) {
  obs::ProgressMeter m;
  m.begin(1000.0, 1e9);
  const obs::ProgressSample s = m.sample();
  EXPECT_EQ(s.fraction, 0.0);
  EXPECT_EQ(s.eta_s, -1.0);
  EXPECT_EQ(s.gflops, 0.0);
  EXPECT_EQ(s.updates_done, 0.0);
  { obs::ProgressReporter r(&m, 0.001, "off"); }  // never spawns a thread
  EXPECT_EQ(obs::ProgressReporter::env_interval(), 0.0);
  // The I/O model is plain math and stays live in both builds.
  const obs::IoBoundPrediction p = obs::igep_io_prediction(256, 1 << 20,
                                                           1 << 12);
  EXPECT_GT(p.total(), 0.0);
}

// The typed I-GEP engine instantiated from this GEP_OBS=0 TU (spans and
// counters compiled out) must still produce the right elimination.
TEST(ObsOff, TypedEngineStillCorrect) {
  const index_t n = 64;
  Matrix<double> a(n, n);
  SplitMix64 rng(7);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n) + 2.0;
  }
  Matrix<double> want = a;
  // Reference GE without pivoting (the GEP kernel).
  for (index_t k = 0; k < n; ++k)
    for (index_t i = k + 1; i < n; ++i)
      for (index_t j = k + 1; j < n; ++j)
        want(i, j) -= want(i, k) * want(k, j) / want(k, k);

  SeqInvoker inv;
  RowMajorStore<double> st{a.data(), n, 16};
  igep_lu(inv, st, n, {16});
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i; j < n; ++j)
      EXPECT_NEAR(a(i, j), want(i, j), 1e-9) << i << "," << j;
}

}  // namespace
}  // namespace gep
