// Compiled with -DGEP_OBS=0 (see tests/CMakeLists.txt): proves the
// observability API compiles away cleanly — every handle is an inert
// stub, the typed engine still computes correct results through the
// stubbed spans/counters, and nothing here links against gep_obs
// internals (the enabled impls live in inline namespace obs::on, the
// stubs in obs::off, so mixing this TU with GEP_OBS=1 libraries is
// ODR-safe).
#if defined(GEP_OBS) && GEP_OBS
#error "test_obs_off.cpp must be compiled with GEP_OBS=0"
#endif

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "../bench/bench_common.hpp"
#include "gep/typed.hpp"
#include "layout/zblocked.hpp"
#include "matrix/matrix.hpp"
#include "obs/obs.hpp"
#include "parallel/work_stealing.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

static_assert(!obs::kEnabled, "GEP_OBS=0 must disable the obs layer");
// The stub span carries no state — the typed recursion's hot frames pay
// nothing for it.
static_assert(std::is_empty_v<obs::ScopedSpan>,
              "disabled ScopedSpan must be stateless");
static_assert(std::is_empty_v<obs::ScopedLeafSample>,
              "disabled ScopedLeafSample must be stateless");

TEST(ObsOff, HandlesAreInertNoOps) {
  obs::Counter c = obs::counter("off.c");
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g = obs::gauge("off.g");
  g.set(3.25);
  EXPECT_EQ(g.value(), 0.0);

  obs::Histogram h = obs::histogram("off.h");
  h.observe(42);
  for (std::uint64_t b : h.buckets()) EXPECT_EQ(b, 0u);

  EXPECT_TRUE(obs::Registry::global().snapshot().empty());
  EXPECT_EQ(obs::snapshot_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(ObsOff, HwCountersUnavailable) {
  obs::HwCounters hw;
  EXPECT_FALSE(hw.available());
  hw.start();
  obs::HwSample s = hw.stop();
  EXPECT_FALSE(s.valid);
  EXPECT_EQ(s.cycles, 0u);
}

TEST(ObsOff, TracerRecordsNothing) {
  obs::Tracer::start();
  { obs::ScopedSpan s('A', 0, 0, 0, 0, 64); }
  obs::Tracer::stop();
  EXPECT_FALSE(obs::Tracer::active());
  EXPECT_EQ(obs::Tracer::event_count(), 0u);
  EXPECT_FALSE(obs::Tracer::write_chrome_trace("should_not_exist.json"));
}

TEST(ObsOff, JsonWriterStillWorks) {
  // The writer is shared with the bench reporter and stays functional.
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("k", 1);
  w.end_object();
  EXPECT_EQ(os.str(), "{\"k\":1}");
}

TEST(ObsOff, ProfileIsEmptyButJsonStaysValid) {
  obs::Profile p = obs::Profile::collect();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.wall_ns(), 0u);
  EXPECT_EQ(p.coverage(), 0.0);
  EXPECT_EQ(p.imbalance(), 1.0);
  EXPECT_EQ(p.folded(), "");
  // The JSON form still parses with the full schema skeleton, so a
  // GEP_OBS=0 bench report keeps its shape in the manifest.
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(p.json(), &v, &err)) << err;
  EXPECT_EQ(v["entries"].size(), 0u);
  EXPECT_EQ(v["dropped"].as_int(), 0);
}

TEST(ObsOff, LeafSamplerInert) {
  obs::LeafSampler::enable(1);
  EXPECT_FALSE(obs::LeafSampler::enabled());
  EXPECT_EQ(obs::LeafSampler::period(), 0u);
  { obs::ScopedLeafSample s('A', 64); }
  EXPECT_TRUE(obs::LeafSampler::snapshot().empty());
  obs::LeafSampler::reset();
}

// A GEP_OBS=0 bench report must still be a valid manifest input: full
// run rows, empty metrics sections, no profile/trace keys.
TEST(ObsOff, BenchReportStillWritesValidJson) {
  {
    bench::BenchReport rep("tmp_obs_off", 1.0);
    rep.timed("probe", 32, 1e3, [] {
      volatile double x = 1.0;
      for (int i = 0; i < 1000; ++i) x = x * 1.0000001;
    });
    ASSERT_TRUE(rep.write());
  }
  std::ifstream in("BENCH_tmp_obs_off.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(buf.str(), &v, &err)) << err;
  EXPECT_FALSE(v["gep_obs"].as_bool());
  EXPECT_EQ(v["schema_version"].as_int(), bench::kBenchSchemaVersion);
  ASSERT_EQ(v["runs"].size(), 1u);
  EXPECT_GT(v["runs"][0]["seconds"].as_double(), 0.0);
  EXPECT_FALSE(v["runs"][0].has("profile"));
  EXPECT_EQ(v["trace_dropped"].as_int(), 0);
  EXPECT_TRUE(v["metrics"]["counters"].is_object());
  std::remove("BENCH_tmp_obs_off.json");
}

// The typed I-GEP engine instantiated from this GEP_OBS=0 TU (spans and
// counters compiled out) must still produce the right elimination.
TEST(ObsOff, TypedEngineStillCorrect) {
  const index_t n = 64;
  Matrix<double> a(n, n);
  SplitMix64 rng(7);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n) + 2.0;
  }
  Matrix<double> want = a;
  // Reference GE without pivoting (the GEP kernel).
  for (index_t k = 0; k < n; ++k)
    for (index_t i = k + 1; i < n; ++i)
      for (index_t j = k + 1; j < n; ++j)
        want(i, j) -= want(i, k) * want(k, j) / want(k, k);

  SeqInvoker inv;
  RowMajorStore<double> st{a.data(), n, 16};
  igep_lu(inv, st, n, {16});
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i; j < n; ++j)
      EXPECT_NEAR(a(i, j), want(i, j), 1e-9) << i << "," << j;
}

}  // namespace
}  // namespace gep
