// Cross-engine randomized property sweeps: for randomized instances the
// whole engine family must agree, across sizes, seeds, base sizes and
// layouts. These are the "shake the tree" tests: any ordering or
// indexing defect anywhere in the stack shows up as a mismatch here.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "gep/cgep.hpp"
#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "gep/typed.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

using apps::Engine;

struct Sweep {
  index_t n;
  std::uint64_t seed;
};

class CrossEngineFW : public ::testing::TestWithParam<Sweep> {};

TEST_P(CrossEngineFW, AllSixEnginesAgree) {
  auto [n, seed] = GetParam();
  SplitMix64 g(seed);
  Matrix<double> w(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j)
      w(i, j) = g.chance(0.3) ? g.uniform(1.0, 20.0) : apps::kInfDist;
    w(i, i) = 0.0;
  }
  Matrix<double> ref = w;
  apps::floyd_warshall(ref, Engine::Iterative);
  for (Engine e : {Engine::IGep, Engine::IGepZ, Engine::CGep,
                   Engine::CGepCompact, Engine::Blocked}) {
    Matrix<double> d = w;
    apps::floyd_warshall(d, e, {8, 1});
    EXPECT_LT(max_abs_diff(ref, d), 1e-9)
        << apps::engine_name(e) << " n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, CrossEngineFW,
    ::testing::Values(Sweep{16, 1}, Sweep{16, 2}, Sweep{24, 3}, Sweep{32, 4},
                      Sweep{32, 5}, Sweep{40, 6}, Sweep{64, 7}, Sweep{96, 8}));

class CrossEngineLU : public ::testing::TestWithParam<Sweep> {};

TEST_P(CrossEngineLU, AllSixEnginesAgree) {
  auto [n, seed] = GetParam();
  SplitMix64 g(seed * 77);
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = g.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n) + 3.0;
  }
  Matrix<double> ref = a;
  apps::lu_decompose(ref, Engine::Iterative);
  for (Engine e : {Engine::IGep, Engine::IGepZ, Engine::CGep,
                   Engine::CGepCompact, Engine::Blocked}) {
    Matrix<double> lu = a;
    apps::lu_decompose(lu, e, {8, 1});
    EXPECT_LT(max_abs_diff(ref, lu), 1e-8)
        << apps::engine_name(e) << " n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, CrossEngineLU,
    ::testing::Values(Sweep{16, 1}, Sweep{20, 2}, Sweep{32, 3}, Sweep{33, 4},
                      Sweep{48, 5}, Sweep{64, 6}, Sweep{96, 7}));

// C-GEP vs G on adversarial (f, Σ): both space variants, many seeds.
TEST(CGepFuzz, ManyRandomInstances) {
  SplitMix64 meta(999);
  for (int trial = 0; trial < 30; ++trial) {
    const index_t n = index_t{1} << (1 + meta.below(4));  // 2..16
    const double density = 0.2 + meta.next_double() * 0.7;
    const std::uint64_t salt = meta.next();
    auto sigma = make_predicate_set(
        n, [salt, density, n](index_t i, index_t j, index_t k) {
          std::uint64_t h =
              static_cast<std::uint64_t>((i * n + j) * n + k) ^ salt;
          h *= 0x9e3779b97f4a7c15ULL;
          h ^= h >> 31;
          return (static_cast<double>(h % 1000) / 1000.0) < density;
        });
    LinearF f{meta.uniform(-1, 1), meta.uniform(-1, 1), meta.uniform(-1, 1),
              meta.uniform(-1, 1)};
    SplitMix64 g(salt);
    Matrix<double> init(n, n);
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(-1, 1);
    Matrix<double> ref = init, h4 = init, hc = init;
    run_gep(ref, f, sigma);
    const index_t base = 1 + static_cast<index_t>(meta.below(4));
    run_cgep(h4, f, sigma, {base});
    run_cgep_compact(hc, f, sigma, {base});
    // LinearF multiplies: tolerate FMA-contraction ulp drift.
    ASSERT_TRUE(approx_equal(ref, h4, 1e-9))
        << "trial=" << trial << " n=" << n << " base=" << base;
    ASSERT_TRUE(approx_equal(ref, hc, 1e-9))
        << "trial=" << trial << " n=" << n << " base=" << base;
  }
}

// I-GEP fuzz on supported instances across base sizes and engines.
TEST(IGepFuzz, TypedGenericAndIterativeAgree) {
  SplitMix64 meta(31337);
  for (int trial = 0; trial < 15; ++trial) {
    const index_t n = index_t{1} << (2 + meta.below(5));  // 4..64
    SplitMix64 g(meta.next());
    Matrix<double> init(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) init(i, j) = g.uniform(1.0, 9.0);
      init(i, i) = 0;
    }
    Matrix<double> ref = init;
    run_gep(ref, MinPlusF{}, FullSet{n});

    const index_t base = index_t{1} << meta.below(4);
    Matrix<double> a = init;
    run_igep(a, MinPlusF{}, FullSet{n}, {std::min(base, n)});
    ASSERT_TRUE(approx_equal(ref, a, 1e-12)) << "generic trial=" << trial;

    Matrix<double> b = init;
    RowMajorStore<double> st{b.data(), n, std::min(base, n)};
    SeqInvoker inv;
    igep_floyd_warshall(inv, st, n, {std::min(base, n)});
    ASSERT_TRUE(approx_equal(ref, b, 1e-12)) << "typed trial=" << trial;
  }
}

}  // namespace
}  // namespace gep
