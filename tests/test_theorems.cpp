// Programmatic verification of the paper's structural theorems.
//
// Theorem 2.1: Σ_F = Σ_G (same update set), each update applied exactly
// once, and per-cell updates applied in increasing k.
// Theorem 2.2: immediately before F applies <i,j,k>, the operands are in
// states c_{k-1}(i,j), c_{π(j,k)}(i,k), c_{π(i,k)}(k,j), c_{δ(i,j,k)}(k,k).
// Table 1 column G: the corresponding states under the iterative G.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "gep/igep.hpp"
#include "gep/iterative.hpp"
#include "gep/trace.hpp"
#include "util/prng.hpp"

namespace gep {
namespace {

using Triple = std::tuple<index_t, index_t, index_t>;

template <UpdateSet S>
std::set<Triple> sigma_as_set(const S& s, index_t n) {
  std::set<Triple> out;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      for (index_t k = 0; k < n; ++k)
        if (s.contains(i, j, k)) out.insert({i, j, k});
  return out;
}

template <UpdateSet S>
void check_theorem21(const S& sigma, index_t n) {
  Matrix<double> c(n, n, 1.0);
  DirectAccess<double> acc(c.view());
  UpdateLogHook hook;
  run_igep(acc, MinPlusF{}, sigma, {1}, &hook);

  // (a) Σ_F == Σ_G and (b) each update at most once.
  std::set<Triple> seen;
  for (const auto& u : hook.log) {
    auto [it, fresh] = seen.insert({u.i, u.j, u.k});
    (void)it;
    EXPECT_TRUE(fresh) << "update applied twice: " << u.i << "," << u.j << ","
                       << u.k;
  }
  EXPECT_EQ(seen, sigma_as_set(sigma, n));

  // (c) increasing k per cell.
  std::map<std::pair<index_t, index_t>, index_t> last;
  for (const auto& u : hook.log) {
    auto key = std::make_pair(u.i, u.j);
    auto it = last.find(key);
    if (it != last.end()) EXPECT_GT(u.k, it->second);
    last[key] = u.k;
  }
}

TEST(Theorem21, HoldsForFullSet) {
  for (index_t n : {1, 2, 4, 8, 16}) check_theorem21(FullSet{n}, n);
}

TEST(Theorem21, HoldsForGaussianAndLUSets) {
  for (index_t n : {2, 4, 8, 16}) {
    check_theorem21(GaussianSet{n}, n);
    check_theorem21(LUSet{n}, n);
  }
}

TEST(Theorem21, HoldsForSparsePredicateSet) {
  const index_t n = 16;
  auto sigma = make_predicate_set(n, [](index_t i, index_t j, index_t k) {
    return ((i * 31 + j * 17 + k * 7) % 5) < 2;
  });
  check_theorem21(sigma, n);
}

// --- π and δ sanity (Definition 2.2, brute force cross-check) -----------

// Brute-force π: largest aligned subinterval [a,b] containing z, not x.
index_t brute_pi(index_t x, index_t z, index_t n) {
  if (x == z) return z - 1;
  index_t best_b = -1, best_len = 0;
  for (index_t r = 0; (index_t{1} << r) <= n; ++r) {
    index_t len = index_t{1} << r;
    index_t a = (z / len) * len;
    index_t b = a + len - 1;
    if (z >= a && z <= b && (x < a || x > b) && len > best_len) {
      best_len = len;
      best_b = b;
    }
  }
  return best_b;
}

index_t brute_delta(index_t x, index_t y, index_t z, index_t n) {
  if (x == z && y == z) return z - 1;
  index_t best_b = -1, best_len = 0;
  for (index_t r = 0; (index_t{1} << r) <= n; ++r) {
    index_t len = index_t{1} << r;
    index_t a = (z / len) * len;
    index_t b = a + len - 1;
    bool contains_xy = (x >= a && x <= b && y >= a && y <= b);
    if (!contains_xy && len > best_len) {
      best_len = len;
      best_b = b;
    }
  }
  return best_b;
}

TEST(PiDelta, MatchBruteForce) {
  const index_t n = 32;
  for (index_t x = 0; x < n; ++x) {
    for (index_t z = 0; z < n; ++z) {
      EXPECT_EQ(pi_func(x, z), brute_pi(x, z, n)) << x << "," << z;
    }
  }
  SplitMix64 g(4);
  for (int t = 0; t < 2000; ++t) {
    index_t x = static_cast<index_t>(g.below(n));
    index_t y = static_cast<index_t>(g.below(n));
    index_t z = static_cast<index_t>(g.below(n));
    EXPECT_EQ(delta_func(x, y, z), brute_delta(x, y, z, n))
        << x << "," << y << "," << z;
  }
}

// --- Theorem 2.2 ---------------------------------------------------------

// State of cell equals c_l where l = last applied update's k. Theorem
// 2.2's claim "operand is in state c_m" means: every update <·,·,k'> in Σ
// with k' <= m applied, none with k' > m. Given per-cell increasing-k
// order (Thm 2.1c), that is equivalent to last_k == tau(Σ, cell, m).
template <UpdateSet S>
void check_theorem22(const S& sigma, index_t n) {
  Matrix<double> c(n, n, 1.0);
  DirectAccess<double> acc(c.view());
  long checked = 0;
  auto verify = [&](index_t i, index_t j, index_t k, const auto& st) {
    ++checked;
    // c[i,j] in state c_{k-1}(i,j):
    EXPECT_EQ(st.state_of(i, j), tau(sigma, i, j, k - 1));
    // c[i,k] in state c_{π(j,k)}(i,k):
    EXPECT_EQ(st.state_of(i, k), tau(sigma, i, k, pi_func(j, k)));
    // c[k,j] in state c_{π(i,k)}(k,j):
    EXPECT_EQ(st.state_of(k, j), tau(sigma, k, j, pi_func(i, k)));
    // c[k,k] in state c_{δ(i,j,k)}(k,k):
    EXPECT_EQ(st.state_of(k, k), tau(sigma, k, k, delta_func(i, j, k)));
  };
  StateTrackHook<decltype(verify)> hook(n, verify);
  run_igep(acc, MinPlusF{}, sigma, {1}, &hook);
  EXPECT_GT(checked, 0);
}

TEST(Theorem22, HoldsForFullSet) {
  for (index_t n : {2, 4, 8, 16}) check_theorem22(FullSet{n}, n);
}

TEST(Theorem22, HoldsForGaussianSet) {
  for (index_t n : {4, 8, 16}) check_theorem22(GaussianSet{n}, n);
}

TEST(Theorem22, HoldsForLUSet) {
  for (index_t n : {4, 8, 16}) check_theorem22(LUSet{n}, n);
}

// Table 1, column G: under the iterative G the operand states are
// c_{k-1}(i,j), c_{k-[j<=k]}(i,k), c_{k-[i<=k]}(k,j),
// c_{k-[(i<k) or (i=k and j<=k)]}(k,k)   (0-based: [P] is Iverson).
TEST(Table1ColumnG, StatesUnderIterativeG) {
  const index_t n = 8;
  FullSet sigma{n};
  Matrix<double> c(n, n, 1.0);
  DirectAccess<double> acc(c.view());
  auto verify = [&](index_t i, index_t j, index_t k, const auto& st) {
    EXPECT_EQ(st.state_of(i, j), tau(sigma, i, j, k - 1));
    EXPECT_EQ(st.state_of(i, k), tau(sigma, i, k, k - (j <= k ? 1 : 0)));
    EXPECT_EQ(st.state_of(k, j), tau(sigma, k, j, k - (i <= k ? 1 : 0)));
    index_t drop = (i < k || (i == k && j <= k)) ? 1 : 0;
    EXPECT_EQ(st.state_of(k, k), tau(sigma, k, k, k - drop));
  };
  StateTrackHook<decltype(verify)> hook(n, verify);
  run_gep(acc, MinPlusF{}, sigma, &hook);
}

// The paper's observation right after Table 1: for i,j < k the F-states
// genuinely differ from the G-states (π(j,k) != k - [j<=k], etc.).
TEST(Table1, FandGStatesDifferForSomeTriples) {
  const index_t n = 8;
  bool found = false;
  for (index_t k = 0; k < n && !found; ++k) {
    for (index_t j = 0; j < k && !found; ++j) {
      if (pi_func(j, k) != k - 1) found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gep
